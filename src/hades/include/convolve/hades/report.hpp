// Human-readable exploration reports.
//
// HADES' purpose is to replace "intuitive, but arbitrary" implementation
// choices with evidence; these helpers render that evidence: the Pareto
// frontier of a design space and a per-goal optimum summary, as Markdown
// tables ready for a design review or paper appendix.
#pragma once

#include <span>
#include <string>

#include "convolve/hades/search.hpp"

namespace convolve::hades {

/// Markdown table of the design space's Pareto frontier at order `d`
/// (deduplicated across variants, sorted by area; at most `max_rows`).
std::string markdown_frontier(const Component& c, unsigned d,
                              std::size_t max_rows = 32);

/// Markdown table with one row per (masking order, goal): the exhaustive
/// optimum's metrics and its instantiation string.
std::string markdown_goal_summary(const Component& c,
                                  std::span<const unsigned> orders,
                                  std::span<const Goal> goals);

}  // namespace convolve::hades
