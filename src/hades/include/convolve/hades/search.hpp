// Design-space exploration strategies.
//
// Three strategies, mirroring the paper's Section III-A:
//  * exhaustive enumeration -- provably optimal, cost linear in the number
//    of configurations (Table I measures exactly this);
//  * bottom-up Pareto folding -- also exact for monotone combine functions,
//    but prunes dominated subdesigns at every template boundary ("the
//    individual performance predictions in the tree can be folded
//    bottom-up");
//  * heuristic local search -- start from random baselines and vary one
//    template parameter at a time until a local optimum is reached ("all
//    parameters are varied individually instead of jointly").
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "convolve/common/rng.hpp"
#include "convolve/hades/component.hpp"

namespace convolve::hades {

struct SearchResult {
  Choice choice;
  Metrics metrics;
  unsigned order = 0;             // masking order d the search was run at
  double cost = 0.0;              // score under the requested goal
  std::uint64_t evaluations = 0;  // design points evaluated
  /// Enumeration index of `choice` (see choice_for_index): explored-design
  /// order metadata, and the explicit tie-break -- among equal-cost
  /// equal-metrics designs the lowest configuration index wins, so sharded
  /// parallel merges reproduce the serial representative exactly.
  std::uint64_t config_index = 0;
};

/// The canonical enumeration order: configuration `index` in [0,
/// config_count) maps to a Choice with child 0 as the least-significant
/// mixed-radix digit and the variant as the most significant -- exactly the
/// order for_each_config visits. This is what lets the design space be
/// sharded into contiguous index ranges whose concatenation is the serial
/// visit order.
Choice choice_for_index(const Component& c, std::uint64_t index);

/// Inverse of choice_for_index.
std::uint64_t config_index_of(const Component& c, const Choice& choice);

/// Visit every configuration of `c` in enumeration order on the calling
/// thread; the callback receives the current choice and its folded metrics.
/// Returns the number of configurations.
std::uint64_t for_each_config(
    const Component& c, unsigned d,
    const std::function<void(const Choice&, const Metrics&)>& fn);

/// Parallel enumeration: the design space is sharded into contiguous index
/// ranges (boundaries depend only on the space size, never the thread
/// count) and `fn` receives (config_index, choice, metrics). `fn` must be
/// safe to call concurrently for distinct indices; with one thread the
/// calls happen in ascending index order on the caller. Returns the number
/// of configurations.
std::uint64_t for_each_config_indexed(
    const Component& c, unsigned d,
    const std::function<void(std::uint64_t, const Choice&, const Metrics&)>&
        fn);

/// Exhaustive search for a single goal.
SearchResult exhaustive_search(const Component& c, unsigned d, Goal goal);

/// Exhaustive search for several goals in a single pass over the space.
std::vector<SearchResult> exhaustive_search_multi(const Component& c,
                                                  unsigned d,
                                                  std::span<const Goal> goals);

/// Uniformly random configuration (used for local-search baselines).
Choice random_choice(const Component& c, Xoshiro256& rng);

/// Hill-climbing local search from `n_starts` random baselines. Each step
/// evaluates all single-node variant changes and moves to the best
/// improvement; terminates at a local optimum. Start `s` draws its baseline
/// from the private stream rng.split(s) (the caller's generator is not
/// advanced), so starts run in parallel and the result is identical for
/// every thread count; ties between starts resolve to the lowest start
/// index.
SearchResult local_search(const Component& c, unsigned d, Goal goal,
                          int n_starts, Xoshiro256& rng);

/// Resource budgets for constrained exploration. The paper's modularity
/// story: "end-users must be able to adapt the security framework to their
/// individual use-case and requirements and shed any unnecessary
/// overhead" -- a budget turns that into a query: optimize `goal` subject
/// to area/latency/randomness ceilings.
struct Constraints {
  double max_area_ge = std::numeric_limits<double>::infinity();
  double max_latency_cc = std::numeric_limits<double>::infinity();
  double max_rand_bits = std::numeric_limits<double>::infinity();
};

inline bool satisfies(const Metrics& m, const Constraints& c) {
  return m.area_ge <= c.max_area_ge && m.latency_cc <= c.max_latency_cc &&
         m.rand_bits <= c.max_rand_bits;
}

/// Exhaustive search restricted to designs within the budget. When no
/// configuration is feasible, the returned result has
/// cost == +infinity and `feasible(result)` is false.
SearchResult constrained_search(const Component& c, unsigned d, Goal goal,
                                const Constraints& budget);

inline bool feasible(const SearchResult& r) {
  return r.cost != std::numeric_limits<double>::infinity();
}

/// A Pareto-frontier entry produced by bottom-up folding.
struct ParetoEntry {
  int variant = 0;  // top-level variant this entry instantiates
  Metrics metrics;
};

/// Fold the full Pareto frontier bottom-up. Exact for monotone combine
/// functions (all library cost models are monotone). Entries are pruned
/// within each top-level variant so parents that branch on the child's
/// variant still see every reachable structure.
std::vector<ParetoEntry> pareto_fold(const Component& c, unsigned d);

/// Optimal cost under `goal` obtained from the folded frontier.
double pareto_optimal_cost(const Component& c, unsigned d, Goal goal);

}  // namespace convolve::hades
