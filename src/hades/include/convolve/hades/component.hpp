// The HADES template model.
//
// A hardware design is described by a tree of *components*. Each component
// offers one or more *variants* (implementation alternatives); a variant may
// have child components (slots for nested subcomponents, e.g. the adder
// inside a multiplier) and supplies a *combine* function that predicts the
// variant's metrics from its children's metrics at a given masking order.
// A full *configuration* picks a variant at every node; the design space of
// a component is the set of all configurations, whose size is
//   count(C) = sum over variants v of  prod over children of count(child).
// This mirrors the paper's template/DSE structure: "each template must
// provide a customized performance prediction which may depend on the
// performance of sub-templates" and "the individual performance predictions
// in the tree can be folded bottom-up".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "convolve/hades/metrics.hpp"

namespace convolve::hades {

class Component;
using ComponentPtr = std::shared_ptr<const Component>;

/// Evaluated child handed to a combine function: the folded metrics plus
/// which top-level variant the child chose (so a parent can model
/// interactions that depend on the child's structure).
struct ChildEval {
  Metrics metrics;
  int variant = 0;
};

/// Predicts a variant's metrics from its children at masking order `d`.
using CombineFn =
    std::function<Metrics(const std::vector<ChildEval>&, unsigned d)>;

struct Variant {
  std::string name;
  std::vector<ComponentPtr> children;
  CombineFn combine;
};

class Component {
 public:
  Component(std::string name, std::vector<Variant> variants);

  const std::string& name() const { return name_; }
  const std::vector<Variant>& variants() const { return variants_; }

  /// Total number of distinct configurations of this component.
  std::uint64_t config_count() const;

 private:
  std::string name_;
  std::vector<Variant> variants_;
};

/// Helper to build a component.
ComponentPtr make_component(std::string name, std::vector<Variant> variants);

/// Helper for leaf variants with constant-shape cost models.
Variant leaf(std::string name, std::function<Metrics(unsigned d)> cost);

/// A configuration: the chosen variant at this node plus configurations of
/// the chosen variant's children.
struct Choice {
  int variant = 0;
  std::vector<Choice> children;
};

/// Default configuration: variant 0 everywhere.
Choice default_choice(const Component& c);

/// Fold metrics bottom-up for one configuration at masking order `d`.
Metrics evaluate(const Component& c, const Choice& choice, unsigned d);

/// Human-readable instantiation, e.g. "aes256[sbox=canright-dom, ...]".
std::string describe(const Component& c, const Choice& choice);

/// Validity check: every variant index within range, child counts match.
bool valid_choice(const Component& c, const Choice& choice);

}  // namespace convolve::hades
