// Performance metrics and optimization goals for hardware design points.
//
// HADES ranks candidate implementations of cryptographic hardware by
// predicted cost. Following the paper (Table II), the primary metrics are
// silicon area in kilo-gate-equivalents, latency in clock cycles, and fresh
// masking randomness in bits per operation; combined goals (area-latency
// product, area-latency-randomness product) capture common trade-offs.
#pragma once

#include <string>

namespace convolve::hades {

struct Metrics {
  double area_ge = 0.0;     // gate equivalents (NAND2-equivalent units)
  double latency_cc = 0.0;  // clock cycles per operation
  double rand_bits = 0.0;   // fresh random bits per operation

  Metrics& operator+=(const Metrics& o) {
    area_ge += o.area_ge;
    latency_cc += o.latency_cc;
    rand_bits += o.rand_bits;
    return *this;
  }
  friend Metrics operator+(Metrics a, const Metrics& b) { return a += b; }
  friend bool operator==(const Metrics&, const Metrics&) = default;
};

/// Weak Pareto dominance: a is at least as good on every metric.
inline bool dominates(const Metrics& a, const Metrics& b) {
  return a.area_ge <= b.area_ge && a.latency_cc <= b.latency_cc &&
         a.rand_bits <= b.rand_bits;
}

/// Optimization goals, matching the paper's Table II column labels:
/// L (latency), A (area), R (randomness), ALP (area-latency product),
/// ALRP (area-latency-randomness product).
enum class Goal {
  kLatency,
  kArea,
  kRandomness,
  kAreaLatencyProduct,
  kAreaLatencyRandProduct,
};

/// Scalar cost under a goal; lower is better.
inline double score(const Metrics& m, Goal goal) {
  switch (goal) {
    case Goal::kLatency:
      return m.latency_cc;
    case Goal::kArea:
      return m.area_ge;
    case Goal::kRandomness:
      return m.rand_bits;
    case Goal::kAreaLatencyProduct:
      return m.area_ge * m.latency_cc;
    case Goal::kAreaLatencyRandProduct:
      // +1 keeps unmasked designs (0 random bits) comparable.
      return m.area_ge * m.latency_cc * (m.rand_bits + 1.0);
  }
  return 0.0;
}

inline const char* goal_name(Goal goal) {
  switch (goal) {
    case Goal::kLatency: return "L";
    case Goal::kArea: return "A";
    case Goal::kRandomness: return "R";
    case Goal::kAreaLatencyProduct: return "ALP";
    case Goal::kAreaLatencyRandProduct: return "ALRP";
  }
  return "?";
}

}  // namespace convolve::hades
