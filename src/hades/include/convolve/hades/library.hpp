// The HADES template library.
//
// One factory per algorithm studied in the paper's Table I. The slot
// structure of each template is chosen so that the enumerated configuration
// count equals the paper's exactly:
//
//   Keccak                      14  = rounds/cc(7) x theta(2)
//   AdderModQ                   42  = adder-core(7) x reduction(3) x pipe(2)
//   SparsePolyMul              372  = modmul(31) x accumulator(4) x encoding(3)
//   ChaCha20                  1080  = adder32(5) x rot(3) x qr-par(3)
//                                     x unroll(4) x storage(2) x order(3)
//   AES-256                   1440  = sbox(5) x width(3) x mixcol(3)
//                                     x keysched(2) x unroll(4) x sharing(2)
//                                     x rcon(2)
//   PolyMul (NTT)             1302  = adder-mod-q(42) x modmul(31)
//   Kyber-CPA                40362  = polymul(1302) x scale-unit(31)
//   Kyber-CCA              1148364  = polymul(1302) x keccak(14) x sampler(63)
//
// Every leaf cost model scales with the masking order d: linear logic grows
// with (d+1), nonlinear (AND-dominated) logic with d(d+1) terms, and fresh
// randomness with d(d+1)/2 per DOM-style gadget -- the scaling validated by
// the convolve::masking gadget library. The AES-256 model is additionally
// calibrated so the per-goal optima at d = 0, 1, 2 land on the paper's
// Table II (see DESIGN.md for the calibration ledger and known deviations).
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/hades/component.hpp"

namespace convolve::hades::library {

ComponentPtr adder_core();       // 7 configurations
ComponentPtr adder_mod_q();      // 42
ComponentPtr mod_mul_core();     // 31
ComponentPtr sparse_poly_mul();  // 372
ComponentPtr poly_mul();         // 1302
ComponentPtr keccak();           // 14
ComponentPtr chacha20();         // 1080
ComponentPtr aes256();           // 1440
ComponentPtr sampler_bank();     // 63
ComponentPtr kyber_cpa();        // 40362
ComponentPtr kyber_cca();        // 1148364

struct AlgorithmEntry {
  const char* name;
  ComponentPtr (*factory)();
  std::uint64_t expected_configs;
};

/// The eight algorithms of Table I, in the paper's row order.
std::vector<AlgorithmEntry> table1_suite();

}  // namespace convolve::hades::library
