#include "convolve/hades/component.hpp"

#include <stdexcept>

namespace convolve::hades {

Component::Component(std::string name, std::vector<Variant> variants)
    : name_(std::move(name)), variants_(std::move(variants)) {
  if (variants_.empty()) {
    throw std::invalid_argument("Component '" + name_ + "' has no variants");
  }
  for (const auto& v : variants_) {
    if (!v.combine) {
      throw std::invalid_argument("Component '" + name_ + "' variant '" +
                                  v.name + "' lacks a combine function");
    }
  }
}

std::uint64_t Component::config_count() const {
  std::uint64_t total = 0;
  for (const auto& v : variants_) {
    std::uint64_t prod = 1;
    for (const auto& child : v.children) prod *= child->config_count();
    total += prod;
  }
  return total;
}

ComponentPtr make_component(std::string name, std::vector<Variant> variants) {
  return std::make_shared<const Component>(std::move(name),
                                           std::move(variants));
}

Variant leaf(std::string name, std::function<Metrics(unsigned d)> cost) {
  return Variant{
      std::move(name),
      {},
      [cost = std::move(cost)](const std::vector<ChildEval>&, unsigned d) {
        return cost(d);
      }};
}

Choice default_choice(const Component& c) {
  Choice choice;
  choice.variant = 0;
  for (const auto& child : c.variants()[0].children) {
    choice.children.push_back(default_choice(*child));
  }
  return choice;
}

Metrics evaluate(const Component& c, const Choice& choice, unsigned d) {
  const auto& variants = c.variants();
  if (choice.variant < 0 ||
      choice.variant >= static_cast<int>(variants.size())) {
    throw std::out_of_range("evaluate: bad variant in '" + c.name() + "'");
  }
  const Variant& v = variants[static_cast<std::size_t>(choice.variant)];
  if (choice.children.size() != v.children.size()) {
    throw std::invalid_argument("evaluate: child arity mismatch in '" +
                                c.name() + "'");
  }
  std::vector<ChildEval> children;
  children.reserve(v.children.size());
  for (std::size_t i = 0; i < v.children.size(); ++i) {
    children.push_back(ChildEval{
        evaluate(*v.children[i], choice.children[i], d),
        choice.children[i].variant});
  }
  return v.combine(children, d);
}

namespace {
void describe_rec(const Component& c, const Choice& choice, std::string& out) {
  const Variant& v = c.variants()[static_cast<std::size_t>(choice.variant)];
  out += c.name();
  out += '=';
  out += v.name;
  if (!v.children.empty()) {
    out += '[';
    for (std::size_t i = 0; i < v.children.size(); ++i) {
      if (i > 0) out += ", ";
      describe_rec(*v.children[i], choice.children[i], out);
    }
    out += ']';
  }
}
}  // namespace

std::string describe(const Component& c, const Choice& choice) {
  std::string out;
  describe_rec(c, choice, out);
  return out;
}

bool valid_choice(const Component& c, const Choice& choice) {
  if (choice.variant < 0 ||
      choice.variant >= static_cast<int>(c.variants().size())) {
    return false;
  }
  const Variant& v = c.variants()[static_cast<std::size_t>(choice.variant)];
  if (choice.children.size() != v.children.size()) return false;
  for (std::size_t i = 0; i < v.children.size(); ++i) {
    if (!valid_choice(*v.children[i], choice.children[i])) return false;
  }
  return true;
}

}  // namespace convolve::hades
