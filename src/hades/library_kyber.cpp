// Kyber templates: the CPA PKE core and the CCA KEM (Fujisaki-Okamoto)
// on top of it, matching the paper's Table I configuration counts.
#include "convolve/hades/library.hpp"

namespace convolve::hades::library {

namespace {
double dpairs(unsigned d) { return static_cast<double>(d) * (d + 1) / 2.0; }
double lin(unsigned d) { return static_cast<double>(d + 1); }
double nl(unsigned d) { return static_cast<double>(d) * (d + 1); }
}  // namespace

ComponentPtr sampler_bank() {
  // CBD noise-sampler bank: implementation style x parallel samples x
  // rejection buffer. 3 x 7 x 3 = 63 configurations.
  static const ComponentPtr c = [] {
    const ComponentPtr impl = make_component(
        "cbd-impl",
        {
            leaf("lut",
                 [](unsigned d) {
                   return Metrics{900 * lin(d) + 500 * nl(d), 2,
                                  24 * dpairs(d)};
                 }),
            leaf("popcount",
                 [](unsigned d) {
                   return Metrics{640 * lin(d) + 420 * nl(d), 3,
                                  18 * dpairs(d)};
                 }),
            leaf("adder-tree",
                 [](unsigned d) {
                   return Metrics{760 * lin(d) + 460 * nl(d), 2,
                                  20 * dpairs(d)};
                 }),
        });
    const ComponentPtr par = make_component(
        "samples-per-cycle",
        {
            leaf("x1", [](unsigned) { return Metrics{0, 256, 0}; }),
            leaf("x2", [](unsigned) { return Metrics{0, 128, 0}; }),
            leaf("x4", [](unsigned) { return Metrics{0, 64, 0}; }),
            leaf("x8", [](unsigned) { return Metrics{0, 32, 0}; }),
            leaf("x16", [](unsigned) { return Metrics{0, 16, 0}; }),
            leaf("x32", [](unsigned) { return Metrics{0, 8, 0}; }),
            leaf("x64", [](unsigned) { return Metrics{0, 4, 0}; }),
        });
    const ComponentPtr buffer = make_component(
        "buffer",
        {
            leaf("fifo",
                 [](unsigned d) { return Metrics{700 * lin(d), 4, 0}; }),
            leaf("ping-pong",
                 [](unsigned d) { return Metrics{1100 * lin(d), 2, 0}; }),
            leaf("stream",
                 [](unsigned d) { return Metrics{350 * lin(d), 8, 0}; }),
        });
    Variant v;
    v.name = "cbd-sampler-bank";
    v.children = {impl, par, buffer};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned) {
      const double parallel = 256.0 / ch[1].metrics.latency_cc;
      Metrics m;
      m.area_ge = ch[0].metrics.area_ge * parallel + ch[2].metrics.area_ge;
      m.latency_cc = ch[1].metrics.latency_cc * ch[0].metrics.latency_cc /
                         ch[0].metrics.latency_cc +
                     ch[2].metrics.latency_cc;
      m.rand_bits = ch[0].metrics.rand_bits * 256.0;
      return m;
    };
    return make_component("sampler-bank", {v});
  }();
  return c;
}

ComponentPtr kyber_cpa() {
  // Kyber CPA PKE: the polynomial datapath plus a compress/scale unit
  // (reusing the modular-multiplier template as its core, as the same
  // microarchitectural choices apply). 1302 x 31 = 40362.
  static const ComponentPtr c = [] {
    Variant v;
    v.name = "kyber-cpa";
    v.children = {poly_mul(), mod_mul_core()};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned d) {
      const Metrics& pm = ch[0].metrics;
      const Metrics& scale = ch[1].metrics;
      Metrics m;
      m.area_ge = pm.area_ge + scale.area_ge + 5400.0 * lin(d);
      // k^2 + k = 6 polynomial products for k = 2, plus compression of
      // k+1 = 3 polynomials (256 coefficients each through the scaler).
      m.latency_cc = 6.0 * pm.latency_cc + 3.0 * 256.0 *
                                               scale.latency_cc / 64.0;
      m.rand_bits = 6.0 * pm.rand_bits + 3.0 * scale.rand_bits;
      return m;
    };
    return make_component("kyber-cpa", {v});
  }();
  return c;
}

ComponentPtr kyber_cca() {
  // Kyber CCA KEM: FO transform = CPA datapath + Keccak (G/H/KDF) +
  // noise sampler bank. The compress unit is tied to the polynomial
  // datapath's multiplier here, so the explored slots are polymul x
  // keccak x sampler: 1302 x 14 x 63 = 1148364.
  static const ComponentPtr c = [] {
    Variant v;
    v.name = "kyber-cca";
    v.children = {poly_mul(), keccak(), sampler_bank()};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned d) {
      const Metrics& pm = ch[0].metrics;
      const Metrics& kec = ch[1].metrics;
      const Metrics& smp = ch[2].metrics;
      Metrics m;
      m.area_ge = pm.area_ge + kec.area_ge + smp.area_ge + 9200.0 * lin(d);
      // Decapsulation: decrypt (6 products) + re-encrypt (6 products) +
      // 3 Keccak permutations (G, H, KDF) + fresh noise sampling.
      m.latency_cc = 12.0 * pm.latency_cc + 3.0 * kec.latency_cc +
                     smp.latency_cc + 64.0;
      m.rand_bits = 12.0 * pm.rand_bits + 3.0 * kec.rand_bits +
                    smp.rand_bits;
      return m;
    };
    return make_component("kyber-cca", {v});
  }();
  return c;
}

std::vector<AlgorithmEntry> table1_suite() {
  return {
      {"Keccak", &keccak, 14},
      {"AdderModQ", &adder_mod_q, 42},
      {"Sparse Polynomial Multiplication", &sparse_poly_mul, 372},
      {"ChaCha20", &chacha20, 1080},
      {"AES", &aes256, 1440},
      {"Polynomial Multiplication", &poly_mul, 1302},
      {"Kyber-CPA", &kyber_cpa, 40362},
      {"Kyber-CCA", &kyber_cca, 1148364},
  };
}

}  // namespace convolve::hades::library
