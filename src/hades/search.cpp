#include "convolve/hades/search.hpp"

#include <limits>
#include <stdexcept>
#include <tuple>

#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace convolve::hades {

namespace {

#if CONVOLVE_TELEMETRY_ENABLED
telemetry::Counter t_explored{"hades.configs_explored"};
telemetry::Counter t_pruned{"hades.configs_pruned"};
telemetry::Counter t_folds{"hades.fold_invocations"};
telemetry::Counter t_restarts{"hades.local_search.restarts"};
#endif

// Mixed-radix odometer over the configuration tree. Children are the least
// significant digits; when all children wrap, the variant advances (and the
// children are rebuilt for the new variant). Returns false when the whole
// subtree wrapped back to its first configuration.
bool advance(const Component& c, Choice& ch) {
  const Variant& v = c.variants()[static_cast<std::size_t>(ch.variant)];
  for (std::size_t i = 0; i < v.children.size(); ++i) {
    if (advance(*v.children[i], ch.children[i])) return true;
    // Child i wrapped; it is already reset. Carry into the next child.
  }
  // All children wrapped: advance our own variant.
  ++ch.variant;
  if (ch.variant >= static_cast<int>(c.variants().size())) {
    ch.variant = 0;
  }
  const Variant& nv = c.variants()[static_cast<std::size_t>(ch.variant)];
  ch.children.clear();
  for (const auto& child : nv.children) {
    ch.children.push_back(default_choice(*child));
  }
  return ch.variant != 0;
}

// Paths to every node in the current choice tree (sequence of child
// indices from the root).
void collect_paths(const Component& c, const Choice& ch, std::vector<int>& cur,
                   std::vector<std::vector<int>>& out) {
  out.push_back(cur);
  const Variant& v = c.variants()[static_cast<std::size_t>(ch.variant)];
  for (std::size_t i = 0; i < v.children.size(); ++i) {
    cur.push_back(static_cast<int>(i));
    collect_paths(*v.children[i], ch.children[i], cur, out);
    cur.pop_back();
  }
}

struct NodeRef {
  const Component* component;
  Choice* choice;
};

NodeRef locate(const Component& root, Choice& ch,
               std::span<const int> path) {
  const Component* c = &root;
  Choice* cur = &ch;
  for (int step : path) {
    const Variant& v = c->variants()[static_cast<std::size_t>(cur->variant)];
    c = v.children[static_cast<std::size_t>(step)].get();
    cur = &cur->children[static_cast<std::size_t>(step)];
  }
  return {c, cur};
}

// Enumeration grain: big enough that chunk setup (choice_for_index decode)
// is noise, small enough that work stealing balances uneven metric folds.
constexpr std::uint64_t kEnumGrain = 1024;

// Shared shard walker: decode the shard's first configuration, then step
// the odometer, handing (global_index, choice, metrics) to `fn` in
// ascending index order within the shard.
template <typename Fn>
void walk_shard(const Component& c, unsigned d, par::Range r, Fn&& fn) {
  if (r.begin >= r.end) return;
  // One flush per shard, not per config: the enumeration loop stays free
  // of atomics.
  CONVOLVE_TELEMETRY_ONLY(t_explored.add(r.end - r.begin);
                          t_folds.add(r.end - r.begin);)
  Choice ch = choice_for_index(c, r.begin);
  for (std::uint64_t i = r.begin; i < r.end; ++i) {
    fn(i, ch, evaluate(c, ch, d));
    advance(c, ch);
  }
}

// Lexicographic metrics key used for deterministic tie-breaking among
// equal-cost designs.
std::tuple<double, double, double> metrics_key(const Metrics& m) {
  return std::tuple{m.area_ge, m.latency_cc, m.rand_bits};
}

// The explicit accumulation rule (ISSUE 2 bugfix): a candidate replaces the
// incumbent iff it has strictly lower cost, or equal cost and a strictly
// smaller (area, latency, randomness) key, or equal cost and key and a
// strictly lower configuration index. Serial accumulation in index order
// and sharded merges in shard order both converge to the same
// representative under this rule.
bool better_design(double cost, const Metrics& m, std::uint64_t index,
                   const SearchResult& incumbent) {
  if (cost != incumbent.cost) return cost < incumbent.cost;
  if (metrics_key(m) != metrics_key(incumbent.metrics)) {
    return metrics_key(m) < metrics_key(incumbent.metrics);
  }
  return index < incumbent.config_index;
}

SearchResult unexplored_result() {
  SearchResult r;
  r.cost = std::numeric_limits<double>::infinity();
  r.config_index = std::numeric_limits<std::uint64_t>::max();
  return r;
}

}  // namespace

Choice choice_for_index(const Component& c, std::uint64_t index) {
  const auto& variants = c.variants();
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const Variant& v = variants[vi];
    std::uint64_t size = 1;
    for (const auto& child : v.children) size *= child->config_count();
    if (index < size) {
      Choice ch;
      ch.variant = static_cast<int>(vi);
      for (const auto& child : v.children) {
        const std::uint64_t count = child->config_count();
        ch.children.push_back(choice_for_index(*child, index % count));
        index /= count;
      }
      return ch;
    }
    index -= size;
  }
  throw std::out_of_range("choice_for_index: index beyond design space");
}

std::uint64_t config_index_of(const Component& c, const Choice& choice) {
  const auto& variants = c.variants();
  if (choice.variant < 0 ||
      choice.variant >= static_cast<int>(variants.size())) {
    throw std::out_of_range("config_index_of: bad variant");
  }
  std::uint64_t base = 0;
  for (int vi = 0; vi < choice.variant; ++vi) {
    std::uint64_t size = 1;
    for (const auto& child :
         variants[static_cast<std::size_t>(vi)].children) {
      size *= child->config_count();
    }
    base += size;
  }
  const Variant& v = variants[static_cast<std::size_t>(choice.variant)];
  std::uint64_t offset = 0;
  std::uint64_t mult = 1;
  for (std::size_t i = 0; i < v.children.size(); ++i) {
    offset += config_index_of(*v.children[i], choice.children[i]) * mult;
    mult *= v.children[i]->config_count();
  }
  return base + offset;
}

std::uint64_t for_each_config(
    const Component& c, unsigned d,
    const std::function<void(const Choice&, const Metrics&)>& fn) {
  Choice ch = default_choice(c);
  std::uint64_t n = 0;
  do {
    fn(ch, evaluate(c, ch, d));
    ++n;
  } while (advance(c, ch));
  return n;
}

std::uint64_t for_each_config_indexed(
    const Component& c, unsigned d,
    const std::function<void(std::uint64_t, const Choice&, const Metrics&)>&
        fn) {
  const std::uint64_t total = c.config_count();
  const std::uint64_t n_chunks = par::chunk_count(total, kEnumGrain);
  par::for_each_chunk(n_chunks, [&](std::uint64_t chunk) {
    walk_shard(c, d, par::chunk_range(total, n_chunks, chunk), fn);
  });
  return total;
}

std::vector<SearchResult> exhaustive_search_multi(
    const Component& c, unsigned d, std::span<const Goal> goals) {
  CONVOLVE_TRACE_SPAN("hades.exhaustive_search");
  const std::uint64_t total = c.config_count();

  using Frontier = std::vector<SearchResult>;
  Frontier init(goals.size(), unexplored_result());

  Frontier best = par::parallel_reduce(
      total, kEnumGrain, std::move(init),
      [&](std::uint64_t, par::Range r) {
        Frontier local(goals.size(), unexplored_result());
        walk_shard(c, d, r,
                   [&](std::uint64_t index, const Choice& ch,
                       const Metrics& m) {
                     for (std::size_t g = 0; g < goals.size(); ++g) {
                       const double s = score(m, goals[g]);
                       if (better_design(s, m, index, local[g])) {
                         local[g].cost = s;
                         local[g].metrics = m;
                         local[g].choice = ch;
                         local[g].config_index = index;
                       }
                     }
                   });
        return local;
      },
      [&](Frontier acc, Frontier part) {
        // Shards merge in ascending index order, so the incumbent always
        // has the smaller config index on exact ties.
        for (std::size_t g = 0; g < goals.size(); ++g) {
          if (better_design(part[g].cost, part[g].metrics,
                            part[g].config_index, acc[g])) {
            acc[g] = std::move(part[g]);
          }
        }
        return acc;
      });

  for (auto& b : best) {
    b.order = d;
    b.evaluations = total;
  }
  return best;
}

SearchResult exhaustive_search(const Component& c, unsigned d, Goal goal) {
  const Goal goals[1] = {goal};
  return exhaustive_search_multi(c, d, goals)[0];
}

SearchResult constrained_search(const Component& c, unsigned d, Goal goal,
                                const Constraints& budget) {
  CONVOLVE_TRACE_SPAN("hades.constrained_search");
  const std::uint64_t total = c.config_count();

  SearchResult best = par::parallel_reduce(
      total, kEnumGrain, unexplored_result(),
      [&](std::uint64_t, par::Range r) {
        SearchResult local = unexplored_result();
        CONVOLVE_TELEMETRY_ONLY(std::uint64_t pruned = 0;)
        walk_shard(c, d, r,
                   [&](std::uint64_t index, const Choice& ch,
                       const Metrics& m) {
                     if (!satisfies(m, budget)) {
                       CONVOLVE_TELEMETRY_ONLY(++pruned;)
                       return;
                     }
                     const double s = score(m, goal);
                     // Feasible designs keep the legacy first-wins rule:
                     // strictly better cost, or equal cost with a lower
                     // configuration index.
                     if (s < local.cost ||
                         (s == local.cost && index < local.config_index)) {
                       local.cost = s;
                       local.metrics = m;
                       local.choice = ch;
                       local.config_index = index;
                     }
                   });
        CONVOLVE_TELEMETRY_ONLY(t_pruned.add(pruned);)
        return local;
      },
      [](SearchResult acc, SearchResult part) {
        if (part.cost < acc.cost ||
            (part.cost == acc.cost && part.config_index < acc.config_index)) {
          return part;
        }
        return acc;
      });

  best.order = d;
  best.evaluations = total;
  return best;
}

Choice random_choice(const Component& c, Xoshiro256& rng) {
  Choice ch;
  ch.variant = static_cast<int>(rng.uniform(c.variants().size()));
  const Variant& v = c.variants()[static_cast<std::size_t>(ch.variant)];
  for (const auto& child : v.children) {
    ch.children.push_back(random_choice(*child, rng));
  }
  return ch;
}

namespace {

struct StartOutcome {
  Choice choice;
  Metrics metrics;
  double cost = std::numeric_limits<double>::infinity();
  std::uint64_t evaluations = 0;
};

// One hill-climbing descent from a random baseline drawn from `rng`.
StartOutcome climb(const Component& c, unsigned d, Goal goal,
                   Xoshiro256& rng) {
  StartOutcome out;
  Choice current = random_choice(c, rng);
  Metrics current_metrics = evaluate(c, current, d);
  double current_cost = score(current_metrics, goal);
  ++out.evaluations;

  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<std::vector<int>> paths;
    std::vector<int> scratch;
    collect_paths(c, current, scratch, paths);

    Choice best_neighbor;
    Metrics best_neighbor_metrics;
    double best_neighbor_cost = current_cost;

    for (const auto& path : paths) {
      // Number of variants at this node.
      Choice probe = current;
      const NodeRef node = locate(c, probe, path);
      const int n_variants =
          static_cast<int>(node.component->variants().size());
      const int original = node.choice->variant;
      for (int alt = 0; alt < n_variants; ++alt) {
        if (alt == original) continue;
        Choice neighbor = current;
        const NodeRef nref = locate(c, neighbor, path);
        nref.choice->variant = alt;
        // Re-shape children for the new variant.
        const Variant& nv =
            nref.component->variants()[static_cast<std::size_t>(alt)];
        nref.choice->children.clear();
        for (const auto& child : nv.children) {
          nref.choice->children.push_back(default_choice(*child));
        }
        const Metrics m = evaluate(c, neighbor, d);
        ++out.evaluations;
        const double s = score(m, goal);
        if (s < best_neighbor_cost) {
          best_neighbor_cost = s;
          best_neighbor = std::move(neighbor);
          best_neighbor_metrics = m;
        }
      }
    }

    if (best_neighbor_cost < current_cost) {
      current = std::move(best_neighbor);
      current_metrics = best_neighbor_metrics;
      current_cost = best_neighbor_cost;
      improved = true;
    }
  }

  out.choice = std::move(current);
  out.metrics = current_metrics;
  out.cost = current_cost;
  return out;
}

}  // namespace

SearchResult local_search(const Component& c, unsigned d, Goal goal,
                          int n_starts, Xoshiro256& rng) {
  if (n_starts <= 0) throw std::invalid_argument("local_search: n_starts<=0");
  CONVOLVE_TRACE_SPAN("hades.local_search");
  CONVOLVE_TELEMETRY_ONLY(
      t_restarts.add(static_cast<std::uint64_t>(n_starts));)

  // Each start climbs from its own rng.split(start) stream, so the starts
  // are order- and thread-count-independent.
  std::vector<StartOutcome> outcomes(static_cast<std::size_t>(n_starts));
  par::parallel_for(
      static_cast<std::uint64_t>(n_starts),
      [&](std::uint64_t start) {
        Xoshiro256 stream = rng.split(start);
        outcomes[static_cast<std::size_t>(start)] = climb(c, d, goal, stream);
      });

  // Merge in start order: strict < keeps the lowest start index on ties.
  SearchResult best;
  best.order = d;
  best.cost = std::numeric_limits<double>::infinity();
  std::uint64_t evals = 0;
  for (auto& out : outcomes) {
    evals += out.evaluations;
    if (out.cost < best.cost) {
      best.cost = out.cost;
      best.metrics = out.metrics;
      best.choice = std::move(out.choice);
    }
  }
  CONVOLVE_TELEMETRY_ONLY(t_folds.add(evals);)
  best.evaluations = evals;
  best.config_index = config_index_of(c, best.choice);
  return best;
}

namespace {

void prune_within_variant(std::vector<ParetoEntry>& entries) {
  std::vector<ParetoEntry> kept;
  for (const auto& e : entries) {
    bool dominated = false;
    for (const auto& other : entries) {
      if (&other == &e || other.variant != e.variant) continue;
      if (dominates(other.metrics, e.metrics) &&
          !(other.metrics == e.metrics)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      // Deduplicate exact ties.
      bool duplicate = false;
      for (const auto& k : kept) {
        if (k.variant == e.variant && k.metrics == e.metrics) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) kept.push_back(e);
    }
  }
  entries = std::move(kept);
}

}  // namespace

std::vector<ParetoEntry> pareto_fold(const Component& c, unsigned d) {
  std::vector<ParetoEntry> result;
  CONVOLVE_TELEMETRY_ONLY(std::uint64_t combines = 0;)
  const auto& variants = c.variants();
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const Variant& v = variants[vi];
    // Child frontiers.
    std::vector<std::vector<ParetoEntry>> fronts;
    fronts.reserve(v.children.size());
    for (const auto& child : v.children) {
      fronts.push_back(pareto_fold(*child, d));
    }
    // Cartesian product of child frontier entries.
    std::vector<std::size_t> idx(fronts.size(), 0);
    while (true) {
      std::vector<ChildEval> evals;
      evals.reserve(fronts.size());
      for (std::size_t i = 0; i < fronts.size(); ++i) {
        const ParetoEntry& e = fronts[i][idx[i]];
        evals.push_back(ChildEval{e.metrics, e.variant});
      }
      result.push_back(
          ParetoEntry{static_cast<int>(vi), v.combine(evals, d)});
      CONVOLVE_TELEMETRY_ONLY(++combines;)
      // Advance product index.
      std::size_t pos = 0;
      while (pos < fronts.size()) {
        if (++idx[pos] < fronts[pos].size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == fronts.size()) break;
      if (fronts.empty()) break;
    }
  }
  CONVOLVE_TELEMETRY_ONLY(if (combines != 0) t_folds.add(combines);)
  prune_within_variant(result);
  return result;
}

double pareto_optimal_cost(const Component& c, unsigned d, Goal goal) {
  CONVOLVE_TRACE_SPAN("hades.fold");
  const auto frontier = pareto_fold(c, d);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : frontier) best = std::min(best, score(e.metrics, goal));
  return best;
}

}  // namespace convolve::hades
