#include "convolve/hades/search.hpp"

#include <limits>
#include <tuple>
#include <stdexcept>

namespace convolve::hades {

namespace {

// Mixed-radix odometer over the configuration tree. Children are the least
// significant digits; when all children wrap, the variant advances (and the
// children are rebuilt for the new variant). Returns false when the whole
// subtree wrapped back to its first configuration.
bool advance(const Component& c, Choice& ch) {
  const Variant& v = c.variants()[static_cast<std::size_t>(ch.variant)];
  for (std::size_t i = 0; i < v.children.size(); ++i) {
    if (advance(*v.children[i], ch.children[i])) return true;
    // Child i wrapped; it is already reset. Carry into the next child.
  }
  // All children wrapped: advance our own variant.
  ++ch.variant;
  if (ch.variant >= static_cast<int>(c.variants().size())) {
    ch.variant = 0;
  }
  const Variant& nv = c.variants()[static_cast<std::size_t>(ch.variant)];
  ch.children.clear();
  for (const auto& child : nv.children) {
    ch.children.push_back(default_choice(*child));
  }
  return ch.variant != 0;
}

// Paths to every node in the current choice tree (sequence of child
// indices from the root).
void collect_paths(const Component& c, const Choice& ch, std::vector<int>& cur,
                   std::vector<std::vector<int>>& out) {
  out.push_back(cur);
  const Variant& v = c.variants()[static_cast<std::size_t>(ch.variant)];
  for (std::size_t i = 0; i < v.children.size(); ++i) {
    cur.push_back(static_cast<int>(i));
    collect_paths(*v.children[i], ch.children[i], cur, out);
    cur.pop_back();
  }
}

struct NodeRef {
  const Component* component;
  Choice* choice;
};

NodeRef locate(const Component& root, Choice& ch,
               std::span<const int> path) {
  const Component* c = &root;
  Choice* cur = &ch;
  for (int step : path) {
    const Variant& v = c->variants()[static_cast<std::size_t>(cur->variant)];
    c = v.children[static_cast<std::size_t>(step)].get();
    cur = &cur->children[static_cast<std::size_t>(step)];
  }
  return {c, cur};
}

}  // namespace

std::uint64_t for_each_config(
    const Component& c, unsigned d,
    const std::function<void(const Choice&, const Metrics&)>& fn) {
  Choice ch = default_choice(c);
  std::uint64_t n = 0;
  do {
    fn(ch, evaluate(c, ch, d));
    ++n;
  } while (advance(c, ch));
  return n;
}

std::vector<SearchResult> exhaustive_search_multi(
    const Component& c, unsigned d, std::span<const Goal> goals) {
  std::vector<SearchResult> best(goals.size());
  for (auto& b : best) b.cost = std::numeric_limits<double>::infinity();

  Choice ch = default_choice(c);
  std::uint64_t n = 0;
  do {
    const Metrics m = evaluate(c, ch, d);
    ++n;
    for (std::size_t g = 0; g < goals.size(); ++g) {
      const double s = score(m, goals[g]);
      // Deterministic tie-break: on equal score prefer the design with
      // smaller (area, latency, randomness), lexicographically.
      const auto key = [](const Metrics& x) {
        return std::tuple{x.area_ge, x.latency_cc, x.rand_bits};
      };
      if (s < best[g].cost ||
          (s == best[g].cost && key(m) < key(best[g].metrics))) {
        best[g].cost = s;
        best[g].metrics = m;
        best[g].choice = ch;
      }
    }
  } while (advance(c, ch));

  for (auto& b : best) {
    b.order = d;
    b.evaluations = n;
  }
  return best;
}

SearchResult exhaustive_search(const Component& c, unsigned d, Goal goal) {
  const Goal goals[1] = {goal};
  return exhaustive_search_multi(c, d, goals)[0];
}

SearchResult constrained_search(const Component& c, unsigned d, Goal goal,
                                const Constraints& budget) {
  SearchResult best;
  best.cost = std::numeric_limits<double>::infinity();
  Choice ch = default_choice(c);
  std::uint64_t n = 0;
  do {
    const Metrics m = evaluate(c, ch, d);
    ++n;
    if (!satisfies(m, budget)) continue;
    const double s = score(m, goal);
    if (s < best.cost) {
      best.cost = s;
      best.metrics = m;
      best.choice = ch;
    }
  } while (advance(c, ch));
  best.order = d;
  best.evaluations = n;
  return best;
}

Choice random_choice(const Component& c, Xoshiro256& rng) {
  Choice ch;
  ch.variant = static_cast<int>(rng.uniform(c.variants().size()));
  const Variant& v = c.variants()[static_cast<std::size_t>(ch.variant)];
  for (const auto& child : v.children) {
    ch.children.push_back(random_choice(*child, rng));
  }
  return ch;
}

SearchResult local_search(const Component& c, unsigned d, Goal goal,
                          int n_starts, Xoshiro256& rng) {
  if (n_starts <= 0) throw std::invalid_argument("local_search: n_starts<=0");

  SearchResult best;
  best.order = d;
  best.cost = std::numeric_limits<double>::infinity();
  std::uint64_t evals = 0;

  for (int start = 0; start < n_starts; ++start) {
    Choice current = random_choice(c, rng);
    Metrics current_metrics = evaluate(c, current, d);
    double current_cost = score(current_metrics, goal);
    ++evals;

    bool improved = true;
    while (improved) {
      improved = false;
      std::vector<std::vector<int>> paths;
      std::vector<int> scratch;
      collect_paths(c, current, scratch, paths);

      Choice best_neighbor;
      Metrics best_neighbor_metrics;
      double best_neighbor_cost = current_cost;

      for (const auto& path : paths) {
        // Number of variants at this node.
        Choice probe = current;
        const NodeRef node = locate(c, probe, path);
        const int n_variants =
            static_cast<int>(node.component->variants().size());
        const int original = node.choice->variant;
        for (int alt = 0; alt < n_variants; ++alt) {
          if (alt == original) continue;
          Choice neighbor = current;
          const NodeRef nref = locate(c, neighbor, path);
          nref.choice->variant = alt;
          // Re-shape children for the new variant.
          const Variant& nv = nref.component
                                  ->variants()[static_cast<std::size_t>(alt)];
          nref.choice->children.clear();
          for (const auto& child : nv.children) {
            nref.choice->children.push_back(default_choice(*child));
          }
          const Metrics m = evaluate(c, neighbor, d);
          ++evals;
          const double s = score(m, goal);
          if (s < best_neighbor_cost) {
            best_neighbor_cost = s;
            best_neighbor = std::move(neighbor);
            best_neighbor_metrics = m;
          }
        }
      }

      if (best_neighbor_cost < current_cost) {
        current = std::move(best_neighbor);
        current_metrics = best_neighbor_metrics;
        current_cost = best_neighbor_cost;
        improved = true;
      }
    }

    if (current_cost < best.cost) {
      best.cost = current_cost;
      best.metrics = current_metrics;
      best.choice = std::move(current);
    }
  }

  best.evaluations = evals;
  return best;
}

namespace {

void prune_within_variant(std::vector<ParetoEntry>& entries) {
  std::vector<ParetoEntry> kept;
  for (const auto& e : entries) {
    bool dominated = false;
    for (const auto& other : entries) {
      if (&other == &e || other.variant != e.variant) continue;
      if (dominates(other.metrics, e.metrics) &&
          !(other.metrics == e.metrics)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      // Deduplicate exact ties.
      bool duplicate = false;
      for (const auto& k : kept) {
        if (k.variant == e.variant && k.metrics == e.metrics) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) kept.push_back(e);
    }
  }
  entries = std::move(kept);
}

}  // namespace

std::vector<ParetoEntry> pareto_fold(const Component& c, unsigned d) {
  std::vector<ParetoEntry> result;
  const auto& variants = c.variants();
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const Variant& v = variants[vi];
    // Child frontiers.
    std::vector<std::vector<ParetoEntry>> fronts;
    fronts.reserve(v.children.size());
    for (const auto& child : v.children) {
      fronts.push_back(pareto_fold(*child, d));
    }
    // Cartesian product of child frontier entries.
    std::vector<std::size_t> idx(fronts.size(), 0);
    while (true) {
      std::vector<ChildEval> evals;
      evals.reserve(fronts.size());
      for (std::size_t i = 0; i < fronts.size(); ++i) {
        const ParetoEntry& e = fronts[i][idx[i]];
        evals.push_back(ChildEval{e.metrics, e.variant});
      }
      result.push_back(
          ParetoEntry{static_cast<int>(vi), v.combine(evals, d)});
      // Advance product index.
      std::size_t pos = 0;
      while (pos < fronts.size()) {
        if (++idx[pos] < fronts[pos].size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == fronts.size()) break;
      if (fronts.empty()) break;
    }
    if (fronts.empty()) {
      // No children: single entry already added by the loop above? No --
      // the while(true) body runs once with empty product, so nothing to do.
    }
  }
  prune_within_variant(result);
  return result;
}

double pareto_optimal_cost(const Component& c, unsigned d, Goal goal) {
  const auto frontier = pareto_fold(c, d);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : frontier) best = std::min(best, score(e.metrics, goal));
  return best;
}

}  // namespace convolve::hades
