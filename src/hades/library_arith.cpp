// Arithmetic templates: adders, modular multipliers, polynomial multipliers.
//
// Cost conventions (per operation on ~32-bit / degree-256 data):
//  * area_ge   -- silicon area in gate equivalents;
//  * latency_cc-- clock cycles for one operation;
//  * rand_bits -- fresh masking randomness per operation.
// Masking scaling: linear logic ~ (d+1); AND-dominated logic adds d(d+1)
// terms; each AND layer consumes d(d+1)/2 random bits per bit of datapath
// (the DOM gadget cost validated in convolve::masking).
#include <cmath>

#include "convolve/hades/library.hpp"

namespace convolve::hades::library {

namespace {

double dpairs(unsigned d) { return static_cast<double>(d) * (d + 1) / 2.0; }
double lin(unsigned d) { return static_cast<double>(d + 1); }
double nl(unsigned d) { return static_cast<double>(d) * (d + 1); }

// A leaf whose metrics follow the standard masking growth pattern:
//   area  = a_lin*(d+1) + a_nl*d(d+1)
//   lat   = l0 + l_mask (only when d > 0; masked gadgets add register stages)
//   rand  = r0 * d(d+1)/2
Variant scaled_leaf(std::string name, double a_lin, double a_nl, double l0,
                    double l_mask, double r0) {
  return leaf(std::move(name), [=](unsigned d) {
    Metrics m;
    m.area_ge = a_lin * lin(d) + a_nl * nl(d);
    m.latency_cc = l0 + (d > 0 ? l_mask : 0.0);
    m.rand_bits = r0 * dpairs(d);
    return m;
  });
}

}  // namespace

ComponentPtr adder_core() {
  // 32-bit adder microarchitectures. Carry chains are AND-heavy, so masked
  // orders hit the fast parallel-prefix adders hardest; the bit-serial
  // design trades 32x latency for minimal area and randomness.
  static const ComponentPtr c = make_component(
      "adder",
      {
          //           name          a_lin  a_nl   l0  l_mask  r0
          scaled_leaf("ripple",       230,   310,  8,   24,    64),
          scaled_leaf("cla4",         340,   520,  4,   12,   104),
          scaled_leaf("cla8",         420,   700,  3,    9,   136),
          scaled_leaf("kogge-stone",  980,  1450,  1,    5,   320),
          scaled_leaf("sklansky",     760,  1180,  1,    6,   264),
          scaled_leaf("brent-kung",   560,   860,  2,    8,   180),
          scaled_leaf("bit-serial",    90,   120, 32,   96,    12),
      });
  return c;
}

ComponentPtr adder_mod_q() {
  // Modular adder: core adder + reduction strategy + optional pipelining.
  static const ComponentPtr c = [] {
    const ComponentPtr reduction = make_component(
        "reduction",
        {
            scaled_leaf("cond-subtract", 180, 260, 1, 3, 48),
            scaled_leaf("barrett",       450, 640, 2, 4, 96),
            scaled_leaf("montgomery",    380, 560, 2, 5, 80),
        });
    const ComponentPtr pipeline = make_component(
        "pipe",
        {
            leaf("none", [](unsigned) { return Metrics{0, 0, 0}; }),
            // A pipeline register: area per share, one extra cycle.
            leaf("one-stage",
                 [](unsigned d) {
                   return Metrics{140 * lin(d), 1, 0};
                 }),
        });
    Variant v;
    v.name = "modq-adder";
    v.children = {adder_core(), reduction, pipeline};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned) {
      Metrics m = ch[0].metrics + ch[1].metrics + ch[2].metrics;
      return m;
    };
    return make_component("adder-mod-q", {v});
  }();
  return c;
}

ComponentPtr mod_mul_core() {
  // 31 modular-multiplier microarchitectures: 24 leaves plus a Karatsuba
  // variant whose inner adder is itself explored (7 nested choices).
  static const ComponentPtr c = [] {
    std::vector<Variant> variants = {
        //           name                a_lin  a_nl    l0 l_mask   r0
        scaled_leaf("schoolbook-d1",       600,   900, 1024, 2048,   40),
        scaled_leaf("schoolbook-d2",       950,  1500,  512, 1024,   72),
        scaled_leaf("schoolbook-d4",      1600,  2600,  256,  512,  136),
        scaled_leaf("schoolbook-d8",      2800,  4700,  128,  256,  264),
        scaled_leaf("schoolbook-d16",     5100,  8800,   64,  128,  520),
        scaled_leaf("schoolbook-d32",     9500, 16800,   32,   64, 1032),
        scaled_leaf("booth-r2",           1900,  3100,  192,  380,  210),
        scaled_leaf("booth-r4",           2600,  4400,   96,  190,  300),
        scaled_leaf("booth-r8",           3600,  6300,   48,   95,  430),
        scaled_leaf("wallace-3:2",        7200, 12600,    6,   18,  900),
        scaled_leaf("wallace-4:2",        8100, 14500,    5,   15, 1040),
        scaled_leaf("dadda",              6900, 12100,    6,   17,  860),
        scaled_leaf("bit-serial",          310,   420, 4096, 8192,   16),
        scaled_leaf("pipe-school-2",      2100,  3500,  130,  260,  280),
        scaled_leaf("pipe-school-3",      2400,  4000,   92,  184,  330),
        scaled_leaf("pipe-school-4",      2700,  4500,   72,  144,  380),
        scaled_leaf("pipe-school-5",      3000,  5000,   60,  120,  430),
        scaled_leaf("interleaved-1",      1200,  2000,  520, 1040,  120),
        scaled_leaf("interleaved-2",      1900,  3200,  260,  520,  220),
        scaled_leaf("interleaved-4",      3200,  5400,  130,  260,  400),
        scaled_leaf("shift-add-lsb",       800,  1250,  768, 1536,   64),
        scaled_leaf("shift-add-msb",       820,  1280,  768, 1536,   66),
        scaled_leaf("fios",               4400,  7600,   40,   80,  560),
        scaled_leaf("cios",               4200,  7200,   44,   88,  530),
    };
    // Karatsuba: three half-width multiplies are folded into the constants;
    // the recombination adder is an explored subcomponent.
    Variant karatsuba;
    karatsuba.name = "karatsuba";
    karatsuba.children = {adder_core()};
    karatsuba.combine = [](const std::vector<ChildEval>& ch, unsigned d) {
      const Metrics& add = ch[0].metrics;
      Metrics m;
      m.area_ge = 5200 * lin(d) + 8400 * nl(d) + 4.0 * add.area_ge;
      m.latency_cc = 24 + (d > 0 ? 48 : 0) + 2.0 * add.latency_cc;
      m.rand_bits = 640 * dpairs(d) + 4.0 * add.rand_bits;
      return m;
    };
    variants.push_back(std::move(karatsuba));
    return make_component("modmul", std::move(variants));
  }();
  return c;
}

ComponentPtr sparse_poly_mul() {
  // Multiplication by a sparse polynomial (BIKE-style): a multiplier core,
  // an accumulation strategy and a sparsity encoding.
  static const ComponentPtr c = [] {
    const ComponentPtr accumulator = make_component(
        "accumulator",
        {
            scaled_leaf("rotate-buffer", 2100, 3300, 64, 128, 120),
            scaled_leaf("index-list",    1500, 2400, 96, 192,  90),
            scaled_leaf("coalesced",     2800, 4400, 48,  96, 160),
            scaled_leaf("double-buffer", 3600, 5600, 32,  64, 210),
        });
    const ComponentPtr encoding = make_component(
        "encoding",
        {
            scaled_leaf("bitmap",     900, 1200, 16, 32, 40),
            scaled_leaf("run-length", 700,  950, 24, 48, 30),
            scaled_leaf("coordinate", 500,  700, 32, 64, 20),
        });
    Variant v;
    v.name = "sparse-polymul";
    v.children = {mod_mul_core(), accumulator, encoding};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned) {
      // 64 nonzero coefficients stream through the multiplier; the
      // accumulator and encoding pipeline overlaps half the multiplies.
      Metrics m;
      m.area_ge = ch[0].metrics.area_ge + ch[1].metrics.area_ge +
                  ch[2].metrics.area_ge;
      m.latency_cc = 64.0 * ch[0].metrics.latency_cc * 0.5 +
                     ch[1].metrics.latency_cc + ch[2].metrics.latency_cc;
      m.rand_bits = 64.0 * ch[0].metrics.rand_bits +
                    ch[1].metrics.rand_bits + ch[2].metrics.rand_bits;
      return m;
    };
    return make_component("sparse-poly-mul", {v});
  }();
  return c;
}

ComponentPtr poly_mul() {
  // NTT-based degree-256 polynomial multiplication: the butterfly datapath
  // is one explored modular adder plus one explored modular multiplier;
  // log2(256) = 8 stages of 128 butterflies each.
  static const ComponentPtr c = [] {
    Variant v;
    v.name = "ntt-polymul";
    v.children = {adder_mod_q(), mod_mul_core()};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned d) {
      const Metrics& add = ch[0].metrics;
      const Metrics& mul = ch[1].metrics;
      Metrics m;
      // One butterfly unit, twiddle ROM and sequencing control.
      m.area_ge = add.area_ge + mul.area_ge + 2600 * lin(d);
      // 3 NTT passes (2 forward, 1 inverse) x 8 stages x 128 butterflies,
      // each butterfly bound by the slower of adder/multiplier.
      const double butterfly =
          std::max(add.latency_cc, mul.latency_cc) + 1.0;
      m.latency_cc = 3.0 * 8.0 * 128.0 * butterfly / 4.0;  // 4-lane datapath
      m.rand_bits =
          3.0 * 8.0 * 128.0 * (add.rand_bits + mul.rand_bits) / 4.0;
      return m;
    };
    return make_component("poly-mul", {v});
  }();
  return c;
}

}  // namespace convolve::hades::library
