#include "convolve/hades/report.hpp"

#include <algorithm>
#include <cstdio>

namespace convolve::hades {

namespace {

std::string format_row(double area, double latency, double rand) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "| %.1f | %.0f | %.0f |", area, latency,
                rand);
  return buf;
}

}  // namespace

std::string markdown_frontier(const Component& c, unsigned d,
                              std::size_t max_rows) {
  auto frontier = pareto_fold(c, d);
  // Collapse across variants: global non-dominated set.
  std::vector<Metrics> global;
  for (const auto& entry : frontier) {
    bool dominated = false;
    for (const auto& other : frontier) {
      if (&other == &entry) continue;
      if (dominates(other.metrics, entry.metrics) &&
          !(other.metrics == entry.metrics)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      if (std::find(global.begin(), global.end(), entry.metrics) ==
          global.end()) {
        global.push_back(entry.metrics);
      }
    }
  }
  std::sort(global.begin(), global.end(),
            [](const Metrics& a, const Metrics& b) {
              return a.area_ge < b.area_ge;
            });
  if (global.size() > max_rows) global.resize(max_rows);

  std::string out = "# Pareto frontier: " + c.name() + " (d = " +
                    std::to_string(d) + ")\n\n";
  out += "| area [GE] | latency [cc] | randomness [bits] |\n";
  out += "|---|---|---|\n";
  for (const auto& m : global) {
    out += format_row(m.area_ge, m.latency_cc, m.rand_bits) + "\n";
  }
  return out;
}

std::string markdown_goal_summary(const Component& c,
                                  std::span<const unsigned> orders,
                                  std::span<const Goal> goals) {
  std::string out = "# Per-goal optima: " + c.name() + "\n\n";
  out += "| d | goal | area [GE] | latency [cc] | randomness [bits] | "
         "design |\n";
  out += "|---|---|---|---|---|---|\n";
  for (unsigned d : orders) {
    const auto results = exhaustive_search_multi(c, d, goals);
    for (std::size_t g = 0; g < goals.size(); ++g) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "| %u | %s | %.1f | %.0f | %.0f | ",
                    d, goal_name(goals[g]), results[g].metrics.area_ge,
                    results[g].metrics.latency_cc,
                    results[g].metrics.rand_bits);
      out += buf;
      out += describe(c, results[g].choice) + " |\n";
    }
  }
  return out;
}

}  // namespace convolve::hades
