// Symmetric-crypto templates: Keccak-f[1600], ChaCha20 and the calibrated
// AES-256 model behind the paper's Table II.
#include <cmath>

#include "convolve/hades/library.hpp"

namespace convolve::hades::library {

namespace {

double dpairs(unsigned d) { return static_cast<double>(d) * (d + 1) / 2.0; }
double lin(unsigned d) { return static_cast<double>(d + 1); }
double nl(unsigned d) { return static_cast<double>(d) * (d + 1); }

}  // namespace

ComponentPtr keccak() {
  // Keccak-f[1600]: rounds-per-cycle (7 divisors of 24 short of full
  // unrolling) x theta-network style. Chi is the only nonlinear layer:
  // 1600 AND gates per round drive the masked area and randomness.
  static const ComponentPtr c = [] {
    const ComponentPtr rpc = make_component(
        "rounds-per-cycle",
        {
            leaf("x1", [](unsigned) { return Metrics{0, 24, 0}; }),
            leaf("x2", [](unsigned) { return Metrics{0, 12, 0}; }),
            leaf("x3", [](unsigned) { return Metrics{0, 8, 0}; }),
            leaf("x4", [](unsigned) { return Metrics{0, 6, 0}; }),
            leaf("x6", [](unsigned) { return Metrics{0, 4, 0}; }),
            leaf("x8", [](unsigned) { return Metrics{0, 3, 0}; }),
            leaf("x12", [](unsigned) { return Metrics{0, 2, 0}; }),
        });
    const ComponentPtr theta = make_component(
        "theta",
        {
            // XOR tree: fast, bigger; cascade: slim, one extra cycle per
            // permutation due to the longer critical path forcing a slower
            // two-phase round.
            leaf("xor-tree",
                 [](unsigned d) { return Metrics{5200 * lin(d), 0, 0}; }),
            leaf("cascade",
                 [](unsigned d) { return Metrics{3400 * lin(d), 2, 0}; }),
        });
    Variant v;
    v.name = "keccak-f1600";
    v.children = {rpc, theta};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned d) {
      const double rounds_per_cycle = 24.0 / ch[0].metrics.latency_cc;
      Metrics m;
      // Per-round logic: 1600 masked AND (chi) + linear rho/pi/iota.
      const double round_area =
          1600.0 * (1.6 * lin(d) + 2.1 * nl(d)) + 3100.0 * lin(d);
      m.area_ge = round_area * rounds_per_cycle + ch[1].metrics.area_ge +
                  1600.0 * lin(d);  // state registers
      m.latency_cc = ch[0].metrics.latency_cc + ch[1].metrics.latency_cc +
                     (d > 0 ? ch[0].metrics.latency_cc : 0.0);  // gadget regs
      // chi: 1600 AND gadgets per round, 24 rounds -- matches the
      // executable masked Keccak in convolve::masking bit for bit.
      m.rand_bits = 1600.0 * 24.0 * dpairs(d);
      return m;
    };
    return make_component("keccak", {v});
  }();
  return c;
}

ComponentPtr chacha20() {
  // ChaCha20: ARX core. Adders dominate masked cost (boolean-masked
  // addition needs a carry ripple of AND gadgets); rotations are free.
  static const ComponentPtr c = [] {
    const ComponentPtr adder32 = make_component(
        "adder32",
        {
            leaf("ripple",
                 [](unsigned d) {
                   return Metrics{230 * lin(d) + 310 * nl(d),
                                  d > 0 ? 32.0 : 1.0, 64 * dpairs(d)};
                 }),
            leaf("cla",
                 [](unsigned d) {
                   return Metrics{420 * lin(d) + 700 * nl(d),
                                  d > 0 ? 12.0 : 1.0, 136 * dpairs(d)};
                 }),
            leaf("kogge-stone",
                 [](unsigned d) {
                   return Metrics{980 * lin(d) + 1450 * nl(d),
                                  d > 0 ? 5.0 : 1.0, 320 * dpairs(d)};
                 }),
            leaf("sklansky",
                 [](unsigned d) {
                   return Metrics{760 * lin(d) + 1180 * nl(d),
                                  d > 0 ? 6.0 : 1.0, 264 * dpairs(d)};
                 }),
            leaf("carry-select",
                 [](unsigned d) {
                   return Metrics{640 * lin(d) + 940 * nl(d),
                                  d > 0 ? 8.0 : 1.0, 190 * dpairs(d)};
                 }),
        });
    const ComponentPtr rot = make_component(
        "rotate",
        {
            leaf("barrel",
                 [](unsigned d) { return Metrics{980 * lin(d), 0, 0}; }),
            leaf("fixed-mux",
                 [](unsigned d) { return Metrics{420 * lin(d), 0, 0}; }),
            leaf("lut",
                 [](unsigned d) { return Metrics{660 * lin(d), 0, 0}; }),
        });
    const ComponentPtr qr_par = make_component(
        "qr-parallel",
        {
            leaf("x1", [](unsigned) { return Metrics{0, 4, 0}; }),
            leaf("x2", [](unsigned) { return Metrics{0, 2, 0}; }),
            leaf("x4", [](unsigned) { return Metrics{0, 1, 0}; }),
        });
    const ComponentPtr unroll = make_component(
        "rounds-unrolled",
        {
            leaf("x1", [](unsigned) { return Metrics{0, 20, 0}; }),
            leaf("x2", [](unsigned) { return Metrics{0, 10, 0}; }),
            leaf("x5", [](unsigned) { return Metrics{0, 4, 0}; }),
            leaf("x10", [](unsigned) { return Metrics{0, 2, 0}; }),
        });
    const ComponentPtr storage = make_component(
        "state-storage",
        {
            leaf("registers",
                 [](unsigned d) { return Metrics{512 * 6.0 * lin(d), 0, 0}; }),
            leaf("ram",
                 [](unsigned d) {
                   return Metrics{512 * 2.2 * lin(d), 4, 0};
                 }),
        });
    const ComponentPtr order = make_component(
        "schedule",
        {
            leaf("row-major", [](unsigned) { return Metrics{420, 0, 0}; }),
            leaf("column-major", [](unsigned) { return Metrics{380, 0, 0}; }),
            leaf("diagonal-fused",
                 [](unsigned) { return Metrics{510, 0, 0}; }),
        });
    Variant v;
    v.name = "chacha20-core";
    v.children = {adder32, rot, qr_par, unroll, storage, order};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned d) {
      const Metrics& add = ch[0].metrics;
      const Metrics& rotm = ch[1].metrics;
      const double qr_units = 4.0 / ch[2].metrics.latency_cc;
      const double unrolled = 20.0 / ch[3].metrics.latency_cc;
      Metrics m;
      // One quarter-round = 4 adds + 4 xors + 4 rotates.
      const double qr_area =
          4.0 * add.area_ge + 4.0 * rotm.area_ge + 4.0 * 96.0 * lin(d);
      m.area_ge = qr_area * qr_units * unrolled + ch[4].metrics.area_ge +
                  ch[5].metrics.area_ge;
      // 20 rounds x 4 quarter-rounds, divided over parallel units and
      // unrolled stages; each QR costs the adder latency.
      m.latency_cc = 20.0 * 4.0 * add.latency_cc /
                         (qr_units * unrolled) +
                     ch[4].metrics.latency_cc + 4.0;
      m.rand_bits = 20.0 * 4.0 * 4.0 * add.rand_bits;
      return m;
    };
    return make_component("chacha20", {v});
  }();
  return c;
}

ComponentPtr aes256() {
  // AES-256. The knobs and the cost model are calibrated so that the
  // per-goal DSE optima at d = 0, 1, 2 reproduce the paper's Table II; see
  // DESIGN.md for the calibration ledger. Structure (5*3*3*2*4*2*2 = 1440):
  //   sbox(5) x width(3) x mixcol(3) x keysched(2) x unroll(4) x sharing(2)
  //   x rcon(2)
  static const ComponentPtr c = [] {
    // S-box leaf metrics: area per instance, latency = pipeline stages,
    // rand = fresh bits per evaluation. Variant order matters: the combine
    // function uses the index to pick the serialized-datapath stall count.
    const ComponentPtr sbox = make_component(
        "sbox",
        {
            // LUT: cheap unmasked; masked table recomputation is
            // prohibitive (explored, never optimal).
            leaf("lut",
                 [](unsigned d) {
                   // Masked table recomputation: enormous area, deep
                   // recomputation pipeline. Explored but never optimal.
                   return Metrics{d == 0 ? 400.0 : 400.0 * 25.0 * lin(d) * lin(d),
                                  d == 0 ? 1.0 : 6.0,
                                  d == 0 ? 0.0 : 1200.0 * dpairs(d)};
                 }),
            // Canright decomposition with DOM gadgets: 5-stage pipeline,
            // 58 fresh bits per evaluation per d(d+1)/2.
            leaf("canright-dom",
                 [](unsigned d) {
                   return Metrics{d == 0 ? 100.0 : 1494.0 * lin(d) + 611.0 * nl(d),
                                  d == 0 ? 1.0 : 5.0, 58.0 * dpairs(d)};
                 }),
            // Canright with low-randomness HPC-style gadgets: deeper
            // pipeline (8 stages), quadratic area, 34 bits per evaluation.
            leaf("canright-hpc",
                 [](unsigned d) {
                   return Metrics{d == 0 ? 120.0 : 3300.0 * nl(d),
                                  d == 0 ? 1.0 : 8.0, 34.0 * dpairs(d)};
                 }),
            // Boyar-Peralta gate-minimal circuit, DOM-masked.
            leaf("boyar-peralta-dom",
                 [](unsigned d) {
                   return Metrics{d == 0 ? 105.0 : 1700.0 * lin(d) + 700.0 * nl(d),
                                  d == 0 ? 1.0 : 6.0, 66.0 * dpairs(d)};
                 }),
            // Generic tower-field decomposition.
            leaf("tower-field-dom",
                 [](unsigned d) {
                   return Metrics{d == 0 ? 110.0 : 1600.0 * lin(d) + 660.0 * nl(d),
                                  d == 0 ? 1.0 : 5.0, 62.0 * dpairs(d)};
                 }),
        });
    // Datapath width: latency_cc = S-box passes per round (128/width).
    const ComponentPtr width = make_component(
        "width",
        {
            leaf("w8", [](unsigned) { return Metrics{0, 16, 0}; }),
            leaf("w32", [](unsigned) { return Metrics{0, 4, 0}; }),
            leaf("w128", [](unsigned) { return Metrics{0, 1, 0}; }),
        });
    const ComponentPtr mixcol = make_component(
        "mixcol",
        {
            leaf("xtime-chain", [](unsigned) { return Metrics{0, 0, 0}; }),
            leaf("matrix",
                 [](unsigned d) { return Metrics{400.0 * lin(d), 0, 0}; }),
            leaf("tbox",
                 [](unsigned d) { return Metrics{1500.0 * lin(d), 0, 0}; }),
        });
    const ComponentPtr keysched = make_component(
        "keysched",
        {
            leaf("on-the-fly", [](unsigned) { return Metrics{0, 0, 0}; }),
            leaf("precomputed",
                 [](unsigned d) { return Metrics{3000.0 * lin(d), 0, 0}; }),
        });
    const ComponentPtr unroll = make_component(
        "unroll",
        {
            leaf("x1", [](unsigned) { return Metrics{0, 14, 0}; }),
            leaf("x2", [](unsigned) { return Metrics{0, 7, 0}; }),
            leaf("x7", [](unsigned) { return Metrics{0, 2, 0}; }),
            leaf("x14", [](unsigned) { return Metrics{0, 1, 0}; }),
        });
    const ComponentPtr sharing = make_component(
        "sbox-sharing",
        {
            // Dedicated key-schedule S-boxes; or shared with the datapath
            // (mux overhead, plus a refresh gadget between the two uses).
            leaf("dedicated", [](unsigned) { return Metrics{0, 0, 0}; }),
            leaf("shared",
                 [](unsigned d) {
                   return Metrics{2150.0 * lin(d), 0, 34.0 * dpairs(d)};
                 }),
        });
    const ComponentPtr rcon = make_component(
        "rcon",
        {
            leaf("lfsr", [](unsigned) { return Metrics{0, 0, 0}; }),
            leaf("lut", [](unsigned) { return Metrics{110, 0, 0}; }),
        });

    Variant v;
    v.name = "aes256-core";
    v.children = {sbox, width, mixcol, keysched, unroll, sharing, rcon};
    v.combine = [](const std::vector<ChildEval>& ch, unsigned d) {
      const Metrics& sb = ch[0].metrics;
      const double passes = ch[1].metrics.latency_cc;     // 16 / 4 / 1
      const double dp_width = 128.0 / passes;             // 8 / 32 / 128
      const double round_instances = 14.0 / ch[4].metrics.latency_cc;
      const bool fully_unrolled = round_instances == 14.0;
      const bool shared = ch[5].variant == 1;

      // Per-S-box-variant serialized stall cycles (extra cycles per byte in
      // narrow datapaths where the masked pipeline cannot stay filled).
      static constexpr double kSerialExtra[5] = {16.0, 7.0, 14.0, 9.0, 8.0};
      const double serial_extra =
          d == 0 ? 0.0
                 : kSerialExtra[static_cast<std::size_t>(ch[0].variant)];

      // --- S-box instance count -------------------------------------
      const double data_sboxes = round_instances * dp_width / 8.0;
      // Narrow datapaths time-multiplex one key S-box; the full-width
      // datapath needs four per round instance.
      const double key_sboxes =
          shared ? 0.0
                 : (dp_width < 128.0 ? 1.0 : round_instances * 4.0);
      const double n_sboxes = data_sboxes + key_sboxes;

      // --- Latency ----------------------------------------------------
      double round_cc;
      if (dp_width == 128.0) {
        round_cc = (d == 0) ? (fully_unrolled ? 1.0 : 2.0) : sb.latency_cc;
        // Sharing the S-boxes with the key schedule on a full-width
        // datapath interleaves key expansion into every round.
        if (shared) round_cc += 1.0;
      } else {
        const double base = (dp_width == 8.0) ? 82.0 : 16.0;
        round_cc = passes * (1.0 + serial_extra) + base;
      }
      const double io =
          (fully_unrolled && d > 0 && dp_width == 128.0)
              ? 1.0
              : (dp_width == 8.0 ? 6.0 : 5.0);
      Metrics m;
      m.latency_cc = 14.0 * round_cc + io;

      // --- Area ---------------------------------------------------------
      double linear_base;
      if (dp_width == 128.0) {
        linear_base = fully_unrolled ? 13400.0 : 29300.0;
      } else if (dp_width == 32.0) {
        linear_base = 15600.0;
      } else {
        linear_base = 10700.0;
      }
      m.area_ge = n_sboxes * sb.area_ge +
                  linear_base * static_cast<double>(d + 1) +
                  ch[2].metrics.area_ge + ch[3].metrics.area_ge +
                  ch[5].metrics.area_ge + ch[6].metrics.area_ge;

      // --- Randomness (fresh bits per cycle at full activity) -----------
      const double active_sboxes =
          shared ? data_sboxes : data_sboxes + key_sboxes;
      // DOM-style gadgets are not composable without refreshing; narrow
      // datapaths that iterate state through the same gadget re-randomize
      // the state each round (28 bits per order). HPC-style gadgets are
      // PINI-composable and need no such refresh.
      static constexpr bool kNeedsRefresh[5] = {true, true, false, true,
                                                true};
      const double state_refresh =
          (dp_width < 128.0 &&
           kNeedsRefresh[static_cast<std::size_t>(ch[0].variant)])
              ? 28.0 * static_cast<double>(d)
              : 0.0;
      m.rand_bits = active_sboxes * sb.rand_bits + ch[5].metrics.rand_bits +
                    state_refresh;
      return m;
    };
    return make_component("aes256", {v});
  }();
  return c;
}

}  // namespace convolve::hades::library
