#include "convolve/cim/adder_tree.hpp"

#include <stdexcept>

#include "convolve/common/leakage_model.hpp"

namespace convolve::cim {

namespace {
bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }
}  // namespace

AdderTree::AdderTree(int n_leaves) : n_leaves_(n_leaves) {
  if (!is_power_of_two(n_leaves)) {
    throw std::invalid_argument("AdderTree: leaf count must be a power of 2");
  }
  depth_ = 0;
  for (int n = n_leaves; n > 1; n /= 2) ++depth_;
  levels_.resize(static_cast<std::size_t>(depth_) + 1);
  int width = n_leaves;
  for (auto& level : levels_) {
    level.assign(static_cast<std::size_t>(width), 0);
    width /= 2;
  }
}

void AdderTree::reset() {
  for (auto& level : levels_) {
    for (auto& reg : level) reg = 0;
  }
}

AdderTree::Result AdderTree::step(std::span<const int> leaf_values) {
  if (static_cast<int>(leaf_values.size()) != n_leaves_) {
    throw std::invalid_argument("AdderTree::step: wrong leaf count");
  }
  Result r;
  // Level 0: leaf registers.
  for (int i = 0; i < n_leaves_; ++i) {
    r.switching_energy += leakage::reg_update(
        levels_[0][static_cast<std::size_t>(i)],
        static_cast<std::int64_t>(leaf_values[static_cast<std::size_t>(i)]));
  }
  // Adder levels.
  for (int k = 1; k <= depth_; ++k) {
    auto& prev = levels_[static_cast<std::size_t>(k - 1)];
    auto& cur = levels_[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < cur.size(); ++i) {
      r.switching_energy +=
          leakage::reg_update(cur[i], prev[2 * i] + prev[2 * i + 1]);
    }
  }
  r.sum = levels_[static_cast<std::size_t>(depth_)][0];
  return r;
}

int AdderTree::merge_level(int leaf_a, int leaf_b) const {
  if (leaf_a < 0 || leaf_a >= n_leaves_ || leaf_b < 0 || leaf_b >= n_leaves_) {
    throw std::out_of_range("AdderTree::merge_level: leaf out of range");
  }
  if (leaf_a == leaf_b) return 0;
  int a = leaf_a, b = leaf_b, level = 0;
  while (a != b) {
    a /= 2;
    b /= 2;
    ++level;
  }
  return level;
}

double AdderTree::predict_from_reset(
    const AdderTree& tree,
    std::span<const std::pair<int, int>> active_leaves) {
  // From an all-zero state, a register switching to value v costs HW(v).
  // Each active value travels alone until its subtree merges with another
  // active value's subtree. General exact computation: simulate the level
  // sums sparsely.
  std::vector<std::pair<int, std::int64_t>> cur;  // (position, value)
  cur.reserve(active_leaves.size());
  for (auto [idx, val] : active_leaves) cur.emplace_back(idx, val);
  double energy = 0.0;
  for (auto& [pos, val] : cur) {
    energy += leakage::settle_energy(static_cast<std::uint64_t>(val));
  }
  for (int k = 1; k <= tree.depth(); ++k) {
    std::vector<std::pair<int, std::int64_t>> next;
    for (auto& [pos, val] : cur) {
      const int parent = pos / 2;
      bool merged = false;
      for (auto& [npos, nval] : next) {
        if (npos == parent) {
          nval += val;
          merged = true;
          break;
        }
      }
      if (!merged) next.emplace_back(parent, val);
    }
    for (auto& [pos, val] : next) {
      energy += leakage::settle_energy(static_cast<std::uint64_t>(val));
    }
    cur = std::move(next);
  }
  return energy;
}

}  // namespace convolve::cim
