#include "convolve/cim/attack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "convolve/common/bytes.hpp"
#include "convolve/common/capture.hpp"
#include "convolve/common/leakage_model.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/stats.hpp"

namespace convolve::cim {

namespace {

// Measurement stream tags: every measurement runs on macro.fork(tag), so
// the noise / countermeasure randomness it sees is a pure function of the
// tag -- independent of measurement order and of the thread count.
// Tag 0 is the idle baseline, 1..n the phase-1 one-hot activations, and
// 1+n+i the phase-2 probes for row i (all probes of a row share one fork,
// drawn sequentially).
constexpr std::uint64_t kBaselineStream = 0;
std::uint64_t phase1_stream(int row) {
  return 1 + static_cast<std::uint64_t>(row);
}
std::uint64_t phase2_stream(int n_rows, int row) {
  return 1 + static_cast<std::uint64_t>(n_rows) +
         static_cast<std::uint64_t>(row);
}

// Average power of the first MAC cycle after reset, with the given rows
// active, over `traces` repetitions. Stateful: draws from `macro`'s rng;
// the repetition-ordered averaging contract lives in capture::mean_of,
// shared with the sca lab's trace measurements.
double measure_on(CimMacro& macro, const std::vector<int>& active_rows,
                  int traces) {
  std::vector<std::uint8_t> inputs(static_cast<std::size_t>(macro.n_rows()),
                                   0);
  for (int row : active_rows) inputs[static_cast<std::size_t>(row)] = 1;
  return capture::mean_of(traces, [&](int) {
    macro.reset();
    macro.clear_trace();
    macro.mac_cycle(inputs);
    return macro.trace().back();
  });
}

// Same measurement on a private fork: the result depends only on (macro
// state, stream, active_rows, traces).
double measure(const CimMacro& macro, std::uint64_t stream,
               const std::vector<int>& active_rows, int traces) {
  CimMacro fork = macro.fork(stream);
  return measure_on(fork, active_rows, traces);
}

// Attacker-side analytic template: expected power of a first cycle after
// reset with the given (row, value) pairs active. Uses only public
// information (tree netlist) plus the measured idle baseline.
double predict(const CimMacro& macro, double baseline,
               const std::vector<std::pair<int, int>>& active) {
  double energy = AdderTree::predict_from_reset(macro.tree(), active);
  // Accumulator register switches from 0 to the sum.
  std::int64_t sum = 0;
  for (auto [row, value] : active) sum += value;
  energy += leakage::settle_energy(static_cast<std::uint64_t>(sum));
  return baseline + energy;
}

}  // namespace

std::vector<int> hw_candidates(int hw, int bits) {
  std::vector<int> out;
  for (int v = 0; v < (1 << bits); ++v) {
    if (hamming_weight(static_cast<std::uint64_t>(v)) == hw) out.push_back(v);
  }
  return out;
}

Phase1Result run_phase1(CimMacro& macro, const AttackConfig& config) {
  Phase1Result r;
  // Idle baseline (no weight activated).
  const double baseline = measure(macro, kBaselineStream, {},
                                  config.traces_per_measurement);

  // One-hot features: row i's measurement lives on its own fork, so the
  // rows can be measured concurrently with identical results.
  r.features.assign(static_cast<std::size_t>(macro.n_rows()), 0.0);
  par::parallel_for(
      static_cast<std::uint64_t>(macro.n_rows()),
      [&](std::uint64_t i) {
        const int row = static_cast<int>(i);
        r.features[i] = measure(macro, phase1_stream(row), {row},
                                config.traces_per_measurement);
      },
      8);

  // k-means clustering into the 5 HW groups (the paper's Fig. 1).
  Xoshiro256 rng(config.seed);
  r.clustering = kmeans_1d(r.features, 5, rng);
  sort_clusters_by_centroid(r.clustering);

  // Label each weight's HW. The one-hot energy model is
  //   power = baseline + HW(w) * (tree depth + 2)
  // (the value travels through depth+1 register levels plus the MAC
  // accumulator), so the class is recoverable directly; k-means provides
  // the unsupervised grouping evidence reported in Fig. 1.
  const double per_hw = macro.tree().depth() + 2.0;
  r.hw_class.reserve(r.features.size());
  for (double f : r.features) {
    const int hw = static_cast<int>(std::lround((f - baseline) / per_hw));
    r.hw_class.push_back(std::clamp(hw, 0, 4));
  }
  return r;
}

AttackResult run_attack(CimMacro& macro, const AttackConfig& config) {
  AttackResult result;
  int counter = 0;
  const double baseline = measure(macro, kBaselineStream, {},
                                  config.traces_per_measurement);
  counter += config.traces_per_measurement;
  result.phase1 = run_phase1(macro, config);
  counter += (macro.n_rows() + 1) * config.traces_per_measurement;

  const int n = macro.n_rows();
  result.recovered.assign(static_cast<std::size_t>(n), -1);

  // Phase 1 output: extreme clusters are immediately known.
  for (int i = 0; i < n; ++i) {
    const int hw = result.phase1.hw_class[static_cast<std::size_t>(i)];
    if (hw == 0) result.recovered[static_cast<std::size_t>(i)] = 0;
    if (hw == 4) result.recovered[static_cast<std::size_t>(i)] = 15;
  }

  // Phase 2: resolve classes 1, 2, 3, reusing freshly recovered weights as
  // probe material for the later classes. Classes run in order (later
  // classes need earlier recoveries), but within a class each target row
  // only reads `known_rows` / `recovered` entries fixed at class start and
  // writes its own slot, so the targets run in parallel; each row's
  // measurements draw from its own fork.
  for (int hw = 1; hw <= 3; ++hw) {
    const std::vector<int> candidates = hw_candidates(hw);
    // Rows whose value is already known (probe material).
    std::vector<int> known_rows;
    for (int j = 0; j < n; ++j) {
      if (result.recovered[static_cast<std::size_t>(j)] >= 0) {
        known_rows.push_back(j);
      }
    }
    std::vector<int> targets;
    for (int i = 0; i < n; ++i) {
      if (result.phase1.hw_class[static_cast<std::size_t>(i)] != hw) continue;
      if (result.recovered[static_cast<std::size_t>(i)] >= 0) continue;
      targets.push_back(i);
    }
    std::vector<int> traces_spent(targets.size(), 0);
    par::parallel_for(targets.size(), [&](std::uint64_t ti) {
      const int i = targets[static_cast<std::size_t>(ti)];

      // --- Exhaustive probe-set minimization -------------------------
      // Find the smallest set of known rows whose joint co-activation
      // signature separates all candidate values of this class.
      std::vector<int> probe_set;
      for (std::size_t set_size = 1;
           set_size <= 3 && probe_set.empty() && set_size <= known_rows.size();
           ++set_size) {
        // Iterate over combinations of known rows of this size.
        std::vector<std::size_t> idx(set_size);
        for (std::size_t t = 0; t < set_size; ++t) idx[t] = t;
        while (true) {
          // Predicted signature per candidate: one prediction per probe.
          bool separates = true;
          std::vector<std::vector<double>> sig(candidates.size());
          for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
            for (std::size_t t = 0; t < set_size; ++t) {
              const int j = known_rows[idx[t]];
              sig[ci].push_back(predict(
                  macro, baseline,
                  {{i, candidates[ci]},
                   {j, result.recovered[static_cast<std::size_t>(j)]}}));
            }
          }
          for (std::size_t a = 0; a < sig.size() && separates; ++a) {
            for (std::size_t b = a + 1; b < sig.size(); ++b) {
              double max_gap = 0.0;
              for (std::size_t t = 0; t < set_size; ++t) {
                max_gap = std::max(max_gap, std::abs(sig[a][t] - sig[b][t]));
              }
              if (max_gap <= 2.0 * config.match_tolerance) {
                separates = false;
                break;
              }
            }
          }
          if (separates) {
            for (std::size_t t = 0; t < set_size; ++t) {
              probe_set.push_back(known_rows[idx[t]]);
            }
            break;
          }
          // Next combination.
          std::size_t pos = set_size;
          while (pos > 0) {
            --pos;
            if (idx[pos] != known_rows.size() - set_size + pos) break;
            if (pos == 0) {
              pos = known_rows.size();  // exhausted marker
              break;
            }
          }
          if (pos >= known_rows.size()) break;
          ++idx[pos];
          for (std::size_t t = pos + 1; t < set_size; ++t) {
            idx[t] = idx[t - 1] + 1;
          }
        }
      }
      if (probe_set.empty()) return;  // cannot separate; leave unknown

      // --- Measure and match ------------------------------------------
      CimMacro row_macro = macro.fork(phase2_stream(n, i));
      std::vector<double> measured;
      for (int j : probe_set) {
        measured.push_back(
            measure_on(row_macro, {i, j}, config.traces_per_measurement));
        traces_spent[static_cast<std::size_t>(ti)] +=
            config.traces_per_measurement;
      }
      double best_err = std::numeric_limits<double>::infinity();
      int best_candidate = -1;
      for (int c : candidates) {
        double err = 0.0;
        for (std::size_t t = 0; t < probe_set.size(); ++t) {
          const int j = probe_set[t];
          const double p = predict(
              macro, baseline,
              {{i, c}, {j, result.recovered[static_cast<std::size_t>(j)]}});
          err += std::abs(measured[t] - p);
        }
        if (err < best_err) {
          best_err = err;
          best_candidate = c;
        }
      }
      result.recovered[static_cast<std::size_t>(i)] = best_candidate;
    });
    for (const int spent : traces_spent) counter += spent;
  }

  result.measurements = counter;
  return result;
}

void evaluate_against_ground_truth(AttackResult& result,
                                   const std::vector<int>& true_weights) {
  if (true_weights.size() != result.recovered.size()) {
    throw std::invalid_argument("evaluate: size mismatch");
  }
  result.correct = 0;
  for (std::size_t i = 0; i < true_weights.size(); ++i) {
    if (result.recovered[i] == true_weights[i]) ++result.correct;
  }
  result.accuracy =
      static_cast<double>(result.correct) / true_weights.size();
}

}  // namespace convolve::cim
