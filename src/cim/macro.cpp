#include "convolve/cim/macro.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "convolve/common/leakage_model.hpp"

namespace convolve::cim {

namespace {
int tree_size_for(const MacroConfig& config) {
  // Dummy rows share the physical tree: round rows+dummies up to a power
  // of two.
  int needed = config.n_rows + config.dummy_rows;
  int size = 1;
  while (size < needed) size *= 2;
  return size;
}
}  // namespace

CimMacro::CimMacro(const MacroConfig& config, std::vector<int> weights)
    : config_(config),
      weights_(std::move(weights)),
      tree_(tree_size_for(config)),
      rng_(config.seed) {
  if (static_cast<int>(weights_.size()) != config_.n_rows) {
    throw std::invalid_argument("CimMacro: weight count != n_rows");
  }
  const int max_w = (1 << config_.weight_bits) - 1;
  for (int w : weights_) {
    if (w < 0 || w > max_w) {
      throw std::invalid_argument("CimMacro: weight out of range");
    }
  }
  dummy_weights_.resize(static_cast<std::size_t>(config_.dummy_rows));
  for (auto& w : dummy_weights_) {
    w = static_cast<int>(rng_.uniform(static_cast<std::uint64_t>(max_w) + 1));
  }
}

void CimMacro::reset() {
  tree_.reset();
  accumulator_ = 0;
  dummy_total_ = 0;
}

std::int64_t CimMacro::mac_cycle(const std::vector<std::uint8_t>& inputs) {
  if (static_cast<int>(inputs.size()) != config_.n_rows) {
    throw std::invalid_argument("CimMacro::mac_cycle: wrong input width");
  }
  // Bit-wise multiplication: product_i = w_i * x_i with x_i in {0,1}.
  std::vector<int> leaves(static_cast<std::size_t>(tree_.n_leaves()), 0);

  // Row shuffling countermeasure: permute which physical leaf each logical
  // row drives this cycle.
  std::vector<int> physical(static_cast<std::size_t>(config_.n_rows));
  std::iota(physical.begin(), physical.end(), 0);
  if (config_.shuffle_rows) {
    std::shuffle(physical.begin(), physical.end(), rng_);
  }
  for (int i = 0; i < config_.n_rows; ++i) {
    if (inputs[static_cast<std::size_t>(i)] != 0) {
      leaves[static_cast<std::size_t>(physical[static_cast<std::size_t>(i)])] =
          weights_[static_cast<std::size_t>(i)];
    }
  }
  // Dummy-row countermeasure: random subset of dummies fire every cycle.
  std::int64_t dummy_sum = 0;
  for (int j = 0; j < config_.dummy_rows; ++j) {
    if (rng_.next_bit()) {
      leaves[static_cast<std::size_t>(config_.n_rows + j)] =
          dummy_weights_[static_cast<std::size_t>(j)];
      dummy_sum += dummy_weights_[static_cast<std::size_t>(j)];
    }
  }

  const AdderTree::Result r = tree_.step(leaves);

  // Accumulator register switching.
  const double acc_energy =
      leakage::reg_update(accumulator_, accumulator_ + r.sum);

  double power = config_.static_power + r.switching_energy + acc_energy;
  if (config_.noise_sigma > 0.0) {
    power += rng_.normal(0.0, config_.noise_sigma);
  }
  trace_.push_back(power);

  // Architectural result excludes the dummies (they are subtracted by the
  // digital backend before the result is consumed).
  dummy_total_ += dummy_sum;
  return accumulator_ - dummy_total_;
}

std::int64_t CimMacro::mac_multibit(const std::vector<int>& activations,
                                    int act_bits) {
  if (static_cast<int>(activations.size()) != config_.n_rows) {
    throw std::invalid_argument("mac_multibit: wrong activation width");
  }
  if (act_bits < 1 || act_bits > 16) {
    throw std::invalid_argument("mac_multibit: bits out of range");
  }
  for (int a : activations) {
    if (a < 0 || a >= (1 << act_bits)) {
      throw std::invalid_argument("mac_multibit: activation out of range");
    }
  }
  std::int64_t result = 0;
  std::int64_t prev_total = accumulator_ - dummy_total_;
  for (int b = 0; b < act_bits; ++b) {
    std::vector<std::uint8_t> plane(static_cast<std::size_t>(config_.n_rows));
    for (int i = 0; i < config_.n_rows; ++i) {
      plane[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          (activations[static_cast<std::size_t>(i)] >> b) & 1);
    }
    const std::int64_t total = mac_cycle(plane);
    result += (total - prev_total) << b;
    prev_total = total;
  }
  return result;
}

CimMacro CimMacro::fork(std::uint64_t stream) const {
  CimMacro copy = *this;
  copy.rng_ = rng_.split(stream);
  copy.trace_.clear();
  return copy;
}

CimMacro random_macro(const MacroConfig& config, std::uint64_t weight_seed) {
  Xoshiro256 rng(weight_seed);
  const int max_w = (1 << config.weight_bits) - 1;
  std::vector<int> weights(static_cast<std::size_t>(config.n_rows));
  for (auto& w : weights) {
    w = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(max_w) + 1));
  }
  return CimMacro(config, std::move(weights));
}

}  // namespace convolve::cim
