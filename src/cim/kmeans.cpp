#include "convolve/cim/kmeans.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "convolve/common/parallel.hpp"

namespace convolve::cim {

namespace {

std::vector<double> kmeanspp_init(const std::vector<double>& points, int k,
                                  Xoshiro256& rng) {
  std::vector<double> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(points[rng.uniform(points.size())]);
  std::vector<double> dist_sq(points.size());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double c : centroids) {
        best = std::min(best, (points[i] - c) * (points[i] - c));
      }
      dist_sq[i] = best;
      total += best;
    }
    if (total == 0.0) {
      // All points coincide with existing centroids; fill arbitrarily.
      centroids.push_back(points[rng.uniform(points.size())]);
      continue;
    }
    double target = rng.uniform_real() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= dist_sq[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult lloyd(const std::vector<double>& points,
                   std::vector<double> centroids, int max_iterations) {
  const int k = static_cast<int>(centroids.size());
  KMeansResult r;
  r.centroids = std::move(centroids);
  r.assignment.assign(points.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Assignment step: each point's nearest centroid is a pure function of
    // (point, centroids), so points are assigned in parallel. The init and
    // the update step stay serial (they are cheap and order-sensitive).
    std::atomic<bool> changed{false};
    par::parallel_for(
        points.size(),
        [&](std::uint64_t i) {
          int best = 0;
          double best_d = std::numeric_limits<double>::infinity();
          for (int c = 0; c < k; ++c) {
            const double d =
                (points[i] - r.centroids[static_cast<std::size_t>(c)]) *
                (points[i] - r.centroids[static_cast<std::size_t>(c)]);
            if (d < best_d) {
              best_d = d;
              best = c;
            }
          }
          if (r.assignment[i] != best) {
            r.assignment[i] = best;
            changed.store(true, std::memory_order_relaxed);
          }
        },
        64);
    // Update step.
    std::vector<double> sum(static_cast<std::size_t>(k), 0.0);
    std::vector<int> count(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sum[static_cast<std::size_t>(r.assignment[i])] += points[i];
      ++count[static_cast<std::size_t>(r.assignment[i])];
    }
    for (int c = 0; c < k; ++c) {
      if (count[static_cast<std::size_t>(c)] > 0) {
        r.centroids[static_cast<std::size_t>(c)] =
            sum[static_cast<std::size_t>(c)] /
            count[static_cast<std::size_t>(c)];
      }
    }
    r.iterations = iter + 1;
    if (!changed && iter > 0) break;
  }
  r.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d =
        points[i] - r.centroids[static_cast<std::size_t>(r.assignment[i])];
    r.inertia += d * d;
  }
  return r;
}

}  // namespace

KMeansResult kmeans_1d(const std::vector<double>& points, int k,
                       Xoshiro256& rng, int restarts, int max_iterations) {
  if (k <= 0) throw std::invalid_argument("kmeans_1d: k <= 0");
  if (points.empty()) throw std::invalid_argument("kmeans_1d: no points");
  if (static_cast<std::size_t>(k) > points.size()) {
    throw std::invalid_argument("kmeans_1d: k > number of points");
  }
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < restarts; ++r) {
    KMeansResult candidate =
        lloyd(points, kmeanspp_init(points, k, rng), max_iterations);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

void sort_clusters_by_centroid(KMeansResult& result) {
  const int k = static_cast<int>(result.centroids.size());
  std::vector<int> order(static_cast<std::size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return result.centroids[static_cast<std::size_t>(a)] <
           result.centroids[static_cast<std::size_t>(b)];
  });
  // rank[old] = new index
  std::vector<int> rank(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  }
  std::vector<double> sorted(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    sorted[static_cast<std::size_t>(i)] =
        result.centroids[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  }
  result.centroids = std::move(sorted);
  for (auto& a : result.assignment) {
    a = rank[static_cast<std::size_t>(a)];
  }
}

}  // namespace convolve::cim
