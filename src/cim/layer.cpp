#include "convolve/cim/layer.hpp"

#include <stdexcept>

namespace convolve::cim {

DenseLayer::DenseLayer(const LayerConfig& config,
                       const std::vector<std::vector<int>>& weights)
    : config_(config), weights_(weights) {
  if (static_cast<int>(weights.size()) != config.outputs) {
    throw std::invalid_argument("DenseLayer: weight rows != outputs");
  }
  if (config.requant_shift < 0 || config.requant_shift > 31) {
    throw std::invalid_argument("DenseLayer: bad requant shift");
  }
  columns_.reserve(weights.size());
  for (int o = 0; o < config.outputs; ++o) {
    MacroConfig mc = config.macro;
    mc.n_rows = config.inputs;
    mc.weight_bits = config.weight_bits;
    mc.seed = config.macro.seed + static_cast<std::uint64_t>(o) * 0x9E37u;
    columns_.emplace_back(mc, weights[static_cast<std::size_t>(o)]);
  }
}

std::vector<std::int64_t> DenseLayer::forward(
    const std::vector<int>& activations) {
  std::vector<std::int64_t> out;
  out.reserve(columns_.size());
  for (auto& column : columns_) {
    column.reset();
    const std::int64_t mac =
        column.mac_multibit(activations, config_.activation_bits);
    const std::int64_t relu = mac > 0 ? mac : 0;
    out.push_back(relu >> config_.requant_shift);
  }
  return out;
}

DenseLayer random_layer(const LayerConfig& config, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const int max_w = (1 << config.weight_bits) - 1;
  std::vector<std::vector<int>> weights(
      static_cast<std::size_t>(config.outputs));
  for (auto& row : weights) {
    row.resize(static_cast<std::size_t>(config.inputs));
    for (auto& w : row) {
      w = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(max_w) + 1));
    }
  }
  return DenseLayer(config, weights);
}

}  // namespace convolve::cim
