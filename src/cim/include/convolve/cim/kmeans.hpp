// k-means clustering (Lloyd's algorithm with k-means++ seeding),
// implemented from scratch. Phase 1 of the CIM attack clusters per-weight
// power features into Hamming-weight classes 0..4 (the paper's Fig. 1 used
// scikit-learn; this is the equivalent primitive).
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/common/rng.hpp"

namespace convolve::cim {

struct KMeansResult {
  std::vector<double> centroids;        // k centroids (1-D features)
  std::vector<int> assignment;          // cluster index per point
  double inertia = 0.0;                 // sum of squared distances
  int iterations = 0;
};

/// Cluster 1-D points into k clusters. Deterministic given the rng seed.
/// Runs `restarts` k-means++ initializations and keeps the best inertia.
KMeansResult kmeans_1d(const std::vector<double>& points, int k,
                       Xoshiro256& rng, int restarts = 8,
                       int max_iterations = 100);

/// Relabel clusters so that centroid values are ascending (cluster 0 =
/// smallest centroid). For the CIM attack this makes cluster index == HW.
void sort_clusters_by_centroid(KMeansResult& result);

}  // namespace convolve::cim
