// A dense NN layer on CIM macros.
//
// One macro column per output neuron (the usual digital-CIM floorplan):
// forward() runs bit-serial MACs over shared activations, then applies
// ReLU and a right-shift requantization. This is the deployment surface
// the paper's Section III-C attack steals from -- and every column
// inherits the macro's countermeasure configuration.
#pragma once

#include <vector>

#include "convolve/cim/macro.hpp"

namespace convolve::cim {

struct LayerConfig {
  int inputs = 64;        // rows per macro (power of two)
  int outputs = 8;        // macro columns
  int weight_bits = 4;
  int activation_bits = 4;
  int requant_shift = 4;  // output >>= shift after ReLU
  MacroConfig macro;      // countermeasures/noise apply to every column
};

class DenseLayer {
 public:
  /// weights[o] is the 4-bit weight vector of output neuron o.
  DenseLayer(const LayerConfig& config,
             const std::vector<std::vector<int>>& weights);

  /// Forward pass: y_o = relu(sum_i w_oi * x_i) >> requant_shift.
  std::vector<std::int64_t> forward(const std::vector<int>& activations);

  int inputs() const { return config_.inputs; }
  int outputs() const { return config_.outputs; }

  /// Column access for attacks/tests.
  CimMacro& column(int o) { return columns_.at(static_cast<std::size_t>(o)); }
  const std::vector<std::vector<int>>& secret_weights() const {
    return weights_;
  }

 private:
  LayerConfig config_;
  std::vector<std::vector<int>> weights_;
  std::vector<CimMacro> columns_;
};

/// Build a layer with deterministic pseudo-random weights.
DenseLayer random_layer(const LayerConfig& config, std::uint64_t seed);

}  // namespace convolve::cim
