// Digital SRAM compute-in-memory macro with a power side channel.
//
// Models the macro of the paper's Section III-C: 4-bit weights in an SRAM
// column, bit-wise multiplication with binary inputs (selective inclusion of
// weights), an adder tree and a MAC accumulator register. Every MAC cycle
// emits a power sample: adder-tree and accumulator switching (Hamming
// distance) plus optional Gaussian measurement noise. Countermeasures
// (random dummy rows, input shuffling) can be enabled to evaluate defenses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "convolve/cim/adder_tree.hpp"
#include "convolve/common/rng.hpp"

namespace convolve::cim {

struct MacroConfig {
  int n_rows = 64;            // weights per column (power of two)
  int weight_bits = 4;        // 4-bit weights as in the paper
  double noise_sigma = 0.0;   // Gaussian noise on each power sample
  double static_power = 2.0;  // constant baseline per cycle
  // Countermeasures -------------------------------------------------------
  bool shuffle_rows = false;   // random row permutation per cycle
  int dummy_rows = 0;          // extra rows with random weights activated
                               // randomly each cycle (power blinding)
  std::uint64_t seed = 0x51DE;  // noise / countermeasure randomness
};

class CimMacro {
 public:
  CimMacro(const MacroConfig& config, std::vector<int> weights);

  /// One MAC cycle: inputs[i] in {0,1} selects whether weight i joins the
  /// accumulation. Returns the MAC sum (architectural result). The power
  /// sample is appended to the trace.
  std::int64_t mac_cycle(const std::vector<std::uint8_t>& inputs);

  /// Multi-bit activations, processed bit-serially (one adder-tree pass
  /// per activation bit-plane, shift-accumulated) as in digital CIM
  /// macros. Returns the dot product sum(w_i * x_i). Emits `act_bits`
  /// power samples. Activations must fit in `act_bits` bits.
  std::int64_t mac_multibit(const std::vector<int>& activations,
                            int act_bits);

  /// Precharge: reset adder tree registers and the accumulator.
  void reset();

  const std::vector<double>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  int n_rows() const { return config_.n_rows; }
  int weight_bits() const { return config_.weight_bits; }
  const MacroConfig& config() const { return config_; }

  /// Ground truth for tests/benches (a real attacker cannot call this).
  const std::vector<int>& secret_weights() const { return weights_; }

  /// The attacker-visible netlist structure (positions, tree shape).
  const AdderTree& tree() const { return tree_; }

  /// Copy of this macro whose noise / countermeasure randomness comes from
  /// the private derived stream rng.split(stream) (trace cleared, *this
  /// untouched). Measurements on fork(s) depend only on `stream` and the
  /// macro state, never on how many other forks ran or on which thread --
  /// this is what makes the extraction attack thread-count invariant.
  CimMacro fork(std::uint64_t stream) const;

 private:
  MacroConfig config_;
  std::vector<int> weights_;
  std::vector<int> dummy_weights_;
  AdderTree tree_;
  std::int64_t accumulator_ = 0;
  std::int64_t dummy_total_ = 0;
  std::vector<double> trace_;
  Xoshiro256 rng_;
};

/// Convenience: build a macro with uniformly random weights.
CimMacro random_macro(const MacroConfig& config, std::uint64_t weight_seed);

}  // namespace convolve::cim
