// Gate-level-style adder tree with a Hamming-distance switching model.
//
// The digital CIM macro of the paper (Section III-C) multiplies binary
// inputs with 4-bit SRAM weights and accumulates the products through a
// pipelined adder tree into a MAC register. Its dynamic power is dominated
// by register switching, which a Hamming-distance model captures: every
// pipeline register contributes energy proportional to the number of bits
// that flip. This is the signal the paper's attack exploits -- the authors
// observe that "the switching activity of the accumulator can be confined
// to the desired level through input manipulation".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace convolve::cim {

/// Balanced binary adder tree over n_leaves inputs with per-level pipeline
/// registers. Leaf count must be a power of two.
class AdderTree {
 public:
  explicit AdderTree(int n_leaves);

  struct Result {
    std::int64_t sum = 0;
    double switching_energy = 0.0;  // Hamming-distance units
  };

  /// Clock one accumulation of `leaf_values` through the tree; the energy
  /// is the total Hamming distance between the previous and new register
  /// contents at every level (plus the root register).
  Result step(std::span<const int> leaf_values);

  /// Reset all pipeline registers to zero (precharge), as the attack does
  /// between measurements.
  void reset();

  int n_leaves() const { return n_leaves_; }
  int depth() const { return depth_; }

  /// Depth of the lowest-common-ancestor level of two leaves: the number
  /// of levels in which their values travel separately. Exposed because
  /// the attacker (who knows the netlist, not the weights) uses it to
  /// predict co-activation signatures.
  int merge_level(int leaf_a, int leaf_b) const;

  /// Analytic prediction of the switching energy of one step from a reset
  /// state with exactly the given leaf values (no noise). Used by the
  /// attack's template dictionary.
  static double predict_from_reset(const AdderTree& tree,
                                   std::span<const std::pair<int, int>>
                                       active_leaves /* (index, value) */);

 private:
  int n_leaves_;
  int depth_;
  // levels_[k] holds the register values after level k's adders;
  // levels_[0] is the leaf register stage.
  std::vector<std::vector<std::int64_t>> levels_;
};

}  // namespace convolve::cim
