// The two-phase weight-extraction attack of Section III-C.
//
// Phase 1: activate each weight alone, average T power traces, cluster the
// per-weight features with k-means into five groups and label them HW 0..4
// by centroid order (the paper's Fig. 1). Weights in the extreme clusters
// are immediately known (HW 0 -> value 0, HW 4 -> value 15).
//
// Phase 2: for each remaining weight, co-activate it with already-known
// weights and compare the measured power against an analytic template (the
// attacker knows the netlist, not the weights) to single out the value
// among the candidates of its HW class (the paper's Fig. 2 shows HW = 3:
// values 7, 11, 13, 14 become distinguishable next to a known weight). The
// probe set is minimized by exhaustive search over known-weight subsets,
// "optimized through exhaustive search, minimizes additions".
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/cim/kmeans.hpp"
#include "convolve/cim/macro.hpp"

namespace convolve::cim {

struct AttackConfig {
  int traces_per_measurement = 1;  // averaging factor (raise under noise)
  std::uint64_t seed = 0xA77AC3;   // attacker-side randomness (k-means)
  double match_tolerance = 0.4;    // template match threshold (HD units)
};

struct Phase1Result {
  std::vector<double> features;  // mean power per weight, one-hot activated
  std::vector<int> hw_class;     // inferred Hamming weight per weight
  KMeansResult clustering;
};

struct AttackResult {
  Phase1Result phase1;
  std::vector<int> recovered;       // recovered weight values (-1 unknown)
  int measurements = 0;             // total MAC measurements spent
  int correct = 0;                  // vs ground truth (filled by evaluate)
  double accuracy = 0.0;
};

/// Candidate 4-bit values for a Hamming-weight class.
std::vector<int> hw_candidates(int hw, int bits = 4);

/// Run phase 1 only. Every measurement runs on a private macro fork (see
/// CimMacro::fork) keyed by a fixed stream tag, so the result is a pure
/// function of (macro state, config) -- identical for every thread count
/// and measurement order; `macro` itself is not advanced.
Phase1Result run_phase1(CimMacro& macro, const AttackConfig& config);

/// Full two-phase attack. The attacker only uses macro.mac_cycle(),
/// macro.reset(), the trace, and the public tree structure. Same fork
/// discipline as run_phase1: deterministic per (macro state, config),
/// independent of the thread count.
AttackResult run_attack(CimMacro& macro, const AttackConfig& config);

/// Fill in correctness fields against the ground-truth weights.
void evaluate_against_ground_truth(AttackResult& result,
                                   const std::vector<int>& true_weights);

}  // namespace convolve::cim
