// Leakage assessment and regression-based power analysis for the CIM macro.
//
// Two industry-standard evaluations complementing the paper's chosen-input
// attack:
//  * TVLA (Welch t-test): fixed-vs-random weight-column comparison; |t| >
//    4.5 flags exploitable first-order leakage. This is the methodology a
//    CONVOLVE evaluation lab would apply to certify a hardened macro.
//  * Known-input regression analysis (CPA/LRA): an attacker who cannot
//    choose inputs (no one-hot probing), only observes random activations.
//    Because the macro's leakage is linear in the Hamming weight, the
//    Pearson distinguisher is scale-invariant across weight values of the
//    same HW, so the attack estimates each row's HW via the OLS regression
//    coefficient of power on the row's activation bit. It recovers HW
//    classes only -- exact values need the paper's chosen-input phase 2,
//    which quantifies how much stronger the chosen-input model is.
#pragma once

#include <vector>

#include "convolve/cim/macro.hpp"

namespace convolve::cim {

struct TvlaResult {
  double t_statistic = 0.0;  // Welch t between fixed and random sets
  bool leaks = false;        // |t| > threshold
  double threshold = 4.5;
  int traces_per_set = 0;
};

/// Fixed-vs-random TVLA on the macro architecture: power traces from a
/// macro programmed with a fixed weight column vs. macros with random
/// columns, under identical random input sequences. `config` carries the
/// countermeasure settings under evaluation.
TvlaResult tvla_fixed_vs_random(const MacroConfig& config, int traces_per_set,
                                std::uint64_t seed);

struct CpaResult {
  std::vector<int> recovered_hw;  // estimated Hamming weight per row
  std::vector<double> coefficient;  // raw regression slope per row
  int correct = 0;                // vs ground-truth HW
  double accuracy = 0.0;
};

/// Known-input attack: apply `n_traces` uniformly random activation
/// vectors, regress power on each row's activation bit, estimate HW.
CpaResult cpa_known_input_attack(CimMacro& macro, int n_traces,
                                 std::uint64_t seed);

/// Fill correctness fields against the ground-truth weights (compares
/// recovered HW to HW(w)).
void evaluate_cpa(CpaResult& result, const std::vector<int>& true_weights);

}  // namespace convolve::cim
