#include "convolve/cim/leakage.hpp"

#include <algorithm>
#include <cmath>

#include "convolve/common/bytes.hpp"
#include "convolve/common/stats.hpp"

namespace convolve::cim {

TvlaResult tvla_fixed_vs_random(const MacroConfig& config, int traces_per_set,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const int max_w = (1 << config.weight_bits) - 1;

  // The fixed column: a constant vector whose Hamming-weight profile
  // differs from the random-column expectation (mean HW 2), so any
  // weight-dependence of the power shows up in the first-order statistic.
  std::vector<int> fixed_weights(static_cast<std::size_t>(config.n_rows));
  for (std::size_t i = 0; i < fixed_weights.size(); ++i) {
    fixed_weights[i] = (i % 2 == 0) ? max_w : (max_w - 4);  // HW 4 / HW 3
  }

  std::vector<double> fixed_set, random_set;
  fixed_set.reserve(static_cast<std::size_t>(traces_per_set));
  random_set.reserve(static_cast<std::size_t>(traces_per_set));

  for (int t = 0; t < traces_per_set; ++t) {
    // Shared random input vector for this pair of measurements.
    std::vector<std::uint8_t> inputs(static_cast<std::size_t>(config.n_rows));
    for (auto& x : inputs) x = static_cast<std::uint8_t>(rng.next_bit());

    MacroConfig cfg = config;
    cfg.seed = rng.next_u64();  // countermeasure/noise randomness per run
    CimMacro fixed(cfg, fixed_weights);
    fixed.reset();
    fixed.mac_cycle(inputs);
    fixed_set.push_back(fixed.trace().back());

    MacroConfig rcfg = config;
    rcfg.seed = rng.next_u64();
    CimMacro random = random_macro(rcfg, rng.next_u64());
    random.reset();
    random.mac_cycle(inputs);
    random_set.push_back(random.trace().back());
  }

  TvlaResult result;
  result.traces_per_set = traces_per_set;
  result.t_statistic = welch_t(fixed_set, random_set);
  result.leaks = std::abs(result.t_statistic) > result.threshold;
  return result;
}

CpaResult cpa_known_input_attack(CimMacro& macro, int n_traces,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const int n = macro.n_rows();

  std::vector<std::vector<std::uint8_t>> inputs;
  std::vector<double> power;
  inputs.reserve(static_cast<std::size_t>(n_traces));
  power.reserve(static_cast<std::size_t>(n_traces));
  // Low-duty-cycle activations (typical for event-driven edge workloads):
  // sparse inputs keep adder-tree merges rare, so each row's marginal
  // power effect stays close to its isolated switching cost.
  auto draw_input = [&rng, n]() {
    std::vector<std::uint8_t> x(static_cast<std::size_t>(n));
    for (auto& b : x) b = static_cast<std::uint8_t>(rng.uniform(32) == 0);
    return x;
  };
  for (int t = 0; t < n_traces; ++t) {
    std::vector<std::uint8_t> x = draw_input();
    macro.reset();
    macro.clear_trace();
    macro.mac_cycle(x);
    inputs.push_back(std::move(x));
    power.push_back(macro.trace().back());
  }

  // Per-row OLS slope: beta_i = cov(P, x_i) / var(x_i). With dense
  // activations the adder tree merges partial sums, so the marginal effect
  // of one row is sub-linear in depth; the mapping slope -> HW is learned
  // on a profiling device with known weights (standard template-attack
  // assumption, same as the paper's phase 2 predictions).
  auto slopes_for = [n, n_traces](const std::vector<std::vector<std::uint8_t>>&
                                      xs,
                                  const std::vector<double>& ps) {
    std::vector<double> betas(static_cast<std::size_t>(n));
    const double p_mean = mean(ps);
    for (int i = 0; i < n; ++i) {
      double x_mean = 0.0;
      for (const auto& x : xs) x_mean += x[static_cast<std::size_t>(i)];
      x_mean /= n_traces;
      double cov = 0.0, var = 0.0;
      for (int t = 0; t < n_traces; ++t) {
        const double dx =
            xs[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] -
            x_mean;
        cov += dx * (ps[static_cast<std::size_t>(t)] - p_mean);
        var += dx * dx;
      }
      betas[static_cast<std::size_t>(i)] = (var > 0.0) ? cov / var : 0.0;
    }
    return betas;
  };

  // --- Profiling phase: identical macro architecture, known weights ----
  MacroConfig profile_config = macro.config();
  profile_config.seed = seed ^ 0x9E3779B97F4A7C15ull;
  CimMacro profiler = random_macro(profile_config, seed ^ 0xABCD);
  std::vector<std::vector<std::uint8_t>> p_inputs;
  std::vector<double> p_power;
  p_inputs.reserve(static_cast<std::size_t>(n_traces));
  p_power.reserve(static_cast<std::size_t>(n_traces));
  for (int t = 0; t < n_traces; ++t) {
    std::vector<std::uint8_t> x = draw_input();
    profiler.reset();
    profiler.clear_trace();
    profiler.mac_cycle(x);
    p_inputs.push_back(std::move(x));
    p_power.push_back(profiler.trace().back());
  }
  const std::vector<double> profile_betas = slopes_for(p_inputs, p_power);
  // Per-HW centroid slope from the profiler's known weights.
  double centroid[5] = {0, 0, 0, 0, 0};
  int count[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < n; ++i) {
    const int hw = hamming_weight(static_cast<std::uint64_t>(
        profiler.secret_weights()[static_cast<std::size_t>(i)]));
    centroid[hw] += profile_betas[static_cast<std::size_t>(i)];
    ++count[hw];
  }
  for (int hw = 0; hw < 5; ++hw) {
    // Fall back to a linear grid when a class is absent in the profile.
    centroid[hw] = (count[hw] > 0) ? centroid[hw] / count[hw]
                                   : hw * (macro.tree().depth() + 2.0);
  }

  // --- Attack phase: nearest-centroid classification of target slopes --
  const std::vector<double> betas = slopes_for(inputs, power);
  CpaResult result;
  result.recovered_hw.resize(static_cast<std::size_t>(n));
  result.coefficient = betas;
  for (int i = 0; i < n; ++i) {
    int best_hw = 0;
    double best_dist = std::abs(betas[static_cast<std::size_t>(i)] -
                                centroid[0]);
    for (int hw = 1; hw < 5; ++hw) {
      const double dist =
          std::abs(betas[static_cast<std::size_t>(i)] - centroid[hw]);
      if (dist < best_dist) {
        best_dist = dist;
        best_hw = hw;
      }
    }
    result.recovered_hw[static_cast<std::size_t>(i)] = best_hw;
  }
  return result;
}

void evaluate_cpa(CpaResult& result, const std::vector<int>& true_weights) {
  result.correct = 0;
  for (std::size_t i = 0; i < true_weights.size(); ++i) {
    const int true_hw = hamming_weight(static_cast<std::uint64_t>(
        true_weights[i]));
    result.correct += (result.recovered_hw[i] == true_hw);
  }
  result.accuracy =
      static_cast<double>(result.correct) / true_weights.size();
}

}  // namespace convolve::cim
