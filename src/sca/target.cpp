#include "convolve/sca/target.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "convolve/common/capture.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace convolve::sca {

#if CONVOLVE_TELEMETRY_ENABLED
namespace {
telemetry::Counter t_traces{"sca.traces_captured"};
telemetry::Counter t_samples{"sca.samples"};
// Lane utilization of the bitsliced path: blocks evaluated, lane slots
// those blocks provided (blocks * 64) and slots actually carrying a trace.
// active/slots < 1 only on tail blocks, so a healthy campaign sits at ~1.
telemetry::Counter t_lane_blocks{"sca.lane_blocks"};
telemetry::Counter t_lane_slots{"sca.lane_slots"};
telemetry::Counter t_lanes_active{"sca.lanes_active"};
}  // namespace
#endif

MaskedTraceTarget::MaskedTraceTarget(masking::MaskedCircuit masked,
                                     int plain_inputs, TraceConfig config,
                                     BitOrder bit_order)
    : masked_(std::move(masked)),
      plain_inputs_(plain_inputs),
      bit_order_(bit_order),
      simulator_(masked_.circuit, config) {
  if (plain_inputs <= 0 || plain_inputs > 32) {
    throw std::invalid_argument("MaskedTraceTarget: plain_inputs not in 1..32");
  }
  if (static_cast<std::size_t>(plain_inputs) !=
      masked_.input_share_base.size()) {
    throw std::invalid_argument(
        "MaskedTraceTarget: plain_inputs != masked input count");
  }
}

void MaskedTraceTarget::capture(std::uint32_t plain_value, Xoshiro256& rng,
                                TraceScratch& scratch,
                                std::span<double> out) const {
  const unsigned order = masked_.order;
  for (int i = 0; i < plain_inputs_; ++i) {
    const int pos =
        bit_order_ == BitOrder::kLsbFirst ? i : plain_inputs_ - 1 - i;
    std::uint8_t bit = static_cast<std::uint8_t>((plain_value >> pos) & 1u);
    const std::size_t base = static_cast<std::size_t>(
        masked_.input_share_base[static_cast<std::size_t>(i)]);
    // Fresh uniform sharing: the first `order` shares are random, the last
    // one completes the XOR to the plain bit.
    for (unsigned s = 0; s < order; ++s) {
      const std::uint8_t m = static_cast<std::uint8_t>(rng.next_bit());
      scratch.inputs[base + s] = m;
      bit ^= m;
    }
    scratch.inputs[base + order] = bit;
  }
  simulator_.capture(scratch.inputs, rng, scratch, out);
  // Counted here, at the single choke-point every capture path funnels
  // through (tvla, cpa, capture_batch, capture_averaged). Two relaxed adds
  // per trace are noise next to the gate-level simulation above.
  CONVOLVE_TELEMETRY_ONLY(t_traces.add(1); t_samples.add(out.size());)
}

void MaskedTraceTarget::fill_input_planes(
    std::span<const std::uint32_t> plain_values, std::span<Xoshiro256> rngs,
    BlockScratch& scratch) const {
  if (plain_values.size() != rngs.size()) {
    throw std::invalid_argument("capture_block: values/rngs size mismatch");
  }
  const unsigned order = masked_.order;
  // Build the input bit planes, drawing lane j's sharing bits from rngs[j]
  // in the scalar capture() order (share s of input i before input i+1).
  std::fill(scratch.inputs.begin(), scratch.inputs.end(), 0ull);
  if (order == 0 && plain_inputs_ <= 8 &&
      plain_values.size() == static_cast<std::size_t>(PowerTraceSimulator::kLanes)) {
    // Unshared full block: the plane build is a pure 8x64 bit transpose.
    // Gather bit `pos` of 8 byte-narrowed values at once: mask it to the
    // byte LSBs, then one multiply packs those LSBs into 8 adjacent bits
    // (all partial products land on distinct bit positions, so no carry).
    std::uint8_t b[PowerTraceSimulator::kLanes];
    for (int j = 0; j < PowerTraceSimulator::kLanes; ++j) {
      b[j] = static_cast<std::uint8_t>(plain_values[static_cast<std::size_t>(j)]);
    }
    std::uint64_t w[8];
    std::memcpy(w, b, sizeof(w));
    for (int i = 0; i < plain_inputs_; ++i) {
      const int pos =
          bit_order_ == BitOrder::kLsbFirst ? i : plain_inputs_ - 1 - i;
      std::uint64_t plane = 0;
      for (int g = 0; g < 8; ++g) {
        const std::uint64_t t = (w[g] >> pos) & 0x0101010101010101ull;
        plane |= ((t * 0x0102040810204080ull) >> 56) << (8 * g);
      }
      scratch.inputs[static_cast<std::size_t>(
          masked_.input_share_base[static_cast<std::size_t>(i)])] = plane;
    }
    return;
  }
  for (std::size_t j = 0; j < plain_values.size(); ++j) {
    for (int i = 0; i < plain_inputs_; ++i) {
      const int pos =
          bit_order_ == BitOrder::kLsbFirst ? i : plain_inputs_ - 1 - i;
      std::uint64_t bit = (plain_values[j] >> pos) & 1u;
      const std::size_t base = static_cast<std::size_t>(
          masked_.input_share_base[static_cast<std::size_t>(i)]);
      for (unsigned s = 0; s < order; ++s) {
        const std::uint64_t m = rngs[j].next_bit();
        scratch.inputs[base + s] |= m << j;
        bit ^= m;
      }
      scratch.inputs[base + order] |= bit << j;
    }
  }
}

void MaskedTraceTarget::capture_block(
    std::span<const std::uint32_t> plain_values, std::span<Xoshiro256> rngs,
    BlockScratch& scratch, std::span<double> out, BlockLayout layout) const {
  const std::size_t n_active = plain_values.size();
  fill_input_planes(plain_values, rngs, scratch);
  simulator_.capture_block(rngs, scratch, out, layout);
  CONVOLVE_TELEMETRY_ONLY(
      t_traces.add(n_active); t_samples.add(out.size());
      t_lane_blocks.add(1);
      t_lane_slots.add(static_cast<std::uint64_t>(PowerTraceSimulator::kLanes));
      t_lanes_active.add(n_active);)
}

void MaskedTraceTarget::capture_block_counts(
    std::span<const std::uint32_t> plain_values, std::span<Xoshiro256> rngs,
    BlockScratch& scratch, std::span<std::uint8_t> out) const {
  const std::size_t n_active = plain_values.size();
  fill_input_planes(plain_values, rngs, scratch);
  simulator_.capture_block_counts(rngs, scratch, out);
  CONVOLVE_TELEMETRY_ONLY(
      t_traces.add(n_active); t_samples.add(out.size());
      t_lane_blocks.add(1);
      t_lane_slots.add(static_cast<std::uint64_t>(PowerTraceSimulator::kLanes));
      t_lanes_active.add(n_active);)
}

void MaskedTraceTarget::accumulate_block_sums(
    std::span<const std::uint32_t> plain_values, std::span<Xoshiro256> rngs,
    BlockScratch& scratch, std::uint64_t class_mask,
    BlockSumsAccum& accum) const {
  const std::size_t n_active = plain_values.size();
  fill_input_planes(plain_values, rngs, scratch);
  simulator_.accumulate_block_sums(rngs, scratch, class_mask, accum);
  CONVOLVE_TELEMETRY_ONLY(
      t_traces.add(n_active);
      t_samples.add(n_active * static_cast<std::uint64_t>(samples()));
      t_lane_blocks.add(1);
      t_lane_slots.add(static_cast<std::uint64_t>(PowerTraceSimulator::kLanes));
      t_lanes_active.add(n_active);)
}

std::vector<double> MaskedTraceTarget::capture_averaged(
    std::uint32_t plain_value, Xoshiro256& rng, TraceScratch& scratch,
    int repetitions) const {
  return capture::mean_trace_of(
      repetitions, samples(), [&](int, std::vector<double>& out) {
        capture(plain_value, rng, scratch, out);
      });
}

TraceBatch capture_batch(const MaskedTraceTarget& target,
                         std::uint64_t n_traces, const PlainValueFn& plain,
                         const Xoshiro256& base_rng, int lanes) {
  CONVOLVE_TRACE_SPAN("sca.capture_batch");
  constexpr std::uint64_t kL =
      static_cast<std::uint64_t>(PowerTraceSimulator::kLanes);
  if (lanes != 1 && lanes != PowerTraceSimulator::kLanes) {
    throw std::invalid_argument("capture_batch: lanes must be 1 or 64");
  }
  TraceBatch batch;
  batch.samples = target.samples();
  batch.n = n_traces;
  batch.data.assign(n_traces * static_cast<std::uint64_t>(batch.samples),
                    0.0);
  const std::uint64_t samples = static_cast<std::uint64_t>(batch.samples);

  if (lanes != 1 && target.supports_block_capture()) {
    // Bitsliced: shard over aligned 64-trace blocks. Row i still depends
    // only on base_rng.split(i), so the batch matches the scalar path
    // bit-for-bit at any thread count.
    const std::uint64_t n_blocks = (n_traces + kL - 1) / kL;
    const std::uint64_t n_chunks = par::chunk_count(n_blocks, 4);
    par::for_each_chunk(n_chunks, [&](std::uint64_t c) {
      const par::Range r = par::chunk_range(n_blocks, n_chunks, c);
      BlockScratch scratch = target.make_block_scratch();
      std::array<Xoshiro256, kL> rngs;
      std::array<std::uint32_t, kL> values;
      for (std::uint64_t b = r.begin; b < r.end; ++b) {
        const std::uint64_t i0 = b * kL;
        const std::size_t n_act =
            static_cast<std::size_t>(std::min(kL, n_traces - i0));
        for (std::size_t j = 0; j < n_act; ++j) {
          rngs[j] = base_rng.split(i0 + j);
          values[j] = plain(i0 + j, rngs[j]);
        }
        target.capture_block({values.data(), n_act}, {rngs.data(), n_act},
                             scratch,
                             {batch.data.data() + i0 * samples,
                              n_act * static_cast<std::size_t>(samples)});
      }
    });
    return batch;
  }

  const std::uint64_t grain = 32;
  const std::uint64_t n_chunks = par::chunk_count(n_traces, grain);
  par::for_each_chunk(n_chunks, [&](std::uint64_t c) {
    const par::Range r = par::chunk_range(n_traces, n_chunks, c);
    TraceScratch scratch = target.make_scratch();
    for (std::uint64_t i = r.begin; i < r.end; ++i) {
      Xoshiro256 rng = base_rng.split(i);
      const std::uint32_t value = plain(i, rng);
      std::span<double> out{batch.data.data() + i * samples,
                            static_cast<std::size_t>(samples)};
      target.capture(value, rng, scratch, out);
    }
  });
  return batch;
}

}  // namespace convolve::sca
