#include "convolve/sca/target.hpp"

#include <stdexcept>

#include "convolve/common/capture.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace convolve::sca {

#if CONVOLVE_TELEMETRY_ENABLED
namespace {
telemetry::Counter t_traces{"sca.traces_captured"};
telemetry::Counter t_samples{"sca.samples"};
}  // namespace
#endif

MaskedTraceTarget::MaskedTraceTarget(masking::MaskedCircuit masked,
                                     int plain_inputs, TraceConfig config,
                                     BitOrder bit_order)
    : masked_(std::move(masked)),
      plain_inputs_(plain_inputs),
      bit_order_(bit_order),
      simulator_(masked_.circuit, config) {
  if (plain_inputs <= 0 || plain_inputs > 32) {
    throw std::invalid_argument("MaskedTraceTarget: plain_inputs not in 1..32");
  }
  if (static_cast<std::size_t>(plain_inputs) !=
      masked_.input_share_base.size()) {
    throw std::invalid_argument(
        "MaskedTraceTarget: plain_inputs != masked input count");
  }
}

void MaskedTraceTarget::capture(std::uint32_t plain_value, Xoshiro256& rng,
                                TraceScratch& scratch,
                                std::span<double> out) const {
  const unsigned order = masked_.order;
  for (int i = 0; i < plain_inputs_; ++i) {
    const int pos =
        bit_order_ == BitOrder::kLsbFirst ? i : plain_inputs_ - 1 - i;
    std::uint8_t bit = static_cast<std::uint8_t>((plain_value >> pos) & 1u);
    const std::size_t base = static_cast<std::size_t>(
        masked_.input_share_base[static_cast<std::size_t>(i)]);
    // Fresh uniform sharing: the first `order` shares are random, the last
    // one completes the XOR to the plain bit.
    for (unsigned s = 0; s < order; ++s) {
      const std::uint8_t m = static_cast<std::uint8_t>(rng.next_bit());
      scratch.inputs[base + s] = m;
      bit ^= m;
    }
    scratch.inputs[base + order] = bit;
  }
  simulator_.capture(scratch.inputs, rng, scratch, out);
  // Counted here, at the single choke-point every capture path funnels
  // through (tvla, cpa, capture_batch, capture_averaged). Two relaxed adds
  // per trace are noise next to the gate-level simulation above.
  CONVOLVE_TELEMETRY_ONLY(t_traces.add(1); t_samples.add(out.size());)
}

std::vector<double> MaskedTraceTarget::capture_averaged(
    std::uint32_t plain_value, Xoshiro256& rng, TraceScratch& scratch,
    int repetitions) const {
  return capture::mean_trace_of(
      repetitions, samples(), [&](int, std::vector<double>& out) {
        capture(plain_value, rng, scratch, out);
      });
}

TraceBatch capture_batch(const MaskedTraceTarget& target,
                         std::uint64_t n_traces, const PlainValueFn& plain,
                         const Xoshiro256& base_rng) {
  CONVOLVE_TRACE_SPAN("sca.capture_batch");
  TraceBatch batch;
  batch.samples = target.samples();
  batch.n = n_traces;
  batch.data.assign(n_traces * static_cast<std::uint64_t>(batch.samples),
                    0.0);

  const std::uint64_t grain = 32;
  const std::uint64_t n_chunks = par::chunk_count(n_traces, grain);
  par::for_each_chunk(n_chunks, [&](std::uint64_t c) {
    const par::Range r = par::chunk_range(n_traces, n_chunks, c);
    TraceScratch scratch = target.make_scratch();
    for (std::uint64_t i = r.begin; i < r.end; ++i) {
      Xoshiro256 rng = base_rng.split(i);
      const std::uint32_t value = plain(i, rng);
      std::span<double> out{
          batch.data.data() + i * static_cast<std::uint64_t>(batch.samples),
          static_cast<std::size_t>(batch.samples)};
      target.capture(value, rng, scratch, out);
    }
  });
  return batch;
}

}  // namespace convolve::sca
