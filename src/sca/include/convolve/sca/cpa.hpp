// Correlation power analysis against the AES S-box.
//
// The classic first-round DPA-contest setting: the device computes
// S(p ^ k) for known uniformly random plaintext bytes p and a secret key
// byte k; the attacker correlates the measured trace against the
// Hamming-weight hypothesis HW(S(p ^ key_guess)) for all 256 guesses and
// ranks them by max |rho| over the sample points. Reported metrics follow
// the evaluation-lab convention: guess rank vs trace count, and the first
// trace count at which the correct key reaches rank 0.
//
// Against a masked target the per-sample means are secret-independent, so
// first-order CPA collapses: the correct key's rank stays large -- that
// contrast (measured, not asserted) is the empirical masking-order
// transition the paper's security story rests on.
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/sca/target.hpp"

namespace convolve::sca {

struct CpaConfig {
  std::uint64_t seed = 0xC0FFEE;
  /// Trace counts (ascending) at which the key ranking is recorded;
  /// auto-generated geometrically when empty.
  std::vector<int> checkpoints;
  /// Traces per parallel chunk (multiple of 64 keeps bitsliced blocks
  /// full).
  std::uint64_t grain = 256;
  /// Evaluation engine: 64 = bitsliced block capture, 1 = scalar oracle.
  /// The correlation sums are accumulated per trace in ascending index
  /// order in both modes, so reports are bit-identical between them (and
  /// at any thread count). Falls back to scalar when the target cannot
  /// block-capture.
  int lanes = PowerTraceSimulator::kLanes;
};

struct CpaCheckpoint {
  int traces = 0;
  int rank = 255;            // rank of the true key (0 = best guess)
  double best_corr = 0.0;    // max |rho| over all guesses and samples
  double true_key_corr = 0.0;
};

struct CpaReport {
  int samples = 0;
  std::uint8_t true_key = 0;
  std::uint8_t recovered_key = 0;  // argmax guess at the full trace count
  int rank = 255;                  // rank of the true key at the full count
  /// First checkpoint at which the true key ranked 0; -1 = never.
  int traces_to_rank0 = -1;
  std::vector<CpaCheckpoint> curve;
  /// max |rho| over samples per key guess at the full trace count.
  std::vector<double> correlation;
};

/// Run the CPA attack: the target evaluates S-box input p ^ key per trace
/// (plaintexts derived from seed-split streams, MSB-first bit mapping as
/// in analysis::aes_sbox_circuit). Deterministic at any thread count.
CpaReport cpa_sbox_attack(const MaskedTraceTarget& target, std::uint8_t key,
                          int n_traces, const CpaConfig& config = {});

}  // namespace convolve::sca
