// TVLA leakage assessment: fixed-vs-random Welch t-test at first and
// second statistical order.
//
// The standard evaluation-lab methodology (Goodwill et al.; Schneider &
// Moradi): capture interleaved traces of a *fixed* plain input and of
// uniformly *random* plain inputs (fresh masking randomness for both
// classes every trace), then per sample point compute
//
//   first order  -- Welch t between the class means;
//   second order -- Welch t between the centered squares (x - mean)^2,
//                   computed from one-pass central moments,
//
// and flag leakage when max |t| over the trace exceeds 4.5. Accumulation
// uses Welford accumulators sharded through src/common/parallel and merged
// in rank order, so every verdict and every point of the max-|t|-vs-traces
// curve is bit-identical for any --threads N.
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/common/stats.hpp"
#include "convolve/sca/target.hpp"

namespace convolve::sca {

struct TvlaConfig {
  double threshold = 4.5;
  std::uint64_t seed = 0x7E57ED;
  /// Total-trace counts (both classes combined, ascending) at which the
  /// max-|t| curve is recorded; auto-generated geometrically when empty.
  std::vector<int> checkpoints;
  /// Traces per parallel chunk. A multiple of 64 keeps the bitsliced
  /// blocks inside a chunk full (only one tail block per chunk).
  std::uint64_t grain = 256;
  /// Evaluation engine: 64 = bitsliced (64 traces per gate pass), 1 =
  /// scalar differential oracle. Both modes shard traces into the same
  /// 64-trace accumulation blocks and fold them through the same
  /// Welford::add_block calls, so the resulting statistics -- every
  /// checkpoint of the curve included -- are bit-identical, not merely
  /// close. 64 falls back to the scalar engine when the target cannot
  /// block-capture (Hamming-distance model).
  int lanes = PowerTraceSimulator::kLanes;
};

struct TvlaCheckpoint {
  int traces = 0;  // total traces captured so far (both classes)
  double max_abs_t1 = 0.0;
  double max_abs_t2 = 0.0;
};

struct TvlaReport {
  int samples = 0;
  double threshold = 4.5;
  /// max-|t| vs trace count, one entry per checkpoint (last = full run).
  std::vector<TvlaCheckpoint> curve;
  /// Per-sample t statistics at the full trace count.
  std::vector<double> t1;
  std::vector<double> t2;
  double max_abs_t1 = 0.0;
  double max_abs_t2 = 0.0;
  bool first_order_leak = false;   // max |t1| > threshold at the full count
  bool second_order_leak = false;  // max |t2| > threshold at the full count
  /// First checkpoint whose max |t| crossed the threshold; -1 = never.
  int traces_to_first_order_fail = -1;
  int traces_to_second_order_fail = -1;
};

/// Fixed-vs-random TVLA on a masked target. Trace index i belongs to the
/// fixed class iff i is even; everything trace i consumes derives from
/// seed-split(i), so the report is deterministic at any thread count.
TvlaReport tvla_fixed_vs_random(const MaskedTraceTarget& target,
                                std::uint32_t fixed_value, int n_traces,
                                const TvlaConfig& config = {});

}  // namespace convolve::sca
