// A masked netlist as a device under side-channel test.
//
// MaskedTraceTarget wraps a MaskedCircuit (as produced by mask_circuit or
// hpc2_and_gadget) and presents the *unmasked* interface an evaluation lab
// sees: feed it a plain input value, it draws a fresh uniform sharing of
// every input bit plus the gadget randomness, evaluates the netlist and
// emits one power trace. At order 0 the sharing is trivial and the target
// degenerates to the unprotected implementation.
//
// capture_batch shards trace acquisition through src/common/parallel with
// one derived RNG stream per trace index (Xoshiro256::split), so a batch
// is bit-identical for every --threads N.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "convolve/common/rng.hpp"
#include "convolve/sca/trace.hpp"

namespace convolve::sca {

/// How plain-value bit j maps to plain input i of the circuit.
enum class BitOrder : std::uint8_t {
  kLsbFirst,  // input i carries bit i (natural for adders, DOM-AND a/b)
  kMsbFirst,  // input i carries bit (n-1-i) (the AES S-box convention)
};

class MaskedTraceTarget {
 public:
  /// `plain_inputs` is the number of original unmasked inputs of the
  /// circuit that was masked (each maps to order+1 shares).
  MaskedTraceTarget(masking::MaskedCircuit masked, int plain_inputs,
                    TraceConfig config,
                    BitOrder bit_order = BitOrder::kLsbFirst);

  MaskedTraceTarget(const MaskedTraceTarget&) = delete;
  MaskedTraceTarget& operator=(const MaskedTraceTarget&) = delete;

  int samples() const { return simulator_.samples_per_trace(); }
  unsigned masking_order() const { return masked_.order; }
  int plain_inputs() const { return plain_inputs_; }
  const PowerTraceSimulator& simulator() const { return simulator_; }

  TraceScratch make_scratch() const { return simulator_.make_scratch(); }

  /// Capture one trace of the masked evaluation of `plain_value`: sharing
  /// randomness, gadget randomness and noise are all drawn from `rng` in a
  /// fixed order.
  void capture(std::uint32_t plain_value, Xoshiro256& rng,
               TraceScratch& scratch, std::span<double> out) const;

  /// True when the bitsliced capture_block path applies (Hamming-weight
  /// model; the HD model stays on the scalar path).
  bool supports_block_capture() const {
    return simulator_.supports_block_capture();
  }

  BlockScratch make_block_scratch() const {
    return simulator_.make_block_scratch();
  }

  /// Bitsliced capture of up to PowerTraceSimulator::kLanes traces in one
  /// gate pass: trace j evaluates plain_values[j], drawing its sharing
  /// randomness, gadget randomness and noise from rngs[j] in exactly the
  /// order capture() would -- trace j of `out` is bit-identical to a
  /// scalar capture of the same value with the same rng state, laid out
  /// per `layout` (trace-major rows by default; sample-major columns for
  /// the vectorized statistics folds). plain_values.size() == rngs.size()
  /// is the active lane count (1..kLanes; short tail blocks are fine).
  void capture_block(std::span<const std::uint32_t> plain_values,
                     std::span<Xoshiro256> rngs, BlockScratch& scratch,
                     std::span<double> out,
                     BlockLayout layout = BlockLayout::kTraceMajor) const;

  /// Noiseless capture_block variant emitting raw sample-major Hamming
  /// counts as bytes (see PowerTraceSimulator::capture_block_counts);
  /// feeds the exact integer TVLA fold. Throws when noise_sigma > 0 or
  /// when counts do not fit a byte (counter_planes > 8).
  void capture_block_counts(std::span<const std::uint32_t> plain_values,
                            std::span<Xoshiro256> rngs, BlockScratch& scratch,
                            std::span<std::uint8_t> out) const;

  BlockSumsAccum make_block_sums_accum() const {
    return simulator_.make_block_sums_accum();
  }

  /// Noiseless moment accumulation that never leaves the bitsliced domain
  /// (see PowerTraceSimulator::accumulate_block_sums): evaluates one block
  /// of plain values and folds the per-lane Hamming counts of the
  /// class_mask lanes and of all active lanes into `accum` via subset
  /// popcounts. Drain with finalize_block_sums.
  void accumulate_block_sums(std::span<const std::uint32_t> plain_values,
                             std::span<Xoshiro256> rngs, BlockScratch& scratch,
                             std::uint64_t class_mask,
                             BlockSumsAccum& accum) const;

  void finalize_block_sums(BlockSumsAccum& accum,
                           std::span<PackedMoments> in_class,
                           std::span<PackedMoments> out_class) const {
    simulator_.finalize_block_sums(accum, in_class, out_class);
  }

  /// Noise-suppressed measurement: the element-wise mean of `repetitions`
  /// captures of the same plain value (fresh sharing per repetition),
  /// routed through the shared capture::mean_trace_of path.
  std::vector<double> capture_averaged(std::uint32_t plain_value,
                                       Xoshiro256& rng, TraceScratch& scratch,
                                       int repetitions) const;

 private:
  void fill_input_planes(std::span<const std::uint32_t> plain_values,
                         std::span<Xoshiro256> rngs,
                         BlockScratch& scratch) const;

  masking::MaskedCircuit masked_;
  int plain_inputs_;
  BitOrder bit_order_;
  PowerTraceSimulator simulator_;  // references masked_.circuit
};

/// Row-major trace matrix: n traces x samples.
struct TraceBatch {
  int samples = 0;
  std::uint64_t n = 0;
  std::vector<double> data;

  std::span<const double> row(std::uint64_t i) const {
    return {data.data() + i * static_cast<std::uint64_t>(samples),
            static_cast<std::size_t>(samples)};
  }
};

/// Plain value of trace `index`; may consume `rng` (already split per
/// trace) to draw random inputs.
using PlainValueFn =
    std::function<std::uint32_t(std::uint64_t index, Xoshiro256& rng)>;

/// Deterministic parallel batch capture: trace i draws everything from
/// base_rng.split(i), rows are written independently, so the batch depends
/// only on (target, n_traces, plain, base_rng) -- never the thread count
/// and never the lane width. `lanes` selects the evaluation engine: 64
/// shards the batch into aligned 64-trace blocks captured bitsliced (one
/// gate pass per block), 1 is the scalar differential oracle. Both produce
/// bit-identical batches; 64 silently falls back to 1 when the target
/// cannot block-capture (Hamming-distance model).
TraceBatch capture_batch(const MaskedTraceTarget& target,
                         std::uint64_t n_traces, const PlainValueFn& plain,
                         const Xoshiro256& base_rng,
                         int lanes = PowerTraceSimulator::kLanes);

}  // namespace convolve::sca
