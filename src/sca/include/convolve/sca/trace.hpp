// Gate-level power-trace simulation over the masking Circuit IR.
//
// The empirical half of the leakage story: where src/analysis proves
// probing security symbolically, this module *measures* a netlist. Every
// gate is assigned to a sample group by its combinational depth (inputs,
// randoms and constants at depth 0; a gate one past its deepest fan-in),
// and one evaluation emits one power sample per depth group:
//
//   * Hamming-weight model  -- sample[d] = sum of wire values at depth d
//     (registers settling from a precharged all-zero state);
//   * Hamming-distance model -- sample[d] = sum of wire toggles between
//     two consecutive evaluations (capture_transition).
//
// Optional Gaussian noise is added per sample. All randomness (gadget
// randoms, noise) is drawn from a caller-provided Xoshiro256, so a trace
// is a pure function of (circuit, inputs, rng state) -- the property the
// deterministic parallel capture path builds on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "convolve/common/rng.hpp"
#include "convolve/masking/circuit.hpp"

namespace convolve::sca {

enum class PowerModel : std::uint8_t {
  kHammingWeight,    // value leakage (settle from precharge)
  kHammingDistance,  // toggle leakage between consecutive evaluations
};

struct TraceConfig {
  PowerModel model = PowerModel::kHammingWeight;
  double noise_sigma = 0.0;  // Gaussian noise added to every sample
};

/// Reusable per-worker buffers so the hot capture loop is allocation-free.
struct TraceScratch {
  std::vector<std::uint8_t> inputs;
  std::vector<std::uint8_t> randoms;
  std::vector<std::uint8_t> wire;       // current evaluation
  std::vector<std::uint8_t> wire_prev;  // previous evaluation (HD model)
};

/// Simulates power traces of one combinational circuit. The circuit must
/// outlive the simulator (it is held by reference).
class PowerTraceSimulator {
 public:
  PowerTraceSimulator(const masking::Circuit& circuit, TraceConfig config);

  /// One sample per combinational depth group.
  int samples_per_trace() const { return samples_; }
  const TraceConfig& config() const { return config_; }
  const masking::Circuit& circuit() const { return circuit_; }
  /// Depth group of gate g (for tests and pointwise diagnostics).
  int depth_of(int gate) const {
    return depth_[static_cast<std::size_t>(gate)];
  }

  TraceScratch make_scratch() const;

  /// Capture one trace: draw the circuit's fresh randomness from `rng`,
  /// evaluate on `inputs`, emit Hamming-weight samples plus noise into
  /// `out` (size samples_per_trace()).
  void capture(std::span<const std::uint8_t> inputs, Xoshiro256& rng,
               TraceScratch& scratch, std::span<double> out) const;

  /// Capture the transition `from` -> `to` under the Hamming-distance
  /// model: both evaluations draw fresh randomness from `rng`; sample[d]
  /// counts the wires of depth d that toggled.
  void capture_transition(std::span<const std::uint8_t> from,
                          std::span<const std::uint8_t> to, Xoshiro256& rng,
                          TraceScratch& scratch,
                          std::span<double> out) const;

 private:
  void fill_randoms(Xoshiro256& rng, TraceScratch& scratch) const;
  void accumulate(std::span<const std::uint8_t> wire,
                  std::span<double> out) const;
  void add_noise(Xoshiro256& rng, std::span<double> out) const;

  const masking::Circuit& circuit_;
  TraceConfig config_;
  std::vector<int> depth_;  // per-gate depth group
  int samples_ = 0;
};

}  // namespace convolve::sca
