// Gate-level power-trace simulation over the masking Circuit IR.
//
// The empirical half of the leakage story: where src/analysis proves
// probing security symbolically, this module *measures* a netlist. Every
// gate is assigned to a sample group by its combinational depth (inputs,
// randoms and constants at depth 0; a gate one past its deepest fan-in),
// and one evaluation emits one power sample per depth group:
//
//   * Hamming-weight model  -- sample[d] = sum of wire values at depth d
//     (registers settling from a precharged all-zero state);
//   * Hamming-distance model -- sample[d] = sum of wire toggles between
//     two consecutive evaluations (capture_transition).
//
// Optional Gaussian noise is added per sample. All randomness (gadget
// randoms, noise) is drawn from a caller-provided Xoshiro256, so a trace
// is a pure function of (circuit, inputs, rng state) -- the property the
// deterministic parallel capture path builds on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "convolve/common/rng.hpp"
#include "convolve/masking/circuit.hpp"

namespace convolve::sca {

enum class PowerModel : std::uint8_t {
  kHammingWeight,    // value leakage (settle from precharge)
  kHammingDistance,  // toggle leakage between consecutive evaluations
};

struct TraceConfig {
  PowerModel model = PowerModel::kHammingWeight;
  double noise_sigma = 0.0;  // Gaussian noise added to every sample
};

/// Reusable per-worker buffers so the hot capture loop is allocation-free.
struct TraceScratch {
  std::vector<std::uint8_t> inputs;
  std::vector<std::uint8_t> randoms;
  std::vector<std::uint8_t> wire;       // current evaluation
  std::vector<std::uint8_t> wire_prev;  // previous evaluation (HD model)
};

/// Per-worker buffers for the bitsliced block capture path: inputs,
/// randomness and wires are uint64_t bit planes (lane j of trace j in bit
/// j), and `counters` holds the vertical ripple-carry counter planes that
/// accumulate the per-depth-group Hamming weights of all 64 lanes at once.
struct BlockScratch {
  std::vector<std::uint64_t> inputs;
  std::vector<std::uint64_t> randoms;
  std::vector<std::uint64_t> wire;
  std::vector<std::uint64_t> counters;  // samples * counter_planes words
};

/// Memory layout of a capture_block output span of n_active * samples
/// doubles. Trace-major matches TraceBatch rows; sample-major puts each
/// sample's 64 lanes contiguous, which is what the vectorized TVLA
/// accumulators consume. The trace values are identical either way.
enum class BlockLayout : std::uint8_t {
  kTraceMajor,   // out[lane * samples + sample]
  kSampleMajor,  // out[sample * n_active + lane]
};

/// Packed exact power sums of one lane class at one sample point:
/// S1 = sum v, S3 = sum v^3 share one word, S2 = sum v^2, S4 = sum v^4 the
/// other. With counter values < 256 and at most ~320 traces per batch the
/// fields cannot carry into each other (S1 < 2^16, S2 < 2^24), which is
/// what lets the fold run on uint64 adds with no per-field bookkeeping.
struct PackedMoments {
  std::uint64_t s13 = 0;  // S1 in bits 0..15, S3 in bits 16..63
  std::uint64_t s24 = 0;  // S2 in bits 0..23, S4 in bits 24..63
};

/// Cross-block accumulator for accumulate_block_sums: one packed lane-count
/// word per (sample, nonempty counter-plane subset). Opaque to callers --
/// create with make_block_sums_accum, drain with finalize_block_sums.
struct BlockSumsAccum {
  std::vector<std::uint64_t> counts;  // samples * (2^planes - 1) words
};

/// Simulates power traces of one combinational circuit. The circuit must
/// outlive the simulator (it is held by reference).
class PowerTraceSimulator {
 public:
  /// Lanes per bitsliced capture block (traces evaluated per gate pass).
  static constexpr int kLanes = masking::kBitsliceLanes;

  PowerTraceSimulator(const masking::Circuit& circuit, TraceConfig config);

  /// One sample per combinational depth group.
  int samples_per_trace() const { return samples_; }
  const TraceConfig& config() const { return config_; }
  const masking::Circuit& circuit() const { return circuit_; }
  /// Depth group of gate g (for tests and pointwise diagnostics).
  int depth_of(int gate) const {
    return depth_[static_cast<std::size_t>(gate)];
  }

  TraceScratch make_scratch() const;

  /// Capture one trace: draw the circuit's fresh randomness from `rng`,
  /// evaluate on `inputs`, emit Hamming-weight samples plus noise into
  /// `out` (size samples_per_trace()).
  void capture(std::span<const std::uint8_t> inputs, Xoshiro256& rng,
               TraceScratch& scratch, std::span<double> out) const;

  /// Capture the transition `from` -> `to` under the Hamming-distance
  /// model: both evaluations draw fresh randomness from `rng`; sample[d]
  /// counts the wires of depth d that toggled.
  void capture_transition(std::span<const std::uint8_t> from,
                          std::span<const std::uint8_t> to, Xoshiro256& rng,
                          TraceScratch& scratch,
                          std::span<double> out) const;

  /// True when capture_block is available for this configuration (only the
  /// Hamming-weight model bitslices; the HD model keeps the scalar path).
  bool supports_block_capture() const {
    return config_.model == PowerModel::kHammingWeight;
  }
  /// Vertical-counter planes per depth group: bit_width of the largest
  /// group's gate count (each group's Hamming sum fits in that many bits).
  int counter_planes() const { return counter_planes_; }

  BlockScratch make_block_scratch() const;

  /// Bitsliced capture of up to kLanes traces in one gate pass. The caller
  /// fills scratch.inputs with the input bit planes (trace j in bit j of
  /// every plane); lane j draws its gadget randomness and noise from
  /// rngs[j] in exactly the order capture() would, so row j of `out`
  /// (trace-major: out[j*samples_per_trace() + s]) is bit-identical to a
  /// scalar capture of the same assignment with the same rng. rngs.size()
  /// is the number of active lanes (1..kLanes); inactive tail lanes still
  /// flow through the gate pass but are never extracted, drawn for, or
  /// emitted -- tail blocks cost one pass like full ones. `out` must have
  /// size rngs.size() * samples_per_trace(). Throws if the configuration
  /// does not support block capture (see supports_block_capture()).
  void capture_block(std::span<Xoshiro256> rngs, BlockScratch& scratch,
                     std::span<double> out,
                     BlockLayout layout = BlockLayout::kTraceMajor) const;

  /// Noiseless variant of capture_block that skips the double conversion:
  /// the raw per-depth-group Hamming counts land sample-major in `out`
  /// (out[s * rngs.size() + j] == lane j's count at sample s). The values
  /// equal capture_block's exactly -- noiseless samples are integers --
  /// which is what the exact integer TVLA fold consumes. Byte output is
  /// deliberate: with counter_planes() <= 8 a full block's sample column
  /// is stored straight from the spread-table accumulators, making this
  /// the cheapest way out of the bitsliced domain. Throws when
  /// noise_sigma > 0 (noise only exists in the double domain), when
  /// counter_planes() > 8 (counts would not fit a byte), or when the
  /// configuration does not block-capture.
  void capture_block_counts(std::span<Xoshiro256> rngs, BlockScratch& scratch,
                            std::span<std::uint8_t> out) const;

  BlockSumsAccum make_block_sums_accum() const;

  /// Fastest noiseless statistics path: evaluate one block and fold its
  /// per-lane Hamming counts into `accum` WITHOUT ever leaving the
  /// bitsliced domain. The identity: counter bits are 0/1, so b^2 = b and
  /// sum v^m over a set of lanes is an integer-coefficient combination of
  /// popcount(AND of counter-plane subsets & lane_mask) -- 2^planes - 1
  /// subset popcounts replace 64 per-lane extractions. Per subset this
  /// accumulates two popcounts packed in one word: lanes in `class_mask`
  /// and all active lanes (tail lanes are masked off internally), so one
  /// call serves both TVLA classes. The coefficient multiplies are
  /// deferred to finalize_block_sums; the caller must finalize before the
  /// packed fields could overflow (<= ~320 traces per batch, the same
  /// bound PackedMoments needs). Throws under the capture_block_counts
  /// conditions (noise, counter_planes > 8, no block capture).
  void accumulate_block_sums(std::span<Xoshiro256> rngs, BlockScratch& scratch,
                             std::uint64_t class_mask,
                             BlockSumsAccum& accum) const;

  /// Drain `accum`: write the exact packed power sums of the class_mask
  /// lanes to `in_class` and of the remaining active lanes to `out_class`
  /// (both size samples_per_trace()), then zero the accumulator. The sums
  /// equal a per-lane scalar fold exactly -- integer arithmetic throughout
  /// -- which is what keeps the bitsliced and scalar TVLA engines
  /// bit-identical.
  void finalize_block_sums(BlockSumsAccum& accum,
                           std::span<PackedMoments> in_class,
                           std::span<PackedMoments> out_class) const;

 private:
  void fill_randoms(Xoshiro256& rng, TraceScratch& scratch) const;
  void accumulate(std::span<const std::uint8_t> wire,
                  std::span<double> out) const;
  void add_noise(Xoshiro256& rng, std::span<double> out) const;
  void block_evaluate(std::span<Xoshiro256> rngs, BlockScratch& scratch,
                      std::size_t out_size) const;
  void extract_sample_bytes(const BlockScratch& scratch, int sample,
                            std::uint8_t* vals) const;
  void extract_sample_values(const BlockScratch& scratch, int sample,
                             std::uint32_t* vals) const;

  const masking::Circuit& circuit_;
  TraceConfig config_;
  std::vector<int> depth_;  // per-gate depth group
  int samples_ = 0;
  int counter_planes_ = 0;  // see counter_planes()
  // Gate indices stably sorted by depth group and the end offset of each
  // group: lets the block counter accumulation keep one group's counter
  // planes in registers instead of rippling through memory per gate.
  std::vector<int> gates_by_depth_;
  std::vector<int> group_end_;
  // Subset moment coefficients for the block-sums path, indexed by the
  // plane-subset mask m (1..2^planes - 1): sum v^k over a lane set equals
  // sum over subsets of coef_k(m) * popcount(AND of planes in m), with
  // coef pairs packed like PackedMoments (k=1|3 and k=2|4). Built once at
  // construction when counter_planes() <= 8.
  std::vector<std::uint64_t> k13_;
  std::vector<std::uint64_t> k24_;
};

}  // namespace convolve::sca
