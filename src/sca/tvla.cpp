#include "convolve/sca/tvla.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace convolve::sca {

namespace {

// Per-class, per-sample moment accumulators for one shard of traces.
struct Moments {
  std::vector<Welford> fixed;
  std::vector<Welford> random;

  explicit Moments(int samples)
      : fixed(static_cast<std::size_t>(samples)),
        random(static_cast<std::size_t>(samples)) {}

  void merge(const Moments& other) {
    for (std::size_t s = 0; s < fixed.size(); ++s) {
      fixed[s].merge(other.fixed[s]);
      random[s].merge(other.random[s]);
    }
  }
};

// Exact integer power sums (PackedMoments, see trace.hpp). Noiseless
// Hamming-weight samples are small integers, so S1..S4 accumulate exactly
// -- no rounding, no accumulation-order sensitivity -- and the first four
// central moments follow from them with exact 128-bit integer numerators.
// This is both the fast path (integer adds instead of a two-pass double
// fold) and the strongest determinism story: any capture engine, lane
// width, or walk order produces the same sums bit-for-bit.
//
// The scalar oracle folds per value v < 256 with two table loads adding
// (v | v^3 << 16) and (v^2 | v^4 << 24); the bitsliced engine reaches the
// *same* sums through subset popcounts of the counter planes
// (accumulate_block_sums) without ever extracting a lane. Batches are
// capped by exact_flush_threshold so the four fields cannot carry into
// each other: S1 < 2^16, S3 < 2^48, S2 < 2^24, S4 < 2^40.
inline void add_packed(PackedMoments& pm, std::uint64_t p13,
                       std::uint64_t p24) {
  pm.s13 += p13;
  pm.s24 += p24;
}

// Central moment sums from the unpacked power sums: the numerators are
// exact in __int128 (values < 2^8, batches of <= 320 traces), so the
// only rounding is the final int->double conversion and one division --
// identical on every IEEE-754 machine.
Welford packed_to_welford(const PackedMoments& pm, std::uint64_t n) {
  if (n == 0) return {};
  using I = __int128;
  const I N = static_cast<I>(n);
  const I S1 = static_cast<I>(pm.s13 & 0xFFFFull);
  const I S3 = static_cast<I>(pm.s13 >> 16);
  const I S2 = static_cast<I>(pm.s24 & 0xFFFFFFull);
  const I S4 = static_cast<I>(pm.s24 >> 24);
  const double dn = static_cast<double>(n);
  const double mean = static_cast<double>(pm.s13 & 0xFFFFull) / dn;
  const I m2n = N * S2 - S1 * S1;
  const I m3n = N * N * S3 - 3 * N * S1 * S2 + 2 * S1 * S1 * S1;
  const I m4n = N * N * N * S4 - 4 * N * N * S1 * S3 +
                6 * N * S1 * S1 * S2 - 3 * S1 * S1 * S1 * S1;
  return Welford::from_moments(
      n, mean, static_cast<double>(m2n) / dn,
      static_cast<double>(m3n) / (dn * dn),
      static_cast<double>(m4n) / (dn * dn * dn));
}

// Packed power lookup tables: kPow13[v] = v | v^3 << 16 and
// kPow24[v] = v^2 | v^4 << 24 for v in 0..255 (4 KiB total, L1-resident).
struct PowTables {
  std::uint64_t p13[256];
  std::uint64_t p24[256];
};
constexpr PowTables kPow = [] {
  PowTables t{};
  for (std::uint64_t v = 0; v < 256; ++v) {
    const std::uint64_t u = v * v;
    t.p13[v] = v | (u * v) << 16;
    t.p24[v] = u | (u * u) << 24;
  }
  return t;
}();

// Traces accumulated into one PackedMoments batch before converting to a
// Welford merge. The limit keeps every packed field from overflowing: with
// counter values <= vmax = 2^planes - 1 a class of n traces needs
// n * vmax < 2^16 (S1), n * vmax^2 < 2^24 (S2), n * vmax^4 < 2^40 (S4;
// S3's 48-bit top field is implied by S4's bound). The flush check runs
// after a whole 64-trace block, so a batch reaches threshold + 63 traces
// with at most (threshold + 64) / 2 per class. Flushing is real work
// (per-sample __int128 moment conversion plus two Welford merges), so the
// largest safe batch matters: planes = 4 flushes ~32x less often than the
// worst case. Depends only on the target's plane count, so both engines
// and every lane width flush at identical trace boundaries.
std::uint64_t exact_flush_threshold(int counter_planes) {
  if (counter_planes <= 0) return 1ull << 20;  // all counts are zero
  const std::uint64_t vmax = (1ull << counter_planes) - 1;
  const std::uint64_t v2 = vmax * vmax;
  const std::uint64_t per_class =
      std::min({0xFFFFull / vmax, 0xFFFFFFull / v2, (1ull << 40) / (v2 * v2)});
  return 2 * per_class - 64;
}

std::vector<int> default_checkpoints(int n_traces) {
  std::vector<int> cps;
  for (int c = 256; c < n_traces; c *= 2) cps.push_back(c);
  cps.push_back(n_traces);
  return cps;
}

}  // namespace

TvlaReport tvla_fixed_vs_random(const MaskedTraceTarget& target,
                                std::uint32_t fixed_value, int n_traces,
                                const TvlaConfig& config) {
  if (n_traces < 4) throw std::invalid_argument("tvla: need >= 4 traces");
  if (config.lanes != 1 && config.lanes != PowerTraceSimulator::kLanes) {
    throw std::invalid_argument("tvla: lanes must be 1 or 64");
  }
  CONVOLVE_TRACE_SPAN("sca.tvla");
  const bool use_block =
      config.lanes != 1 && target.supports_block_capture();
  // The exact integer fold applies whenever samples are noiseless integer
  // Hamming counts small enough for uint64 power sums (counter_planes <= 8
  // means values < 256). It is a property of the *target*, not the lane
  // width, so lanes=1 and lanes=64 runs always sit on the same fold and
  // stay bit-identical.
  const bool exact_fold = target.supports_block_capture() &&
                          target.simulator().config().noise_sigma == 0.0 &&
                          target.simulator().counter_planes() <= 8;
  const int samples = target.samples();
  const std::uint32_t value_mask =
      target.plain_inputs() >= 32
          ? 0xFFFFFFFFu
          : (1u << target.plain_inputs()) - 1u;

  std::vector<int> checkpoints = config.checkpoints.empty()
                                     ? default_checkpoints(n_traces)
                                     : config.checkpoints;

  TvlaReport report;
  report.samples = samples;
  report.threshold = config.threshold;

  const Xoshiro256 base(config.seed);
  Moments total(samples);
  int done = 0;
  for (int checkpoint : checkpoints) {
    if (checkpoint <= done || checkpoint > n_traces) continue;
    // Capture the segment [done, checkpoint) and fold it into the running
    // accumulators: parallel_reduce merges the per-chunk moments in
    // ascending chunk order, and segments merge in schedule order, so the
    // whole curve is thread-count invariant.
    const std::uint64_t seg = static_cast<std::uint64_t>(checkpoint - done);
    const std::uint64_t offset = static_cast<std::uint64_t>(done);
    Moments segment = par::parallel_reduce(
        seg, config.grain, Moments(samples),
        [&](std::uint64_t, par::Range r) {
          // Both engines walk the chunk in 64-trace blocks anchored at
          // r.begin (chunk boundaries are f(n, grain), never thread
          // count): the bitsliced one captures a block in one gate pass,
          // the scalar oracle captures the same rows one trace at a time.
          // Accumulation is the shared fold below in both cases, which is
          // what makes the two engines' statistics bit-identical.
          constexpr std::uint64_t kL =
              static_cast<std::uint64_t>(PowerTraceSimulator::kLanes);
          Moments local(samples);
          const std::size_t samp = static_cast<std::size_t>(samples);
          const auto draw_exact_value = [&](std::uint64_t i,
                                            Xoshiro256& rng) {
            return (i % 2 == 0)
                       ? fixed_value
                       : static_cast<std::uint32_t>(rng.next_u64()) &
                             value_mask;
          };
          if (exact_fold) {
            // Exact integer fold: accumulate per-sample per-class packed
            // power sums over kExactFlush-trace batches, convert each
            // batch to a Welford merge with exact 128-bit numerators.
            // Both engines walk the same 64-trace blocks and flush at the
            // same boundaries, and integer sums are order-exact, so the
            // folded moments are bit-identical by construction.
            std::vector<PackedMoments> ifx(samp), irn(samp);
            std::vector<double> trace(samp);
            std::array<Xoshiro256, kL> rngs;
            std::array<std::uint32_t, kL> values;
            TraceScratch scratch;
            BlockScratch block_scratch;
            BlockSumsAccum accum;
            if (use_block) {
              block_scratch = target.make_block_scratch();
              accum = target.make_block_sums_accum();
            } else {
              scratch = target.make_scratch();
            }
            // Fixed-class lanes of every block in this chunk: block starts
            // step by 64, so the global parity of lane j is constant
            // across the chunk and the class mask can be hoisted.
            constexpr std::uint64_t kEvenLanes = 0x5555555555555555ull;
            const std::uint64_t fixed_mask =
                ((offset + r.begin) % 2 == 0) ? kEvenLanes : ~kEvenLanes;
            const std::uint64_t flush_at =
                exact_flush_threshold(target.simulator().counter_planes());
            // A fixed-class trace of an unshared, randomless, noiseless
            // target never reads its per-trace rng: the split state is
            // unobservable, so skipping the split is bit-identical to the
            // contractual "trace i draws from base.split(i)" and halves
            // the per-block rng setup. Random-class traces still split
            // (the plain-value draw consumes the stream).
            const bool rng_unused =
                target.masking_order() == 0 &&
                target.simulator().circuit().num_randoms() == 0;
            std::uint64_t batch_nf = 0, batch_nr = 0;
            const auto flush = [&]() {
              if (batch_nf + batch_nr == 0) return;
              if (use_block) {
                target.finalize_block_sums(accum, ifx, irn);
              }
              for (std::size_t s = 0; s < samp; ++s) {
                local.fixed[s].merge(packed_to_welford(ifx[s], batch_nf));
                local.random[s].merge(packed_to_welford(irn[s], batch_nr));
                ifx[s] = PackedMoments{};
                irn[s] = PackedMoments{};
              }
              batch_nf = 0;
              batch_nr = 0;
            };
            for (std::uint64_t k = r.begin; k < r.end; k += kL) {
              const std::uint64_t i0 = offset + k;
              const std::size_t n_act =
                  static_cast<std::size_t>(std::min(kL, r.end - k));
              if (use_block) {
                for (std::size_t j = 0; j < n_act; ++j) {
                  const std::uint64_t gi = i0 + j;
                  if (!rng_unused || gi % 2 != 0) rngs[j] = base.split(gi);
                  values[j] = draw_exact_value(gi, rngs[j]);
                }
                target.accumulate_block_sums({values.data(), n_act},
                                             {rngs.data(), n_act},
                                             block_scratch, fixed_mask,
                                             accum);
              } else {
                Xoshiro256 rng;
                for (std::size_t j = 0; j < n_act; ++j) {
                  const std::uint64_t gi = i0 + j;
                  if (!rng_unused || gi % 2 != 0) rng = base.split(gi);
                  const std::uint32_t value = draw_exact_value(gi, rng);
                  target.capture(value, rng, scratch, trace);
                  std::vector<PackedMoments>& cls =
                      ((i0 + j) % 2 == 0) ? ifx : irn;
                  for (std::size_t s = 0; s < samp; ++s) {
                    const auto v =
                        static_cast<std::size_t>(trace[s]);
                    add_packed(cls[s], kPow.p13[v], kPow.p24[v]);
                  }
                }
              }
              // Class populations of this block: even global trace indices
              // are the fixed class.
              const std::uint64_t first_parity_count =
                  (static_cast<std::uint64_t>(n_act) + 1) / 2;
              const std::uint64_t second_parity_count =
                  static_cast<std::uint64_t>(n_act) / 2;
              if (i0 % 2 == 0) {
                batch_nf += first_parity_count;
                batch_nr += second_parity_count;
              } else {
                batch_nr += first_parity_count;
                batch_nf += second_parity_count;
              }
              if (batch_nf + batch_nr >= flush_at) flush();
            }
            flush();
            return local;
          }
          // `rows` holds one block sample-major: sample s's column of up
          // to 64 lane values is contiguous, so the fold below streams
          // through memory. The scalar oracle transposes its per-trace
          // captures into the same layout, keeping the fold literally
          // shared between the engines.
          std::vector<double> rows(static_cast<std::size_t>(kL) * samp);
          std::vector<double> trace(samp);
          std::vector<double> col_f(static_cast<std::size_t>(kL));
          std::vector<double> col_r(static_cast<std::size_t>(kL));
          std::array<Xoshiro256, kL> rngs;
          std::array<std::uint32_t, kL> values;

          // Fold one block: per sample, split that sample's column by
          // trace parity (even global index -> fixed class) and merge
          // each class as one Welford block. The folded values and their
          // order are a pure function of the trace contents, so both
          // engines produce bit-identical moments.
          const auto fold_rows = [&](std::uint64_t i0, std::size_t n_act) {
            for (std::size_t s = 0; s < samp; ++s) {
              const double* col = rows.data() + s * n_act;
              std::size_t nf = 0, nr = 0;
              for (std::size_t j = 0; j < n_act; ++j) {
                if ((i0 + j) % 2 == 0) {
                  col_f[nf++] = col[j];
                } else {
                  col_r[nr++] = col[j];
                }
              }
              local.fixed[s].add_block({col_f.data(), nf});
              local.random[s].add_block({col_r.data(), nr});
            }
          };
          const auto draw_value = [&](std::uint64_t i, Xoshiro256& rng) {
            return (i % 2 == 0)
                       ? fixed_value
                       : static_cast<std::uint32_t>(rng.next_u64()) &
                             value_mask;
          };

          TraceScratch scratch;
          BlockScratch block_scratch;
          if (use_block) {
            block_scratch = target.make_block_scratch();
          } else {
            scratch = target.make_scratch();
          }
          for (std::uint64_t k = r.begin; k < r.end; k += kL) {
            const std::uint64_t i0 = offset + k;
            const std::size_t n_act =
                static_cast<std::size_t>(std::min(kL, r.end - k));
            if (use_block) {
              for (std::size_t j = 0; j < n_act; ++j) {
                rngs[j] = base.split(i0 + j);
                values[j] = draw_value(i0 + j, rngs[j]);
              }
              target.capture_block({values.data(), n_act},
                                   {rngs.data(), n_act}, block_scratch,
                                   {rows.data(), n_act * samp},
                                   BlockLayout::kSampleMajor);
            } else {
              for (std::size_t j = 0; j < n_act; ++j) {
                Xoshiro256 rng = base.split(i0 + j);
                const std::uint32_t value = draw_value(i0 + j, rng);
                target.capture(value, rng, scratch, trace);
                for (std::size_t s = 0; s < samp; ++s) {
                  rows[s * n_act + j] = trace[s];
                }
              }
            }
            fold_rows(i0, n_act);
          }
          return local;
        },
        [](Moments acc, Moments part) {
          acc.merge(part);
          return acc;
        });
    total.merge(segment);
    done = checkpoint;

    TvlaCheckpoint cp;
    cp.traces = done;
    report.t1.assign(static_cast<std::size_t>(samples), 0.0);
    report.t2.assign(static_cast<std::size_t>(samples), 0.0);
    for (int s = 0; s < samples; ++s) {
      const auto& f = total.fixed[static_cast<std::size_t>(s)];
      const auto& r = total.random[static_cast<std::size_t>(s)];
      const double t1 = welch_t(f, r);
      const double t2 = welch_t_centered_square(f, r);
      report.t1[static_cast<std::size_t>(s)] = t1;
      report.t2[static_cast<std::size_t>(s)] = t2;
      cp.max_abs_t1 = std::max(cp.max_abs_t1, std::abs(t1));
      cp.max_abs_t2 = std::max(cp.max_abs_t2, std::abs(t2));
    }
    if (cp.max_abs_t1 > config.threshold &&
        report.traces_to_first_order_fail < 0) {
      report.traces_to_first_order_fail = done;
    }
    if (cp.max_abs_t2 > config.threshold &&
        report.traces_to_second_order_fail < 0) {
      report.traces_to_second_order_fail = done;
    }
    report.curve.push_back(cp);
  }

  if (report.curve.empty()) {
    throw std::invalid_argument("tvla: no checkpoint within n_traces");
  }
  const TvlaCheckpoint& last = report.curve.back();
  report.max_abs_t1 = last.max_abs_t1;
  report.max_abs_t2 = last.max_abs_t2;
  report.first_order_leak = last.max_abs_t1 > config.threshold;
  report.second_order_leak = last.max_abs_t2 > config.threshold;
  return report;
}

}  // namespace convolve::sca
