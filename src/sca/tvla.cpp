#include "convolve/sca/tvla.hpp"

#include <cmath>
#include <stdexcept>

#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace convolve::sca {

namespace {

// Per-class, per-sample moment accumulators for one shard of traces.
struct Moments {
  std::vector<Welford> fixed;
  std::vector<Welford> random;

  explicit Moments(int samples)
      : fixed(static_cast<std::size_t>(samples)),
        random(static_cast<std::size_t>(samples)) {}

  void merge(const Moments& other) {
    for (std::size_t s = 0; s < fixed.size(); ++s) {
      fixed[s].merge(other.fixed[s]);
      random[s].merge(other.random[s]);
    }
  }
};

std::vector<int> default_checkpoints(int n_traces) {
  std::vector<int> cps;
  for (int c = 256; c < n_traces; c *= 2) cps.push_back(c);
  cps.push_back(n_traces);
  return cps;
}

}  // namespace

TvlaReport tvla_fixed_vs_random(const MaskedTraceTarget& target,
                                std::uint32_t fixed_value, int n_traces,
                                const TvlaConfig& config) {
  if (n_traces < 4) throw std::invalid_argument("tvla: need >= 4 traces");
  CONVOLVE_TRACE_SPAN("sca.tvla");
  const int samples = target.samples();
  const std::uint32_t value_mask =
      target.plain_inputs() >= 32
          ? 0xFFFFFFFFu
          : (1u << target.plain_inputs()) - 1u;

  std::vector<int> checkpoints = config.checkpoints.empty()
                                     ? default_checkpoints(n_traces)
                                     : config.checkpoints;

  TvlaReport report;
  report.samples = samples;
  report.threshold = config.threshold;

  const Xoshiro256 base(config.seed);
  Moments total(samples);
  int done = 0;
  for (int checkpoint : checkpoints) {
    if (checkpoint <= done || checkpoint > n_traces) continue;
    // Capture the segment [done, checkpoint) and fold it into the running
    // accumulators: parallel_reduce merges the per-chunk moments in
    // ascending chunk order, and segments merge in schedule order, so the
    // whole curve is thread-count invariant.
    const std::uint64_t seg = static_cast<std::uint64_t>(checkpoint - done);
    const std::uint64_t offset = static_cast<std::uint64_t>(done);
    Moments segment = par::parallel_reduce(
        seg, config.grain, Moments(samples),
        [&](std::uint64_t, par::Range r) {
          Moments local(samples);
          TraceScratch scratch = target.make_scratch();
          std::vector<double> trace(static_cast<std::size_t>(samples));
          for (std::uint64_t k = r.begin; k < r.end; ++k) {
            const std::uint64_t i = offset + k;
            Xoshiro256 rng = base.split(i);
            const bool is_fixed = (i % 2 == 0);
            const std::uint32_t value =
                is_fixed
                    ? fixed_value
                    : static_cast<std::uint32_t>(rng.next_u64()) & value_mask;
            target.capture(value, rng, scratch, trace);
            auto& cls = is_fixed ? local.fixed : local.random;
            for (int s = 0; s < samples; ++s) {
              cls[static_cast<std::size_t>(s)].add(
                  trace[static_cast<std::size_t>(s)]);
            }
          }
          return local;
        },
        [](Moments acc, Moments part) {
          acc.merge(part);
          return acc;
        });
    total.merge(segment);
    done = checkpoint;

    TvlaCheckpoint cp;
    cp.traces = done;
    report.t1.assign(static_cast<std::size_t>(samples), 0.0);
    report.t2.assign(static_cast<std::size_t>(samples), 0.0);
    for (int s = 0; s < samples; ++s) {
      const auto& f = total.fixed[static_cast<std::size_t>(s)];
      const auto& r = total.random[static_cast<std::size_t>(s)];
      const double t1 = welch_t(f, r);
      const double t2 = welch_t_centered_square(f, r);
      report.t1[static_cast<std::size_t>(s)] = t1;
      report.t2[static_cast<std::size_t>(s)] = t2;
      cp.max_abs_t1 = std::max(cp.max_abs_t1, std::abs(t1));
      cp.max_abs_t2 = std::max(cp.max_abs_t2, std::abs(t2));
    }
    if (cp.max_abs_t1 > config.threshold &&
        report.traces_to_first_order_fail < 0) {
      report.traces_to_first_order_fail = done;
    }
    if (cp.max_abs_t2 > config.threshold &&
        report.traces_to_second_order_fail < 0) {
      report.traces_to_second_order_fail = done;
    }
    report.curve.push_back(cp);
  }

  if (report.curve.empty()) {
    throw std::invalid_argument("tvla: no checkpoint within n_traces");
  }
  const TvlaCheckpoint& last = report.curve.back();
  report.max_abs_t1 = last.max_abs_t1;
  report.max_abs_t2 = last.max_abs_t2;
  report.first_order_leak = last.max_abs_t1 > config.threshold;
  report.second_order_leak = last.max_abs_t2 > config.threshold;
  return report;
}

}  // namespace convolve::sca
