#include "convolve/sca/trace.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "convolve/common/leakage_model.hpp"

namespace convolve::sca {

using masking::Gate;
using masking::GateKind;

namespace {
// kSpread[b]: byte j of the entry equals bit j of b. Spreading one byte of
// a counter plane drops the plane bit of 8 adjacent lanes into 8 separate
// byte slots, so a whole lane group assembles its counter value with one
// table load + shift per plane instead of per (lane, plane) bit tests.
constexpr std::array<std::uint64_t, 256> kSpread = [] {
  std::array<std::uint64_t, 256> t{};
  for (int b = 0; b < 256; ++b) {
    std::uint64_t v = 0;
    for (int j = 0; j < 8; ++j) {
      v |= static_cast<std::uint64_t>((b >> j) & 1) << (8 * j);
    }
    t[static_cast<std::size_t>(b)] = v;
  }
  return t;
}();
// One block's subset-popcount accumulation (see accumulate_block_sums):
// for every sample, AND together each nonempty subset of its counter
// planes and add two masked popcounts -- class lanes low, active lanes
// high -- into the packed count words. kPlanes > 0 instantiations have a
// compile-time subset count, so the loop unrolls and the subset ANDs stay
// in registers; kPlanes == 0 is the any-width fallback.
template <int kPlanes>
[[gnu::always_inline]] inline void subset_counts_one_sample(
    const std::uint64_t* pl, std::size_t nsub, std::uint64_t in_mask,
    std::uint64_t active, std::uint64_t* cnt) {
  constexpr std::size_t kN =
      kPlanes > 0 ? (std::size_t{1} << kPlanes) - 1 : 255;
  std::uint64_t sub[kN + 1];
  const std::size_t n = kPlanes > 0 ? kN : nsub;
#pragma GCC unroll 16
  for (std::size_t m = 1; m <= n; ++m) {
    const int low = std::countr_zero(m);
    const std::size_t rest = m & (m - 1);
    const std::uint64_t a = rest == 0 ? pl[low] : (sub[rest] & pl[low]);
    sub[m] = a;
    cnt[m - 1] +=
        static_cast<std::uint64_t>(std::popcount(a & in_mask)) |
        (static_cast<std::uint64_t>(std::popcount(a & active)) << 32);
  }
}

using SubsetSweepFn = void (*)(const std::uint64_t*, int, int, std::size_t,
                               std::uint64_t, std::uint64_t, std::uint64_t*);

template <int kPlanes>
void subset_counts_sweep(const std::uint64_t* counters, int samples,
                         int planes, std::size_t nsub, std::uint64_t in_mask,
                         std::uint64_t active, std::uint64_t* cnt) {
  for (int s = 0; s < samples; ++s) {
    subset_counts_one_sample<kPlanes>(
        counters + static_cast<std::size_t>(s) * planes, nsub, in_mask,
        active, cnt + static_cast<std::size_t>(s) * nsub);
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
// Same body compiled with the POPCNT instruction enabled; the baseline
// build stays generic x86-64 and this version is only ever selected after
// a __builtin_cpu_supports check, so the binary remains portable.
template <int kPlanes>
__attribute__((target("popcnt"))) void subset_counts_sweep_popcnt(
    const std::uint64_t* counters, int samples, int planes, std::size_t nsub,
    std::uint64_t in_mask, std::uint64_t active, std::uint64_t* cnt) {
  for (int s = 0; s < samples; ++s) {
    subset_counts_one_sample<kPlanes>(
        counters + static_cast<std::size_t>(s) * planes, nsub, in_mask,
        active, cnt + static_cast<std::size_t>(s) * nsub);
  }
}
#endif

SubsetSweepFn pick_subset_sweep(int planes) {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("popcnt")) {
    switch (planes) {
      case 1: return subset_counts_sweep_popcnt<1>;
      case 2: return subset_counts_sweep_popcnt<2>;
      case 3: return subset_counts_sweep_popcnt<3>;
      case 4: return subset_counts_sweep_popcnt<4>;
      default: return subset_counts_sweep_popcnt<0>;
    }
  }
#endif
  switch (planes) {
    case 1: return subset_counts_sweep<1>;
    case 2: return subset_counts_sweep<2>;
    case 3: return subset_counts_sweep<3>;
    case 4: return subset_counts_sweep<4>;
    default: return subset_counts_sweep<0>;
  }
}

}  // namespace

PowerTraceSimulator::PowerTraceSimulator(const masking::Circuit& circuit,
                                         TraceConfig config)
    : circuit_(circuit), config_(config) {
  depth_.resize(circuit.num_gates(), 0);
  const auto& gates = circuit.gates();
  int max_depth = 0;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    int d = 0;
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kRandom:
      case GateKind::kConst:
        d = 0;
        break;
      case GateKind::kNot:
      case GateKind::kReg:
        d = depth_[static_cast<std::size_t>(g.a)] + 1;
        break;
      case GateKind::kAnd:
      case GateKind::kXor:
        d = std::max(depth_[static_cast<std::size_t>(g.a)],
                     depth_[static_cast<std::size_t>(g.b)]) +
            1;
        break;
    }
    depth_[i] = d;
    max_depth = std::max(max_depth, d);
  }
  samples_ = max_depth + 1;

  // Sizing for the bitsliced vertical counters: a depth group of k gates
  // accumulates Hamming sums up to k, so bit_width(k) planes per group
  // suffice; use the widest group's width as a uniform stride.
  std::vector<int> group_count(static_cast<std::size_t>(samples_), 0);
  for (int d : depth_) ++group_count[static_cast<std::size_t>(d)];
  int max_count = 0;
  for (int c : group_count) max_count = std::max(max_count, c);
  counter_planes_ =
      std::bit_width(static_cast<unsigned>(max_count));

  // Counting sort of the gates by depth group (stable: ascending gate
  // index within a group) for the register-resident counter accumulation.
  group_end_.resize(static_cast<std::size_t>(samples_));
  int acc = 0;
  for (int s = 0; s < samples_; ++s) {
    acc += group_count[static_cast<std::size_t>(s)];
    group_end_[static_cast<std::size_t>(s)] = acc;
  }
  gates_by_depth_.resize(depth_.size());
  std::vector<int> next(static_cast<std::size_t>(samples_), 0);
  for (int s = 1; s < samples_; ++s) {
    next[static_cast<std::size_t>(s)] = group_end_[static_cast<std::size_t>(s - 1)];
  }
  for (std::size_t i = 0; i < depth_.size(); ++i) {
    gates_by_depth_[static_cast<std::size_t>(
        next[static_cast<std::size_t>(depth_[i])]++)] = static_cast<int>(i);
  }

  // Subset moment coefficients (see k13_/k24_ in the header). A counter
  // value is v = sum_p 2^p * b_p with b_p in {0,1}, so b_p^2 = b_p and
  // expanding v^k collapses every term onto a *subset* T of planes; the
  // coefficient of popcount(AND of T) follows by inclusion-exclusion over
  // sub-subsets, where a subset's weight sum_p 2^p is just its mask value.
  if (supports_block_capture() && counter_planes_ <= 8) {
    const std::size_t nsub =
        (static_cast<std::size_t>(1) << counter_planes_) - 1;
    k13_.assign(nsub + 1, 0);
    k24_.assign(nsub + 1, 0);
    for (std::size_t m = 1; m <= nsub; ++m) {
      std::int64_t c1 = 0, c2 = 0, c3 = 0, c4 = 0;
      std::size_t sub = m;
      while (true) {
        const std::int64_t sign =
            ((std::popcount(m) - std::popcount(sub)) & 1) ? -1 : 1;
        const std::int64_t w = static_cast<std::int64_t>(sub);
        c1 += sign * w;
        c2 += sign * w * w;
        c3 += sign * w * w * w;
        c4 += sign * w * w * w * w;
        if (sub == 0) break;
        sub = (sub - 1) & m;
      }
      // The tuple counts are non-negative; c1 (only the singleton subsets)
      // fits 16 bits and c2 (subsets of size <= 2) fits 24, matching the
      // PackedMoments fields they accumulate into.
      k13_[m] = static_cast<std::uint64_t>(c1) |
                (static_cast<std::uint64_t>(c3) << 16);
      k24_[m] = static_cast<std::uint64_t>(c2) |
                (static_cast<std::uint64_t>(c4) << 24);
    }
  }
}

TraceScratch PowerTraceSimulator::make_scratch() const {
  TraceScratch s;
  s.inputs.resize(static_cast<std::size_t>(circuit_.num_inputs()), 0);
  s.randoms.resize(static_cast<std::size_t>(circuit_.num_randoms()), 0);
  s.wire.resize(circuit_.num_gates(), 0);
  s.wire_prev.resize(circuit_.num_gates(), 0);
  return s;
}

void PowerTraceSimulator::fill_randoms(Xoshiro256& rng,
                                       TraceScratch& scratch) const {
  std::uint64_t word = 0;
  for (std::size_t j = 0; j < scratch.randoms.size(); ++j) {
    if (j % 64 == 0) word = rng.next_u64();
    scratch.randoms[j] = static_cast<std::uint8_t>((word >> (j % 64)) & 1u);
  }
}

void PowerTraceSimulator::accumulate(std::span<const std::uint8_t> wire,
                                     std::span<double> out) const {
  for (std::size_t i = 0; i < wire.size(); ++i) {
    out[static_cast<std::size_t>(depth_[i])] += leakage::settle_energy(wire[i]);
  }
}

void PowerTraceSimulator::add_noise(Xoshiro256& rng,
                                    std::span<double> out) const {
  if (config_.noise_sigma <= 0.0) return;
  for (double& s : out) s += rng.normal(0.0, config_.noise_sigma);
}

void PowerTraceSimulator::capture(std::span<const std::uint8_t> inputs,
                                  Xoshiro256& rng, TraceScratch& scratch,
                                  std::span<double> out) const {
  if (static_cast<int>(out.size()) != samples_) {
    throw std::invalid_argument("capture: wrong trace length");
  }
  fill_randoms(rng, scratch);
  circuit_.evaluate_all_into(inputs, scratch.randoms, scratch.wire);
  std::fill(out.begin(), out.end(), 0.0);
  accumulate(scratch.wire, out);
  add_noise(rng, out);
}

BlockScratch PowerTraceSimulator::make_block_scratch() const {
  BlockScratch s;
  s.inputs.resize(static_cast<std::size_t>(circuit_.num_inputs()), 0);
  s.randoms.resize(static_cast<std::size_t>(circuit_.num_randoms()), 0);
  s.wire.resize(circuit_.num_gates(), 0);
  s.counters.resize(static_cast<std::size_t>(samples_) *
                        static_cast<std::size_t>(counter_planes_),
                    0);
  return s;
}

// Requires counter_planes_ <= 8 (counts fit a byte). Byte slots hold up
// to 8 bits: lane group k (lanes 8k..8k+7) assembles in one uint64 `acc`
// whose byte j accumulates lane 8k+j's counter, plane p contributing bit
// p of every byte -- then the whole group stores with a single 8-byte
// write instead of per-lane shifts.
void PowerTraceSimulator::extract_sample_bytes(const BlockScratch& scratch,
                                               int sample,
                                               std::uint8_t* vals) const {
  const int planes = counter_planes_;
  const std::uint64_t* pl = scratch.counters.data() +
                            static_cast<std::size_t>(sample) *
                                static_cast<std::size_t>(planes);
  for (int k = 0; k < 8; ++k) {
    std::uint64_t acc = 0;
    for (int p = 0; p < planes; ++p) {
      acc |= kSpread[(pl[p] >> (8 * k)) & 0xFF] << p;
    }
    std::memcpy(vals + 8 * k, &acc, 8);
  }
}

void PowerTraceSimulator::extract_sample_values(const BlockScratch& scratch,
                                                int sample,
                                                std::uint32_t* vals) const {
  const int planes = counter_planes_;
  if (planes <= 8) {
    std::uint8_t bytes[kLanes];
    extract_sample_bytes(scratch, sample, bytes);
    for (int j = 0; j < kLanes; ++j) vals[j] = bytes[j];
  } else {
    // Counter values >= 256 (depth groups with 256+ gates): generic
    // per-lane bit gather.
    const std::uint64_t* pl = scratch.counters.data() +
                              static_cast<std::size_t>(sample) *
                                  static_cast<std::size_t>(planes);
    for (int j = 0; j < kLanes; ++j) {
      std::uint32_t v = 0;
      for (int p = 0; p < planes; ++p) {
        v |= static_cast<std::uint32_t>((pl[p] >> j) & 1ull) << p;
      }
      vals[j] = v;
    }
  }
}

void PowerTraceSimulator::block_evaluate(std::span<Xoshiro256> rngs,
                                         BlockScratch& scratch,
                                         std::size_t out_size) const {
  const std::size_t n_active = rngs.size();
  if (!supports_block_capture()) {
    throw std::invalid_argument(
        "capture_block: only the Hamming-weight model is bitsliced");
  }
  if (n_active == 0 || n_active > static_cast<std::size_t>(kLanes)) {
    throw std::invalid_argument("capture_block: need 1..64 active lanes");
  }
  if (out_size != n_active * static_cast<std::size_t>(samples_)) {
    throw std::invalid_argument("capture_block: wrong output size");
  }

  // Per-lane randomness, replicating the scalar fill_randoms draw order:
  // lane j consumes one next_u64() from rngs[j] per started group of 64
  // randoms, bit r%64 of that word feeding random r.
  std::fill(scratch.randoms.begin(), scratch.randoms.end(), 0ull);
  for (std::size_t j = 0; j < n_active; ++j) {
    std::uint64_t word = 0;
    for (std::size_t r = 0; r < scratch.randoms.size(); ++r) {
      if (r % 64 == 0) word = rngs[j].next_u64();
      scratch.randoms[r] |= ((word >> (r % 64)) & 1ull) << j;
    }
  }

  circuit_.evaluate_all_lanes_into<std::uint64_t>(scratch.inputs,
                                                  scratch.randoms,
                                                  scratch.wire);

  // Vertical-counter accumulation: counter plane p of depth group d holds
  // bit p of that group's per-lane Hamming sum. Adding a wire plane is a
  // bit-serial ripple add across all 64 lanes at once. 1-bit addition is
  // exact, so walking gates grouped by depth (instead of topological
  // order) leaves every counter value unchanged -- and lets one group's
  // planes live in registers for the whole group.
  std::fill(scratch.counters.begin(), scratch.counters.end(), 0ull);
  const int planes = counter_planes_;
  if (planes <= 4) {
    std::size_t i = 0;
    for (int s = 0; s < samples_; ++s) {
      const auto end =
          static_cast<std::size_t>(group_end_[static_cast<std::size_t>(s)]);
      std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
      for (; i < end; ++i) {
        const std::uint64_t w = scratch.wire[static_cast<std::size_t>(
            gates_by_depth_[i])];
        std::uint64_t t = c0;
        c0 ^= w;
        std::uint64_t carry = t & w;
        t = c1;
        c1 ^= carry;
        carry &= t;
        t = c2;
        c2 ^= carry;
        carry &= t;
        c3 ^= carry;
      }
      const std::uint64_t cc[4] = {c0, c1, c2, c3};
      std::uint64_t* c = scratch.counters.data() +
                         static_cast<std::size_t>(s) *
                             static_cast<std::size_t>(planes);
      for (int p = 0; p < planes; ++p) c[p] = cc[p];
    }
    return;
  }
  for (std::size_t i = 0; i < scratch.wire.size(); ++i) {
    std::uint64_t* c =
        scratch.counters.data() +
        static_cast<std::size_t>(depth_[i]) * static_cast<std::size_t>(planes);
    std::uint64_t carry = scratch.wire[i];
    for (int p = 0; p < planes && carry != 0; ++p) {
      const std::uint64_t t = c[p];
      c[p] = t ^ carry;
      carry &= t;
    }
  }
}

void PowerTraceSimulator::capture_block(std::span<Xoshiro256> rngs,
                                        BlockScratch& scratch,
                                        std::span<double> out,
                                        BlockLayout layout) const {
  const std::size_t n_active = rngs.size();
  block_evaluate(rngs, scratch, out.size());

  // Extract the active lanes' samples in the requested layout. The spread
  // table assembles all 64 lanes; tails just drop the inactive suffix.
  std::uint32_t vals[kLanes];
  for (int s = 0; s < samples_; ++s) {
    extract_sample_values(scratch, s, vals);
    if (layout == BlockLayout::kSampleMajor) {
      double* col = out.data() + static_cast<std::size_t>(s) * n_active;
      for (std::size_t j = 0; j < n_active; ++j) {
        col[j] = static_cast<double>(vals[j]);
      }
    } else {
      for (std::size_t j = 0; j < n_active; ++j) {
        out[j * static_cast<std::size_t>(samples_) +
            static_cast<std::size_t>(s)] = static_cast<double>(vals[j]);
      }
    }
  }

  // Noise last. Lane j always draws its samples in ascending-s order from
  // rngs[j] -- the scalar per-trace order -- regardless of layout, so the
  // emitted values are layout-invariant.
  if (config_.noise_sigma > 0.0) {
    if (layout == BlockLayout::kSampleMajor) {
      for (std::size_t j = 0; j < n_active; ++j) {
        for (int s = 0; s < samples_; ++s) {
          out[static_cast<std::size_t>(s) * n_active + j] +=
              rngs[j].normal(0.0, config_.noise_sigma);
        }
      }
    } else {
      for (std::size_t j = 0; j < n_active; ++j) {
        add_noise(rngs[j],
                  out.subspan(j * static_cast<std::size_t>(samples_),
                              static_cast<std::size_t>(samples_)));
      }
    }
  }
}

void PowerTraceSimulator::capture_block_counts(
    std::span<Xoshiro256> rngs, BlockScratch& scratch,
    std::span<std::uint8_t> out) const {
  if (config_.noise_sigma > 0.0) {
    throw std::invalid_argument(
        "capture_block_counts: noise only exists in the double domain");
  }
  if (counter_planes_ > 8) {
    throw std::invalid_argument(
        "capture_block_counts: counts exceed a byte (counter_planes > 8)");
  }
  const std::size_t n_active = rngs.size();
  block_evaluate(rngs, scratch, out.size());
  if (n_active == static_cast<std::size_t>(kLanes)) {
    // Full block: the extractor's 64-byte output IS the sample column.
    for (int s = 0; s < samples_; ++s) {
      extract_sample_bytes(scratch, s,
                           out.data() + static_cast<std::size_t>(s) * n_active);
    }
    return;
  }
  std::uint8_t vals[kLanes];
  for (int s = 0; s < samples_; ++s) {
    extract_sample_bytes(scratch, s, vals);
    std::uint8_t* col = out.data() + static_cast<std::size_t>(s) * n_active;
    for (std::size_t j = 0; j < n_active; ++j) col[j] = vals[j];
  }
}

BlockSumsAccum PowerTraceSimulator::make_block_sums_accum() const {
  BlockSumsAccum a;
  if (!k13_.empty()) {
    a.counts.assign(static_cast<std::size_t>(samples_) * (k13_.size() - 1),
                    0);
  }
  return a;
}

void PowerTraceSimulator::accumulate_block_sums(std::span<Xoshiro256> rngs,
                                                BlockScratch& scratch,
                                                std::uint64_t class_mask,
                                                BlockSumsAccum& accum) const {
  if (config_.noise_sigma > 0.0) {
    throw std::invalid_argument(
        "accumulate_block_sums: noise only exists in the double domain");
  }
  if (counter_planes_ > 8) {
    throw std::invalid_argument(
        "accumulate_block_sums: counts exceed a byte (counter_planes > 8)");
  }
  const std::size_t n_active = rngs.size();
  block_evaluate(rngs, scratch,
                 n_active * static_cast<std::size_t>(samples_));
  const std::uint64_t active = n_active == static_cast<std::size_t>(kLanes)
                                   ? ~0ull
                                   : (1ull << n_active) - 1ull;
  const std::uint64_t in_mask = class_mask & active;
  const int planes = counter_planes_;
  const std::size_t nsub = k13_.empty() ? 0 : k13_.size() - 1;
  if (accum.counts.size() != static_cast<std::size_t>(samples_) * nsub) {
    throw std::invalid_argument(
        "accumulate_block_sums: accum not from make_block_sums_accum");
  }
  if (nsub == 0) return;
  // Subset ANDs build incrementally -- subset m is its lowest plane ANDed
  // with the rest of m -- so each of the 2^planes - 1 subsets costs one
  // AND, two masked popcounts and one add into the packed count word. The
  // sweep is dispatched once per block to an unrolled (and, where the CPU
  // has it, hardware-POPCNT) instantiation.
  pick_subset_sweep(planes)(scratch.counters.data(), samples_, planes, nsub,
                            in_mask, active, accum.counts.data());
}

void PowerTraceSimulator::finalize_block_sums(
    BlockSumsAccum& accum, std::span<PackedMoments> in_class,
    std::span<PackedMoments> out_class) const {
  if (in_class.size() != static_cast<std::size_t>(samples_) ||
      out_class.size() != static_cast<std::size_t>(samples_)) {
    throw std::invalid_argument(
        "finalize_block_sums: spans must cover samples_per_trace()");
  }
  const std::size_t nsub = k13_.empty() ? 0 : k13_.size() - 1;
  for (int s = 0; s < samples_; ++s) {
    std::uint64_t* cnt = accum.counts.data() +
                         static_cast<std::size_t>(s) * nsub;
    std::uint64_t in13 = 0, in24 = 0, all13 = 0, all24 = 0;
    for (std::size_t m = 1; m <= nsub; ++m) {
      const std::uint64_t c = cnt[m - 1];
      const std::uint64_t ci = c & 0xFFFFFFFFull;
      const std::uint64_t ca = c >> 32;
      in13 += ci * k13_[m];
      in24 += ci * k24_[m];
      all13 += ca * k13_[m];
      all24 += ca * k24_[m];
      cnt[m - 1] = 0;
    }
    in_class[static_cast<std::size_t>(s)] = {in13, in24};
    // Field-wise subtraction is exact: every all-lanes field dominates its
    // in-class counterpart, so no borrow crosses a field boundary.
    out_class[static_cast<std::size_t>(s)] = {all13 - in13, all24 - in24};
  }
}

void PowerTraceSimulator::capture_transition(
    std::span<const std::uint8_t> from, std::span<const std::uint8_t> to,
    Xoshiro256& rng, TraceScratch& scratch, std::span<double> out) const {
  if (static_cast<int>(out.size()) != samples_) {
    throw std::invalid_argument("capture_transition: wrong trace length");
  }
  fill_randoms(rng, scratch);
  circuit_.evaluate_all_into(from, scratch.randoms, scratch.wire_prev);
  fill_randoms(rng, scratch);
  circuit_.evaluate_all_into(to, scratch.randoms, scratch.wire);
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < scratch.wire.size(); ++i) {
    out[static_cast<std::size_t>(depth_[i])] +=
        leakage::switch_energy(scratch.wire_prev[i], scratch.wire[i]);
  }
  add_noise(rng, out);
}

}  // namespace convolve::sca
