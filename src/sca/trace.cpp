#include "convolve/sca/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "convolve/common/leakage_model.hpp"

namespace convolve::sca {

using masking::Gate;
using masking::GateKind;

PowerTraceSimulator::PowerTraceSimulator(const masking::Circuit& circuit,
                                         TraceConfig config)
    : circuit_(circuit), config_(config) {
  depth_.resize(circuit.num_gates(), 0);
  const auto& gates = circuit.gates();
  int max_depth = 0;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    int d = 0;
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kRandom:
      case GateKind::kConst:
        d = 0;
        break;
      case GateKind::kNot:
      case GateKind::kReg:
        d = depth_[static_cast<std::size_t>(g.a)] + 1;
        break;
      case GateKind::kAnd:
      case GateKind::kXor:
        d = std::max(depth_[static_cast<std::size_t>(g.a)],
                     depth_[static_cast<std::size_t>(g.b)]) +
            1;
        break;
    }
    depth_[i] = d;
    max_depth = std::max(max_depth, d);
  }
  samples_ = max_depth + 1;
}

TraceScratch PowerTraceSimulator::make_scratch() const {
  TraceScratch s;
  s.inputs.resize(static_cast<std::size_t>(circuit_.num_inputs()), 0);
  s.randoms.resize(static_cast<std::size_t>(circuit_.num_randoms()), 0);
  s.wire.resize(circuit_.num_gates(), 0);
  s.wire_prev.resize(circuit_.num_gates(), 0);
  return s;
}

void PowerTraceSimulator::fill_randoms(Xoshiro256& rng,
                                       TraceScratch& scratch) const {
  std::uint64_t word = 0;
  for (std::size_t j = 0; j < scratch.randoms.size(); ++j) {
    if (j % 64 == 0) word = rng.next_u64();
    scratch.randoms[j] = static_cast<std::uint8_t>((word >> (j % 64)) & 1u);
  }
}

void PowerTraceSimulator::accumulate(std::span<const std::uint8_t> wire,
                                     std::span<double> out) const {
  for (std::size_t i = 0; i < wire.size(); ++i) {
    out[static_cast<std::size_t>(depth_[i])] += leakage::settle_energy(wire[i]);
  }
}

void PowerTraceSimulator::add_noise(Xoshiro256& rng,
                                    std::span<double> out) const {
  if (config_.noise_sigma <= 0.0) return;
  for (double& s : out) s += rng.normal(0.0, config_.noise_sigma);
}

void PowerTraceSimulator::capture(std::span<const std::uint8_t> inputs,
                                  Xoshiro256& rng, TraceScratch& scratch,
                                  std::span<double> out) const {
  if (static_cast<int>(out.size()) != samples_) {
    throw std::invalid_argument("capture: wrong trace length");
  }
  fill_randoms(rng, scratch);
  circuit_.evaluate_all_into(inputs, scratch.randoms, scratch.wire);
  std::fill(out.begin(), out.end(), 0.0);
  accumulate(scratch.wire, out);
  add_noise(rng, out);
}

void PowerTraceSimulator::capture_transition(
    std::span<const std::uint8_t> from, std::span<const std::uint8_t> to,
    Xoshiro256& rng, TraceScratch& scratch, std::span<double> out) const {
  if (static_cast<int>(out.size()) != samples_) {
    throw std::invalid_argument("capture_transition: wrong trace length");
  }
  fill_randoms(rng, scratch);
  circuit_.evaluate_all_into(from, scratch.randoms, scratch.wire_prev);
  fill_randoms(rng, scratch);
  circuit_.evaluate_all_into(to, scratch.randoms, scratch.wire);
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < scratch.wire.size(); ++i) {
    out[static_cast<std::size_t>(depth_[i])] +=
        leakage::switch_energy(scratch.wire_prev[i], scratch.wire[i]);
  }
  add_noise(rng, out);
}

}  // namespace convolve::sca
