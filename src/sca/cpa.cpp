#include "convolve/sca/cpa.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "convolve/common/bytes.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/stats.hpp"
#include "convolve/common/telemetry.hpp"
#include "convolve/masking/gf256.hpp"

namespace convolve::sca {

namespace {

constexpr int kGuesses = 256;

// One-pass sums for the Pearson correlation between every (guess, sample)
// pair: all fields are plain sums, so merging shards in rank order is
// exact and deterministic.
struct CpaSums {
  double n = 0.0;
  std::vector<double> sx;    // per sample
  std::vector<double> sxx;   // per sample
  std::vector<double> sh;    // per guess
  std::vector<double> shh;   // per guess
  std::vector<double> shx;   // guess-major [guess][sample]

  explicit CpaSums(int samples)
      : sx(static_cast<std::size_t>(samples), 0.0),
        sxx(static_cast<std::size_t>(samples), 0.0),
        sh(kGuesses, 0.0),
        shh(kGuesses, 0.0),
        shx(static_cast<std::size_t>(kGuesses * samples), 0.0) {}

  void merge(const CpaSums& o) {
    n += o.n;
    for (std::size_t i = 0; i < sx.size(); ++i) sx[i] += o.sx[i];
    for (std::size_t i = 0; i < sxx.size(); ++i) sxx[i] += o.sxx[i];
    for (std::size_t i = 0; i < sh.size(); ++i) sh[i] += o.sh[i];
    for (std::size_t i = 0; i < shh.size(); ++i) shh[i] += o.shh[i];
    for (std::size_t i = 0; i < shx.size(); ++i) shx[i] += o.shx[i];
  }
};

std::vector<int> default_checkpoints(int n_traces) {
  std::vector<int> cps;
  for (int c = 256; c < n_traces; c *= 2) cps.push_back(c);
  cps.push_back(n_traces);
  return cps;
}

}  // namespace

CpaReport cpa_sbox_attack(const MaskedTraceTarget& target, std::uint8_t key,
                          int n_traces, const CpaConfig& config) {
  if (target.plain_inputs() != 8) {
    throw std::invalid_argument("cpa_sbox_attack: target is not an 8-bit box");
  }
  if (n_traces < 8) throw std::invalid_argument("cpa: need >= 8 traces");
  if (config.lanes != 1 && config.lanes != PowerTraceSimulator::kLanes) {
    throw std::invalid_argument("cpa: lanes must be 1 or 64");
  }
  CONVOLVE_TRACE_SPAN("sca.cpa");
  const bool use_block =
      config.lanes != 1 && target.supports_block_capture();
  const int samples = target.samples();

  // Hypothesis table: HW(S(v)) for every S-box input v.
  std::array<double, kGuesses> hw_sbox;
  for (int v = 0; v < kGuesses; ++v) {
    hw_sbox[static_cast<std::size_t>(v)] = hamming_weight(
        static_cast<std::uint64_t>(
            masking::aes_sbox(static_cast<std::uint8_t>(v))));
  }

  std::vector<int> checkpoints = config.checkpoints.empty()
                                     ? default_checkpoints(n_traces)
                                     : config.checkpoints;

  CpaReport report;
  report.samples = samples;
  report.true_key = key;

  const Xoshiro256 base(config.seed);
  CpaSums total(samples);
  int done = 0;
  for (int checkpoint : checkpoints) {
    if (checkpoint <= done || checkpoint > n_traces) continue;
    const std::uint64_t seg = static_cast<std::uint64_t>(checkpoint - done);
    const std::uint64_t offset = static_cast<std::uint64_t>(done);
    CpaSums segment = par::parallel_reduce(
        seg, config.grain, CpaSums(samples),
        [&](std::uint64_t, par::Range r) {
          // The sums are accumulated strictly per trace in ascending index
          // order in both engines; the bitsliced one only batches the
          // *capture* (64 traces per gate pass), so the two engines'
          // reports are bit-identical.
          constexpr std::uint64_t kL =
              static_cast<std::uint64_t>(PowerTraceSimulator::kLanes);
          CpaSums local(samples);
          const std::size_t samp = static_cast<std::size_t>(samples);
          std::vector<double> rows(static_cast<std::size_t>(kL) * samp);
          std::array<Xoshiro256, kL> rngs;
          std::array<std::uint32_t, kL> values;
          std::array<std::uint8_t, kL> plains;

          const auto accumulate_trace = [&](std::uint8_t p,
                                            const double* trace) {
            local.n += 1.0;
            for (std::size_t s = 0; s < samp; ++s) {
              const double x = trace[s];
              local.sx[s] += x;
              local.sxx[s] += x * x;
            }
            for (int g = 0; g < kGuesses; ++g) {
              const double h = hw_sbox[static_cast<std::size_t>(p ^ g)];
              local.sh[static_cast<std::size_t>(g)] += h;
              local.shh[static_cast<std::size_t>(g)] += h * h;
              double* row = &local.shx[static_cast<std::size_t>(g * samples)];
              for (std::size_t s = 0; s < samp; ++s) {
                row[s] += h * trace[s];
              }
            }
          };

          TraceScratch scratch;
          BlockScratch block_scratch;
          if (use_block) {
            block_scratch = target.make_block_scratch();
          } else {
            scratch = target.make_scratch();
          }
          for (std::uint64_t k = r.begin; k < r.end; k += kL) {
            const std::size_t n_act =
                static_cast<std::size_t>(std::min(kL, r.end - k));
            for (std::size_t j = 0; j < n_act; ++j) {
              rngs[j] = base.split(offset + k + j);
              plains[j] =
                  static_cast<std::uint8_t>(rngs[j].next_u64() & 0xFF);
              values[j] = static_cast<std::uint32_t>(plains[j] ^ key);
            }
            if (use_block) {
              target.capture_block({values.data(), n_act},
                                   {rngs.data(), n_act}, block_scratch,
                                   {rows.data(), n_act * samp});
            } else {
              for (std::size_t j = 0; j < n_act; ++j) {
                target.capture(values[j], rngs[j], scratch,
                               {rows.data() + j * samp, samp});
              }
            }
            for (std::size_t j = 0; j < n_act; ++j) {
              accumulate_trace(plains[j], rows.data() + j * samp);
            }
          }
          return local;
        },
        [](CpaSums acc, CpaSums part) {
          acc.merge(part);
          return acc;
        });
    total.merge(segment);
    done = checkpoint;

    // Rank the guesses by max |rho| over the samples.
    report.correlation.assign(kGuesses, 0.0);
    for (int g = 0; g < kGuesses; ++g) {
      double best = 0.0;
      for (int s = 0; s < samples; ++s) {
        const double sxg = total.sx[static_cast<std::size_t>(s)];
        const double num =
            total.n * total.shx[static_cast<std::size_t>(g * samples + s)] -
            total.sh[static_cast<std::size_t>(g)] * sxg;
        const double dh =
            total.n * total.shh[static_cast<std::size_t>(g)] -
            total.sh[static_cast<std::size_t>(g)] *
                total.sh[static_cast<std::size_t>(g)];
        const double dx = total.n * total.sxx[static_cast<std::size_t>(s)] -
                          sxg * sxg;
        if (dh <= 0.0 || dx <= 0.0) continue;
        best = std::max(best, std::abs(num / std::sqrt(dh * dx)));
      }
      report.correlation[static_cast<std::size_t>(g)] = best;
    }
    CpaCheckpoint cp;
    cp.traces = done;
    cp.true_key_corr = report.correlation[key];
    int rank = 0;
    double best_corr = 0.0;
    for (int g = 0; g < kGuesses; ++g) {
      best_corr =
          std::max(best_corr, report.correlation[static_cast<std::size_t>(g)]);
      if (g != key &&
          report.correlation[static_cast<std::size_t>(g)] > cp.true_key_corr) {
        ++rank;
      }
    }
    cp.rank = rank;
    cp.best_corr = best_corr;
    if (rank == 0 && report.traces_to_rank0 < 0) {
      report.traces_to_rank0 = done;
    }
    report.curve.push_back(cp);
  }

  if (report.curve.empty()) {
    throw std::invalid_argument("cpa: no checkpoint within n_traces");
  }
  const CpaCheckpoint& last = report.curve.back();
  report.rank = last.rank;
  report.recovered_key = static_cast<std::uint8_t>(
      argmax(report.correlation));
  return report;
}

}  // namespace convolve::sca
