#include "convolve/analysis/leakage_verify.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace convolve::analysis {

namespace {

#if CONVOLVE_TELEMETRY_ENABLED
telemetry::Counter t_probe_sets{"verifier.probe_sets"};
telemetry::Counter t_coverage_rejected{"verifier.coverage_rejected"};
telemetry::Counter t_simplified{"verifier.simplified_away"};
telemetry::Counter t_fallbacks{"verifier.fallback_checked"};
telemetry::Counter t_glitch_sets{"verifier.glitch_extended_sets"};
telemetry::Counter t_budget_spent{"verifier.fallback_budget_spent"};
telemetry::Histogram t_fallback_bits{"verifier.fallback_work_bits"};
#endif

using masking::Circuit;
using masking::Gate;
using masking::GateKind;
using masking::MaskedCircuit;

// Fixed-width bitset over the atom universe (input shares then randoms).
class Bits {
 public:
  Bits() = default;
  explicit Bits(int nbits) : w_(static_cast<std::size_t>((nbits + 63) / 64)) {}

  void set(int i) { w_[static_cast<std::size_t>(i >> 6)] |= 1ull << (i & 63); }
  bool test(int i) const {
    return (w_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1;
  }
  void flip(int i) { w_[static_cast<std::size_t>(i >> 6)] ^= 1ull << (i & 63); }
  void clear() { std::fill(w_.begin(), w_.end(), 0); }

  void or_with(const Bits& o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] |= o.w_[i];
  }
  void xor_with(const Bits& o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] ^= o.w_[i];
  }
  bool contains_all(const Bits& mask) const {
    for (std::size_t i = 0; i < w_.size(); ++i) {
      if ((w_[i] & mask.w_[i]) != mask.w_[i]) return false;
    }
    return true;
  }
  bool any() const {
    for (const auto w : w_) {
      if (w != 0) return true;
    }
    return false;
  }
  /// Invoke fn(bit_index) for every set bit.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < w_.size(); ++i) {
      std::uint64_t w = w_[i];
      while (w) {
        const int b = __builtin_ctzll(w);
        fn(static_cast<int>(i) * 64 + b);
        w &= w - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> w_;
};

// Per-wire symbolic footprint. `lin` is the exact XOR parity over atoms
// (input shares + randoms); `nl` the symmetric-difference set of AND-gate
// terms; `support` / `nl_support` the union of atoms the value (resp. its
// nonlinear core) can depend on.
struct Footprint {
  Bits lin;
  std::vector<int> nl;  // sorted AND-gate indices
  Bits support;
  Bits nl_support;
};

std::vector<int> symdiff(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> r;
  r.reserve(a.size() + b.size());
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(r));
  return r;
}

int ceil_log2(std::uint64_t n) {
  int b = 0;
  while ((1ull << b) < n) ++b;
  return b;
}

// Everything shared read-only across probe-set workers: one footprint /
// boundary / share-mask computation serves every thread.
struct VerifyContext {
  const Circuit& c;
  const MaskedCircuit& masked;
  const SymbolicOptions& options;
  int plain_inputs;
  unsigned n_shares;
  int n_gates;
  int n_inputs;
  int n_randoms;
  int n_atoms;
  std::vector<Footprint> fp;
  std::vector<Bits> and_support;          // populated for AND gates only
  std::vector<std::vector<int>> boundary;  // glitch mode only
  std::vector<Bits> glitch_support;        // glitch mode only
  std::vector<Bits> share_mask;            // per plain input

  bool covers_some_secret(const Bits& s) const {
    for (int i = 0; i < plain_inputs; ++i) {
      if (s.contains_all(share_mask[static_cast<std::size_t>(i)])) return true;
    }
    return false;
  }
};

VerifyContext build_context(const MaskedCircuit& masked, int plain_inputs,
                            const SymbolicOptions& options) {
  const Circuit& c = masked.circuit;
  VerifyContext ctx{c,
                    masked,
                    options,
                    plain_inputs,
                    masked.order + 1,
                    static_cast<int>(c.num_gates()),
                    c.num_inputs(),
                    c.num_randoms(),
                    c.num_inputs() + c.num_randoms(),
                    {},
                    {},
                    {},
                    {},
                    {}};

  // ---- Footprint computation (one topological pass) --------------------
  ctx.fp.resize(static_cast<std::size_t>(ctx.n_gates));
  ctx.and_support.resize(static_cast<std::size_t>(ctx.n_gates));
  for (int gi = 0; gi < ctx.n_gates; ++gi) {
    const Gate& g = c.gates()[static_cast<std::size_t>(gi)];
    Footprint& f = ctx.fp[static_cast<std::size_t>(gi)];
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kRandom: {
        const int atom =
            g.kind == GateKind::kInput ? g.aux : ctx.n_inputs + g.aux;
        f.lin = Bits(ctx.n_atoms);
        f.support = Bits(ctx.n_atoms);
        f.nl_support = Bits(ctx.n_atoms);
        f.lin.set(atom);
        f.support.set(atom);
        break;
      }
      case GateKind::kConst:
        f.lin = Bits(ctx.n_atoms);
        f.support = Bits(ctx.n_atoms);
        f.nl_support = Bits(ctx.n_atoms);
        break;
      case GateKind::kNot:
      case GateKind::kReg:
        // NOT only flips a constant; REG is the identity on values.
        f = ctx.fp[static_cast<std::size_t>(g.a)];
        break;
      case GateKind::kAnd: {
        Bits sup = ctx.fp[static_cast<std::size_t>(g.a)].support;
        sup.or_with(ctx.fp[static_cast<std::size_t>(g.b)].support);
        ctx.and_support[static_cast<std::size_t>(gi)] = sup;
        f.lin = Bits(ctx.n_atoms);
        f.nl = {gi};
        f.support = sup;
        f.nl_support = std::move(sup);
        break;
      }
      case GateKind::kXor: {
        const Footprint& fa = ctx.fp[static_cast<std::size_t>(g.a)];
        const Footprint& fb = ctx.fp[static_cast<std::size_t>(g.b)];
        f.lin = fa.lin;
        f.lin.xor_with(fb.lin);
        f.nl = symdiff(fa.nl, fb.nl);
        // Support from the *cancelled* footprint: identical linear or
        // nonlinear terms on both sides vanish, shrinking the support.
        f.nl_support = Bits(ctx.n_atoms);
        for (const int t : f.nl) {
          f.nl_support.or_with(ctx.and_support[static_cast<std::size_t>(t)]);
        }
        f.support = f.nl_support;
        f.support.or_with(f.lin);
        break;
      }
    }
  }

  // ---- Glitch-extended observation sets ---------------------------------
  // boundary[g]: the atoms a glitch-extended probe on g observes -- the
  // input/random/const/register wires reached by walking fan-in without
  // crossing a register.
  if (options.glitch_extended) {
    ctx.boundary.resize(static_cast<std::size_t>(ctx.n_gates));
    ctx.glitch_support.resize(static_cast<std::size_t>(ctx.n_gates));
    for (int gi = 0; gi < ctx.n_gates; ++gi) {
      const Gate& g = c.gates()[static_cast<std::size_t>(gi)];
      std::vector<int>& b = ctx.boundary[static_cast<std::size_t>(gi)];
      switch (g.kind) {
        case GateKind::kInput:
        case GateKind::kRandom:
        case GateKind::kConst:
        case GateKind::kReg:
          b = {gi};
          break;
        case GateKind::kNot:
          b = ctx.boundary[static_cast<std::size_t>(g.a)];
          break;
        case GateKind::kAnd:
        case GateKind::kXor: {
          const auto& ba = ctx.boundary[static_cast<std::size_t>(g.a)];
          const auto& bb = ctx.boundary[static_cast<std::size_t>(g.b)];
          b.reserve(ba.size() + bb.size());
          std::set_union(ba.begin(), ba.end(), bb.begin(), bb.end(),
                         std::back_inserter(b));
          break;
        }
      }
      Bits sup(ctx.n_atoms);
      for (const int w : b) {
        sup.or_with(ctx.fp[static_cast<std::size_t>(w)].support);
      }
      ctx.glitch_support[static_cast<std::size_t>(gi)] = std::move(sup);
    }
  }

  // ---- Share masks per plain input --------------------------------------
  ctx.share_mask.resize(static_cast<std::size_t>(plain_inputs));
  for (int i = 0; i < plain_inputs; ++i) {
    Bits m(ctx.n_atoms);
    const int base = masked.input_share_base[static_cast<std::size_t>(i)];
    for (unsigned s = 0; s < ctx.n_shares; ++s) {
      m.set(base + static_cast<int>(s));
    }
    ctx.share_mask[static_cast<std::size_t>(i)] = std::move(m);
  }
  return ctx;
}

// Per-shard bookkeeping: counters plus the shard's first unresolved set and
// first confirmed leak, in the shard's (lexicographic) scan order. Shards
// are merged in rank order, so summing these in shard order reproduces the
// serial scan's counters and witnesses exactly.
struct BlockStats {
  std::uint64_t probe_sets_checked = 0;
  std::uint64_t coverage_rejected = 0;
  std::uint64_t simplified_away = 0;
  std::uint64_t fallback_checked = 0;
  bool has_unresolved = false;
  std::vector<int> unresolved_probes;
  bool has_leak = false;
  std::vector<int> leak_obs;
  std::vector<std::uint8_t> leak_secret_a;
  std::vector<std::uint8_t> leak_secret_b;
};

// One probe-set discharge engine with private scratch. The cumulative
// fallback budget is shared across every worker through an atomic;
// crossing it only ever degrades a set to unresolved (never to secure), so
// exhaustion under concurrency stays sound even though *which* set trips
// the limit can depend on scheduling.
class Worker {
 public:
  Worker(const VerifyContext& ctx, std::atomic<std::uint64_t>& budget_spent)
      : ctx_(ctx),
        budget_spent_(budget_spent),
        full_support_(ctx.n_atoms),
        reduced_(ctx.n_atoms),
        inputs_(static_cast<std::size_t>(ctx.n_inputs), 0),
        randoms_(static_cast<std::size_t>(ctx.n_randoms), 0),
        cone_stamp_(static_cast<std::size_t>(ctx.n_gates), 0),
        wire_val_(static_cast<std::size_t>(ctx.n_gates), 0) {}

  /// Decide one probe set; false stops the shard on a confirmed leak.
  bool check_set(const std::vector<int>& probes, BlockStats& stats) {
    ++stats.probe_sets_checked;

    // Observation wires: the probes themselves, or (glitch mode) the union
    // of their register-boundary atoms.
    obs_.clear();
    full_support_.clear();
    if (ctx_.options.glitch_extended) {
      for (const int p : probes) {
        const auto& b = ctx_.boundary[static_cast<std::size_t>(p)];
        obs_.insert(obs_.end(), b.begin(), b.end());
        full_support_.or_with(ctx_.glitch_support[static_cast<std::size_t>(p)]);
      }
      std::sort(obs_.begin(), obs_.end());
      obs_.erase(std::unique(obs_.begin(), obs_.end()), obs_.end());
    } else {
      obs_ = probes;
      for (const int p : probes) {
        full_support_.or_with(ctx_.fp[static_cast<std::size_t>(p)].support);
      }
    }

    // 1. Coverage: a set that misses a share of every secret observes at
    // most d shares of each independently-shared input -- simulatable.
    if (!ctx_.covers_some_secret(full_support_)) {
      ++stats.coverage_rejected;
      return true;
    }

    // 2. Blinding-random simplification to a fixpoint: drop observations
    // made uniform-and-independent by a private linear random.
    active_.assign(obs_.size(), 1);
    std::size_t n_active = obs_.size();
    bool changed = true;
    while (changed && n_active > 0) {
      changed = false;
      for (std::size_t oi = 0; oi < obs_.size() && n_active > 0; ++oi) {
        if (!active_[oi]) continue;
        const Footprint& f = ctx_.fp[static_cast<std::size_t>(obs_[oi])];
        bool removed = false;
        f.lin.for_each([&](int atom) {
          if (removed || atom < ctx_.n_inputs) return;  // randoms only
          if (f.nl_support.test(atom)) return;  // in own nonlinear core
          for (std::size_t oj = 0; oj < obs_.size(); ++oj) {
            if (oj == oi || !active_[oj]) continue;
            if (ctx_.fp[static_cast<std::size_t>(obs_[oj])].support.test(
                    atom)) {
              return;
            }
          }
          removed = true;
        });
        if (removed) {
          active_[oi] = 0;
          --n_active;
          changed = true;
        }
      }
    }
    if (n_active == 0) {
      ++stats.simplified_away;
      return true;
    }
    if (n_active < obs_.size()) {
      reduced_.clear();
      for (std::size_t oi = 0; oi < obs_.size(); ++oi) {
        if (active_[oi]) {
          reduced_.or_with(ctx_.fp[static_cast<std::size_t>(obs_[oi])].support);
        }
      }
      if (!ctx_.covers_some_secret(reduced_)) {
        ++stats.simplified_away;
        return true;
      }
    }

    // 3. Exact fallback on the cone of the full observation set. An
    // unresolved set is recorded (first per shard) but does NOT stop the
    // scan -- a later, smaller-coned set may still confirm a real leak.
    const auto unresolved = [&]() -> bool {
      if (!stats.has_unresolved) {
        stats.has_unresolved = true;
        stats.unresolved_probes = probes;
      }
      return true;
    };
    if (!ctx_.options.exhaustive_fallback || obs_.size() > 20) {
      return unresolved();
    }
    involved_.clear();
    for (int i = 0; i < ctx_.plain_inputs; ++i) {
      const int base =
          ctx_.masked.input_share_base[static_cast<std::size_t>(i)];
      for (unsigned s = 0; s < ctx_.n_shares; ++s) {
        if (full_support_.test(base + static_cast<int>(s))) {
          involved_.push_back(i);
          break;
        }
      }
    }
    cone_randoms_.clear();
    for (int r = 0; r < ctx_.n_randoms; ++r) {
      if (full_support_.test(ctx_.n_inputs + r)) cone_randoms_.push_back(r);
    }
    const int free_bits =
        static_cast<int>(involved_.size()) *
            static_cast<int>(ctx_.masked.order) +
        static_cast<int>(cone_randoms_.size());
    if (free_bits + static_cast<int>(involved_.size()) >
        ctx_.options.fallback_budget_bits) {
      return unresolved();
    }

    // Fan-in cone of the observation set. Gate indices are already in
    // topological order, so a sort of the visited set yields eval order.
    ++cone_epoch_;
    cone_order_.clear();
    dfs_stack_.assign(obs_.begin(), obs_.end());
    while (!dfs_stack_.empty()) {
      const int g = dfs_stack_.back();
      dfs_stack_.pop_back();
      if (cone_stamp_[static_cast<std::size_t>(g)] == cone_epoch_) continue;
      cone_stamp_[static_cast<std::size_t>(g)] = cone_epoch_;
      cone_order_.push_back(g);
      const Gate& gate = ctx_.c.gates()[static_cast<std::size_t>(g)];
      if (gate.a >= 0) dfs_stack_.push_back(gate.a);
      if (gate.b >= 0) dfs_stack_.push_back(gate.b);
    }
    std::sort(cone_order_.begin(), cone_order_.end());

    // Total work = secrets x assignments x cone gates; budget is its log2.
    const int work_bits = free_bits + static_cast<int>(involved_.size()) +
                          ceil_log2(cone_order_.size());
    if (work_bits > ctx_.options.fallback_budget_bits) return unresolved();
    const std::uint64_t work_bound =
        cone_order_.size()
        << (free_bits + static_cast<int>(involved_.size()));
    // Charge the shared cumulative budget; commit only while under the cap
    // so a refused charge leaves headroom for other workers.
    const std::uint64_t cap = 1ull << ctx_.options.fallback_total_bits;
    std::uint64_t spent = budget_spent_.load(std::memory_order_relaxed);
    do {
      if (spent + work_bound > cap) return unresolved();
    } while (!budget_spent_.compare_exchange_weak(
        spent, spent + work_bound, std::memory_order_relaxed));
    ++stats.fallback_checked;
    // Fallbacks are rare (that is the point of the symbolic filters), so a
    // direct histogram record here is off the common path.
    CONVOLVE_TELEMETRY_ONLY(
        t_fallback_bits.record(static_cast<std::uint64_t>(work_bits));)

    // Exact distribution of the observation tuple: a flat histogram over
    // the 2^|obs| outcome keys (obs.size() <= 20 guards the allocation).
    const std::size_t n_keys = 1ull << obs_.size();
    distribution_for(0, free_bits, n_keys, dist_ref_);
    for (std::uint64_t s = 1; s < (1ull << involved_.size()); ++s) {
      distribution_for(s, free_bits, n_keys, dist_cur_);
      if (dist_cur_ != dist_ref_) {
        stats.has_leak = true;
        stats.leak_obs = obs_;
        stats.leak_secret_a.assign(
            static_cast<std::size_t>(ctx_.plain_inputs), 0);
        stats.leak_secret_b.assign(
            static_cast<std::size_t>(ctx_.plain_inputs), 0);
        for (std::size_t ii = 0; ii < involved_.size(); ++ii) {
          stats.leak_secret_b[static_cast<std::size_t>(involved_[ii])] =
              static_cast<std::uint8_t>((s >> ii) & 1);
        }
        return false;
      }
    }
    return true;  // exactly verified secure for this set
  }

 private:
  void run_cone() {
    for (const int gi : cone_order_) {
      const Gate& g = ctx_.c.gates()[static_cast<std::size_t>(gi)];
      std::uint8_t v = 0;
      switch (g.kind) {
        case GateKind::kInput:
          v = inputs_[static_cast<std::size_t>(g.aux)];
          break;
        case GateKind::kRandom:
          v = randoms_[static_cast<std::size_t>(g.aux)];
          break;
        case GateKind::kConst:
          v = static_cast<std::uint8_t>(g.aux & 1);
          break;
        case GateKind::kAnd:
          v = wire_val_[static_cast<std::size_t>(g.a)] &
              wire_val_[static_cast<std::size_t>(g.b)];
          break;
        case GateKind::kXor:
          v = wire_val_[static_cast<std::size_t>(g.a)] ^
              wire_val_[static_cast<std::size_t>(g.b)];
          break;
        case GateKind::kNot:
          v = wire_val_[static_cast<std::size_t>(g.a)] ^ 1;
          break;
        case GateKind::kReg:
          v = wire_val_[static_cast<std::size_t>(g.a)];
          break;
      }
      wire_val_[static_cast<std::size_t>(gi)] = v;
    }
  }

  void distribution_for(std::uint64_t secret_bits, int free_bits,
                        std::size_t n_keys,
                        std::vector<std::uint64_t>& dist) {
    dist.assign(n_keys, 0);
    for (std::uint64_t a = 0; a < (1ull << free_bits); ++a) {
      std::uint64_t bits = a;
      for (std::size_t ii = 0; ii < involved_.size(); ++ii) {
        const int base = ctx_.masked.input_share_base[static_cast<std::size_t>(
            involved_[ii])];
        std::uint8_t acc = static_cast<std::uint8_t>((secret_bits >> ii) & 1);
        for (unsigned s = 1; s < ctx_.n_shares; ++s) {
          const std::uint8_t m = static_cast<std::uint8_t>(bits & 1);
          bits >>= 1;
          inputs_[static_cast<std::size_t>(base) + s] = m;
          acc ^= m;
        }
        inputs_[static_cast<std::size_t>(base)] = acc;
      }
      for (const int r : cone_randoms_) {
        randoms_[static_cast<std::size_t>(r)] =
            static_cast<std::uint8_t>(bits & 1);
        bits >>= 1;
      }
      run_cone();
      std::uint64_t key = 0;
      for (std::size_t p = 0; p < obs_.size(); ++p) {
        key |= static_cast<std::uint64_t>(
                   wire_val_[static_cast<std::size_t>(obs_[p])])
               << p;
      }
      ++dist[key];
    }
  }

  const VerifyContext& ctx_;
  std::atomic<std::uint64_t>& budget_spent_;
  // Scratch, private per worker: no per-set clearing of gate-sized arrays.
  std::vector<int> obs_;
  Bits full_support_;
  Bits reduced_;
  std::vector<char> active_;
  std::vector<int> involved_;
  std::vector<int> cone_randoms_;
  std::vector<std::uint8_t> inputs_;
  std::vector<std::uint8_t> randoms_;
  std::vector<int> cone_stamp_;
  int cone_epoch_ = 0;
  std::vector<int> cone_order_;
  std::vector<int> dfs_stack_;
  std::vector<std::uint8_t> wire_val_;
  std::vector<std::uint64_t> dist_ref_;
  std::vector<std::uint64_t> dist_cur_;
};

// Level accumulator for the rank-ordered shard merge.
struct LevelAcc {
  BlockStats merged;
  bool leak_seen = false;
};

}  // namespace

masking::ProbingReport SymbolicReport::to_probing_report() const {
  masking::ProbingReport r;
  r.secure = secure;
  r.probes = probes;
  r.secret_a = secret_a;
  r.secret_b = secret_b;
  r.probe_sets_checked = probe_sets_checked;
  return r;
}

SymbolicReport verify_probing_symbolic(const MaskedCircuit& masked,
                                       int plain_inputs, unsigned probe_order,
                                       const SymbolicOptions& options) {
  if (static_cast<int>(masked.input_share_base.size()) < plain_inputs) {
    throw std::invalid_argument(
        "verify_probing_symbolic: input_share_base shorter than plain_inputs");
  }
  CONVOLVE_TRACE_SPAN("verifier.probing");
  const VerifyContext ctx = build_context(masked, plain_inputs, options);

  SymbolicReport report;
  std::atomic<std::uint64_t> budget_spent{0};

  // ---- Per-probe-set decision -------------------------------------------
  // Level k enumerates all size-k probe sets in lexicographic order,
  // sharded by contiguous ranges of the set's first (smallest) gate index.
  // Shard boundaries depend only on the circuit, so any thread count scans
  // the same sets; shard results merge in rank order, which reproduces the
  // serial scan: counters sum shard by shard until the first confirmed
  // leak, whose shard contributes its partial tally and later shards
  // contribute nothing (a shared atomic lets them abort early, since their
  // results are discarded anyway).
  for (unsigned k = 1; k <= probe_order; ++k) {
    const int n_first = ctx.n_gates - static_cast<int>(k) + 1;
    if (n_first <= 0) break;

    std::atomic<std::uint64_t> min_leak_shard{
        std::numeric_limits<std::uint64_t>::max()};

    LevelAcc level = par::parallel_reduce(
        static_cast<std::uint64_t>(n_first), 1, LevelAcc{},
        [&](std::uint64_t shard, par::Range r) {
          BlockStats stats;
          Worker worker(ctx, budget_spent);
          std::vector<int> idx(static_cast<std::size_t>(k));
          for (unsigned j = 0; j < k; ++j) {
            idx[j] = static_cast<int>(r.begin) + static_cast<int>(j);
          }
          while (static_cast<std::uint64_t>(idx[0]) < r.end) {
            if (shard > min_leak_shard.load(std::memory_order_relaxed)) {
              break;  // an earlier shard already confirmed a leak
            }
            if (!worker.check_set(idx, stats)) {
              // Confirmed leak: publish so later shards stop scanning.
              std::uint64_t cur =
                  min_leak_shard.load(std::memory_order_relaxed);
              while (shard < cur &&
                     !min_leak_shard.compare_exchange_weak(
                         cur, shard, std::memory_order_relaxed)) {
              }
              break;
            }
            // Next combination (lexicographic successor).
            int pos = static_cast<int>(k) - 1;
            while (pos >= 0 && idx[static_cast<std::size_t>(pos)] ==
                                   ctx.n_gates - static_cast<int>(k) + pos) {
              --pos;
            }
            if (pos < 0) break;
            ++idx[static_cast<std::size_t>(pos)];
            for (int j = pos + 1; j < static_cast<int>(k); ++j) {
              idx[static_cast<std::size_t>(j)] =
                  idx[static_cast<std::size_t>(j - 1)] + 1;
            }
          }
          const bool leak = stats.has_leak;
          return LevelAcc{std::move(stats), leak};
        },
        [](LevelAcc acc, LevelAcc right) {
          if (acc.leak_seen) return acc;  // serial scan stopped before here
          BlockStats& part = right.merged;
          acc.merged.probe_sets_checked += part.probe_sets_checked;
          acc.merged.coverage_rejected += part.coverage_rejected;
          acc.merged.simplified_away += part.simplified_away;
          acc.merged.fallback_checked += part.fallback_checked;
          if (!acc.merged.has_unresolved && part.has_unresolved) {
            acc.merged.has_unresolved = true;
            acc.merged.unresolved_probes = std::move(part.unresolved_probes);
          }
          if (part.has_leak) {
            acc.merged.has_leak = true;
            acc.merged.leak_obs = std::move(part.leak_obs);
            acc.merged.leak_secret_a = std::move(part.leak_secret_a);
            acc.merged.leak_secret_b = std::move(part.leak_secret_b);
            acc.leak_seen = true;
          }
          return acc;
        });

    report.probe_sets_checked += level.merged.probe_sets_checked;
    report.coverage_rejected += level.merged.coverage_rejected;
    report.simplified_away += level.merged.simplified_away;
    report.fallback_checked += level.merged.fallback_checked;
    if (level.merged.has_unresolved && report.verdict == Verdict::kSecure) {
      report.verdict = Verdict::kPotentialLeak;
      report.secure = false;
      report.probes = level.merged.unresolved_probes;
    }
    if (level.leak_seen) {
      report.verdict = Verdict::kLeak;
      report.secure = false;
      report.probes = level.merged.leak_obs;
      report.secret_a = level.merged.leak_secret_a;
      report.secret_b = level.merged.leak_secret_b;
      break;
    }
  }
#if CONVOLVE_TELEMETRY_ENABLED
  // One bulk flush per verification run, mirroring the report counters.
  t_probe_sets.add(report.probe_sets_checked);
  t_coverage_rejected.add(report.coverage_rejected);
  t_simplified.add(report.simplified_away);
  t_fallbacks.add(report.fallback_checked);
  if (options.glitch_extended) t_glitch_sets.add(report.probe_sets_checked);
  t_budget_spent.add(budget_spent.load(std::memory_order_relaxed));
#endif
  return report;
}

}  // namespace convolve::analysis
