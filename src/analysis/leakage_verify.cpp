#include "convolve/analysis/leakage_verify.hpp"

#include <algorithm>
#include <stdexcept>

namespace convolve::analysis {

namespace {

using masking::Circuit;
using masking::Gate;
using masking::GateKind;
using masking::MaskedCircuit;

// Fixed-width bitset over the atom universe (input shares then randoms).
class Bits {
 public:
  Bits() = default;
  explicit Bits(int nbits) : w_(static_cast<std::size_t>((nbits + 63) / 64)) {}

  void set(int i) { w_[static_cast<std::size_t>(i >> 6)] |= 1ull << (i & 63); }
  bool test(int i) const {
    return (w_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1;
  }
  void flip(int i) { w_[static_cast<std::size_t>(i >> 6)] ^= 1ull << (i & 63); }
  void clear() { std::fill(w_.begin(), w_.end(), 0); }

  void or_with(const Bits& o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] |= o.w_[i];
  }
  void xor_with(const Bits& o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] ^= o.w_[i];
  }
  bool contains_all(const Bits& mask) const {
    for (std::size_t i = 0; i < w_.size(); ++i) {
      if ((w_[i] & mask.w_[i]) != mask.w_[i]) return false;
    }
    return true;
  }
  bool any() const {
    for (const auto w : w_) {
      if (w != 0) return true;
    }
    return false;
  }
  /// Invoke fn(bit_index) for every set bit.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < w_.size(); ++i) {
      std::uint64_t w = w_[i];
      while (w) {
        const int b = __builtin_ctzll(w);
        fn(static_cast<int>(i) * 64 + b);
        w &= w - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> w_;
};

// Per-wire symbolic footprint. `lin` is the exact XOR parity over atoms
// (input shares + randoms); `nl` the symmetric-difference set of AND-gate
// terms; `support` / `nl_support` the union of atoms the value (resp. its
// nonlinear core) can depend on.
struct Footprint {
  Bits lin;
  std::vector<int> nl;  // sorted AND-gate indices
  Bits support;
  Bits nl_support;
};

std::vector<int> symdiff(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> r;
  r.reserve(a.size() + b.size());
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(r));
  return r;
}

// Enumerate all probe sets of size exactly `k` (mirrors the exhaustive
// checker so probe_sets_checked counts line up).
template <typename Fn>
bool for_each_combination(int universe, int k, Fn&& fn) {
  std::vector<int> idx(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) idx[static_cast<std::size_t>(i)] = i;
  if (k > universe) return true;
  while (true) {
    if (!fn(idx)) return false;
    int pos = k - 1;
    while (pos >= 0 &&
           idx[static_cast<std::size_t>(pos)] == universe - k + pos) {
      --pos;
    }
    if (pos < 0) return true;
    ++idx[static_cast<std::size_t>(pos)];
    for (int j = pos + 1; j < k; ++j) {
      idx[static_cast<std::size_t>(j)] =
          idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

int ceil_log2(std::uint64_t n) {
  int b = 0;
  while ((1ull << b) < n) ++b;
  return b;
}

}  // namespace

masking::ProbingReport SymbolicReport::to_probing_report() const {
  masking::ProbingReport r;
  r.secure = secure;
  r.probes = probes;
  r.secret_a = secret_a;
  r.secret_b = secret_b;
  r.probe_sets_checked = probe_sets_checked;
  return r;
}

SymbolicReport verify_probing_symbolic(const MaskedCircuit& masked,
                                       int plain_inputs, unsigned probe_order,
                                       const SymbolicOptions& options) {
  const Circuit& c = masked.circuit;
  const unsigned n_shares = masked.order + 1;
  const int n_gates = static_cast<int>(c.num_gates());
  const int n_inputs = c.num_inputs();
  const int n_randoms = c.num_randoms();
  const int n_atoms = n_inputs + n_randoms;
  if (static_cast<int>(masked.input_share_base.size()) < plain_inputs) {
    throw std::invalid_argument(
        "verify_probing_symbolic: input_share_base shorter than plain_inputs");
  }

  SymbolicReport report;

  // ---- Footprint computation (one topological pass) --------------------
  std::vector<Footprint> fp(static_cast<std::size_t>(n_gates));
  // and_support[g] is only populated for AND gates.
  std::vector<Bits> and_support(static_cast<std::size_t>(n_gates));
  for (int gi = 0; gi < n_gates; ++gi) {
    const Gate& g = c.gates()[static_cast<std::size_t>(gi)];
    Footprint& f = fp[static_cast<std::size_t>(gi)];
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kRandom: {
        const int atom =
            g.kind == GateKind::kInput ? g.aux : n_inputs + g.aux;
        f.lin = Bits(n_atoms);
        f.support = Bits(n_atoms);
        f.nl_support = Bits(n_atoms);
        f.lin.set(atom);
        f.support.set(atom);
        break;
      }
      case GateKind::kConst:
        f.lin = Bits(n_atoms);
        f.support = Bits(n_atoms);
        f.nl_support = Bits(n_atoms);
        break;
      case GateKind::kNot:
      case GateKind::kReg:
        // NOT only flips a constant; REG is the identity on values.
        f = fp[static_cast<std::size_t>(g.a)];
        break;
      case GateKind::kAnd: {
        Bits sup = fp[static_cast<std::size_t>(g.a)].support;
        sup.or_with(fp[static_cast<std::size_t>(g.b)].support);
        and_support[static_cast<std::size_t>(gi)] = sup;
        f.lin = Bits(n_atoms);
        f.nl = {gi};
        f.support = sup;
        f.nl_support = std::move(sup);
        break;
      }
      case GateKind::kXor: {
        const Footprint& fa = fp[static_cast<std::size_t>(g.a)];
        const Footprint& fb = fp[static_cast<std::size_t>(g.b)];
        f.lin = fa.lin;
        f.lin.xor_with(fb.lin);
        f.nl = symdiff(fa.nl, fb.nl);
        // Support from the *cancelled* footprint: identical linear or
        // nonlinear terms on both sides vanish, shrinking the support.
        f.nl_support = Bits(n_atoms);
        for (const int t : f.nl) {
          f.nl_support.or_with(and_support[static_cast<std::size_t>(t)]);
        }
        f.support = f.nl_support;
        f.support.or_with(f.lin);
        break;
      }
    }
  }

  // ---- Glitch-extended observation sets ---------------------------------
  // boundary[g]: the atoms a glitch-extended probe on g observes -- the
  // input/random/const/register wires reached by walking fan-in without
  // crossing a register.
  std::vector<std::vector<int>> boundary;
  std::vector<Bits> glitch_support;
  if (options.glitch_extended) {
    boundary.resize(static_cast<std::size_t>(n_gates));
    glitch_support.resize(static_cast<std::size_t>(n_gates));
    for (int gi = 0; gi < n_gates; ++gi) {
      const Gate& g = c.gates()[static_cast<std::size_t>(gi)];
      std::vector<int>& b = boundary[static_cast<std::size_t>(gi)];
      switch (g.kind) {
        case GateKind::kInput:
        case GateKind::kRandom:
        case GateKind::kConst:
        case GateKind::kReg:
          b = {gi};
          break;
        case GateKind::kNot:
          b = boundary[static_cast<std::size_t>(g.a)];
          break;
        case GateKind::kAnd:
        case GateKind::kXor: {
          const auto& ba = boundary[static_cast<std::size_t>(g.a)];
          const auto& bb = boundary[static_cast<std::size_t>(g.b)];
          b.reserve(ba.size() + bb.size());
          std::set_union(ba.begin(), ba.end(), bb.begin(), bb.end(),
                         std::back_inserter(b));
          break;
        }
      }
      Bits sup(n_atoms);
      for (const int w : b) {
        sup.or_with(fp[static_cast<std::size_t>(w)].support);
      }
      glitch_support[static_cast<std::size_t>(gi)] = std::move(sup);
    }
  }

  // ---- Share masks per plain input --------------------------------------
  std::vector<Bits> share_mask(static_cast<std::size_t>(plain_inputs));
  for (int i = 0; i < plain_inputs; ++i) {
    Bits m(n_atoms);
    const int base = masked.input_share_base[static_cast<std::size_t>(i)];
    for (unsigned s = 0; s < n_shares; ++s) {
      m.set(base + static_cast<int>(s));
    }
    share_mask[static_cast<std::size_t>(i)] = std::move(m);
  }
  const auto covers_some_secret = [&](const Bits& s) {
    for (int i = 0; i < plain_inputs; ++i) {
      if (s.contains_all(share_mask[static_cast<std::size_t>(i)])) return true;
    }
    return false;
  };

  // ---- Per-probe-set decision -------------------------------------------
  // Returns true to keep scanning, false on a confirmed kLeak. An
  // over-budget set degrades the verdict to kPotentialLeak but scanning
  // continues: a later, smaller-coned set may still confirm a real leak.
  std::vector<int> obs;
  Bits full_support(n_atoms);
  Bits reduced(n_atoms);
  std::vector<char> active;
  std::vector<int> involved;
  std::vector<int> cone_randoms;
  std::vector<std::uint8_t> inputs(static_cast<std::size_t>(n_inputs), 0);
  std::vector<std::uint8_t> randoms(static_cast<std::size_t>(n_randoms), 0);
  // Epoch-stamped cone scratch: no per-set clearing of gate-sized arrays.
  std::vector<int> cone_stamp(static_cast<std::size_t>(n_gates), 0);
  int cone_epoch = 0;
  std::vector<int> cone_order;
  std::vector<int> dfs_stack;
  std::vector<std::uint8_t> wire_val(static_cast<std::size_t>(n_gates), 0);
  std::vector<std::uint64_t> dist_ref;
  std::vector<std::uint64_t> dist_cur;
  std::uint64_t fallback_work_spent = 0;
  const auto check_set = [&](const std::vector<int>& probes) -> bool {
    ++report.probe_sets_checked;

    // Observation wires: the probes themselves, or (glitch mode) the union
    // of their register-boundary atoms.
    obs.clear();
    full_support.clear();
    if (options.glitch_extended) {
      for (const int p : probes) {
        const auto& b = boundary[static_cast<std::size_t>(p)];
        obs.insert(obs.end(), b.begin(), b.end());
        full_support.or_with(glitch_support[static_cast<std::size_t>(p)]);
      }
      std::sort(obs.begin(), obs.end());
      obs.erase(std::unique(obs.begin(), obs.end()), obs.end());
    } else {
      obs = probes;
      for (const int p : probes) {
        full_support.or_with(fp[static_cast<std::size_t>(p)].support);
      }
    }

    // 1. Coverage: a set that misses a share of every secret observes at
    // most d shares of each independently-shared input -- simulatable.
    if (!covers_some_secret(full_support)) {
      ++report.coverage_rejected;
      return true;
    }

    // 2. Blinding-random simplification to a fixpoint: drop observations
    // made uniform-and-independent by a private linear random.
    active.assign(obs.size(), 1);
    std::size_t n_active = obs.size();
    bool changed = true;
    while (changed && n_active > 0) {
      changed = false;
      for (std::size_t oi = 0; oi < obs.size() && n_active > 0; ++oi) {
        if (!active[oi]) continue;
        const Footprint& f = fp[static_cast<std::size_t>(obs[oi])];
        bool removed = false;
        f.lin.for_each([&](int atom) {
          if (removed || atom < n_inputs) return;      // randoms only
          if (f.nl_support.test(atom)) return;         // in own nonlinear core
          for (std::size_t oj = 0; oj < obs.size(); ++oj) {
            if (oj == oi || !active[oj]) continue;
            if (fp[static_cast<std::size_t>(obs[oj])].support.test(atom)) {
              return;
            }
          }
          removed = true;
        });
        if (removed) {
          active[oi] = 0;
          --n_active;
          changed = true;
        }
      }
    }
    if (n_active == 0) {
      ++report.simplified_away;
      return true;
    }
    if (n_active < obs.size()) {
      reduced.clear();
      for (std::size_t oi = 0; oi < obs.size(); ++oi) {
        if (active[oi]) {
          reduced.or_with(fp[static_cast<std::size_t>(obs[oi])].support);
        }
      }
      if (!covers_some_secret(reduced)) {
        ++report.simplified_away;
        return true;
      }
    }

    // 3. Exact fallback on the cone of the full observation set. An
    // unresolved set marks the verdict kPotentialLeak (recording the first
    // such set) but does NOT stop the scan -- a later set may confirm.
    const auto unresolved = [&]() -> bool {
      if (report.verdict == Verdict::kSecure) {
        report.verdict = Verdict::kPotentialLeak;
        report.secure = false;
        report.probes = probes;
      }
      return true;
    };
    if (!options.exhaustive_fallback || obs.size() > 20) return unresolved();
    involved.clear();
    for (int i = 0; i < plain_inputs; ++i) {
      const int base = masked.input_share_base[static_cast<std::size_t>(i)];
      for (unsigned s = 0; s < n_shares; ++s) {
        if (full_support.test(base + static_cast<int>(s))) {
          involved.push_back(i);
          break;
        }
      }
    }
    cone_randoms.clear();
    for (int r = 0; r < n_randoms; ++r) {
      if (full_support.test(n_inputs + r)) cone_randoms.push_back(r);
    }
    const int free_bits =
        static_cast<int>(involved.size()) * static_cast<int>(masked.order) +
        static_cast<int>(cone_randoms.size());
    if (free_bits + static_cast<int>(involved.size()) >
        options.fallback_budget_bits) {
      return unresolved();
    }

    // Fan-in cone of the observation set. Gate indices are already in
    // topological order, so a sort of the visited set yields eval order.
    ++cone_epoch;
    cone_order.clear();
    dfs_stack.assign(obs.begin(), obs.end());
    while (!dfs_stack.empty()) {
      const int g = dfs_stack.back();
      dfs_stack.pop_back();
      if (cone_stamp[static_cast<std::size_t>(g)] == cone_epoch) continue;
      cone_stamp[static_cast<std::size_t>(g)] = cone_epoch;
      cone_order.push_back(g);
      const Gate& gate = c.gates()[static_cast<std::size_t>(g)];
      if (gate.a >= 0) dfs_stack.push_back(gate.a);
      if (gate.b >= 0) dfs_stack.push_back(gate.b);
    }
    std::sort(cone_order.begin(), cone_order.end());

    // Total work = secrets x assignments x cone gates; budget is its log2.
    const int work_bits = free_bits + static_cast<int>(involved.size()) +
                          ceil_log2(cone_order.size());
    if (work_bits > options.fallback_budget_bits) return unresolved();
    const std::uint64_t work_bound =
        cone_order.size() << (free_bits + static_cast<int>(involved.size()));
    if (fallback_work_spent + work_bound >
        (1ull << options.fallback_total_bits)) {
      return unresolved();
    }
    fallback_work_spent += work_bound;
    ++report.fallback_checked;

    const auto run_cone = [&] {
      for (const int gi : cone_order) {
        const Gate& g = c.gates()[static_cast<std::size_t>(gi)];
        std::uint8_t v = 0;
        switch (g.kind) {
          case GateKind::kInput:
            v = inputs[static_cast<std::size_t>(g.aux)];
            break;
          case GateKind::kRandom:
            v = randoms[static_cast<std::size_t>(g.aux)];
            break;
          case GateKind::kConst:
            v = static_cast<std::uint8_t>(g.aux & 1);
            break;
          case GateKind::kAnd:
            v = wire_val[static_cast<std::size_t>(g.a)] &
                wire_val[static_cast<std::size_t>(g.b)];
            break;
          case GateKind::kXor:
            v = wire_val[static_cast<std::size_t>(g.a)] ^
                wire_val[static_cast<std::size_t>(g.b)];
            break;
          case GateKind::kNot:
            v = wire_val[static_cast<std::size_t>(g.a)] ^ 1;
            break;
          case GateKind::kReg:
            v = wire_val[static_cast<std::size_t>(g.a)];
            break;
        }
        wire_val[static_cast<std::size_t>(gi)] = v;
      }
    };

    // Exact distribution of the observation tuple: a flat histogram over
    // the 2^|obs| outcome keys (obs.size() <= 20 guards the allocation).
    const std::size_t n_keys = 1ull << obs.size();
    const auto distribution_for = [&](std::uint64_t secret_bits,
                                      std::vector<std::uint64_t>& dist) {
      dist.assign(n_keys, 0);
      for (std::uint64_t a = 0; a < (1ull << free_bits); ++a) {
        std::uint64_t bits = a;
        for (std::size_t ii = 0; ii < involved.size(); ++ii) {
          const int base = masked.input_share_base[static_cast<std::size_t>(
              involved[ii])];
          std::uint8_t acc =
              static_cast<std::uint8_t>((secret_bits >> ii) & 1);
          for (unsigned s = 1; s < n_shares; ++s) {
            const std::uint8_t m = static_cast<std::uint8_t>(bits & 1);
            bits >>= 1;
            inputs[static_cast<std::size_t>(base) + s] = m;
            acc ^= m;
          }
          inputs[static_cast<std::size_t>(base)] = acc;
        }
        for (const int r : cone_randoms) {
          randoms[static_cast<std::size_t>(r)] =
              static_cast<std::uint8_t>(bits & 1);
          bits >>= 1;
        }
        run_cone();
        std::uint64_t key = 0;
        for (std::size_t p = 0; p < obs.size(); ++p) {
          key |= static_cast<std::uint64_t>(
                     wire_val[static_cast<std::size_t>(obs[p])])
                 << p;
        }
        ++dist[key];
      }
    };

    distribution_for(0, dist_ref);
    for (std::uint64_t s = 1; s < (1ull << involved.size()); ++s) {
      distribution_for(s, dist_cur);
      if (dist_cur != dist_ref) {
        report.verdict = Verdict::kLeak;
        report.secure = false;
        report.probes = obs;
        report.secret_a.assign(static_cast<std::size_t>(plain_inputs), 0);
        report.secret_b.assign(static_cast<std::size_t>(plain_inputs), 0);
        for (std::size_t ii = 0; ii < involved.size(); ++ii) {
          report.secret_b[static_cast<std::size_t>(involved[ii])] =
              static_cast<std::uint8_t>((s >> ii) & 1);
        }
        return false;
      }
    }
    return true;  // exactly verified secure for this set
  };

  for (unsigned k = 1; k <= probe_order; ++k) {
    if (!for_each_combination(n_gates, static_cast<int>(k), check_set)) break;
  }
  return report;
}

}  // namespace convolve::analysis
