#include "convolve/analysis/rv32static/cfg.hpp"

#include <algorithm>

#include "convolve/tee/rv32_decode.hpp"

namespace convolve::analysis::rv32static {

namespace {

using tee::DecodedInsn;
using tee::OpKind;

constexpr unsigned kRa = 1;  // ABI link register (x1)

bool is_call(const DecodedInsn& d) {
  return (d.kind == OpKind::kJal || d.kind == OpKind::kJalr) && d.rd == kRa;
}

bool is_return(const DecodedInsn& d) {
  return d.kind == OpKind::kJalr && d.rd == 0 && d.rs1 == kRa;
}

}  // namespace

Cfg recover_cfg(
    const ImageSpec& image,
    const std::map<std::uint32_t, std::vector<std::uint32_t>>& indirect_targets,
    const std::vector<std::uint32_t>& unresolved_sites,
    const std::vector<bool>& reachable) {
  Cfg cfg;
  cfg.indirect_targets = indirect_targets;
  cfg.unresolved_sites = unresolved_sites;

  const std::size_t n = image.insn_count();
  if (n == 0) return cfg;

  std::vector<DecodedInsn> insns;
  insns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    insns.push_back(tee::decode_rv32(image.word_at(i)));
  }

  const auto in_grid = [&](std::uint32_t pc) {
    return image.in_image(pc) && pc % 4 == 0;
  };

  // Leaders: entry, direct targets, post-terminator slots, resolved
  // indirect targets.
  std::vector<bool> leader(n, false);
  if (in_grid(image.entry)) leader[image.index_of(image.entry)] = true;
  for (std::size_t i = 0; i < n; ++i) {
    const DecodedInsn& d = insns[i];
    const std::uint32_t pc = image.pc_of(i);
    if (tee::is_branch(d.kind) || d.kind == OpKind::kJal) {
      const std::uint32_t target = pc + static_cast<std::uint32_t>(d.imm);
      if (in_grid(target)) leader[image.index_of(target)] = true;
    }
    if (tee::is_terminator(d.kind) && i + 1 < n) leader[i + 1] = true;
  }
  for (const auto& [site_pc, targets] : indirect_targets) {
    (void)site_pc;
    for (const std::uint32_t t : targets) {
      if (in_grid(t)) leader[image.index_of(t)] = true;
    }
  }
  if (n > 0 && !in_grid(image.entry)) leader[0] = true;  // degenerate sweep

  // Blocks: runs from one leader up to (and including) the next
  // terminator or the slot before the next leader.
  std::vector<std::size_t> block_start;
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i]) block_start.push_back(i);
  }
  for (std::size_t bi = 0; bi < block_start.size(); ++bi) {
    const std::size_t first = block_start[bi];
    std::size_t last = (bi + 1 < block_start.size()) ? block_start[bi + 1] - 1
                                                     : n - 1;
    for (std::size_t i = first; i <= last; ++i) {
      if (tee::is_terminator(insns[i].kind)) {
        last = i;
        break;
      }
    }
    BasicBlock block;
    block.first_pc = image.pc_of(first);
    block.last_pc = image.pc_of(last);
    for (std::size_t i = first; i <= last; ++i) {
      if (i < reachable.size() && reachable[i]) block.reachable = true;
    }
    cfg.blocks.push_back(block);
  }

  // Edges, classified. Emitted from the pc that transfers control.
  const auto add_edge = [&](std::uint32_t from, std::uint32_t to,
                            EdgeKind kind) {
    if (in_grid(to)) cfg.edges.push_back({from, to, kind});
  };
  for (const auto& block : cfg.blocks) {
    const std::size_t li = image.index_of(block.last_pc);
    const DecodedInsn& d = insns[li];
    const std::uint32_t pc = block.last_pc;
    if (tee::is_branch(d.kind)) {
      add_edge(pc, pc + static_cast<std::uint32_t>(d.imm),
               EdgeKind::kBranchTaken);
      add_edge(pc, pc + 4, EdgeKind::kFallthrough);
    } else if (d.kind == OpKind::kJal) {
      add_edge(pc, pc + static_cast<std::uint32_t>(d.imm),
               is_call(d) ? EdgeKind::kCall : EdgeKind::kJump);
    } else if (d.kind == OpKind::kJalr) {
      const auto it = indirect_targets.find(pc);
      if (it != indirect_targets.end()) {
        for (const std::uint32_t t : it->second) {
          add_edge(pc, t,
                   is_call(d)     ? EdgeKind::kCall
                   : is_return(d) ? EdgeKind::kReturn
                                  : EdgeKind::kIndirect);
        }
      }
    } else if (d.kind == OpKind::kEcall || d.kind == OpKind::kEbreak) {
      add_edge(pc, pc + 4, EdgeKind::kResume);
    } else if (d.kind != OpKind::kIllegal) {
      // Block ended because the next slot is a leader, not at a
      // terminator: plain fallthrough.
      add_edge(pc, pc + 4, EdgeKind::kFallthrough);
    }
  }

  std::sort(cfg.edges.begin(), cfg.edges.end(),
            [](const CfgEdge& a, const CfgEdge& b) {
              if (a.from_pc != b.from_pc) return a.from_pc < b.from_pc;
              if (a.to_pc != b.to_pc) return a.to_pc < b.to_pc;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return cfg;
}

}  // namespace convolve::analysis::rv32static
