#include "convolve/analysis/rv32static/dynamic_oracle.hpp"

#include <algorithm>

#include "convolve/common/bytes.hpp"
#include "convolve/tee/rv32_decode.hpp"

namespace convolve::analysis::rv32static {

namespace {

using tee::DecodedInsn;
using tee::OpKind;

}  // namespace

OracleResult run_oracle(tee::Machine& machine, const ImageSpec& image,
                        std::uint64_t max_steps) {
  OracleResult result;
  tee::Rv32Cpu cpu(machine, image.entry, image.mode);

  std::array<bool, 32> reg_taint{};
  std::vector<bool> mem_taint(machine.memory_size(), false);
  for (const auto& r : image.secret) {
    for (std::uint64_t a = r.lo; a < r.hi && a < mem_taint.size(); ++a) {
      mem_taint[static_cast<std::size_t>(a)] = true;
    }
  }

  const auto mem_range_tainted = [&](std::uint64_t addr, std::uint32_t len) {
    for (std::uint64_t a = addr; a < addr + len; ++a) {
      if (a < mem_taint.size() && mem_taint[static_cast<std::size_t>(a)]) {
        return true;
      }
    }
    return false;
  };

  std::uint32_t last_retired_pc = image.entry;
  const std::span<std::uint8_t> ram = machine.raw_memory();

  while (result.steps < max_steps) {
    const std::uint32_t pc = cpu.pc();

    // Peek the instruction the interpreter is about to fetch, so operand
    // taint can be sampled before architectural state changes. A pc the
    // fetch will fault on yields a dummy illegal decode; no shadow update
    // happens because step() retires nothing.
    DecodedInsn d{};
    const bool fetchable =
        pc % 4 == 0 && static_cast<std::uint64_t>(pc) + 4 <= ram.size();
    if (fetchable) d = tee::decode_rv32(load_le32(ram.data() + pc));

    const std::uint32_t rs1_val = cpu.reg(d.rs1);
    const bool t1 = tee::reads_rs1(d.kind) && reg_taint[d.rs1];
    const bool t2 = tee::reads_rs2(d.kind) && reg_taint[d.rs2];

    const std::optional<tee::Trap> trap = cpu.step();

    if (trap.has_value() && trap->cause != tee::TrapCause::kEcall &&
        trap->cause != tee::TrapCause::kEbreak) {
      result.events.push_back(
          {EventKind::kFault, trap->pc, last_retired_pc, trap->cause});
      result.trap = trap;
      break;
    }

    // The instruction retired (ecall/ebreak count: pc advanced).
    ++result.steps;
    last_retired_pc = pc;
    if (!image.in_image(pc)) {
      // Execution left the image without faulting: out of the static
      // model. The escaping transfer itself was statically flagged
      // (kOutOfImageTarget / unresolved), so stop tracking here.
      break;
    }
    result.visited.push_back(pc);

    if (tee::is_branch(d.kind) && (t1 || t2)) {
      result.events.push_back({EventKind::kSecretBranch, pc, pc, {}});
    }
    if (d.kind == OpKind::kJalr && t1) {
      result.events.push_back({EventKind::kSecretJump, pc, pc, {}});
    }

    if (tee::is_load(d.kind)) {
      if (t1) {
        result.events.push_back({EventKind::kSecretLoad, pc, pc, {}});
      }
      const std::uint64_t addr =
          (rs1_val + static_cast<std::uint32_t>(d.imm)) & 0xffffffffull;
      reg_taint[d.rd] = mem_range_tainted(addr, tee::access_bytes(d.kind));
      if (d.rd == 0) reg_taint[0] = false;
    } else if (tee::is_store(d.kind)) {
      if (t1) {
        result.events.push_back({EventKind::kSecretStore, pc, pc, {}});
      }
      const std::uint64_t addr =
          (rs1_val + static_cast<std::uint32_t>(d.imm)) & 0xffffffffull;
      const std::uint32_t len = tee::access_bytes(d.kind);
      const bool value_taint = reg_taint[d.rs2];
      for (std::uint64_t a = addr; a < addr + len && a < mem_taint.size();
           ++a) {
        mem_taint[static_cast<std::size_t>(a)] = value_taint;
      }
      if (addr < static_cast<std::uint64_t>(image.base) + image.code.size() &&
          addr + len > image.base) {
        // The store mutated image bytes: self-modifying code is outside
        // the static model (the analyzer assumes W^X, which the PMP
        // enforces in deployment). Stop tracking; events up to and
        // including this store remain valid.
        break;
      }
    } else if (tee::writes_rd(d.kind) && d.rd != 0) {
      // lui/auipc/jal/jalr produce pc- or immediate-derived values (jalr
      // writes pc+4, NOT a function of rs1's value); ALU results inherit
      // the OR of the operands actually read.
      const bool link_like =
          d.kind == OpKind::kLui || d.kind == OpKind::kAuipc ||
          d.kind == OpKind::kJal || d.kind == OpKind::kJalr;
      reg_taint[d.rd] = link_like ? false : (t1 || t2);
    }

    if (trap.has_value()) {
      // ecall/ebreak: embedder resume semantics -- keep executing at the
      // already-advanced pc with registers (and shadow) preserved.
      continue;
    }
  }

  std::sort(result.visited.begin(), result.visited.end());
  result.visited.erase(
      std::unique(result.visited.begin(), result.visited.end()),
      result.visited.end());
  return result;
}

}  // namespace convolve::analysis::rv32static
