#include "convolve/analysis/rv32static/analyze.hpp"

#include <algorithm>

#include "convolve/common/telemetry.hpp"
#include "convolve/tee/rv32_decode.hpp"

namespace convolve::analysis::rv32static {

namespace {

#if CONVOLVE_TELEMETRY_ENABLED
telemetry::Counter t_blocks{"rv32static.blocks"};
telemetry::Counter t_edges{"rv32static.edges"};
telemetry::Counter t_iterations{"rv32static.fixpoint_iterations"};
telemetry::Counter t_findings{"rv32static.findings"};
#endif

using tee::DecodedInsn;
using tee::OpKind;

struct Extractor {
  const ImageSpec& image;
  const AnalyzeOptions& options;
  const AbsIntResult& absint;
  StaticReport& report;

  void add(FindingKind kind, std::uint32_t pc, std::string detail,
           std::uint32_t addr_lo = 0, std::uint32_t addr_hi = 0) {
    report.findings.push_back(
        {kind, pc, addr_lo, addr_hi, std::move(detail)});
  }

  /// Direct-target sanity for jal/branches: the target must stay on the
  /// in-image 4-byte grid or the transfer traps / escapes at runtime.
  void check_direct_target(std::uint32_t pc, std::uint32_t target,
                           const char* what) {
    if (!image.in_image(target)) {
      add(FindingKind::kOutOfImageTarget, pc,
          std::string(what) + " target leaves the image", target, target);
    } else if (target % 4 != 0) {
      add(FindingKind::kMisalignedTarget, pc,
          std::string(what) + " target is misaligned", target, target);
    }
  }

  void check_access(std::uint32_t pc, const Interval& addr,
                    std::uint32_t len, bool is_store) {
    const FindingKind kind =
        is_store ? FindingKind::kPmpStore : FindingKind::kPmpLoad;
    const tee::AccessType type =
        is_store ? tee::AccessType::kWrite : tee::AccessType::kRead;
    if (options.pmp_policy != nullptr) {
      if (!interval_access_allowed(*options.pmp_policy, addr.lo, addr.hi,
                                   len, image.mode, type,
                                   image.memory_size)) {
        add(kind, pc, "access may be denied by the PMP policy", addr.lo,
            addr.hi);
      }
    } else if (static_cast<std::uint64_t>(addr.hi) + len >
               image.memory_size) {
      add(kind, pc, "access may fall outside physical memory", addr.lo,
          addr.hi);
    }
  }

  void run() {
    if (!image.in_image(image.entry)) {
      add(FindingKind::kOutOfImageTarget, image.entry,
          "entry point outside the image");
      return;
    }
    if (!image.aligned(image.entry)) {
      add(FindingKind::kMisalignedTarget, image.entry,
          "entry point is misaligned");
      return;
    }

    const std::size_t n = image.insn_count();
    for (std::size_t i = 0; i < n; ++i) {
      if (!absint.reachable[i]) continue;
      const std::uint32_t pc = image.pc_of(i);
      const DecodedInsn d = tee::decode_rv32(image.word_at(i));
      const RegState& in = absint.in_state[i];
      const AbsVal& a = in.reg(d.rs1);
      const AbsVal& b = in.reg(d.rs2);

      if (options.pmp_policy != nullptr &&
          !interval_access_allowed(*options.pmp_policy, pc, pc, 4,
                                   image.mode, tee::AccessType::kExecute,
                                   image.memory_size)) {
        add(FindingKind::kPmpFetch, pc,
            "pc not executable under the PMP policy", pc, pc);
      }

      switch (d.kind) {
        case OpKind::kIllegal:
          add(FindingKind::kIllegalInsn, pc,
              "reachable word does not decode");
          break;
        case OpKind::kBeq: case OpKind::kBne: case OpKind::kBlt:
        case OpKind::kBge: case OpKind::kBltu: case OpKind::kBgeu:
          if (a.taint || b.taint) {
            add(FindingKind::kSecretBranch, pc,
                "branch condition depends on a secret");
          }
          check_direct_target(pc, pc + static_cast<std::uint32_t>(d.imm),
                              "branch");
          if (i + 1 >= n) {
            add(FindingKind::kOutOfImageTarget, pc,
                "branch fallthrough leaves the image", pc + 4, pc + 4);
          }
          break;
        case OpKind::kJal:
          check_direct_target(pc, pc + static_cast<std::uint32_t>(d.imm),
                              "jal");
          break;
        case OpKind::kJalr: {
          const auto it = absint.indirect.find(pc);
          if (it == absint.indirect.end()) break;
          const IndirectSite& site = it->second;
          if (site.secret_target) {
            add(FindingKind::kSecretJump, pc,
                "indirect target depends on a secret");
          }
          if (site.unresolved) {
            add(FindingKind::kUnresolvedJump, pc,
                "indirect target set could not be bounded");
          }
          if (site.may_escape) {
            add(FindingKind::kOutOfImageTarget, pc,
                "indirect target may leave the image");
          }
          if (site.may_misalign) {
            add(FindingKind::kMisalignedTarget, pc,
                "indirect target may be misaligned");
          }
          break;
        }
        case OpKind::kLb: case OpKind::kLh: case OpKind::kLw:
        case OpKind::kLbu: case OpKind::kLhu: {
          const Interval addr = Interval::add_imm(a.iv, d.imm);
          if (a.taint) {
            add(FindingKind::kSecretLoad, pc,
                "load address depends on a secret", addr.lo, addr.hi);
          }
          check_access(pc, addr, tee::access_bytes(d.kind), false);
          break;
        }
        case OpKind::kSb: case OpKind::kSh: case OpKind::kSw: {
          const Interval addr = Interval::add_imm(a.iv, d.imm);
          if (a.taint) {
            add(FindingKind::kSecretStore, pc,
                "store address depends on a secret", addr.lo, addr.hi);
          }
          check_access(pc, addr, tee::access_bytes(d.kind), true);
          break;
        }
        default:
          break;
      }

      // Any instruction with an implicit pc+4 successor (straight-line
      // code, but also ecall/ebreak resume) at the last slot lets
      // execution fall off the end of the image. Branches carry their own
      // fallthrough check above; jal/jalr/illegal never fall through.
      const bool falls_through = !tee::is_branch(d.kind) &&
                                 d.kind != OpKind::kJal &&
                                 d.kind != OpKind::kJalr &&
                                 d.kind != OpKind::kIllegal;
      if (falls_through && i + 1 >= n) {
        add(FindingKind::kOutOfImageTarget, pc,
            "fallthrough leaves the image", pc + 4, pc + 4);
      }
    }
  }
};

}  // namespace

const char* finding_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kSecretBranch: return "secret-branch";
    case FindingKind::kSecretLoad: return "secret-load";
    case FindingKind::kSecretStore: return "secret-store";
    case FindingKind::kSecretJump: return "secret-jump";
    case FindingKind::kPmpLoad: return "pmp-load";
    case FindingKind::kPmpStore: return "pmp-store";
    case FindingKind::kPmpFetch: return "pmp-fetch";
    case FindingKind::kMisalignedTarget: return "misaligned-target";
    case FindingKind::kOutOfImageTarget: return "out-of-image-target";
    case FindingKind::kUnresolvedJump: return "unresolved-jump";
    case FindingKind::kIllegalInsn: return "illegal-insn";
    case FindingKind::kUnreachableCode: return "unreachable-code";
  }
  return "unknown";
}

bool interval_access_allowed(const tee::PmpUnit& pmp, std::uint64_t lo,
                             std::uint64_t hi, std::uint64_t len,
                             tee::PrivMode mode, tee::AccessType type,
                             std::uint64_t memory_size) {
  if (len == 0 || lo > hi) return true;
  std::uint64_t probe = lo;
  while (true) {
    if (probe + len > memory_size) return false;
    const auto rc = pmp.check_region(probe, len, mode, type, memory_size);
    if (!rc.allowed) return false;
    // Every access fully inside [rc.lo, rc.hi) is decided identically, so
    // the next start worth probing is the first one not fully covered.
    std::uint64_t next = rc.hi >= len ? rc.hi - len + 1 : probe + 1;
    if (next <= probe) next = probe + 1;  // progress even on odd windows
    if (next > hi) return true;
    probe = next;
  }
}

AnalysisResult analyze(const ImageSpec& image, const AnalyzeOptions& options) {
  AnalysisResult result;
  result.absint = interpret(image, options.absint);
  result.cfg = recover_cfg(image, result.absint.indirect_targets,
                           result.absint.unresolved_sites,
                           result.absint.reachable);

  Extractor extractor{image, options, result.absint, result.report};
  extractor.run();

  for (const auto& block : result.cfg.blocks) {
    if (!block.reachable) {
      result.report.findings.push_back(
          {FindingKind::kUnreachableCode, block.first_pc, block.first_pc,
           block.last_pc, "block never reachable from the entry"});
    }
  }

  std::sort(result.report.findings.begin(), result.report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.pc != b.pc) return a.pc < b.pc;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });

  auto& stats = result.report.cfg;
  stats.blocks = result.cfg.blocks.size();
  stats.edges = result.cfg.edges.size();
  stats.reachable_blocks = static_cast<std::size_t>(
      std::count_if(result.cfg.blocks.begin(), result.cfg.blocks.end(),
                    [](const BasicBlock& b) { return b.reachable; }));
  stats.indirect_sites = result.absint.indirect.size();
  for (const auto& [pc, targets] : result.absint.indirect_targets) {
    (void)pc;
    stats.resolved_indirect_targets += targets.size();
  }
  result.report.fixpoint_iterations = result.absint.iterations;
  result.report.converged = result.absint.converged;
  result.report.has_unresolved_indirect =
      !result.absint.unresolved_sites.empty();

  CONVOLVE_TELEMETRY_ONLY({
    t_blocks.add(stats.blocks);
    t_edges.add(stats.edges);
    t_iterations.add(result.report.fixpoint_iterations);
    t_findings.add(result.report.findings.size());
  })
  return result;
}

}  // namespace convolve::analysis::rv32static
