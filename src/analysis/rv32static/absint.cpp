#include "convolve/analysis/rv32static/absint.hpp"

#include <deque>

#include "convolve/tee/rv32_decode.hpp"

namespace convolve::analysis::rv32static {

namespace {

using tee::DecodedInsn;
using tee::OpKind;

// Exact RV32M semantics for singleton operands (must match the engines
// bit-for-bit, including the division edge cases, or the interval would
// exclude the value the hardware computes).
std::uint32_t exact_op(OpKind k, std::uint32_t a, std::uint32_t b) {
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  switch (k) {
    case OpKind::kAdd: return a + b;
    case OpKind::kSub: return a - b;
    case OpKind::kSll: return a << (b & 31);
    case OpKind::kSlt: return sa < sb ? 1 : 0;
    case OpKind::kSltu: return a < b ? 1 : 0;
    case OpKind::kXor: return a ^ b;
    case OpKind::kSrl: return a >> (b & 31);
    case OpKind::kSra:
      return static_cast<std::uint32_t>(sa >> (b & 31));
    case OpKind::kOr: return a | b;
    case OpKind::kAnd: return a & b;
    case OpKind::kMul:
      return static_cast<std::uint32_t>(static_cast<std::int64_t>(sa) *
                                        static_cast<std::int64_t>(sb));
    case OpKind::kMulh:
      return static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(sb)) >>
          32);
    case OpKind::kMulhsu:
      return static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(sa) *
           static_cast<std::int64_t>(static_cast<std::uint64_t>(b))) >>
          32);
    case OpKind::kMulhu:
      return static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >>
          32);
    case OpKind::kDiv:
      if (b == 0) return 0xffffffffu;
      if (a == 0x80000000u && b == 0xffffffffu) return 0x80000000u;
      return static_cast<std::uint32_t>(sa / sb);
    case OpKind::kDivu: return b == 0 ? 0xffffffffu : a / b;
    case OpKind::kRem:
      if (b == 0) return a;
      if (a == 0x80000000u && b == 0xffffffffu) return 0;
      return static_cast<std::uint32_t>(sa % sb);
    case OpKind::kRemu: return b == 0 ? a : a % b;
    default: return 0;
  }
}

/// Interval transfer for the register-register OP group.
Interval op_interval(OpKind k, const Interval& a, const Interval& b) {
  if (a.singleton() && b.singleton()) {
    return Interval::constant(exact_op(k, a.lo, b.lo));
  }
  switch (k) {
    case OpKind::kAdd: return Interval::add(a, b);
    case OpKind::kSub: return Interval::sub(a, b);
    case OpKind::kSlt:
    case OpKind::kSltu: return {0, 1};
    case OpKind::kAnd:
      // x & y <= min(x_hi, y_hi): the result clears bits, never sets.
      return {0, std::min(a.hi, b.hi)};
    case OpKind::kSll:
      if (b.singleton()) return Interval::shift_left(a, b.lo & 31);
      return Interval::top();
    case OpKind::kSrl:
      if (b.singleton()) return Interval::shift_right(a, b.lo & 31);
      return {0, a.hi};  // logical right shift never grows the value
    case OpKind::kSra:
      // Arithmetic shift is monotone only while the interval stays on one
      // side of the sign boundary.
      if (b.singleton() && a.hi < 0x80000000u) {
        return Interval::shift_right(a, b.lo & 31);
      }
      return Interval::top();
    case OpKind::kOr:
    case OpKind::kXor: {
      // x|y and x^y are both <= x+y; lower bound 0 (OR's max(lo) bound
      // would be valid but OR/XOR share this path for simplicity).
      const std::uint64_t hi =
          static_cast<std::uint64_t>(a.hi) + static_cast<std::uint64_t>(b.hi);
      if (hi > 0xffffffffull) return Interval::top();
      return {0, static_cast<std::uint32_t>(hi)};
    }
    default: return Interval::top();
  }
}

/// Interval transfer for the OP-IMM group (imm is the decoded immediate,
/// shamt for shifts).
Interval op_imm_interval(OpKind k, const Interval& a, std::int32_t imm) {
  const auto ui = static_cast<std::uint32_t>(imm);
  if (a.singleton()) {
    switch (k) {
      case OpKind::kAddi: return Interval::constant(a.lo + ui);
      case OpKind::kSlti:
        return Interval::constant(
            static_cast<std::int32_t>(a.lo) < imm ? 1 : 0);
      case OpKind::kSltiu: return Interval::constant(a.lo < ui ? 1 : 0);
      case OpKind::kXori: return Interval::constant(a.lo ^ ui);
      case OpKind::kOri: return Interval::constant(a.lo | ui);
      case OpKind::kAndi: return Interval::constant(a.lo & ui);
      case OpKind::kSlli: return Interval::constant(a.lo << imm);
      case OpKind::kSrli: return Interval::constant(a.lo >> imm);
      case OpKind::kSrai:
        return Interval::constant(static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a.lo) >> imm));
      default: return Interval::top();
    }
  }
  switch (k) {
    case OpKind::kAddi: return Interval::add_imm(a, imm);
    case OpKind::kSlti:
    case OpKind::kSltiu: return {0, 1};
    case OpKind::kAndi:
      // Negative immediates have high bits set; only a non-negative mask
      // gives the cheap [0, mask] bound.
      if (imm >= 0) return {0, std::min(a.hi, ui)};
      return Interval::top();
    case OpKind::kSlli:
      return Interval::shift_left(a, static_cast<unsigned>(imm));
    case OpKind::kSrli:
      return Interval::shift_right(a, static_cast<unsigned>(imm));
    case OpKind::kSrai:
      if (a.hi < 0x80000000u) {
        return Interval::shift_right(a, static_cast<unsigned>(imm));
      }
      return Interval::top();
    case OpKind::kOri: {
      const std::uint64_t hi = static_cast<std::uint64_t>(a.hi) + ui;
      if (imm < 0 || hi > 0xffffffffull) return Interval::top();
      return {std::max(a.lo, ui), static_cast<std::uint32_t>(hi)};
    }
    default: return Interval::top();
  }
}

struct Engine {
  const ImageSpec& image;
  const AbsIntConfig& config;
  std::vector<DecodedInsn> insns;
  std::vector<std::size_t> load_indices;

  AbsIntResult res;
  std::vector<bool> has_state;
  std::vector<unsigned> visits;
  std::vector<bool> queued;
  std::deque<std::size_t> worklist;

  Engine(const ImageSpec& img, const AbsIntConfig& cfg)
      : image(img), config(cfg) {
    const std::size_t n = image.insn_count();
    insns.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      insns.push_back(tee::decode_rv32(image.word_at(i)));
      if (tee::is_load(insns.back().kind)) load_indices.push_back(i);
    }
    res.in_state.assign(n, RegState{});
    res.reachable.assign(n, false);
    res.tainted_memory = image.secret;
    has_state.assign(n, false);
    visits.assign(n, 0);
    queued.assign(n, false);
  }

  void enqueue(std::size_t idx) {
    if (!queued[idx]) {
      queued[idx] = true;
      worklist.push_back(idx);
    }
  }

  void propagate(std::size_t idx, const RegState& state) {
    if (!has_state[idx]) {
      res.in_state[idx] = state;
      has_state[idx] = true;
      res.reachable[idx] = true;
      enqueue(idx);
      return;
    }
    RegState joined = RegState::join(res.in_state[idx], state);
    if (joined == res.in_state[idx]) return;
    ++visits[idx];
    if (visits[idx] >= config.widen_after) {
      joined = RegState::widen(res.in_state[idx], joined);
      if (joined == res.in_state[idx]) return;
    }
    res.in_state[idx] = joined;
    enqueue(idx);
  }

  void propagate_pc(std::uint32_t pc, const RegState& state) {
    if (image.in_image(pc) && image.aligned(pc)) {
      propagate(image.index_of(pc), state);
    }
    // Out-of-image / misaligned targets end abstract execution here; the
    // finding extraction reports them from the final states.
  }

  void grow_tainted_memory(std::uint32_t lo, std::uint64_t span) {
    if (res.all_memory_tainted) return;
    const std::uint64_t hi64 = static_cast<std::uint64_t>(lo) + span;
    const auto hi =
        hi64 > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(hi64);
    // Already covered by an existing range: no growth, no re-propagation.
    for (const auto& r : res.tainted_memory) {
      if (r.lo <= lo && r.hi >= hi) return;
    }
    if (res.tainted_memory.size() >= config.max_tainted_ranges) {
      res.all_memory_tainted = true;
    } else {
      res.tainted_memory.push_back({lo, hi});
    }
    // Memory taint grew: every reachable load may now read tainted bytes,
    // so their program points must be re-evaluated.
    for (const std::size_t li : load_indices) {
      if (res.reachable[li]) enqueue(li);
    }
  }

  /// Branch-edge refinement. Returns false when the refined interval is
  /// empty (edge infeasible). Only unsigned comparisons and equality are
  /// refined; signed branches propagate unrefined (still sound).
  static bool refine_edge(OpKind kind, bool taken, AbsVal& a, AbsVal& b) {
    const bool eq_side = (kind == OpKind::kBeq && taken) ||
                         (kind == OpKind::kBne && !taken);
    if (eq_side) {
      bool empty = false;
      const Interval both = Interval::intersect(a.iv, b.iv, empty);
      if (empty) return false;
      a.iv = both;
      b.iv = both;
      return true;
    }
    const bool ne_side = (kind == OpKind::kBeq && !taken) ||
                         (kind == OpKind::kBne && taken);
    if (ne_side) {
      // Only the singleton-vs-interval case is worth refining: shave the
      // matching endpoint off the other interval.
      const auto shave = [](const Interval& single, Interval& other) {
        if (!single.singleton()) return true;
        if (other.singleton()) return other.lo != single.lo;
        if (other.lo == single.lo) other.lo += 1;
        else if (other.hi == single.lo) other.hi -= 1;
        return true;
      };
      return shave(a.iv, b.iv) && shave(b.iv, a.iv);
    }
    const bool ltu_side = (kind == OpKind::kBltu && taken) ||
                          (kind == OpKind::kBgeu && !taken);
    if (ltu_side) {  // a < b unsigned
      if (b.iv.hi == 0) return false;  // nothing is < 0
      a.iv.hi = std::min(a.iv.hi, b.iv.hi - 1);
      b.iv.lo = std::max(b.iv.lo, a.iv.lo == 0xffffffffu ? a.iv.lo
                                                         : a.iv.lo + 1);
      return a.iv.lo <= a.iv.hi && b.iv.lo <= b.iv.hi;
    }
    const bool geu_side = (kind == OpKind::kBgeu && taken) ||
                          (kind == OpKind::kBltu && !taken);
    if (geu_side) {  // a >= b unsigned
      a.iv.lo = std::max(a.iv.lo, b.iv.lo);
      b.iv.hi = std::min(b.iv.hi, a.iv.hi);
      return a.iv.lo <= a.iv.hi && b.iv.lo <= b.iv.hi;
    }
    return true;  // signed branches: no refinement
  }

  void transfer(std::size_t idx) {
    const DecodedInsn& d = insns[idx];
    const std::uint32_t pc = image.pc_of(idx);
    const RegState in = res.in_state[idx];  // copy: propagate may mutate
    const AbsVal a = in.reg(d.rs1);
    const AbsVal b = in.reg(d.rs2);
    const auto ui = static_cast<std::uint32_t>(d.imm);

    RegState out = in;

    switch (d.kind) {
      case OpKind::kLui:
        out.set_reg(d.rd, AbsVal::constant(ui));
        break;
      case OpKind::kAuipc:
        out.set_reg(d.rd, AbsVal::constant(pc + ui));
        break;
      case OpKind::kJal:
        out.set_reg(d.rd, AbsVal::constant(pc + 4));
        propagate_pc(pc + ui, out);
        return;
      case OpKind::kJalr: {
        out.set_reg(d.rd, AbsVal::constant(pc + 4));
        const Interval t = Interval::add_imm(a.iv, d.imm);
        // Bit 0 is cleared architecturally; x & ~1 is monotone.
        const Interval targets{t.lo & ~1u, t.hi & ~1u};
        IndirectSite site;
        site.pc = pc;
        site.secret_target = a.taint;
        if (targets.width() > config.max_indirect_candidates) {
          site.unresolved = true;
          res.indirect[pc] = site;
          make_everything_reachable();
          return;
        }
        for (std::uint64_t v = targets.lo; v <= targets.hi; v += 1) {
          const auto cand = static_cast<std::uint32_t>(v) & ~1u;
          if (!site.targets.empty() && site.targets.back() == cand) continue;
          site.targets.push_back(cand);
          if (!image.in_image(cand)) {
            site.may_escape = true;
          } else if (cand % 4 != 0) {
            site.may_misalign = true;
          } else {
            propagate_pc(cand, out);
          }
        }
        res.indirect[pc] = site;
        return;
      }
      case OpKind::kBeq: case OpKind::kBne: case OpKind::kBlt:
      case OpKind::kBge: case OpKind::kBltu: case OpKind::kBgeu: {
        for (const bool taken : {false, true}) {
          RegState edge = out;
          AbsVal ra = a;
          AbsVal rb = b;
          if (!refine_edge(d.kind, taken, ra, rb)) continue;
          edge.set_reg(d.rs1, ra);
          edge.set_reg(d.rs2, rb);
          propagate_pc(taken ? pc + ui : pc + 4, edge);
        }
        return;
      }
      case OpKind::kLb: case OpKind::kLh: case OpKind::kLw:
      case OpKind::kLbu: case OpKind::kLhu: {
        const Interval addr = Interval::add_imm(a.iv, d.imm);
        const std::uint64_t span =
            addr.width() - 1 + tee::access_bytes(d.kind);
        const bool value_taint =
            res.memory_may_be_tainted(addr.lo, span);
        Interval value = Interval::top();
        if (d.kind == OpKind::kLbu) value = {0, 0xff};
        if (d.kind == OpKind::kLhu) value = {0, 0xffff};
        out.set_reg(d.rd, {value, value_taint});
        break;
      }
      case OpKind::kSb: case OpKind::kSh: case OpKind::kSw: {
        if (b.taint) {
          const Interval addr = Interval::add_imm(a.iv, d.imm);
          if (addr.is_top()) {
            res.all_memory_tainted = true;
            for (const std::size_t li : load_indices) {
              if (res.reachable[li]) enqueue(li);
            }
          } else {
            grow_tainted_memory(
                addr.lo, addr.width() - 1 + tee::access_bytes(d.kind));
          }
        }
        break;
      }
      case OpKind::kAddi: case OpKind::kSlti: case OpKind::kSltiu:
      case OpKind::kXori: case OpKind::kOri: case OpKind::kAndi:
      case OpKind::kSlli: case OpKind::kSrli: case OpKind::kSrai:
        out.set_reg(d.rd, {op_imm_interval(d.kind, a.iv, d.imm), a.taint});
        break;
      case OpKind::kAdd: case OpKind::kSub: case OpKind::kSll:
      case OpKind::kSlt: case OpKind::kSltu: case OpKind::kXor:
      case OpKind::kSrl: case OpKind::kSra: case OpKind::kOr:
      case OpKind::kAnd: case OpKind::kMul: case OpKind::kMulh:
      case OpKind::kMulhsu: case OpKind::kMulhu: case OpKind::kDiv:
      case OpKind::kDivu: case OpKind::kRem: case OpKind::kRemu:
        out.set_reg(d.rd,
                    {op_interval(d.kind, a.iv, b.iv), a.taint || b.taint});
        break;
      case OpKind::kFence:
        break;
      case OpKind::kEcall:
      case OpKind::kEbreak:
        // The embedder resumes at pc + 4 with registers preserved (the
        // harness and the SM service loop both behave this way; a
        // register-clobbering embedder is documented imprecision).
        propagate_pc(pc + 4, out);
        return;
      case OpKind::kIllegal:
      default:
        return;  // execution stops: illegal-instruction trap
    }
    propagate_pc(pc + 4, out);
  }

  /// Sound fallback for an unresolved indirect jump: every instruction
  /// becomes reachable with a fully-unknown, fully-tainted state.
  void make_everything_reachable() {
    RegState all_top;
    for (unsigned r = 1; r < 32; ++r) all_top.x[r] = AbsVal::top(true);
    res.all_memory_tainted = true;
    for (std::size_t i = 0; i < insns.size(); ++i) {
      propagate(i, all_top);
    }
  }

  AbsIntResult run() {
    if (!image.in_image(image.entry) || !image.aligned(image.entry) ||
        image.code.size() % 4 != 0) {
      return std::move(res);  // nothing reachable; analyze() reports why
    }
    propagate(image.index_of(image.entry), RegState{});
    while (!worklist.empty()) {
      if (res.iterations >= config.max_iterations) {
        res.converged = false;
        break;
      }
      const std::size_t idx = worklist.front();
      worklist.pop_front();
      queued[idx] = false;
      ++res.iterations;
      transfer(idx);
    }
    for (const auto& [site_pc, site] : res.indirect) {
      if (site.unresolved) {
        res.unresolved_sites.push_back(site_pc);
        continue;
      }
      std::vector<std::uint32_t> in_image;
      for (const std::uint32_t t : site.targets) {
        if (image.in_image(t) && t % 4 == 0) in_image.push_back(t);
      }
      res.indirect_targets[site_pc] = std::move(in_image);
    }
    return std::move(res);
  }
};

}  // namespace

AbsIntResult interpret(const ImageSpec& image, const AbsIntConfig& config) {
  Engine engine(image, config);
  return engine.run();
}

}  // namespace convolve::analysis::rv32static
