#include "convolve/analysis/aes_sbox.hpp"

#include <cstdint>

#include "convolve/crypto/detail/aes_sbox_ct.hpp"

namespace convolve::analysis {

namespace {

/// Word type that builds a netlist instead of computing: every operator
/// appends a gate to the underlying circuit.
struct WireRef {
  masking::Circuit* c = nullptr;
  int idx = -1;

  friend WireRef operator^(WireRef a, WireRef b) {
    return {a.c, a.c->add_xor(a.idx, b.idx)};
  }
  friend WireRef operator&(WireRef a, WireRef b) {
    return {a.c, a.c->add_and(a.idx, b.idx)};
  }
  WireRef operator~() const { return {c, c->add_not(idx)}; }
};

}  // namespace

masking::Circuit aes_sbox_circuit() {
  masking::Circuit c;
  WireRef u[8];
  for (auto& w : u) w = {&c, c.add_input()};
  crypto::detail::aes_sbox_planes(u);
  for (const auto& w : u) c.mark_output(w.idx);
  return c;
}

std::uint8_t aes_sbox_circuit_eval(const masking::Circuit& circuit,
                                   std::uint8_t x) {
  std::vector<std::uint8_t> inputs(8);
  for (int i = 0; i < 8; ++i) {
    inputs[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((x >> (7 - i)) & 1);
  }
  const auto out = circuit.evaluate(inputs);
  std::uint8_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r = static_cast<std::uint8_t>(r |
                                  (out[static_cast<std::size_t>(i)] & 1)
                                      << (7 - i));
  }
  return r;
}

}  // namespace convolve::analysis
