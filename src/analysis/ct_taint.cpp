#include "convolve/analysis/ct_taint.hpp"

#include <array>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "convolve/crypto/aes.hpp"
#include "convolve/crypto/chacha20.hpp"
#include "convolve/crypto/detail/aes_core.hpp"
#include "convolve/crypto/detail/chacha_core.hpp"
#include "convolve/crypto/detail/keccak_core.hpp"
#include "convolve/crypto/detail/pqc_ntt.hpp"
#include "convolve/crypto/detail/sha512_core.hpp"
#include "convolve/crypto/hmac.hpp"
#include "convolve/crypto/keccak.hpp"

namespace convolve::analysis {

namespace {

thread_local TaintSink* g_sink = nullptr;

}  // namespace

const char* hazard_name(Hazard h) {
  switch (h) {
    case Hazard::kBranch:
      return "secret-dependent branch";
    case Hazard::kTableIndex:
      return "secret-dependent table index";
    case Hazard::kVariableShift:
      return "secret-dependent shift amount";
    case Hazard::kDivision:
      return "division on secret operand";
  }
  return "unknown hazard";
}

TaintSink* TaintSink::current() { return g_sink; }

void TaintSink::record(Hazard h) {
  std::string path;
  for (const char* c : context_) {
    if (!path.empty()) path += '/';
    path += c;
  }
  ++counts_[{h, std::move(path)}];
  ++total_;
}

void TaintSink::push_context(const char* label) { context_.push_back(label); }

void TaintSink::pop_context() {
  if (!context_.empty()) context_.pop_back();
}

std::vector<TaintFinding> TaintSink::findings() const {
  std::vector<TaintFinding> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    out.push_back(TaintFinding{key.first, key.second, count});
  }
  return out;
}

ScopedTaintSink::ScopedTaintSink() : prev_(g_sink) { g_sink = &sink_; }

ScopedTaintSink::~ScopedTaintSink() { g_sink = prev_; }

TaintScope::TaintScope(const char* label) {
  if (g_sink != nullptr) g_sink->push_context(label);
}

TaintScope::~TaintScope() {
  if (g_sink != nullptr) g_sink->pop_context();
}

namespace detail {

void report_hazard(Hazard h) {
  if (g_sink != nullptr) g_sink->record(h);
}

}  // namespace detail

namespace {

namespace cd = convolve::crypto::detail;

using T8 = Tainted<std::uint8_t>;
using T32 = Tainted<std::uint32_t>;
using T64 = Tainted<std::uint64_t>;

LintResult finish(const char* suite, const TaintSink& sink, bool matches) {
  LintResult r;
  r.suite = suite;
  r.findings = sink.findings();
  r.hazard_count = sink.total();
  r.output_matches = matches;
  return r;
}

/// Deterministic test-pattern byte (public; keeps lints self-contained).
std::uint8_t pattern(std::size_t i, std::uint8_t salt) {
  return static_cast<std::uint8_t>(0x61u + 0x45u * i + salt);
}

}  // namespace

LintResult lint_aes256() {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 16> pt{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = pattern(i, 0x11);
  for (std::size_t i = 0; i < pt.size(); ++i) pt[i] = pattern(i, 0x7f);

  // Production reference.
  const crypto::Aes aes(crypto::Aes::KeySize::k256, key);
  std::array<std::uint8_t, 16> want_ct{};
  aes.encrypt_block(pt.data(), want_ct.data());

  ScopedTaintSink guard;
  TaintScope scope("aes256");

  std::array<T8, 32> tkey;
  for (std::size_t i = 0; i < key.size(); ++i) tkey[i] = T8::secret(key[i]);
  std::array<T8, 15 * 16> round_keys;
  {
    TaintScope s("key-expand");
    cd::aes_key_expand(tkey.data(), std::size_t{8}, aes.rounds(),
                       round_keys.data());
  }

  std::array<T8, 16> tpt;
  for (std::size_t i = 0; i < pt.size(); ++i) tpt[i] = T8(pt[i]);
  std::array<T8, 16> tct;
  {
    TaintScope s("encrypt");
    cd::aes_encrypt_block(round_keys.data(), aes.rounds(), tpt.data(),
                          tct.data());
  }
  std::array<T8, 16> tback;
  {
    TaintScope s("decrypt");
    cd::aes_decrypt_block(round_keys.data(), aes.rounds(),
                          crypto::aes_inv_sbox_table(), tct.data(),
                          tback.data());
  }

  bool matches = true;
  for (std::size_t i = 0; i < 16; ++i) {
    matches = matches && tct[i].value() == want_ct[i] && tct[i].tainted();
    matches = matches && tback[i].value() == pt[i];
  }
  return finish("aes256", guard.sink(), matches);
}

LintResult lint_chacha20() {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = pattern(i, 0x29);
  for (std::size_t i = 0; i < nonce.size(); ++i) nonce[i] = pattern(i, 0x3d);
  const std::uint32_t counter = 1;

  const auto want = crypto::chacha20_block(key, nonce, counter);

  ScopedTaintSink guard;
  TaintScope scope("chacha20");

  auto le32 = [](const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  };

  T32 x[16];
  x[0] = T32(0x61707865u);
  x[1] = T32(0x3320646eu);
  x[2] = T32(0x79622d32u);
  x[3] = T32(0x6b206574u);
  for (int i = 0; i < 8; ++i) x[4 + i] = T32::secret(le32(key.data() + 4 * i));
  x[12] = T32(counter);
  for (int i = 0; i < 3; ++i) x[13 + i] = T32(le32(nonce.data() + 4 * i));

  {
    TaintScope s("core");
    cd::chacha20_core(x);
  }

  bool matches = true;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t w = le32(want.data() + 4 * i);
    matches = matches && x[i].value() == w && x[i].tainted();
  }
  return finish("chacha20", guard.sink(), matches);
}

LintResult lint_keccak_f1600() {
  std::array<std::uint64_t, 25> state{};
  for (std::size_t i = 0; i < 25; ++i) {
    state[i] = 0x0123456789abcdefull * (i + 1) + 0xf00du * i;
  }
  auto want = state;
  crypto::keccak_f1600(want);

  ScopedTaintSink guard;
  TaintScope scope("keccak");

  T64 a[25];
  for (std::size_t i = 0; i < 25; ++i) a[i] = T64::secret(state[i]);
  {
    TaintScope s("permute");
    cd::keccak_permute(a);
  }

  bool matches = true;
  for (std::size_t i = 0; i < 25; ++i) {
    matches = matches && a[i].value() == want[i] && a[i].tainted();
  }
  return finish("keccak", guard.sink(), matches);
}

LintResult lint_hmac_sha512() {
  std::vector<std::uint8_t> key(40);
  std::vector<std::uint8_t> msg(113);  // spans a block boundary with padding
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = pattern(i, 0x55);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = pattern(i, 0xa3);

  const auto want = crypto::hmac_sha512(key, msg);

  ScopedTaintSink guard;
  TaintScope scope("hmac-sha512");

  std::vector<T8> tkey(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) tkey[i] = T8::secret(key[i]);
  std::vector<T8> tmsg(msg.size());
  for (std::size_t i = 0; i < msg.size(); ++i) tmsg[i] = T8(msg[i]);

  std::array<T8, 64> mac;
  {
    TaintScope s("mac");
    cd::hmac_sha512_ct<T64>(tkey.data(), tkey.size(), tmsg.data(), tmsg.size(),
                            mac.data());
  }

  bool matches = want.size() == 64;
  for (std::size_t i = 0; i < 64 && matches; ++i) {
    matches = mac[i].value() == want[i] && mac[i].tainted();
  }
  return finish("hmac", guard.sink(), matches);
}

namespace {

/// Little Fermat powering for re-deriving the public twiddle tables from
/// the spec (the production tables live in anonymous namespaces).
std::int64_t mod_pow(std::int64_t base, std::int64_t exp, std::int64_t q) {
  std::int64_t r = 1;
  std::int64_t b = base % q;
  while (exp > 0) {
    if (exp & 1) r = r * b % q;
    b = b * b % q;
    exp >>= 1;
  }
  return r;
}

int bitrev(int i, int bits) {
  int r = 0;
  for (int b = 0; b < bits; ++b) {
    r = (r << 1) | ((i >> b) & 1);
  }
  return r;
}

/// Drive a secret polynomial through the shared NTT template with tainted
/// coefficients and compare against the plain instantiation. The transform
/// is *expected* to record hazards (`%` + sign test in ntt_mod); the lint
/// documents them rather than asserting cleanliness.
template <class TC, class TW, class Z>
LintResult lint_ntt(const char* suite, int n, int min_len, std::int64_t q,
                    const std::vector<Z>& zetas, const std::vector<Z>& inv_zetas,
                    Z n_inv) {
  std::vector<TC> poly(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    poly[static_cast<std::size_t>(i)] =
        static_cast<TC>((i * 31 + 7) % static_cast<int>(q));
  }

  // Plain reference: forward, then inverse round-trips back.
  auto plain = poly;
  cd::ntt_forward<TC, TW>(plain.data(), n, min_len, zetas.data(), q);

  ScopedTaintSink guard;
  TaintScope scope(suite);

  std::vector<Tainted<TC>> tpoly(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    tpoly[static_cast<std::size_t>(i)] =
        Tainted<TC>::secret(poly[static_cast<std::size_t>(i)]);
  }
  {
    TaintScope s("forward");
    cd::ntt_forward<Tainted<TC>, Tainted<TW>>(tpoly.data(), n, min_len,
                                              zetas.data(), q);
  }
  bool matches = true;
  for (int i = 0; i < n; ++i) {
    matches = matches &&
              tpoly[static_cast<std::size_t>(i)].value() ==
                  plain[static_cast<std::size_t>(i)];
  }
  {
    TaintScope s("inverse");
    cd::ntt_inverse<Tainted<TC>, Tainted<TW>>(tpoly.data(), n, min_len,
                                              inv_zetas.data(), q, n_inv);
  }
  for (int i = 0; i < n; ++i) {
    matches = matches &&
              tpoly[static_cast<std::size_t>(i)].value() ==
                  poly[static_cast<std::size_t>(i)];
  }
  return finish(suite, guard.sink(), matches);
}

}  // namespace

LintResult lint_kyber_ntt() {
  constexpr int kN = 256;
  constexpr std::int64_t kQ = 3329;
  std::vector<std::int16_t> zetas(128), inv_zetas(128);
  for (int i = 0; i < 128; ++i) {
    zetas[static_cast<std::size_t>(i)] =
        static_cast<std::int16_t>(mod_pow(17, bitrev(i, 7), kQ));
    inv_zetas[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
        mod_pow(17, (256 - bitrev(i, 7)) % 256, kQ));
  }
  // 128^-1 mod q (the forward transform stops at len = 2, so 128 butterfly
  // halvings are undone).
  const auto n_inv = static_cast<std::int16_t>(mod_pow(128, kQ - 2, kQ));
  return lint_ntt<std::int16_t, std::int32_t>("kyber-ntt", kN, 2, kQ, zetas,
                                              inv_zetas, n_inv);
}

LintResult lint_dilithium_ntt() {
  constexpr int kN = 256;
  constexpr std::int64_t kQ = 8380417;
  std::vector<std::int32_t> zetas(256), inv_zetas(256);
  for (int i = 0; i < 256; ++i) {
    zetas[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(mod_pow(1753, bitrev(i, 8), kQ));
    inv_zetas[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
        mod_pow(zetas[static_cast<std::size_t>(i)], kQ - 2, kQ));
  }
  const auto n_inv = static_cast<std::int32_t>(mod_pow(kN, kQ - 2, kQ));
  return lint_ntt<std::int32_t, std::int64_t>("dilithium-ntt", kN, 1, kQ,
                                              zetas, inv_zetas, n_inv);
}

std::vector<LintResult> lint_all() {
  return {lint_aes256(),       lint_chacha20(),  lint_keccak_f1600(),
          lint_hmac_sha512(),  lint_kyber_ntt(), lint_dilithium_ntt()};
}

}  // namespace convolve::analysis
