// Secret-taint constant-time lint.
//
// `Tainted<T>` wraps an integer together with a secrecy flag. Arithmetic
// and bitwise operators propagate the flag; the operations that leak
// through microarchitectural timing -- branching on a secret, indexing a
// table with a secret, shifting by a secret amount, dividing by or a
// secret -- report a hazard to the active TaintSink instead of passing
// silently. Because the production crypto cores in
// src/crypto/include/convolve/crypto/detail/ are templates over the word
// type, the lint instantiates the *exact shipped code* with Tainted words
// and a secret-flagged key: zero recorded hazards plus a bit-identical
// output against the plain instantiation is a machine-checked
// constant-time verdict for that algorithm, not for a lookalike model.
//
// Threat model: an attacker observing execution time / instruction trace /
// data-cache line addresses. Value-dependent operand timing (e.g. early
// -exit multipliers) is out of scope except for division, which is flagged
// because division latency is operand-dependent on essentially all cores.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "convolve/crypto/detail/aes_sbox_ct.hpp"

namespace convolve::analysis {

enum class Hazard {
  kBranch,         // control flow depends on a secret
  kTableIndex,     // memory address depends on a secret
  kVariableShift,  // shift amount depends on a secret
  kDivision,       // division/modulo with a secret operand
};

const char* hazard_name(Hazard h);

/// One deduplicated finding: a hazard kind at a context-label path, with
/// the number of dynamic occurrences.
struct TaintFinding {
  Hazard kind = Hazard::kBranch;
  std::string context;
  std::uint64_t count = 0;
};

/// Collects hazards recorded by Tainted operations on the current thread.
class TaintSink {
 public:
  void record(Hazard h);
  void push_context(const char* label);
  void pop_context();

  std::vector<TaintFinding> findings() const;
  std::uint64_t total() const { return total_; }

  /// The sink Tainted operations report to (nullptr when none is active --
  /// hazards are then silently ignored, so production code paths can use
  /// Tainted values without a registered sink).
  static TaintSink* current();

 private:
  friend class ScopedTaintSink;
  std::map<std::pair<Hazard, std::string>, std::uint64_t> counts_;
  std::vector<const char*> context_;
  std::uint64_t total_ = 0;
};

/// RAII: installs a fresh sink as TaintSink::current() for this thread.
class ScopedTaintSink {
 public:
  ScopedTaintSink();
  ~ScopedTaintSink();
  ScopedTaintSink(const ScopedTaintSink&) = delete;
  ScopedTaintSink& operator=(const ScopedTaintSink&) = delete;

  TaintSink& sink() { return sink_; }

 private:
  TaintSink sink_;
  TaintSink* prev_;
};

/// RAII context label, e.g. TaintScope scope("key-expand");
class TaintScope {
 public:
  explicit TaintScope(const char* label);
  ~TaintScope();
  TaintScope(const TaintScope&) = delete;
  TaintScope& operator=(const TaintScope&) = delete;
};

namespace detail {
void report_hazard(Hazard h);
}  // namespace detail

/// Result of comparing a tainted value: carries the outcome plus whether
/// it is secret-derived. Converting it to bool is a secret-dependent
/// branch and is reported.
class TaintedBool {
 public:
  constexpr TaintedBool(bool v, bool tainted) : v_(v), t_(tainted) {}

  operator bool() const {
    if (t_) detail::report_hazard(Hazard::kBranch);
    return v_;
  }
  bool raw() const { return v_; }
  bool tainted() const { return t_; }

 private:
  bool v_;
  bool t_;
};

/// An integer carrying a secrecy flag. Mirrors the implicit conversions of
/// plain integers closely enough that the detail/ crypto templates compile
/// unchanged with W = Tainted<...>.
template <class T>
class Tainted {
  static_assert(std::is_integral_v<T>);

 public:
  using value_type = T;

  constexpr Tainted() = default;
  /// Implicit from any plain integer (public data).
  template <class U, class = std::enable_if_t<std::is_integral_v<U>>>
  constexpr Tainted(U v) : v_(static_cast<T>(v)) {}  // NOLINT(runtime/explicit)
  /// Explicit width conversion between tainted values (keeps the flag).
  template <class U>
  constexpr explicit Tainted(Tainted<U> o)
      : v_(static_cast<T>(o.value())), t_(o.tainted()) {}

  static constexpr Tainted secret(T v) { return Tainted(v, true); }

  constexpr T value() const { return v_; }
  constexpr bool tainted() const { return t_; }
  /// Deliberate declassification (e.g. a published MAC); clears the flag.
  constexpr Tainted declassified() const { return Tainted(v_, false); }

  // Bitwise / arithmetic: value semantics of T, taint is OR of operands.
  friend constexpr Tainted operator^(Tainted a, Tainted b) {
    return Tainted(static_cast<T>(a.v_ ^ b.v_), a.t_ || b.t_);
  }
  friend constexpr Tainted operator&(Tainted a, Tainted b) {
    return Tainted(static_cast<T>(a.v_ & b.v_), a.t_ || b.t_);
  }
  friend constexpr Tainted operator|(Tainted a, Tainted b) {
    return Tainted(static_cast<T>(a.v_ | b.v_), a.t_ || b.t_);
  }
  friend constexpr Tainted operator+(Tainted a, Tainted b) {
    return Tainted(static_cast<T>(a.v_ + b.v_), a.t_ || b.t_);
  }
  friend constexpr Tainted operator-(Tainted a, Tainted b) {
    return Tainted(static_cast<T>(a.v_ - b.v_), a.t_ || b.t_);
  }
  friend constexpr Tainted operator*(Tainted a, Tainted b) {
    return Tainted(static_cast<T>(a.v_ * b.v_), a.t_ || b.t_);
  }
  constexpr Tainted operator~() const {
    return Tainted(static_cast<T>(~v_), t_);
  }

  // Division and modulo have operand-dependent latency: hazard when any
  // operand is secret.
  friend Tainted operator/(Tainted a, Tainted b) {
    if (a.t_ || b.t_) detail::report_hazard(Hazard::kDivision);
    return Tainted(static_cast<T>(a.v_ / b.v_), a.t_ || b.t_);
  }
  friend Tainted operator%(Tainted a, Tainted b) {
    if (a.t_ || b.t_) detail::report_hazard(Hazard::kDivision);
    return Tainted(static_cast<T>(a.v_ % b.v_), a.t_ || b.t_);
  }

  // Shifts by a public amount are constant-time.
  friend constexpr Tainted operator<<(Tainted a, int n) {
    return Tainted(static_cast<T>(a.v_ << n), a.t_);
  }
  friend constexpr Tainted operator>>(Tainted a, int n) {
    return Tainted(static_cast<T>(a.v_ >> n), a.t_);
  }
  // Shifts by a secret amount leak on cores with iterative shifters and
  // via port contention: hazard.
  friend Tainted operator<<(Tainted a, Tainted n) {
    if (n.t_) detail::report_hazard(Hazard::kVariableShift);
    return Tainted(static_cast<T>(a.v_ << n.v_), a.t_ || n.t_);
  }
  friend Tainted operator>>(Tainted a, Tainted n) {
    if (n.t_) detail::report_hazard(Hazard::kVariableShift);
    return Tainted(static_cast<T>(a.v_ >> n.v_), a.t_ || n.t_);
  }

  // Comparisons produce a TaintedBool: the comparison itself is fine, the
  // branch on it is the hazard.
  friend constexpr TaintedBool operator==(Tainted a, Tainted b) {
    return TaintedBool(a.v_ == b.v_, a.t_ || b.t_);
  }
  friend constexpr TaintedBool operator!=(Tainted a, Tainted b) {
    return TaintedBool(a.v_ != b.v_, a.t_ || b.t_);
  }
  friend constexpr TaintedBool operator<(Tainted a, Tainted b) {
    return TaintedBool(a.v_ < b.v_, a.t_ || b.t_);
  }
  friend constexpr TaintedBool operator>(Tainted a, Tainted b) {
    return TaintedBool(a.v_ > b.v_, a.t_ || b.t_);
  }
  friend constexpr TaintedBool operator<=(Tainted a, Tainted b) {
    return TaintedBool(a.v_ <= b.v_, a.t_ || b.t_);
  }
  friend constexpr TaintedBool operator>=(Tainted a, Tainted b) {
    return TaintedBool(a.v_ >= b.v_, a.t_ || b.t_);
  }

 private:
  constexpr Tainted(T v, bool t) : v_(v), t_(t) {}

  T v_{};
  bool t_ = false;
};

/// What a *naive* table lookup does with a secret index: reports
/// kTableIndex when the index is tainted (contrast with
/// crypto::detail::ct_table_lookup256, which scans).
template <class T>
Tainted<T> tainted_lookup(const T* table, Tainted<std::uint8_t> index) {
  if (index.tainted()) {
    detail::report_hazard(Hazard::kTableIndex);
    return Tainted<T>::secret(table[index.value()]);
  }
  return Tainted<T>(table[index.value()]);
}

}  // namespace convolve::analysis

namespace convolve::crypto::detail {

/// Bitslicing a tainted byte uses a tainted 16-lane plane word.
template <>
struct PlaneWordFor<convolve::analysis::Tainted<std::uint8_t>> {
  using type = convolve::analysis::Tainted<std::uint16_t>;
};

}  // namespace convolve::crypto::detail

namespace convolve::analysis {

/// Outcome of linting one algorithm: hazards recorded while running the
/// shipped detail/ template with tainted secrets, plus an output check
/// that the tainted instantiation computed the same bytes as production.
struct LintResult {
  std::string suite;
  std::vector<TaintFinding> findings;
  std::uint64_t hazard_count = 0;
  bool output_matches = false;

  bool clean() const { return hazard_count == 0 && output_matches; }
};

LintResult lint_aes256();
LintResult lint_chacha20();
LintResult lint_keccak_f1600();
LintResult lint_hmac_sha512();
LintResult lint_kyber_ntt();
LintResult lint_dilithium_ntt();

/// All suites above, in that order.
std::vector<LintResult> lint_all();

}  // namespace convolve::analysis
