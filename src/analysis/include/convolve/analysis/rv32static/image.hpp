// Input model for the static RV32 enclave binary analyzer.
//
// An ImageSpec is everything the analyzer may assume about an enclave
// before it runs: the code bytes and where they are loaded, the entry
// point and privilege mode, which data ranges hold secrets (the taint
// seed -- in the secure-boot flow this is the sealed key / model-weight
// region the measured image is provisioned with), and the physical
// memory size of the target machine. The analyzer never executes the
// image; everything else is derived by linear sweep + abstract
// interpretation (see absint.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/common/bytes.hpp"
#include "convolve/tee/pmp.hpp"
#include "convolve/tee/rv32_decode.hpp"

namespace convolve::analysis::rv32static {

/// Half-open address range [lo, hi).
struct AddrRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  bool contains(std::uint32_t addr) const { return addr >= lo && addr < hi; }
  bool empty() const { return hi <= lo; }
  /// Does [a, a+len) overlap this range? Saturating, len >= 1.
  bool overlaps(std::uint32_t a, std::uint64_t len) const {
    const std::uint64_t a_hi = static_cast<std::uint64_t>(a) + len;
    return !empty() && a < hi && a_hi > lo;
  }
};

struct ImageSpec {
  /// Raw little-endian code bytes; length must be a multiple of 4 (the
  /// analyzer models the RV32IM 4-byte instruction grid).
  Bytes code;
  /// Physical load address of code[0]; must be 4-byte aligned.
  std::uint32_t base = 0;
  /// Entry pc (absolute address).
  std::uint32_t entry = 0;
  /// Privilege the image executes at (decides the PMP policy view).
  tee::PrivMode mode = tee::PrivMode::kUser;
  /// Secret data ranges (absolute addresses): the taint seed. Loads that
  /// may read these bytes produce secret-tainted values.
  std::vector<AddrRange> secret;
  /// Physical memory size of the target machine (bounds every access).
  std::uint64_t memory_size = 1ull << 20;

  bool in_image(std::uint32_t pc) const {
    return pc >= base && pc < base + code.size();
  }
  bool aligned(std::uint32_t pc) const { return pc % 4 == 0; }
  std::size_t insn_count() const { return code.size() / 4; }
  /// Instruction index of an in-image, aligned pc.
  std::size_t index_of(std::uint32_t pc) const {
    return static_cast<std::size_t>(pc - base) / 4;
  }
  std::uint32_t pc_of(std::size_t index) const {
    return base + static_cast<std::uint32_t>(index * 4);
  }
  std::uint32_t word_at(std::size_t index) const {
    return load_le32(code.data() + index * 4);
  }
  bool secret_overlaps(std::uint32_t addr, std::uint64_t len) const {
    for (const auto& r : secret) {
      if (r.overlaps(addr, len)) return true;
    }
    return false;
  }
};

}  // namespace convolve::analysis::rv32static
