// Abstract domains for the RV32 static analyzer: an unsigned 32-bit
// interval domain for address/value ranges, and a may-taint bit for
// secret propagation. The product of the two is the per-register AbsVal;
// a RegState is the 32-register abstract machine state at one program
// point.
//
// Soundness contract (relied on by the differential harness in
// tests/analysis/test_rv32static_differential.cpp): for every concrete
// execution, the concrete value of register r at pc P lies inside the
// fixpoint interval of r at P, and if the dynamic taint oracle marks r
// tainted then the static taint bit is set. Transfer functions therefore
// only ever OVER-approximate: when an exact result is not cheaply
// representable they return top / keep the taint, never the reverse.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

namespace convolve::analysis::rv32static {

/// Closed unsigned interval [lo, hi] (lo <= hi always; wrap-around is
/// approximated by top). Top is [0, 2^32-1].
struct Interval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0xffffffffu;

  static constexpr Interval top() { return {0, 0xffffffffu}; }
  static constexpr Interval constant(std::uint32_t v) { return {v, v}; }

  bool is_top() const { return lo == 0 && hi == 0xffffffffu; }
  bool singleton() const { return lo == hi; }
  bool contains(std::uint32_t v) const { return v >= lo && v <= hi; }
  std::uint64_t width() const {
    return static_cast<std::uint64_t>(hi) - lo + 1;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  static Interval join(const Interval& a, const Interval& b) {
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
  }

  /// Standard widening: any bound that moved since `prev` jumps to the
  /// domain extreme, guaranteeing fixpoint termination on loops.
  static Interval widen(const Interval& prev, const Interval& next) {
    return {next.lo < prev.lo ? 0u : prev.lo,
            next.hi > prev.hi ? 0xffffffffu : prev.hi};
  }

  /// Intersection for branch-edge refinement; `empty` reports an
  /// infeasible edge (the caller then suppresses propagation).
  static Interval intersect(const Interval& a, const Interval& b,
                            bool& empty) {
    const std::uint32_t lo = std::max(a.lo, b.lo);
    const std::uint32_t hi = std::min(a.hi, b.hi);
    empty = lo > hi;
    return empty ? constant(0) : Interval{lo, hi};
  }

  // --- transfer helpers (all over-approximating) ---

  static Interval add(const Interval& a, const Interval& b) {
    const std::uint64_t lo = static_cast<std::uint64_t>(a.lo) + b.lo;
    const std::uint64_t hi = static_cast<std::uint64_t>(a.hi) + b.hi;
    if (hi > 0xffffffffull) return top();  // may wrap
    return {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
  }
  static Interval sub(const Interval& a, const Interval& b) {
    const std::int64_t lo = static_cast<std::int64_t>(a.lo) - b.hi;
    const std::int64_t hi = static_cast<std::int64_t>(a.hi) - b.lo;
    if (lo < 0) return top();  // may wrap
    return {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
  }
  /// x + signed immediate (the LOAD/STORE/ADDI address form).
  static Interval add_imm(const Interval& a, std::int32_t imm) {
    return imm >= 0 ? add(a, constant(static_cast<std::uint32_t>(imm)))
                    : sub(a, constant(static_cast<std::uint32_t>(-static_cast<std::int64_t>(imm))));
  }
  /// x & mask for a constant mask: [0, mask] always contains the result.
  static Interval and_mask(std::uint32_t mask) { return {0, mask}; }
  static Interval shift_left(const Interval& a, unsigned s) {
    if (s == 0) return a;
    if (static_cast<std::uint64_t>(a.hi) << s > 0xffffffffull) return top();
    return {a.lo << s, a.hi << s};
  }
  static Interval shift_right(const Interval& a, unsigned s) {
    return {a.lo >> s, a.hi >> s};  // monotone on unsigned
  }
};

/// Product value: interval x may-taint.
struct AbsVal {
  Interval iv = Interval::top();
  bool taint = false;

  static AbsVal constant(std::uint32_t v) { return {Interval::constant(v), false}; }
  static AbsVal top(bool taint = false) { return {Interval::top(), taint}; }

  friend bool operator==(const AbsVal& a, const AbsVal& b) {
    return a.iv == b.iv && a.taint == b.taint;
  }
};

/// 32-register abstract state. x0 is pinned to {0, untainted}.
struct RegState {
  std::array<AbsVal, 32> x{};

  RegState() { x[0] = AbsVal::constant(0); }

  const AbsVal& reg(unsigned i) const { return x[i]; }
  void set_reg(unsigned i, const AbsVal& v) {
    if (i != 0) x[i] = v;
  }

  friend bool operator==(const RegState& a, const RegState& b) {
    return a.x == b.x;
  }

  /// Pointwise join (interval join, taint OR).
  static RegState join(const RegState& a, const RegState& b) {
    RegState r;
    for (unsigned i = 1; i < 32; ++i) {
      r.x[i] = {Interval::join(a.x[i].iv, b.x[i].iv),
                a.x[i].taint || b.x[i].taint};
    }
    return r;
  }

  /// Pointwise widening against the previous fixpoint state.
  static RegState widen(const RegState& prev, const RegState& next) {
    RegState r;
    for (unsigned i = 1; i < 32; ++i) {
      r.x[i] = {Interval::widen(prev.x[i].iv, next.x[i].iv), next.x[i].taint};
    }
    return r;
  }
};

}  // namespace convolve::analysis::rv32static
