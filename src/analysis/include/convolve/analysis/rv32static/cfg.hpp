// CFG recovery over a linearly-swept RV32 image.
//
// The sweep decodes every 4-byte slot of the image with the SAME decoder
// the execution engines use (convolve/tee/rv32_decode.hpp), then forms
// basic blocks from leaders: the entry, every direct branch/jump target,
// every instruction after a terminator, and every resolved indirect
// (jalr) target the abstract interpretation discovered. Edges carry a
// kind so callers can distinguish fallthrough/branch/call/return/
// indirect flow; jal with rd=ra is classified as a call, jalr rd=x0
// rs1=ra as a return (the RISC-V ABI hint encodings).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "convolve/analysis/rv32static/image.hpp"

namespace convolve::analysis::rv32static {

enum class EdgeKind : std::uint8_t {
  kFallthrough,   // straight-line successor
  kBranchTaken,   // conditional branch, taken side
  kJump,          // jal that is not a call (plain goto)
  kCall,          // jal/jalr writing ra
  kReturn,        // jalr x0, ra, 0 to a resolved return site
  kIndirect,      // resolved jalr target that is neither call nor return
  kResume,        // ecall/ebreak fallthrough (embedder resumes at pc+4)
};

struct CfgEdge {
  std::uint32_t from_pc = 0;  // pc of the transferring instruction
  std::uint32_t to_pc = 0;    // target block leader
  EdgeKind kind = EdgeKind::kFallthrough;
};

struct BasicBlock {
  std::uint32_t first_pc = 0;
  std::uint32_t last_pc = 0;  // pc of the final instruction in the block
  bool reachable = false;
  std::size_t insn_count() const { return (last_pc - first_pc) / 4 + 1; }
};

struct Cfg {
  std::vector<BasicBlock> blocks;          // sorted by first_pc
  std::vector<CfgEdge> edges;
  /// Resolved jalr target sets, keyed by the jalr pc. A site missing from
  /// the map but present in unresolved_sites had an unbounded target set.
  std::map<std::uint32_t, std::vector<std::uint32_t>> indirect_targets;
  std::vector<std::uint32_t> unresolved_sites;

  const BasicBlock* block_at(std::uint32_t leader_pc) const {
    for (const auto& b : blocks) {
      if (b.first_pc == leader_pc) return &b;
    }
    return nullptr;
  }
  /// The block containing `pc`, if any.
  const BasicBlock* block_of(std::uint32_t pc) const {
    for (const auto& b : blocks) {
      if (pc >= b.first_pc && pc <= b.last_pc) return &b;
    }
    return nullptr;
  }
};

/// Recover the CFG. `indirect_targets`/`unresolved_sites` come from the
/// abstract interpretation (empty maps are fine: indirect flow is then
/// simply absent from the graph); `reachable` marks instruction indices
/// the fixpoint visited and is projected onto blocks.
Cfg recover_cfg(
    const ImageSpec& image,
    const std::map<std::uint32_t, std::vector<std::uint32_t>>& indirect_targets,
    const std::vector<std::uint32_t>& unresolved_sites,
    const std::vector<bool>& reachable);

}  // namespace convolve::analysis::rv32static
