// Fixpoint abstract interpretation over the RV32 image.
//
// The engine runs a worklist at instruction granularity (the image sizes
// under analysis are enclave-scale, a few thousand instructions, so the
// simplicity of per-instruction states beats basic-block batching). Each
// program point holds a RegState (interval x taint per register); memory
// taint is flow-insensitive: a monotone set of address ranges that may
// hold secret bytes, seeded with the ImageSpec's secret ranges and grown
// by stores of tainted values. Widening kicks in after `widen_after`
// visits of a point, so loops terminate with bounds at the domain
// extremes instead of iterating 2^32 times.
//
// Indirect jumps (jalr) are resolved from the abstract target interval:
// a set of <= max_indirect_candidates concrete targets is enumerated and
// becomes CFG edges; anything wider marks the site unresolved and makes
// EVERY instruction reachable (the sound over-approximation; the lint
// also emits kUnresolvedJump so the imprecision is visible, not silent).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "convolve/analysis/rv32static/domain.hpp"
#include "convolve/analysis/rv32static/image.hpp"

namespace convolve::analysis::rv32static {

struct AbsIntConfig {
  /// Visits of one program point before widening applies.
  unsigned widen_after = 8;
  /// Max concrete jalr targets enumerated from the abstract interval
  /// before the site is declared unresolved.
  std::uint64_t max_indirect_candidates = 64;
  /// Cap on tracked tainted-store ranges; overflow collapses to
  /// "all memory may be tainted" (sound, imprecise).
  std::size_t max_tainted_ranges = 16;
  /// Hard iteration cap (defense in depth; widening already guarantees
  /// termination). Exceeding it clears `converged` in the result.
  std::uint64_t max_iterations = 1u << 20;
};

/// Everything the fixpoint learned about one jalr site, recorded at the
/// site's final (fixpoint) in-state.
struct IndirectSite {
  std::uint32_t pc = 0;
  /// Enumerated concrete targets (bit 0 cleared), in-image or not.
  std::vector<std::uint32_t> targets;
  /// Target interval wider than max_indirect_candidates.
  bool unresolved = false;
  /// Some candidate target is in-image but not 4-byte aligned.
  bool may_misalign = false;
  /// Some candidate target falls outside the image.
  bool may_escape = false;
  /// The target depends on a secret-tainted register.
  bool secret_target = false;
};

struct AbsIntResult {
  /// Fixpoint in-state per instruction index (valid where reachable).
  std::vector<RegState> in_state;
  /// Instruction indices the fixpoint visited.
  std::vector<bool> reachable;
  /// Per-site indirect-jump record, keyed by jalr pc.
  std::map<std::uint32_t, IndirectSite> indirect;
  /// Resolved jalr target pc sets, keyed by jalr pc (projection of
  /// `indirect` for CFG recovery).
  std::map<std::uint32_t, std::vector<std::uint32_t>> indirect_targets;
  /// jalr sites whose target interval could not be bounded.
  std::vector<std::uint32_t> unresolved_sites;
  /// Memory ranges that may hold secret bytes at any time (includes the
  /// ImageSpec seed ranges).
  std::vector<AddrRange> tainted_memory;
  /// All memory may be tainted (range cap overflowed or a tainted store
  /// had an unbounded address).
  bool all_memory_tainted = false;
  std::uint64_t iterations = 0;
  bool converged = true;

  bool memory_may_be_tainted(std::uint32_t addr, std::uint64_t len) const {
    if (all_memory_tainted) return true;
    for (const auto& r : tainted_memory) {
      if (r.overlaps(addr, len)) return true;
    }
    return false;
  }
};

AbsIntResult interpret(const ImageSpec& image, const AbsIntConfig& config);

}  // namespace convolve::analysis::rv32static
