// Dynamic taint oracle for the differential soundness harness.
//
// Runs an image on the reference interpreter (Rv32Cpu::step) with a
// shadow state: one taint bit per register and per memory byte, seeded
// from the ImageSpec's secret ranges. Every retired instruction updates
// the shadow exactly as the dataflow executes it (loads OR over the
// shadow bytes read, stores strong-update the bytes written, ALU results
// inherit the OR of the operands actually read -- using the decoder's
// reads_rs1/reads_rs2 predicates, NOT the raw bit-fields, which hold
// immediate fragments for U/J-format instructions).
//
// The oracle emits an event stream: each secret-dependent branch /
// access / jump observed at runtime, plus the terminating trap if any.
// The harness asserts every event was flagged by the static analyzer at
// the corresponding pc (soundness); events never flagged statically are
// soundness violations, static findings never confirmed dynamically are
// imprecision (reported as a ratio, not a failure).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "convolve/analysis/rv32static/image.hpp"
#include "convolve/tee/machine.hpp"
#include "convolve/tee/rv32.hpp"

namespace convolve::analysis::rv32static {

enum class EventKind : std::uint8_t {
  kSecretBranch,  // retired conditional branch with a tainted operand
  kSecretLoad,    // retired load with a tainted address register
  kSecretStore,   // retired store with a tainted address register
  kSecretJump,    // retired jalr with a tainted target register
  kFault,         // terminating trap (cause in `cause`)
};

struct OracleEvent {
  EventKind kind = EventKind::kFault;
  /// pc of the instruction (for kFault: the trapping pc, which for fetch
  /// faults is the *target* of the transfer).
  std::uint32_t pc = 0;
  /// pc of the most recently retired instruction -- for fetch faults this
  /// is the control transfer that produced the bad target.
  std::uint32_t from_pc = 0;
  tee::TrapCause cause = tee::TrapCause::kEcall;  // valid for kFault only
};

struct OracleResult {
  std::vector<OracleEvent> events;
  /// In-image pcs of retired instructions (deduplicated, sorted).
  std::vector<std::uint32_t> visited;
  std::uint64_t steps = 0;
  /// The terminating trap, if the run did not exhaust max_steps.
  /// ecall/ebreak do NOT terminate the oracle (the embedder resumes).
  std::optional<tee::Trap> trap;
};

/// Execute `image` on `machine` (which must already hold the code bytes
/// at image.base and have its PMP programmed) for at most `max_steps`
/// retired instructions, tracking shadow taint. Tracking stops early if
/// execution leaves the image without faulting or a store mutates image
/// bytes (self-modifying code): both are outside the static model, whose
/// soundness contract assumes immutable code (W^X, PMP-enforced in
/// deployment).
OracleResult run_oracle(tee::Machine& machine, const ImageSpec& image,
                        std::uint64_t max_steps);

}  // namespace convolve::analysis::rv32static
