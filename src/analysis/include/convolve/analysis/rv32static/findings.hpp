// Findings emitted by the static RV32 analyzer, and the report that
// carries them together with the recovered CFG statistics.
//
// Every finding is anchored at the pc of the instruction it concerns.
// The soundness contract of the analyzer is phrased in terms of clean():
// if clean(pc) holds for every pc a dynamic execution visits, that
// execution exhibits no secret-dependent branch/access and no PMP fault
// (checked by the differential harness over fuzzed programs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace convolve::analysis::rv32static {

enum class FindingKind : std::uint8_t {
  kSecretBranch,      // conditional branch on a secret-tainted operand
  kSecretLoad,        // load whose address depends on a secret
  kSecretStore,       // store whose address depends on a secret
  kSecretJump,        // jalr whose target depends on a secret
  kPmpLoad,           // load that may violate the PMP policy / bounds
  kPmpStore,          // store that may violate the PMP policy / bounds
  kPmpFetch,          // reachable pc not executable under the policy
  kMisalignedTarget,  // control transfer to a pc % 4 != 0 (overlapping code)
  kOutOfImageTarget,  // control transfer that may leave the image
  kUnresolvedJump,    // jalr target set could not be bounded
  kIllegalInsn,       // reachable instruction decodes as illegal
  kUnreachableCode,   // basic block never reachable from the entry
};

const char* finding_name(FindingKind kind);

struct Finding {
  FindingKind kind = FindingKind::kSecretBranch;
  std::uint32_t pc = 0;
  /// For access findings: the abstract address range [lo, hi] involved.
  std::uint32_t addr_lo = 0;
  std::uint32_t addr_hi = 0;
  std::string detail;
};

/// CFG statistics for reporting/telemetry (structure lives in cfg.hpp).
struct CfgStats {
  std::size_t blocks = 0;
  std::size_t edges = 0;
  std::size_t reachable_blocks = 0;
  std::size_t indirect_sites = 0;
  std::size_t resolved_indirect_targets = 0;
};

struct StaticReport {
  std::vector<Finding> findings;
  CfgStats cfg;
  std::uint64_t fixpoint_iterations = 0;
  bool converged = true;
  /// Set when some jalr target set could not be bounded; reachability is
  /// then the sound over-approximation "every instruction".
  bool has_unresolved_indirect = false;

  bool any(FindingKind kind) const {
    for (const auto& f : findings) {
      if (f.kind == kind) return true;
    }
    return false;
  }
  bool flagged(std::uint32_t pc, FindingKind kind) const {
    for (const auto& f : findings) {
      if (f.pc == pc && f.kind == kind) return true;
    }
    return false;
  }
  /// No finding of any kind anchored at `pc`.
  bool clean(std::uint32_t pc) const {
    for (const auto& f : findings) {
      if (f.pc == pc && f.kind != FindingKind::kUnreachableCode) return false;
    }
    return true;
  }
  std::size_t count(FindingKind kind) const {
    std::size_t n = 0;
    for (const auto& f : findings) n += (f.kind == kind) ? 1 : 0;
    return n;
  }
};

}  // namespace convolve::analysis::rv32static
