// Top-level entry point of the static RV32 enclave analyzer: linear
// sweep + CFG recovery + fixpoint abstract interpretation + finding
// extraction, with an optional PMP policy lint.
//
// This is the "assurance before execution" leg of the CONVOLVE security
// story: the secure-boot flow measures an image, this pass proves
// properties of the measured bytes -- no secret-dependent control flow,
// no secret-indexed memory access, no access that can violate the PMP
// policy the security monitor will program -- before the enclave ever
// runs. Its verdicts are cross-checked against dynamic execution by the
// differential harness (every dynamically observed hazard must have been
// flagged; precision is tracked as a ratio, soundness is a hard gate).
#pragma once

#include <optional>

#include "convolve/analysis/rv32static/absint.hpp"
#include "convolve/analysis/rv32static/cfg.hpp"
#include "convolve/analysis/rv32static/findings.hpp"
#include "convolve/tee/pmp.hpp"

namespace convolve::analysis::rv32static {

struct AnalyzeOptions {
  AbsIntConfig absint;
  /// When set, every reachable memory access and fetch is checked against
  /// this PMP configuration at the image's privilege mode; accesses that
  /// may be denied (or fall outside memory_size) yield kPmp* findings.
  const tee::PmpUnit* pmp_policy = nullptr;
};

struct AnalysisResult {
  StaticReport report;
  Cfg cfg;
  AbsIntResult absint;
};

AnalysisResult analyze(const ImageSpec& image, const AnalyzeOptions& options);

/// Convenience overload with default options and no PMP policy.
inline AnalysisResult analyze(const ImageSpec& image) {
  return analyze(image, AnalyzeOptions{});
}

/// Can every access of `len` bytes starting anywhere in [lo, hi] be
/// proven allowed by `pmp` for (mode, type), within `memory_size`?
/// Walks the uniform-decision windows from PmpUnit::check_region, so the
/// cost is proportional to the number of distinct policy windows, not to
/// the interval width. Used by the PMP lint and exposed for tests.
bool interval_access_allowed(const tee::PmpUnit& pmp, std::uint64_t lo,
                             std::uint64_t hi, std::uint64_t len,
                             tee::PrivMode mode, tee::AccessType type,
                             std::uint64_t memory_size);

}  // namespace convolve::analysis::rv32static
