// The production AES S-box program as a masking::Circuit netlist.
//
// detail::aes_sbox_planes is a template over the word type; instantiating
// it with a wire-builder type that records every ^ / & / ~ as a gate turns
// the exact straight-line program production AES executes into the IR the
// probing verifier and the AGEMA-style masking transform consume. There is
// no hand-transcribed second copy of the S-box to drift out of sync.
#pragma once

#include "convolve/masking/circuit.hpp"

namespace convolve::analysis {

/// Netlist of the bitsliced AES S-box (36 AND / 155 XOR / 4 NOT, plus the
/// 8 inputs). Input gate i carries bit 7-i of the S-box input byte (MSB
/// first); output j of the circuit is bit 7-j of S(x).
masking::Circuit aes_sbox_circuit();

/// Convenience for tests: evaluate the netlist on a byte.
std::uint8_t aes_sbox_circuit_eval(const masking::Circuit& circuit,
                                   std::uint8_t x);

}  // namespace convolve::analysis
