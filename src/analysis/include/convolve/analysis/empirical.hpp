// Static-vs-empirical cross-check: the symbolic probing verifier and the
// sca TVLA engine grading the same netlist.
//
// Following the verification-stack framing (static and dynamic leakage
// analysis should cross-check each other), this bridge takes one masked
// circuit and asks both oracles the same question at order d:
//
//   static    -- verify_probing_symbolic at probe order d;
//   empirical -- noiseless fixed-vs-random TVLA at statistical order d
//                (d = 1: t-test on means; d = 2: on centered squares).
//
// For a *leaky* circuit |t| grows with the trace count; for a secure one
// it stays below the 4.5 threshold. `agree` records whether the two
// verdicts coincide -- the property tests/sca/test_cross_check.cpp pins
// down for DOM-AND at masking orders 0, 1 and 2.
#pragma once

#include <cstdint>

#include "convolve/analysis/leakage_verify.hpp"
#include "convolve/sca/tvla.hpp"

namespace convolve::analysis {

struct CrossCheckOptions {
  int n_traces = 20000;     // empirical trace budget (total, both classes)
  double threshold = 4.5;   // TVLA pass/fail bar
  std::uint64_t seed = 0xCC05;
  /// Fixed-class plain value; ~0 selects all-ones (maximal activation).
  std::uint32_t fixed_value = ~0u;
  SymbolicOptions symbolic;
};

struct CrossCheckReport {
  // Static side.
  Verdict static_verdict = Verdict::kSecure;
  bool static_secure = true;
  // Empirical side.
  sca::TvlaReport tvla;
  double max_abs_t = 0.0;  // at the requested statistical order
  bool empirical_leak = false;
  // Do the two oracles agree? (kPotentialLeak counts as not-secure.)
  bool agree = false;
};

/// Cross-check `masked` at order `order` (1 or 2): run the symbolic
/// verifier with `order` probes and a noiseless TVLA judged at statistical
/// order `order`.
CrossCheckReport cross_check_probing_vs_tvla(
    const masking::MaskedCircuit& masked, int plain_inputs, unsigned order,
    const CrossCheckOptions& options = {});

}  // namespace convolve::analysis
