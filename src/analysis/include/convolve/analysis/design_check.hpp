// Post-search verification bridge between HADES exploration and the
// symbolic probing verifier.
//
// HADES picks a design point (including a masking order) from cost-model
// predictions; the cost model trusts that the masking transform delivers
// the claimed order. This bridge closes the loop: take the explored
// result, instantiate the AGEMA-style masked netlist at the chosen order,
// and statically verify d-probing security of what would actually be
// taped out.
#pragma once

#include "convolve/analysis/leakage_verify.hpp"
#include "convolve/hades/search.hpp"
#include "convolve/masking/circuit.hpp"

namespace convolve::analysis {

struct DesignCheckReport {
  /// Masking order the design was instantiated at.
  unsigned order = 0;
  /// Number of simultaneous probes verified against.
  unsigned probe_order = 0;
  /// Gate count of the masked netlist that was checked.
  std::size_t masked_gates = 0;
  SymbolicReport probing;

  bool verified() const { return probing.verdict == Verdict::kSecure; }
};

/// Mask `plain` at the order the search selected (result.order) and run
/// the symbolic probing verifier. `probe_order` = 0 means "verify at the
/// design's own order d".
DesignCheckReport verify_explored_design(const masking::Circuit& plain,
                                         const hades::SearchResult& result,
                                         const SymbolicOptions& options = {},
                                         unsigned probe_order = 0);

}  // namespace convolve::analysis
