// Symbolic (static) probing-security verification.
//
// The exhaustive checker in convolve/masking/probing.hpp decides d-probing
// security by enumerating every mask/randomness assignment -- exact but
// exponential in the free bits. This verifier instead computes, per wire, a
// symbolic *footprint*: the exact XOR-parity over input-share and random
// atoms (so linear cancellation is tracked, maskVerif-style) plus the
// symmetric-difference set of nonlinear AND terms. A probe set can then be
// discharged without any simulation:
//
//  * coverage rejection -- if the union of footprints misses at least one
//    share of every secret, the observation is a function of at most d
//    shares of each independently-shared input and therefore simulatable
//    without the secret;
//  * blinding-random simplification -- an observation carrying a random
//    linearly, where that random occurs in no other observation and not in
//    the observation's own nonlinear core, is uniform and independent and
//    can be dropped;
//  * exact fallback -- anything still unresolved is decided by exhaustive
//    enumeration restricted to the probe's fan-in cone, which is orders of
//    magnitude smaller than the whole circuit.
//
// The glitch-extended (robust probing) mode models combinational glitches:
// a probe observes every input/random/register atom in the transitive
// fan-in up to the nearest register boundary (GateKind::kReg), each with
// its full footprint.
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/masking/circuit.hpp"
#include "convolve/masking/probing.hpp"

namespace convolve::analysis {

enum class Verdict {
  kSecure,         // proven: every probe set discharged
  kLeak,           // counterexample confirmed by exact cone enumeration
  kPotentialLeak,  // a probe set survived all sound filters but its cone
                   // exceeded the fallback budget -- unresolved, not proven
};

struct SymbolicOptions {
  /// Model combinational glitches: probes observe all atoms up to the
  /// nearest register boundary.
  bool glitch_extended = false;
  /// Confirm or refute unresolved probe sets by exhaustive enumeration of
  /// the probe cone (exact); disable to get a pure-static over-approximate
  /// answer.
  bool exhaustive_fallback = true;
  /// log2 of the maximum work one fallback may spend: secrets x mask/random
  /// assignments x cone gates evaluated. Beyond this the set is left
  /// unresolved and the verdict degrades to kPotentialLeak.
  int fallback_budget_bits = 24;
  /// log2 of the cumulative work budget across *all* fallbacks in one
  /// verification. Bounds total runtime on large circuits: once spent,
  /// remaining unresolved sets degrade to kPotentialLeak without
  /// enumeration. Small circuits never come close, so differential tests
  /// against the exhaustive checker stay exact.
  int fallback_total_bits = 32;
};

struct SymbolicReport {
  Verdict verdict = Verdict::kSecure;
  bool secure = true;
  /// The probe set that produced a kLeak / kPotentialLeak verdict.
  std::vector<int> probes;
  /// For kLeak: the two secret assignments the probes distinguish.
  std::vector<std::uint8_t> secret_a;
  std::vector<std::uint8_t> secret_b;
  std::uint64_t probe_sets_checked = 0;
  /// Probe sets discharged because they miss a share of every secret.
  std::uint64_t coverage_rejected = 0;
  /// Probe sets discharged by the blinding-random simplification.
  std::uint64_t simplified_away = 0;
  /// Probe sets decided by exact cone enumeration.
  std::uint64_t fallback_checked = 0;

  /// Counterexample-shaped view so tests can cross-check against (and
  /// replay with) the exhaustive checker's machinery.
  masking::ProbingReport to_probing_report() const;
};

/// Statically verify d-probing security of `masked` (as produced by
/// mask_circuit or hpc2_and_gadget). `plain_inputs` is the number of
/// original unmasked inputs; `probe_order` the number of simultaneous
/// probes d. Sound: kSecure is never returned for a leaky circuit. Exact
/// whenever every unresolved probe cone fits the fallback budget.
SymbolicReport verify_probing_symbolic(const masking::MaskedCircuit& masked,
                                       int plain_inputs, unsigned probe_order,
                                       const SymbolicOptions& options = {});

}  // namespace convolve::analysis
