#include "convolve/analysis/empirical.hpp"

#include <stdexcept>

namespace convolve::analysis {

CrossCheckReport cross_check_probing_vs_tvla(
    const masking::MaskedCircuit& masked, int plain_inputs, unsigned order,
    const CrossCheckOptions& options) {
  if (order < 1 || order > 2) {
    throw std::invalid_argument("cross_check: statistical order must be 1 or 2");
  }
  CrossCheckReport report;

  const SymbolicReport symbolic =
      verify_probing_symbolic(masked, plain_inputs, order, options.symbolic);
  report.static_verdict = symbolic.verdict;
  report.static_secure = symbolic.verdict == Verdict::kSecure;

  sca::MaskedTraceTarget target(
      masked, plain_inputs,
      sca::TraceConfig{sca::PowerModel::kHammingWeight, /*noise_sigma=*/0.0});
  std::uint32_t fixed = options.fixed_value;
  if (fixed == ~0u) {
    fixed = plain_inputs >= 32 ? ~0u : (1u << plain_inputs) - 1u;
  }
  sca::TvlaConfig tvla_config;
  tvla_config.threshold = options.threshold;
  tvla_config.seed = options.seed;
  report.tvla =
      sca::tvla_fixed_vs_random(target, fixed, options.n_traces, tvla_config);
  report.max_abs_t =
      order == 1 ? report.tvla.max_abs_t1 : report.tvla.max_abs_t2;
  report.empirical_leak = report.max_abs_t > options.threshold;
  report.agree = report.static_secure == !report.empirical_leak;
  return report;
}

}  // namespace convolve::analysis
