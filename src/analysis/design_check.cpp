#include "convolve/analysis/design_check.hpp"

namespace convolve::analysis {

DesignCheckReport verify_explored_design(const masking::Circuit& plain,
                                         const hades::SearchResult& result,
                                         const SymbolicOptions& options,
                                         unsigned probe_order) {
  DesignCheckReport report;
  report.order = result.order;
  report.probe_order = probe_order == 0 ? result.order : probe_order;

  const masking::MaskedCircuit masked =
      masking::mask_circuit(plain, report.order);
  report.masked_gates = masked.circuit.num_gates();
  report.probing = verify_probing_symbolic(masked, plain.num_inputs(),
                                           report.probe_order, options);
  return report;
}

}  // namespace convolve::analysis
