#include "convolve/framework/profile.hpp"

namespace convolve::framework {

std::string SecurityProfile::validate() const {
  if (physical_access && masking_order == 0) {
    return "profile '" + name +
           "': a physical-access adversary requires masking order >= 1";
  }
  if (physical_access && !cim_countermeasures) {
    return "profile '" + name +
           "': a physical-access adversary requires CIM countermeasures";
  }
  if (quantum_adversary && !post_quantum_crypto) {
    return "profile '" + name +
           "': a quantum adversary requires post-quantum crypto";
  }
  return {};
}

SecurityProfile speech_quality_enhancement() {
  SecurityProfile p;
  p.name = "speech-quality-enhancement";
  p.physical_access = true;     // worn device
  p.quantum_adversary = false;  // short data lifetime (live audio)
  p.post_quantum_crypto = false;
  p.masking_order = 1;
  p.tee_enclaves = true;           // protect the vendor's model
  p.cim_countermeasures = true;
  p.composable_execution = false;  // single audio pipeline
  p.realtime_kernel = true;        // hard audio deadlines
  return p;
}

SecurityProfile acoustic_scene_analysis() {
  SecurityProfile p;
  p.name = "acoustic-scene-analysis";
  p.physical_access = true;
  p.quantum_adversary = true;  // recorded scenes stay sensitive for years
  p.post_quantum_crypto = true;
  p.masking_order = 1;
  p.tee_enclaves = true;  // online learning on private audio
  p.cim_countermeasures = true;
  p.composable_execution = true;  // analysis + comms share the SoC
  p.realtime_kernel = false;
  return p;
}

SecurityProfile traffic_supervision() {
  SecurityProfile p;
  p.name = "traffic-supervision";
  p.physical_access = true;   // roadside, reachable
  p.quantum_adversary = true; // 15+ year service life
  p.post_quantum_crypto = true;
  p.masking_order = 2;        // certified against DPA: higher order
  p.tee_enclaves = true;
  p.cim_countermeasures = true;
  p.composable_execution = true;  // mixed-criticality: detection + logging
  p.realtime_kernel = true;
  return p;
}

SecurityProfile satellite_imagery() {
  SecurityProfile p;
  p.name = "satellite-imagery";
  // The paper's example: no physical access after launch.
  p.physical_access = false;
  p.quantum_adversary = true;  // long-term secure channel to the controller
  p.post_quantum_crypto = true;
  p.masking_order = 0;          // shed the masking overhead entirely
  p.tee_enclaves = true;        // remote attestation of the payload software
  p.cim_countermeasures = false;
  p.composable_execution = false;
  p.realtime_kernel = true;     // attitude-control style deadlines
  return p;
}

}  // namespace convolve::framework
