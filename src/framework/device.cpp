#include "convolve/framework/device.hpp"

#include <stdexcept>

#include "convolve/hades/library.hpp"
#include "convolve/hades/search.hpp"

namespace convolve::framework {

EdgeDevice::EdgeDevice(const SecurityProfile& profile,
                       ByteView device_entropy32)
    : profile_(profile) {
  const std::string violation = profile_.validate();
  if (!violation.empty()) throw std::invalid_argument(violation);

  // --- Attestation chain -------------------------------------------------
  const tee::Bootrom bootrom({profile_.post_quantum_crypto},
                             tee::DeviceKeys::from_entropy(device_entropy32));
  const Bytes sm_image(8192, 0x5C);
  boot_ = bootrom.boot(sm_image);
  cost_.bootrom_bytes = bootrom.size_bytes();
  cost_.attestation_report_bytes = profile_.post_quantum_crypto
                                       ? tee::kPqReportSize
                                       : tee::kClassicalReportSize;
  cost_.sm_stack_bytes =
      profile_.post_quantum_crypto ? 128 * 1024 : 8 * 1024;

  if (profile_.tee_enclaves) {
    machine_ = std::make_unique<tee::Machine>(1 << 20);
    tee::SmConfig sm_config;
    sm_config.stack_bytes = cost_.sm_stack_bytes;
    sm_ = std::make_unique<tee::SecurityMonitor>(*machine_, boot_, sm_config);
  }

  // --- Payload-encryption core: HADES area optimum at the profile order --
  const auto aes = hades::library::aes256();
  const auto best = hades::exhaustive_search(*aes, profile_.masking_order,
                                             hades::Goal::kArea);
  cost_.aes_area_ge = best.metrics.area_ge;
  cost_.aes_latency_cc = best.metrics.latency_cc;
  cost_.aes_rand_bits_per_cycle = best.metrics.rand_bits;

  const auto baseline =
      hades::exhaustive_search(*aes, 0, hades::Goal::kArea);
  cost_.area_multiplier = best.metrics.area_ge / baseline.metrics.area_ge;
}

tee::SecurityMonitor& EdgeDevice::security_monitor() {
  if (!sm_) {
    throw std::logic_error("EdgeDevice: profile '" + profile_.name +
                           "' did not select TEE enclaves");
  }
  return *sm_;
}

cim::CimMacro EdgeDevice::make_cim_macro(std::vector<int> weights) const {
  cim::MacroConfig config;
  config.n_rows = static_cast<int>(weights.size());
  if (profile_.cim_countermeasures) {
    config.shuffle_rows = true;
    config.dummy_rows = 32;
  }
  return cim::CimMacro(config, std::move(weights));
}

}  // namespace convolve::framework
