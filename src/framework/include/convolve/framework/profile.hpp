// Modular security profiles -- CONVOLVE core objective 3.
//
// "End-users must be able to adapt the security framework to their
// individual use-case and requirements and shed any unnecessary overhead."
// A SecurityProfile selects which defenses a deployment pays for; the four
// presets correspond to the project's use-cases (Section I) and encode the
// paper's own reasoning, e.g. "chips deployed to space are not susceptible
// to side-channel based IP theft, but have a strong need for long-term
// secure communication channels with a remote controller."
#pragma once

#include <string>

namespace convolve::framework {

struct SecurityProfile {
  std::string name;

  // Adversary assumptions this deployment defends against.
  bool physical_access = true;    // side-channel attacker at the device
  bool quantum_adversary = true;  // harvest-now-decrypt-later horizon

  // Selected mechanisms (each costs area/latency/energy).
  bool post_quantum_crypto = true;   // hybrid Ed25519 + ML-DSA chain
  unsigned masking_order = 1;        // 0 = unmasked crypto cores
  bool tee_enclaves = true;          // PMP-isolated enclaves + attestation
  bool cim_countermeasures = true;   // shuffling + dummy rows on CIM macros
  bool composable_execution = false; // VEP/TDM fabric for real-time apps
  bool realtime_kernel = false;      // PMP-hardened RTOS

  /// Consistency rules: a physical-access adversary requires masking
  /// order >= 1 and CIM countermeasures; a quantum adversary requires PQC.
  /// Returns an explanation of the first violation, or empty if coherent.
  std::string validate() const;
};

// The four CONVOLVE use-case presets ------------------------------------

/// Hearing-aid style speech enhancement: worn device (physical access),
/// hard real-time audio path, battery-critical.
SecurityProfile speech_quality_enhancement();

/// Acoustic scene analysis: mains-powered smart sensor; physical access
/// plausible; online learning on private audio.
SecurityProfile acoustic_scene_analysis();

/// Traffic supervision: roadside unit, tamper-resistant housing but
/// long service life and certified real-time guarantees.
SecurityProfile traffic_supervision();

/// Satellite imagery: no physical access after launch (no side-channel IP
/// theft -- the paper's own example), but decades-long secure channel to
/// the remote controller.
SecurityProfile satellite_imagery();

}  // namespace convolve::framework
