// Edge-device assembly from a security profile.
//
// Ties the subsystems together: given a SecurityProfile, the builder
// provisions device keys, runs the measured boot (classical or hybrid),
// stands up the security monitor when TEE support is selected, queries
// HADES for the AES-256 payload-encryption core that satisfies the
// profile's masking order, and configures the CIM macro countermeasures.
// The resulting CostReport quantifies exactly what each shed or added
// feature costs -- the "100x energy / modular security" trade the paper
// is about, made queryable.
#pragma once

#include <memory>
#include <optional>

#include "convolve/cim/macro.hpp"
#include "convolve/framework/profile.hpp"
#include "convolve/hades/metrics.hpp"
#include "convolve/tee/security_monitor.hpp"

namespace convolve::framework {

/// What the selected profile costs, per mechanism.
struct CostReport {
  // Payload-crypto core (HADES area-optimal AES-256 at the profile order).
  double aes_area_ge = 0.0;
  double aes_latency_cc = 0.0;
  double aes_rand_bits_per_cycle = 0.0;

  // Attestation chain.
  std::size_t bootrom_bytes = 0;
  std::size_t attestation_report_bytes = 0;
  std::size_t sm_stack_bytes = 0;

  // Relative multipliers vs. the all-features-off baseline.
  double area_multiplier = 1.0;
};

class EdgeDevice {
 public:
  /// Build a device for the profile. Throws std::invalid_argument when
  /// the profile fails validation (inconsistent with its adversary).
  EdgeDevice(const SecurityProfile& profile, ByteView device_entropy32);

  const SecurityProfile& profile() const { return profile_; }
  const CostReport& cost() const { return cost_; }

  /// TEE access (only when the profile selected enclaves).
  bool has_tee() const { return sm_ != nullptr; }
  tee::SecurityMonitor& security_monitor();
  const tee::BootRecord& boot_record() const { return boot_; }

  /// A CIM macro configured per the profile's countermeasure selection,
  /// loaded with the given model weights.
  cim::CimMacro make_cim_macro(std::vector<int> weights) const;

 private:
  SecurityProfile profile_;
  tee::BootRecord boot_;
  std::unique_ptr<tee::Machine> machine_;
  std::unique_ptr<tee::SecurityMonitor> sm_;
  CostReport cost_;
};

}  // namespace convolve::framework
