#include "convolve/tee/service/enclave_service.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace convolve::tee::service {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

compsoc::TdmAdmission make_admission(const ServiceConfig& config) {
  compsoc::TdmAdmission admission(
      {config.tdm_period, config.tdm_max_wait});
  if (config.tenant_slots.empty()) {
    // Single-tenant service: tenant 0 owns the whole wheel, so admission
    // only ever sheds on the pending-queue cap.
    std::vector<int> all(static_cast<std::size_t>(config.tdm_period));
    for (int s = 0; s < config.tdm_period; ++s) {
      all[static_cast<std::size_t>(s)] = s;
    }
    admission.add_tenant(all);
  } else {
    for (const auto& slots : config.tenant_slots) admission.add_tenant(slots);
  }
  return admission;
}

// Fork id for request `seq`: unique per request, 0 stays reserved for the
// master's pre-snapshot seal blobs.
std::uint32_t fork_id_for(std::uint64_t seq) {
  return static_cast<std::uint32_t>(seq + 1);
}

std::uint8_t clamp_u8(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

// Flight-recorder attribution for one request. Threaded through fork() ->
// SM in ON and OFF builds alike (attribution is not telemetry).
RequestContext request_ctx(const Request& req, std::uint64_t seq,
                           std::uint32_t fork_id) {
  RequestContext ctx;
  ctx.seq = seq;
  ctx.fork_id = fork_id;
  ctx.tenant = clamp_u8(req.tenant);
  ctx.enclave = clamp_u8(req.enclave);
  return ctx;
}

#if CONVOLVE_TELEMETRY_ENABLED
telemetry::Counter t_req_run{"service.requests.run"};
telemetry::Counter t_req_attest{"service.requests.attest"};
telemetry::Counter t_req_seal{"service.requests.seal"};
telemetry::Counter t_req_unseal{"service.requests.unseal"};
telemetry::Counter t_rejected{"service.rejected"};
telemetry::Counter t_forks{"service.forks"};
telemetry::Histogram t_latency{"service.latency_ns"};
telemetry::Histogram t_fork{"service.fork_ns"};
// Per-tenant labeled families (tenant id -> slot; out-of-range tenants
// land in the .overflow member). One relaxed add on the submit hot path;
// the latency family is recorded in the serial drain fold only.
telemetry::CounterFamily t_tenant_submitted{"service.tenant.submitted"};
telemetry::CounterFamily t_tenant_shed{"service.tenant.shed"};
telemetry::CounterFamily t_tenant_ok{"service.tenant.ok"};
telemetry::CounterFamily t_tenant_fault{"service.tenant.fault"};
telemetry::HistogramFamily t_tenant_latency{"service.tenant.latency_ns"};

telemetry::Counter& kind_counter(RequestKind kind) {
  switch (kind) {
    case RequestKind::kRun: return t_req_run;
    case RequestKind::kAttest: return t_req_attest;
    case RequestKind::kSeal: return t_req_seal;
    case RequestKind::kUnseal: return t_req_unseal;
  }
  return t_req_run;
}

// request_done event code: op kind in the high nibble, terminal status in
// the low nibble (obs_report's decode table mirrors this).
std::uint8_t request_done_code(RequestKind kind, Status status) {
  return static_cast<std::uint8_t>((static_cast<unsigned>(kind) << 4) |
                                   static_cast<unsigned>(status));
}
#endif

}  // namespace

EnclaveService::EnclaveService(MachineSnapshot snapshot,
                               const ServiceConfig& config)
    : snapshot_(std::move(snapshot)),
      config_(config),
      admission_(make_admission(config)),
      rng_(config.seed) {}

std::uint64_t EnclaveService::submit(const Request& request) {
  const std::uint64_t seq = next_seq_++;
  ++stats_.submitted;
  CONVOLVE_TELEMETRY_ONLY(kind_counter(request.kind).add();)
  CONVOLVE_TELEMETRY_ONLY(t_tenant_submitted.add(request.tenant);)

  // Rejections are terminal: they emit the request's request_done event
  // here (drain() never sees them), so every submitted seq has exactly
  // one terminal event.
  auto reject = [&](Status status, int wait_slots, const char* why) {
    Response r;
    r.status = status;
    r.seq = seq;
    r.wait_slots = wait_slots;
    r.error = why;
    rejected_.push_back(std::move(r));
    ++stats_.rejected;
    CONVOLVE_COUNTER_ADD(t_rejected);
    CONVOLVE_TELEMETRY_ONLY({
      const RequestContext ctx = request_ctx(request, seq, 0);
      telemetry::record_event(telemetry::EventKind::kRequestDone, ctx,
                              request_done_code(request.kind, status), 0);
    })
  };

  if (request.tenant < 0 || request.tenant >= admission_.tenant_count()) {
    reject(Status::kError, 0, "unknown tenant");
    return seq;
  }
  if (pending_.size() >= config_.max_pending) {
    CONVOLVE_RECORD_EVENT(kTdmShed, request_ctx(request, seq, 0), 1, 0);
    CONVOLVE_TELEMETRY_ONLY(t_tenant_shed.add(request.tenant);)
    reject(Status::kRejected, 0, "pending queue full");
    return seq;
  }
  const auto decision = admission_.admit(request.tenant);
  if (!decision.admitted) {
    CONVOLVE_RECORD_EVENT(kTdmShed, request_ctx(request, seq, 0), 0,
                          decision.wait_slots);
    CONVOLVE_TELEMETRY_ONLY(t_tenant_shed.add(request.tenant);)
    reject(Status::kRejected, decision.wait_slots, "no TDM slot in window");
    return seq;
  }
  ++stats_.admitted;
  stats_.wait_slots_total +=
      static_cast<std::uint64_t>(decision.wait_slots);
  pending_.push_back({request, seq, decision.wait_slots});
  return seq;
}

Response EnclaveService::execute(const PendingRequest& item) const {
  const Request& req = item.request;
  const RequestContext ctx =
      request_ctx(req, item.seq, fork_id_for(item.seq));
  CONVOLVE_TRACE_SPAN_ARG("service.execute", "seq", item.seq);
  Response r;
  r.seq = item.seq;
  r.wait_slots = item.wait_slots;
  const std::uint64_t t0 = now_ns();
  try {
    EnclaveWorld world = snapshot_.fork(ctx.fork_id, ctx);
    r.fork_ns = now_ns() - t0;
    const auto& enclave = world.sm->enclave(req.enclave);  // throws if bad
    switch (req.kind) {
      case RequestKind::kRun: {
        if (std::uint64_t(req.input_offset) + req.input_len > enclave.size ||
            std::uint64_t(req.result_offset) + req.result_len >
                enclave.size) {
          throw std::invalid_argument("run: window outside enclave region");
        }
        if (req.input_len > 0) {
          // Deterministic per-request input: the split(seq) stream, staged
          // by the SM (M-mode) before the enclave starts.
          Bytes input(req.input_len);
          rng_.split(item.seq).fill_bytes(input);
          world.machine->store(enclave.base + req.input_offset, input,
                               PrivMode::kMachine);
        }
        const Rv32Cpu::RunResult run = world.sm->run_enclave_program(
            req.enclave, req.max_steps, req.entry_offset);
        r.steps = run.steps;
        r.trap = run.trap;
        if (!run.trap) {
          r.status = Status::kStepLimit;
        } else if (run.trap->cause == TrapCause::kEcall) {
          r.status = Status::kOk;
        } else {
          r.status = Status::kTrap;
        }
        if (req.result_len > 0) {
          r.data = world.machine->load(enclave.base + req.result_offset,
                                       req.result_len, PrivMode::kMachine);
        }
        break;
      }
      case RequestKind::kAttest:
        r.report = world.sm->attest(req.enclave, req.payload);
        r.status = Status::kOk;
        break;
      case RequestKind::kSeal:
        r.data = world.sm->seal(req.enclave, req.payload);
        r.status = Status::kOk;
        break;
      case RequestKind::kUnseal: {
        auto plain = world.sm->unseal(req.enclave, req.payload);
        if (plain) {
          r.data = std::move(*plain);
          r.status = Status::kOk;
        } else {
          r.status = Status::kError;
          r.error = "unseal: authentication failed";
        }
        break;
      }
    }
    CONVOLVE_TELEMETRY_ONLY({
      const auto pages =
          static_cast<std::uint64_t>(world.machine->cow_pages_materialized());
      if (pages > 0) {
        telemetry::record_event(telemetry::EventKind::kCowBurst, ctx, 0,
                                pages);
      }
    })
  } catch (const std::exception& e) {
    r.status = Status::kError;
    r.error = e.what();
  }
  r.latency_ns = now_ns() - t0;
  CONVOLVE_RECORD_EVENT(kRequestDone, ctx,
                        request_done_code(req.kind, r.status), r.steps);
  return r;
}

std::vector<Response> EnclaveService::drain() {
  CONVOLVE_TRACE_SPAN("service.drain");
  std::vector<Response> executed(pending_.size());
  par::parallel_for(pending_.size(), [&](std::uint64_t i) {
    executed[i] = execute(pending_[i]);
  });

  // Serial stats fold in submission order: deterministic counts, and the
  // histograms see every sample exactly once without contention. The
  // per-tenant telemetry families record the same samples as the global
  // histograms, so obs_report can rebuild this fold from a metrics export.
  for (std::size_t i = 0; i < executed.size(); ++i) {
    const Response& r = executed[i];
    ++stats_.completed;
    ++stats_.forks;
    switch (r.status) {
      case Status::kOk: ++stats_.ok; break;
      case Status::kTrap: ++stats_.traps; break;
      case Status::kStepLimit: ++stats_.step_limited; break;
      case Status::kError: ++stats_.errors; break;
      case Status::kRejected: break;  // not produced by execute()
    }
    stats_.latency_ns.record(r.latency_ns);
    stats_.fork_ns.record(r.fork_ns);
    CONVOLVE_COUNTER_ADD(t_forks);
    CONVOLVE_HISTOGRAM_RECORD(t_latency, r.latency_ns);
    CONVOLVE_HISTOGRAM_RECORD(t_fork, r.fork_ns);
    CONVOLVE_TELEMETRY_ONLY({
      const int tenant = pending_[i].request.tenant;
      if (r.status == Status::kOk) {
        t_tenant_ok.add(tenant);
      } else {
        t_tenant_fault.add(tenant);
      }
      t_tenant_latency.record(tenant, r.latency_ns);
    })
  }

  // Merge executed + rejected into submission order (both already sorted
  // by seq -- submit appends monotonically to each).
  std::vector<Response> out;
  out.reserve(executed.size() + rejected_.size());
  std::size_t e = 0, j = 0;
  while (e < executed.size() || j < rejected_.size()) {
    if (j >= rejected_.size() ||
        (e < executed.size() && executed[e].seq < rejected_[j].seq)) {
      out.push_back(std::move(executed[e++]));
    } else {
      out.push_back(std::move(rejected_[j++]));
    }
  }
  pending_.clear();
  rejected_.clear();
  return out;
}

std::vector<Response> EnclaveService::run_batch(
    const std::vector<Request>& requests) {
  for (const Request& r : requests) submit(r);
  return drain();
}

}  // namespace convolve::tee::service
