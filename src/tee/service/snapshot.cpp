#include "convolve/tee/service/snapshot.hpp"

namespace convolve::tee::service {

MachineSnapshot MachineSnapshot::freeze(const Machine& machine,
                                        const SecurityMonitor& sm) {
  return MachineSnapshot(machine.freeze(), sm.snapshot());
}

EnclaveWorld MachineSnapshot::fork(std::uint32_t fork_id) const {
  EnclaveWorld world;
  world.machine = std::make_unique<Machine>(image_);
  world.sm = std::make_unique<SecurityMonitor>(*world.machine, sm_, fork_id);
  return world;
}

EnclaveWorld MachineSnapshot::fork(std::uint32_t fork_id,
                                   const RequestContext& ctx) const {
  EnclaveWorld world = fork(fork_id);
  world.sm->set_request_context(ctx);
  return world;
}

}  // namespace convolve::tee::service
