#include "convolve/tee/pmp.hpp"

#include <algorithm>
#include <stdexcept>

namespace convolve::tee {

void PmpUnit::set_entry(int index, const PmpEntry& entry) {
  if (index < 0 || index >= kEntries) {
    throw std::out_of_range("PmpUnit::set_entry: index");
  }
  if (entries_[static_cast<std::size_t>(index)].locked) {
    throw std::logic_error("PmpUnit::set_entry: entry is locked");
  }
  // A locked TOR entry also locks the previous entry's address register.
  if (index + 1 < kEntries) {
    const PmpEntry& next = entries_[static_cast<std::size_t>(index) + 1];
    if (next.locked && next.mode == PmpAddressMode::kTor) {
      throw std::logic_error(
          "PmpUnit::set_entry: address is locked by the next TOR entry");
    }
  }
  entries_[static_cast<std::size_t>(index)] = entry;
  ++epoch_;
}

const PmpEntry& PmpUnit::entry(int index) const {
  if (index < 0 || index >= kEntries) {
    throw std::out_of_range("PmpUnit::entry: index");
  }
  return entries_[static_cast<std::size_t>(index)];
}

std::uint64_t PmpUnit::encode_napot(std::uint64_t base, std::uint64_t size) {
  if (size < 8 || (size & (size - 1)) != 0) {
    throw std::invalid_argument("encode_napot: size must be a power of 2 >= 8");
  }
  if (base % size != 0) {
    throw std::invalid_argument("encode_napot: base not aligned to size");
  }
  // addr = (base >> 2) | ((size/2 - 1) >> 2)  -- the trailing-ones pattern.
  return (base >> 2) | ((size / 2 - 1) >> 2);
}

void PmpUnit::range_of(int index, std::uint64_t& lo, std::uint64_t& hi) const {
  const PmpEntry& e = entries_[static_cast<std::size_t>(index)];
  lo = 0;
  hi = 0;
  switch (e.mode) {
    case PmpAddressMode::kOff:
      return;
    case PmpAddressMode::kTor: {
      lo = (index == 0)
               ? 0
               : entries_[static_cast<std::size_t>(index) - 1].address << 2;
      hi = e.address << 2;
      return;
    }
    case PmpAddressMode::kNa4: {
      lo = e.address << 2;
      hi = lo + 4;
      return;
    }
    case PmpAddressMode::kNapot: {
      // Count trailing ones of the encoded address.
      std::uint64_t a = e.address;
      int trailing_ones = 0;
      while (a & 1) {
        ++trailing_ones;
        a >>= 1;
      }
      const std::uint64_t size = 8ull << trailing_ones;
      lo = (e.address & ~((1ull << trailing_ones) - 1)) << 2;
      hi = lo + size;
      return;
    }
  }
}

PmpUnit::Match PmpUnit::match(int index, std::uint64_t addr,
                              std::uint64_t len) const {
  std::uint64_t lo = 0, hi = 0;  // [lo, hi)
  range_of(index, lo, hi);
  if (hi <= lo) return Match::kNone;
  const std::uint64_t end = addr + len;
  if (end <= lo || addr >= hi) return Match::kNone;
  if (addr >= lo && end <= hi) return Match::kFull;
  return Match::kPartial;
}

bool PmpUnit::check(std::uint64_t addr, std::uint64_t len, PrivMode mode,
                    AccessType type) const {
  if (len == 0) return true;
  for (int i = 0; i < kEntries; ++i) {
    const Match m = match(i, addr, len);
    if (m == Match::kNone) continue;
    // Partially matching accesses fault regardless of permissions.
    if (m == Match::kPartial) return false;
    const PmpEntry& e = entries_[static_cast<std::size_t>(i)];
    if (mode == PrivMode::kMachine && !e.locked) return true;
    switch (type) {
      case AccessType::kRead:
        return e.read;
      case AccessType::kWrite:
        return e.write;
      case AccessType::kExecute:
        return e.execute;
    }
  }
  // No matching entry: M-mode succeeds, S/U fail.
  return mode == PrivMode::kMachine;
}

PmpUnit::RegionCheck PmpUnit::check_region(std::uint64_t addr,
                                           std::uint64_t len, PrivMode mode,
                                           AccessType type,
                                           std::uint64_t limit) const {
  RegionCheck out;
  if (len == 0) {
    out.allowed = true;
    out.lo = addr;
    out.hi = addr;
    return out;
  }
  const std::uint64_t end = addr + len;

  // Shrink [lo, hi) so it excludes the (access-disjoint) range [rlo, rhi).
  // Disjointness from the access is guaranteed by the caller, so the range
  // lies wholly on one side of it and the clip keeps the access inside.
  const auto clip = [&](std::uint64_t& lo, std::uint64_t& hi,
                        std::uint64_t rlo, std::uint64_t rhi) {
    if (rhi <= rlo || rhi <= lo || rlo >= hi) return;
    if (rhi <= addr) {
      lo = std::max(lo, rhi);
    } else {
      hi = std::min(hi, rlo);
    }
  };

  for (int i = 0; i < kEntries; ++i) {
    const Match m = match(i, addr, len);
    if (m == Match::kNone) continue;
    if (m == Match::kPartial) {
      // Partially matching accesses fault regardless of permissions, and
      // the decision is specific to this exact range: no reusable window.
      out.allowed = false;
      return out;
    }
    const PmpEntry& e = entries_[static_cast<std::size_t>(i)];
    bool allowed;
    if (mode == PrivMode::kMachine && !e.locked) {
      allowed = true;
    } else {
      switch (type) {
        case AccessType::kRead: allowed = e.read; break;
        case AccessType::kWrite: allowed = e.write; break;
        case AccessType::kExecute: allowed = e.execute; break;
        default: allowed = false; break;
      }
    }
    if (!allowed) {
      out.allowed = false;
      return out;
    }
    // Window: this entry's range, minus every higher-priority entry's
    // range (those are disjoint from the access, or match() above would
    // have resolved against them first).
    range_of(i, out.lo, out.hi);
    out.hi = std::min(out.hi, limit);
    for (int j = 0; j < i; ++j) {
      std::uint64_t jlo = 0, jhi = 0;
      range_of(j, jlo, jhi);
      clip(out.lo, out.hi, jlo, jhi);
    }
    out.allowed = true;
    return out;
  }

  // No matching entry: M-mode succeeds, S/U fail.
  if (mode != PrivMode::kMachine) {
    out.allowed = false;
    return out;
  }
  // Window: the gap between entry ranges around the access.
  out.lo = 0;
  out.hi = limit == 0 ? end : limit;
  for (int i = 0; i < kEntries; ++i) {
    std::uint64_t ilo = 0, ihi = 0;
    range_of(i, ilo, ihi);
    clip(out.lo, out.hi, ilo, ihi);
  }
  out.allowed = true;
  return out;
}

void PmpUnit::clear_unlocked() {
  for (auto& e : entries_) {
    if (!e.locked) e = PmpEntry{};
  }
  ++epoch_;
}

void PmpUnit::reset() {
  for (auto& e : entries_) e = PmpEntry{};
  ++epoch_;
}

}  // namespace convolve::tee
