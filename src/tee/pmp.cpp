#include "convolve/tee/pmp.hpp"

#include <stdexcept>

namespace convolve::tee {

void PmpUnit::set_entry(int index, const PmpEntry& entry) {
  if (index < 0 || index >= kEntries) {
    throw std::out_of_range("PmpUnit::set_entry: index");
  }
  if (entries_[static_cast<std::size_t>(index)].locked) {
    throw std::logic_error("PmpUnit::set_entry: entry is locked");
  }
  // A locked TOR entry also locks the previous entry's address register.
  if (index + 1 < kEntries) {
    const PmpEntry& next = entries_[static_cast<std::size_t>(index) + 1];
    if (next.locked && next.mode == PmpAddressMode::kTor) {
      throw std::logic_error(
          "PmpUnit::set_entry: address is locked by the next TOR entry");
    }
  }
  entries_[static_cast<std::size_t>(index)] = entry;
}

const PmpEntry& PmpUnit::entry(int index) const {
  if (index < 0 || index >= kEntries) {
    throw std::out_of_range("PmpUnit::entry: index");
  }
  return entries_[static_cast<std::size_t>(index)];
}

std::uint64_t PmpUnit::encode_napot(std::uint64_t base, std::uint64_t size) {
  if (size < 8 || (size & (size - 1)) != 0) {
    throw std::invalid_argument("encode_napot: size must be a power of 2 >= 8");
  }
  if (base % size != 0) {
    throw std::invalid_argument("encode_napot: base not aligned to size");
  }
  // addr = (base >> 2) | ((size/2 - 1) >> 2)  -- the trailing-ones pattern.
  return (base >> 2) | ((size / 2 - 1) >> 2);
}

PmpUnit::Match PmpUnit::match(int index, std::uint64_t addr,
                              std::uint64_t len) const {
  const PmpEntry& e = entries_[static_cast<std::size_t>(index)];
  std::uint64_t lo = 0, hi = 0;  // [lo, hi)
  switch (e.mode) {
    case PmpAddressMode::kOff:
      return Match::kNone;
    case PmpAddressMode::kTor: {
      lo = (index == 0)
               ? 0
               : entries_[static_cast<std::size_t>(index) - 1].address << 2;
      hi = e.address << 2;
      break;
    }
    case PmpAddressMode::kNa4: {
      lo = e.address << 2;
      hi = lo + 4;
      break;
    }
    case PmpAddressMode::kNapot: {
      // Count trailing ones of the encoded address.
      std::uint64_t a = e.address;
      int trailing_ones = 0;
      while (a & 1) {
        ++trailing_ones;
        a >>= 1;
      }
      const std::uint64_t size = 8ull << trailing_ones;
      lo = (e.address & ~((1ull << trailing_ones) - 1)) << 2;
      hi = lo + size;
      break;
    }
  }
  if (hi <= lo) return Match::kNone;
  const std::uint64_t end = addr + len;
  if (end <= lo || addr >= hi) return Match::kNone;
  if (addr >= lo && end <= hi) return Match::kFull;
  return Match::kPartial;
}

bool PmpUnit::check(std::uint64_t addr, std::uint64_t len, PrivMode mode,
                    AccessType type) const {
  if (len == 0) return true;
  for (int i = 0; i < kEntries; ++i) {
    const Match m = match(i, addr, len);
    if (m == Match::kNone) continue;
    // Partially matching accesses fault regardless of permissions.
    if (m == Match::kPartial) return false;
    const PmpEntry& e = entries_[static_cast<std::size_t>(i)];
    if (mode == PrivMode::kMachine && !e.locked) return true;
    switch (type) {
      case AccessType::kRead:
        return e.read;
      case AccessType::kWrite:
        return e.write;
      case AccessType::kExecute:
        return e.execute;
    }
  }
  // No matching entry: M-mode succeeds, S/U fail.
  return mode == PrivMode::kMachine;
}

void PmpUnit::clear_unlocked() {
  for (auto& e : entries_) {
    if (!e.locked) e = PmpEntry{};
  }
}

void PmpUnit::reset() {
  for (auto& e : entries_) e = PmpEntry{};
}

}  // namespace convolve::tee
