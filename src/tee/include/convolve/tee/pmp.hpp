// RISC-V Physical Memory Protection (privileged spec v1.12 semantics).
//
// PMP is the only hardware primitive Keystone's isolation relies on
// (Section III-B of the paper): the security monitor in M-mode programs the
// entries to wall off itself and each enclave from the OS and from other
// enclaves. This model implements the architectural check: entries are
// matched in ascending priority order; the first matching entry decides;
// M-mode accesses pass unless a matching entry is locked; S/U accesses with
// no matching entry are denied.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace convolve::tee {

enum class PrivMode : std::uint8_t { kUser = 0, kSupervisor = 1, kMachine = 3 };

enum class AccessType : std::uint8_t { kRead, kWrite, kExecute };

enum class PmpAddressMode : std::uint8_t {
  kOff = 0,
  kTor = 1,    // top-of-range: [previous entry's address, this address)
  kNa4 = 2,    // naturally aligned 4-byte region
  kNapot = 3,  // naturally aligned power-of-two region
};

struct PmpEntry {
  PmpAddressMode mode = PmpAddressMode::kOff;
  bool read = false;
  bool write = false;
  bool execute = false;
  bool locked = false;  // applies to M-mode as well; immutable until reset
  // Encoded address register (word address, as in the spec: addr >> 2).
  std::uint64_t address = 0;
};

/// The PMP unit: 16 entries as configured in the paper's Rocket SoC.
class PmpUnit {
 public:
  static constexpr int kEntries = 16;

  /// Program entry `index`. Throws std::logic_error if the entry (or, for
  /// TOR, the next entry) is locked, mirroring WARL lock behaviour.
  void set_entry(int index, const PmpEntry& entry);

  const PmpEntry& entry(int index) const;

  /// Architectural access check for [addr, addr+len).
  bool check(std::uint64_t addr, std::uint64_t len, PrivMode mode,
             AccessType type) const;

  /// Result of check_region: the architectural decision for the access
  /// plus, when `allowed`, the widest window [lo, hi) around the access
  /// inside which every fully-contained access with the same privilege
  /// mode and access type is decided identically (same matching entry, or
  /// same M-mode default). Callers may cache the window until epoch()
  /// changes; a denied access carries no reusable window.
  struct RegionCheck {
    bool allowed = false;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };

  /// check() plus the uniform-decision window, used by Machine's
  /// memoized fast path. `limit` caps the window (physical memory size).
  RegionCheck check_region(std::uint64_t addr, std::uint64_t len,
                           PrivMode mode, AccessType type,
                           std::uint64_t limit) const;

  /// Configuration generation counter: bumped by set_entry,
  /// clear_unlocked and reset, so cached check_region windows can be
  /// invalidated in O(1).
  std::uint64_t epoch() const { return epoch_; }

  /// Clear all non-locked entries (what an OS could attempt); locked
  /// entries survive until hardware reset.
  void clear_unlocked();

  /// Full reset (power cycle): clears everything including locks.
  void reset();

  /// Convenience: encode a NAPOT region. `size` must be a power of two
  /// >= 8 and `base` must be size-aligned. Returns the address-register
  /// encoding.
  static std::uint64_t encode_napot(std::uint64_t base, std::uint64_t size);

 private:
  std::array<PmpEntry, kEntries> entries_{};
  std::uint64_t epoch_ = 0;

  // Decoded address range [lo, hi) of entry i; hi <= lo means inactive.
  void range_of(int index, std::uint64_t& lo, std::uint64_t& hi) const;

  // Does entry i match every byte of [addr, addr+len)?
  // Returns nullopt when the entry does not fully cover the range but
  // overlaps it partially (treated as a non-match that still blocks
  // according to the matching rules -- we conservatively require full
  // coverage for a match and treat partial overlap as a fault).
  enum class Match { kNone, kFull, kPartial };
  Match match(int index, std::uint64_t addr, std::uint64_t len) const;
};

}  // namespace convolve::tee
