// RISC-V Physical Memory Protection (privileged spec v1.12 semantics).
//
// PMP is the only hardware primitive Keystone's isolation relies on
// (Section III-B of the paper): the security monitor in M-mode programs the
// entries to wall off itself and each enclave from the OS and from other
// enclaves. This model implements the architectural check: entries are
// matched in ascending priority order; the first matching entry decides;
// M-mode accesses pass unless a matching entry is locked; S/U accesses with
// no matching entry are denied.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace convolve::tee {

enum class PrivMode : std::uint8_t { kUser = 0, kSupervisor = 1, kMachine = 3 };

enum class AccessType : std::uint8_t { kRead, kWrite, kExecute };

enum class PmpAddressMode : std::uint8_t {
  kOff = 0,
  kTor = 1,    // top-of-range: [previous entry's address, this address)
  kNa4 = 2,    // naturally aligned 4-byte region
  kNapot = 3,  // naturally aligned power-of-two region
};

struct PmpEntry {
  PmpAddressMode mode = PmpAddressMode::kOff;
  bool read = false;
  bool write = false;
  bool execute = false;
  bool locked = false;  // applies to M-mode as well; immutable until reset
  // Encoded address register (word address, as in the spec: addr >> 2).
  std::uint64_t address = 0;
};

/// The PMP unit: 16 entries as configured in the paper's Rocket SoC.
class PmpUnit {
 public:
  static constexpr int kEntries = 16;

  /// Program entry `index`. Throws std::logic_error if the entry (or, for
  /// TOR, the next entry) is locked, mirroring WARL lock behaviour.
  void set_entry(int index, const PmpEntry& entry);

  const PmpEntry& entry(int index) const;

  /// Architectural access check for [addr, addr+len).
  bool check(std::uint64_t addr, std::uint64_t len, PrivMode mode,
             AccessType type) const;

  /// Clear all non-locked entries (what an OS could attempt); locked
  /// entries survive until hardware reset.
  void clear_unlocked();

  /// Full reset (power cycle): clears everything including locks.
  void reset();

  /// Convenience: encode a NAPOT region. `size` must be a power of two
  /// >= 8 and `base` must be size-aligned. Returns the address-register
  /// encoding.
  static std::uint64_t encode_napot(std::uint64_t base, std::uint64_t size);

 private:
  std::array<PmpEntry, kEntries> entries_{};

  // Does entry i match every byte of [addr, addr+len)?
  // Returns nullopt when the entry does not fully cover the range but
  // overlaps it partially (treated as a non-match that still blocks
  // according to the matching rules -- we conservatively require full
  // coverage for a match and treat partial overlap as a fault).
  enum class Match { kNone, kFull, kPartial };
  Match match(int index, std::uint64_t addr, std::uint64_t len) const;
};

}  // namespace convolve::tee
