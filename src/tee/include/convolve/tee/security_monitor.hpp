// The security monitor (SM): Keystone-style enclave lifecycle on PMP.
//
// The SM runs in M-mode, walls off its own memory with a permission-less
// PMP entry (M-mode passes unmatched/unlocked entries; S/U are denied),
// and context-switches PMP state so that, at any instant, the running
// world sees only its own memory:
//  * OS running: every enclave region (and the SM) is blanked out, the
//    rest of DRAM is open to S/U;
//  * enclave running: exactly that enclave's region is RWX for U-mode,
//    everything else is unmatched and therefore denied.
// Attestation and sealing follow the paper's hybrid design; signing runs
// on a watermarked SM stack that reproduces the 8 KB -> 128 KB finding.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "convolve/common/request_context.hpp"
#include "convolve/tee/attestation.hpp"
#include "convolve/tee/bootrom.hpp"
#include "convolve/tee/machine.hpp"
#include "convolve/tee/rv32.hpp"

namespace convolve::tee {

struct SmConfig {
  std::size_t sm_region_size = 128 * 1024;  // SM-owned DRAM at address 0
  std::size_t stack_bytes = 8 * 1024;       // Keystone default (Table III)
};

struct SmSnapshot;

// Modeled stack frames of the SM's signing paths (bytes). The ML-DSA
// working set (matrix A, vectors y/z/w, hint buffers) mirrors the
// reference implementation's ~50 KB stack appetite, which overflows the
// 8 KB default stack -- the paper's stopgap is a 128 KB stack.
inline constexpr std::size_t kReportAssemblyStack = 1024;
inline constexpr std::size_t kEd25519SignStack = 5600;
inline constexpr std::size_t kMlDsaSignStack = 52400;

class SecurityMonitor {
 public:
  struct Enclave {
    int id = 0;
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    Bytes measurement;  // SHA3-512 of the loaded binary
    bool alive = true;
    // Hoisted per-enclave engine selection: run_enclave_program used to
    // take (and re-apply) the engine on every call; the choice is a
    // property of the enclave, made once and inherited by forks.
    Rv32Engine engine = Rv32Cpu::kDefaultEngine;
  };

  /// Install the SM: locks down its own region and the enclave PMP plan.
  SecurityMonitor(Machine& machine, const BootRecord& boot,
                  const SmConfig& config = {});

  /// Resume from a snapshot onto a (typically CoW-forked) machine whose
  /// PMP already carries the snapshotted plan -- the constructor adopts
  /// the enclave table and allocator state without reprogramming anything,
  /// so forked machines keep their inherited PMP epoch and decode caches.
  /// `fork_id` disambiguates seal nonces across forks sharing one
  /// snapshot: each fork's nonce space is (counter, fork_id), so two
  /// forks sealing concurrently can never collide (fork_id 0 is the
  /// master and byte-compatible with blobs sealed before forking).
  SecurityMonitor(Machine& machine, const SmSnapshot& snap,
                  std::uint32_t fork_id);

  /// Freeze the SM's logical state (boot record, config, enclave table,
  /// allocator cursor, seal counter) for later resume on a forked
  /// machine. Pair with Machine::freeze(), which captures memory + PMP.
  SmSnapshot snapshot() const;

  /// Load a binary into a fresh region, measure it, isolate it.
  /// Throws std::runtime_error when out of memory or PMP entries.
  int create_enclave(ByteView binary, std::uint64_t region_size);

  /// Destroy: wipe memory, release the PMP entry.
  void destroy_enclave(int id);

  const Enclave& enclave(int id) const;

  /// Context switches. They reprogram the PMP; the caller then performs
  /// accesses through the machine at the corresponding privilege.
  void enter_os();
  void enter_enclave(int id);

  /// Run enclave code: switches in, invokes `body` (which should access
  /// memory in U-mode), switches back to the OS view.
  void run_enclave(int id, const std::function<void()>& body);

  /// Execute the enclave's loaded binary on an RV32IM hart in U-mode
  /// under the enclave PMP view, starting at `entry_offset` into the
  /// region. Execution ends at a trap (ecall = clean exit request, PMP
  /// faults = contained violations) or after `max_steps` instructions.
  /// The OS PMP view is restored before returning. The execution tier is
  /// the enclave's hoisted engine selection (see set_enclave_engine); the
  /// explicit-engine overload below pins a tier for this call only (all
  /// tiers are architecturally bit-identical).
  Rv32Cpu::RunResult run_enclave_program(int id, std::uint64_t max_steps,
                                         std::uint32_t entry_offset = 0);
  Rv32Cpu::RunResult run_enclave_program(int id, std::uint64_t max_steps,
                                         std::uint32_t entry_offset,
                                         Rv32Engine engine);

  /// Choose the execution tier for an enclave once; subsequent runs (and
  /// forks resumed from a snapshot) inherit it.
  void set_enclave_engine(int id, Rv32Engine engine);

  /// Generate a signed attestation report for an enclave. Consumes SM
  /// stack (throws StackOverflow if the configured stack cannot hold the
  /// signing working set -- the paper's ML-DSA finding).
  AttestationReport attest(int id, ByteView user_data);

  /// Data sealing: bound to this device, SM and enclave measurement.
  Bytes seal(int id, ByteView plaintext);
  std::optional<Bytes> unseal(int id, ByteView sealed_blob);

  /// Local attestation: a MAC-based assertion, consumable only on this
  /// device, that enclave `target` has the given measurement and runs
  /// under this SM. Cheaper than a signed report (no asymmetric crypto,
  /// fits the 8 KB stack) -- the mechanism enclaves use to authenticate
  /// each other before sharing data locally.
  struct LocalAttestation {
    int target = 0;
    Bytes target_measurement;  // 64
    Bytes mac;                 // 32, keyed by an SM-local secret
  };
  LocalAttestation local_attest(int target);
  bool verify_local_attestation(const LocalAttestation& token) const;

  /// Attribution context for the flight recorder: security-relevant
  /// occurrences inside this SM (trap exits, seal/unseal rejections,
  /// attestation verification failures) are emitted as telemetry events
  /// stamped with this context. The service sets it right after forking a
  /// world for a request; the default context (seq 0, this SM's fork id)
  /// covers direct SM use outside the service. Kept a plain member --
  /// carrying attribution is not telemetry, so the OFF build threads it
  /// identically while the emission sites compile away.
  void set_request_context(const RequestContext& ctx) { ctx_ = ctx; }
  const RequestContext& request_context() const { return ctx_; }

  const SimStack& stack() const { return stack_; }
  const BootRecord& boot_record() const { return boot_; }

  /// Verifier trust anchor for this device.
  VerifierTrustAnchor trust_anchor() const;

 private:
  Machine& machine_;
  BootRecord boot_;
  SmConfig config_;
  SimStack stack_;
  std::vector<Enclave> enclaves_;
  std::uint64_t next_free_ = 0;
  std::uint64_t seal_nonce_counter_ = 0;
  std::uint32_t fork_id_ = 0;
  RequestContext ctx_{};

  friend struct SmSnapshot;
  Enclave& enclave_mut(int id);
  Bytes sealing_key(const Enclave& e) const;
};

/// Frozen logical SM state for fork/resume (see SecurityMonitor::snapshot).
/// Machine memory and the PMP plan live in the paired MachineImage; this
/// holds only what the SM tracks on the side.
struct SmSnapshot {
  BootRecord boot;
  SmConfig config;
  std::vector<SecurityMonitor::Enclave> enclaves;
  std::uint64_t next_free = 0;
  std::uint64_t seal_nonce_counter = 0;
};

}  // namespace convolve::tee
