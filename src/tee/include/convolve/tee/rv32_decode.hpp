// Shared RV32IM instruction decoder.
//
// Exactly one decoder exists for the whole tree: the dynamic engines
// (Rv32Cpu::run fast path and its decode cache) and the static binary
// analyzer (analysis/rv32static linear sweep) both consume DecodedInsn
// produced by decode_rv32() below. Keeping the decode in one header makes
// divergence between "what executes" and "what the analyzer reasons
// about" structurally impossible -- a soundness precondition for the
// static constant-time/PMP lint, pinned by the regression corpus in
// tests/tee/test_rv32_decode_shared.cpp.
//
// The decode is strict: reserved funct7/funct3 combinations (the SUB bit
// on AND, CSR-class SYSTEM encodings, shift-immediate funct7 garbage)
// decode to kIllegal rather than aliasing onto a nearby instruction.
#pragma once

#include <cstdint>

namespace convolve::tee {

/// Pre-decoded instruction: a flat handler index plus register/immediate
/// operands, so consumers dispatch on one byte instead of re-extracting
/// bit fields on every use.
enum class OpKind : std::uint8_t {
  kIllegal = 0,
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kFence, kEcall, kEbreak,
};

struct DecodedInsn {
  OpKind kind = OpKind::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  // Sign-extended immediate (I/S/B/J forms, pre-shifted for branches and
  // jumps), upper immediate for LUI/AUIPC, shamt for immediate shifts, or
  // the raw instruction word for kIllegal (trap tval).
  std::int32_t imm = 0;
};

namespace decode_detail {

constexpr std::int32_t sign_extend(std::uint32_t value, int bits) {
  const std::uint32_t mask = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ mask) - mask);
}

}  // namespace decode_detail

/// Decode one RV32IM instruction word. Strict: reserved encodings decode
/// to kIllegal (imm carries the raw word for the trap tval).
inline DecodedInsn decode_rv32(std::uint32_t inst) {
  using decode_detail::sign_extend;
  DecodedInsn d;
  d.kind = OpKind::kIllegal;
  d.imm = static_cast<std::int32_t>(inst);  // trap tval for kIllegal

  const std::uint32_t opcode = inst & 0x7f;
  const auto rd = static_cast<std::uint8_t>((inst >> 7) & 0x1f);
  const auto rs1 = static_cast<std::uint8_t>((inst >> 15) & 0x1f);
  const auto rs2 = static_cast<std::uint8_t>((inst >> 20) & 0x1f);
  const std::uint32_t funct3 = (inst >> 12) & 0x7;
  const std::uint32_t funct7 = inst >> 25;

  const auto accept = [&](OpKind kind, std::int32_t imm) {
    d.kind = kind;
    d.rd = rd;
    d.rs1 = rs1;
    d.rs2 = rs2;
    d.imm = imm;
  };
  const std::int32_t i_imm = sign_extend(inst >> 20, 12);

  switch (opcode) {
    case 0x37:
      accept(OpKind::kLui, static_cast<std::int32_t>(inst & 0xfffff000u));
      break;
    case 0x17:
      accept(OpKind::kAuipc, static_cast<std::int32_t>(inst & 0xfffff000u));
      break;
    case 0x6f: {
      const std::uint32_t imm = ((inst >> 31) << 20) |
                                (((inst >> 12) & 0xff) << 12) |
                                (((inst >> 20) & 1) << 11) |
                                (((inst >> 21) & 0x3ff) << 1);
      accept(OpKind::kJal, sign_extend(imm, 21));
      break;
    }
    case 0x67:
      accept(OpKind::kJalr, i_imm);
      break;
    case 0x63: {
      const std::uint32_t imm = ((inst >> 31) << 12) |
                                (((inst >> 7) & 1) << 11) |
                                (((inst >> 25) & 0x3f) << 5) |
                                (((inst >> 8) & 0xf) << 1);
      const std::int32_t offset = sign_extend(imm, 13);
      switch (funct3) {
        case 0: accept(OpKind::kBeq, offset); break;
        case 1: accept(OpKind::kBne, offset); break;
        case 4: accept(OpKind::kBlt, offset); break;
        case 5: accept(OpKind::kBge, offset); break;
        case 6: accept(OpKind::kBltu, offset); break;
        case 7: accept(OpKind::kBgeu, offset); break;
        default: break;  // kIllegal
      }
      break;
    }
    case 0x03:
      switch (funct3) {
        case 0: accept(OpKind::kLb, i_imm); break;
        case 1: accept(OpKind::kLh, i_imm); break;
        case 2: accept(OpKind::kLw, i_imm); break;
        case 4: accept(OpKind::kLbu, i_imm); break;
        case 5: accept(OpKind::kLhu, i_imm); break;
        default: break;
      }
      break;
    case 0x23: {
      const std::uint32_t imm = ((inst >> 25) << 5) | ((inst >> 7) & 0x1f);
      const std::int32_t offset = sign_extend(imm, 12);
      switch (funct3) {
        case 0: accept(OpKind::kSb, offset); break;
        case 1: accept(OpKind::kSh, offset); break;
        case 2: accept(OpKind::kSw, offset); break;
        default: break;
      }
      break;
    }
    case 0x13: {
      const std::int32_t shamt = static_cast<std::int32_t>((inst >> 20) & 0x1f);
      switch (funct3) {
        case 0: accept(OpKind::kAddi, i_imm); break;
        case 2: accept(OpKind::kSlti, i_imm); break;
        case 3: accept(OpKind::kSltiu, i_imm); break;
        case 4: accept(OpKind::kXori, i_imm); break;
        case 6: accept(OpKind::kOri, i_imm); break;
        case 7: accept(OpKind::kAndi, i_imm); break;
        case 1:
          if (funct7 == 0) accept(OpKind::kSlli, shamt);
          break;
        case 5:
          if (funct7 == 0) accept(OpKind::kSrli, shamt);
          else if (funct7 == 0x20) accept(OpKind::kSrai, shamt);
          break;
        default: break;
      }
      break;
    }
    case 0x33:
      if (funct7 == 0x01) {  // M extension
        switch (funct3) {
          case 0: accept(OpKind::kMul, 0); break;
          case 1: accept(OpKind::kMulh, 0); break;
          case 2: accept(OpKind::kMulhsu, 0); break;
          case 3: accept(OpKind::kMulhu, 0); break;
          case 4: accept(OpKind::kDiv, 0); break;
          case 5: accept(OpKind::kDivu, 0); break;
          case 6: accept(OpKind::kRem, 0); break;
          case 7: accept(OpKind::kRemu, 0); break;
          default: break;
        }
      } else if (funct7 == 0x00) {
        switch (funct3) {
          case 0: accept(OpKind::kAdd, 0); break;
          case 1: accept(OpKind::kSll, 0); break;
          case 2: accept(OpKind::kSlt, 0); break;
          case 3: accept(OpKind::kSltu, 0); break;
          case 4: accept(OpKind::kXor, 0); break;
          case 5: accept(OpKind::kSrl, 0); break;
          case 6: accept(OpKind::kOr, 0); break;
          case 7: accept(OpKind::kAnd, 0); break;
          default: break;
        }
      } else if (funct7 == 0x20) {
        // Only SUB and SRA carry the 0x20 bit; everything else is a
        // reserved encoding (matches the strict step() decoder).
        if (funct3 == 0) accept(OpKind::kSub, 0);
        else if (funct3 == 5) accept(OpKind::kSra, 0);
      }
      break;
    case 0x0f:
      accept(OpKind::kFence, 0);
      break;
    case 0x73: {
      const std::uint32_t imm = inst >> 20;
      if (funct3 == 0 && rd == 0 && rs1 == 0 && imm <= 1) {
        accept(imm == 0 ? OpKind::kEcall : OpKind::kEbreak, 0);
        d.rs2 = 0;  // imm field overlaps rs2; not a register operand
      }
      break;
    }
    default:
      break;
  }
  return d;
}

// Classification helpers shared by the CFG sweep and the dynamic taint
// oracle. They are total over OpKind so a new opcode that forgets to
// classify itself fails the shared-decoder regression corpus.

constexpr bool is_branch(OpKind k) {
  return k >= OpKind::kBeq && k <= OpKind::kBgeu;
}
constexpr bool is_load(OpKind k) {
  return k >= OpKind::kLb && k <= OpKind::kLhu;
}
constexpr bool is_store(OpKind k) {
  return k >= OpKind::kSb && k <= OpKind::kSw;
}
/// Instructions that end a basic block: branches, jumps, ecall/ebreak and
/// illegal words (which trap).
constexpr bool is_terminator(OpKind k) {
  return is_branch(k) || k == OpKind::kJal || k == OpKind::kJalr ||
         k == OpKind::kEcall || k == OpKind::kEbreak ||
         k == OpKind::kIllegal;
}
/// Does the instruction write a destination register (when rd != 0)?
constexpr bool writes_rd(OpKind k) {
  return !(is_branch(k) || is_store(k) || k == OpKind::kFence ||
           k == OpKind::kEcall || k == OpKind::kEbreak ||
           k == OpKind::kIllegal);
}
/// Does the instruction read x[rs1]? The decoder copies the raw rs1/rs2
/// bit fields for every format (harmless for the engines, which ignore
/// unused operands), so analyzers MUST consult these predicates instead
/// of assuming the fields are meaningful -- for LUI/AUIPC/JAL they hold
/// immediate fragments.
constexpr bool reads_rs1(OpKind k) {
  return !(k == OpKind::kLui || k == OpKind::kAuipc || k == OpKind::kJal ||
           k == OpKind::kFence || k == OpKind::kEcall ||
           k == OpKind::kEbreak || k == OpKind::kIllegal);
}
/// Does the instruction read x[rs2]? (R-type ops, branches and stores.)
constexpr bool reads_rs2(OpKind k) {
  return is_branch(k) || is_store(k) ||
         (k >= OpKind::kAdd && k <= OpKind::kRemu);
}
/// Number of bytes accessed by a load/store (0 for everything else).
constexpr std::uint32_t access_bytes(OpKind k) {
  switch (k) {
    case OpKind::kLb: case OpKind::kLbu: case OpKind::kSb: return 1;
    case OpKind::kLh: case OpKind::kLhu: case OpKind::kSh: return 2;
    case OpKind::kLw: case OpKind::kSw: return 4;
    default: return 0;
  }
}

}  // namespace convolve::tee
