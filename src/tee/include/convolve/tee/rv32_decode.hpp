// Shared RV32IM instruction decoder.
//
// Exactly one decoder exists for the whole tree: the dynamic engines
// (Rv32Cpu::run fast path and its decode cache) and the static binary
// analyzer (analysis/rv32static linear sweep) both consume DecodedInsn
// produced by decode_rv32() below. Keeping the decode in one header makes
// divergence between "what executes" and "what the analyzer reasons
// about" structurally impossible -- a soundness precondition for the
// static constant-time/PMP lint, pinned by the regression corpus in
// tests/tee/test_rv32_decode_shared.cpp.
//
// The decode is strict: reserved funct7/funct3 combinations (the SUB bit
// on AND, CSR-class SYSTEM encodings, shift-immediate funct7 garbage)
// decode to kIllegal rather than aliasing onto a nearby instruction.
#pragma once

#include <cstdint>

namespace convolve::tee {

/// Pre-decoded instruction: a flat handler index plus register/immediate
/// operands, so consumers dispatch on one byte instead of re-extracting
/// bit fields on every use.
enum class OpKind : std::uint8_t {
  kIllegal = 0,
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kFence, kEcall, kEbreak,
};

struct DecodedInsn {
  OpKind kind = OpKind::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  // Sign-extended immediate (I/S/B/J forms, pre-shifted for branches and
  // jumps), upper immediate for LUI/AUIPC, shamt for immediate shifts, or
  // the raw instruction word for kIllegal (trap tval).
  std::int32_t imm = 0;
};

namespace decode_detail {

constexpr std::int32_t sign_extend(std::uint32_t value, int bits) {
  const std::uint32_t mask = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ mask) - mask);
}

}  // namespace decode_detail

/// Decode one RV32IM instruction word. Strict: reserved encodings decode
/// to kIllegal (imm carries the raw word for the trap tval).
inline DecodedInsn decode_rv32(std::uint32_t inst) {
  using decode_detail::sign_extend;
  DecodedInsn d;
  d.kind = OpKind::kIllegal;
  d.imm = static_cast<std::int32_t>(inst);  // trap tval for kIllegal

  const std::uint32_t opcode = inst & 0x7f;
  const auto rd = static_cast<std::uint8_t>((inst >> 7) & 0x1f);
  const auto rs1 = static_cast<std::uint8_t>((inst >> 15) & 0x1f);
  const auto rs2 = static_cast<std::uint8_t>((inst >> 20) & 0x1f);
  const std::uint32_t funct3 = (inst >> 12) & 0x7;
  const std::uint32_t funct7 = inst >> 25;

  const auto accept = [&](OpKind kind, std::int32_t imm) {
    d.kind = kind;
    d.rd = rd;
    d.rs1 = rs1;
    d.rs2 = rs2;
    d.imm = imm;
  };
  const std::int32_t i_imm = sign_extend(inst >> 20, 12);

  switch (opcode) {
    case 0x37:
      accept(OpKind::kLui, static_cast<std::int32_t>(inst & 0xfffff000u));
      break;
    case 0x17:
      accept(OpKind::kAuipc, static_cast<std::int32_t>(inst & 0xfffff000u));
      break;
    case 0x6f: {
      const std::uint32_t imm = ((inst >> 31) << 20) |
                                (((inst >> 12) & 0xff) << 12) |
                                (((inst >> 20) & 1) << 11) |
                                (((inst >> 21) & 0x3ff) << 1);
      accept(OpKind::kJal, sign_extend(imm, 21));
      break;
    }
    case 0x67:
      accept(OpKind::kJalr, i_imm);
      break;
    case 0x63: {
      const std::uint32_t imm = ((inst >> 31) << 12) |
                                (((inst >> 7) & 1) << 11) |
                                (((inst >> 25) & 0x3f) << 5) |
                                (((inst >> 8) & 0xf) << 1);
      const std::int32_t offset = sign_extend(imm, 13);
      switch (funct3) {
        case 0: accept(OpKind::kBeq, offset); break;
        case 1: accept(OpKind::kBne, offset); break;
        case 4: accept(OpKind::kBlt, offset); break;
        case 5: accept(OpKind::kBge, offset); break;
        case 6: accept(OpKind::kBltu, offset); break;
        case 7: accept(OpKind::kBgeu, offset); break;
        default: break;  // kIllegal
      }
      break;
    }
    case 0x03:
      switch (funct3) {
        case 0: accept(OpKind::kLb, i_imm); break;
        case 1: accept(OpKind::kLh, i_imm); break;
        case 2: accept(OpKind::kLw, i_imm); break;
        case 4: accept(OpKind::kLbu, i_imm); break;
        case 5: accept(OpKind::kLhu, i_imm); break;
        default: break;
      }
      break;
    case 0x23: {
      const std::uint32_t imm = ((inst >> 25) << 5) | ((inst >> 7) & 0x1f);
      const std::int32_t offset = sign_extend(imm, 12);
      switch (funct3) {
        case 0: accept(OpKind::kSb, offset); break;
        case 1: accept(OpKind::kSh, offset); break;
        case 2: accept(OpKind::kSw, offset); break;
        default: break;
      }
      break;
    }
    case 0x13: {
      const std::int32_t shamt = static_cast<std::int32_t>((inst >> 20) & 0x1f);
      switch (funct3) {
        case 0: accept(OpKind::kAddi, i_imm); break;
        case 2: accept(OpKind::kSlti, i_imm); break;
        case 3: accept(OpKind::kSltiu, i_imm); break;
        case 4: accept(OpKind::kXori, i_imm); break;
        case 6: accept(OpKind::kOri, i_imm); break;
        case 7: accept(OpKind::kAndi, i_imm); break;
        case 1:
          if (funct7 == 0) accept(OpKind::kSlli, shamt);
          break;
        case 5:
          if (funct7 == 0) accept(OpKind::kSrli, shamt);
          else if (funct7 == 0x20) accept(OpKind::kSrai, shamt);
          break;
        default: break;
      }
      break;
    }
    case 0x33:
      if (funct7 == 0x01) {  // M extension
        switch (funct3) {
          case 0: accept(OpKind::kMul, 0); break;
          case 1: accept(OpKind::kMulh, 0); break;
          case 2: accept(OpKind::kMulhsu, 0); break;
          case 3: accept(OpKind::kMulhu, 0); break;
          case 4: accept(OpKind::kDiv, 0); break;
          case 5: accept(OpKind::kDivu, 0); break;
          case 6: accept(OpKind::kRem, 0); break;
          case 7: accept(OpKind::kRemu, 0); break;
          default: break;
        }
      } else if (funct7 == 0x00) {
        switch (funct3) {
          case 0: accept(OpKind::kAdd, 0); break;
          case 1: accept(OpKind::kSll, 0); break;
          case 2: accept(OpKind::kSlt, 0); break;
          case 3: accept(OpKind::kSltu, 0); break;
          case 4: accept(OpKind::kXor, 0); break;
          case 5: accept(OpKind::kSrl, 0); break;
          case 6: accept(OpKind::kOr, 0); break;
          case 7: accept(OpKind::kAnd, 0); break;
          default: break;
        }
      } else if (funct7 == 0x20) {
        // Only SUB and SRA carry the 0x20 bit; everything else is a
        // reserved encoding (matches the strict step() decoder).
        if (funct3 == 0) accept(OpKind::kSub, 0);
        else if (funct3 == 5) accept(OpKind::kSra, 0);
      }
      break;
    case 0x0f:
      accept(OpKind::kFence, 0);
      break;
    case 0x73: {
      const std::uint32_t imm = inst >> 20;
      if (funct3 == 0 && rd == 0 && rs1 == 0 && imm <= 1) {
        accept(imm == 0 ? OpKind::kEcall : OpKind::kEbreak, 0);
        d.rs2 = 0;  // imm field overlaps rs2; not a register operand
      }
      break;
    }
    default:
      break;
  }
  return d;
}

// Classification helpers shared by the CFG sweep and the dynamic taint
// oracle. They are total over OpKind so a new opcode that forgets to
// classify itself fails the shared-decoder regression corpus.

constexpr bool is_branch(OpKind k) {
  return k >= OpKind::kBeq && k <= OpKind::kBgeu;
}
constexpr bool is_load(OpKind k) {
  return k >= OpKind::kLb && k <= OpKind::kLhu;
}
constexpr bool is_store(OpKind k) {
  return k >= OpKind::kSb && k <= OpKind::kSw;
}
/// Instructions that end a basic block: branches, jumps, ecall/ebreak and
/// illegal words (which trap).
constexpr bool is_terminator(OpKind k) {
  return is_branch(k) || k == OpKind::kJal || k == OpKind::kJalr ||
         k == OpKind::kEcall || k == OpKind::kEbreak ||
         k == OpKind::kIllegal;
}
/// Does the instruction write a destination register (when rd != 0)?
constexpr bool writes_rd(OpKind k) {
  return !(is_branch(k) || is_store(k) || k == OpKind::kFence ||
           k == OpKind::kEcall || k == OpKind::kEbreak ||
           k == OpKind::kIllegal);
}
/// Does the instruction read x[rs1]? The decoder copies the raw rs1/rs2
/// bit fields for every format (harmless for the engines, which ignore
/// unused operands), so analyzers MUST consult these predicates instead
/// of assuming the fields are meaningful -- for LUI/AUIPC/JAL they hold
/// immediate fragments.
constexpr bool reads_rs1(OpKind k) {
  return !(k == OpKind::kLui || k == OpKind::kAuipc || k == OpKind::kJal ||
           k == OpKind::kFence || k == OpKind::kEcall ||
           k == OpKind::kEbreak || k == OpKind::kIllegal);
}
/// Does the instruction read x[rs2]? (R-type ops, branches and stores.)
constexpr bool reads_rs2(OpKind k) {
  return is_branch(k) || is_store(k) ||
         (k >= OpKind::kAdd && k <= OpKind::kRemu);
}
/// Number of bytes accessed by a load/store (0 for everything else).
constexpr std::uint32_t access_bytes(OpKind k) {
  switch (k) {
    case OpKind::kLb: case OpKind::kLbu: case OpKind::kSb: return 1;
    case OpKind::kLh: case OpKind::kLhu: case OpKind::kSh: return 2;
    case OpKind::kLw: case OpKind::kSw: return 4;
    default: return 0;
  }
}

// ---------------------------------------------------------------------
// Bytecode tier: compact per-slot ops for the threaded dispatch engine.
// ---------------------------------------------------------------------
//
// The bytecode engine (Rv32Cpu::run with Rv32Engine::kBytecode) rewrites
// each decoded page into one BcOp per 4-byte slot: a handler byte indexing
// the dispatch table plus pre-extracted operands, so the hot loop touches
// exactly one 12-byte record per dispatch. A decode-time fusion pass
// additionally recognizes adjacent pairs (lui+addi, auipc+addi, auipc+lw,
// cmp/addi+branch-on-zero) and emits a fused handler in the FIRST slot of
// the pair; the second slot always keeps its own unfused bytecode, so a
// jump into the middle of a pair executes the plain second instruction.
//
// Fused super-ops are architectural sugar only: they retire as two steps,
// fault with the component instruction's pc/tval, and are split (executed
// unfused via the oracle) whenever the remaining step budget or the
// validated execute window cannot cover both halves. run_interpreted()
// stays a bit-for-bit oracle for every fused path.
enum class BcHandler : std::uint8_t {
  // 0..48 mirror OpKind exactly (see static_asserts below), so the single-
  // instruction rewrite is a cast.
  kIllegal = 0,
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kFence, kEcall, kEbreak,
  // Decode-time specializations.
  kNop,  // pure rd-writing op with rd == x0: architecturally a no-op
  // Fused pairs (handler lives in the first slot of the pair).
  kFusedLuiAddi,    // lui rd,hi ; addi rd2,rd,lo   -> both constants folded
  kFusedAuipcAddi,  // auipc rd,hi ; addi rd2,rd,lo -> pc-relative address gen
  kFusedAuipcLw,    // auipc rd,hi ; lw rd2,lo(rd)  -> pc-relative load
  kFusedSltBeqz, kFusedSltBnez,      // slt rd,a,b   ; beqz/bnez rd
  kFusedSltuBeqz, kFusedSltuBnez,    // sltu rd,a,b  ; beqz/bnez rd
  kFusedSltiBeqz, kFusedSltiBnez,    // slti rd,a,K  ; beqz/bnez rd
  kFusedSltiuBeqz, kFusedSltiuBnez,  // sltiu rd,a,K ; beqz/bnez rd
  kFusedAddiBeqz, kFusedAddiBnez,    // addi rd,a,K  ; beqz/bnez rd (dec+loop)
  kFusedSlliSrli,  // slli rd,s,A ; srli rd2,s,B -> rotate halves (RV32I rol)
  kFusedSrliSlli,  // srli rd,s,A ; slli rd2,s,B -> rotate halves (RV32I ror)
  kFusedAddiAddi,  // addi rd,s,K ; addi rd2,rd2,K2 -> paired pointer bumps
  kFusedOrXor,     // or rd,a,b ; xor rd2,rd,c  -> ARX rotate-then-mix
  kFusedOrXori,    // or rd,a,b ; xori rd2,rd,K -> ARX rotate-then-mix (imm)
};
constexpr std::size_t kBcHandlerCount =
    static_cast<std::size_t>(BcHandler::kFusedOrXori) + 1;

static_assert(static_cast<int>(BcHandler::kLui) == static_cast<int>(OpKind::kLui));
static_assert(static_cast<int>(BcHandler::kSw) == static_cast<int>(OpKind::kSw));
static_assert(static_cast<int>(BcHandler::kSrai) == static_cast<int>(OpKind::kSrai));
static_assert(static_cast<int>(BcHandler::kRemu) == static_cast<int>(OpKind::kRemu));
static_assert(static_cast<int>(BcHandler::kEbreak) == static_cast<int>(OpKind::kEbreak));

/// One bytecode slot: handler byte + packed operands. For fused pairs,
/// `rd`/`rs1`/`rs2`/`imm` describe the first component (rs2 doubles as the
/// second component's rd for the lui/auipc pairs) and `imm2` carries the
/// pair's folded second immediate:
///   kFusedLuiAddi:   imm = hi, imm2 = hi + lo (both final constants)
///   kFusedAuipcAddi: imm = hi, imm2 = hi + lo (add pc at run time)
///   kFusedAuipcLw:   imm = hi, imm2 = hi + lo (load address = pc + imm2)
///   kFused*B{eq,ne}z: imm = cmp immediate, imm2 = branch offset + 4
///                     (pre-biased so target = pair pc + imm2)
///   kFusedSlliSrli/kFusedSrliSlli: imm = first shamt, imm2 = second shamt
///                     (both shifts read the shared source rs1)
///   kFusedAddiAddi:   imm = first immediate, imm2 = second immediate
///                     (second component is rs2 += imm2)
///   kFusedOrXor:      imm = xor's other source register, imm2 = xor's rd
///   kFusedOrXori:     imm = xor immediate, imm2 = xori's rd
///                     (the or result is forwarded to the xor directly)
struct BcOp {
  std::uint8_t handler = static_cast<std::uint8_t>(BcHandler::kIllegal);
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;   // kIllegal: raw instruction word (trap tval)
  std::int32_t imm2 = 0;
  // Computed-goto builds dispatch through this direct handler address
  // (one dependent load instead of byte -> table -> jump). Decode leaves
  // it null -- the label addresses only exist inside run_bytecode, which
  // links each page on first execution of its decode.
  const void* target = nullptr;
};

/// Rewrite one decoded instruction into its bytecode slot. Pure
/// rd-writing ops (LUI/AUIPC and the ALU block) with rd == x0 become kNop;
/// loads keep their access (fault semantics), jumps keep their transfer.
inline BcOp bytecode_single(const DecodedInsn& d) {
  BcOp op;
  const bool pure_rd_write =
      d.kind == OpKind::kLui || d.kind == OpKind::kAuipc ||
      (d.kind >= OpKind::kAddi && d.kind <= OpKind::kRemu);
  op.handler = (pure_rd_write && d.rd == 0)
                   ? static_cast<std::uint8_t>(BcHandler::kNop)
                   : static_cast<std::uint8_t>(d.kind);
  op.rd = d.rd;
  op.rs1 = d.rs1;
  op.rs2 = d.rs2;
  op.imm = d.imm;
  return op;
}

/// Macro-op fusion table: try to fuse adjacent pair (a at pc, b at pc+4).
/// Returns true and fills `out` when the pair fuses. Conditions are
/// deliberately conservative:
///  - a.rd != 0 (every pair has b reading a's result; x0 would read 0,
///    not the produced value);
///  - b must consume a.rd exactly as the pattern expects;
///  - for cmp+branch, b must compare a.rd against x0 (either operand
///    order) so the fused zero-test is exact.
/// Page-edge handling (b outside the decoded page) is the caller's job:
/// only call with both slots inside one page.
inline bool fuse_rv32(const DecodedInsn& a, const DecodedInsn& b, BcOp& out) {
  if (a.rd == 0) return false;
  const auto emit = [&](BcHandler h, std::int32_t imm, std::int32_t imm2) {
    out.handler = static_cast<std::uint8_t>(h);
    out.rd = a.rd;
    out.rs1 = a.rs1;
    out.rs2 = a.rs2;
    out.imm = imm;
    out.imm2 = imm2;
  };
  switch (a.kind) {
    case OpKind::kLui:
      if (b.kind == OpKind::kAddi && b.rs1 == a.rd) {
        emit(BcHandler::kFusedLuiAddi, a.imm, a.imm + b.imm);
        out.rs2 = b.rd;  // second component's destination
        return true;
      }
      return false;
    case OpKind::kAuipc:
      if (b.kind == OpKind::kAddi && b.rs1 == a.rd) {
        emit(BcHandler::kFusedAuipcAddi, a.imm, a.imm + b.imm);
        out.rs2 = b.rd;
        return true;
      }
      if (b.kind == OpKind::kLw && b.rs1 == a.rd) {
        emit(BcHandler::kFusedAuipcLw, a.imm, a.imm + b.imm);
        out.rs2 = b.rd;
        return true;
      }
      return false;
    case OpKind::kSlli:
      // Rotate idiom: both shifts read the same un-clobbered source; the
      // second destination may be x0 (runtime no-op) or alias rd (last
      // write wins, program order preserved).
      if (b.kind == OpKind::kSrli && b.rs1 == a.rs1 && a.rd != a.rs1) {
        emit(BcHandler::kFusedSlliSrli, a.imm, b.imm);
        out.rs2 = b.rd;
        return true;
      }
      return false;
    case OpKind::kSrli:
      if (b.kind == OpKind::kSlli && b.rs1 == a.rs1 && a.rd != a.rs1) {
        emit(BcHandler::kFusedSrliSlli, a.imm, b.imm);
        out.rs2 = b.rd;
        return true;
      }
      return false;
    case OpKind::kOr:
      // ARX rotate-then-mix: the xor consumes the or'd rotate halves.
      // The handler commits rd first and forwards the or result, so any
      // operand aliasing (including both xor sources == rd) is exact.
      if (b.kind == OpKind::kXor && (b.rs1 == a.rd || b.rs2 == a.rd)) {
        const std::uint8_t other = b.rs1 == a.rd ? b.rs2 : b.rs1;
        emit(BcHandler::kFusedOrXor, other, b.rd);
        return true;
      }
      if (b.kind == OpKind::kXori && b.rs1 == a.rd) {
        emit(BcHandler::kFusedOrXori, b.imm, b.rd);
        return true;
      }
      return false;
    case OpKind::kSlt:
    case OpKind::kSltu:
    case OpKind::kSlti:
    case OpKind::kSltiu:
    case OpKind::kAddi: {
      if (a.kind == OpKind::kAddi && b.kind == OpKind::kAddi) {
        // Paired pointer bumps: the second addi must be a self-update
        // (rd == rs1) of a register the first does not write, so the two
        // halves are independent and commit in program order.
        if (b.rd != 0 && b.rd == b.rs1 && b.rd != a.rd) {
          emit(BcHandler::kFusedAddiAddi, a.imm, b.imm);
          out.rs2 = b.rd;
          return true;
        }
        return false;
      }
      if (b.kind != OpKind::kBeq && b.kind != OpKind::kBne) return false;
      // Zero test of a.rd: beq/bne rd,x0 or x0,rd.
      const bool zero_test = (b.rs1 == a.rd && b.rs2 == 0) ||
                             (b.rs1 == 0 && b.rs2 == a.rd);
      if (!zero_test) return false;
      const bool on_nonzero = b.kind == OpKind::kBne;
      BcHandler h;
      switch (a.kind) {
        case OpKind::kSlt:
          h = on_nonzero ? BcHandler::kFusedSltBnez : BcHandler::kFusedSltBeqz;
          break;
        case OpKind::kSltu:
          h = on_nonzero ? BcHandler::kFusedSltuBnez
                         : BcHandler::kFusedSltuBeqz;
          break;
        case OpKind::kSlti:
          h = on_nonzero ? BcHandler::kFusedSltiBnez
                         : BcHandler::kFusedSltiBeqz;
          break;
        case OpKind::kSltiu:
          h = on_nonzero ? BcHandler::kFusedSltiuBnez
                         : BcHandler::kFusedSltiuBeqz;
          break;
        default:  // kAddi
          h = on_nonzero ? BcHandler::kFusedAddiBnez
                         : BcHandler::kFusedAddiBeqz;
          break;
      }
      // imm2 pre-biased by +4: the branch sits at pair-pc + 4, so the
      // taken target is pair-pc + 4 + b.imm = pair-pc + imm2.
      emit(h, a.imm, b.imm + 4);
      return true;
    }
    default:
      return false;
  }
}

/// Is this handler a fused pair (retires two instructions per dispatch)?
constexpr bool is_fused(BcHandler h) {
  return h >= BcHandler::kFusedLuiAddi;
}

}  // namespace convolve::tee
