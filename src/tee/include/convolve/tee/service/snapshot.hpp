// Frozen SM+enclave world images for per-request CoW forking.
//
// The service's unit of spawning is a (Machine, SecurityMonitor) pair: the
// machine holds memory + PMP, the SM holds the logical enclave table and
// key-derivation state. MachineSnapshot freezes both after measured boot
// and create_enclave -- one memory copy -- and then stamps out any number
// of independent worlds with fork(): each fork's Machine aliases the
// snapshot's pages copy-on-write (Machine's fork constructor) and its SM
// resumes from the snapshotted logical state without touching the PMP, so
// forking costs two page-table allocations rather than a boot + measure +
// load sequence. Forks never write the image, so concurrent forking and
// execution across the pool is race-free by construction.
#pragma once

#include <cstdint>
#include <memory>

#include "convolve/tee/machine.hpp"
#include "convolve/tee/security_monitor.hpp"

namespace convolve::tee::service {

/// One independent executable world: a machine plus the SM driving it.
/// Movable, self-contained (the SM references its paired machine).
struct EnclaveWorld {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<SecurityMonitor> sm;
};

class MachineSnapshot {
 public:
  /// Freeze `machine` + `sm` as they stand (typically: after boot,
  /// create_enclave and any warm-up runs). The machine's memory is copied
  /// once into an immutable image; the SM's logical state is captured by
  /// value. The live objects are left untouched and stay usable.
  static MachineSnapshot freeze(const Machine& machine,
                                const SecurityMonitor& sm);

  /// Stamp out an independent world. `fork_id` keys the fork's seal-nonce
  /// space (use a unique id per fork; 0 is reserved for the master's
  /// pre-snapshot blobs). O(pages) pointer setup, no memory copies.
  EnclaveWorld fork(std::uint32_t fork_id) const;

  /// Fork with flight-recorder attribution: the world's SM is stamped
  /// with `ctx` so everything it records (trap exits, seal rejections)
  /// carries the requesting {tenant, seq} from birth.
  EnclaveWorld fork(std::uint32_t fork_id, const RequestContext& ctx) const;

  const MachineImage& image() const { return *image_; }
  const SmSnapshot& sm_state() const { return sm_; }

 private:
  MachineSnapshot(std::shared_ptr<const MachineImage> image, SmSnapshot sm)
      : image_(std::move(image)), sm_(std::move(sm)) {}

  std::shared_ptr<const MachineImage> image_;
  SmSnapshot sm_;
};

}  // namespace convolve::tee::service
