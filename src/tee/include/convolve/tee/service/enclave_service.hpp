// Enclave-execution service: a concurrent request loop over CoW forks.
//
// The request path (the ROADMAP's "millions of users" story):
//
//   submit()  -- serial admission point. Each request passes the CompSOC
//               TDM admission wheel (per-tenant slots, bounded look-ahead;
//               see compsoc/admission.hpp) and a pending-queue cap; a
//               request that fails either is answered kRejected
//               immediately -- backpressure costs no fork and no wheel
//               time.
//   drain()   -- executes every admitted request across the work-stealing
//               pool (src/common/parallel) and returns all responses of
//               the batch in submission order. Each request runs in its
//               own CoW fork of the frozen snapshot (fork id = seq + 1),
//               so requests share nothing but read-only image pages, and
//               a crashed or trapped request affects exactly itself.
//
// Determinism: a kRun request's input bytes are drawn from
// rng.split(seq) -- the same frozen stream-derivation contract the sca lab
// uses -- so for a fixed submission sequence the response payloads
// (status, data, trap, steps) are bit-identical at any --threads N.
// Latency and fork timings are wall-clock and therefore not deterministic;
// they never influence response payloads, only the stats() histograms
// (p50/p99 via the shared log2-percentile contract in stats.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "convolve/common/rng.hpp"
#include "convolve/common/stats.hpp"
#include "convolve/compsoc/admission.hpp"
#include "convolve/tee/attestation.hpp"
#include "convolve/tee/rv32.hpp"
#include "convolve/tee/service/snapshot.hpp"

namespace convolve::tee::service {

enum class RequestKind : std::uint8_t { kRun, kAttest, kSeal, kUnseal };

struct Request {
  RequestKind kind = RequestKind::kRun;
  int tenant = 0;
  int enclave = 0;

  // kRun: execution budget and entry point (offset into the region).
  std::uint64_t max_steps = 1'000'000;
  std::uint32_t entry_offset = 0;
  // kRun: `input_len` bytes drawn from the request's split(seq) stream are
  // stored at region offset `input_offset` (M-mode, pre-run); after the
  // run, `result_len` bytes at `result_offset` come back as Response.data.
  std::uint32_t input_offset = 0;
  std::uint32_t input_len = 0;
  std::uint32_t result_offset = 0;
  std::uint32_t result_len = 0;

  // kAttest: user data for the report. kSeal: plaintext. kUnseal: blob.
  Bytes payload;
};

enum class Status : std::uint8_t {
  kOk,         // ran to an ecall exit / attest / seal / unseal succeeded
  kRejected,   // admission (TDM wheel or queue cap) shed the request
  kTrap,       // kRun stopped on a non-ecall trap (contained violation)
  kStepLimit,  // kRun exhausted max_steps without trapping
  kError,      // invalid request or execution-side exception
};

struct Response {
  Status status = Status::kError;
  std::uint64_t seq = 0;  // submission order, assigned by submit()
  // kRun outcomes.
  std::optional<Trap> trap;
  std::uint64_t steps = 0;
  // kRun: result window bytes. kSeal: the sealed blob. kUnseal: the
  // recovered plaintext.
  Bytes data;
  std::optional<AttestationReport> report;  // kAttest
  int wait_slots = 0;          // TDM wheel wait (admission latency)
  std::uint64_t latency_ns = 0;  // fork + execute, wall clock
  std::uint64_t fork_ns = 0;     // fork alone
  std::string error;             // kError diagnostics
};

struct ServiceConfig {
  int tdm_period = 8;
  int tdm_max_wait = 8;
  // Wheel slots per tenant (tenant id = index). Empty: one tenant owning
  // the whole wheel (single-tenant service, admission never rejects).
  std::vector<std::vector<int>> tenant_slots;
  // Admitted-but-undrained cap; submissions beyond it are shed.
  std::size_t max_pending = 1024;
  std::uint64_t seed = 0xC0111001DEull;  // root of the split(seq) streams
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t traps = 0;
  std::uint64_t step_limited = 0;
  std::uint64_t errors = 0;
  std::uint64_t forks = 0;
  std::uint64_t wait_slots_total = 0;
  Log2Histogram latency_ns;  // p50/p99 via .percentile(50/99)
  Log2Histogram fork_ns;
};

class EnclaveService {
 public:
  explicit EnclaveService(MachineSnapshot snapshot,
                          const ServiceConfig& config = {});

  /// Serial admission point: assign the next sequence number, run the TDM
  /// wheel + queue-cap checks, and enqueue the request for drain() if
  /// admitted. Rejected requests are answered (kRejected) in the same
  /// batch without executing. Returns the request's seq.
  std::uint64_t submit(const Request& request);

  /// Execute every admitted request of the batch across the pool and
  /// return all responses (admitted + rejected) in submission order.
  /// Responses are bit-identical for a fixed submission sequence at any
  /// thread count (see header comment); stats are folded serially in
  /// submission order after the parallel phase.
  std::vector<Response> drain();

  /// Convenience: submit every request, then drain.
  std::vector<Response> run_batch(const std::vector<Request>& requests);

  const ServiceStats& stats() const { return stats_; }
  const MachineSnapshot& snapshot() const { return snapshot_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct PendingRequest {
    Request request;
    std::uint64_t seq = 0;
    int wait_slots = 0;
  };

  Response execute(const PendingRequest& item) const;

  MachineSnapshot snapshot_;
  ServiceConfig config_;
  compsoc::TdmAdmission admission_;
  Xoshiro256 rng_;
  std::uint64_t next_seq_ = 0;
  std::vector<PendingRequest> pending_;
  std::vector<Response> rejected_;
  ServiceStats stats_;
};

}  // namespace convolve::tee::service
