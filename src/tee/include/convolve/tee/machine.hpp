// Minimal machine model: physical memory fronted by the PMP unit, plus a
// simulated call stack with high-watermark tracking.
//
// We do not model an instruction set; "software" is C++ code that performs
// its loads and stores through Machine::load/store under an explicit
// privilege mode, which is exactly the level at which PMP-based isolation
// operates. The SimStack reproduces the paper's SM stack-size finding: the
// ML-DSA signing working set overflows Keystone's default 8 KB per-core
// stack, which the authors fixed by raising it to 128 KB.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "convolve/common/bytes.hpp"
#include "convolve/tee/pmp.hpp"

namespace convolve::tee {

/// Thrown on a PMP access fault (hardware would raise a trap).
class AccessFault : public std::runtime_error {
 public:
  AccessFault(std::uint64_t addr, AccessType type);
  std::uint64_t address;
  AccessType access;
};

/// Thrown when a SimStack allocation exceeds its capacity.
class StackOverflow : public std::runtime_error {
 public:
  explicit StackOverflow(std::size_t requested, std::size_t capacity);
};

/// A bounded call stack with watermarking. Frames are pushed/popped by the
/// RAII guard StackFrame.
class SimStack {
 public:
  explicit SimStack(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t high_watermark() const { return watermark_; }

  void push(std::size_t bytes);
  void pop(std::size_t bytes);
  void reset_watermark() { watermark_ = used_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t watermark_ = 0;
};

/// RAII stack frame.
class StackFrame {
 public:
  StackFrame(SimStack& stack, std::size_t bytes)
      : stack_(stack), bytes_(bytes) {
    stack_.push(bytes_);
  }
  ~StackFrame() { stack_.pop(bytes_); }
  StackFrame(const StackFrame&) = delete;
  StackFrame& operator=(const StackFrame&) = delete;

 private:
  SimStack& stack_;
  std::size_t bytes_;
};

class Machine {
 public:
  explicit Machine(std::size_t memory_bytes);

  PmpUnit& pmp() { return pmp_; }
  const PmpUnit& pmp() const { return pmp_; }
  std::size_t memory_size() const { return memory_.size(); }

  /// PMP-checked accesses. Throw AccessFault on denial or out-of-range.
  void store(std::uint64_t addr, ByteView data, PrivMode mode);
  Bytes load(std::uint64_t addr, std::size_t len, PrivMode mode) const;
  std::uint8_t load_byte(std::uint64_t addr, PrivMode mode) const;

  /// Fetch check (execution permission on a region).
  bool can_execute(std::uint64_t addr, std::size_t len, PrivMode mode) const;

  /// Instruction fetch: PMP execute permission, 32-bit little-endian.
  std::uint32_t fetch32(std::uint64_t addr, PrivMode mode) const;

  /// Unchecked debug access for test setup/inspection only.
  std::span<std::uint8_t> raw_memory() { return memory_; }

 private:
  std::vector<std::uint8_t> memory_;
  PmpUnit pmp_;

  void bounds_check(std::uint64_t addr, std::size_t len) const;
};

}  // namespace convolve::tee
