// Minimal machine model: physical memory fronted by the PMP unit, plus a
// simulated call stack with high-watermark tracking.
//
// We do not model an instruction set; "software" is C++ code that performs
// its loads and stores through Machine::load/store under an explicit
// privilege mode, which is exactly the level at which PMP-based isolation
// operates. The SimStack reproduces the paper's SM stack-size finding: the
// ML-DSA signing working set overflows Keystone's default 8 KB per-core
// stack, which the authors fixed by raising it to 128 KB.
//
// Copy-on-write forking: memory is addressed through per-page pointer
// tables, so a Machine can be stamped out of a frozen MachineImage with
// every page aliasing the image's bytes. The first write to a page copies
// it into the fork's private backing store (see materialize_page); reads
// and decode caches keep working on the shared bytes until then. A
// non-forked Machine owns all of its pages from construction and pays no
// extra cost beyond the one pointer indirection per access.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "convolve/common/bytes.hpp"
#include "convolve/common/telemetry.hpp"
#include "convolve/tee/pmp.hpp"

namespace convolve::tee {

/// Thrown on a PMP access fault (hardware would raise a trap).
class AccessFault : public std::runtime_error {
 public:
  AccessFault(std::uint64_t addr, AccessType type);
  std::uint64_t address;
  AccessType access;
};

/// Thrown when a SimStack allocation exceeds its capacity.
class StackOverflow : public std::runtime_error {
 public:
  explicit StackOverflow(std::size_t requested, std::size_t capacity);
};

/// A bounded call stack with watermarking. Frames are pushed/popped by the
/// RAII guard StackFrame.
class SimStack {
 public:
  explicit SimStack(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t high_watermark() const { return watermark_; }

  void push(std::size_t bytes);
  void pop(std::size_t bytes);
  void reset_watermark() { watermark_ = used_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t watermark_ = 0;
};

/// RAII stack frame.
class StackFrame {
 public:
  StackFrame(SimStack& stack, std::size_t bytes)
      : stack_(stack), bytes_(bytes) {
    stack_.push(bytes_);
  }
  ~StackFrame() { stack_.pop(bytes_); }
  StackFrame(const StackFrame&) = delete;
  StackFrame& operator=(const StackFrame&) = delete;

 private:
  SimStack& stack_;
  std::size_t bytes_;
};

/// Immutable frozen machine state (memory bytes, per-page store versions,
/// PMP configuration) shared read-only by any number of CoW forks. Created
/// via Machine::freeze(); forks alias its pages until their first write.
/// The byte payload must never be mutated once forks exist -- forks read
/// it concurrently without synchronization.
struct MachineImage {
  std::vector<std::uint8_t> bytes;
  std::vector<std::uint32_t> page_versions;
  PmpUnit pmp;
};

class Machine {
 public:
  /// Memory page granule for decode-cache invalidation and CoW forking:
  /// every store bumps the version counter of the page(s) it touches, so
  /// instruction caches built over a page can be validated with one
  /// compare, and forks copy pages at this granule on first write.
  static constexpr std::uint64_t kPageShift = 12;
  static constexpr std::uint64_t kPageBytes = 1ull << kPageShift;
  static constexpr std::uint64_t kPageMask = kPageBytes - 1;

  explicit Machine(std::size_t memory_bytes);

  /// Copy-on-write fork of a frozen image: every page aliases the image
  /// until first write, page versions and the PMP configuration are
  /// inherited, so decode caches keyed by (page, version) stay valid and
  /// the fork starts in exactly the PMP view the image was frozen in.
  explicit Machine(std::shared_ptr<const MachineImage> image);

#if CONVOLVE_TELEMETRY_ENABLED
  ~Machine() { flush_telemetry(); }
#endif

  /// Freeze the current memory/versions/PMP into an immutable image that
  /// CoW forks can be constructed from. Copies the memory once.
  std::shared_ptr<const MachineImage> freeze() const;

  /// True when this machine was forked from a MachineImage.
  bool is_fork() const { return image_ != nullptr; }

  /// Pages copied out of the shared image so far (0 for non-forks).
  std::uint64_t cow_pages_materialized() const { return cow_materialized_; }

  /// Publish the PMP-memo hit/miss and CoW tallies to the global telemetry
  /// counters (rv32.pmp_memo.hits / rv32.pmp_memo.misses /
  /// tee.cow.pages_materialized) and zero them. Called from the
  /// destructor; call explicitly before snapshotting when the Machine is
  /// still alive. No-op in CONVOLVE_TELEMETRY=OFF builds.
  void flush_telemetry() const;

  /// Credit `n` PMP-memo hits in batch. The hit path of access_ok is too
  /// hot to tally per call, so clients that know their access count credit
  /// it wholesale: the RV32 fast engine credits one hit per retired
  /// instruction (each did exactly one memoized execute check; the refill
  /// misses counted above are a vanishing fraction, and data-access window
  /// hits are deliberately not tallied).
  void credit_memo_hits(std::uint64_t n) const {
    CONVOLVE_TELEMETRY_ONLY(memo_hits_ += n;)
    (void)n;
  }

  PmpUnit& pmp() { return pmp_; }
  const PmpUnit& pmp() const { return pmp_; }
  std::size_t memory_size() const { return size_; }

  /// PMP-checked accesses. Throw AccessFault on denial or out-of-range.
  void store(std::uint64_t addr, ByteView data, PrivMode mode);
  Bytes load(std::uint64_t addr, std::size_t len, PrivMode mode) const;
  std::uint8_t load_byte(std::uint64_t addr, PrivMode mode) const;

  /// PMP-checked constant fill (`len` bytes of `value`), allocation-free
  /// replacement for store(addr, Bytes(len, value), mode) used by the
  /// region-wipe paths. Throws AccessFault like store.
  void fill(std::uint64_t addr, std::size_t len, std::uint8_t value,
            PrivMode mode);

  /// Fetch check (execution permission on a region).
  bool can_execute(std::uint64_t addr, std::size_t len, PrivMode mode) const;

  /// Instruction fetch: PMP execute permission, 32-bit little-endian.
  std::uint32_t fetch32(std::uint64_t addr, PrivMode mode) const;

  // Allocation-free fast path -------------------------------------------
  //
  // The hot interpreter loop uses these instead of load/store/fetch32:
  // no Bytes allocation, no exception on the fault path (a bool status is
  // returned and the caller raises the architectural trap), and the PMP
  // decision is memoized per access type: the last allowed check caches
  // the uniform-decision window from PmpUnit::check_region, so the common
  // case (same region, same mode) is a few compares instead of a 16-entry
  // scan. The memo is keyed by the PMP epoch and is therefore coherent
  // across PMP reprogramming (enter_os/enter_enclave context switches).
  //
  // Multi-byte accesses whose bytes stay within one page (the overwhelming
  // majority) go straight through the page pointer; the rare page-crossing
  // access splices bytes from both pages, which is also what makes the
  // accessors correct on CoW forks where adjacent pages need not be
  // adjacent in host memory.

  bool read8(std::uint64_t addr, PrivMode mode, std::uint8_t& out) const {
    if (!access_ok(addr, 1, mode, AccessType::kRead)) return false;
    out = *rptr(addr);
    return true;
  }
  bool read16(std::uint64_t addr, PrivMode mode, std::uint16_t& out) const {
    if (!access_ok(addr, 2, mode, AccessType::kRead)) return false;
    if ((addr & kPageMask) <= kPageBytes - 2) {
      const std::uint8_t* p = rptr(addr);
      out = static_cast<std::uint16_t>(p[0] |
                                       (static_cast<std::uint16_t>(p[1]) << 8));
    } else {
      out = static_cast<std::uint16_t>(
          *rptr(addr) | (static_cast<std::uint16_t>(*rptr(addr + 1)) << 8));
    }
    return true;
  }
  bool read32(std::uint64_t addr, PrivMode mode, std::uint32_t& out) const {
    if (!access_ok(addr, 4, mode, AccessType::kRead)) return false;
    out = read_u32_raw(addr);
    return true;
  }
  bool write8(std::uint64_t addr, std::uint8_t value, PrivMode mode) {
    if (!access_ok(addr, 1, mode, AccessType::kWrite)) return false;
    *wptr(addr) = value;
    touch_pages(addr, 1);
    return true;
  }
  bool write16(std::uint64_t addr, std::uint16_t value, PrivMode mode) {
    if (!access_ok(addr, 2, mode, AccessType::kWrite)) return false;
    if ((addr & kPageMask) <= kPageBytes - 2) {
      std::uint8_t* p = wptr(addr);
      p[0] = static_cast<std::uint8_t>(value);
      p[1] = static_cast<std::uint8_t>(value >> 8);
    } else {
      *wptr(addr) = static_cast<std::uint8_t>(value);
      *wptr(addr + 1) = static_cast<std::uint8_t>(value >> 8);
    }
    touch_pages(addr, 2);
    return true;
  }
  bool write32(std::uint64_t addr, std::uint32_t value, PrivMode mode) {
    if (!access_ok(addr, 4, mode, AccessType::kWrite)) return false;
    if ((addr & kPageMask) <= kPageBytes - 4) {
      store_le32(wptr(addr), value);
    } else {
      for (int i = 0; i < 4; ++i) {
        *wptr(addr + static_cast<std::uint64_t>(i)) =
            static_cast<std::uint8_t>(value >> (8 * i));
      }
    }
    touch_pages(addr, 4);
    return true;
  }
  /// Non-throwing fetch: execute-permission check through the memo.
  bool fetch32_fast(std::uint64_t addr, PrivMode mode,
                    std::uint32_t& out) const {
    if (!access_ok(addr, 4, mode, AccessType::kExecute)) return false;
    out = read_u32_raw(addr);
    return true;
  }

  /// Bounds + PMP decision for [addr, addr+len), memoized (see above).
  bool access_ok(std::uint64_t addr, std::size_t len, PrivMode mode,
                 AccessType type) const {
    const std::uint64_t end = addr + len;
    if (end > size_ || end < addr) return false;
    PmpMemo& m = memo_[static_cast<std::size_t>(type)];
    if (m.epoch == pmp_.epoch() && m.mode == mode && addr >= m.lo &&
        end <= m.hi) {
      // No tallying on the hit path: access_ok runs once per emulated
      // instruction fetch, and even a plain increment there costs ~3% of
      // fast-engine throughput. Hits are credited in batch instead (see
      // credit_memo_hits); only the cold refill path below counts.
      return true;
    }
    CONVOLVE_TELEMETRY_ONLY(++memo_misses_;)
    const auto r = pmp_.check_region(addr, len, mode, type, size_);
    if (!r.allowed) return false;
    m.lo = r.lo;
    m.hi = r.hi;
    m.mode = mode;
    m.epoch = pmp_.epoch();
    return true;
  }

  /// Execute-permission check for [addr, addr+4) that also hands back the
  /// memoized uniform-decision window [lo, hi): every 4-byte fetch with
  /// lo <= pc && pc + 4 <= hi under the same mode and PMP epoch is allowed
  /// without further checks. The bytecode engine hoists the per-instruction
  /// access_ok out of its dispatch loop with this: within one run() the PMP
  /// epoch cannot change (no CSR instructions; ecall exits the loop), so
  /// the window stays valid until the pc leaves it.
  bool execute_window(std::uint64_t addr, PrivMode mode, std::uint64_t& lo,
                      std::uint64_t& hi) const {
    if (!access_ok(addr, 4, mode, AccessType::kExecute)) return false;
    const PmpMemo& m = memo_[static_cast<std::size_t>(AccessType::kExecute)];
    // Valid on both the hit and the refill path: access_ok either matched
    // this memo or just refilled it. hi is already clamped to memory_size()
    // by check_region's limit argument.
    lo = m.lo;
    hi = m.hi;
    return true;
  }

  /// Version counter of the page containing `addr` (bumped on stores).
  std::uint32_t page_version(std::uint64_t addr) const {
    return page_version_[addr >> kPageShift];
  }

  /// Direct read-only view of a page's bytes for decode caching; the
  /// caller is responsible for the execute-permission check per fetch.
  /// On a fork this points into the shared image until the page is
  /// materialized by a write (which bumps the page version, so decode
  /// caches revalidate and pick up the new pointer).
  const std::uint8_t* page_data(std::uint64_t page_base) const {
    return rpage_[page_base >> kPageShift];
  }

  /// Unchecked debug access for test setup/inspection only. Writes made
  /// through this span bypass page versioning and therefore do NOT
  /// invalidate decoded-instruction caches. On a CoW fork this
  /// materializes every page first (the span must be private and
  /// contiguous); the shared image is never written through it.
  std::span<std::uint8_t> raw_memory() {
    if (image_) materialize_all();
    return {own_.get(), size_};
  }

 private:
  struct PmpMemo {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  // lo == hi: empty (never matches)
    PrivMode mode = PrivMode::kUser;
    std::uint64_t epoch = ~0ull;  // never matches a real epoch initially
  };

  // Shared frozen image (null unless forked). Holding the shared_ptr
  // keeps the aliased pages alive for this fork's lifetime.
  std::shared_ptr<const MachineImage> image_;
  // Private backing store for the full address space. Non-forks own every
  // page here from construction (zero-initialized); forks allocate it
  // uninitialized and copy pages in on first write.
  std::unique_ptr<std::uint8_t[]> own_;
  std::size_t size_ = 0;
  // Per-page views: rpage_[p] is where page p's bytes currently live
  // (image or own_); wpage_[p] is null while the page still aliases the
  // image and must be materialized before writing.
  std::vector<const std::uint8_t*> rpage_;
  std::vector<std::uint8_t*> wpage_;
  std::vector<std::uint32_t> page_version_;
  PmpUnit pmp_;
  mutable std::array<PmpMemo, 3> memo_{};
  std::uint64_t cow_materialized_ = 0;
#if CONVOLVE_TELEMETRY_ENABLED
  mutable std::uint64_t memo_hits_ = 0;
  mutable std::uint64_t memo_misses_ = 0;
  mutable std::uint64_t cow_flushed_ = 0;  // cow_materialized_ published
#endif

  /// Bytes page p actually covers (the last page may be partial).
  std::size_t page_bytes_of(std::uint64_t p) const {
    const std::uint64_t base = p << kPageShift;
    return static_cast<std::size_t>(
        base + kPageBytes <= size_ ? kPageBytes : size_ - base);
  }

  const std::uint8_t* rptr(std::uint64_t addr) const {
    return rpage_[addr >> kPageShift] + (addr & kPageMask);
  }
  std::uint8_t* wptr(std::uint64_t addr) {
    const std::uint64_t p = addr >> kPageShift;
    std::uint8_t* q = wpage_[p];
    if (q == nullptr) q = materialize_page(p);
    return q + (addr & kPageMask);
  }
  std::uint32_t read_u32_raw(std::uint64_t addr) const {
    if ((addr & kPageMask) <= kPageBytes - 4) return load_le32(rptr(addr));
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(*rptr(addr + static_cast<std::uint64_t>(i)))
           << (8 * i);
    }
    return v;
  }

  /// Copy page p out of the shared image into the private backing store
  /// and repoint both views at it. Cold path of wptr.
  std::uint8_t* materialize_page(std::uint64_t p);
  void materialize_all();

  void bounds_check(std::uint64_t addr, std::size_t len,
                    AccessType type) const;
  void touch_pages(std::uint64_t addr, std::size_t len) {
    const std::uint64_t first = addr >> kPageShift;
    const std::uint64_t last = (addr + len - 1) >> kPageShift;
    for (std::uint64_t p = first; p <= last; ++p) ++page_version_[p];
  }
};

}  // namespace convolve::tee
