// Minimal machine model: physical memory fronted by the PMP unit, plus a
// simulated call stack with high-watermark tracking.
//
// We do not model an instruction set; "software" is C++ code that performs
// its loads and stores through Machine::load/store under an explicit
// privilege mode, which is exactly the level at which PMP-based isolation
// operates. The SimStack reproduces the paper's SM stack-size finding: the
// ML-DSA signing working set overflows Keystone's default 8 KB per-core
// stack, which the authors fixed by raising it to 128 KB.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "convolve/common/bytes.hpp"
#include "convolve/common/telemetry.hpp"
#include "convolve/tee/pmp.hpp"

namespace convolve::tee {

/// Thrown on a PMP access fault (hardware would raise a trap).
class AccessFault : public std::runtime_error {
 public:
  AccessFault(std::uint64_t addr, AccessType type);
  std::uint64_t address;
  AccessType access;
};

/// Thrown when a SimStack allocation exceeds its capacity.
class StackOverflow : public std::runtime_error {
 public:
  explicit StackOverflow(std::size_t requested, std::size_t capacity);
};

/// A bounded call stack with watermarking. Frames are pushed/popped by the
/// RAII guard StackFrame.
class SimStack {
 public:
  explicit SimStack(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t high_watermark() const { return watermark_; }

  void push(std::size_t bytes);
  void pop(std::size_t bytes);
  void reset_watermark() { watermark_ = used_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t watermark_ = 0;
};

/// RAII stack frame.
class StackFrame {
 public:
  StackFrame(SimStack& stack, std::size_t bytes)
      : stack_(stack), bytes_(bytes) {
    stack_.push(bytes_);
  }
  ~StackFrame() { stack_.pop(bytes_); }
  StackFrame(const StackFrame&) = delete;
  StackFrame& operator=(const StackFrame&) = delete;

 private:
  SimStack& stack_;
  std::size_t bytes_;
};

class Machine {
 public:
  /// Memory page granule for decode-cache invalidation: every store bumps
  /// the version counter of the page(s) it touches, so instruction caches
  /// built over a page can be validated with one compare.
  static constexpr std::uint64_t kPageShift = 12;
  static constexpr std::uint64_t kPageBytes = 1ull << kPageShift;

  explicit Machine(std::size_t memory_bytes);
#if CONVOLVE_TELEMETRY_ENABLED
  ~Machine() { flush_telemetry(); }
#endif

  /// Publish the PMP-memo hit/miss tallies to the global telemetry
  /// counters (rv32.pmp_memo.hits / rv32.pmp_memo.misses) and zero them.
  /// Called from the destructor; call explicitly before snapshotting when
  /// the Machine is still alive. No-op in CONVOLVE_TELEMETRY=OFF builds.
  void flush_telemetry() const;

  /// Credit `n` PMP-memo hits in batch. The hit path of access_ok is too
  /// hot to tally per call, so clients that know their access count credit
  /// it wholesale: the RV32 fast engine credits one hit per retired
  /// instruction (each did exactly one memoized execute check; the refill
  /// misses counted above are a vanishing fraction, and data-access window
  /// hits are deliberately not tallied).
  void credit_memo_hits(std::uint64_t n) const {
    CONVOLVE_TELEMETRY_ONLY(memo_hits_ += n;)
    (void)n;
  }

  PmpUnit& pmp() { return pmp_; }
  const PmpUnit& pmp() const { return pmp_; }
  std::size_t memory_size() const { return memory_.size(); }

  /// PMP-checked accesses. Throw AccessFault on denial or out-of-range.
  void store(std::uint64_t addr, ByteView data, PrivMode mode);
  Bytes load(std::uint64_t addr, std::size_t len, PrivMode mode) const;
  std::uint8_t load_byte(std::uint64_t addr, PrivMode mode) const;

  /// PMP-checked constant fill (`len` bytes of `value`), allocation-free
  /// replacement for store(addr, Bytes(len, value), mode) used by the
  /// region-wipe paths. Throws AccessFault like store.
  void fill(std::uint64_t addr, std::size_t len, std::uint8_t value,
            PrivMode mode);

  /// Fetch check (execution permission on a region).
  bool can_execute(std::uint64_t addr, std::size_t len, PrivMode mode) const;

  /// Instruction fetch: PMP execute permission, 32-bit little-endian.
  std::uint32_t fetch32(std::uint64_t addr, PrivMode mode) const;

  // Allocation-free fast path -------------------------------------------
  //
  // The hot interpreter loop uses these instead of load/store/fetch32:
  // no Bytes allocation, no exception on the fault path (a bool status is
  // returned and the caller raises the architectural trap), and the PMP
  // decision is memoized per access type: the last allowed check caches
  // the uniform-decision window from PmpUnit::check_region, so the common
  // case (same region, same mode) is a few compares instead of a 16-entry
  // scan. The memo is keyed by the PMP epoch and is therefore coherent
  // across PMP reprogramming (enter_os/enter_enclave context switches).

  bool read8(std::uint64_t addr, PrivMode mode, std::uint8_t& out) const {
    if (!access_ok(addr, 1, mode, AccessType::kRead)) return false;
    out = memory_[addr];
    return true;
  }
  bool read16(std::uint64_t addr, PrivMode mode, std::uint16_t& out) const {
    if (!access_ok(addr, 2, mode, AccessType::kRead)) return false;
    out = static_cast<std::uint16_t>(
        memory_[addr] | (static_cast<std::uint16_t>(memory_[addr + 1]) << 8));
    return true;
  }
  bool read32(std::uint64_t addr, PrivMode mode, std::uint32_t& out) const {
    if (!access_ok(addr, 4, mode, AccessType::kRead)) return false;
    out = load_le32(memory_.data() + addr);
    return true;
  }
  bool write8(std::uint64_t addr, std::uint8_t value, PrivMode mode) {
    if (!access_ok(addr, 1, mode, AccessType::kWrite)) return false;
    memory_[addr] = value;
    touch_pages(addr, 1);
    return true;
  }
  bool write16(std::uint64_t addr, std::uint16_t value, PrivMode mode) {
    if (!access_ok(addr, 2, mode, AccessType::kWrite)) return false;
    memory_[addr] = static_cast<std::uint8_t>(value);
    memory_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    touch_pages(addr, 2);
    return true;
  }
  bool write32(std::uint64_t addr, std::uint32_t value, PrivMode mode) {
    if (!access_ok(addr, 4, mode, AccessType::kWrite)) return false;
    store_le32(memory_.data() + addr, value);
    touch_pages(addr, 4);
    return true;
  }
  /// Non-throwing fetch: execute-permission check through the memo.
  bool fetch32_fast(std::uint64_t addr, PrivMode mode,
                    std::uint32_t& out) const {
    if (!access_ok(addr, 4, mode, AccessType::kExecute)) return false;
    out = load_le32(memory_.data() + addr);
    return true;
  }

  /// Bounds + PMP decision for [addr, addr+len), memoized (see above).
  bool access_ok(std::uint64_t addr, std::size_t len, PrivMode mode,
                 AccessType type) const {
    const std::uint64_t end = addr + len;
    if (end > memory_.size() || end < addr) return false;
    PmpMemo& m = memo_[static_cast<std::size_t>(type)];
    if (m.epoch == pmp_.epoch() && m.mode == mode && addr >= m.lo &&
        end <= m.hi) {
      // No tallying on the hit path: access_ok runs once per emulated
      // instruction fetch, and even a plain increment there costs ~3% of
      // fast-engine throughput. Hits are credited in batch instead (see
      // credit_memo_hits); only the cold refill path below counts.
      return true;
    }
    CONVOLVE_TELEMETRY_ONLY(++memo_misses_;)
    const auto r = pmp_.check_region(addr, len, mode, type, memory_.size());
    if (!r.allowed) return false;
    m.lo = r.lo;
    m.hi = r.hi;
    m.mode = mode;
    m.epoch = pmp_.epoch();
    return true;
  }

  /// Execute-permission check for [addr, addr+4) that also hands back the
  /// memoized uniform-decision window [lo, hi): every 4-byte fetch with
  /// lo <= pc && pc + 4 <= hi under the same mode and PMP epoch is allowed
  /// without further checks. The bytecode engine hoists the per-instruction
  /// access_ok out of its dispatch loop with this: within one run() the PMP
  /// epoch cannot change (no CSR instructions; ecall exits the loop), so
  /// the window stays valid until the pc leaves it.
  bool execute_window(std::uint64_t addr, PrivMode mode, std::uint64_t& lo,
                      std::uint64_t& hi) const {
    if (!access_ok(addr, 4, mode, AccessType::kExecute)) return false;
    const PmpMemo& m = memo_[static_cast<std::size_t>(AccessType::kExecute)];
    // Valid on both the hit and the refill path: access_ok either matched
    // this memo or just refilled it. hi is already clamped to memory_size()
    // by check_region's limit argument.
    lo = m.lo;
    hi = m.hi;
    return true;
  }

  /// Version counter of the page containing `addr` (bumped on stores).
  std::uint32_t page_version(std::uint64_t addr) const {
    return page_version_[addr >> kPageShift];
  }

  /// Direct read-only view of a page's bytes for decode caching; the
  /// caller is responsible for the execute-permission check per fetch.
  const std::uint8_t* page_data(std::uint64_t page_base) const {
    return memory_.data() + page_base;
  }

  /// Unchecked debug access for test setup/inspection only. Writes made
  /// through this span bypass page versioning and therefore do NOT
  /// invalidate decoded-instruction caches.
  std::span<std::uint8_t> raw_memory() { return memory_; }

 private:
  struct PmpMemo {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  // lo == hi: empty (never matches)
    PrivMode mode = PrivMode::kUser;
    std::uint64_t epoch = ~0ull;  // never matches a real epoch initially
  };

  std::vector<std::uint8_t> memory_;
  std::vector<std::uint32_t> page_version_;
  PmpUnit pmp_;
  mutable std::array<PmpMemo, 3> memo_{};
#if CONVOLVE_TELEMETRY_ENABLED
  mutable std::uint64_t memo_hits_ = 0;
  mutable std::uint64_t memo_misses_ = 0;
#endif

  void bounds_check(std::uint64_t addr, std::size_t len,
                    AccessType type) const;
  void touch_pages(std::uint64_t addr, std::size_t len) {
    const std::uint64_t first = addr >> kPageShift;
    const std::uint64_t last = (addr + len - 1) >> kPageShift;
    for (std::uint64_t p = first; p <= last; ++p) ++page_version_[p];
  }
};

}  // namespace convolve::tee
