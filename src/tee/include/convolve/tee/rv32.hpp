// RV32IM instruction-set simulator over the PMP-checked machine model.
//
// The paper's platform is a Rocket (RV64GC) SoC; for the isolation
// semantics under study, a clean RV32IM core is the faithful scale model:
// every fetch, load and store goes through the Machine's PMP unit at the
// hart's privilege level, so enclave/OS/task isolation applies to *real
// executing code*, not just to API calls. The base integer ISA plus the
// M extension is enough to run the loop/branch/memcpy-style payloads the
// tests and examples use.
//
// Traps (PMP faults, illegal instructions, ecall/ebreak) stop execution
// and are reported to the embedder -- the security monitor or kernel
// decides whether to kill, restart or service the hart.
//
// Three execution engines share the architectural state: step() is the
// straightforward fetch-decode-execute reference interpreter; the
// decode-cache engine (per-page decoded-instruction cache +
// allocation-free, exception-free memory path with memoized PMP lookups)
// is the middle tier; and the default bytecode engine rewrites each
// decoded page into a compact bytecode stream (handler byte + packed
// operands, macro-op fusion of lui+addi / auipc+addi / auipc+lw /
// cmp+branch pairs) run by a threaded dispatch loop — computed-goto under
// GCC/Clang, dense switch elsewhere. All tiers are differentially tested
// to be bit-identical to the reference, including trap cause/pc/tval and
// step accounting.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "convolve/tee/machine.hpp"
#include "convolve/tee/rv32_decode.hpp"

namespace convolve::tee {

enum class TrapCause : std::uint8_t {
  kIllegalInstruction,
  kInstructionAccessFault,
  kLoadAccessFault,
  kStoreAccessFault,
  kMisalignedFetch,
  kEcall,
  kEbreak,
};

struct Trap {
  TrapCause cause;
  std::uint32_t pc;    // pc of the trapping instruction
  std::uint32_t tval;  // faulting address or raw instruction
};

/// Execution tier used by Rv32Cpu::run(). All tiers are architecturally
/// bit-identical (registers, memory, pc, retired count, trap
/// cause/pc/tval, step counts); they differ only in speed.
enum class Rv32Engine : std::uint8_t {
  kInterpreted = 0,  // step() in a loop — the reference oracle
  kDecodeCache = 1,  // per-page DecodedInsn cache, switch dispatch
  kBytecode = 2,     // threaded bytecode dispatch + macro-op fusion
};

class Rv32Cpu {
 public:
  Rv32Cpu(Machine& machine, std::uint32_t entry_pc, PrivMode mode);
  ~Rv32Cpu();

  /// Publish this hart's telemetry tallies (rv32.instructions_retired,
  /// rv32.decode_cache.{hits,misses,invalidations}) to the global counters
  /// and zero them. Called from the destructor; call explicitly before
  /// snapshotting while the hart is alive. No-op when CONVOLVE_TELEMETRY
  /// is OFF.
  void flush_telemetry();

  /// Execute one instruction via the reference interpreter. Returns a
  /// trap (pc NOT advanced past the trapping instruction, except for
  /// ecall/ebreak where it is) or nullopt on normal completion. This is
  /// the oracle the fast engine is differentially tested against.
  std::optional<Trap> step();

  struct RunResult {
    std::uint64_t steps = 0;
    std::optional<Trap> trap;  // set when stopped by a trap
  };

  /// Run until a trap or `max_steps` instructions on the selected engine
  /// (default: the bytecode tier). Decoded-instruction pages are validated
  /// against the machine's per-page store versions, so self-modifying code
  /// re-decodes; memory accesses are allocation-free with memoized PMP
  /// windows; nothing throws on the per-instruction path. Architectural
  /// state (registers, pc, retired count, trap cause/pc/tval) is
  /// bit-identical to run_interpreted on every tier.
  RunResult run(std::uint64_t max_steps);

  /// Select the execution tier used by run(). Takes effect on the next
  /// run() call; architectural state carries over between tiers.
  void set_engine(Rv32Engine engine) { engine_ = engine; }
  Rv32Engine engine() const { return engine_; }
  static constexpr Rv32Engine kDefaultEngine = Rv32Engine::kBytecode;

  /// Run the same contract on the legacy step() interpreter. Kept as the
  /// reference implementation for differential testing and benchmarking.
  RunResult run_interpreted(std::uint64_t max_steps);

  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }
  std::uint32_t reg(int index) const;
  void set_reg(int index, std::uint32_t value);
  PrivMode privilege() const { return mode_; }
  void set_privilege(PrivMode mode) { mode_ = mode; }
  std::uint64_t instructions_retired() const { return retired_; }

 private:
  // Decoded-instruction cache: 2-way set-associative over PC pages with a
  // per-set 1-bit LRU. A way holds one fully decoded 4 KB page (both the
  // DecodedInsn array used by the decode-cache tier and the BcOp bytecode
  // used by the threaded tier); it is valid while the machine's store
  // version of that page is unchanged (stores to executable regions bump
  // it, invalidating stale decodes). Two ways per set so a pair of hot
  // pages whose bases alias to the same set (e.g. call sites 32 KB apart)
  // coexist instead of ping-ponging through full re-decodes.
  static constexpr std::size_t kPageInsts =
      Machine::kPageBytes / 4;  // 32-bit instructions only
  struct DecodedPage {
    std::uint64_t base = ~0ull;  // page base address; all-ones = empty
    std::uint32_t version = 0;   // Machine::page_version at decode time
    bool bc_linked = false;      // bytecode[].target linked to handler labels
    std::array<DecodedInsn, kPageInsts> insts{};
    std::array<BcOp, kPageInsts> bytecode{};
  };
  static constexpr std::size_t kCacheSets = 8;  // power of two
  static constexpr std::size_t kCacheWays = 2;  // 16 x 4 KB of code total
  struct CacheSet {
    std::array<DecodedPage, kCacheWays> way{};
    std::uint8_t mru = 0;  // most-recently-used way; miss evicts the other
  };

  DecodedPage* decoded_page(std::uint64_t page_base);
  void decode_page_into(DecodedPage& slot, std::uint64_t page_base,
                        std::uint32_t version);
  RunResult run_fast(std::uint64_t max_steps);
  RunResult run_bytecode(std::uint64_t max_steps);

  Machine& machine_;
  std::uint32_t pc_;
  PrivMode mode_;
  Rv32Engine engine_ = kDefaultEngine;
  std::array<std::uint32_t, 32> x_{};
  std::uint64_t retired_ = 0;
  std::unique_ptr<std::array<CacheSet, kCacheSets>> dcache_;
#if CONVOLVE_TELEMETRY_ENABLED
  // Plain per-hart tallies, flushed in bulk by flush_telemetry(): the run()
  // loop must not touch an atomic per instruction (the telemetry-ON build
  // is gated to within 2% of OFF on the ALU workload).
  std::uint64_t fast_steps_ = 0;        // instructions retired via run_fast
  std::uint64_t bc_steps_ = 0;          // instructions retired via bytecode
  std::uint64_t fused_exec_ = 0;        // fused pairs executed fused
  std::uint64_t fused_emitted_ = 0;     // fused pairs emitted at decode time
  std::uint64_t flushed_retired_ = 0;   // retired_ already published
  std::uint64_t dc_decodes_ = 0;        // decoded_page() actually decoding
  std::uint64_t dc_invalidations_ = 0;  // decodes caused by version bumps
#endif
};

/// Instruction encoders for building test/demo programs without an
/// external assembler. Register arguments are x0..x31 indices.
namespace rv32asm {

std::uint32_t lui(int rd, std::uint32_t imm20);
std::uint32_t auipc(int rd, std::uint32_t imm20);
std::uint32_t jal(int rd, std::int32_t offset);
std::uint32_t jalr(int rd, int rs1, std::int32_t offset);
std::uint32_t beq(int rs1, int rs2, std::int32_t offset);
std::uint32_t bne(int rs1, int rs2, std::int32_t offset);
std::uint32_t blt(int rs1, int rs2, std::int32_t offset);
std::uint32_t bge(int rs1, int rs2, std::int32_t offset);
std::uint32_t bltu(int rs1, int rs2, std::int32_t offset);
std::uint32_t bgeu(int rs1, int rs2, std::int32_t offset);
std::uint32_t lb(int rd, int rs1, std::int32_t offset);
std::uint32_t lh(int rd, int rs1, std::int32_t offset);
std::uint32_t lw(int rd, int rs1, std::int32_t offset);
std::uint32_t lbu(int rd, int rs1, std::int32_t offset);
std::uint32_t lhu(int rd, int rs1, std::int32_t offset);
std::uint32_t sb(int rs2, int rs1, std::int32_t offset);
std::uint32_t sh(int rs2, int rs1, std::int32_t offset);
std::uint32_t sw(int rs2, int rs1, std::int32_t offset);
std::uint32_t addi(int rd, int rs1, std::int32_t imm);
std::uint32_t slti(int rd, int rs1, std::int32_t imm);
std::uint32_t sltiu(int rd, int rs1, std::int32_t imm);
std::uint32_t xori(int rd, int rs1, std::int32_t imm);
std::uint32_t ori(int rd, int rs1, std::int32_t imm);
std::uint32_t andi(int rd, int rs1, std::int32_t imm);
std::uint32_t slli(int rd, int rs1, int shamt);
std::uint32_t srli(int rd, int rs1, int shamt);
std::uint32_t srai(int rd, int rs1, int shamt);
std::uint32_t add(int rd, int rs1, int rs2);
std::uint32_t sub(int rd, int rs1, int rs2);
std::uint32_t sll(int rd, int rs1, int rs2);
std::uint32_t slt(int rd, int rs1, int rs2);
std::uint32_t sltu(int rd, int rs1, int rs2);
std::uint32_t xor_(int rd, int rs1, int rs2);
std::uint32_t srl(int rd, int rs1, int rs2);
std::uint32_t sra(int rd, int rs1, int rs2);
std::uint32_t or_(int rd, int rs1, int rs2);
std::uint32_t and_(int rd, int rs1, int rs2);
std::uint32_t mul(int rd, int rs1, int rs2);
std::uint32_t mulh(int rd, int rs1, int rs2);
std::uint32_t mulhsu(int rd, int rs1, int rs2);
std::uint32_t mulhu(int rd, int rs1, int rs2);
std::uint32_t div(int rd, int rs1, int rs2);
std::uint32_t divu(int rd, int rs1, int rs2);
std::uint32_t rem(int rd, int rs1, int rs2);
std::uint32_t remu(int rd, int rs1, int rs2);
std::uint32_t ecall();
std::uint32_t ebreak();
std::uint32_t nop();

/// Serialize a program (one word per instruction, little-endian).
Bytes assemble(const std::vector<std::uint32_t>& words);

}  // namespace rv32asm

}  // namespace convolve::tee
