// Measured boot: the bootrom model of the paper's PQ-enabled Keystone.
//
// At power-on the bootrom (1) measures the security-monitor image in DRAM
// with SHA3-512, (2) signs the measurement with the per-device keys, and
// (3) derives the SM's own key material from the device keys, so the SM
// never holds the device secrets. Following the paper, the ML-DSA device
// key is stored as a 32-byte seed and regenerated at boot to keep the
// bootrom small ("we mitigate this by storing the ML-DSA key as 32-byte
// seed, and deterministically regenerate the key during boot").
//
// The bootrom size accounting reproduces Table III: the classical bootrom
// models 50.7 KB; adding the ML-DSA signing code (~9.4 KB), the seed and
// hybrid glue raises it to 60.2 KB.
#pragma once

#include <array>

#include "convolve/common/bytes.hpp"
#include "convolve/crypto/dilithium.hpp"
#include "convolve/crypto/ed25519.hpp"

namespace convolve::tee {

struct BootromConfig {
  bool pq_enabled = false;  // hybrid Ed25519 + ML-DSA-44 when true
};

/// Per-device root-of-trust secrets (fused at manufacturing).
struct DeviceKeys {
  std::array<std::uint8_t, 32> ed25519_seed{};
  std::array<std::uint8_t, 32> mldsa_seed{};  // stored as seed (paper)

  static DeviceKeys from_entropy(ByteView entropy32);
};

/// Everything the bootrom hands to the security monitor.
struct BootRecord {
  bool pq_enabled = false;
  Bytes sm_measurement;  // SHA3-512 of the SM image

  // Public halves of the device identity (the verifier's trust anchors).
  std::array<std::uint8_t, 32> device_ed25519_pk{};
  Bytes device_mldsa_pk;  // empty when !pq_enabled

  // SM keys, derived from device keys and the measurement: a tampered SM
  // image yields different keys, so its attestations will not verify
  // against certificates for the genuine SM.
  crypto::Ed25519KeyPair sm_ed25519;
  crypto::dilithium::KeyPair sm_mldsa;  // empty when !pq_enabled

  // Device signatures over (measurement || SM public keys).
  std::array<std::uint8_t, 64> device_sig_ed25519{};
  Bytes device_sig_mldsa;  // empty when !pq_enabled

  // Root secret for the sealing-key hierarchy (derived from BOTH device
  // secrets in PQ mode, per the paper's hybrid sealing-key derivation).
  Bytes sealing_root;
};

class Bootrom {
 public:
  Bootrom(const BootromConfig& config, const DeviceKeys& keys);

  /// Measure + sign + derive. `sm_image` is the SM binary as found in DRAM.
  BootRecord boot(ByteView sm_image) const;

  /// Modeled on-chip ROM footprint in bytes (Table III row 1).
  std::size_t size_bytes() const;

  /// Verifier-side check of the boot signature chain.
  static bool verify_boot_record(const BootRecord& record);

  // Size model components (bytes), documented for the bench output.
  static constexpr std::size_t kBaseBootCode = 27400;
  static constexpr std::size_t kSha3Code = 6800;
  static constexpr std::size_t kEd25519Code = 16200;
  static constexpr std::size_t kKeyManifest = 300;
  static constexpr std::size_t kMlDsaCode = 9404;
  static constexpr std::size_t kMlDsaSeed = 32;
  static constexpr std::size_t kHybridGlue = 64;

 private:
  BootromConfig config_;
  DeviceKeys keys_;
};

}  // namespace convolve::tee
