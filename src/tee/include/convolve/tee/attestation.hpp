// Attestation reports, classical and hybrid post-quantum.
//
// The serialized report sizes reproduce the paper's Table III exactly:
//   classical: 1320 bytes
//     device Ed25519 pk (32) + SM block (measurement 64 + pk 32 + device
//     sig 64 = 160) + enclave block (measurement 64 + data_len 8 + data 992
//     + SM sig 64 = 1128)
//   PQ-enabled: 7472 bytes = 1320 + SM ML-DSA pk (1312) + device ML-DSA
//     sig (2420) + SM ML-DSA sig (2420)
// In PQ mode the hybrid rule applies: a report verifies only if BOTH the
// classical and the ML-DSA signatures verify, so security never drops
// below the Ed25519 baseline.
#pragma once

#include <array>
#include <optional>

#include "convolve/common/bytes.hpp"
#include "convolve/tee/bootrom.hpp"

namespace convolve::tee {

inline constexpr std::size_t kEnclaveDataMax = 992;
inline constexpr std::size_t kClassicalReportSize = 1320;
inline constexpr std::size_t kPqReportSize =
    kClassicalReportSize + 1312 + 2420 + 2420;  // 7472

struct AttestationReport {
  bool pq_enabled = false;

  std::array<std::uint8_t, 32> device_ed25519_pk{};

  // SM block.
  Bytes sm_measurement;                       // 64
  std::array<std::uint8_t, 32> sm_ed25519_pk{};
  std::array<std::uint8_t, 64> device_sig_ed25519{};

  // Enclave block.
  Bytes enclave_measurement;                  // 64
  Bytes enclave_data;                         // <= kEnclaveDataMax
  std::array<std::uint8_t, 64> sm_sig_ed25519{};

  // PQ extension.
  Bytes sm_mldsa_pk;       // 1312
  Bytes device_sig_mldsa;  // 2420
  Bytes sm_sig_mldsa;      // 2420

  /// Flat wire format; size is kClassicalReportSize or kPqReportSize.
  Bytes serialize() const;
  static std::optional<AttestationReport> deserialize(ByteView data);
};

/// Trust anchors a remote verifier holds for one device.
struct VerifierTrustAnchor {
  std::array<std::uint8_t, 32> device_ed25519_pk{};
  Bytes device_mldsa_pk;  // empty for classical-only devices
};

/// Full chain verification: device sig over (SM measurement || SM pks),
/// SM sig over (enclave measurement || data). Optionally pin the expected
/// SM and enclave measurements.
bool verify_report(const AttestationReport& report,
                   const VerifierTrustAnchor& anchor,
                   const Bytes* expected_sm_measurement = nullptr,
                   const Bytes* expected_enclave_measurement = nullptr);

}  // namespace convolve::tee
