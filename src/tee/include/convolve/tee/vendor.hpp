// Vendor certificate authority for device identities.
//
// Completes the attestation trust chain the paper's remote-attestation
// story needs in the field: a verifier does not hold per-device keys, it
// holds the *vendor's* root keys and checks a device certificate issued at
// manufacturing. Hybrid rule throughout: certificates carry Ed25519 and
// (when PQ-enabled) ML-DSA signatures, and verification requires both.
//
//   vendor root --signs--> device certificate (device pks)
//   device keys --sign---> SM measurement + SM pks      (bootrom)
//   SM keys ----sign----> enclave measurement + data    (attest)
#pragma once

#include <optional>

#include "convolve/tee/attestation.hpp"
#include "convolve/tee/bootrom.hpp"

namespace convolve::tee {

struct DeviceCertificate {
  Bytes device_id;  // vendor-assigned serial (opaque)
  bool pq_enabled = false;
  std::array<std::uint8_t, 32> device_ed25519_pk{};
  Bytes device_mldsa_pk;  // empty when !pq_enabled

  std::array<std::uint8_t, 64> vendor_sig_ed25519{};
  Bytes vendor_sig_mldsa;  // empty when !pq_enabled

  Bytes serialize() const;
};

/// The manufacturer's signing root. In production this lives in an HSM;
/// here it is deterministic from a seed for reproducible tests.
class VendorCa {
 public:
  VendorCa(ByteView seed32, bool pq_enabled);

  /// Issue a certificate binding `device_id` to the device public keys
  /// found in a boot record.
  DeviceCertificate issue(ByteView device_id, const BootRecord& boot) const;

  /// The vendor's public keys -- the ONLY thing a remote verifier needs
  /// to pin.
  std::array<std::uint8_t, 32> root_ed25519_pk() const;
  const Bytes& root_mldsa_pk() const { return mldsa_.pk; }
  bool pq_enabled() const { return pq_; }

 private:
  bool pq_;
  crypto::Ed25519KeyPair ed25519_;
  crypto::dilithium::KeyPair mldsa_;
};

/// Verifier-side: check the vendor signature(s) on a certificate against
/// the pinned vendor roots, and produce the trust anchor for
/// verify_report(). Returns nullopt when the certificate does not verify.
std::optional<VerifierTrustAnchor> verify_certificate(
    const DeviceCertificate& cert,
    const std::array<std::uint8_t, 32>& vendor_ed25519_pk,
    const Bytes& vendor_mldsa_pk);

}  // namespace convolve::tee
