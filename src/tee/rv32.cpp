#include "convolve/tee/rv32.hpp"

#include <stdexcept>

namespace convolve::tee {

namespace {

std::int32_t sign_extend(std::uint32_t value, int bits) {
  const std::uint32_t mask = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ mask) - mask);
}

}  // namespace

Rv32Cpu::Rv32Cpu(Machine& machine, std::uint32_t entry_pc, PrivMode mode)
    : machine_(machine), pc_(entry_pc), mode_(mode) {}

#if CONVOLVE_TELEMETRY_ENABLED
namespace {
telemetry::Counter t_retired{"rv32.instructions_retired"};
telemetry::Counter t_dc_hits{"rv32.decode_cache.hits"};
telemetry::Counter t_dc_misses{"rv32.decode_cache.misses"};
telemetry::Counter t_dc_invalidations{"rv32.decode_cache.invalidations"};
telemetry::Counter t_bc_insns{"rv32.bytecode.instructions"};
telemetry::Counter t_fusion_pairs{"rv32.fusion.pairs"};
telemetry::Counter t_fusion_emitted{"rv32.fusion.emitted"};
}  // namespace

Rv32Cpu::~Rv32Cpu() { flush_telemetry(); }

void Rv32Cpu::flush_telemetry() {
  t_retired.add(retired_ - flushed_retired_);
  flushed_retired_ = retired_;
  // A "hit" is an instruction served from an already-decoded page (either
  // fast tier); each decoded_page() decode corresponds to the one
  // instruction that forced it (a miss), everything else executed cached
  // decodes.
  const std::uint64_t cached_steps = fast_steps_ + bc_steps_;
  t_dc_hits.add(cached_steps > dc_decodes_ ? cached_steps - dc_decodes_ : 0);
  t_dc_misses.add(dc_decodes_);
  t_dc_invalidations.add(dc_invalidations_);
  t_bc_insns.add(bc_steps_);
  t_fusion_pairs.add(fused_exec_);
  t_fusion_emitted.add(fused_emitted_);
  // Each decode-cache-tier retired instruction performed one memoized PMP
  // execute check; credit those hits wholesale (access_ok's hit path is
  // too hot to count per call). The bytecode tier hoists the check out of
  // the loop entirely, so its steps are deliberately NOT credited.
  machine_.credit_memo_hits(fast_steps_);
  fast_steps_ = 0;
  bc_steps_ = 0;
  fused_exec_ = 0;
  fused_emitted_ = 0;
  dc_decodes_ = 0;
  dc_invalidations_ = 0;
}
#else
Rv32Cpu::~Rv32Cpu() = default;
void Rv32Cpu::flush_telemetry() {}
#endif

std::uint32_t Rv32Cpu::reg(int index) const {
  if (index < 0 || index > 31) throw std::out_of_range("Rv32Cpu::reg");
  return x_[static_cast<std::size_t>(index)];
}

void Rv32Cpu::set_reg(int index, std::uint32_t value) {
  if (index < 0 || index > 31) throw std::out_of_range("Rv32Cpu::set_reg");
  if (index != 0) x_[static_cast<std::size_t>(index)] = value;
}

std::optional<Trap> Rv32Cpu::step() {
  if (pc_ % 4 != 0) {
    return Trap{TrapCause::kMisalignedFetch, pc_, pc_};
  }
  std::uint32_t inst;
  try {
    inst = machine_.fetch32(pc_, mode_);
  } catch (const AccessFault&) {
    return Trap{TrapCause::kInstructionAccessFault, pc_, pc_};
  }

  const std::uint32_t opcode = inst & 0x7f;
  const int rd = static_cast<int>((inst >> 7) & 0x1f);
  const int rs1 = static_cast<int>((inst >> 15) & 0x1f);
  const int rs2 = static_cast<int>((inst >> 20) & 0x1f);
  const std::uint32_t funct3 = (inst >> 12) & 0x7;
  const std::uint32_t funct7 = inst >> 25;
  const std::uint32_t a = reg(rs1);
  const std::uint32_t b = reg(rs2);

  std::uint32_t next_pc = pc_ + 4;

  switch (opcode) {
    case 0x37:  // LUI
      set_reg(rd, inst & 0xfffff000u);
      break;
    case 0x17:  // AUIPC
      set_reg(rd, pc_ + (inst & 0xfffff000u));
      break;
    case 0x6f: {  // JAL
      const std::uint32_t imm = ((inst >> 31) << 20) |
                                (((inst >> 12) & 0xff) << 12) |
                                (((inst >> 20) & 1) << 11) |
                                (((inst >> 21) & 0x3ff) << 1);
      set_reg(rd, pc_ + 4);
      next_pc = pc_ + static_cast<std::uint32_t>(sign_extend(imm, 21));
      break;
    }
    case 0x67: {  // JALR
      const std::int32_t imm = sign_extend(inst >> 20, 12);
      const std::uint32_t target =
          (a + static_cast<std::uint32_t>(imm)) & ~1u;
      set_reg(rd, pc_ + 4);
      next_pc = target;
      break;
    }
    case 0x63: {  // BRANCH
      const std::uint32_t imm = ((inst >> 31) << 12) |
                                (((inst >> 7) & 1) << 11) |
                                (((inst >> 25) & 0x3f) << 5) |
                                (((inst >> 8) & 0xf) << 1);
      const std::int32_t offset = sign_extend(imm, 13);
      bool taken = false;
      switch (funct3) {
        case 0: taken = (a == b); break;
        case 1: taken = (a != b); break;
        case 4: taken = (static_cast<std::int32_t>(a) <
                         static_cast<std::int32_t>(b)); break;
        case 5: taken = (static_cast<std::int32_t>(a) >=
                         static_cast<std::int32_t>(b)); break;
        case 6: taken = (a < b); break;
        case 7: taken = (a >= b); break;
        default:
          return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      if (taken) next_pc = pc_ + static_cast<std::uint32_t>(offset);
      break;
    }
    case 0x03: {  // LOAD
      const std::int32_t imm = sign_extend(inst >> 20, 12);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      std::size_t len;
      switch (funct3) {
        case 0: case 4: len = 1; break;
        case 1: case 5: len = 2; break;
        case 2: len = 4; break;
        default:
          return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      Bytes data;
      try {
        data = machine_.load(addr, len, mode_);
      } catch (const AccessFault&) {
        return Trap{TrapCause::kLoadAccessFault, pc_, addr};
      }
      std::uint32_t value = 0;
      for (std::size_t i = 0; i < len; ++i) {
        value |= static_cast<std::uint32_t>(data[i]) << (8 * i);
      }
      if (funct3 == 0) value = static_cast<std::uint32_t>(
          sign_extend(value, 8));
      if (funct3 == 1) value = static_cast<std::uint32_t>(
          sign_extend(value, 16));
      set_reg(rd, value);
      break;
    }
    case 0x23: {  // STORE
      const std::uint32_t imm = ((inst >> 25) << 5) | ((inst >> 7) & 0x1f);
      const std::uint32_t addr =
          a + static_cast<std::uint32_t>(sign_extend(imm, 12));
      std::size_t len;
      switch (funct3) {
        case 0: len = 1; break;
        case 1: len = 2; break;
        case 2: len = 4; break;
        default:
          return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      Bytes data(len);
      for (std::size_t i = 0; i < len; ++i) {
        data[i] = static_cast<std::uint8_t>(b >> (8 * i));
      }
      try {
        machine_.store(addr, data, mode_);
      } catch (const AccessFault&) {
        return Trap{TrapCause::kStoreAccessFault, pc_, addr};
      }
      break;
    }
    case 0x13: {  // OP-IMM
      const std::int32_t imm = sign_extend(inst >> 20, 12);
      const std::uint32_t ui = static_cast<std::uint32_t>(imm);
      const int shamt = static_cast<int>((inst >> 20) & 0x1f);
      switch (funct3) {
        case 0: set_reg(rd, a + ui); break;
        case 2: set_reg(rd, static_cast<std::int32_t>(a) < imm ? 1 : 0);
                break;
        case 3: set_reg(rd, a < ui ? 1 : 0); break;
        case 4: set_reg(rd, a ^ ui); break;
        case 6: set_reg(rd, a | ui); break;
        case 7: set_reg(rd, a & ui); break;
        case 1:
          if (funct7 != 0) {
            return Trap{TrapCause::kIllegalInstruction, pc_, inst};
          }
          set_reg(rd, a << shamt);
          break;
        case 5:
          if (funct7 == 0) {
            set_reg(rd, a >> shamt);
          } else if (funct7 == 0x20) {
            set_reg(rd, static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(a) >> shamt));
          } else {
            return Trap{TrapCause::kIllegalInstruction, pc_, inst};
          }
          break;
        default:
          return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      break;
    }
    case 0x33: {  // OP (incl. M extension)
      if (funct7 == 0x01) {
        const std::int64_t sa = static_cast<std::int32_t>(a);
        const std::int64_t sb = static_cast<std::int32_t>(b);
        const std::uint64_t ua = a, ub = b;
        switch (funct3) {
          case 0: set_reg(rd, static_cast<std::uint32_t>(sa * sb)); break;
          case 1: set_reg(rd, static_cast<std::uint32_t>(
                              (sa * sb) >> 32)); break;
          case 2: set_reg(rd, static_cast<std::uint32_t>(
                              (sa * static_cast<std::int64_t>(ub)) >> 32));
                  break;
          case 3: set_reg(rd, static_cast<std::uint32_t>(
                              (ua * ub) >> 32)); break;
          case 4:  // DIV
            if (b == 0) {
              set_reg(rd, 0xffffffffu);
            } else if (a == 0x80000000u && b == 0xffffffffu) {
              set_reg(rd, 0x80000000u);  // overflow
            } else {
              set_reg(rd, static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(a) /
                              static_cast<std::int32_t>(b)));
            }
            break;
          case 5: set_reg(rd, b == 0 ? 0xffffffffu : a / b); break;
          case 6:  // REM
            if (b == 0) {
              set_reg(rd, a);
            } else if (a == 0x80000000u && b == 0xffffffffu) {
              set_reg(rd, 0);
            } else {
              set_reg(rd, static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(a) %
                              static_cast<std::int32_t>(b)));
            }
            break;
          case 7: set_reg(rd, b == 0 ? a : a % b); break;
          default:
            return Trap{TrapCause::kIllegalInstruction, pc_, inst};
        }
      } else if (funct7 == 0x00 ||
                 (funct7 == 0x20 && (funct3 == 0 || funct3 == 5))) {
        // funct7=0x20 (the SUB/SRA bit) is only architecturally defined
        // for funct3 0 and 5; on any other funct3 it is a reserved
        // encoding and must trap instead of aliasing onto the funct7=0
        // instruction.
        switch (funct3) {
          case 0: set_reg(rd, funct7 == 0x20 ? a - b : a + b); break;
          case 1: set_reg(rd, a << (b & 31)); break;
          case 2: set_reg(rd, static_cast<std::int32_t>(a) <
                                      static_cast<std::int32_t>(b)
                                  ? 1 : 0); break;
          case 3: set_reg(rd, a < b ? 1 : 0); break;
          case 4: set_reg(rd, a ^ b); break;
          case 5:
            set_reg(rd, funct7 == 0x20
                            ? static_cast<std::uint32_t>(
                                  static_cast<std::int32_t>(a) >> (b & 31))
                            : a >> (b & 31));
            break;
          case 6: set_reg(rd, a | b); break;
          case 7: set_reg(rd, a & b); break;
          default:
            return Trap{TrapCause::kIllegalInstruction, pc_, inst};
        }
      } else {
        return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      break;
    }
    case 0x0f:  // FENCE: no-op in this memory model
      break;
    case 0x73: {  // SYSTEM
      // Only ECALL/EBREAK are implemented, and their encodings are exact:
      // funct3, rd and rs1 must all be zero. CSR-class instructions
      // (funct3 != 0) and other PRIV encodings trap as illegal with the
      // same bookkeeping as every other trap path (pc and retired count
      // NOT advanced); ecall/ebreak retire and advance so the embedder
      // can resume past them.
      const std::uint32_t imm = inst >> 20;
      if (funct3 != 0 || rd != 0 || rs1 != 0 || imm > 1) {
        return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      pc_ += 4;
      ++retired_;
      return Trap{imm == 0 ? TrapCause::kEcall : TrapCause::kEbreak,
                  pc_ - 4, 0};
    }
    default:
      return Trap{TrapCause::kIllegalInstruction, pc_, inst};
  }

  pc_ = next_pc;
  ++retired_;
  return std::nullopt;
}

Rv32Cpu::RunResult Rv32Cpu::run_interpreted(std::uint64_t max_steps) {
  RunResult result;
  while (result.steps < max_steps) {
    auto trap = step();
    ++result.steps;
    if (trap) {
      result.trap = trap;
      break;
    }
  }
  return result;
}

// ---------------------------------------------------------------------
// Fast engines: decoded-instruction cache + allocation-free memory path
// ---------------------------------------------------------------------

Rv32Cpu::RunResult Rv32Cpu::run(std::uint64_t max_steps) {
  switch (engine_) {
    case Rv32Engine::kInterpreted:
      return run_interpreted(max_steps);
    case Rv32Engine::kDecodeCache: {
#if CONVOLVE_TELEMETRY_ENABLED
      // Tally outside run_fast so the hot loop never touches the member
      // (even an RAII reference to the result forces the step counter
      // into memory and costs double-digit throughput).
      RunResult r = run_fast(max_steps);
      fast_steps_ += r.steps;
      return r;
#else
      return run_fast(max_steps);
#endif
    }
    case Rv32Engine::kBytecode:
    default: {
#if CONVOLVE_TELEMETRY_ENABLED
      RunResult r = run_bytecode(max_steps);
      bc_steps_ += r.steps;
      return r;
#else
      return run_bytecode(max_steps);
#endif
    }
  }
}

void Rv32Cpu::decode_page_into(DecodedPage& slot, std::uint64_t page_base,
                               std::uint32_t version) {
  // (Re-)decode the page's words straight from memory. This caches code
  // *bytes*, not permissions: the execute-permission check still happens
  // per fetch against the live PMP state.
  const std::uint8_t* bytes = machine_.page_data(page_base);
  const std::uint64_t page_bytes =
      std::min<std::uint64_t>(Machine::kPageBytes,
                              machine_.memory_size() - page_base);
  const std::size_t n_insts = static_cast<std::size_t>(page_bytes / 4);
  for (std::size_t i = 0; i < n_insts; ++i) {
    slot.insts[i] = decode_rv32(load_le32(bytes + 4 * i));
  }
  for (std::size_t i = n_insts; i < kPageInsts; ++i) {
    slot.insts[i] = DecodedInsn{};  // unreachable: fetch bounds-faults first
  }
  // Bytecode rewrite + fusion pass. A fused handler lives in the FIRST
  // slot of its pair; the second slot keeps its own unfused bytecode so a
  // jump into the middle of the pair executes the plain instruction. No
  // fusion across the page edge: the second component must be decoded
  // (and version-tracked) in this same page.
  for (std::size_t i = 0; i < n_insts; ++i) {
    BcOp op;
    if (i + 1 < n_insts && fuse_rv32(slot.insts[i], slot.insts[i + 1], op)) {
      CONVOLVE_TELEMETRY_ONLY(++fused_emitted_;)
    } else {
      op = bytecode_single(slot.insts[i]);
    }
    slot.bytecode[i] = op;
  }
  for (std::size_t i = n_insts; i < kPageInsts; ++i) {
    slot.bytecode[i] = BcOp{};  // kIllegal, tval 0 — unreachable (see above)
  }
  slot.base = page_base;
  slot.version = version;
  slot.bc_linked = false;
}

Rv32Cpu::DecodedPage* Rv32Cpu::decoded_page(std::uint64_t page_base) {
  CacheSet& set =
      (*dcache_)[(page_base >> Machine::kPageShift) & (kCacheSets - 1)];
  const std::uint32_t version = machine_.page_version(page_base);
  for (std::size_t w = 0; w < kCacheWays; ++w) {
    DecodedPage& p = set.way[w];
    if (p.base != page_base) continue;
    set.mru = static_cast<std::uint8_t>(w);
    if (p.version == version) return &p;
    // Stale decode of this page (self-modifying code): refresh in place.
    CONVOLVE_TELEMETRY_ONLY(++dc_decodes_; ++dc_invalidations_;)
    decode_page_into(p, page_base, version);
    return &p;
  }
  // Miss: evict the least-recently-used way of the set.
  DecodedPage& victim = set.way[set.mru ^ 1u];
  CONVOLVE_TELEMETRY_ONLY(++dc_decodes_;)
  decode_page_into(victim, page_base, version);
  set.mru ^= 1u;
  return &victim;
}

Rv32Cpu::RunResult Rv32Cpu::run_fast(std::uint64_t max_steps) {
  if (!dcache_) dcache_ = std::make_unique<std::array<CacheSet, kCacheSets>>();
  RunResult result;

  const DecodedPage* page = nullptr;
  std::uint64_t page_base = ~0ull;

  while (result.steps < max_steps) {
    const std::uint32_t pc = pc_;
    if (pc % 4 != 0) {
      result.trap = Trap{TrapCause::kMisalignedFetch, pc, pc};
      ++result.steps;
      return result;
    }
    // Execute-permission + bounds check through the memoized PMP window
    // (a handful of compares on the hot path).
    if (!machine_.access_ok(pc, 4, mode_, AccessType::kExecute)) {
      result.trap = Trap{TrapCause::kInstructionAccessFault, pc, pc};
      ++result.steps;
      return result;
    }
    const std::uint64_t base = pc & ~(Machine::kPageBytes - 1);
    // Revalidate the decoded page when crossing a page boundary or when
    // a store bumped the page's version (self-modifying code).
    if (base != page_base || page == nullptr ||
        page->version != machine_.page_version(base)) {
      page = decoded_page(base);
      page_base = base;
    }
    const DecodedInsn& di =
        page->insts[(pc & (Machine::kPageBytes - 1)) >> 2];

    const std::uint32_t a = x_[di.rs1];
    const std::uint32_t b = x_[di.rs2];
    const std::uint32_t ui = static_cast<std::uint32_t>(di.imm);
    std::uint32_t next_pc = pc + 4;
    std::uint32_t value = 0;  // rd write staging for loads

    switch (di.kind) {
      case OpKind::kLui: value = ui; goto write_rd;
      case OpKind::kAuipc: value = pc + ui; goto write_rd;
      case OpKind::kJal:
        value = pc + 4;
        next_pc = pc + ui;
        goto write_rd;
      case OpKind::kJalr:
        value = pc + 4;
        next_pc = (a + ui) & ~1u;
        goto write_rd;
      case OpKind::kBeq: if (a == b) next_pc = pc + ui; break;
      case OpKind::kBne: if (a != b) next_pc = pc + ui; break;
      case OpKind::kBlt:
        if (static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b))
          next_pc = pc + ui;
        break;
      case OpKind::kBge:
        if (static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b))
          next_pc = pc + ui;
        break;
      case OpKind::kBltu: if (a < b) next_pc = pc + ui; break;
      case OpKind::kBgeu: if (a >= b) next_pc = pc + ui; break;

      case OpKind::kLb: {
        std::uint8_t v;
        if (!machine_.read8(a + ui, mode_, v)) goto load_fault;
        value = static_cast<std::uint32_t>(sign_extend(v, 8));
        goto write_rd;
      }
      case OpKind::kLh: {
        std::uint16_t v;
        if (!machine_.read16(a + ui, mode_, v)) goto load_fault;
        value = static_cast<std::uint32_t>(sign_extend(v, 16));
        goto write_rd;
      }
      case OpKind::kLw:
        if (!machine_.read32(a + ui, mode_, value)) goto load_fault;
        goto write_rd;
      case OpKind::kLbu: {
        std::uint8_t v;
        if (!machine_.read8(a + ui, mode_, v)) goto load_fault;
        value = v;
        goto write_rd;
      }
      case OpKind::kLhu: {
        std::uint16_t v;
        if (!machine_.read16(a + ui, mode_, v)) goto load_fault;
        value = v;
        goto write_rd;
      }

      case OpKind::kSb:
        if (!machine_.write8(a + ui, static_cast<std::uint8_t>(b), mode_))
          goto store_fault;
        break;
      case OpKind::kSh:
        if (!machine_.write16(a + ui, static_cast<std::uint16_t>(b), mode_))
          goto store_fault;
        break;
      case OpKind::kSw:
        if (!machine_.write32(a + ui, b, mode_)) goto store_fault;
        break;

      case OpKind::kAddi: value = a + ui; goto write_rd;
      case OpKind::kSlti:
        value = static_cast<std::int32_t>(a) < di.imm ? 1 : 0;
        goto write_rd;
      case OpKind::kSltiu: value = a < ui ? 1 : 0; goto write_rd;
      case OpKind::kXori: value = a ^ ui; goto write_rd;
      case OpKind::kOri: value = a | ui; goto write_rd;
      case OpKind::kAndi: value = a & ui; goto write_rd;
      case OpKind::kSlli: value = a << di.imm; goto write_rd;
      case OpKind::kSrli: value = a >> di.imm; goto write_rd;
      case OpKind::kSrai:
        value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) >> di.imm);
        goto write_rd;

      case OpKind::kAdd: value = a + b; goto write_rd;
      case OpKind::kSub: value = a - b; goto write_rd;
      case OpKind::kSll: value = a << (b & 31); goto write_rd;
      case OpKind::kSlt:
        value = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)
                    ? 1 : 0;
        goto write_rd;
      case OpKind::kSltu: value = a < b ? 1 : 0; goto write_rd;
      case OpKind::kXor: value = a ^ b; goto write_rd;
      case OpKind::kSrl: value = a >> (b & 31); goto write_rd;
      case OpKind::kSra:
        value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) >> (b & 31));
        goto write_rd;
      case OpKind::kOr: value = a | b; goto write_rd;
      case OpKind::kAnd: value = a & b; goto write_rd;

      case OpKind::kMul:
        value = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
            static_cast<std::int64_t>(static_cast<std::int32_t>(b)));
        goto write_rd;
      case OpKind::kMulh:
        value = static_cast<std::uint32_t>(
            (static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
             static_cast<std::int64_t>(static_cast<std::int32_t>(b))) >> 32);
        goto write_rd;
      case OpKind::kMulhsu:
        value = static_cast<std::uint32_t>(
            (static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
             static_cast<std::int64_t>(static_cast<std::uint64_t>(b))) >> 32);
        goto write_rd;
      case OpKind::kMulhu:
        value = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b))
            >> 32);
        goto write_rd;
      case OpKind::kDiv:
        if (b == 0) value = 0xffffffffu;
        else if (a == 0x80000000u && b == 0xffffffffu) value = 0x80000000u;
        else value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) / static_cast<std::int32_t>(b));
        goto write_rd;
      case OpKind::kDivu: value = b == 0 ? 0xffffffffu : a / b; goto write_rd;
      case OpKind::kRem:
        if (b == 0) value = a;
        else if (a == 0x80000000u && b == 0xffffffffu) value = 0;
        else value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) % static_cast<std::int32_t>(b));
        goto write_rd;
      case OpKind::kRemu: value = b == 0 ? a : a % b; goto write_rd;

      case OpKind::kFence:
        break;

      case OpKind::kEcall:
      case OpKind::kEbreak:
        pc_ = pc + 4;
        ++retired_;
        ++result.steps;
        result.trap = Trap{di.kind == OpKind::kEcall ? TrapCause::kEcall
                                                     : TrapCause::kEbreak,
                           pc, 0};
        return result;

      case OpKind::kIllegal:
      default:
        result.trap = Trap{TrapCause::kIllegalInstruction, pc,
                           static_cast<std::uint32_t>(di.imm)};
        ++result.steps;
        return result;
    }
    goto retire;

  write_rd:
    if (di.rd != 0) x_[di.rd] = value;
    goto retire;

  load_fault:
    result.trap = Trap{TrapCause::kLoadAccessFault, pc, a + ui};
    ++result.steps;
    return result;

  store_fault:
    result.trap = Trap{TrapCause::kStoreAccessFault, pc, a + ui};
    ++result.steps;
    return result;

  retire:
    pc_ = next_pc;
    ++retired_;
    ++result.steps;
  }
  return result;
}

// ---------------------------------------------------------------------
// Bytecode engine: threaded dispatch + macro-op fusion
// ---------------------------------------------------------------------
//
// The loop dispatches one BcOp per emulated instruction (or per fused
// pair) with no per-instruction PMP/alignment/page-version checks: those
// are hoisted into the outer resync path, which is only re-entered when
// the pc leaves the validated execute window, a store bumps the current
// page's version, or a fused pair cannot run whole. Hoisting is sound
// because within one run() the PMP epoch cannot change (no CSR
// instructions are implemented and ecall exits the loop), so the
// execute window returned by Machine::execute_window stays valid until
// the pc leaves it, and only stores can invalidate the current page's
// decode.
//
// Accounting contract (identical to run_interpreted / run_fast):
//   - every attempted instruction, including a trapping one, consumes
//     one step; steps and pending retires are carried as a fuel
//     countdown and reconstructed at the exits.
//   - Non-retiring traps (misaligned fetch, fetch fault, illegal,
//     load/store fault) leave pc_ at the trapping instruction.
//   - ecall/ebreak retire and advance pc_ past themselves.
//   - A fused pair retires as TWO steps; if its second component faults,
//     the first has committed (pc_ = pair pc + 4) and the trap carries
//     the component's pc/tval.

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(CONVOLVE_BC_FORCE_SWITCH)
#define CONVOLVE_BC_THREADED 1
#else
#define CONVOLVE_BC_THREADED 0
#endif

#if CONVOLVE_BC_THREADED
#define BC_CASE(name) lab_##name:
#define BC_DISPATCH() goto* op->target
#else
#define BC_CASE(name) case BcHandler::k##name:
#define BC_DISPATCH() goto dispatch_top
#endif

// Budget is a fuel countdown: fuel = max_steps - steps consumed so far,
// so the per-retire budget check is a single dec-and-test. steps and the
// pending retired-count delta are derived at the exits:
//   steps consumed = max_steps - fuel
//   retires pending = pub_fuel - fuel   (pub_fuel = fuel at last publish)
// Every dispatch point has fuel >= 1.

// Retire the current op and fall through to the next slot. Straight-line
// flow only moves forward, so the window check is one-sided (wlo was
// checked when the window was entered).
#define BC_NEXT()                                            \
  do {                                                       \
    pc += 4;                                                 \
    ++op;                                                    \
    if (--fuel == 0) goto budget_exit;                       \
    if (static_cast<std::uint64_t>(pc) >= whi)               \
      goto sync_outer;                                       \
    BC_DISPATCH();                                           \
  } while (0)

// Retire the current op and transfer control. A misaligned target is NOT
// a fault of this instruction: it retires, and the next fetch traps
// (deferred, tval = target) — the outer path reproduces that exactly.
#define BC_JUMP(target)                                          \
  do {                                                           \
    pc = (target);                                               \
    if (--fuel == 0) goto budget_exit;                           \
    if ((pc & 3u) != 0) goto sync_outer;                         \
    if (static_cast<std::uint64_t>(pc) - wlo >= wspan)           \
      goto sync_outer;                                           \
    op = ops + ((pc & (Machine::kPageBytes - 1)) >> 2);          \
    BC_DISPATCH();                                               \
  } while (0)

// Retire a store, then resync if it bumped the current page's version
// (self-modifying code): the outer path re-decodes before the next
// dispatch, so a store that patches upcoming code — including the second
// half of a fused pair — is observed exactly as the oracle observes it.
#define BC_STORE_TAIL()                                          \
  do {                                                           \
    pc += 4;                                                     \
    ++op;                                                        \
    if (--fuel == 0) goto budget_exit;                           \
    if (m.page_version(page_base) != version) goto sync_outer;   \
    if (static_cast<std::uint64_t>(pc) >= whi)                   \
      goto sync_outer;                                           \
    BC_DISPATCH();                                               \
  } while (0)

// Fused pairs only run whole: both halves inside the validated window and
// at least two steps of budget. Otherwise split — scalar_one executes the
// first component through the oracle and resyncs.
#define BC_FUSED_GUARD()                                              \
  do {                                                                \
    if (fuel < 2 || static_cast<std::uint64_t>(pc) + 8 > whi)         \
      goto scalar_one;                                                \
  } while (0)

// Retire a fused pair that falls through to the slot after the pair.
#define BC_FUSED_TAIL()                                      \
  do {                                                       \
    pc += 8;                                                 \
    op += 2;                                                 \
    fuel -= 2;                                               \
    if (fuel == 0) goto budget_exit;                         \
    if (static_cast<std::uint64_t>(pc) >= whi)               \
      goto sync_outer;                                       \
    BC_DISPATCH();                                           \
  } while (0)

// Retire a fused cmp+branch pair. Budget is checked before the deferred
// misaligned-target trap: if the pair consumed the last fuel, the run
// ends cleanly and the trap (if any) surfaces on the next call, exactly
// like the oracle.
#define BC_FUSED_BRANCH_TAIL(taken_expr)                         \
  do {                                                           \
    fuel -= 2;                                                   \
    if (taken_expr) {                                            \
      pc += static_cast<std::uint32_t>(op->imm2);                \
      if (fuel == 0) goto budget_exit;                           \
      if ((pc & 3u) != 0) goto sync_outer;                       \
      if (static_cast<std::uint64_t>(pc) - wlo >= wspan)         \
        goto sync_outer;                                         \
      op = ops + ((pc & (Machine::kPageBytes - 1)) >> 2);        \
      BC_DISPATCH();                                             \
    }                                                            \
    pc += 8;                                                     \
    op += 2;                                                     \
    if (fuel == 0) goto budget_exit;                             \
    if (static_cast<std::uint64_t>(pc) >= whi)                   \
      goto sync_outer;                                           \
    BC_DISPATCH();                                               \
  } while (0)

// cmp+branch super-ops: compute the comparison, commit it to rd, then
// branch on (rd == 0) / (rd != 0). imm2 is pre-biased so the taken
// target is pair-pc + imm2.
#define BC_FUSED_CMP_BRANCH(cond_expr, taken_on_nonzero)  \
  do {                                                    \
    BC_FUSED_GUARD();                                     \
    const std::uint32_t c = (cond_expr) ? 1u : 0u;        \
    xr[op->rd] = c;                                       \
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)                   \
    BC_FUSED_BRANCH_TAIL((c != 0) == (taken_on_nonzero)); \
  } while (0)

// GCSE and cross-jumping would factor the per-handler computed gotos into
// one shared indirect jump, serializing branch prediction across the whole
// emulated instruction stream (the GCC manual recommends -fno-gcse for
// computed-goto interpreters). Scoped here so the other engines in this
// translation unit keep the default pipeline.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-gcse", "no-crossjumping")))
#endif
Rv32Cpu::RunResult Rv32Cpu::run_bytecode(std::uint64_t max_steps) {
  if (!dcache_) dcache_ = std::make_unique<std::array<CacheSet, kCacheSets>>();
  RunResult result;

  Machine& m = machine_;
  const PrivMode mode = mode_;
  std::uint32_t* const xr = x_.data();
  std::uint32_t pc = pc_;
  std::uint64_t fuel = max_steps;      // remaining step budget
  std::uint64_t pub_fuel = max_steps;  // fuel at the last retired_ publish
  std::uint64_t fused_n = 0;

  const BcOp* ops = nullptr;
  const BcOp* op = nullptr;
  std::uint64_t page_base = 0;
  std::uint64_t wlo = 0, whi = 0, wspan = 0;
  std::uint32_t version = 0;

#if CONVOLVE_BC_THREADED
  // Handler table in exact BcHandler order (see static_assert below).
  static const void* const kLabels[] = {
      &&lab_Illegal, &&lab_Lui, &&lab_Auipc, &&lab_Jal, &&lab_Jalr,
      &&lab_Beq, &&lab_Bne, &&lab_Blt, &&lab_Bge, &&lab_Bltu, &&lab_Bgeu,
      &&lab_Lb, &&lab_Lh, &&lab_Lw, &&lab_Lbu, &&lab_Lhu,
      &&lab_Sb, &&lab_Sh, &&lab_Sw,
      &&lab_Addi, &&lab_Slti, &&lab_Sltiu, &&lab_Xori, &&lab_Ori,
      &&lab_Andi, &&lab_Slli, &&lab_Srli, &&lab_Srai,
      &&lab_Add, &&lab_Sub, &&lab_Sll, &&lab_Slt, &&lab_Sltu, &&lab_Xor,
      &&lab_Srl, &&lab_Sra, &&lab_Or, &&lab_And,
      &&lab_Mul, &&lab_Mulh, &&lab_Mulhsu, &&lab_Mulhu,
      &&lab_Div, &&lab_Divu, &&lab_Rem, &&lab_Remu,
      &&lab_Fence, &&lab_Ecall, &&lab_Ebreak,
      &&lab_Nop,
      &&lab_FusedLuiAddi, &&lab_FusedAuipcAddi, &&lab_FusedAuipcLw,
      &&lab_FusedSltBeqz, &&lab_FusedSltBnez,
      &&lab_FusedSltuBeqz, &&lab_FusedSltuBnez,
      &&lab_FusedSltiBeqz, &&lab_FusedSltiBnez,
      &&lab_FusedSltiuBeqz, &&lab_FusedSltiuBnez,
      &&lab_FusedAddiBeqz, &&lab_FusedAddiBnez,
      &&lab_FusedSlliSrli, &&lab_FusedSrliSlli, &&lab_FusedAddiAddi,
      &&lab_FusedOrXor, &&lab_FusedOrXori,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kBcHandlerCount,
                "dispatch table must cover every BcHandler");
#endif

outer:
  // Full resync: alignment, execute permission, decoded page, validated
  // window. Everything the dispatch loop skips per instruction happens
  // here once per (re-)entry.
  if (fuel == 0) goto budget_exit;
  if ((pc & 3u) != 0) {
    result.trap = Trap{TrapCause::kMisalignedFetch, pc, pc};
    goto trap_at_pc;
  }
  {
    std::uint64_t lo, hi;
    if (!m.execute_window(pc, mode, lo, hi)) {
      result.trap = Trap{TrapCause::kInstructionAccessFault, pc, pc};
      goto trap_at_pc;
    }
    page_base = pc & ~static_cast<std::uint64_t>(Machine::kPageBytes - 1);
    DecodedPage* page = decoded_page(page_base);
#if CONVOLVE_BC_THREADED
    if (!page->bc_linked) {
      // Link handler bytes to label addresses; decode itself is
      // engine-agnostic and the addresses only exist in this function.
      for (BcOp& b : page->bytecode) b.target = kLabels[b.handler];
      page->bc_linked = true;
    }
#endif
    ops = page->bytecode.data();
    version = page->version;
    // Clamp the window to this page and round inward to whole words. Only
    // 4-byte-aligned slots fully inside [wlo, whi) are dispatched, which
    // also keeps the partial-tail filler slots of a non-4-byte-aligned
    // memory_size() unreachable, exactly like the reference fetch path
    // (a fetch needs pc + 4 <= memory_size()). The cap just below 2^32
    // keeps pc + 4 from wrapping inside the window; the corner it cuts
    // off falls back to the oracle below.
    wlo = lo < page_base ? page_base : lo;
    std::uint64_t end = page_base + Machine::kPageBytes;
    if (hi < end) end = hi;
    wlo = (wlo + 3) & ~3ull;
    end &= ~3ull;
    if (end > 0xfffffffcull) end = 0xfffffffcull;
    whi = end;
    wspan = end > wlo ? end - wlo : 0;
  }
  if (pc < wlo || static_cast<std::uint64_t>(pc) + 4 > whi) {
    // Degenerate window (e.g. the very last word of the 32-bit address
    // space): execute one instruction with reference semantics instead.
    goto scalar_one;
  }
  op = ops + ((pc & (Machine::kPageBytes - 1)) >> 2);
  BC_DISPATCH();

#if !CONVOLVE_BC_THREADED
dispatch_top:
  switch (static_cast<BcHandler>(op->handler)) {
#endif

  BC_CASE(Illegal) {
    result.trap = Trap{TrapCause::kIllegalInstruction, pc,
                       static_cast<std::uint32_t>(op->imm)};
    goto trap_at_pc;
  }
  BC_CASE(Lui) {  // rd != 0 guaranteed (rd == 0 is rewritten to kNop)
    xr[op->rd] = static_cast<std::uint32_t>(op->imm);
    BC_NEXT();
  }
  BC_CASE(Auipc) {
    xr[op->rd] = pc + static_cast<std::uint32_t>(op->imm);
    BC_NEXT();
  }
  BC_CASE(Jal) {
    const std::uint32_t t = pc + static_cast<std::uint32_t>(op->imm);
    if (op->rd != 0) xr[op->rd] = pc + 4;
    BC_JUMP(t);
  }
  BC_CASE(Jalr) {
    // Target from rs1 BEFORE the rd write (rd == rs1 must use the old
    // value), low bit cleared per the ISA.
    const std::uint32_t t =
        (xr[op->rs1] + static_cast<std::uint32_t>(op->imm)) & ~1u;
    if (op->rd != 0) xr[op->rd] = pc + 4;
    BC_JUMP(t);
  }
  BC_CASE(Beq) {
    if (xr[op->rs1] == xr[op->rs2])
      BC_JUMP(pc + static_cast<std::uint32_t>(op->imm));
    BC_NEXT();
  }
  BC_CASE(Bne) {
    if (xr[op->rs1] != xr[op->rs2])
      BC_JUMP(pc + static_cast<std::uint32_t>(op->imm));
    BC_NEXT();
  }
  BC_CASE(Blt) {
    if (static_cast<std::int32_t>(xr[op->rs1]) <
        static_cast<std::int32_t>(xr[op->rs2]))
      BC_JUMP(pc + static_cast<std::uint32_t>(op->imm));
    BC_NEXT();
  }
  BC_CASE(Bge) {
    if (static_cast<std::int32_t>(xr[op->rs1]) >=
        static_cast<std::int32_t>(xr[op->rs2]))
      BC_JUMP(pc + static_cast<std::uint32_t>(op->imm));
    BC_NEXT();
  }
  BC_CASE(Bltu) {
    if (xr[op->rs1] < xr[op->rs2])
      BC_JUMP(pc + static_cast<std::uint32_t>(op->imm));
    BC_NEXT();
  }
  BC_CASE(Bgeu) {
    if (xr[op->rs1] >= xr[op->rs2])
      BC_JUMP(pc + static_cast<std::uint32_t>(op->imm));
    BC_NEXT();
  }

  BC_CASE(Lb) {
    const std::uint32_t addr =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    std::uint8_t v;
    if (!m.read8(addr, mode, v)) {
      result.trap = Trap{TrapCause::kLoadAccessFault, pc, addr};
      goto trap_at_pc;
    }
    if (op->rd != 0)
      xr[op->rd] = static_cast<std::uint32_t>(sign_extend(v, 8));
    BC_NEXT();
  }
  BC_CASE(Lh) {
    const std::uint32_t addr =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    std::uint16_t v;
    if (!m.read16(addr, mode, v)) {
      result.trap = Trap{TrapCause::kLoadAccessFault, pc, addr};
      goto trap_at_pc;
    }
    if (op->rd != 0)
      xr[op->rd] = static_cast<std::uint32_t>(sign_extend(v, 16));
    BC_NEXT();
  }
  BC_CASE(Lw) {
    const std::uint32_t addr =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    std::uint32_t v;
    if (!m.read32(addr, mode, v)) {
      result.trap = Trap{TrapCause::kLoadAccessFault, pc, addr};
      goto trap_at_pc;
    }
    if (op->rd != 0) xr[op->rd] = v;
    BC_NEXT();
  }
  BC_CASE(Lbu) {
    const std::uint32_t addr =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    std::uint8_t v;
    if (!m.read8(addr, mode, v)) {
      result.trap = Trap{TrapCause::kLoadAccessFault, pc, addr};
      goto trap_at_pc;
    }
    if (op->rd != 0) xr[op->rd] = v;
    BC_NEXT();
  }
  BC_CASE(Lhu) {
    const std::uint32_t addr =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    std::uint16_t v;
    if (!m.read16(addr, mode, v)) {
      result.trap = Trap{TrapCause::kLoadAccessFault, pc, addr};
      goto trap_at_pc;
    }
    if (op->rd != 0) xr[op->rd] = v;
    BC_NEXT();
  }

  BC_CASE(Sb) {
    const std::uint32_t addr =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if (!m.write8(addr, static_cast<std::uint8_t>(xr[op->rs2]), mode)) {
      result.trap = Trap{TrapCause::kStoreAccessFault, pc, addr};
      goto trap_at_pc;
    }
    BC_STORE_TAIL();
  }
  BC_CASE(Sh) {
    const std::uint32_t addr =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if (!m.write16(addr, static_cast<std::uint16_t>(xr[op->rs2]), mode)) {
      result.trap = Trap{TrapCause::kStoreAccessFault, pc, addr};
      goto trap_at_pc;
    }
    BC_STORE_TAIL();
  }
  BC_CASE(Sw) {
    const std::uint32_t addr =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if (!m.write32(addr, xr[op->rs2], mode)) {
      result.trap = Trap{TrapCause::kStoreAccessFault, pc, addr};
      goto trap_at_pc;
    }
    BC_STORE_TAIL();
  }

  BC_CASE(Addi) {
    xr[op->rd] = xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    BC_NEXT();
  }
  BC_CASE(Slti) {
    xr[op->rd] =
        static_cast<std::int32_t>(xr[op->rs1]) < op->imm ? 1u : 0u;
    BC_NEXT();
  }
  BC_CASE(Sltiu) {
    xr[op->rd] =
        xr[op->rs1] < static_cast<std::uint32_t>(op->imm) ? 1u : 0u;
    BC_NEXT();
  }
  BC_CASE(Xori) {
    xr[op->rd] = xr[op->rs1] ^ static_cast<std::uint32_t>(op->imm);
    BC_NEXT();
  }
  BC_CASE(Ori) {
    xr[op->rd] = xr[op->rs1] | static_cast<std::uint32_t>(op->imm);
    BC_NEXT();
  }
  BC_CASE(Andi) {
    xr[op->rd] = xr[op->rs1] & static_cast<std::uint32_t>(op->imm);
    BC_NEXT();
  }
  BC_CASE(Slli) {
    xr[op->rd] = xr[op->rs1] << op->imm;
    BC_NEXT();
  }
  BC_CASE(Srli) {
    xr[op->rd] = xr[op->rs1] >> op->imm;
    BC_NEXT();
  }
  BC_CASE(Srai) {
    xr[op->rd] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(xr[op->rs1]) >> op->imm);
    BC_NEXT();
  }

  BC_CASE(Add) {
    xr[op->rd] = xr[op->rs1] + xr[op->rs2];
    BC_NEXT();
  }
  BC_CASE(Sub) {
    xr[op->rd] = xr[op->rs1] - xr[op->rs2];
    BC_NEXT();
  }
  BC_CASE(Sll) {
    xr[op->rd] = xr[op->rs1] << (xr[op->rs2] & 31u);
    BC_NEXT();
  }
  BC_CASE(Slt) {
    xr[op->rd] = static_cast<std::int32_t>(xr[op->rs1]) <
                         static_cast<std::int32_t>(xr[op->rs2])
                     ? 1u
                     : 0u;
    BC_NEXT();
  }
  BC_CASE(Sltu) {
    xr[op->rd] = xr[op->rs1] < xr[op->rs2] ? 1u : 0u;
    BC_NEXT();
  }
  BC_CASE(Xor) {
    xr[op->rd] = xr[op->rs1] ^ xr[op->rs2];
    BC_NEXT();
  }
  BC_CASE(Srl) {
    xr[op->rd] = xr[op->rs1] >> (xr[op->rs2] & 31u);
    BC_NEXT();
  }
  BC_CASE(Sra) {
    xr[op->rd] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(xr[op->rs1]) >> (xr[op->rs2] & 31u));
    BC_NEXT();
  }
  BC_CASE(Or) {
    xr[op->rd] = xr[op->rs1] | xr[op->rs2];
    BC_NEXT();
  }
  BC_CASE(And) {
    xr[op->rd] = xr[op->rs1] & xr[op->rs2];
    BC_NEXT();
  }

  BC_CASE(Mul) {
    xr[op->rd] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(xr[op->rs1])) *
        static_cast<std::int64_t>(static_cast<std::int32_t>(xr[op->rs2])));
    BC_NEXT();
  }
  BC_CASE(Mulh) {
    xr[op->rd] = static_cast<std::uint32_t>(
        (static_cast<std::int64_t>(static_cast<std::int32_t>(xr[op->rs1])) *
         static_cast<std::int64_t>(static_cast<std::int32_t>(xr[op->rs2])))
        >> 32);
    BC_NEXT();
  }
  BC_CASE(Mulhsu) {
    xr[op->rd] = static_cast<std::uint32_t>(
        (static_cast<std::int64_t>(static_cast<std::int32_t>(xr[op->rs1])) *
         static_cast<std::int64_t>(
             static_cast<std::uint64_t>(xr[op->rs2]))) >> 32);
    BC_NEXT();
  }
  BC_CASE(Mulhu) {
    xr[op->rd] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(xr[op->rs1]) *
         static_cast<std::uint64_t>(xr[op->rs2])) >> 32);
    BC_NEXT();
  }
  BC_CASE(Div) {
    const std::uint32_t a = xr[op->rs1];
    const std::uint32_t b = xr[op->rs2];
    if (b == 0) xr[op->rd] = 0xffffffffu;
    else if (a == 0x80000000u && b == 0xffffffffu) xr[op->rd] = 0x80000000u;
    else
      xr[op->rd] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(a) / static_cast<std::int32_t>(b));
    BC_NEXT();
  }
  BC_CASE(Divu) {
    const std::uint32_t b = xr[op->rs2];
    xr[op->rd] = b == 0 ? 0xffffffffu : xr[op->rs1] / b;
    BC_NEXT();
  }
  BC_CASE(Rem) {
    const std::uint32_t a = xr[op->rs1];
    const std::uint32_t b = xr[op->rs2];
    if (b == 0) xr[op->rd] = a;
    else if (a == 0x80000000u && b == 0xffffffffu) xr[op->rd] = 0;
    else
      xr[op->rd] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(a) % static_cast<std::int32_t>(b));
    BC_NEXT();
  }
  BC_CASE(Remu) {
    const std::uint32_t b = xr[op->rs2];
    xr[op->rd] = b == 0 ? xr[op->rs1] : xr[op->rs1] % b;
    BC_NEXT();
  }

  BC_CASE(Fence) { BC_NEXT(); }
  BC_CASE(Ecall) {
    result.trap = Trap{TrapCause::kEcall, pc, 0};
    goto env_exit;
  }
  BC_CASE(Ebreak) {
    result.trap = Trap{TrapCause::kEbreak, pc, 0};
    goto env_exit;
  }
  BC_CASE(Nop) { BC_NEXT(); }

  BC_CASE(FusedLuiAddi) {
    BC_FUSED_GUARD();
    // Write order handles rd == rd2: the second component's result wins.
    xr[op->rd] = static_cast<std::uint32_t>(op->imm);
    if (op->rs2 != 0) xr[op->rs2] = static_cast<std::uint32_t>(op->imm2);
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_TAIL();
  }
  BC_CASE(FusedAuipcAddi) {
    BC_FUSED_GUARD();
    xr[op->rd] = pc + static_cast<std::uint32_t>(op->imm);
    if (op->rs2 != 0)
      xr[op->rs2] = pc + static_cast<std::uint32_t>(op->imm2);
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_TAIL();
  }
  BC_CASE(FusedAuipcLw) {
    BC_FUSED_GUARD();
    // auipc commits first; the load address is pc + imm + lw-offset
    // = pc + imm2 (identical to reading the freshly written rd).
    const std::uint32_t addr = pc + static_cast<std::uint32_t>(op->imm2);
    xr[op->rd] = pc + static_cast<std::uint32_t>(op->imm);
    std::uint32_t v;
    if (!m.read32(addr, mode, v)) {
      // Second component faults: the auipc has retired, the trap is the
      // lw's own (pc + 4, faulting address), pc_ rests on the lw.
      pc_ = pc + 4;
      retired_ += pub_fuel - fuel + 1;
      result.steps = max_steps - fuel + 2;
      result.trap = Trap{TrapCause::kLoadAccessFault, pc + 4, addr};
      goto tally;
    }
    if (op->rs2 != 0) xr[op->rs2] = v;
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_TAIL();
  }

  BC_CASE(FusedSltBeqz) {
    BC_FUSED_CMP_BRANCH(static_cast<std::int32_t>(xr[op->rs1]) <
                            static_cast<std::int32_t>(xr[op->rs2]),
                        false);
  }
  BC_CASE(FusedSltBnez) {
    BC_FUSED_CMP_BRANCH(static_cast<std::int32_t>(xr[op->rs1]) <
                            static_cast<std::int32_t>(xr[op->rs2]),
                        true);
  }
  BC_CASE(FusedSltuBeqz) {
    BC_FUSED_CMP_BRANCH(xr[op->rs1] < xr[op->rs2], false);
  }
  BC_CASE(FusedSltuBnez) {
    BC_FUSED_CMP_BRANCH(xr[op->rs1] < xr[op->rs2], true);
  }
  BC_CASE(FusedSltiBeqz) {
    BC_FUSED_CMP_BRANCH(
        static_cast<std::int32_t>(xr[op->rs1]) < op->imm, false);
  }
  BC_CASE(FusedSltiBnez) {
    BC_FUSED_CMP_BRANCH(
        static_cast<std::int32_t>(xr[op->rs1]) < op->imm, true);
  }
  BC_CASE(FusedSltiuBeqz) {
    BC_FUSED_CMP_BRANCH(
        xr[op->rs1] < static_cast<std::uint32_t>(op->imm), false);
  }
  BC_CASE(FusedSltiuBnez) {
    BC_FUSED_CMP_BRANCH(
        xr[op->rs1] < static_cast<std::uint32_t>(op->imm), true);
  }

  // addi+beqz/bnez: the decrement-and-loop idiom. The sum commits to rd
  // and the branch tests the fresh value against zero.
  BC_CASE(FusedAddiBeqz) {
    BC_FUSED_GUARD();
    const std::uint32_t t =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    xr[op->rd] = t;
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_BRANCH_TAIL(t == 0);
  }
  BC_CASE(FusedAddiBnez) {
    BC_FUSED_GUARD();
    const std::uint32_t t =
        xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    xr[op->rd] = t;
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_BRANCH_TAIL(t != 0);
  }

  // Rotate halves: both shifts of the shared, un-clobbered source. The
  // second destination may be x0 (skip) or alias rd (last write wins).
  BC_CASE(FusedSlliSrli) {
    BC_FUSED_GUARD();
    const std::uint32_t x = xr[op->rs1];
    xr[op->rd] = x << op->imm;
    if (op->rs2 != 0) xr[op->rs2] = x >> op->imm2;
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_TAIL();
  }
  BC_CASE(FusedSrliSlli) {
    BC_FUSED_GUARD();
    const std::uint32_t x = xr[op->rs1];
    xr[op->rd] = x >> op->imm;
    if (op->rs2 != 0) xr[op->rs2] = x << op->imm2;
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_TAIL();
  }
  // Paired pointer bumps: independent addis (fusion requires the second
  // to self-update a register the first does not write, and rd != x0).
  BC_CASE(FusedAddiAddi) {
    BC_FUSED_GUARD();
    xr[op->rd] = xr[op->rs1] + static_cast<std::uint32_t>(op->imm);
    xr[op->rs2] += static_cast<std::uint32_t>(op->imm2);
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_TAIL();
  }

  // ARX rotate-then-mix: commit the or, forward its value to the xor in a
  // host register (no round trip through the register file). imm is the
  // xor's other source (read AFTER the rd commit, so aliasing is exact);
  // imm2 is the xor's destination, x0 = skip.
  BC_CASE(FusedOrXor) {
    BC_FUSED_GUARD();
    const std::uint32_t t = xr[op->rs1] | xr[op->rs2];
    xr[op->rd] = t;
    if (op->imm2 != 0) xr[op->imm2] = t ^ xr[op->imm];
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_TAIL();
  }
  BC_CASE(FusedOrXori) {
    BC_FUSED_GUARD();
    const std::uint32_t t = xr[op->rs1] | xr[op->rs2];
    xr[op->rd] = t;
    if (op->imm2 != 0)
      xr[op->imm2] = t ^ static_cast<std::uint32_t>(op->imm);
    CONVOLVE_TELEMETRY_ONLY(++fused_n;)
    BC_FUSED_TAIL();
  }

#if !CONVOLVE_BC_THREADED
    default:
      result.trap = Trap{TrapCause::kIllegalInstruction, pc, 0};
      goto trap_at_pc;
  }
#endif

scalar_one:
  // Split path: run exactly one instruction through the reference
  // interpreter (publishing pending retires first so step() sees a
  // consistent retired_), then resync. Used when a fused pair cannot run
  // whole; the oracle executes the first component with its own
  // semantics, and the next outer entry handles whatever follows —
  // including the second component faulting on its own.
  pc_ = pc;
  retired_ += pub_fuel - fuel;
  pub_fuel = fuel;
  {
    const auto trap = step();
    if (trap) {
      result.trap = *trap;
      result.steps = max_steps - fuel + 1;
      goto tally;
    }
  }
  --fuel;
  pub_fuel = fuel;
  pc = pc_;
  goto outer;

env_exit:  // ecall/ebreak: retire, advance past the instruction
  pc_ = pc + 4;
  retired_ += pub_fuel - fuel + 1;
  result.steps = max_steps - fuel + 1;
  goto tally;

trap_at_pc:  // non-retiring trap: pc_ stays on the trapping instruction
  pc_ = pc;
  retired_ += pub_fuel - fuel;
  result.steps = max_steps - fuel + 1;
  goto tally;

sync_outer:  // leave the dispatch loop, keep executing via a fresh window
  pc_ = pc;
  goto outer;

budget_exit:
  pc_ = pc;
  retired_ += pub_fuel - fuel;
  result.steps = max_steps - fuel;
  goto tally;

tally:
  CONVOLVE_TELEMETRY_ONLY(fused_exec_ += fused_n;)
  (void)fused_n;
  return result;
}

#undef BC_CASE
#undef BC_DISPATCH
#undef BC_NEXT
#undef BC_JUMP
#undef BC_STORE_TAIL
#undef BC_FUSED_GUARD
#undef BC_FUSED_TAIL
#undef BC_FUSED_BRANCH_TAIL
#undef BC_FUSED_CMP_BRANCH

// ---------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------

namespace rv32asm {

namespace {

std::uint32_t r_type(std::uint32_t funct7, int rs2, int rs1,
                     std::uint32_t funct3, int rd, std::uint32_t opcode) {
  return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t i_type(std::int32_t imm, int rs1, std::uint32_t funct3, int rd,
                     std::uint32_t opcode) {
  return (static_cast<std::uint32_t>(imm & 0xfff) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t s_type(std::int32_t imm, int rs2, int rs1,
                     std::uint32_t funct3) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm) & 0xfff;
  return ((u >> 5) << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         ((u & 0x1f) << 7) | 0x23;
}

std::uint32_t b_type(std::int32_t offset, int rs1, int rs2,
                     std::uint32_t funct3) {
  const std::uint32_t u = static_cast<std::uint32_t>(offset);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
         (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
}

}  // namespace

std::uint32_t lui(int rd, std::uint32_t imm20) {
  return (imm20 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x37;
}
std::uint32_t auipc(int rd, std::uint32_t imm20) {
  return (imm20 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x17;
}
std::uint32_t jal(int rd, std::int32_t offset) {
  const std::uint32_t u = static_cast<std::uint32_t>(offset);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
         (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | 0x6f;
}
std::uint32_t jalr(int rd, int rs1, std::int32_t offset) {
  return i_type(offset, rs1, 0, rd, 0x67);
}
std::uint32_t beq(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 0); }
std::uint32_t bne(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 1); }
std::uint32_t blt(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 4); }
std::uint32_t bge(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 5); }
std::uint32_t bltu(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 6); }
std::uint32_t bgeu(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 7); }
std::uint32_t lb(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 0, rd, 0x03); }
std::uint32_t lh(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 1, rd, 0x03); }
std::uint32_t lw(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 2, rd, 0x03); }
std::uint32_t lbu(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 4, rd, 0x03); }
std::uint32_t lhu(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 5, rd, 0x03); }
std::uint32_t sb(int rs2, int rs1, std::int32_t o) { return s_type(o, rs2, rs1, 0); }
std::uint32_t sh(int rs2, int rs1, std::int32_t o) { return s_type(o, rs2, rs1, 1); }
std::uint32_t sw(int rs2, int rs1, std::int32_t o) { return s_type(o, rs2, rs1, 2); }
std::uint32_t addi(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 0, rd, 0x13); }
std::uint32_t slti(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 2, rd, 0x13); }
std::uint32_t sltiu(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 3, rd, 0x13); }
std::uint32_t xori(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 4, rd, 0x13); }
std::uint32_t ori(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 6, rd, 0x13); }
std::uint32_t andi(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 7, rd, 0x13); }
std::uint32_t slli(int rd, int rs1, int shamt) { return i_type(shamt, rs1, 1, rd, 0x13); }
std::uint32_t srli(int rd, int rs1, int shamt) { return i_type(shamt, rs1, 5, rd, 0x13); }
std::uint32_t srai(int rd, int rs1, int shamt) {
  return i_type(shamt | 0x400, rs1, 5, rd, 0x13);
}
std::uint32_t add(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 0, rd, 0x33); }
std::uint32_t sub(int rd, int rs1, int rs2) { return r_type(0x20, rs2, rs1, 0, rd, 0x33); }
std::uint32_t sll(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 1, rd, 0x33); }
std::uint32_t slt(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 2, rd, 0x33); }
std::uint32_t sltu(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 3, rd, 0x33); }
std::uint32_t xor_(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 4, rd, 0x33); }
std::uint32_t srl(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 5, rd, 0x33); }
std::uint32_t sra(int rd, int rs1, int rs2) { return r_type(0x20, rs2, rs1, 5, rd, 0x33); }
std::uint32_t or_(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 6, rd, 0x33); }
std::uint32_t and_(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 7, rd, 0x33); }
std::uint32_t mul(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 0, rd, 0x33); }
std::uint32_t mulh(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 1, rd, 0x33); }
std::uint32_t mulhsu(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 2, rd, 0x33); }
std::uint32_t mulhu(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 3, rd, 0x33); }
std::uint32_t div(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 4, rd, 0x33); }
std::uint32_t divu(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 5, rd, 0x33); }
std::uint32_t rem(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 6, rd, 0x33); }
std::uint32_t remu(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 7, rd, 0x33); }
std::uint32_t ecall() { return 0x73; }
std::uint32_t ebreak() { return 0x00100073; }
std::uint32_t nop() { return addi(0, 0, 0); }

Bytes assemble(const std::vector<std::uint32_t>& words) {
  Bytes out(words.size() * 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    store_le32(out.data() + 4 * i, words[i]);
  }
  return out;
}

}  // namespace rv32asm

}  // namespace convolve::tee
