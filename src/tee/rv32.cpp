#include "convolve/tee/rv32.hpp"

#include <stdexcept>

namespace convolve::tee {

namespace {

std::int32_t sign_extend(std::uint32_t value, int bits) {
  const std::uint32_t mask = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ mask) - mask);
}

}  // namespace

Rv32Cpu::Rv32Cpu(Machine& machine, std::uint32_t entry_pc, PrivMode mode)
    : machine_(machine), pc_(entry_pc), mode_(mode) {}

#if CONVOLVE_TELEMETRY_ENABLED
namespace {
telemetry::Counter t_retired{"rv32.instructions_retired"};
telemetry::Counter t_dc_hits{"rv32.decode_cache.hits"};
telemetry::Counter t_dc_misses{"rv32.decode_cache.misses"};
telemetry::Counter t_dc_invalidations{"rv32.decode_cache.invalidations"};
}  // namespace

Rv32Cpu::~Rv32Cpu() { flush_telemetry(); }

void Rv32Cpu::flush_telemetry() {
  t_retired.add(retired_ - flushed_retired_);
  flushed_retired_ = retired_;
  // A "hit" is a fast-engine instruction served from an already-decoded
  // page; each decoded_page() decode corresponds to the one instruction
  // that forced it (a miss), everything else executed cached decodes.
  t_dc_hits.add(fast_steps_ > dc_decodes_ ? fast_steps_ - dc_decodes_ : 0);
  t_dc_misses.add(dc_decodes_);
  t_dc_invalidations.add(dc_invalidations_);
  // Each fast-engine retired instruction performed one memoized PMP
  // execute check; credit those hits wholesale (access_ok's hit path is
  // too hot to count per call).
  machine_.credit_memo_hits(fast_steps_);
  fast_steps_ = 0;
  dc_decodes_ = 0;
  dc_invalidations_ = 0;
}
#else
Rv32Cpu::~Rv32Cpu() = default;
void Rv32Cpu::flush_telemetry() {}
#endif

std::uint32_t Rv32Cpu::reg(int index) const {
  if (index < 0 || index > 31) throw std::out_of_range("Rv32Cpu::reg");
  return x_[static_cast<std::size_t>(index)];
}

void Rv32Cpu::set_reg(int index, std::uint32_t value) {
  if (index < 0 || index > 31) throw std::out_of_range("Rv32Cpu::set_reg");
  if (index != 0) x_[static_cast<std::size_t>(index)] = value;
}

std::optional<Trap> Rv32Cpu::step() {
  if (pc_ % 4 != 0) {
    return Trap{TrapCause::kMisalignedFetch, pc_, pc_};
  }
  std::uint32_t inst;
  try {
    inst = machine_.fetch32(pc_, mode_);
  } catch (const AccessFault&) {
    return Trap{TrapCause::kInstructionAccessFault, pc_, pc_};
  }

  const std::uint32_t opcode = inst & 0x7f;
  const int rd = static_cast<int>((inst >> 7) & 0x1f);
  const int rs1 = static_cast<int>((inst >> 15) & 0x1f);
  const int rs2 = static_cast<int>((inst >> 20) & 0x1f);
  const std::uint32_t funct3 = (inst >> 12) & 0x7;
  const std::uint32_t funct7 = inst >> 25;
  const std::uint32_t a = reg(rs1);
  const std::uint32_t b = reg(rs2);

  std::uint32_t next_pc = pc_ + 4;

  switch (opcode) {
    case 0x37:  // LUI
      set_reg(rd, inst & 0xfffff000u);
      break;
    case 0x17:  // AUIPC
      set_reg(rd, pc_ + (inst & 0xfffff000u));
      break;
    case 0x6f: {  // JAL
      const std::uint32_t imm = ((inst >> 31) << 20) |
                                (((inst >> 12) & 0xff) << 12) |
                                (((inst >> 20) & 1) << 11) |
                                (((inst >> 21) & 0x3ff) << 1);
      set_reg(rd, pc_ + 4);
      next_pc = pc_ + static_cast<std::uint32_t>(sign_extend(imm, 21));
      break;
    }
    case 0x67: {  // JALR
      const std::int32_t imm = sign_extend(inst >> 20, 12);
      const std::uint32_t target =
          (a + static_cast<std::uint32_t>(imm)) & ~1u;
      set_reg(rd, pc_ + 4);
      next_pc = target;
      break;
    }
    case 0x63: {  // BRANCH
      const std::uint32_t imm = ((inst >> 31) << 12) |
                                (((inst >> 7) & 1) << 11) |
                                (((inst >> 25) & 0x3f) << 5) |
                                (((inst >> 8) & 0xf) << 1);
      const std::int32_t offset = sign_extend(imm, 13);
      bool taken = false;
      switch (funct3) {
        case 0: taken = (a == b); break;
        case 1: taken = (a != b); break;
        case 4: taken = (static_cast<std::int32_t>(a) <
                         static_cast<std::int32_t>(b)); break;
        case 5: taken = (static_cast<std::int32_t>(a) >=
                         static_cast<std::int32_t>(b)); break;
        case 6: taken = (a < b); break;
        case 7: taken = (a >= b); break;
        default:
          return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      if (taken) next_pc = pc_ + static_cast<std::uint32_t>(offset);
      break;
    }
    case 0x03: {  // LOAD
      const std::int32_t imm = sign_extend(inst >> 20, 12);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      std::size_t len;
      switch (funct3) {
        case 0: case 4: len = 1; break;
        case 1: case 5: len = 2; break;
        case 2: len = 4; break;
        default:
          return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      Bytes data;
      try {
        data = machine_.load(addr, len, mode_);
      } catch (const AccessFault&) {
        return Trap{TrapCause::kLoadAccessFault, pc_, addr};
      }
      std::uint32_t value = 0;
      for (std::size_t i = 0; i < len; ++i) {
        value |= static_cast<std::uint32_t>(data[i]) << (8 * i);
      }
      if (funct3 == 0) value = static_cast<std::uint32_t>(
          sign_extend(value, 8));
      if (funct3 == 1) value = static_cast<std::uint32_t>(
          sign_extend(value, 16));
      set_reg(rd, value);
      break;
    }
    case 0x23: {  // STORE
      const std::uint32_t imm = ((inst >> 25) << 5) | ((inst >> 7) & 0x1f);
      const std::uint32_t addr =
          a + static_cast<std::uint32_t>(sign_extend(imm, 12));
      std::size_t len;
      switch (funct3) {
        case 0: len = 1; break;
        case 1: len = 2; break;
        case 2: len = 4; break;
        default:
          return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      Bytes data(len);
      for (std::size_t i = 0; i < len; ++i) {
        data[i] = static_cast<std::uint8_t>(b >> (8 * i));
      }
      try {
        machine_.store(addr, data, mode_);
      } catch (const AccessFault&) {
        return Trap{TrapCause::kStoreAccessFault, pc_, addr};
      }
      break;
    }
    case 0x13: {  // OP-IMM
      const std::int32_t imm = sign_extend(inst >> 20, 12);
      const std::uint32_t ui = static_cast<std::uint32_t>(imm);
      const int shamt = static_cast<int>((inst >> 20) & 0x1f);
      switch (funct3) {
        case 0: set_reg(rd, a + ui); break;
        case 2: set_reg(rd, static_cast<std::int32_t>(a) < imm ? 1 : 0);
                break;
        case 3: set_reg(rd, a < ui ? 1 : 0); break;
        case 4: set_reg(rd, a ^ ui); break;
        case 6: set_reg(rd, a | ui); break;
        case 7: set_reg(rd, a & ui); break;
        case 1:
          if (funct7 != 0) {
            return Trap{TrapCause::kIllegalInstruction, pc_, inst};
          }
          set_reg(rd, a << shamt);
          break;
        case 5:
          if (funct7 == 0) {
            set_reg(rd, a >> shamt);
          } else if (funct7 == 0x20) {
            set_reg(rd, static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(a) >> shamt));
          } else {
            return Trap{TrapCause::kIllegalInstruction, pc_, inst};
          }
          break;
        default:
          return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      break;
    }
    case 0x33: {  // OP (incl. M extension)
      if (funct7 == 0x01) {
        const std::int64_t sa = static_cast<std::int32_t>(a);
        const std::int64_t sb = static_cast<std::int32_t>(b);
        const std::uint64_t ua = a, ub = b;
        switch (funct3) {
          case 0: set_reg(rd, static_cast<std::uint32_t>(sa * sb)); break;
          case 1: set_reg(rd, static_cast<std::uint32_t>(
                              (sa * sb) >> 32)); break;
          case 2: set_reg(rd, static_cast<std::uint32_t>(
                              (sa * static_cast<std::int64_t>(ub)) >> 32));
                  break;
          case 3: set_reg(rd, static_cast<std::uint32_t>(
                              (ua * ub) >> 32)); break;
          case 4:  // DIV
            if (b == 0) {
              set_reg(rd, 0xffffffffu);
            } else if (a == 0x80000000u && b == 0xffffffffu) {
              set_reg(rd, 0x80000000u);  // overflow
            } else {
              set_reg(rd, static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(a) /
                              static_cast<std::int32_t>(b)));
            }
            break;
          case 5: set_reg(rd, b == 0 ? 0xffffffffu : a / b); break;
          case 6:  // REM
            if (b == 0) {
              set_reg(rd, a);
            } else if (a == 0x80000000u && b == 0xffffffffu) {
              set_reg(rd, 0);
            } else {
              set_reg(rd, static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(a) %
                              static_cast<std::int32_t>(b)));
            }
            break;
          case 7: set_reg(rd, b == 0 ? a : a % b); break;
          default:
            return Trap{TrapCause::kIllegalInstruction, pc_, inst};
        }
      } else if (funct7 == 0x00 ||
                 (funct7 == 0x20 && (funct3 == 0 || funct3 == 5))) {
        // funct7=0x20 (the SUB/SRA bit) is only architecturally defined
        // for funct3 0 and 5; on any other funct3 it is a reserved
        // encoding and must trap instead of aliasing onto the funct7=0
        // instruction.
        switch (funct3) {
          case 0: set_reg(rd, funct7 == 0x20 ? a - b : a + b); break;
          case 1: set_reg(rd, a << (b & 31)); break;
          case 2: set_reg(rd, static_cast<std::int32_t>(a) <
                                      static_cast<std::int32_t>(b)
                                  ? 1 : 0); break;
          case 3: set_reg(rd, a < b ? 1 : 0); break;
          case 4: set_reg(rd, a ^ b); break;
          case 5:
            set_reg(rd, funct7 == 0x20
                            ? static_cast<std::uint32_t>(
                                  static_cast<std::int32_t>(a) >> (b & 31))
                            : a >> (b & 31));
            break;
          case 6: set_reg(rd, a | b); break;
          case 7: set_reg(rd, a & b); break;
          default:
            return Trap{TrapCause::kIllegalInstruction, pc_, inst};
        }
      } else {
        return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      break;
    }
    case 0x0f:  // FENCE: no-op in this memory model
      break;
    case 0x73: {  // SYSTEM
      // Only ECALL/EBREAK are implemented, and their encodings are exact:
      // funct3, rd and rs1 must all be zero. CSR-class instructions
      // (funct3 != 0) and other PRIV encodings trap as illegal with the
      // same bookkeeping as every other trap path (pc and retired count
      // NOT advanced); ecall/ebreak retire and advance so the embedder
      // can resume past them.
      const std::uint32_t imm = inst >> 20;
      if (funct3 != 0 || rd != 0 || rs1 != 0 || imm > 1) {
        return Trap{TrapCause::kIllegalInstruction, pc_, inst};
      }
      pc_ += 4;
      ++retired_;
      return Trap{imm == 0 ? TrapCause::kEcall : TrapCause::kEbreak,
                  pc_ - 4, 0};
    }
    default:
      return Trap{TrapCause::kIllegalInstruction, pc_, inst};
  }

  pc_ = next_pc;
  ++retired_;
  return std::nullopt;
}

Rv32Cpu::RunResult Rv32Cpu::run_interpreted(std::uint64_t max_steps) {
  RunResult result;
  while (result.steps < max_steps) {
    auto trap = step();
    ++result.steps;
    if (trap) {
      result.trap = trap;
      break;
    }
  }
  return result;
}

// ---------------------------------------------------------------------
// Fast engine: decoded-instruction cache + allocation-free memory path
// ---------------------------------------------------------------------

const Rv32Cpu::DecodedPage* Rv32Cpu::decoded_page(std::uint64_t page_base) {
  DecodedPage& slot =
      (*dcache_)[(page_base >> Machine::kPageShift) % kCacheSlots];
  const std::uint32_t version = machine_.page_version(page_base);
  if (slot.base == page_base && slot.version == version) return &slot;

  CONVOLVE_TELEMETRY_ONLY(
      ++dc_decodes_;
      if (slot.base == page_base) ++dc_invalidations_;)

  // (Re-)decode the page's words straight from memory. This caches code
  // *bytes*, not permissions: the execute-permission check still happens
  // per fetch against the live PMP state.
  const std::uint8_t* bytes = machine_.page_data(page_base);
  const std::uint64_t page_bytes =
      std::min<std::uint64_t>(Machine::kPageBytes,
                              machine_.memory_size() - page_base);
  const std::size_t n_insts = static_cast<std::size_t>(page_bytes / 4);
  for (std::size_t i = 0; i < n_insts; ++i) {
    slot.insts[i] = decode_rv32(load_le32(bytes + 4 * i));
  }
  for (std::size_t i = n_insts; i < kPageInsts; ++i) {
    slot.insts[i] = DecodedInsn{};  // unreachable: fetch bounds-faults first
  }
  slot.base = page_base;
  slot.version = version;
  return &slot;
}

Rv32Cpu::RunResult Rv32Cpu::run_fast(std::uint64_t max_steps) {
  if (!dcache_) dcache_ = std::make_unique<std::array<DecodedPage, kCacheSlots>>();
  RunResult result;

  const DecodedPage* page = nullptr;
  std::uint64_t page_base = ~0ull;

  while (result.steps < max_steps) {
    const std::uint32_t pc = pc_;
    if (pc % 4 != 0) {
      result.trap = Trap{TrapCause::kMisalignedFetch, pc, pc};
      ++result.steps;
      return result;
    }
    // Execute-permission + bounds check through the memoized PMP window
    // (a handful of compares on the hot path).
    if (!machine_.access_ok(pc, 4, mode_, AccessType::kExecute)) {
      result.trap = Trap{TrapCause::kInstructionAccessFault, pc, pc};
      ++result.steps;
      return result;
    }
    const std::uint64_t base = pc & ~(Machine::kPageBytes - 1);
    // Revalidate the decoded page when crossing a page boundary or when
    // a store bumped the page's version (self-modifying code).
    if (base != page_base || page == nullptr ||
        page->version != machine_.page_version(base)) {
      page = decoded_page(base);
      page_base = base;
    }
    const DecodedInsn& di =
        page->insts[(pc & (Machine::kPageBytes - 1)) >> 2];

    const std::uint32_t a = x_[di.rs1];
    const std::uint32_t b = x_[di.rs2];
    const std::uint32_t ui = static_cast<std::uint32_t>(di.imm);
    std::uint32_t next_pc = pc + 4;
    std::uint32_t value = 0;  // rd write staging for loads

    switch (di.kind) {
      case OpKind::kLui: value = ui; goto write_rd;
      case OpKind::kAuipc: value = pc + ui; goto write_rd;
      case OpKind::kJal:
        value = pc + 4;
        next_pc = pc + ui;
        goto write_rd;
      case OpKind::kJalr:
        value = pc + 4;
        next_pc = (a + ui) & ~1u;
        goto write_rd;
      case OpKind::kBeq: if (a == b) next_pc = pc + ui; break;
      case OpKind::kBne: if (a != b) next_pc = pc + ui; break;
      case OpKind::kBlt:
        if (static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b))
          next_pc = pc + ui;
        break;
      case OpKind::kBge:
        if (static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b))
          next_pc = pc + ui;
        break;
      case OpKind::kBltu: if (a < b) next_pc = pc + ui; break;
      case OpKind::kBgeu: if (a >= b) next_pc = pc + ui; break;

      case OpKind::kLb: {
        std::uint8_t v;
        if (!machine_.read8(a + ui, mode_, v)) goto load_fault;
        value = static_cast<std::uint32_t>(sign_extend(v, 8));
        goto write_rd;
      }
      case OpKind::kLh: {
        std::uint16_t v;
        if (!machine_.read16(a + ui, mode_, v)) goto load_fault;
        value = static_cast<std::uint32_t>(sign_extend(v, 16));
        goto write_rd;
      }
      case OpKind::kLw:
        if (!machine_.read32(a + ui, mode_, value)) goto load_fault;
        goto write_rd;
      case OpKind::kLbu: {
        std::uint8_t v;
        if (!machine_.read8(a + ui, mode_, v)) goto load_fault;
        value = v;
        goto write_rd;
      }
      case OpKind::kLhu: {
        std::uint16_t v;
        if (!machine_.read16(a + ui, mode_, v)) goto load_fault;
        value = v;
        goto write_rd;
      }

      case OpKind::kSb:
        if (!machine_.write8(a + ui, static_cast<std::uint8_t>(b), mode_))
          goto store_fault;
        break;
      case OpKind::kSh:
        if (!machine_.write16(a + ui, static_cast<std::uint16_t>(b), mode_))
          goto store_fault;
        break;
      case OpKind::kSw:
        if (!machine_.write32(a + ui, b, mode_)) goto store_fault;
        break;

      case OpKind::kAddi: value = a + ui; goto write_rd;
      case OpKind::kSlti:
        value = static_cast<std::int32_t>(a) < di.imm ? 1 : 0;
        goto write_rd;
      case OpKind::kSltiu: value = a < ui ? 1 : 0; goto write_rd;
      case OpKind::kXori: value = a ^ ui; goto write_rd;
      case OpKind::kOri: value = a | ui; goto write_rd;
      case OpKind::kAndi: value = a & ui; goto write_rd;
      case OpKind::kSlli: value = a << di.imm; goto write_rd;
      case OpKind::kSrli: value = a >> di.imm; goto write_rd;
      case OpKind::kSrai:
        value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) >> di.imm);
        goto write_rd;

      case OpKind::kAdd: value = a + b; goto write_rd;
      case OpKind::kSub: value = a - b; goto write_rd;
      case OpKind::kSll: value = a << (b & 31); goto write_rd;
      case OpKind::kSlt:
        value = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)
                    ? 1 : 0;
        goto write_rd;
      case OpKind::kSltu: value = a < b ? 1 : 0; goto write_rd;
      case OpKind::kXor: value = a ^ b; goto write_rd;
      case OpKind::kSrl: value = a >> (b & 31); goto write_rd;
      case OpKind::kSra:
        value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) >> (b & 31));
        goto write_rd;
      case OpKind::kOr: value = a | b; goto write_rd;
      case OpKind::kAnd: value = a & b; goto write_rd;

      case OpKind::kMul:
        value = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
            static_cast<std::int64_t>(static_cast<std::int32_t>(b)));
        goto write_rd;
      case OpKind::kMulh:
        value = static_cast<std::uint32_t>(
            (static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
             static_cast<std::int64_t>(static_cast<std::int32_t>(b))) >> 32);
        goto write_rd;
      case OpKind::kMulhsu:
        value = static_cast<std::uint32_t>(
            (static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
             static_cast<std::int64_t>(static_cast<std::uint64_t>(b))) >> 32);
        goto write_rd;
      case OpKind::kMulhu:
        value = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b))
            >> 32);
        goto write_rd;
      case OpKind::kDiv:
        if (b == 0) value = 0xffffffffu;
        else if (a == 0x80000000u && b == 0xffffffffu) value = 0x80000000u;
        else value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) / static_cast<std::int32_t>(b));
        goto write_rd;
      case OpKind::kDivu: value = b == 0 ? 0xffffffffu : a / b; goto write_rd;
      case OpKind::kRem:
        if (b == 0) value = a;
        else if (a == 0x80000000u && b == 0xffffffffu) value = 0;
        else value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) % static_cast<std::int32_t>(b));
        goto write_rd;
      case OpKind::kRemu: value = b == 0 ? a : a % b; goto write_rd;

      case OpKind::kFence:
        break;

      case OpKind::kEcall:
      case OpKind::kEbreak:
        pc_ = pc + 4;
        ++retired_;
        ++result.steps;
        result.trap = Trap{di.kind == OpKind::kEcall ? TrapCause::kEcall
                                                     : TrapCause::kEbreak,
                           pc, 0};
        return result;

      case OpKind::kIllegal:
      default:
        result.trap = Trap{TrapCause::kIllegalInstruction, pc,
                           static_cast<std::uint32_t>(di.imm)};
        ++result.steps;
        return result;
    }
    goto retire;

  write_rd:
    if (di.rd != 0) x_[di.rd] = value;
    goto retire;

  load_fault:
    result.trap = Trap{TrapCause::kLoadAccessFault, pc, a + ui};
    ++result.steps;
    return result;

  store_fault:
    result.trap = Trap{TrapCause::kStoreAccessFault, pc, a + ui};
    ++result.steps;
    return result;

  retire:
    pc_ = next_pc;
    ++retired_;
    ++result.steps;
  }
  return result;
}

// ---------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------

namespace rv32asm {

namespace {

std::uint32_t r_type(std::uint32_t funct7, int rs2, int rs1,
                     std::uint32_t funct3, int rd, std::uint32_t opcode) {
  return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t i_type(std::int32_t imm, int rs1, std::uint32_t funct3, int rd,
                     std::uint32_t opcode) {
  return (static_cast<std::uint32_t>(imm & 0xfff) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t s_type(std::int32_t imm, int rs2, int rs1,
                     std::uint32_t funct3) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm) & 0xfff;
  return ((u >> 5) << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         ((u & 0x1f) << 7) | 0x23;
}

std::uint32_t b_type(std::int32_t offset, int rs1, int rs2,
                     std::uint32_t funct3) {
  const std::uint32_t u = static_cast<std::uint32_t>(offset);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
         (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
}

}  // namespace

std::uint32_t lui(int rd, std::uint32_t imm20) {
  return (imm20 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x37;
}
std::uint32_t auipc(int rd, std::uint32_t imm20) {
  return (imm20 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x17;
}
std::uint32_t jal(int rd, std::int32_t offset) {
  const std::uint32_t u = static_cast<std::uint32_t>(offset);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
         (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | 0x6f;
}
std::uint32_t jalr(int rd, int rs1, std::int32_t offset) {
  return i_type(offset, rs1, 0, rd, 0x67);
}
std::uint32_t beq(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 0); }
std::uint32_t bne(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 1); }
std::uint32_t blt(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 4); }
std::uint32_t bge(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 5); }
std::uint32_t bltu(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 6); }
std::uint32_t bgeu(int rs1, int rs2, std::int32_t o) { return b_type(o, rs1, rs2, 7); }
std::uint32_t lb(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 0, rd, 0x03); }
std::uint32_t lh(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 1, rd, 0x03); }
std::uint32_t lw(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 2, rd, 0x03); }
std::uint32_t lbu(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 4, rd, 0x03); }
std::uint32_t lhu(int rd, int rs1, std::int32_t o) { return i_type(o, rs1, 5, rd, 0x03); }
std::uint32_t sb(int rs2, int rs1, std::int32_t o) { return s_type(o, rs2, rs1, 0); }
std::uint32_t sh(int rs2, int rs1, std::int32_t o) { return s_type(o, rs2, rs1, 1); }
std::uint32_t sw(int rs2, int rs1, std::int32_t o) { return s_type(o, rs2, rs1, 2); }
std::uint32_t addi(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 0, rd, 0x13); }
std::uint32_t slti(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 2, rd, 0x13); }
std::uint32_t sltiu(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 3, rd, 0x13); }
std::uint32_t xori(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 4, rd, 0x13); }
std::uint32_t ori(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 6, rd, 0x13); }
std::uint32_t andi(int rd, int rs1, std::int32_t imm) { return i_type(imm, rs1, 7, rd, 0x13); }
std::uint32_t slli(int rd, int rs1, int shamt) { return i_type(shamt, rs1, 1, rd, 0x13); }
std::uint32_t srli(int rd, int rs1, int shamt) { return i_type(shamt, rs1, 5, rd, 0x13); }
std::uint32_t srai(int rd, int rs1, int shamt) {
  return i_type(shamt | 0x400, rs1, 5, rd, 0x13);
}
std::uint32_t add(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 0, rd, 0x33); }
std::uint32_t sub(int rd, int rs1, int rs2) { return r_type(0x20, rs2, rs1, 0, rd, 0x33); }
std::uint32_t sll(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 1, rd, 0x33); }
std::uint32_t slt(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 2, rd, 0x33); }
std::uint32_t sltu(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 3, rd, 0x33); }
std::uint32_t xor_(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 4, rd, 0x33); }
std::uint32_t srl(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 5, rd, 0x33); }
std::uint32_t sra(int rd, int rs1, int rs2) { return r_type(0x20, rs2, rs1, 5, rd, 0x33); }
std::uint32_t or_(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 6, rd, 0x33); }
std::uint32_t and_(int rd, int rs1, int rs2) { return r_type(0, rs2, rs1, 7, rd, 0x33); }
std::uint32_t mul(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 0, rd, 0x33); }
std::uint32_t mulh(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 1, rd, 0x33); }
std::uint32_t mulhsu(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 2, rd, 0x33); }
std::uint32_t mulhu(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 3, rd, 0x33); }
std::uint32_t div(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 4, rd, 0x33); }
std::uint32_t divu(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 5, rd, 0x33); }
std::uint32_t rem(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 6, rd, 0x33); }
std::uint32_t remu(int rd, int rs1, int rs2) { return r_type(1, rs2, rs1, 7, rd, 0x33); }
std::uint32_t ecall() { return 0x73; }
std::uint32_t ebreak() { return 0x00100073; }
std::uint32_t nop() { return addi(0, 0, 0); }

Bytes assemble(const std::vector<std::uint32_t>& words) {
  Bytes out(words.size() * 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    store_le32(out.data() + 4 * i, words[i]);
  }
  return out;
}

}  // namespace rv32asm

}  // namespace convolve::tee
