#include "convolve/tee/bootrom.hpp"

#include <stdexcept>

#include "convolve/crypto/hmac.hpp"
#include "convolve/crypto/keccak.hpp"

namespace convolve::tee {

DeviceKeys DeviceKeys::from_entropy(ByteView entropy32) {
  if (entropy32.size() != 32) {
    throw std::invalid_argument("DeviceKeys: entropy must be 32 bytes");
  }
  DeviceKeys keys;
  const Bytes okm = crypto::hkdf(as_bytes("convolve-device-keys-v1"),
                                 entropy32, as_bytes("ed25519|mldsa"), 64);
  std::copy(okm.begin(), okm.begin() + 32, keys.ed25519_seed.begin());
  std::copy(okm.begin() + 32, okm.end(), keys.mldsa_seed.begin());
  return keys;
}

Bootrom::Bootrom(const BootromConfig& config, const DeviceKeys& keys)
    : config_(config), keys_(keys) {}

std::size_t Bootrom::size_bytes() const {
  std::size_t size = kBaseBootCode + kSha3Code + kEd25519Code + kKeyManifest;
  if (config_.pq_enabled) size += kMlDsaCode + kMlDsaSeed + kHybridGlue;
  return size;
}

BootRecord Bootrom::boot(ByteView sm_image) const {
  BootRecord record;
  record.pq_enabled = config_.pq_enabled;
  record.sm_measurement = crypto::sha3_512(sm_image);

  // Device identity (ML-DSA key regenerated from its stored seed).
  const auto device_ed = crypto::ed25519_keypair(
      {keys_.ed25519_seed.data(), keys_.ed25519_seed.size()});
  record.device_ed25519_pk = device_ed.public_key;

  crypto::dilithium::KeyPair device_mldsa;
  if (config_.pq_enabled) {
    device_mldsa = crypto::dilithium::keygen(
        {keys_.mldsa_seed.data(), keys_.mldsa_seed.size()});
    record.device_mldsa_pk = device_mldsa.pk;
  }

  // Derive SM keys from (device secret, SM measurement).
  const Bytes sm_ed_seed =
      crypto::hkdf({keys_.ed25519_seed.data(), 32}, record.sm_measurement,
                   as_bytes("sm-ed25519"), 32);
  record.sm_ed25519 = crypto::ed25519_keypair(sm_ed_seed);
  if (config_.pq_enabled) {
    const Bytes sm_mldsa_seed =
        crypto::hkdf({keys_.mldsa_seed.data(), 32}, record.sm_measurement,
                     as_bytes("sm-mldsa"), 32);
    record.sm_mldsa = crypto::dilithium::keygen(sm_mldsa_seed);
  }

  // Sign (measurement || SM pks) with the device keys.
  Bytes payload = record.sm_measurement;
  payload.insert(payload.end(), record.sm_ed25519.public_key.begin(),
                 record.sm_ed25519.public_key.end());
  if (config_.pq_enabled) {
    payload.insert(payload.end(), record.sm_mldsa.pk.begin(),
                   record.sm_mldsa.pk.end());
  }
  record.device_sig_ed25519 = crypto::ed25519_sign(device_ed, payload);
  if (config_.pq_enabled) {
    record.device_sig_mldsa = crypto::dilithium::sign(device_mldsa.sk, payload);
  }

  // Sealing root: bound to BOTH device secrets in PQ mode.
  Bytes ikm(keys_.ed25519_seed.begin(), keys_.ed25519_seed.end());
  if (config_.pq_enabled) {
    ikm.insert(ikm.end(), keys_.mldsa_seed.begin(), keys_.mldsa_seed.end());
  }
  record.sealing_root = crypto::hkdf(as_bytes("convolve-sealing-root-v1"),
                                     ikm, record.sm_measurement, 32);
  return record;
}

bool Bootrom::verify_boot_record(const BootRecord& record) {
  Bytes payload = record.sm_measurement;
  payload.insert(payload.end(), record.sm_ed25519.public_key.begin(),
                 record.sm_ed25519.public_key.end());
  if (record.pq_enabled) {
    payload.insert(payload.end(), record.sm_mldsa.pk.begin(),
                   record.sm_mldsa.pk.end());
  }
  if (!crypto::ed25519_verify(
          {record.device_ed25519_pk.data(), 32}, payload,
          {record.device_sig_ed25519.data(), 64})) {
    return false;
  }
  if (record.pq_enabled) {
    // Hybrid rule: both signatures must verify.
    if (!crypto::dilithium::verify(record.device_mldsa_pk, payload,
                                   record.device_sig_mldsa)) {
      return false;
    }
  }
  return true;
}

}  // namespace convolve::tee
