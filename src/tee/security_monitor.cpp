#include "convolve/tee/security_monitor.hpp"

#include <stdexcept>

#include "convolve/common/telemetry.hpp"
#include "convolve/crypto/aead.hpp"
#include "convolve/crypto/hmac.hpp"
#include "convolve/crypto/keccak.hpp"

namespace convolve::tee {

namespace {

#if CONVOLVE_TELEMETRY_ENABLED
// Flight-recorder taxonomy of an enclave run's exit: voluntary exits
// (ecall/ebreak) are clean and emit nothing here -- the service's
// request_done event carries their status; everything else is a
// security-relevant occurrence attributed to the current context.
void record_trap_exit(const RequestContext& ctx,
                      const Rv32Cpu::RunResult& result) {
  namespace tel = convolve::telemetry;
  if (!result.trap) {
    tel::record_event(tel::EventKind::kStepLimit, ctx, 0, result.steps);
    return;
  }
  const Trap& trap = *result.trap;
  switch (trap.cause) {
    case TrapCause::kEcall:
    case TrapCause::kEbreak:
      return;
    case TrapCause::kLoadAccessFault:
      tel::record_event(tel::EventKind::kPmpFault, ctx, 0, trap.tval);
      return;
    case TrapCause::kStoreAccessFault:
      tel::record_event(tel::EventKind::kPmpFault, ctx, 1, trap.tval);
      return;
    case TrapCause::kInstructionAccessFault:
      tel::record_event(tel::EventKind::kPmpFault, ctx, 2, trap.tval);
      return;
    case TrapCause::kIllegalInstruction:
      tel::record_event(tel::EventKind::kIllegalInsn, ctx, 0, trap.tval);
      return;
    case TrapCause::kMisalignedFetch:
      tel::record_event(tel::EventKind::kMisalignedFetch, ctx, 0, trap.tval);
      return;
  }
}
#endif  // CONVOLVE_TELEMETRY_ENABLED

std::uint64_t next_power_of_two(std::uint64_t x) {
  std::uint64_t p = 8;
  while (p < x) p *= 2;
  return p;
}

std::uint64_t align_up(std::uint64_t x, std::uint64_t alignment) {
  return (x + alignment - 1) / alignment * alignment;
}

// PMP entry plan: 0 = SM region, 1..14 = enclaves, 15 = OS allow-all.
constexpr int kSmEntry = 0;
constexpr int kFirstEnclaveEntry = 1;
constexpr int kLastEnclaveEntry = 14;
constexpr int kOsEntry = 15;

}  // namespace

SecurityMonitor::SecurityMonitor(Machine& machine, const BootRecord& boot,
                                 const SmConfig& config)
    : machine_(machine),
      boot_(boot),
      config_(config),
      stack_(config.stack_bytes) {
  if (config_.sm_region_size == 0 ||
      (config_.sm_region_size & (config_.sm_region_size - 1)) != 0) {
    throw std::invalid_argument("SecurityMonitor: SM region must be 2^k");
  }
  // Wall off the SM's own memory: a permission-less entry denies S/U while
  // M-mode (the SM itself) passes because the entry is not locked.
  PmpEntry sm_entry;
  sm_entry.mode = PmpAddressMode::kNapot;
  sm_entry.address = PmpUnit::encode_napot(0, config_.sm_region_size);
  machine_.pmp().set_entry(kSmEntry, sm_entry);

  next_free_ = config_.sm_region_size;
  enter_os();
}

SecurityMonitor::SecurityMonitor(Machine& machine, const SmSnapshot& snap,
                                 std::uint32_t fork_id)
    : machine_(machine),
      boot_(snap.boot),
      config_(snap.config),
      stack_(snap.config.stack_bytes),
      enclaves_(snap.enclaves),
      next_free_(snap.next_free),
      seal_nonce_counter_(snap.seal_nonce_counter),
      fork_id_(fork_id) {
  // Deliberately no PMP writes: the forked machine's PMP is a copy of the
  // snapshotted plan already (Machine fork inherits it), and leaving it
  // untouched keeps the inherited PMP epoch -- so decode caches and PMP
  // memos carried over from the image stay valid.
}

SmSnapshot SecurityMonitor::snapshot() const {
  SmSnapshot snap;
  snap.boot = boot_;
  snap.config = config_;
  snap.enclaves = enclaves_;
  snap.next_free = next_free_;
  snap.seal_nonce_counter = seal_nonce_counter_;
  return snap;
}

int SecurityMonitor::create_enclave(ByteView binary,
                                    std::uint64_t region_size) {
  const int entry_index =
      kFirstEnclaveEntry + static_cast<int>(enclaves_.size());
  if (entry_index > kLastEnclaveEntry) {
    throw std::runtime_error("create_enclave: out of PMP entries");
  }
  const std::uint64_t size =
      next_power_of_two(std::max<std::uint64_t>(region_size, 4096));
  const std::uint64_t base = align_up(next_free_, size);
  if (base + size > machine_.memory_size()) {
    throw std::runtime_error("create_enclave: out of memory");
  }
  if (binary.size() > size) {
    throw std::runtime_error("create_enclave: binary larger than region");
  }
  next_free_ = base + size;

  // Load and measure (M-mode: the SM performs the copy).
  machine_.store(base, binary, PrivMode::kMachine);

  Enclave e;
  e.id = static_cast<int>(enclaves_.size());
  e.base = base;
  e.size = size;
  e.measurement = crypto::sha3_512(binary);
  enclaves_.push_back(std::move(e));

  enter_os();  // refresh the PMP view with the new region blanked out
  return enclaves_.back().id;
}

SecurityMonitor::Enclave& SecurityMonitor::enclave_mut(int id) {
  if (id < 0 || id >= static_cast<int>(enclaves_.size())) {
    throw std::out_of_range("enclave id");
  }
  return enclaves_[static_cast<std::size_t>(id)];
}

const SecurityMonitor::Enclave& SecurityMonitor::enclave(int id) const {
  if (id < 0 || id >= static_cast<int>(enclaves_.size())) {
    throw std::out_of_range("enclave id");
  }
  return enclaves_[static_cast<std::size_t>(id)];
}

void SecurityMonitor::destroy_enclave(int id) {
  Enclave& e = enclave_mut(id);
  if (!e.alive) return;
  // Wipe the enclave's memory before releasing it to the OS
  // (allocation-free: no scratch zero-buffer the size of the region).
  machine_.fill(e.base, e.size, 0, PrivMode::kMachine);
  e.alive = false;
  enter_os();
}

void SecurityMonitor::enter_os() {
  PmpUnit& pmp = machine_.pmp();
  // Blank out every live enclave for S/U.
  for (const Enclave& e : enclaves_) {
    PmpEntry entry;
    if (e.alive) {
      entry.mode = PmpAddressMode::kNapot;
      entry.address = PmpUnit::encode_napot(e.base, e.size);
      // No permissions: S/U denied.
    }
    pmp.set_entry(kFirstEnclaveEntry + e.id, entry);
  }
  // OS gets the rest of DRAM.
  PmpEntry os_entry;
  os_entry.mode = PmpAddressMode::kTor;
  os_entry.address = machine_.memory_size() >> 2;
  os_entry.read = os_entry.write = os_entry.execute = true;
  pmp.set_entry(kOsEntry, os_entry);
}

void SecurityMonitor::enter_enclave(int id) {
  const Enclave& target = enclave(id);
  if (!target.alive) throw std::runtime_error("enter_enclave: destroyed");
  PmpUnit& pmp = machine_.pmp();
  for (const Enclave& e : enclaves_) {
    PmpEntry entry;
    if (e.alive) {
      entry.mode = PmpAddressMode::kNapot;
      entry.address = PmpUnit::encode_napot(e.base, e.size);
      if (e.id == id) {
        entry.read = entry.write = entry.execute = true;
      }
    }
    pmp.set_entry(kFirstEnclaveEntry + e.id, entry);
  }
  // No allow-all while an enclave runs: everything outside the enclave is
  // unmatched and therefore denied to U-mode.
  pmp.set_entry(kOsEntry, PmpEntry{});
}

void SecurityMonitor::run_enclave(int id, const std::function<void()>& body) {
  enter_enclave(id);
  try {
    body();
  } catch (...) {
    enter_os();
    throw;
  }
  enter_os();
}

Rv32Cpu::RunResult SecurityMonitor::run_enclave_program(
    int id, std::uint64_t max_steps, std::uint32_t entry_offset) {
  return run_enclave_program(id, max_steps, entry_offset,
                             enclave(id).engine);
}

Rv32Cpu::RunResult SecurityMonitor::run_enclave_program(
    int id, std::uint64_t max_steps, std::uint32_t entry_offset,
    Rv32Engine engine) {
  const Enclave& e = enclave(id);
  if (!e.alive) throw std::runtime_error("run_enclave_program: destroyed");
  enter_enclave(id);
  Rv32Cpu cpu(machine_,
              static_cast<std::uint32_t>(e.base) + entry_offset,
              PrivMode::kUser);
  if (engine != cpu.engine()) cpu.set_engine(engine);
  Rv32Cpu::RunResult result = cpu.run(max_steps);
  enter_os();
  CONVOLVE_TELEMETRY_ONLY(record_trap_exit(ctx_, result);)
  return result;
}

void SecurityMonitor::set_enclave_engine(int id, Rv32Engine engine) {
  enclave_mut(id).engine = engine;
}

AttestationReport SecurityMonitor::attest(int id, ByteView user_data) {
  const Enclave& e = enclave(id);
  if (user_data.size() > kEnclaveDataMax) {
    throw std::invalid_argument("attest: user data too large");
  }
  AttestationReport report;
  report.pq_enabled = boot_.pq_enabled;
  report.device_ed25519_pk = boot_.device_ed25519_pk;
  report.sm_measurement = boot_.sm_measurement;
  report.sm_ed25519_pk = boot_.sm_ed25519.public_key;
  report.device_sig_ed25519 = boot_.device_sig_ed25519;
  report.enclave_measurement = e.measurement;
  report.enclave_data.assign(user_data.begin(), user_data.end());
  if (boot_.pq_enabled) {
    report.sm_mldsa_pk = boot_.sm_mldsa.pk;
    report.device_sig_mldsa = boot_.device_sig_mldsa;
  }

  // Enclave payload: measurement || data_len || padded data.
  Bytes payload = e.measurement;
  std::uint8_t len_le[8];
  store_le64(len_le, user_data.size());
  payload.insert(payload.end(), len_le, len_le + 8);
  Bytes padded(user_data.begin(), user_data.end());
  padded.resize(kEnclaveDataMax, 0);
  payload.insert(payload.end(), padded.begin(), padded.end());

  // Sign on the SM stack: this is where the paper's default 8 KB stack
  // breaks for ML-DSA.
  StackFrame assembly(stack_, kReportAssemblyStack);
  {
    StackFrame ed_frame(stack_, kEd25519SignStack);
    report.sm_sig_ed25519 = crypto::ed25519_sign(boot_.sm_ed25519, payload);
  }
  if (boot_.pq_enabled) {
    StackFrame mldsa_frame(stack_, kMlDsaSignStack);
    report.sm_sig_mldsa = crypto::dilithium::sign(boot_.sm_mldsa.sk, payload);
  }
  return report;
}

Bytes SecurityMonitor::sealing_key(const Enclave& e) const {
  return crypto::hkdf(boot_.sealing_root, e.measurement,
                      as_bytes("convolve-sealing-key-v1"), 32);
}

Bytes SecurityMonitor::seal(int id, ByteView plaintext) {
  const Enclave& e = enclave(id);
  Bytes nonce(12, 0);
  store_le64(nonce.data(), ++seal_nonce_counter_);
  // Forks resumed from one snapshot share the counter's starting value;
  // the fork id in the high nonce bytes keeps their nonce spaces disjoint
  // (fork 0 = master, leaving pre-fork blobs byte-identical).
  store_le32(nonce.data() + 8, fork_id_);
  const auto box =
      crypto::aead_seal(sealing_key(e), nonce, plaintext, e.measurement);
  return crypto::aead_serialize(box);
}

std::optional<Bytes> SecurityMonitor::unseal(int id, ByteView sealed_blob) {
  const Enclave& e = enclave(id);
  const auto box = crypto::aead_deserialize(sealed_blob);
  if (!box) {
    CONVOLVE_RECORD_EVENT(kSealReject, ctx_, 0, sealed_blob.size());
    return std::nullopt;
  }
  auto opened = crypto::aead_open(sealing_key(e), *box, e.measurement);
  if (!opened) {
    // Authentication failure: wrong key, tampered ciphertext, or a
    // measurement-AAD mismatch (blob sealed for a different enclave).
    CONVOLVE_RECORD_EVENT(kSealReject, ctx_, 1, sealed_blob.size());
  }
  return opened;
}

SecurityMonitor::LocalAttestation SecurityMonitor::local_attest(int target) {
  const Enclave& e = enclave(target);
  if (!e.alive) throw std::runtime_error("local_attest: destroyed");
  LocalAttestation token;
  token.target = target;
  token.target_measurement = e.measurement;
  const Bytes key = crypto::hkdf(boot_.sealing_root, {},
                                 as_bytes("convolve-local-attest-v1"), 32);
  Bytes msg;
  std::uint8_t id_le[4];
  store_le32(id_le, static_cast<std::uint32_t>(target));
  msg.insert(msg.end(), id_le, id_le + 4);
  msg.insert(msg.end(), e.measurement.begin(), e.measurement.end());
  Bytes mac = crypto::hmac_sha512(key, msg);
  mac.resize(32);
  token.mac = std::move(mac);
  return token;
}

bool SecurityMonitor::verify_local_attestation(
    const LocalAttestation& token) const {
  if (token.target_measurement.size() != 64 || token.mac.size() != 32) {
    CONVOLVE_RECORD_EVENT(kMeasurementMismatch, ctx_, 0, token.target);
    return false;
  }
  const Bytes key = crypto::hkdf(boot_.sealing_root, {},
                                 as_bytes("convolve-local-attest-v1"), 32);
  Bytes msg;
  std::uint8_t id_le[4];
  store_le32(id_le, static_cast<std::uint32_t>(token.target));
  msg.insert(msg.end(), id_le, id_le + 4);
  msg.insert(msg.end(), token.target_measurement.begin(),
             token.target_measurement.end());
  Bytes mac = crypto::hmac_sha512(key, msg);
  mac.resize(32);
  const bool ok = ct_equal(mac, token.mac);
  if (!ok) {
    CONVOLVE_RECORD_EVENT(kMeasurementMismatch, ctx_, 1, token.target);
  }
  return ok;
}

VerifierTrustAnchor SecurityMonitor::trust_anchor() const {
  VerifierTrustAnchor anchor;
  anchor.device_ed25519_pk = boot_.device_ed25519_pk;
  anchor.device_mldsa_pk = boot_.device_mldsa_pk;
  return anchor;
}

}  // namespace convolve::tee
