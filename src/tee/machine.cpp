#include "convolve/tee/machine.hpp"

#include <algorithm>
#include <string>

namespace convolve::tee {

namespace {
const char* access_name(AccessType t) {
  switch (t) {
    case AccessType::kRead: return "read";
    case AccessType::kWrite: return "write";
    case AccessType::kExecute: return "execute";
  }
  return "?";
}
}  // namespace

AccessFault::AccessFault(std::uint64_t addr, AccessType type)
    : std::runtime_error("PMP access fault: " + std::string(access_name(type)) +
                         " at 0x" + std::to_string(addr)),
      address(addr),
      access(type) {}

StackOverflow::StackOverflow(std::size_t requested, std::size_t capacity)
    : std::runtime_error("stack overflow: need " + std::to_string(requested) +
                         " bytes, capacity " + std::to_string(capacity)) {}

void SimStack::push(std::size_t bytes) {
  if (used_ + bytes > capacity_) {
    throw StackOverflow(used_ + bytes, capacity_);
  }
  used_ += bytes;
  if (used_ > watermark_) watermark_ = used_;
}

void SimStack::pop(std::size_t bytes) {
  used_ = (bytes > used_) ? 0 : used_ - bytes;
}

Machine::Machine(std::size_t memory_bytes)
    : memory_(memory_bytes, 0),
      page_version_((memory_bytes + kPageBytes - 1) >> kPageShift, 0) {}

#if CONVOLVE_TELEMETRY_ENABLED
namespace {
telemetry::Counter t_pmp_memo_hits{"rv32.pmp_memo.hits"};
telemetry::Counter t_pmp_memo_misses{"rv32.pmp_memo.misses"};
}  // namespace

void Machine::flush_telemetry() const {
  if (memo_hits_ != 0) t_pmp_memo_hits.add(memo_hits_);
  if (memo_misses_ != 0) t_pmp_memo_misses.add(memo_misses_);
  memo_hits_ = 0;
  memo_misses_ = 0;
}
#else
void Machine::flush_telemetry() const {}
#endif

void Machine::bounds_check(std::uint64_t addr, std::size_t len,
                           AccessType type) const {
  if (addr + len > memory_.size() || addr + len < addr) {
    throw AccessFault(addr, type);
  }
}

void Machine::store(std::uint64_t addr, ByteView data, PrivMode mode) {
  bounds_check(addr, data.size(), AccessType::kWrite);
  if (!pmp_.check(addr, data.size(), mode, AccessType::kWrite)) {
    throw AccessFault(addr, AccessType::kWrite);
  }
  std::copy(data.begin(), data.end(),
            memory_.begin() + static_cast<std::ptrdiff_t>(addr));
  if (!data.empty()) touch_pages(addr, data.size());
}

void Machine::fill(std::uint64_t addr, std::size_t len, std::uint8_t value,
                   PrivMode mode) {
  if (len == 0) return;
  bounds_check(addr, len, AccessType::kWrite);
  if (!pmp_.check(addr, len, mode, AccessType::kWrite)) {
    throw AccessFault(addr, AccessType::kWrite);
  }
  std::fill(memory_.begin() + static_cast<std::ptrdiff_t>(addr),
            memory_.begin() + static_cast<std::ptrdiff_t>(addr + len), value);
  touch_pages(addr, len);
}

Bytes Machine::load(std::uint64_t addr, std::size_t len, PrivMode mode) const {
  bounds_check(addr, len, AccessType::kRead);
  if (!pmp_.check(addr, len, mode, AccessType::kRead)) {
    throw AccessFault(addr, AccessType::kRead);
  }
  return Bytes(memory_.begin() + static_cast<std::ptrdiff_t>(addr),
               memory_.begin() + static_cast<std::ptrdiff_t>(addr + len));
}

std::uint8_t Machine::load_byte(std::uint64_t addr, PrivMode mode) const {
  return load(addr, 1, mode)[0];
}

std::uint32_t Machine::fetch32(std::uint64_t addr, PrivMode mode) const {
  bounds_check(addr, 4, AccessType::kExecute);
  if (!pmp_.check(addr, 4, mode, AccessType::kExecute)) {
    throw AccessFault(addr, AccessType::kExecute);
  }
  return static_cast<std::uint32_t>(memory_[addr]) |
         (static_cast<std::uint32_t>(memory_[addr + 1]) << 8) |
         (static_cast<std::uint32_t>(memory_[addr + 2]) << 16) |
         (static_cast<std::uint32_t>(memory_[addr + 3]) << 24);
}

bool Machine::can_execute(std::uint64_t addr, std::size_t len,
                          PrivMode mode) const {
  if (addr + len > memory_.size()) return false;
  return pmp_.check(addr, len, mode, AccessType::kExecute);
}

}  // namespace convolve::tee
