#include "convolve/tee/machine.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace convolve::tee {

namespace {
const char* access_name(AccessType t) {
  switch (t) {
    case AccessType::kRead: return "read";
    case AccessType::kWrite: return "write";
    case AccessType::kExecute: return "execute";
  }
  return "?";
}

std::size_t page_count_of(std::size_t bytes) {
  return (bytes + Machine::kPageBytes - 1) >> Machine::kPageShift;
}
}  // namespace

AccessFault::AccessFault(std::uint64_t addr, AccessType type)
    : std::runtime_error("PMP access fault: " + std::string(access_name(type)) +
                         " at 0x" + std::to_string(addr)),
      address(addr),
      access(type) {}

StackOverflow::StackOverflow(std::size_t requested, std::size_t capacity)
    : std::runtime_error("stack overflow: need " + std::to_string(requested) +
                         " bytes, capacity " + std::to_string(capacity)) {}

void SimStack::push(std::size_t bytes) {
  if (used_ + bytes > capacity_) {
    throw StackOverflow(used_ + bytes, capacity_);
  }
  used_ += bytes;
  if (used_ > watermark_) watermark_ = used_;
}

void SimStack::pop(std::size_t bytes) {
  used_ = (bytes > used_) ? 0 : used_ - bytes;
}

Machine::Machine(std::size_t memory_bytes)
    : own_(new std::uint8_t[memory_bytes]()),
      size_(memory_bytes),
      rpage_(page_count_of(memory_bytes)),
      wpage_(page_count_of(memory_bytes)),
      page_version_(page_count_of(memory_bytes), 0) {
  for (std::size_t p = 0; p < rpage_.size(); ++p) {
    std::uint8_t* q = own_.get() + (p << kPageShift);
    rpage_[p] = q;
    wpage_[p] = q;
  }
}

Machine::Machine(std::shared_ptr<const MachineImage> image)
    : image_(std::move(image)),
      // Uninitialized on purpose: pages are filled from the image as they
      // materialize; unmaterialized bytes are never read through own_.
      own_(new std::uint8_t[image_->bytes.size()]),
      size_(image_->bytes.size()),
      rpage_(page_count_of(image_->bytes.size())),
      wpage_(page_count_of(image_->bytes.size()), nullptr),
      page_version_(image_->page_versions),
      pmp_(image_->pmp) {
  const std::uint8_t* base = image_->bytes.data();
  for (std::size_t p = 0; p < rpage_.size(); ++p) {
    rpage_[p] = base + (p << kPageShift);
  }
}

std::shared_ptr<const MachineImage> Machine::freeze() const {
  auto img = std::make_shared<MachineImage>();
  img->bytes.resize(size_);
  // Page-wise copy through the read views so freezing a fork also works
  // (its unmaterialized pages still live in its parent image).
  for (std::size_t p = 0; p < rpage_.size(); ++p) {
    std::memcpy(img->bytes.data() + (p << kPageShift), rpage_[p],
                page_bytes_of(p));
  }
  img->page_versions = page_version_;
  img->pmp = pmp_;
  return img;
}

std::uint8_t* Machine::materialize_page(std::uint64_t p) {
  std::uint8_t* q = own_.get() + (p << kPageShift);
  std::memcpy(q, rpage_[p], page_bytes_of(p));
  rpage_[p] = q;
  wpage_[p] = q;
  ++cow_materialized_;
  return q;
}

void Machine::materialize_all() {
  for (std::size_t p = 0; p < wpage_.size(); ++p) {
    if (wpage_[p] == nullptr) materialize_page(p);
  }
}

#if CONVOLVE_TELEMETRY_ENABLED
namespace {
telemetry::Counter t_pmp_memo_hits{"rv32.pmp_memo.hits"};
telemetry::Counter t_pmp_memo_misses{"rv32.pmp_memo.misses"};
telemetry::Counter t_cow_materialized{"tee.cow.pages_materialized"};
}  // namespace

void Machine::flush_telemetry() const {
  if (memo_hits_ != 0) t_pmp_memo_hits.add(memo_hits_);
  if (memo_misses_ != 0) t_pmp_memo_misses.add(memo_misses_);
  memo_hits_ = 0;
  memo_misses_ = 0;
  if (cow_materialized_ > cow_flushed_) {
    t_cow_materialized.add(cow_materialized_ - cow_flushed_);
    cow_flushed_ = cow_materialized_;
  }
}
#else
void Machine::flush_telemetry() const {}
#endif

void Machine::bounds_check(std::uint64_t addr, std::size_t len,
                           AccessType type) const {
  if (addr + len > size_ || addr + len < addr) {
    throw AccessFault(addr, type);
  }
}

void Machine::store(std::uint64_t addr, ByteView data, PrivMode mode) {
  bounds_check(addr, data.size(), AccessType::kWrite);
  if (!pmp_.check(addr, data.size(), mode, AccessType::kWrite)) {
    throw AccessFault(addr, AccessType::kWrite);
  }
  std::uint64_t a = addr;
  const std::uint8_t* src = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, kPageBytes - (a & kPageMask)));
    std::memcpy(wptr(a), src, chunk);
    a += chunk;
    src += chunk;
    left -= chunk;
  }
  if (!data.empty()) touch_pages(addr, data.size());
}

void Machine::fill(std::uint64_t addr, std::size_t len, std::uint8_t value,
                   PrivMode mode) {
  if (len == 0) return;
  bounds_check(addr, len, AccessType::kWrite);
  if (!pmp_.check(addr, len, mode, AccessType::kWrite)) {
    throw AccessFault(addr, AccessType::kWrite);
  }
  std::uint64_t a = addr;
  std::size_t left = len;
  while (left > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, kPageBytes - (a & kPageMask)));
    std::memset(wptr(a), value, chunk);
    a += chunk;
    left -= chunk;
  }
  touch_pages(addr, len);
}

Bytes Machine::load(std::uint64_t addr, std::size_t len, PrivMode mode) const {
  bounds_check(addr, len, AccessType::kRead);
  if (!pmp_.check(addr, len, mode, AccessType::kRead)) {
    throw AccessFault(addr, AccessType::kRead);
  }
  Bytes out(len);
  std::uint64_t a = addr;
  std::uint8_t* dst = out.data();
  std::size_t left = len;
  while (left > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, kPageBytes - (a & kPageMask)));
    std::memcpy(dst, rptr(a), chunk);
    a += chunk;
    dst += chunk;
    left -= chunk;
  }
  return out;
}

std::uint8_t Machine::load_byte(std::uint64_t addr, PrivMode mode) const {
  bounds_check(addr, 1, AccessType::kRead);
  if (!pmp_.check(addr, 1, mode, AccessType::kRead)) {
    throw AccessFault(addr, AccessType::kRead);
  }
  return *rptr(addr);
}

std::uint32_t Machine::fetch32(std::uint64_t addr, PrivMode mode) const {
  bounds_check(addr, 4, AccessType::kExecute);
  if (!pmp_.check(addr, 4, mode, AccessType::kExecute)) {
    throw AccessFault(addr, AccessType::kExecute);
  }
  return read_u32_raw(addr);
}

bool Machine::can_execute(std::uint64_t addr, std::size_t len,
                          PrivMode mode) const {
  if (addr + len > size_) return false;
  return pmp_.check(addr, len, mode, AccessType::kExecute);
}

}  // namespace convolve::tee
