#include "convolve/tee/vendor.hpp"

#include "convolve/crypto/hmac.hpp"

namespace convolve::tee {

namespace {

Bytes signing_payload(const DeviceCertificate& cert) {
  Bytes payload;
  std::uint8_t len_le[8];
  store_le64(len_le, cert.device_id.size());
  payload.insert(payload.end(), len_le, len_le + 8);
  payload.insert(payload.end(), cert.device_id.begin(),
                 cert.device_id.end());
  payload.push_back(cert.pq_enabled ? 1 : 0);
  payload.insert(payload.end(), cert.device_ed25519_pk.begin(),
                 cert.device_ed25519_pk.end());
  payload.insert(payload.end(), cert.device_mldsa_pk.begin(),
                 cert.device_mldsa_pk.end());
  return payload;
}

}  // namespace

Bytes DeviceCertificate::serialize() const {
  Bytes out = signing_payload(*this);
  out.insert(out.end(), vendor_sig_ed25519.begin(),
             vendor_sig_ed25519.end());
  out.insert(out.end(), vendor_sig_mldsa.begin(), vendor_sig_mldsa.end());
  return out;
}

VendorCa::VendorCa(ByteView seed32, bool pq_enabled) : pq_(pq_enabled) {
  const Bytes ed_seed = crypto::hkdf(as_bytes("convolve-vendor-ca-v1"),
                                     seed32, as_bytes("ed25519"), 32);
  ed25519_ = crypto::ed25519_keypair(ed_seed);
  if (pq_) {
    const Bytes mldsa_seed = crypto::hkdf(as_bytes("convolve-vendor-ca-v1"),
                                          seed32, as_bytes("mldsa"), 32);
    mldsa_ = crypto::dilithium::keygen(mldsa_seed);
  }
}

std::array<std::uint8_t, 32> VendorCa::root_ed25519_pk() const {
  return ed25519_.public_key;
}

DeviceCertificate VendorCa::issue(ByteView device_id,
                                  const BootRecord& boot) const {
  DeviceCertificate cert;
  cert.device_id.assign(device_id.begin(), device_id.end());
  cert.pq_enabled = pq_ && boot.pq_enabled;
  cert.device_ed25519_pk = boot.device_ed25519_pk;
  cert.device_mldsa_pk = boot.device_mldsa_pk;

  const Bytes payload = signing_payload(cert);
  cert.vendor_sig_ed25519 = crypto::ed25519_sign(ed25519_, payload);
  if (cert.pq_enabled) {
    cert.vendor_sig_mldsa = crypto::dilithium::sign(mldsa_.sk, payload);
  }
  return cert;
}

std::optional<VerifierTrustAnchor> verify_certificate(
    const DeviceCertificate& cert,
    const std::array<std::uint8_t, 32>& vendor_ed25519_pk,
    const Bytes& vendor_mldsa_pk) {
  const Bytes payload = signing_payload(cert);
  if (!crypto::ed25519_verify({vendor_ed25519_pk.data(), 32}, payload,
                              {cert.vendor_sig_ed25519.data(), 64})) {
    return std::nullopt;
  }
  if (cert.pq_enabled) {
    if (vendor_mldsa_pk.empty()) return std::nullopt;
    if (!crypto::dilithium::verify(vendor_mldsa_pk, payload,
                                   cert.vendor_sig_mldsa)) {
      return std::nullopt;
    }
  }
  VerifierTrustAnchor anchor;
  anchor.device_ed25519_pk = cert.device_ed25519_pk;
  anchor.device_mldsa_pk = cert.device_mldsa_pk;
  return anchor;
}

}  // namespace convolve::tee
