#include "convolve/tee/attestation.hpp"

#include <cstring>

#include "convolve/crypto/dilithium.hpp"
#include "convolve/crypto/ed25519.hpp"

namespace convolve::tee {

namespace {

Bytes sm_signing_payload(const AttestationReport& r) {
  Bytes payload = r.sm_measurement;
  payload.insert(payload.end(), r.sm_ed25519_pk.begin(),
                 r.sm_ed25519_pk.end());
  if (r.pq_enabled) {
    payload.insert(payload.end(), r.sm_mldsa_pk.begin(), r.sm_mldsa_pk.end());
  }
  return payload;
}

Bytes enclave_signing_payload(const AttestationReport& r) {
  Bytes payload = r.enclave_measurement;
  std::uint8_t len_le[8];
  store_le64(len_le, r.enclave_data.size());
  payload.insert(payload.end(), len_le, len_le + 8);
  Bytes padded = r.enclave_data;
  padded.resize(kEnclaveDataMax, 0);
  payload.insert(payload.end(), padded.begin(), padded.end());
  return payload;
}

}  // namespace

Bytes AttestationReport::serialize() const {
  Bytes out;
  out.reserve(pq_enabled ? kPqReportSize : kClassicalReportSize);
  out.insert(out.end(), device_ed25519_pk.begin(), device_ed25519_pk.end());
  out.insert(out.end(), sm_measurement.begin(), sm_measurement.end());
  out.insert(out.end(), sm_ed25519_pk.begin(), sm_ed25519_pk.end());
  out.insert(out.end(), device_sig_ed25519.begin(), device_sig_ed25519.end());
  out.insert(out.end(), enclave_measurement.begin(),
             enclave_measurement.end());
  std::uint8_t len_le[8];
  store_le64(len_le, enclave_data.size());
  out.insert(out.end(), len_le, len_le + 8);
  Bytes padded = enclave_data;
  padded.resize(kEnclaveDataMax, 0);
  out.insert(out.end(), padded.begin(), padded.end());
  out.insert(out.end(), sm_sig_ed25519.begin(), sm_sig_ed25519.end());
  if (pq_enabled) {
    out.insert(out.end(), sm_mldsa_pk.begin(), sm_mldsa_pk.end());
    out.insert(out.end(), device_sig_mldsa.begin(), device_sig_mldsa.end());
    out.insert(out.end(), sm_sig_mldsa.begin(), sm_sig_mldsa.end());
  }
  return out;
}

std::optional<AttestationReport> AttestationReport::deserialize(
    ByteView data) {
  if (data.size() != kClassicalReportSize && data.size() != kPqReportSize) {
    return std::nullopt;
  }
  AttestationReport r;
  r.pq_enabled = (data.size() == kPqReportSize);
  const std::uint8_t* p = data.data();
  auto take = [&p](std::size_t n) {
    const std::uint8_t* start = p;
    p += n;
    return Bytes(start, start + n);
  };
  std::memcpy(r.device_ed25519_pk.data(), p, 32);
  p += 32;
  r.sm_measurement = take(64);
  std::memcpy(r.sm_ed25519_pk.data(), p, 32);
  p += 32;
  std::memcpy(r.device_sig_ed25519.data(), p, 64);
  p += 64;
  r.enclave_measurement = take(64);
  std::uint64_t data_len = load_le64(p);
  p += 8;
  if (data_len > kEnclaveDataMax) return std::nullopt;
  const Bytes padded = take(kEnclaveDataMax);
  r.enclave_data.assign(padded.begin(),
                        padded.begin() + static_cast<std::ptrdiff_t>(data_len));
  // Padding must be zero.
  for (std::size_t i = data_len; i < kEnclaveDataMax; ++i) {
    if (padded[i] != 0) return std::nullopt;
  }
  std::memcpy(r.sm_sig_ed25519.data(), p, 64);
  p += 64;
  if (r.pq_enabled) {
    r.sm_mldsa_pk = take(1312);
    r.device_sig_mldsa = take(2420);
    r.sm_sig_mldsa = take(2420);
  }
  return r;
}

bool verify_report(const AttestationReport& report,
                   const VerifierTrustAnchor& anchor,
                   const Bytes* expected_sm_measurement,
                   const Bytes* expected_enclave_measurement) {
  if (report.sm_measurement.size() != 64 ||
      report.enclave_measurement.size() != 64 ||
      report.enclave_data.size() > kEnclaveDataMax) {
    return false;
  }
  // The report must carry the device identity the verifier expects.
  if (!ct_equal({report.device_ed25519_pk.data(), 32},
                {anchor.device_ed25519_pk.data(), 32})) {
    return false;
  }
  if (expected_sm_measurement &&
      !ct_equal(report.sm_measurement, *expected_sm_measurement)) {
    return false;
  }
  if (expected_enclave_measurement &&
      !ct_equal(report.enclave_measurement, *expected_enclave_measurement)) {
    return false;
  }

  const Bytes sm_payload = sm_signing_payload(report);
  if (!crypto::ed25519_verify({anchor.device_ed25519_pk.data(), 32},
                              sm_payload,
                              {report.device_sig_ed25519.data(), 64})) {
    return false;
  }
  const Bytes enclave_payload = enclave_signing_payload(report);
  if (!crypto::ed25519_verify({report.sm_ed25519_pk.data(), 32},
                              enclave_payload,
                              {report.sm_sig_ed25519.data(), 64})) {
    return false;
  }
  if (report.pq_enabled) {
    if (anchor.device_mldsa_pk.empty()) return false;
    if (!crypto::dilithium::verify(anchor.device_mldsa_pk, sm_payload,
                                   report.device_sig_mldsa)) {
      return false;
    }
    if (!crypto::dilithium::verify(report.sm_mldsa_pk, enclave_payload,
                                   report.sm_sig_mldsa)) {
      return false;
    }
  }
  return true;
}

}  // namespace convolve::tee
