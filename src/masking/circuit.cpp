#include "convolve/masking/circuit.hpp"

#include <stdexcept>

namespace convolve::masking {

int Circuit::check(int g) const {
  if (g < 0 || g >= static_cast<int>(gates_.size())) {
    throw std::out_of_range("Circuit: gate index out of range");
  }
  return g;
}

int Circuit::add_input() {
  gates_.push_back({GateKind::kInput, -1, -1, num_inputs_});
  ++num_inputs_;
  return static_cast<int>(gates_.size()) - 1;
}

int Circuit::add_random() {
  gates_.push_back({GateKind::kRandom, -1, -1, num_randoms_});
  ++num_randoms_;
  return static_cast<int>(gates_.size()) - 1;
}

int Circuit::add_const(int value) {
  gates_.push_back({GateKind::kConst, -1, -1, value & 1});
  return static_cast<int>(gates_.size()) - 1;
}

int Circuit::add_and(int a, int b) {
  gates_.push_back({GateKind::kAnd, check(a), check(b), 0});
  return static_cast<int>(gates_.size()) - 1;
}

int Circuit::add_xor(int a, int b) {
  gates_.push_back({GateKind::kXor, check(a), check(b), 0});
  return static_cast<int>(gates_.size()) - 1;
}

int Circuit::add_not(int a) {
  gates_.push_back({GateKind::kNot, check(a), -1, 0});
  return static_cast<int>(gates_.size()) - 1;
}

int Circuit::add_reg(int a) {
  gates_.push_back({GateKind::kReg, check(a), -1, 0});
  return static_cast<int>(gates_.size()) - 1;
}

void Circuit::mark_output(int gate) { outputs_.push_back(check(gate)); }

int Circuit::and_count() const {
  int n = 0;
  for (const auto& g : gates_) n += (g.kind == GateKind::kAnd);
  return n;
}

int Circuit::xor_count() const {
  int n = 0;
  for (const auto& g : gates_) n += (g.kind == GateKind::kXor);
  return n;
}

int Circuit::not_count() const {
  int n = 0;
  for (const auto& g : gates_) n += (g.kind == GateKind::kNot);
  return n;
}

int Circuit::reg_count() const {
  int n = 0;
  for (const auto& g : gates_) n += (g.kind == GateKind::kReg);
  return n;
}

std::vector<std::uint8_t> Circuit::evaluate_all(
    const std::vector<std::uint8_t>& inputs,
    const std::vector<std::uint8_t>& randoms) const {
  std::vector<std::uint8_t> wire(gates_.size(), 0);
  evaluate_all_into(inputs, randoms, wire);
  return wire;
}

void Circuit::evaluate_all_into(std::span<const std::uint8_t> inputs,
                                std::span<const std::uint8_t> randoms,
                                std::span<std::uint8_t> wire) const {
  evaluate_all_lanes_into<std::uint8_t>(inputs, randoms, wire);
}

template <typename Word>
void Circuit::evaluate_all_lanes_into(std::span<const Word> inputs,
                                      std::span<const Word> randoms,
                                      std::span<Word> wire) const {
  using Traits = LaneTraits<Word>;
  if (static_cast<int>(inputs.size()) != num_inputs_) {
    throw std::invalid_argument("Circuit::evaluate: wrong input count");
  }
  if (static_cast<int>(randoms.size()) != num_randoms_) {
    throw std::invalid_argument("Circuit::evaluate: wrong randomness count");
  }
  if (wire.size() != gates_.size()) {
    throw std::invalid_argument("Circuit::evaluate: wrong wire buffer size");
  }
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::kInput:
        wire[i] = Traits::normalize(inputs[static_cast<std::size_t>(g.aux)]);
        break;
      case GateKind::kRandom:
        wire[i] = Traits::normalize(randoms[static_cast<std::size_t>(g.aux)]);
        break;
      case GateKind::kConst:
        wire[i] = Traits::broadcast(g.aux);
        break;
      case GateKind::kAnd:
        wire[i] = wire[static_cast<std::size_t>(g.a)] &
                  wire[static_cast<std::size_t>(g.b)];
        break;
      case GateKind::kXor:
        wire[i] = wire[static_cast<std::size_t>(g.a)] ^
                  wire[static_cast<std::size_t>(g.b)];
        break;
      case GateKind::kNot:
        wire[i] = wire[static_cast<std::size_t>(g.a)] ^ Traits::ones();
        break;
      case GateKind::kReg:
        wire[i] = wire[static_cast<std::size_t>(g.a)];
        break;
    }
  }
}

template void Circuit::evaluate_all_lanes_into<std::uint8_t>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    std::span<std::uint8_t>) const;
template void Circuit::evaluate_all_lanes_into<std::uint64_t>(
    std::span<const std::uint64_t>, std::span<const std::uint64_t>,
    std::span<std::uint64_t>) const;

std::vector<std::uint8_t> Circuit::evaluate(
    const std::vector<std::uint8_t>& inputs,
    const std::vector<std::uint8_t>& randoms) const {
  const auto wire = evaluate_all(inputs, randoms);
  std::vector<std::uint8_t> out;
  out.reserve(outputs_.size());
  for (int o : outputs_) out.push_back(wire[static_cast<std::size_t>(o)]);
  return out;
}

MaskedCircuit mask_circuit(const Circuit& plain, unsigned order) {
  const unsigned n_shares = order + 1;
  MaskedCircuit result;
  result.order = order;

  Circuit& mc = result.circuit;
  // share_of[g][s]: masked-circuit gate index carrying share s of plain
  // wire g.
  std::vector<std::vector<int>> share_of(plain.num_gates());

  for (std::size_t gi = 0; gi < plain.num_gates(); ++gi) {
    const Gate& g = plain.gates()[gi];
    auto& sh = share_of[gi];
    sh.resize(n_shares);
    switch (g.kind) {
      case GateKind::kInput: {
        result.input_share_base.push_back(mc.num_inputs());
        for (unsigned s = 0; s < n_shares; ++s) sh[s] = mc.add_input();
        break;
      }
      case GateKind::kRandom: {
        // A random wire is already uniform; share 0 carries it.
        sh[0] = mc.add_random();
        for (unsigned s = 1; s < n_shares; ++s) sh[s] = mc.add_const(0);
        break;
      }
      case GateKind::kConst: {
        sh[0] = mc.add_const(g.aux);
        for (unsigned s = 1; s < n_shares; ++s) sh[s] = mc.add_const(0);
        break;
      }
      case GateKind::kXor: {
        const auto& a = share_of[static_cast<std::size_t>(g.a)];
        const auto& b = share_of[static_cast<std::size_t>(g.b)];
        for (unsigned s = 0; s < n_shares; ++s) {
          sh[s] = mc.add_xor(a[s], b[s]);
        }
        break;
      }
      case GateKind::kNot: {
        const auto& a = share_of[static_cast<std::size_t>(g.a)];
        sh[0] = mc.add_not(a[0]);
        for (unsigned s = 1; s < n_shares; ++s) sh[s] = a[s];
        break;
      }
      case GateKind::kReg: {
        const auto& a = share_of[static_cast<std::size_t>(g.a)];
        for (unsigned s = 0; s < n_shares; ++s) sh[s] = mc.add_reg(a[s]);
        break;
      }
      case GateKind::kAnd: {
        // DOM-independent gadget.
        const auto& a = share_of[static_cast<std::size_t>(g.a)];
        const auto& b = share_of[static_cast<std::size_t>(g.b)];
        std::vector<int> acc(n_shares);
        for (unsigned i = 0; i < n_shares; ++i) {
          acc[i] = mc.add_and(a[i], b[i]);
        }
        for (unsigned i = 0; i < n_shares; ++i) {
          for (unsigned j = i + 1; j < n_shares; ++j) {
            const int fresh = mc.add_random();
            const int pij = mc.add_and(a[i], b[j]);
            const int pji = mc.add_and(a[j], b[i]);
            // Blind each cross term before folding it into the domain
            // accumulator; the explicit register boundary is what makes the
            // gadget robust in the glitch-extended probing model.
            acc[i] = mc.add_xor(acc[i], mc.add_reg(mc.add_xor(pij, fresh)));
            acc[j] = mc.add_xor(acc[j], mc.add_reg(mc.add_xor(pji, fresh)));
          }
        }
        sh = acc;
        break;
      }
    }
  }

  for (int o : plain.outputs()) {
    for (unsigned s = 0; s < n_shares; ++s) {
      mc.mark_output(share_of[static_cast<std::size_t>(o)][s]);
    }
  }
  return result;
}

Circuit single_and_circuit() {
  Circuit c;
  const int a = c.add_input();
  const int b = c.add_input();
  c.mark_output(c.add_and(a, b));
  return c;
}

Circuit full_adder_circuit() {
  Circuit c;
  const int a = c.add_input();
  const int b = c.add_input();
  const int cin = c.add_input();
  const int axb = c.add_xor(a, b);
  const int sum = c.add_xor(axb, cin);
  const int ab = c.add_and(a, b);
  const int axb_cin = c.add_and(axb, cin);
  const int cout = c.add_xor(ab, axb_cin);
  c.mark_output(sum);
  c.mark_output(cout);
  return c;
}

Circuit ripple_adder_circuit(int width) {
  if (width <= 0) throw std::invalid_argument("ripple_adder: width <= 0");
  Circuit c;
  std::vector<int> a(static_cast<std::size_t>(width));
  std::vector<int> b(static_cast<std::size_t>(width));
  for (auto& g : a) g = c.add_input();
  for (auto& g : b) g = c.add_input();
  int carry = c.add_const(0);
  for (int i = 0; i < width; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const int axb = c.add_xor(a[idx], b[idx]);
    const int sum = c.add_xor(axb, carry);
    const int ab = c.add_and(a[idx], b[idx]);
    const int axb_c = c.add_and(axb, carry);
    carry = c.add_xor(ab, axb_c);
    c.mark_output(sum);
  }
  c.mark_output(carry);
  return c;
}

MaskedCircuit hpc2_and_gadget(unsigned order) {
  const unsigned n = order + 1;
  MaskedCircuit result;
  result.order = order;
  Circuit& c = result.circuit;

  std::vector<int> a(n), b(n);
  result.input_share_base.push_back(0);
  for (auto& g : a) g = c.add_input();
  result.input_share_base.push_back(static_cast<int>(n));
  for (auto& g : b) g = c.add_input();

  // One random per unordered pair, shared between both directions.
  std::vector<std::vector<int>> r(n, std::vector<int>(n, -1));
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) r[i][j] = r[j][i] = c.add_random();
  }

  for (unsigned i = 0; i < n; ++i) {
    int acc = c.add_reg(c.add_and(a[i], b[i]));
    const int not_ai = c.add_not(a[i]);
    for (unsigned j = 0; j < n; ++j) {
      if (j == i) continue;
      const int u = c.add_reg(c.add_and(not_ai, r[i][j]));
      const int v =
          c.add_reg(c.add_and(a[i], c.add_reg(c.add_xor(b[j], r[i][j]))));
      acc = c.add_xor(acc, c.add_xor(u, v));
    }
    c.mark_output(acc);
  }
  return result;
}

Circuit toy_sbox_circuit() {
  // A small 4-bit nonlinear permutation-like layer with AND depth 3.
  Circuit c;
  const int x0 = c.add_input();
  const int x1 = c.add_input();
  const int x2 = c.add_input();
  const int x3 = c.add_input();
  const int t0 = c.add_and(x0, x1);
  const int t1 = c.add_xor(t0, x2);
  const int t2 = c.add_and(t1, x3);
  const int t3 = c.add_xor(t2, x0);
  const int t4 = c.add_and(t3, t1);
  const int t5 = c.add_xor(t4, x1);
  c.mark_output(t1);
  c.mark_output(t3);
  c.mark_output(t5);
  c.mark_output(c.add_not(t2));
  return c;
}

}  // namespace convolve::masking
