#include "convolve/masking/probing.hpp"

#include <map>
#include <stdexcept>

namespace convolve::masking {

namespace {

// Distribution over probe-value tuples, keyed by the packed tuple bits.
using Distribution = ProbeDistribution;

int checked_free_bits(const Circuit& c, int n_plain, unsigned n_shares) {
  // Free bits: for every plain input, n_shares-1 mask bits; plus circuit
  // randomness.
  const int mask_bits = n_plain * static_cast<int>(n_shares - 1);
  const int free_bits = mask_bits + c.num_randoms();
  if (free_bits > 26) {
    throw std::invalid_argument(
        "probing check: circuit too large for exhaustive enumeration");
  }
  return free_bits;
}

Distribution probe_distribution_scalar(
    const Circuit& c, const std::vector<std::uint8_t>& plain_secret,
    const std::vector<int>& input_share_base, unsigned n_shares,
    const std::vector<int>& probes) {
  const int n_random = c.num_randoms();
  const int n_plain = static_cast<int>(plain_secret.size());
  const int free_bits = checked_free_bits(c, n_plain, n_shares);

  Distribution dist;
  std::vector<std::uint8_t> inputs(
      static_cast<std::size_t>(c.num_inputs()), 0);
  std::vector<std::uint8_t> randoms(static_cast<std::size_t>(n_random), 0);

  for (std::uint64_t assignment = 0; assignment < (1ull << free_bits);
       ++assignment) {
    std::uint64_t bits = assignment;
    // Build input shares: shares 1..d are free mask bits; share 0 makes the
    // XOR equal the secret.
    for (int i = 0; i < n_plain; ++i) {
      std::uint8_t acc = plain_secret[static_cast<std::size_t>(i)] & 1;
      const int base = input_share_base[static_cast<std::size_t>(i)];
      for (unsigned s = 1; s < n_shares; ++s) {
        const std::uint8_t m = static_cast<std::uint8_t>(bits & 1);
        bits >>= 1;
        inputs[static_cast<std::size_t>(base) + s] = m;
        acc ^= m;
      }
      inputs[static_cast<std::size_t>(base)] = acc;
    }
    for (int r = 0; r < n_random; ++r) {
      randoms[static_cast<std::size_t>(r)] =
          static_cast<std::uint8_t>(bits & 1);
      bits >>= 1;
    }

    const auto wires = c.evaluate_all(inputs, randoms);
    std::uint64_t key = 0;
    for (std::size_t p = 0; p < probes.size(); ++p) {
      key |= static_cast<std::uint64_t>(
                 wires[static_cast<std::size_t>(probes[p])])
             << p;
    }
    ++dist[key];
  }
  return dist;
}

// Bit plane of free bit f within a 64-assignment block: assignment
// block*64+j puts its low 6 free bits in the lane index j, so the first
// six free bits are fixed lane patterns (bit f of j across j = 0..63) and
// every higher free bit is a block-constant broadcast.
constexpr std::uint64_t kLanePattern[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

// Bitsliced enumeration: one gate pass discharges 64 probe assignments.
// Produces the identical Distribution as probe_distribution_scalar (the
// multiset of probed tuples does not depend on enumeration order); the
// scalar version stays as the differential oracle.
Distribution probe_distribution(const Circuit& c,
                                const std::vector<std::uint8_t>& plain_secret,
                                const std::vector<int>& input_share_base,
                                unsigned n_shares,
                                const std::vector<int>& probes) {
  const int n_random = c.num_randoms();
  const int n_plain = static_cast<int>(plain_secret.size());
  const int free_bits = checked_free_bits(c, n_plain, n_shares);

  const std::uint64_t total = 1ull << free_bits;
  const std::uint64_t n_blocks = (total + 63) / 64;
  const std::uint64_t active = total < 64 ? total : 64;

  Distribution dist;
  std::vector<std::uint64_t> inputs(
      static_cast<std::size_t>(c.num_inputs()), 0);
  std::vector<std::uint64_t> randoms(static_cast<std::size_t>(n_random), 0);
  std::vector<std::uint64_t> wire(c.num_gates(), 0);

  for (std::uint64_t block = 0; block < n_blocks; ++block) {
    int f = 0;
    const auto free_word = [&]() -> std::uint64_t {
      const int bit = f++;
      if (bit < 6) return kLanePattern[bit];
      return ((block >> (bit - 6)) & 1ull) != 0 ? ~0ull : 0ull;
    };
    // Same share construction as the scalar oracle, on bit planes.
    for (int i = 0; i < n_plain; ++i) {
      std::uint64_t acc =
          (plain_secret[static_cast<std::size_t>(i)] & 1) != 0 ? ~0ull : 0ull;
      const int base = input_share_base[static_cast<std::size_t>(i)];
      for (unsigned s = 1; s < n_shares; ++s) {
        const std::uint64_t m = free_word();
        inputs[static_cast<std::size_t>(base) + s] = m;
        acc ^= m;
      }
      inputs[static_cast<std::size_t>(base)] = acc;
    }
    for (int r = 0; r < n_random; ++r) {
      randoms[static_cast<std::size_t>(r)] = free_word();
    }

    c.evaluate_all_lanes_into<std::uint64_t>(inputs, randoms, wire);
    for (std::uint64_t j = 0; j < active; ++j) {
      std::uint64_t key = 0;
      for (std::size_t p = 0; p < probes.size(); ++p) {
        key |= ((wire[static_cast<std::size_t>(probes[p])] >> j) & 1ull) << p;
      }
      ++dist[key];
    }
  }
  return dist;
}

// Enumerate all probe sets of size exactly `k` from `universe` and invoke fn.
template <typename Fn>
bool for_each_combination(int universe, int k, Fn&& fn) {
  std::vector<int> idx(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) idx[static_cast<std::size_t>(i)] = i;
  if (k > universe) return true;
  while (true) {
    if (!fn(idx)) return false;
    int pos = k - 1;
    while (pos >= 0 &&
           idx[static_cast<std::size_t>(pos)] == universe - k + pos) {
      --pos;
    }
    if (pos < 0) return true;
    ++idx[static_cast<std::size_t>(pos)];
    for (int j = pos + 1; j < k; ++j) {
      idx[static_cast<std::size_t>(j)] =
          idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace

ProbingReport check_probing_security(const MaskedCircuit& masked,
                                     int plain_inputs, unsigned probe_order) {
  const Circuit& c = masked.circuit;
  const unsigned n_shares = masked.order + 1;
  const int n_gates = static_cast<int>(c.num_gates());

  ProbingReport report;

  // All secret assignments for the plain inputs.
  std::vector<std::vector<std::uint8_t>> secrets;
  for (std::uint64_t s = 0; s < (1ull << plain_inputs); ++s) {
    std::vector<std::uint8_t> v(static_cast<std::size_t>(plain_inputs));
    for (int i = 0; i < plain_inputs; ++i) {
      v[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((s >> i) & 1);
    }
    secrets.push_back(std::move(v));
  }

  for (unsigned k = 1; k <= probe_order; ++k) {
    const bool ok = for_each_combination(
        n_gates, static_cast<int>(k), [&](const std::vector<int>& probes) {
          ++report.probe_sets_checked;
          std::optional<Distribution> reference;
          std::size_t ref_idx = 0;
          for (std::size_t si = 0; si < secrets.size(); ++si) {
            Distribution d = probe_distribution(
                c, secrets[si], masked.input_share_base, n_shares, probes);
            if (!reference) {
              reference = std::move(d);
              ref_idx = si;
            } else if (d != *reference) {
              report.secure = false;
              report.probes = probes;
              report.secret_a = secrets[ref_idx];
              report.secret_b = secrets[si];
              report.witness_dist_a = *reference;
              report.witness_dist_b = std::move(d);
              return false;
            }
          }
          return true;
        });
    if (!ok) break;
  }
  return report;
}

ProbeDistribution probe_value_distribution(
    const MaskedCircuit& masked, const std::vector<std::uint8_t>& plain_secret,
    const std::vector<int>& probes) {
  return probe_distribution(masked.circuit, plain_secret,
                            masked.input_share_base, masked.order + 1, probes);
}

ProbeDistribution probe_value_distribution_scalar(
    const MaskedCircuit& masked, const std::vector<std::uint8_t>& plain_secret,
    const std::vector<int>& probes) {
  return probe_distribution_scalar(masked.circuit, plain_secret,
                                   masked.input_share_base, masked.order + 1,
                                   probes);
}

bool replay_counterexample(const MaskedCircuit& masked,
                           const ProbingReport& report) {
  if (report.secure || report.probes.empty()) return false;
  const Distribution da =
      probe_value_distribution(masked, report.secret_a, report.probes);
  const Distribution db =
      probe_value_distribution(masked, report.secret_b, report.probes);
  return da != db;
}

}  // namespace convolve::masking
