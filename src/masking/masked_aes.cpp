#include "convolve/masking/masked_aes.hpp"

#include <stdexcept>

namespace convolve::masking {

namespace {

constexpr std::uint8_t kRcon[15] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c,
                                    0xd8, 0xab, 0x4d};

// Multiplication by the public constant 2 (xtime) is GF(2)-linear, so it
// applies share-wise.
MaskedWord xtime(const MaskedWord& a) {
  std::vector<std::uint64_t> shares = a.shares();
  for (auto& s : shares) {
    const std::uint8_t byte = static_cast<std::uint8_t>(s);
    s = static_cast<std::uint8_t>((byte << 1) ^ ((byte & 0x80) ? 0x1b : 0));
  }
  return MaskedWord::from_shares(std::move(shares), 8);
}

}  // namespace

MaskedAes::MaskedAes(KeySize size, ByteView key, unsigned order,
                     RandomnessSource& rnd)
    : rounds_(size == KeySize::k128 ? 10 : 14), order_(order) {
  const std::size_t nk = (size == KeySize::k128) ? 4 : 8;
  if (key.size() != nk * 4) {
    throw std::invalid_argument("MaskedAes: key length mismatch");
  }
  const std::size_t total_words = 4u * static_cast<std::size_t>(rounds_ + 1);

  // w[i] = 4 masked bytes per word.
  std::vector<std::array<MaskedWord, 4>> w(total_words);
  for (std::size_t i = 0; i < nk; ++i) {
    for (int b = 0; b < 4; ++b) {
      w[i][static_cast<std::size_t>(b)] = MaskedWord::encode(
          key[4 * i + static_cast<std::size_t>(b)], order, 8, rnd);
    }
  }
  for (std::size_t i = nk; i < total_words; ++i) {
    std::array<MaskedWord, 4> temp = w[i - 1];
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon, all on shares.
      std::array<MaskedWord, 4> rotated = {temp[1], temp[2], temp[3],
                                           temp[0]};
      for (auto& byte : rotated) byte = masked_aes_sbox(byte, rnd);
      rotated[0] = rotated[0].xor_const(kRcon[i / nk]);
      temp = rotated;
    } else if (nk > 6 && i % nk == 4) {
      for (auto& byte : temp) byte = masked_aes_sbox(byte, rnd);
    }
    for (int b = 0; b < 4; ++b) {
      w[i][static_cast<std::size_t>(b)] =
          w[i - nk][static_cast<std::size_t>(b)] ^
          temp[static_cast<std::size_t>(b)];
    }
  }
  round_keys_.reserve(total_words * 4);
  for (const auto& word : w) {
    for (const auto& byte : word) round_keys_.push_back(byte);
  }
}

void MaskedAes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16],
                              RandomnessSource& rnd) const {
  // State as 16 masked bytes, column-major like the plain implementation.
  std::vector<MaskedWord> s;
  s.reserve(16);
  for (int i = 0; i < 16; ++i) {
    s.push_back(MaskedWord::encode(in[i], order_, 8, rnd));
  }
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) {
      s[static_cast<std::size_t>(i)] =
          s[static_cast<std::size_t>(i)] ^
          round_keys_[static_cast<std::size_t>(16 * round + i)];
    }
  };
  auto sub_bytes = [&] {
    for (auto& byte : s) byte = masked_aes_sbox(byte, rnd);
  };
  auto shift_rows = [&] {
    std::vector<MaskedWord> t(16, MaskedWord::zero(order_, 8));
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[static_cast<std::size_t>(4 * c + r)] =
            s[static_cast<std::size_t>(4 * ((c + r) % 4) + r)];
      }
    }
    s = std::move(t);
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      MaskedWord* col = &s[static_cast<std::size_t>(4 * c)];
      const MaskedWord a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      // 3x = 2x ^ x; all linear in the shares.
      col[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
      col[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
      col[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
      col[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
    }
  };

  add_round_key(0);
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(rounds_);

  for (int i = 0; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>(s[static_cast<std::size_t>(i)].decode());
  }
}

std::uint64_t MaskedAes::block_random_bits(KeySize size, unsigned order) {
  const int rounds = (size == KeySize::k128) ? 10 : 14;
  // 16 state encodings + 16 S-boxes per round (every round incl. final).
  const std::uint64_t encode_bits = 16ull * order * 8;
  const std::uint64_t sbox_bits =
      16ull * static_cast<std::uint64_t>(rounds) *
      masked_sbox_random_bits(order);
  return encode_bits + sbox_bits;
}

}  // namespace convolve::masking
