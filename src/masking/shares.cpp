#include "convolve/masking/shares.hpp"

#include <stdexcept>

namespace convolve::masking {

std::uint64_t RandomnessSource::draw(unsigned width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("RandomnessSource::draw: bad width");
  }
  bits_drawn_ += width;
  const std::uint64_t v = rng_.next_u64();
  return (width >= 64) ? v : (v & ((1ull << width) - 1));
}

MaskedWord MaskedWord::encode(std::uint64_t value, unsigned order,
                              unsigned width, RandomnessSource& rnd) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("MaskedWord::encode: bad width");
  }
  MaskedWord w;
  w.width_ = width;
  w.shares_.resize(order + 1);
  std::uint64_t acc = value & w.mask();
  for (unsigned i = 1; i <= order; ++i) {
    w.shares_[i] = rnd.draw(width);
    acc ^= w.shares_[i];
  }
  w.shares_[0] = acc;
  return w;
}

std::uint64_t MaskedWord::decode() const {
  std::uint64_t v = 0;
  for (auto s : shares_) v ^= s;
  return v & mask();
}

MaskedWord operator^(const MaskedWord& a, const MaskedWord& b) {
  if (a.shares_.size() != b.shares_.size() || a.width_ != b.width_) {
    throw std::invalid_argument("MaskedWord::xor: incompatible operands");
  }
  MaskedWord r = a;
  for (std::size_t i = 0; i < r.shares_.size(); ++i) r.shares_[i] ^= b.shares_[i];
  return r;
}

MaskedWord MaskedWord::operator~() const {
  MaskedWord r = *this;
  r.shares_[0] = (~r.shares_[0]) & mask();
  return r;
}

MaskedWord MaskedWord::rotl(unsigned n) const {
  MaskedWord r = *this;
  const unsigned w = width_;
  n %= w;
  for (auto& s : r.shares_) {
    s = ((s << n) | (s >> (w - n))) & mask();
  }
  return r;
}

MaskedWord MaskedWord::zero(unsigned order, unsigned width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("MaskedWord::zero: bad width");
  }
  MaskedWord w;
  w.width_ = width;
  w.shares_.assign(order + 1, 0);
  return w;
}

MaskedWord MaskedWord::from_shares(std::vector<std::uint64_t> shares,
                                   unsigned width) {
  if (width == 0 || width > 64 || shares.empty()) {
    throw std::invalid_argument("MaskedWord::from_shares: bad arguments");
  }
  MaskedWord w;
  w.width_ = width;
  w.shares_ = std::move(shares);
  for (auto& s : w.shares_) s &= w.mask();
  return w;
}

MaskedWord MaskedWord::and_mask(std::uint64_t m) const {
  MaskedWord r = *this;
  for (auto& s : r.shares_) s &= m & mask();
  return r;
}

MaskedWord MaskedWord::xor_const(std::uint64_t value) const {
  MaskedWord r = *this;
  r.shares_[0] ^= value & mask();
  return r;
}

MaskedWord MaskedWord::shifted_left(unsigned n, unsigned new_width) const {
  if (new_width == 0 || new_width > 64) {
    throw std::invalid_argument("MaskedWord::shifted_left: bad width");
  }
  MaskedWord r = *this;
  r.width_ = new_width;
  const std::uint64_t m =
      (new_width >= 64) ? ~0ull : ((1ull << new_width) - 1);
  for (auto& s : r.shares_) s = (s << n) & m;
  return r;
}

MaskedWord MaskedWord::truncated(unsigned new_width) const {
  if (new_width == 0 || new_width > width_) {
    throw std::invalid_argument("MaskedWord::truncated: bad width");
  }
  MaskedWord r = *this;
  r.width_ = new_width;
  for (auto& s : r.shares_) s &= (new_width >= 64) ? ~0ull : ((1ull << new_width) - 1);
  return r;
}

MaskedWord MaskedWord::replicate_bit(unsigned bit, unsigned out_width) const {
  if (out_width == 0 || out_width > 64) {
    throw std::invalid_argument("MaskedWord::replicate_bit: bad width");
  }
  MaskedWord r = *this;
  r.width_ = out_width;
  const std::uint64_t m =
      (out_width >= 64) ? ~0ull : ((1ull << out_width) - 1);
  for (auto& s : r.shares_) s = ((s >> bit) & 1ull) ? m : 0ull;
  return r;
}

MaskedWord MaskedWord::dom_and(const MaskedWord& a, const MaskedWord& b,
                               RandomnessSource& rnd) {
  if (a.shares_.size() != b.shares_.size() || a.width_ != b.width_) {
    throw std::invalid_argument("MaskedWord::dom_and: incompatible operands");
  }
  const std::size_t n = a.shares_.size();  // d + 1
  MaskedWord r;
  r.width_ = a.width_;
  r.shares_.assign(n, 0);
  // Inner-domain terms.
  for (std::size_t i = 0; i < n; ++i) {
    r.shares_[i] = a.shares_[i] & b.shares_[i];
  }
  // Cross-domain terms, each blinded by fresh randomness r_ij shared
  // between the (i,j) and (j,i) terms.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::uint64_t fresh = rnd.draw(a.width_);
      r.shares_[i] ^= (a.shares_[i] & b.shares_[j]) ^ fresh;
      r.shares_[j] ^= (a.shares_[j] & b.shares_[i]) ^ fresh;
    }
  }
  return r;
}

MaskedWord MaskedWord::refresh(RandomnessSource& rnd) const {
  MaskedWord r = *this;
  for (std::size_t i = 1; i < r.shares_.size(); ++i) {
    const std::uint64_t fresh = rnd.draw(width_);
    r.shares_[0] ^= fresh;
    r.shares_[i] ^= fresh;
  }
  return r;
}

}  // namespace convolve::masking
