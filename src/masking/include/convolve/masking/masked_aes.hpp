// Boolean-masked AES-128/AES-256 block encryption.
//
// The software twin of the masked hardware designs HADES explores in
// Table II: the key and state live as boolean shares end to end; ShiftRows,
// MixColumns (multiplication by the constants 2 and 3 is GF(2)-linear) and
// AddRoundKey act share-wise; SubBytes is the only nonlinear layer and uses
// the masked tower-field S-box from gf256.hpp (4 masked GF(2^8)
// multiplications each). Randomness per block therefore follows exactly
// the cost model's S-box counting, which tests verify along with FIPS-197
// test vectors at masking orders 0..2.
#pragma once

#include <array>

#include "convolve/common/bytes.hpp"
#include "convolve/masking/gf256.hpp"

namespace convolve::masking {

class MaskedAes {
 public:
  enum class KeySize { k128, k256 };

  /// Expand the key *in shares*: the round keys never exist unmasked.
  MaskedAes(KeySize size, ByteView key, unsigned order,
            RandomnessSource& rnd);

  /// Encrypt one block; plaintext/ciphertext are public, the key is masked.
  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16],
                     RandomnessSource& rnd) const;

  int rounds() const { return rounds_; }
  unsigned order() const { return order_; }

  /// Fresh random bits one block encryption consumes (S-box evaluations
  /// in the data path only; the key schedule's are drawn at construction).
  static std::uint64_t block_random_bits(KeySize size, unsigned order);

 private:
  int rounds_;
  unsigned order_;
  // Round keys as masked bytes: (rounds+1) * 16.
  std::vector<MaskedWord> round_keys_;
};

}  // namespace convolve::masking
