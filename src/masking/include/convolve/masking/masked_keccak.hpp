// Boolean-masked Keccak-f[1600].
//
// The paper realizes Keccak in hardware "as it is an important subroutine
// of BIKE, CRYSTALs-Dilithium and can be used by the TEE for signing", and
// the HADES Keccak template assumes chi -- the only nonlinear layer -- is
// the sole consumer of masking randomness (1600 AND gadgets per round).
// This is the concrete software realization of that design: theta/rho/pi/
// iota act share-wise, chi uses one 64-bit DOM-AND per lane pair, and a
// full permutation at order d draws exactly
//   24 rounds x 25 lanes x 64 bits x d(d+1)/2
// fresh random bits, which tests check against the cost model's formula.
#pragma once

#include <array>

#include "convolve/masking/shares.hpp"

namespace convolve::masking {

using MaskedKeccakState = std::array<MaskedWord, 25>;

/// Encode a plain 5x5-lane state into shares at the given order.
MaskedKeccakState masked_keccak_encode(
    const std::array<std::uint64_t, 25>& plain, unsigned order,
    RandomnessSource& rnd);

/// Recombine shares into the plain state.
std::array<std::uint64_t, 25> masked_keccak_decode(
    const MaskedKeccakState& state);

/// The full masked permutation (24 rounds).
void masked_keccak_f1600(MaskedKeccakState& state, RandomnessSource& rnd);

/// Fresh random bits one masked permutation consumes at order d.
std::uint64_t masked_keccak_random_bits(unsigned order);

}  // namespace convolve::masking
