// Gate-level combinational circuit IR.
//
// This is the representation on which the AGEMA-style automated masking
// baseline operates (the paper contrasts HADES against AGEMA, which applies
// "straight-forward post-processing to synthesized netlists"): a plain
// netlist of AND/XOR/NOT gates is transformed gate-by-gate into a masked
// netlist at order d, with each AND replaced by a DOM gadget subcircuit. The
// same IR feeds the probing-security checker and the CIM adder-tree power
// model's gate-count estimates.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "convolve/common/rng.hpp"
#include "convolve/masking/lane.hpp"

namespace convolve::masking {

enum class GateKind : std::uint8_t {
  kInput,   // primary input
  kRandom,  // fresh uniform random bit (masking randomness)
  kConst,   // constant 0/1 (payload in `aux`)
  kAnd,
  kXor,
  kNot,
  kReg,     // register boundary: identity on values, stops glitch propagation
};

struct Gate {
  GateKind kind = GateKind::kConst;
  int a = -1;  // fan-in 0 (gate index)
  int b = -1;  // fan-in 1 (gate index; unused for NOT/inputs)
  int aux = 0; // constant value, or input ordinal
};

/// A combinational circuit in topological order (gates only reference
/// earlier gates).
class Circuit {
 public:
  /// Append gates; return the gate index.
  int add_input();
  int add_random();
  int add_const(int value);
  int add_and(int a, int b);
  int add_xor(int a, int b);
  int add_not(int a);
  int add_reg(int a);
  void mark_output(int gate);

  int num_inputs() const { return num_inputs_; }
  int num_randoms() const { return num_randoms_; }
  std::size_t num_gates() const { return gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<int>& outputs() const { return outputs_; }

  int and_count() const;
  int xor_count() const;
  int not_count() const;
  int reg_count() const;

  /// Evaluate with explicit input and randomness bit assignments; returns
  /// the value of every gate (wire), so probes can inspect internal wires.
  std::vector<std::uint8_t> evaluate_all(
      const std::vector<std::uint8_t>& inputs,
      const std::vector<std::uint8_t>& randoms) const;

  /// Allocation-free evaluation hook for instrumented consumers (the sca
  /// power-trace simulator captures millions of traces through this):
  /// writes the value of every gate into `wire`, which must have size
  /// num_gates(). This is the scalar (one-lane) instantiation of
  /// evaluate_all_lanes_into and serves as the differential oracle for the
  /// bitsliced path.
  void evaluate_all_into(std::span<const std::uint8_t> inputs,
                         std::span<const std::uint8_t> randoms,
                         std::span<std::uint8_t> wire) const;

  /// Lane-parallel evaluation (see lane.hpp): every input, random and wire
  /// is a bit plane carrying LaneTraits<Word>::kLanes independent
  /// assignments; one pass evaluates them all. Instantiated for
  /// std::uint8_t (scalar, 1 lane) and std::uint64_t (bitsliced, 64
  /// lanes); both instantiations run the identical gate loop, so the
  /// scalar one is a bit-exact oracle for the wide one.
  template <typename Word>
  void evaluate_all_lanes_into(std::span<const Word> inputs,
                               std::span<const Word> randoms,
                               std::span<Word> wire) const;

  /// Evaluate and return only the outputs.
  std::vector<std::uint8_t> evaluate(
      const std::vector<std::uint8_t>& inputs,
      const std::vector<std::uint8_t>& randoms = {}) const;

 private:
  std::vector<Gate> gates_;
  std::vector<int> outputs_;
  int num_inputs_ = 0;
  int num_randoms_ = 0;

  int check(int g) const;
};

/// Result of the automated masking transform.
struct MaskedCircuit {
  Circuit circuit;
  unsigned order = 0;
  // Input i of the original circuit maps to shares
  // [input_shares[i], input_shares[i] + order] (ordinals of masked inputs).
  std::vector<int> input_share_base;
  // Output j of the original circuit maps to order+1 output wires
  // [j*(order+1), (j+1)*(order+1)) of the masked circuit.
};

/// AGEMA-style gate-by-gate masking: every wire becomes order+1 shares,
/// XOR/NOT act share-wise, AND becomes a DOM-independent gadget with
/// order*(order+1)/2 fresh random bits. No cross-gate optimization is
/// attempted -- that is exactly the baseline HADES outperforms.
MaskedCircuit mask_circuit(const Circuit& plain, unsigned order);

// Reference circuits used by tests, the probing checker and benchmarks ----

/// c = a AND b (single gate).
Circuit single_and_circuit();

/// Full adder: inputs a, b, cin; outputs sum, cout.
Circuit full_adder_circuit();

/// Ripple-carry adder over `width`-bit operands; outputs width+1 bits.
Circuit ripple_adder_circuit(int width);

/// 4-bit S-box-like nonlinear layer (3 AND levels) for gadget stress tests.
Circuit toy_sbox_circuit();

/// Hand-built HPC2 multiplication gadget at masking order `order`
/// (Cassiers-Standaert PINI gadget): c_i = reg(a_i b_i) xor
/// sum_{j != i} [reg(!a_i & r_ij) xor reg(a_i & reg(b_j xor r_ij))] with one
/// fresh random bit r_ij = r_ji per unordered share pair. Unlike the DOM
/// gadget emitted by mask_circuit, HPC2 stays secure under composition.
/// Inputs are the 2*(order+1) shares of two plain bits a and b.
MaskedCircuit hpc2_and_gadget(unsigned order);

}  // namespace convolve::masking
