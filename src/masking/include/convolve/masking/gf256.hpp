// Programmatic GF(2^8) circuits and a masked AES S-box.
//
// HADES' masked-AES cost model assumes a tower/Canright-style S-box built
// from GF multiplications that can be masked gadget-by-gadget. This module
// demonstrates that construction concretely in software: GF(2^8)
// multiplication is generated as a gate-level circuit (shift-and-add with
// AES-polynomial reduction -- 64 AND gates), inversion uses the x^254
// addition chain, and the whole S-box runs on MaskedWord shares with
// DOM-AND gadgets. Tests validate all 256 inputs against the plain AES
// S-box at masking orders 0..2 and count the consumed randomness.
#pragma once

#include <cstdint>

#include "convolve/masking/circuit.hpp"
#include "convolve/masking/shares.hpp"

namespace convolve::masking {

/// Plain GF(2^8) multiplication with the AES polynomial x^8+x^4+x^3+x+1
/// (reference for tests).
std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b);

/// The AES S-box value for x (reference, computed from first principles).
std::uint8_t aes_sbox(std::uint8_t x);

/// Gate-level circuit with 16 inputs (a0..a7, b0..b7, LSB first) and 8
/// outputs computing GF(2^8) multiplication. Exactly 64 AND gates.
Circuit gf256_mul_circuit();

/// Masked GF(2^8) arithmetic on byte shares (MaskedWord of width 8).
/// Multiplication costs 64 DOM-AND bit-gadgets worth of randomness
/// (64 * d(d+1)/2 bits); squaring is linear (free).
MaskedWord masked_gf256_mul(const MaskedWord& a, const MaskedWord& b,
                            RandomnessSource& rnd);
MaskedWord masked_gf256_square(const MaskedWord& a);

/// Masked inversion via the x^254 = x^-1 addition chain
/// (4 multiplications + 7 squarings, as in tower-field S-boxes).
MaskedWord masked_gf256_inverse(const MaskedWord& a, RandomnessSource& rnd);

/// The full masked AES S-box: masked inversion followed by the (linear,
/// share-wise) affine transformation.
MaskedWord masked_aes_sbox(const MaskedWord& x, RandomnessSource& rnd);

/// Fresh random bits one masked S-box evaluation consumes at order d.
std::uint64_t masked_sbox_random_bits(unsigned order);

}  // namespace convolve::masking
