// Lane model for circuit evaluation: one boolean per gate pass (scalar
// oracle) or 64 independent booleans packed into a uint64_t bit plane
// (bitsliced evaluation).
//
// The bitsliced convention: lane j of a logical value lives in bit j of
// every word. Inputs, randomness, every wire and every output are bit
// planes, so one pass over the gate list evaluates 64 independent
// trace/probe assignments -- the gate ops themselves (AND/XOR/NOT) are the
// same word operations in both models, which is what lets a single
// templated evaluator serve both paths and keeps the scalar instantiation
// available as the differential oracle for the bitsliced one.
//
// The traits keep the two value domains honest: the scalar lane normalises
// to {0,1} (inputs are historically passed as whole bytes and masked with
// &1), the bitsliced lane is the full word. kNot must flip only lane bits,
// so it is XOR with ones(): 0x01 for the scalar lane, ~0 for the wide one.
#pragma once

#include <cstdint>

namespace convolve::masking {

template <typename Word>
struct LaneTraits;

/// Scalar lane: the original one-boolean-per-gate evaluation. Survives as
/// the differential oracle for the bitsliced path.
template <>
struct LaneTraits<std::uint8_t> {
  using word_type = std::uint8_t;
  static constexpr int kLanes = 1;
  static constexpr std::uint8_t zeros() { return 0; }
  static constexpr std::uint8_t ones() { return 1; }
  /// Clamp an externally supplied value into the lane domain.
  static constexpr std::uint8_t normalize(std::uint8_t v) { return v & 1; }
  /// Broadcast a single bit to every lane.
  static constexpr std::uint8_t broadcast(int bit) {
    return static_cast<std::uint8_t>(bit & 1);
  }
};

/// Bitsliced lane: 64 independent assignments per word, lane j in bit j.
template <>
struct LaneTraits<std::uint64_t> {
  using word_type = std::uint64_t;
  static constexpr int kLanes = 64;
  static constexpr std::uint64_t zeros() { return 0; }
  static constexpr std::uint64_t ones() { return ~0ull; }
  static constexpr std::uint64_t normalize(std::uint64_t v) { return v; }
  static constexpr std::uint64_t broadcast(int bit) {
    return (bit & 1) ? ~0ull : 0ull;
  }
};

/// Number of bitsliced lanes per word (the block size every 64-trace
/// capture/probe path is built around).
inline constexpr int kBitsliceLanes = LaneTraits<std::uint64_t>::kLanes;

}  // namespace convolve::masking
