// Boolean masking at arbitrary order.
//
// A secret word x is split into d+1 shares with x = x_0 ^ ... ^ x_d; any d
// shares are uniformly random and independent of x. Linear operations (XOR,
// NOT, rotations) act share-wise; the nonlinear AND uses the DOM-independent
// gadget, which consumes d(d+1)/2 fresh random words per operation. The
// randomness source counts every bit drawn, which is exactly the
// "randomness" cost metric the HADES design-space exploration optimizes
// (Table II of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/common/rng.hpp"

namespace convolve::masking {

/// Source of fresh masking randomness; counts bits for cost accounting.
class RandomnessSource {
 public:
  explicit RandomnessSource(std::uint64_t seed) : rng_(seed) {}

  /// Draw `width` fresh random bits packed into a word (width <= 64).
  std::uint64_t draw(unsigned width);

  /// Total number of fresh random bits drawn so far.
  std::uint64_t bits_drawn() const { return bits_drawn_; }

  void reset_counter() { bits_drawn_ = 0; }

 private:
  Xoshiro256 rng_;
  std::uint64_t bits_drawn_ = 0;
};

/// A `width`-bit word split into order+1 boolean shares.
class MaskedWord {
 public:
  MaskedWord() = default;

  /// Encode `value` at masking order `order` (order >= 0).
  static MaskedWord encode(std::uint64_t value, unsigned order, unsigned width,
                           RandomnessSource& rnd);

  /// Recombine the shares.
  std::uint64_t decode() const;

  unsigned order() const {
    return static_cast<unsigned>(shares_.size()) - 1;
  }
  unsigned width() const { return width_; }
  const std::vector<std::uint64_t>& shares() const { return shares_; }

  /// Share-wise XOR (linear, needs no randomness).
  friend MaskedWord operator^(const MaskedWord& a, const MaskedWord& b);

  /// NOT: complement share 0 only.
  MaskedWord operator~() const;

  /// Share-wise rotate left (linear).
  MaskedWord rotl(unsigned n) const;

  // Further linear (share-wise, randomness-free) operations ------------

  /// All-zero sharing of zero (no randomness needed).
  static MaskedWord zero(unsigned order, unsigned width);

  /// Rebuild a masked word from explicit shares (e.g. read back from
  /// hardware share registers).
  static MaskedWord from_shares(std::vector<std::uint64_t> shares,
                                unsigned width);

  /// AND with a public constant.
  MaskedWord and_mask(std::uint64_t mask) const;

  /// XOR with a public constant (flips share 0 only).
  MaskedWord xor_const(std::uint64_t value) const;

  /// Shift left by n bits into a word of `new_width` bits.
  MaskedWord shifted_left(unsigned n, unsigned new_width) const;

  /// Truncate to the low `new_width` bits.
  MaskedWord truncated(unsigned new_width) const;

  /// Replicate bit `bit` across a `width`-bit word (fan-out wiring).
  MaskedWord replicate_bit(unsigned bit, unsigned out_width) const;

  /// DOM-independent masked AND; draws d(d+1)/2 fresh random words.
  static MaskedWord dom_and(const MaskedWord& a, const MaskedWord& b,
                            RandomnessSource& rnd);

  /// Re-randomize the sharing of the same secret (refresh gadget);
  /// draws d fresh random words.
  MaskedWord refresh(RandomnessSource& rnd) const;

  /// Number of fresh random bits one DOM-AND consumes at this order/width.
  static std::uint64_t dom_and_random_bits(unsigned order, unsigned width) {
    return static_cast<std::uint64_t>(order) * (order + 1) / 2 * width;
  }

 private:
  std::vector<std::uint64_t> shares_;
  unsigned width_ = 0;

  std::uint64_t mask() const {
    return (width_ >= 64) ? ~0ull : ((1ull << width_) - 1);
  }
};

}  // namespace convolve::masking
