// Exhaustive probing-security verification for small masked circuits.
//
// In the d-probing model an attacker reads up to d internal wires of one
// evaluation. A masked circuit is d-probing secure if, for every probe set
// of size <= d, the joint distribution of probed values (over the masking
// randomness) is identical for every secret input. For the gadget-sized
// circuits HADES composes, the check is exhaustively decidable: we enumerate
// all secrets x all randomness assignments and compare distributions. This
// is the "provable" end of the paper's security-by-design story and is used
// by tests to validate the DOM gadgets the cost models assume.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "convolve/masking/circuit.hpp"

namespace convolve::masking {

/// Distribution over probed-value tuples: bit p of the key is the value of
/// probe wire `probes[p]`; the mapped count is how many (mask, randomness)
/// assignments produce that tuple.
using ProbeDistribution = std::map<std::uint64_t, std::uint64_t>;

struct ProbingReport {
  bool secure = true;
  // When insecure: the offending probe set (gate indices) and the two
  // secret assignments it distinguishes.
  std::vector<int> probes;
  std::vector<std::uint8_t> secret_a;
  std::vector<std::uint8_t> secret_b;
  // The distinguishing witness: the probed tuples' distributions over the
  // masking randomness under secret_a and secret_b (they differ somewhere).
  ProbeDistribution witness_dist_a;
  ProbeDistribution witness_dist_b;
  std::uint64_t probe_sets_checked = 0;
};

/// Check d-probing security of `masked` (as produced by mask_circuit).
/// `plain_inputs` is the number of original (unmasked) inputs. Exhaustive:
/// feasible when plain inputs + randomness <= ~20 bits.
ProbingReport check_probing_security(const MaskedCircuit& masked,
                                     int plain_inputs, unsigned probe_order);

/// Distribution of the probed tuple for one secret assignment, enumerating
/// every input-mask and randomness assignment. Exposed so counterexamples
/// can be replayed and so the symbolic verifier can be cross-checked.
/// Bitsliced: each gate pass discharges 64 probe assignments (low 6 free
/// bits as lane patterns, higher bits block-constant).
ProbeDistribution probe_value_distribution(
    const MaskedCircuit& masked, const std::vector<std::uint8_t>& plain_secret,
    const std::vector<int>& probes);

/// One-assignment-per-pass reference enumeration of the same distribution:
/// the differential oracle the bitsliced path is tested against. Always
/// returns exactly what probe_value_distribution returns.
ProbeDistribution probe_value_distribution_scalar(
    const MaskedCircuit& masked, const std::vector<std::uint8_t>& plain_secret,
    const std::vector<int>& probes);

/// Re-derive an insecurity witness from scratch: recompute the probe-tuple
/// distributions under report.secret_a / report.secret_b and return true iff
/// they actually differ (i.e. the reported leak is real, not an artifact).
bool replay_counterexample(const MaskedCircuit& masked,
                           const ProbingReport& report);

}  // namespace convolve::masking
