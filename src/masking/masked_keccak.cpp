#include "convolve/masking/masked_keccak.hpp"

namespace convolve::masking {

namespace {

// FIPS 202 constants (duplicated from convolve::crypto's private tables;
// the masked/plain cross-check test would catch any transcription error).
constexpr int kRounds = 24;

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull,
};

constexpr unsigned kRho[25] = {
    0,  1,  62, 28, 27,  //
    36, 44, 6,  55, 20,  //
    3,  10, 43, 25, 39,  //
    41, 45, 15, 21, 8,   //
    18, 2,  61, 56, 14,  //
};

}  // namespace

MaskedKeccakState masked_keccak_encode(
    const std::array<std::uint64_t, 25>& plain, unsigned order,
    RandomnessSource& rnd) {
  MaskedKeccakState state;
  for (int i = 0; i < 25; ++i) {
    state[static_cast<std::size_t>(i)] =
        MaskedWord::encode(plain[static_cast<std::size_t>(i)], order, 64, rnd);
  }
  return state;
}

std::array<std::uint64_t, 25> masked_keccak_decode(
    const MaskedKeccakState& state) {
  std::array<std::uint64_t, 25> plain{};
  for (int i = 0; i < 25; ++i) {
    plain[static_cast<std::size_t>(i)] =
        state[static_cast<std::size_t>(i)].decode();
  }
  return plain;
}

void masked_keccak_f1600(MaskedKeccakState& a, RandomnessSource& rnd) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta (linear: XOR and rotations act share-wise).
    std::array<MaskedWord, 5> c;
    for (int x = 0; x < 5; ++x) {
      c[static_cast<std::size_t>(x)] =
          a[static_cast<std::size_t>(x)] ^ a[static_cast<std::size_t>(x + 5)] ^
          a[static_cast<std::size_t>(x + 10)] ^
          a[static_cast<std::size_t>(x + 15)] ^
          a[static_cast<std::size_t>(x + 20)];
    }
    std::array<MaskedWord, 5> d;
    for (int x = 0; x < 5; ++x) {
      d[static_cast<std::size_t>(x)] =
          c[static_cast<std::size_t>((x + 4) % 5)] ^
          c[static_cast<std::size_t>((x + 1) % 5)].rotl(1);
    }
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        a[static_cast<std::size_t>(x + 5 * y)] =
            a[static_cast<std::size_t>(x + 5 * y)] ^
            d[static_cast<std::size_t>(x)];
      }
    }
    // Rho + Pi (linear).
    MaskedKeccakState b;
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        b[static_cast<std::size_t>(y + 5 * ((2 * x + 3 * y) % 5))] =
            a[static_cast<std::size_t>(x + 5 * y)].rotl(
                kRho[static_cast<std::size_t>(x + 5 * y)]);
      }
    }
    // Chi (nonlinear): a = b ^ (~b' & b''). One 64-bit DOM-AND per lane.
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        const MaskedWord not_b1 =
            ~b[static_cast<std::size_t>((x + 1) % 5 + 5 * y)];
        const MaskedWord and_term = MaskedWord::dom_and(
            not_b1, b[static_cast<std::size_t>((x + 2) % 5 + 5 * y)], rnd);
        a[static_cast<std::size_t>(x + 5 * y)] =
            b[static_cast<std::size_t>(x + 5 * y)] ^ and_term;
      }
    }
    // Iota (public constant: flips share 0 only).
    a[0] = a[0].xor_const(kRoundConstants[round]);
  }
}

std::uint64_t masked_keccak_random_bits(unsigned order) {
  return 24ull * 25ull * MaskedWord::dom_and_random_bits(order, 64);
}

}  // namespace convolve::masking
