#include "convolve/masking/gf256.hpp"

#include <array>

namespace convolve::masking {

namespace {

// Reduction masks: the GF(2^8) value of x^k for k = 8..14 under the AES
// polynomial, computed once.
std::array<std::uint8_t, 7> reduction_masks() {
  std::array<std::uint8_t, 7> red{};
  unsigned value = 0x1b;  // x^8 = x^4 + x^3 + x + 1
  for (int k = 0; k < 7; ++k) {
    red[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(value);
    value <<= 1;
    if (value & 0x100) value = (value & 0xff) ^ 0x1b;
  }
  return red;
}

const std::array<std::uint8_t, 7> kRed = reduction_masks();

}  // namespace

std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    const bool high = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (high) a ^= 0x1b;
    b >>= 1;
  }
  return r;
}

std::uint8_t aes_sbox(std::uint8_t x) {
  // Inverse by exhaustive search (reference code; performance irrelevant).
  std::uint8_t inv = 0;
  if (x != 0) {
    for (int c = 1; c < 256; ++c) {
      if (gf256_mul(x, static_cast<std::uint8_t>(c)) == 1) {
        inv = static_cast<std::uint8_t>(c);
        break;
      }
    }
  }
  std::uint8_t s = inv, y = inv;
  for (int k = 0; k < 4; ++k) {
    y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
    s ^= y;
  }
  return s ^ 0x63;
}

Circuit gf256_mul_circuit() {
  Circuit c;
  int a[8], b[8];
  for (auto& g : a) g = c.add_input();
  for (auto& g : b) g = c.add_input();

  // Partial-product columns: bit position i+j collects a_i AND b_j.
  std::array<std::vector<int>, 15> columns;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      columns[static_cast<std::size_t>(i + j)].push_back(c.add_and(a[i], b[j]));
    }
  }
  // Result columns 0..7 then reduction of columns 8..14.
  std::array<std::vector<int>, 8> out_terms;
  for (int k = 0; k < 8; ++k) {
    out_terms[static_cast<std::size_t>(k)] = columns[static_cast<std::size_t>(k)];
  }
  for (int k = 8; k < 15; ++k) {
    const std::uint8_t mask = kRed[static_cast<std::size_t>(k - 8)];
    for (int bit = 0; bit < 8; ++bit) {
      if ((mask >> bit) & 1) {
        for (int gate : columns[static_cast<std::size_t>(k)]) {
          out_terms[static_cast<std::size_t>(bit)].push_back(gate);
        }
      }
    }
  }
  for (int bit = 0; bit < 8; ++bit) {
    auto& terms = out_terms[static_cast<std::size_t>(bit)];
    int acc = terms[0];
    for (std::size_t t = 1; t < terms.size(); ++t) {
      acc = c.add_xor(acc, terms[t]);
    }
    c.mark_output(acc);
  }
  return c;
}

MaskedWord masked_gf256_mul(const MaskedWord& a, const MaskedWord& b,
                            RandomnessSource& rnd) {
  // Schoolbook: acc(16 bits) = XOR_j (a AND repl(b_j)) << j, then reduce.
  MaskedWord acc = MaskedWord::zero(a.order(), 16);
  for (unsigned j = 0; j < 8; ++j) {
    const MaskedWord repl = b.replicate_bit(j, 8);
    const MaskedWord pp = MaskedWord::dom_and(a, repl, rnd);
    acc = acc ^ pp.shifted_left(j, 16);
  }
  // Linear reduction of bits 8..14.
  MaskedWord result = acc.truncated(8);
  for (unsigned k = 8; k < 15; ++k) {
    const MaskedWord bit = acc.replicate_bit(k, 8);
    result = result ^ bit.and_mask(kRed[static_cast<std::size_t>(k - 8)]);
  }
  return result;
}

MaskedWord masked_gf256_square(const MaskedWord& a) {
  // Squaring is GF(2)-linear ((s0 ^ s1 ^ ...)^2 = s0^2 ^ s1^2 ^ ... in
  // GF(2^8)), so it applies share-wise and needs no randomness.
  std::vector<std::uint64_t> shares = a.shares();
  for (auto& s : shares) {
    const std::uint8_t byte = static_cast<std::uint8_t>(s);
    s = gf256_mul(byte, byte);
  }
  return MaskedWord::from_shares(std::move(shares), 8);
}

MaskedWord masked_gf256_inverse(const MaskedWord& a, RandomnessSource& rnd) {
  // x^254 addition chain: 4 multiplications, 7 squarings.
  const MaskedWord x2 = masked_gf256_square(a);
  const MaskedWord x3 = masked_gf256_mul(x2, a, rnd);
  MaskedWord x12 = masked_gf256_square(x3);
  x12 = masked_gf256_square(x12);
  const MaskedWord x15 = masked_gf256_mul(x12, x3, rnd);
  MaskedWord x240 = x15;
  for (int i = 0; i < 4; ++i) x240 = masked_gf256_square(x240);
  const MaskedWord x252 = masked_gf256_mul(x240, x12, rnd);
  return masked_gf256_mul(x252, x2, rnd);
}

MaskedWord masked_aes_sbox(const MaskedWord& x, RandomnessSource& rnd) {
  const MaskedWord inv = masked_gf256_inverse(x, rnd);
  // Affine layer: y = inv ^ rotl1 ^ rotl2 ^ rotl3 ^ rotl4 ^ 0x63 (linear).
  MaskedWord y = inv;
  for (unsigned r = 1; r <= 4; ++r) y = y ^ inv.rotl(r);
  return y.xor_const(0x63);
}

std::uint64_t masked_sbox_random_bits(unsigned order) {
  // 4 GF multiplications, each 8 bit-level DOM-ANDs over 8-bit words.
  return 4ull * 8ull * MaskedWord::dom_and_random_bits(order, 8);
}

}  // namespace convolve::masking
