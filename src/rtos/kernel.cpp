#include "convolve/rtos/kernel.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

namespace convolve::rtos {

namespace {

std::uint64_t next_power_of_two(std::uint64_t x) {
  std::uint64_t p = 4096;
  while (p < x) p *= 2;
  return p;
}

std::uint64_t align_up(std::uint64_t x, std::uint64_t alignment) {
  return (x + alignment - 1) / alignment * alignment;
}

constexpr std::uint8_t kKernelCanary = 0xC5;

}  // namespace

// ---------------------------------------------------------------------
// TaskApi
// ---------------------------------------------------------------------

Bytes TaskApi::read(std::uint64_t addr, std::size_t len) {
  return kernel_.machine_.load(addr, len, PrivMode::kUser);
}

void TaskApi::write(std::uint64_t addr, ByteView data) {
  kernel_.machine_.store(addr, data, PrivMode::kUser);
}

std::uint64_t TaskApi::region_base() const {
  return kernel_.tasks_[static_cast<std::size_t>(task_)].base;
}

std::uint64_t TaskApi::region_size() const {
  return kernel_.tasks_[static_cast<std::size_t>(task_)].size;
}

bool TaskApi::queue_send(int queue, ByteView message) {
  auto& q = kernel_.queues_.at(static_cast<std::size_t>(queue));
  if (q.items.size() >= q.depth) {
    kernel_.events_.push_back(
        {kernel_.tick_, task_, EventType::kQueueRejected, "queue full"});
    return false;
  }
  if (q.per_task_quota > 0) {
    std::size_t mine = 0;
    for (const auto& [sender, payload] : q.items) mine += (sender == task_);
    if (mine >= q.per_task_quota) {
      kernel_.events_.push_back(
          {kernel_.tick_, task_, EventType::kQueueRejected, "quota"});
      return false;
    }
  }
  q.items.emplace_back(task_, Bytes(message.begin(), message.end()));
  // Wake tasks blocked on this queue.
  for (auto& t : kernel_.tasks_) {
    if (t.state == TaskState::kBlocked && t.blocked_on_queue == queue) {
      t.state = TaskState::kReady;
      t.blocked_on_queue = -1;
    }
  }
  return true;
}

std::optional<Bytes> TaskApi::queue_receive(int queue) {
  auto& q = kernel_.queues_.at(static_cast<std::size_t>(queue));
  if (q.items.empty()) return std::nullopt;
  Bytes front = std::move(q.items.front().second);
  q.items.erase(q.items.begin());
  return front;
}

bool TaskApi::peripheral_acquire(int peripheral) {
  auto& p = kernel_.peripherals_.at(static_cast<std::size_t>(peripheral));
  if (p.owner != -1 && p.owner != task_) return false;
  if (p.owner == -1) {
    p.owner = task_;
    p.acquired_tick = kernel_.tick_;
  }
  return true;
}

void TaskApi::peripheral_release(int peripheral) {
  auto& p = kernel_.peripherals_.at(static_cast<std::size_t>(peripheral));
  if (p.owner == task_) p.owner = -1;
}

bool TaskApi::mutex_lock(int mutex) {
  auto& m = kernel_.mutexes_.at(static_cast<std::size_t>(mutex));
  if (m.owner == -1 || m.owner == task_) {
    m.owner = task_;
    // No longer a waiter, if we were one.
    std::erase(m.waiters, task_);
    kernel_.recompute_inherited_priorities();
    return true;
  }
  if (std::find(m.waiters.begin(), m.waiters.end(), task_) ==
      m.waiters.end()) {
    m.waiters.push_back(task_);
  }
  kernel_.recompute_inherited_priorities();
  return false;
}

void TaskApi::mutex_unlock(int mutex) {
  auto& m = kernel_.mutexes_.at(static_cast<std::size_t>(mutex));
  if (m.owner == task_) {
    m.owner = -1;
    kernel_.recompute_inherited_priorities();
  }
}

std::uint64_t TaskApi::now() const { return kernel_.tick_; }

// ---------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------

Kernel::Kernel(Machine& machine, const KernelConfig& config)
    : machine_(machine), config_(config) {
  if (config_.kernel_region_size == 0 ||
      (config_.kernel_region_size & (config_.kernel_region_size - 1)) != 0) {
    throw std::invalid_argument("Kernel: kernel region must be 2^k");
  }
  next_free_ = config_.kernel_region_size;
  // Kernel canary for integrity ground truth.
  machine_.store(kernel_data_addr(), Bytes(16, kKernelCanary),
                 PrivMode::kMachine);
  if (config_.use_pmp) {
    // Entry 0: kernel region invisible to U-mode (M passes, unmatched for
    // the rest handled per-task below).
    tee::PmpEntry e;
    e.mode = tee::PmpAddressMode::kNapot;
    e.address = tee::PmpUnit::encode_napot(0, config_.kernel_region_size);
    machine_.pmp().set_entry(0, e);
  } else {
    // Flat memory model: everything open to every task.
    tee::PmpEntry open;
    open.mode = tee::PmpAddressMode::kTor;
    open.address = machine_.memory_size() >> 2;
    open.read = open.write = open.execute = true;
    machine_.pmp().set_entry(15, open);
  }
}

int Kernel::add_task(std::string name, int priority,
                     std::uint64_t region_size, TaskStep step) {
  if (tasks_.size() >= 13) {
    throw std::runtime_error("Kernel: out of PMP entries for tasks");
  }
  Task t;
  t.name = std::move(name);
  t.priority = priority;
  t.active_priority = priority;
  t.size = next_power_of_two(region_size);
  t.base = align_up(next_free_, t.size);
  if (t.base + t.size > machine_.memory_size()) {
    throw std::runtime_error("Kernel: out of memory");
  }
  next_free_ = t.base + t.size;
  t.step = std::move(step);
  tasks_.push_back(std::move(t));
  return static_cast<int>(tasks_.size()) - 1;
}

int Kernel::add_machine_task(std::string name, int priority,
                             std::uint64_t region_size, ByteView binary,
                             std::uint64_t slice_instructions) {
  // Reserve the region first so we know where to load the binary.
  const int id = add_task(std::move(name), priority, region_size,
                          TaskStep{});  // placeholder step, installed below
  Task& t = tasks_[static_cast<std::size_t>(id)];
  if (binary.size() > t.size) {
    throw std::runtime_error("add_machine_task: binary larger than region");
  }
  machine_.store(t.base, binary, tee::PrivMode::kMachine);
  auto cpu = std::make_shared<tee::Rv32Cpu>(
      machine_, static_cast<std::uint32_t>(t.base), tee::PrivMode::kUser);
  t.step = [cpu, slice_instructions](TaskApi&) -> StepResult {
    const auto result = cpu->run(slice_instructions);
    if (!result.trap) return StepResult::yield();  // slice exhausted
    switch (result.trap->cause) {
      case tee::TrapCause::kEcall:
      case tee::TrapCause::kEbreak:
        return StepResult::done();
      default:
        // Re-throw as an access fault so the kernel's fault handling
        // (kill/restart, event log) applies uniformly.
        throw AccessFault(result.trap->tval,
                          result.trap->cause ==
                                  tee::TrapCause::kStoreAccessFault
                              ? tee::AccessType::kWrite
                              : tee::AccessType::kRead);
    }
  };
  return id;
}

int Kernel::create_queue(std::size_t depth, std::size_t per_task_quota) {
  queues_.push_back(Queue{depth, per_task_quota, {}});
  return static_cast<int>(queues_.size()) - 1;
}

int Kernel::create_peripheral(std::string name) {
  peripherals_.push_back(Peripheral{std::move(name), -1, 0});
  return static_cast<int>(peripherals_.size()) - 1;
}

int Kernel::create_mutex(std::string name) {
  mutexes_.push_back(Mutex{std::move(name), -1, {}});
  return static_cast<int>(mutexes_.size()) - 1;
}

void Kernel::recompute_inherited_priorities() {
  // Reset to base, then propagate: a mutex owner runs at least at the
  // highest active priority among its waiters. Iterate to a fixpoint to
  // handle chained inheritance.
  for (auto& t : tasks_) t.active_priority = t.priority;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& m : mutexes_) {
      if (m.owner < 0) continue;
      Task& owner = tasks_[static_cast<std::size_t>(m.owner)];
      for (int w : m.waiters) {
        const Task& waiter = tasks_[static_cast<std::size_t>(w)];
        if (waiter.active_priority > owner.active_priority) {
          owner.active_priority = waiter.active_priority;
          changed = true;
        }
      }
    }
  }
}

void Kernel::configure_pmp_for(int task_id) {
  if (!config_.use_pmp) return;
  // Entries 1..13: one per task; the running task gets RWX on its region,
  // all other regions are unmatched (and therefore denied to U-mode).
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    tee::PmpEntry e;
    if (static_cast<int>(i) == task_id) {
      e.mode = tee::PmpAddressMode::kNapot;
      e.address = tee::PmpUnit::encode_napot(tasks_[i].base, tasks_[i].size);
      e.read = e.write = e.execute = true;
    }
    machine_.pmp().set_entry(1 + static_cast<int>(i), e);
  }
}

void Kernel::release_peripherals_of(int task_id) {
  for (auto& p : peripherals_) {
    if (p.owner == task_id) p.owner = -1;
  }
  bool touched = false;
  for (auto& m : mutexes_) {
    if (m.owner == task_id) {
      m.owner = -1;
      touched = true;
    }
    touched |= (std::erase(m.waiters, task_id) > 0);
  }
  if (touched) recompute_inherited_priorities();
}

void Kernel::kill_task(int task_id, const std::string& reason) {
  Task& t = tasks_[static_cast<std::size_t>(task_id)];
  t.state = TaskState::kKilled;
  ++t.kills;
  release_peripherals_of(task_id);
  events_.push_back({tick_, task_id, EventType::kTaskKilled, reason});
  if (config_.restart_killed_tasks) {
    // Wipe the task's region and make it ready again (allocation-free:
    // no scratch zero-buffer the size of the region).
    machine_.fill(t.base, t.size, 0, PrivMode::kMachine);
    t.state = TaskState::kReady;
    events_.push_back({tick_, task_id, EventType::kTaskRestarted, ""});
  }
}

void Kernel::wake_tasks() {
  for (auto& t : tasks_) {
    if (t.state == TaskState::kDelayed && t.wake_tick <= tick_) {
      t.state = TaskState::kReady;
    }
  }
}

void Kernel::watchdog_check() {
  for (std::size_t i = 0; i < peripherals_.size(); ++i) {
    Peripheral& p = peripherals_[i];
    if (p.owner != -1 &&
        tick_ - p.acquired_tick >
            static_cast<std::uint64_t>(config_.watchdog_ticks)) {
      events_.push_back({tick_, p.owner, EventType::kWatchdogRevoke,
                         p.name + " lock revoked"});
      p.owner = -1;
    }
  }
}

int Kernel::pick_next() {
  int best = -1;
  int best_priority = std::numeric_limits<int>::min();
  // Find the highest ready priority.
  for (const auto& t : tasks_) {
    if (t.state == TaskState::kReady && t.active_priority > best_priority) {
      best_priority = t.active_priority;
    }
  }
  if (best_priority == std::numeric_limits<int>::min()) return -1;
  // Round-robin within that priority level.
  const std::size_t n = tasks_.size();
  for (std::size_t off = 1; off <= n; ++off) {
    const std::size_t idx = (rr_cursor_ + off) % n;
    if (tasks_[idx].state == TaskState::kReady &&
        tasks_[idx].active_priority == best_priority) {
      best = static_cast<int>(idx);
      rr_cursor_ = idx;
      break;
    }
  }
  return best;
}

void Kernel::run(std::uint64_t max_ticks) {
  const std::uint64_t end = tick_ + max_ticks;
  while (tick_ < end) {
    wake_tasks();
    watchdog_check();
    const int next = pick_next();
    if (next == -1) {
      // Idle tick: nothing ready. Stop early if nothing can ever wake.
      bool any_pending = false;
      for (const auto& t : tasks_) {
        if (t.state == TaskState::kDelayed || t.state == TaskState::kBlocked) {
          any_pending = true;
        }
      }
      if (!any_pending) break;
      ++tick_;
      continue;
    }
    configure_pmp_for(next);
    Task& t = tasks_[static_cast<std::size_t>(next)];
    TaskApi api(*this, next);
    try {
      const StepResult r = t.step(api);
      switch (r.action) {
        case StepAction::kYield:
          break;
        case StepAction::kDelay:
          t.state = TaskState::kDelayed;
          t.wake_tick = tick_ + static_cast<std::uint64_t>(r.arg);
          break;
        case StepAction::kBlock:
          t.state = TaskState::kBlocked;
          t.blocked_on_queue = r.arg;
          break;
        case StepAction::kDone:
          t.state = TaskState::kDone;
          release_peripherals_of(next);
          break;
      }
    } catch (const AccessFault& fault) {
      events_.push_back({tick_, next, EventType::kFault,
                         "access fault at 0x" + std::to_string(fault.address)});
      kill_task(next, "PMP violation");
    }
    ++tick_;
  }
}

TaskState Kernel::task_state(int id) const {
  return tasks_.at(static_cast<std::size_t>(id)).state;
}

const std::string& Kernel::task_name(int id) const {
  return tasks_.at(static_cast<std::size_t>(id)).name;
}

int Kernel::count_events(EventType type) const {
  int n = 0;
  for (const auto& e : events_) n += (e.type == type);
  return n;
}

bool Kernel::kernel_integrity_ok() const {
  // Allocation-free canary check through the machine's fast read path.
  for (std::uint64_t off = 0; off < 16; ++off) {
    std::uint8_t b = 0;
    if (!machine_.read8(kernel_data_addr() + off, PrivMode::kMachine, b) ||
        b != kKernelCanary) {
      return false;
    }
  }
  return true;
}

}  // namespace convolve::rtos
