#include "convolve/rtos/attacks.hpp"

#include <algorithm>
#include <memory>

#include "convolve/rtos/kernel.hpp"

namespace convolve::rtos {

namespace {

constexpr std::uint8_t kSecret = 0x5E;

struct World {
  Machine machine{1 << 20};
  KernelConfig config;
  std::unique_ptr<Kernel> kernel;

  explicit World(bool use_pmp) {
    config.use_pmp = use_pmp;
    kernel = std::make_unique<Kernel>(machine, config);
  }
};

ScenarioResult finish(const std::string& name, bool use_pmp, World& w,
                      bool attack_succeeded, bool victim_completed) {
  ScenarioResult r;
  r.name = name;
  r.pmp_enabled = use_pmp;
  r.attack_succeeded = attack_succeeded;
  r.victim_completed = victim_completed;
  r.kernel_intact = w.kernel->kernel_integrity_ok();
  r.faults = w.kernel->count_events(EventType::kFault);
  r.kills = w.kernel->count_events(EventType::kTaskKilled);
  return r;
}

}  // namespace

ScenarioResult scenario_stack_snoop(bool use_pmp) {
  World w(use_pmp);
  auto victim_done = std::make_shared<bool>(false);
  auto leaked = std::make_shared<bool>(false);
  auto victim_base = std::make_shared<std::uint64_t>(0);

  auto victim_steps = std::make_shared<int>(0);
  const int victim = w.kernel->add_task(
      "victim", /*priority=*/1, 8192, [=](TaskApi& api) {
        *victim_base = api.region_base();
        // Place a "key" on the task stack, then do 5 ticks of work.
        api.write(api.region_base() + 128, Bytes(16, kSecret));
        if (++*victim_steps >= 5) {
          *victim_done = true;
          return StepResult::done();
        }
        return StepResult::yield();
      });
  (void)victim;

  w.kernel->add_task("attacker", /*priority=*/1, 8192, [=](TaskApi& api) {
    if (*victim_base == 0) return StepResult::yield();  // victim not yet run
    const Bytes stolen = api.read(*victim_base + 128, 16);  // may trap
    *leaked = std::all_of(stolen.begin(), stolen.end(),
                          [](std::uint8_t b) { return b == kSecret; });
    return StepResult::done();
  });

  w.kernel->run(64);
  return finish("stack-snoop", use_pmp, w, *leaked, *victim_done);
}

ScenarioResult scenario_kernel_tamper(bool use_pmp) {
  World w(use_pmp);
  auto victim_done = std::make_shared<bool>(false);
  auto victim_steps = std::make_shared<int>(0);
  w.kernel->add_task("victim", 1, 8192, [=](TaskApi&) {
    if (++*victim_steps >= 5) {
      *victim_done = true;
      return StepResult::done();
    }
    return StepResult::yield();
  });

  const std::uint64_t target = w.kernel->kernel_data_addr();
  w.kernel->add_task("attacker", 1, 8192, [=](TaskApi& api) {
    api.write(target, Bytes(16, 0xBD));  // scribble over kernel data
    return StepResult::done();
  });

  w.kernel->run(64);
  const bool tampered = !w.kernel->kernel_integrity_ok();
  return finish("kernel-tamper", use_pmp, w, tampered, *victim_done);
}

ScenarioResult scenario_cross_task_inject(bool use_pmp) {
  World w(use_pmp);
  auto victim_done = std::make_shared<bool>(false);
  auto corrupted = std::make_shared<bool>(false);
  auto victim_base = std::make_shared<std::uint64_t>(0);
  auto victim_steps = std::make_shared<int>(0);

  w.kernel->add_task("victim", 1, 8192, [=](TaskApi& api) {
    *victim_base = api.region_base();
    if (*victim_steps == 0) {
      api.write(api.region_base() + 256, Bytes(4, 0x11));  // control data
    }
    // Check our own control data each tick.
    const Bytes mine = api.read(api.region_base() + 256, 4);
    if (mine != Bytes(4, 0x11)) *corrupted = true;
    if (++*victim_steps >= 6) {
      *victim_done = true;
      return StepResult::done();
    }
    return StepResult::yield();
  });

  w.kernel->add_task("attacker", 1, 8192, [=](TaskApi& api) {
    if (*victim_base == 0) return StepResult::yield();
    api.write(*victim_base + 256, Bytes(4, 0x99));  // inject
    return StepResult::done();
  });

  w.kernel->run(64);
  // The attack "succeeds" if the victim observed corrupted control data.
  return finish("cross-task-inject", use_pmp, w, *corrupted,
                *victim_done && !*corrupted);
}

ScenarioResult scenario_peripheral_dos(bool use_pmp) {
  World w(use_pmp);
  const int dma = w.kernel->create_peripheral("dma");
  auto victim_done = std::make_shared<bool>(false);
  auto victim_got_dma = std::make_shared<int>(0);

  // Attacker has higher priority and grabs the peripheral forever.
  w.kernel->add_task("hog", 2, 8192, [=](TaskApi& api) {
    api.peripheral_acquire(dma);
    // Sleep between re-arms so lower-priority tasks get the CPU; the lock
    // is never released voluntarily.
    return StepResult::delay(2);
  });

  w.kernel->add_task("victim", 1, 8192, [=](TaskApi& api) {
    if (api.peripheral_acquire(dma)) {
      ++*victim_got_dma;
      api.peripheral_release(dma);
      if (*victim_got_dma >= 3) {
        *victim_done = true;
        return StepResult::done();
      }
    }
    return StepResult::yield();
  });

  w.kernel->run(256);
  // The DoS "succeeds" if the victim never completed its DMA work; the
  // watchdog is the recovery mechanism (independent of PMP).
  return finish("peripheral-dos", use_pmp, w, !*victim_done, *victim_done);
}

ScenarioResult scenario_queue_flood(bool use_pmp) {
  World w(use_pmp);
  // The hardened configuration pairs PMP with kernel resource quotas
  // (2 in-flight messages per sender); the flat build has neither.
  const int queue = w.kernel->create_queue(8, use_pmp ? 2 : 0);
  auto victim_done = std::make_shared<bool>(false);
  auto delivered = std::make_shared<int>(0);
  auto victim_rejected = std::make_shared<int>(0);

  // Flooder at equal priority keeps the queue full.
  w.kernel->add_task("flooder", 1, 8192, [=](TaskApi& api) {
    for (int i = 0; i < 8; ++i) {
      api.queue_send(queue, as_bytes("junk"));
    }
    return StepResult::yield();
  });

  // Producer victim needs to deliver 3 messages to the consumer.
  auto sent = std::make_shared<int>(0);
  w.kernel->add_task("producer", 1, 8192, [=](TaskApi& api) {
    if (*sent >= 3) return StepResult::done();
    if (!api.queue_send(queue, as_bytes("real"))) {
      ++*victim_rejected;
      return StepResult::yield();
    }
    ++*sent;
    return StepResult::yield();
  });

  // Consumer drains everything, counting real messages.
  w.kernel->add_task("consumer", 1, 8192, [=](TaskApi& api) {
    while (auto msg = api.queue_receive(queue)) {
      const auto real = as_bytes("real");
      if (msg->size() == real.size() &&
          std::equal(msg->begin(), msg->end(), real.begin())) {
        ++*delivered;
      }
    }
    if (*delivered >= 3) {
      *victim_done = true;
      return StepResult::done();
    }
    return StepResult::yield();
  });

  w.kernel->run(256);
  // Attack succeeded if the victim was ever rejected; bounded queues +
  // round-robin guarantee eventual delivery (recovery by design).
  return finish("queue-flood", use_pmp, w, *victim_rejected > 0,
                *victim_done);
}

std::vector<ScenarioResult> run_attack_suite(bool use_pmp) {
  return {
      scenario_stack_snoop(use_pmp),
      scenario_kernel_tamper(use_pmp),
      scenario_cross_task_inject(use_pmp),
      scenario_peripheral_dos(use_pmp),
      scenario_queue_flood(use_pmp),
  };
}

}  // namespace convolve::rtos
