// A FreeRTOS-style real-time kernel with PMP-backed task isolation.
//
// Models the paper's Section III-D system: a preemptive priority scheduler
// (round-robin within a priority level), queues and a peripheral lock with
// a watchdog, running on the convolve::tee machine model. When PMP
// isolation is enabled, every context switch reprograms the PMP so the
// running task sees only its own region; kernel data and other tasks'
// stacks are unreachable, and a violating access traps into the kernel,
// which kills (and can restart) the offender -- the "endure and recuperate"
// behaviour evaluated in the paper's Fig. 3. With PMP disabled the same
// attacks succeed silently, which is the baseline the figure contrasts.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "convolve/tee/machine.hpp"
#include "convolve/tee/rv32.hpp"

namespace convolve::rtos {

using tee::AccessFault;
using tee::Machine;
using tee::PrivMode;

/// What a task's step function asks the kernel to do next.
enum class StepAction {
  kYield,      // done for this tick, stay ready
  kBlock,      // wait on a queue (the kernel knows which from the API call)
  kDelay,      // sleep for `arg` ticks
  kDone,       // task finished
};

struct StepResult {
  StepAction action = StepAction::kYield;
  int arg = 0;
  static StepResult yield() { return {StepAction::kYield, 0}; }
  static StepResult delay(int ticks) { return {StepAction::kDelay, ticks}; }
  static StepResult done() { return {StepAction::kDone, 0}; }
};

enum class TaskState { kReady, kDelayed, kBlocked, kKilled, kDone };

/// Kernel events, for the attack-scenario evaluation.
enum class EventType {
  kFault,           // PMP trap while the task ran
  kTaskKilled,
  kTaskRestarted,
  kWatchdogRevoke,  // peripheral lock forcibly released
  kQueueRejected,   // send on a full queue
};

struct Event {
  std::uint64_t tick;
  int task;
  EventType type;
  std::string detail;
};

class Kernel;

/// The system-call surface a task sees. All memory access goes through the
/// machine at U-mode privilege, so it is subject to whatever PMP view the
/// kernel programmed for this task.
class TaskApi {
 public:
  TaskApi(Kernel& kernel, int task_id) : kernel_(kernel), task_(task_id) {}

  Bytes read(std::uint64_t addr, std::size_t len);
  void write(std::uint64_t addr, ByteView data);

  /// This task's own region.
  std::uint64_t region_base() const;
  std::uint64_t region_size() const;

  /// Bounded FIFO queues (returns false when full / empty).
  bool queue_send(int queue, ByteView message);
  std::optional<Bytes> queue_receive(int queue);

  /// Peripheral lock (e.g. a DMA engine). Returns false if held by
  /// another task.
  bool peripheral_acquire(int peripheral);
  void peripheral_release(int peripheral);

  /// Mutex with priority inheritance: while a lower-priority task holds a
  /// mutex a higher-priority task wants, the holder runs at the waiter's
  /// priority, bounding priority inversion.
  bool mutex_lock(int mutex);    // false = held by someone else (record
                                 // this task as a waiter)
  void mutex_unlock(int mutex);

  std::uint64_t now() const;
  int self() const { return task_; }

 private:
  Kernel& kernel_;
  int task_;
};

using TaskStep = std::function<StepResult(TaskApi&)>;

struct KernelConfig {
  bool use_pmp = true;
  std::uint64_t kernel_region_size = 64 * 1024;  // kernel data at address 0
  int watchdog_ticks = 16;  // max ticks a peripheral lock may be held
  bool restart_killed_tasks = false;
};

class Kernel {
 public:
  Kernel(Machine& machine, const KernelConfig& config = {});

  /// Create a task with its own memory region (rounded to a power of two).
  int add_task(std::string name, int priority, std::uint64_t region_size,
               TaskStep step);

  /// Create a task whose body is an RV32IM binary executed in U-mode under
  /// the task's PMP view, `slice_instructions` per tick. The task finishes
  /// on ecall/ebreak; a PMP violation kills it like any other fault.
  int add_machine_task(std::string name, int priority,
                       std::uint64_t region_size, ByteView binary,
                       std::uint64_t slice_instructions = 64);

  /// `per_task_quota` caps how many undelivered messages one sender may
  /// hold in the queue (0 = unlimited); the anti-flooding defense of the
  /// hardened configuration.
  int create_queue(std::size_t depth, std::size_t per_task_quota = 0);
  int create_peripheral(std::string name);
  int create_mutex(std::string name);

  /// Run the scheduler for `max_ticks` ticks (or until all tasks done).
  void run(std::uint64_t max_ticks);

  TaskState task_state(int id) const;
  const std::string& task_name(int id) const;
  const std::vector<Event>& events() const { return events_; }
  std::uint64_t now() const { return tick_; }

  /// Count events of one type (bench/reporting helper).
  int count_events(EventType type) const;

  /// Kernel-owned scratch area tasks may legitimately never touch; used by
  /// attack scenarios as the target of kernel-tampering attempts.
  std::uint64_t kernel_data_addr() const { return 0x100; }

  /// Ground-truth check used by benches: has the kernel region been
  /// corrupted by a task? (Reads a canary in M-mode.)
  bool kernel_integrity_ok() const;

 private:
  friend class TaskApi;

  struct Task {
    std::string name;
    int priority = 0;        // base priority
    int active_priority = 0; // >= priority while inheriting
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    TaskStep step;
    TaskState state = TaskState::kReady;
    std::uint64_t wake_tick = 0;
    int blocked_on_queue = -1;
    int kills = 0;
  };

  struct Queue {
    std::size_t depth;
    std::size_t per_task_quota;  // 0 = unlimited
    std::vector<std::pair<int, Bytes>> items;  // (sender, payload)
  };

  struct Peripheral {
    std::string name;
    int owner = -1;
    std::uint64_t acquired_tick = 0;
  };

  struct Mutex {
    std::string name;
    int owner = -1;
    std::vector<int> waiters;
  };

  Machine& machine_;
  KernelConfig config_;
  std::vector<Task> tasks_;
  std::vector<Queue> queues_;
  std::vector<Peripheral> peripherals_;
  std::vector<Mutex> mutexes_;
  std::vector<Event> events_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_free_ = 0;
  std::size_t rr_cursor_ = 0;  // round-robin position within a priority

  void configure_pmp_for(int task_id);
  void recompute_inherited_priorities();
  void kill_task(int task_id, const std::string& reason);
  void wake_tasks();
  void watchdog_check();
  int pick_next();
  void release_peripherals_of(int task_id);
};

}  // namespace convolve::rtos
