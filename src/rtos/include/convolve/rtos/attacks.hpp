// The attack-scenario suite behind the paper's Fig. 3 evaluation:
// "diverse attack scenarios utilized to evaluate the system's capacity to
// endure and recuperate from these attacks."
//
// Each scenario runs a victim task with a real-time deadline next to a
// malicious task, once with PMP isolation and once without, and reports
// (a) whether the attack reached its goal and (b) whether the system
// endured: the victim met its workload and kernel integrity held.
#pragma once

#include <string>
#include <vector>

namespace convolve::rtos {

struct ScenarioResult {
  std::string name;
  bool pmp_enabled = false;
  bool attack_succeeded = false;   // attacker reached its goal
  bool victim_completed = false;   // victim finished its workload
  bool kernel_intact = false;      // kernel canary unmodified
  int faults = 0;                  // PMP traps taken
  int kills = 0;                   // tasks killed by the kernel
  bool system_recovered() const {
    return victim_completed && kernel_intact;
  }
};

/// Individual scenarios.
ScenarioResult scenario_stack_snoop(bool use_pmp);
ScenarioResult scenario_kernel_tamper(bool use_pmp);
ScenarioResult scenario_cross_task_inject(bool use_pmp);
ScenarioResult scenario_peripheral_dos(bool use_pmp);
ScenarioResult scenario_queue_flood(bool use_pmp);

/// All five, in a stable order.
std::vector<ScenarioResult> run_attack_suite(bool use_pmp);

}  // namespace convolve::rtos
