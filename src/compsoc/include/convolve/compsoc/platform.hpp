// CompSOC-style composable multi-resource platform.
//
// Models the paper's Section III-E: applications execute inside Virtual
// Execution Platforms (VEPs) -- predefined subsets of the shared hardware
// (processor cycles, NoC link slots, memory-port slots) arbitrated by TDM
// tables. Composability is the defining property: an application's
// cycle-by-cycle behaviour is *identical* no matter what else runs on the
// chip, because its grants come only from its own TDM slots. The simulator
// exposes the full grant trace so tests can assert bit-exact composability,
// and offers a non-composable greedy arbiter as the baseline that breaks
// it (and the TDM overhead the paper calls out as the drawback).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace convolve::compsoc {

enum class ResourceKind : std::uint8_t { kProcessor = 0, kNocLink = 1, kMemoryPort = 2 };
inline constexpr int kResourceKinds = 3;

/// One step of a deterministic application program: consume `units` grants
/// of one resource kind.
struct WorkItem {
  ResourceKind resource;
  int units;
};

struct Application {
  std::string name;
  std::vector<WorkItem> program;
};

enum class ArbitrationPolicy {
  kTdm,     // composable: fixed slot tables per resource
  kGreedy,  // non-composable baseline: lowest-id requester wins free slots
};

struct PlatformConfig {
  ArbitrationPolicy policy = ArbitrationPolicy::kTdm;
  int tdm_period = 8;  // slots per TDM wheel on every resource
};

/// Result of one application's execution.
struct CompletionRecord {
  std::string app;
  bool finished = false;
  std::uint64_t finish_cycle = 0;
  std::uint64_t stall_cycles = 0;
  // The cycles at which the app received a grant, per resource kind --
  // the composability witness.
  std::vector<std::vector<std::uint64_t>> grant_trace;
};

class Platform {
 public:
  explicit Platform(const PlatformConfig& config);

  /// Create a VEP owning the given TDM slots (indices into the wheel,
  /// 0 <= slot < tdm_period) on each resource kind. Slots must not collide
  /// with an existing VEP's slots. Ignored under greedy arbitration.
  int create_vep(const std::string& name,
                 const std::vector<int>& processor_slots,
                 const std::vector<int>& noc_slots,
                 const std::vector<int>& memory_slots);

  /// Bind an application to a VEP (one app per VEP).
  void load_application(int vep, Application app);

  /// Run until all apps finish or `max_cycles` elapse.
  std::vector<CompletionRecord> run(std::uint64_t max_cycles);

  /// Fraction of resource slots that went unused (TDM overhead metric).
  double idle_slot_fraction() const;

  /// Analytic worst-case completion bound (in cycles) for the application
  /// loaded on `vep` under TDM arbitration: each work unit waits at most
  /// one full TDM period for its next owned slot, so
  ///   bound = sum over items of units * ceil(period / owned_slots(kind))
  ///           + period (initial alignment).
  /// The guarantee that makes the platform usable for real-time work:
  /// run() never exceeds it, no matter what co-runners do (tested in
  /// tests/compsoc and asserted cheaply here in debug builds).
  std::uint64_t worst_case_completion_bound(int vep) const;

 private:
  struct Vep {
    std::string name;
    // slots[kind] = sorted slot indices this VEP owns.
    std::vector<std::vector<int>> slots;
    bool has_app = false;
    Application app;
  };

  PlatformConfig config_;
  std::vector<Vep> veps_;
  std::uint64_t granted_slots_ = 0;
  std::uint64_t total_slots_ = 0;

  bool owns_slot(const Vep& vep, ResourceKind kind, int slot) const;
};

// Canonical workloads used by tests and the composability bench ----------

/// A control-loop-like app: alternating compute and memory with NoC sends.
Application make_realtime_app(const std::string& name, int iterations);

/// A bulk, best-effort app that hammers memory and the NoC.
Application make_besteffort_app(const std::string& name, int volume);

}  // namespace convolve::compsoc
