// Packet-level NoC mesh with per-link TDM arbitration.
//
// CompSOC's platform is "a NOC-based multi-processor architecture for
// mixed time-criticality applications": the interconnect, not just the
// endpoints, must be composable. This model is a W x H mesh with
// dimension-ordered (XY) routing and store-and-forward switching; each
// link grants one flit per cycle to the TDM slot owner (composable) or to
// the lowest-id requester (greedy baseline). Under TDM, a VEP's packet
// latencies are independent of all other traffic, and an analytic
// worst-case latency bound holds per packet.
#pragma once

#include <cstdint>
#include <vector>

#include "convolve/compsoc/platform.hpp"  // ArbitrationPolicy

namespace convolve::compsoc {

struct NocConfig {
  int width = 4;
  int height = 4;
  int tdm_period = 8;
  ArbitrationPolicy policy = ArbitrationPolicy::kTdm;
};

struct NocPacket {
  int id = 0;
  int src_tile = 0;  // tile index = y * width + x
  int dst_tile = 0;
  int flits = 1;
  int vep = 0;
  std::uint64_t inject_cycle = 0;
};

struct NocDelivery {
  int packet_id = 0;
  bool delivered = false;
  std::uint64_t delivery_cycle = 0;
  int hops = 0;
};

class NocMesh {
 public:
  explicit NocMesh(const NocConfig& config);

  /// Assign TDM slots (indices < tdm_period) to a VEP on every link.
  /// Slots must not overlap another VEP's slots.
  void assign_slots(int vep, const std::vector<int>& slots);

  /// Queue a packet for injection at its source tile.
  void inject(const NocPacket& packet);

  /// Simulate; returns one record per injected packet.
  std::vector<NocDelivery> run(std::uint64_t max_cycles);

  /// Manhattan hop count between two tiles.
  int hop_count(int src_tile, int dst_tile) const;

  /// Analytic worst-case delivery latency under TDM for a packet of
  /// `flits` flits over `hops` links with `owned_slots` slots per period:
  /// each hop transfers `flits` flits, each waiting at most one period
  /// for an owned slot.
  std::uint64_t worst_case_latency(int hops, int flits,
                                   int owned_slots) const;

 private:
  NocConfig config_;
  std::vector<std::vector<int>> vep_slots_;  // per vep: owned slot list
  std::vector<NocPacket> pending_;

  int tile_x(int tile) const { return tile % config_.width; }
  int tile_y(int tile) const { return tile / config_.width; }
  int next_hop(int tile, int dst) const;  // XY routing
  bool vep_owns_slot(int vep, int slot) const;
};

}  // namespace convolve::compsoc
