// TDM admission control for request-serving layers.
//
// The CompSOC platform arbitrates hardware resources with per-resource TDM
// wheels (platform.hpp); this header reuses the same composability idea one
// level up, as the admission/QoS layer of a request service: a wheel of
// `period` slots is statically partitioned among tenants, and a request is
// admitted only when its tenant owns a slot within the next `max_wait`
// positions of the wheel. A tenant flooding the service can therefore only
// ever consume its own slots -- other tenants' admission latency is bounded
// by construction, the same guarantee TDM gives NoC traffic in the paper.
//
// Deliberately NOT thread-safe: the service serializes admission decisions
// at submit() time (one wheel, one cursor), which both matches real TDM
// hardware (a single arbiter scanning a wheel) and keeps decisions
// deterministic for a given submission order.
#pragma once

#include <cstdint>
#include <vector>

namespace convolve::compsoc {

class TdmAdmission {
 public:
  struct Config {
    int period = 8;    // slots on the wheel
    int max_wait = 8;  // furthest slot ahead a request may wait for
  };

  struct Decision {
    bool admitted = false;
    // Slots the wheel advanced past before the tenant's slot came up
    // (0 = the current slot was the tenant's). On rejection: the number of
    // slots scanned without finding one, i.e. min(max_wait, period).
    int wait_slots = 0;
  };

  explicit TdmAdmission(const Config& config);

  /// Assign `slots` (wheel indices, 0 <= slot < period) to a new tenant
  /// and return its id. Throws std::invalid_argument on out-of-range or
  /// already-owned slots.
  int add_tenant(const std::vector<int>& slots);

  int tenant_count() const { return tenant_count_; }

  /// Admission decision for one request from `tenant`. Scans the wheel
  /// from the cursor, at most max_wait slots ahead: if one of them is the
  /// tenant's, the wheel advances just past it and the request is
  /// admitted; otherwise the cursor stays put (a rejected request consumes
  /// no wheel time -- backpressure is free) and the caller should shed the
  /// request. Throws std::out_of_range for an unknown tenant.
  Decision admit(int tenant);

  std::uint64_t admitted_count() const { return admitted_; }
  std::uint64_t rejected_count() const { return rejected_; }
  /// Per-tenant decision tallies, so a shed can be attributed to the
  /// tenant that ate it (the service exports these as labeled counters).
  /// Throws std::out_of_range for an unknown tenant.
  std::uint64_t admitted_count(int tenant) const;
  std::uint64_t rejected_count(int tenant) const;
  /// Admitted fraction of all decisions, 1.0 before any decision.
  double admitted_fraction() const;

 private:
  struct TenantCounts {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };

  Config config_;
  std::vector<int> slot_owner_;  // -1 = unowned
  int tenant_count_ = 0;
  int cursor_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::vector<TenantCounts> per_tenant_;
};

}  // namespace convolve::compsoc
