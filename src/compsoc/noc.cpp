#include "convolve/compsoc/noc.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <stdexcept>

namespace convolve::compsoc {

NocMesh::NocMesh(const NocConfig& config) : config_(config) {
  if (config_.width <= 0 || config_.height <= 0 || config_.tdm_period <= 0) {
    throw std::invalid_argument("NocMesh: bad dimensions/period");
  }
}

void NocMesh::assign_slots(int vep, const std::vector<int>& slots) {
  if (vep < 0) throw std::invalid_argument("assign_slots: bad vep");
  for (int s : slots) {
    if (s < 0 || s >= config_.tdm_period) {
      throw std::invalid_argument("assign_slots: slot out of range");
    }
    for (const auto& other : vep_slots_) {
      if (std::find(other.begin(), other.end(), s) != other.end()) {
        throw std::invalid_argument("assign_slots: slot already owned");
      }
    }
  }
  if (vep >= static_cast<int>(vep_slots_.size())) {
    vep_slots_.resize(static_cast<std::size_t>(vep) + 1);
  }
  vep_slots_[static_cast<std::size_t>(vep)] = slots;
  std::sort(vep_slots_[static_cast<std::size_t>(vep)].begin(),
            vep_slots_[static_cast<std::size_t>(vep)].end());
}

void NocMesh::inject(const NocPacket& packet) {
  const int tiles = config_.width * config_.height;
  if (packet.src_tile < 0 || packet.src_tile >= tiles ||
      packet.dst_tile < 0 || packet.dst_tile >= tiles ||
      packet.flits <= 0) {
    throw std::invalid_argument("inject: malformed packet");
  }
  pending_.push_back(packet);
}

int NocMesh::hop_count(int src_tile, int dst_tile) const {
  return std::abs(tile_x(src_tile) - tile_x(dst_tile)) +
         std::abs(tile_y(src_tile) - tile_y(dst_tile));
}

int NocMesh::next_hop(int tile, int dst) const {
  // XY routing: resolve the X dimension first.
  const int x = tile_x(tile), y = tile_y(tile);
  const int dx = tile_x(dst), dy = tile_y(dst);
  if (x < dx) return tile + 1;
  if (x > dx) return tile - 1;
  if (y < dy) return tile + config_.width;
  if (y > dy) return tile - config_.width;
  return tile;
}

bool NocMesh::vep_owns_slot(int vep, int slot) const {
  if (vep < 0 || vep >= static_cast<int>(vep_slots_.size())) return false;
  const auto& slots = vep_slots_[static_cast<std::size_t>(vep)];
  return std::binary_search(slots.begin(), slots.end(), slot);
}

std::vector<NocDelivery> NocMesh::run(std::uint64_t max_cycles) {
  struct InFlight {
    NocPacket packet;
    int at_tile;
    int flits_moved;  // flits already pushed across the current link
    bool done = false;
    NocDelivery record;
  };
  std::vector<InFlight> flights;
  flights.reserve(pending_.size());
  for (const auto& p : pending_) {
    InFlight f;
    f.packet = p;
    f.at_tile = p.src_tile;
    f.flits_moved = 0;
    f.record.packet_id = p.id;
    f.record.hops = hop_count(p.src_tile, p.dst_tile);
    if (p.src_tile == p.dst_tile) {
      f.done = true;
      f.record.delivered = true;
      f.record.delivery_cycle = p.inject_cycle;
    }
    flights.push_back(std::move(f));
  }

  for (std::uint64_t cycle = 0; cycle < max_cycles; ++cycle) {
    bool all_done = true;
    for (const auto& f : flights) all_done &= f.done;
    if (all_done) break;

    const int slot =
        static_cast<int>(cycle % static_cast<std::uint64_t>(config_.tdm_period));

    // One flit transfer per link per cycle. Collect, per directed link,
    // the candidate packets that want it this cycle.
    std::map<std::pair<int, int>, std::vector<std::size_t>> requests;
    for (std::size_t i = 0; i < flights.size(); ++i) {
      InFlight& f = flights[i];
      if (f.done || f.packet.inject_cycle > cycle) continue;
      const int next = next_hop(f.at_tile, f.packet.dst_tile);
      requests[{f.at_tile, next}].push_back(i);
    }
    for (auto& [link, candidates] : requests) {
      std::size_t winner = flights.size();
      if (config_.policy == ArbitrationPolicy::kTdm) {
        for (std::size_t i : candidates) {
          if (vep_owns_slot(flights[i].packet.vep, slot)) {
            winner = i;
            break;  // deterministic: first (lowest index) owner packet
          }
        }
      } else {
        winner = candidates.front();  // greedy: lowest id
      }
      if (winner == flights.size()) continue;
      InFlight& f = flights[winner];
      if (++f.flits_moved >= f.packet.flits) {
        // Whole packet arrived at the next router.
        f.at_tile = next_hop(f.at_tile, f.packet.dst_tile);
        f.flits_moved = 0;
        if (f.at_tile == f.packet.dst_tile) {
          f.done = true;
          f.record.delivered = true;
          f.record.delivery_cycle = cycle;
        }
      }
    }
  }

  std::vector<NocDelivery> out;
  out.reserve(flights.size());
  for (auto& f : flights) out.push_back(f.record);
  return out;
}

std::uint64_t NocMesh::worst_case_latency(int hops, int flits,
                                          int owned_slots) const {
  if (owned_slots <= 0) {
    throw std::invalid_argument("worst_case_latency: no owned slots");
  }
  // Per hop: `flits` owned grants; each grant waits at most one full
  // period; plus one period of initial alignment.
  const std::uint64_t period =
      static_cast<std::uint64_t>(config_.tdm_period);
  const std::uint64_t grants_per_period =
      static_cast<std::uint64_t>(owned_slots);
  const std::uint64_t per_hop =
      ((static_cast<std::uint64_t>(flits) + grants_per_period - 1) /
           grants_per_period +
       1) *
      period;
  return static_cast<std::uint64_t>(hops) * per_hop + period;
}

}  // namespace convolve::compsoc
