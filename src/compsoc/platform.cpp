#include "convolve/compsoc/platform.hpp"

#include <algorithm>
#include <stdexcept>

namespace convolve::compsoc {

Platform::Platform(const PlatformConfig& config) : config_(config) {
  if (config_.tdm_period <= 0) {
    throw std::invalid_argument("Platform: tdm_period must be positive");
  }
}

int Platform::create_vep(const std::string& name,
                         const std::vector<int>& processor_slots,
                         const std::vector<int>& noc_slots,
                         const std::vector<int>& memory_slots) {
  Vep vep;
  vep.name = name;
  vep.slots = {processor_slots, noc_slots, memory_slots};
  for (auto& slots : vep.slots) {
    std::sort(slots.begin(), slots.end());
    for (int s : slots) {
      if (s < 0 || s >= config_.tdm_period) {
        throw std::invalid_argument("create_vep: slot out of range");
      }
    }
    if (std::adjacent_find(slots.begin(), slots.end()) != slots.end()) {
      throw std::invalid_argument("create_vep: duplicate slot");
    }
  }
  // Collision check against existing VEPs (a VEP is a *partition*).
  for (const auto& other : veps_) {
    for (int kind = 0; kind < kResourceKinds; ++kind) {
      for (int s : vep.slots[static_cast<std::size_t>(kind)]) {
        if (owns_slot(other, static_cast<ResourceKind>(kind), s)) {
          throw std::invalid_argument("create_vep: slot already owned by " +
                                      other.name);
        }
      }
    }
  }
  veps_.push_back(std::move(vep));
  return static_cast<int>(veps_.size()) - 1;
}

void Platform::load_application(int vep, Application app) {
  auto& v = veps_.at(static_cast<std::size_t>(vep));
  if (v.has_app) throw std::logic_error("load_application: VEP occupied");
  v.has_app = true;
  v.app = std::move(app);
}

bool Platform::owns_slot(const Vep& vep, ResourceKind kind, int slot) const {
  const auto& slots = vep.slots[static_cast<std::size_t>(kind)];
  return std::binary_search(slots.begin(), slots.end(), slot);
}

std::vector<CompletionRecord> Platform::run(std::uint64_t max_cycles) {
  struct AppState {
    std::size_t pc = 0;        // index into the program
    int remaining = 0;         // units left in the current item
    CompletionRecord record;
  };
  std::vector<AppState> states(veps_.size());
  for (std::size_t i = 0; i < veps_.size(); ++i) {
    states[i].record.app = veps_[i].name;
    states[i].record.grant_trace.resize(kResourceKinds);
    if (veps_[i].has_app && !veps_[i].app.program.empty()) {
      states[i].remaining = veps_[i].app.program[0].units;
    } else {
      states[i].record.finished = true;  // empty program finishes at once
    }
  }

  granted_slots_ = 0;
  total_slots_ = 0;

  for (std::uint64_t cycle = 0; cycle < max_cycles; ++cycle) {
    bool all_done = true;
    for (const auto& s : states) all_done &= s.record.finished;
    if (all_done) break;

    const int slot = static_cast<int>(cycle % static_cast<std::uint64_t>(
                                                  config_.tdm_period));
    // Each resource kind grants at most one requester per cycle.
    for (int kind = 0; kind < kResourceKinds; ++kind) {
      ++total_slots_;
      int grantee = -1;
      if (config_.policy == ArbitrationPolicy::kTdm) {
        // The slot's owner gets the grant iff it currently needs this
        // resource.
        for (std::size_t i = 0; i < veps_.size(); ++i) {
          if (!owns_slot(veps_[i], static_cast<ResourceKind>(kind), slot)) {
            continue;
          }
          const auto& st = states[i];
          if (!st.record.finished && veps_[i].has_app &&
              veps_[i].app.program[st.pc].resource ==
                  static_cast<ResourceKind>(kind)) {
            grantee = static_cast<int>(i);
          }
          break;  // exactly one owner per slot
        }
      } else {
        // Greedy: the lowest-id requester wins; timing now depends on who
        // else is on the chip.
        for (std::size_t i = 0; i < veps_.size(); ++i) {
          const auto& st = states[i];
          if (!st.record.finished && veps_[i].has_app &&
              veps_[i].app.program[st.pc].resource ==
                  static_cast<ResourceKind>(kind)) {
            grantee = static_cast<int>(i);
            break;
          }
        }
      }
      if (grantee >= 0) {
        ++granted_slots_;
        AppState& st = states[static_cast<std::size_t>(grantee)];
        st.record.grant_trace[static_cast<std::size_t>(kind)].push_back(cycle);
        if (--st.remaining == 0) {
          ++st.pc;
          if (st.pc >= veps_[static_cast<std::size_t>(grantee)]
                           .app.program.size()) {
            st.record.finished = true;
            st.record.finish_cycle = cycle;
          } else {
            st.remaining = veps_[static_cast<std::size_t>(grantee)]
                               .app.program[st.pc]
                               .units;
          }
        }
      }
    }
    // Stall accounting: an unfinished app that got no grant this cycle.
    for (auto& st : states) {
      if (st.record.finished) continue;
      bool granted_now = false;
      for (const auto& trace : st.record.grant_trace) {
        if (!trace.empty() && trace.back() == cycle) granted_now = true;
      }
      if (!granted_now) ++st.record.stall_cycles;
    }
  }

  std::vector<CompletionRecord> out;
  out.reserve(states.size());
  for (auto& s : states) out.push_back(std::move(s.record));
  return out;
}

std::uint64_t Platform::worst_case_completion_bound(int vep) const {
  const Vep& v = veps_.at(static_cast<std::size_t>(vep));
  if (!v.has_app) return 0;
  if (config_.policy != ArbitrationPolicy::kTdm) {
    throw std::logic_error(
        "worst_case_completion_bound: only defined for TDM arbitration");
  }
  const std::uint64_t period =
      static_cast<std::uint64_t>(config_.tdm_period);
  // In any full TDM period the VEP is offered `owned` slots of each
  // resource, so an item of `units` work finishes within
  // ceil(units/owned) periods plus one period of alignment slack.
  std::uint64_t bound = period;
  for (const WorkItem& item : v.app.program) {
    const std::uint64_t owned = static_cast<std::uint64_t>(
        v.slots[static_cast<std::size_t>(item.resource)].size());
    if (owned == 0) {
      throw std::logic_error(
          "worst_case_completion_bound: VEP owns no slot of a required "
          "resource; the program can never finish");
    }
    const std::uint64_t units = static_cast<std::uint64_t>(item.units);
    bound += ((units + owned - 1) / owned + 1) * period;
  }
  return bound;
}

double Platform::idle_slot_fraction() const {
  if (total_slots_ == 0) return 0.0;
  return 1.0 - static_cast<double>(granted_slots_) /
                   static_cast<double>(total_slots_);
}

Application make_realtime_app(const std::string& name, int iterations) {
  Application app;
  app.name = name;
  for (int i = 0; i < iterations; ++i) {
    app.program.push_back({ResourceKind::kProcessor, 3});
    app.program.push_back({ResourceKind::kMemoryPort, 1});
    app.program.push_back({ResourceKind::kProcessor, 2});
    app.program.push_back({ResourceKind::kNocLink, 1});
  }
  return app;
}

Application make_besteffort_app(const std::string& name, int volume) {
  Application app;
  app.name = name;
  for (int i = 0; i < volume; ++i) {
    app.program.push_back({ResourceKind::kMemoryPort, 4});
    app.program.push_back({ResourceKind::kNocLink, 2});
    app.program.push_back({ResourceKind::kProcessor, 1});
  }
  return app;
}

}  // namespace convolve::compsoc
