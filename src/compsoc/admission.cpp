#include "convolve/compsoc/admission.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace convolve::compsoc {

TdmAdmission::TdmAdmission(const Config& config) : config_(config) {
  if (config_.period <= 0) {
    throw std::invalid_argument("TdmAdmission: period must be positive");
  }
  if (config_.max_wait <= 0) {
    throw std::invalid_argument("TdmAdmission: max_wait must be positive");
  }
  slot_owner_.assign(static_cast<std::size_t>(config_.period), -1);
}

int TdmAdmission::add_tenant(const std::vector<int>& slots) {
  if (slots.empty()) {
    throw std::invalid_argument("TdmAdmission: tenant needs >= 1 slot");
  }
  for (int s : slots) {
    if (s < 0 || s >= config_.period) {
      throw std::invalid_argument("TdmAdmission: slot " + std::to_string(s) +
                                  " outside wheel");
    }
    if (slot_owner_[static_cast<std::size_t>(s)] != -1) {
      throw std::invalid_argument("TdmAdmission: slot " + std::to_string(s) +
                                  " already owned");
    }
  }
  const int id = tenant_count_++;
  for (int s : slots) slot_owner_[static_cast<std::size_t>(s)] = id;
  per_tenant_.emplace_back();
  return id;
}

TdmAdmission::Decision TdmAdmission::admit(int tenant) {
  if (tenant < 0 || tenant >= tenant_count_) {
    throw std::out_of_range("TdmAdmission: unknown tenant");
  }
  const int scan = std::min(config_.max_wait, config_.period);
  for (int d = 0; d < scan; ++d) {
    const int slot = (cursor_ + d) % config_.period;
    if (slot_owner_[static_cast<std::size_t>(slot)] == tenant) {
      cursor_ = (cursor_ + d + 1) % config_.period;
      ++admitted_;
      ++per_tenant_[static_cast<std::size_t>(tenant)].admitted;
      return {true, d};
    }
  }
  ++rejected_;
  ++per_tenant_[static_cast<std::size_t>(tenant)].rejected;
  return {false, scan};
}

std::uint64_t TdmAdmission::admitted_count(int tenant) const {
  if (tenant < 0 || tenant >= tenant_count_) {
    throw std::out_of_range("TdmAdmission: unknown tenant");
  }
  return per_tenant_[static_cast<std::size_t>(tenant)].admitted;
}

std::uint64_t TdmAdmission::rejected_count(int tenant) const {
  if (tenant < 0 || tenant >= tenant_count_) {
    throw std::out_of_range("TdmAdmission: unknown tenant");
  }
  return per_tenant_[static_cast<std::size_t>(tenant)].rejected;
}

double TdmAdmission::admitted_fraction() const {
  const std::uint64_t total = admitted_ + rejected_;
  return total == 0
             ? 1.0
             : static_cast<double>(admitted_) / static_cast<double>(total);
}

}  // namespace convolve::compsoc
