#include "convolve/crypto/aead.hpp"

#include <stdexcept>

#include "convolve/crypto/aes.hpp"
#include "convolve/crypto/hmac.hpp"

namespace convolve::crypto {

namespace {

struct DerivedKeys {
  Bytes enc;  // 32 bytes
  Bytes mac;  // 32 bytes
};

DerivedKeys derive(ByteView key) {
  const Bytes okm =
      hkdf(as_bytes("convolve-aead-v1"), key, as_bytes("enc|mac"), 64);
  DerivedKeys out;
  out.enc.assign(okm.begin(), okm.begin() + 32);
  out.mac.assign(okm.begin() + 32, okm.end());
  return out;
}

Bytes compute_tag(ByteView mac_key, ByteView nonce, ByteView aad,
                  ByteView ciphertext) {
  // Unambiguous framing: lengths are included.
  std::uint8_t lens[16];
  store_le64(lens, aad.size());
  store_le64(lens + 8, ciphertext.size());
  const Bytes msg = concat({nonce, {lens, 16}, aad, ciphertext});
  Bytes tag = hmac_sha512(mac_key, msg);
  tag.resize(32);
  return tag;
}

}  // namespace

SealedBox aead_seal(ByteView key, ByteView nonce12, ByteView plaintext,
                    ByteView associated_data) {
  if (key.size() != 32) throw std::invalid_argument("aead_seal: key != 32B");
  if (nonce12.size() != 12) {
    throw std::invalid_argument("aead_seal: nonce != 12B");
  }
  const DerivedKeys keys = derive(key);
  SealedBox box;
  box.nonce.assign(nonce12.begin(), nonce12.end());
  box.ciphertext = aes256_ctr(keys.enc, nonce12, 0, plaintext);
  box.tag = compute_tag(keys.mac, box.nonce, associated_data, box.ciphertext);
  return box;
}

std::optional<Bytes> aead_open(ByteView key, const SealedBox& box,
                               ByteView associated_data) {
  if (key.size() != 32 || box.nonce.size() != 12 || box.tag.size() != 32) {
    return std::nullopt;
  }
  const DerivedKeys keys = derive(key);
  const Bytes expected =
      compute_tag(keys.mac, box.nonce, associated_data, box.ciphertext);
  if (!ct_equal(expected, box.tag)) return std::nullopt;
  return aes256_ctr(keys.enc, box.nonce, 0, box.ciphertext);
}

Bytes aead_serialize(const SealedBox& box) {
  return concat({box.nonce, box.tag, box.ciphertext});
}

std::optional<SealedBox> aead_deserialize(ByteView data) {
  if (data.size() < 44) return std::nullopt;
  SealedBox box;
  box.nonce.assign(data.begin(), data.begin() + 12);
  box.tag.assign(data.begin() + 12, data.begin() + 44);
  box.ciphertext.assign(data.begin() + 44, data.end());
  return box;
}

}  // namespace convolve::crypto
