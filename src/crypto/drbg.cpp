#include "convolve/crypto/drbg.hpp"

#include <stdexcept>

#include "convolve/crypto/keccak.hpp"

namespace convolve::crypto {

ShakeDrbg::ShakeDrbg(ByteView seed, ByteView personalization) {
  if (seed.size() < 16) {
    throw std::invalid_argument("ShakeDrbg: seed must be >= 16 bytes");
  }
  Shake x(Shake::Variant::k256);
  x.absorb(as_bytes("convolve-drbg-init-v1"));
  x.absorb(seed);
  x.absorb(personalization);
  state_ = x.squeeze(64);
}

Bytes ShakeDrbg::generate(std::size_t n) {
  Shake x(Shake::Variant::k256);
  std::uint8_t counter_le[8];
  store_le64(counter_le, counter_++);
  x.absorb(as_bytes("convolve-drbg-gen-v1"));
  x.absorb(state_);
  x.absorb({counter_le, 8});
  // First 64 bytes ratchet the state (forward security), the rest is
  // output.
  Bytes block = x.squeeze(64 + n);
  secure_wipe(state_);
  state_.assign(block.begin(), block.begin() + 64);
  Bytes out(block.begin() + 64, block.end());
  generated_ += n;
  return out;
}

void ShakeDrbg::reseed(ByteView entropy) {
  Shake x(Shake::Variant::k256);
  x.absorb(as_bytes("convolve-drbg-reseed-v1"));
  x.absorb(state_);
  x.absorb(entropy);
  Bytes next = x.squeeze(64);
  secure_wipe(state_);
  state_ = std::move(next);
}

}  // namespace convolve::crypto
