// HMAC-SHA-512 and HKDF (RFC 2104 / RFC 5869). The TEE derives its entire
// key hierarchy through HKDF with explicit domain-separation labels, and the
// sealing AEAD uses HMAC as its authenticator.
#pragma once

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

Bytes hmac_sha512(ByteView key, ByteView message);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand to `out_len` bytes (out_len <= 255 * 64).
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t out_len);

/// Convenience: extract-then-expand.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t out_len);

}  // namespace convolve::crypto
