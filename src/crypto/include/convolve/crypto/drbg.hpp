// Deterministic random bit generator built on SHAKE-256.
//
// The masking gadgets and the TEE consume large amounts of fresh
// randomness (Table II reports up to 48,588 bits per cycle at order 2); on
// a real SoC that stream comes from a DRBG seeded by a TRNG. This is a
// simple forward-secure sponge construction: each reseed or generate call
// ratchets the internal state, so compromise of the current state does not
// reveal past outputs.
#pragma once

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

class ShakeDrbg {
 public:
  /// Instantiate from seed material (>= 16 bytes) and an optional
  /// personalization string (domain separation between consumers).
  ShakeDrbg(ByteView seed, ByteView personalization = {});

  /// Generate `n` output bytes and ratchet the state.
  Bytes generate(std::size_t n);

  /// Mix fresh entropy into the state.
  void reseed(ByteView entropy);

  /// Number of output bytes produced since instantiation.
  std::uint64_t bytes_generated() const { return generated_; }

 private:
  Bytes state_;  // 64-byte chaining value
  std::uint64_t counter_ = 0;
  std::uint64_t generated_ = 0;
};

}  // namespace convolve::crypto
