// Keccak-f[1600] sponge, SHA-3 fixed-output hashes and SHAKE XOFs.
//
// SHA-3/SHAKE is the workhorse of the CONVOLVE security stack: Keystone-style
// boot measurement, enclave measurement, Kyber's and Dilithium's internal
// hashing/sampling, and the HADES Keccak case study all build on it. The
// implementation follows FIPS 202 and is validated against NIST example
// vectors in tests/crypto/test_keccak.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

/// The Keccak-f[1600] permutation over a 5x5 lane state. Exposed publicly so
/// the HADES Keccak template's cost model and the masking case study can
/// refer to the real round structure.
void keccak_f1600(std::array<std::uint64_t, 25>& state);

/// Incremental Keccak sponge with byte-granular absorb/squeeze.
class KeccakSponge {
 public:
  /// `rate_bytes` must be a positive multiple of 8 below 200.
  /// `domain_suffix` is the bits appended before padding (0x06 for SHA-3,
  /// 0x1f for SHAKE).
  KeccakSponge(std::size_t rate_bytes, std::uint8_t domain_suffix);

  void absorb(ByteView data);
  /// Finish absorbing; further absorb() calls are invalid.
  void finalize();
  /// Squeeze output bytes; implicitly finalizes on first call.
  void squeeze(std::span<std::uint8_t> out);

  std::size_t rate() const { return rate_; }

 private:
  std::array<std::uint64_t, 25> state_{};
  std::size_t rate_ = 0;
  std::size_t offset_ = 0;  // byte position within the current rate block
  std::uint8_t suffix_ = 0;
  bool squeezing_ = false;

  void xor_byte_into_state(std::size_t pos, std::uint8_t b);
  std::uint8_t state_byte(std::size_t pos) const;
};

// One-shot hashes -------------------------------------------------------

Bytes sha3_256(ByteView data);
Bytes sha3_512(ByteView data);
Bytes shake128(ByteView data, std::size_t out_len);
Bytes shake256(ByteView data, std::size_t out_len);

/// Incremental SHAKE XOF (needed by Kyber/Dilithium expanders, which
/// squeeze a data-dependent number of bytes).
class Shake {
 public:
  enum class Variant { k128, k256 };
  explicit Shake(Variant v)
      : sponge_(v == Variant::k128 ? 168 : 136, 0x1f) {}

  void absorb(ByteView data) { sponge_.absorb(data); }
  void squeeze(std::span<std::uint8_t> out) { sponge_.squeeze(out); }
  Bytes squeeze(std::size_t n) {
    Bytes out(n);
    sponge_.squeeze(out);
    return out;
  }

 private:
  KeccakSponge sponge_;
};

}  // namespace convolve::crypto
