// AES-128/AES-256 block cipher (FIPS 197) plus a CTR-mode stream helper.
//
// CONVOLVE uses AES-256 for payload encryption (the HADES case study in
// Table II of the paper targets exactly this algorithm); the TEE's data
// sealing builds an encrypt-then-MAC AEAD on top of AES-256-CTR. The S-box
// table is computed at static-init time from the GF(2^8) inverse so it is
// derived, not transcribed; the cipher itself is constant-time: SubBytes
// runs the bitsliced Boyar-Peralta circuit and the inverse S-box uses a
// full-table scan (detail/aes_core.hpp), so no secret ever indexes memory.
#pragma once

#include <array>
#include <cstdint>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

/// AES with a 128- or 256-bit key. Encrypt and decrypt single 16-byte blocks.
class Aes {
 public:
  enum class KeySize { k128, k256 };

  Aes(KeySize size, ByteView key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  int rounds() const { return rounds_; }

 private:
  int rounds_ = 0;
  // Round keys as bytes: (rounds+1) * 16.
  std::array<std::uint8_t, 15 * 16> round_keys_{};
};

/// AES-256-CTR keystream XOR. `nonce` is 12 bytes; the 4-byte big-endian
/// block counter starts at `initial_counter`. Encryption and decryption are
/// the same operation.
Bytes aes256_ctr(ByteView key, ByteView nonce, std::uint32_t initial_counter,
                 ByteView data);

/// The derived (not transcribed) S-box tables, 256 bytes each. Exposed so
/// the static analyzer can cross-check the bitsliced S-box circuit and so
/// lint harnesses can demonstrate what a *naive* table lookup looks like.
const std::uint8_t* aes_sbox_table();
const std::uint8_t* aes_inv_sbox_table();

}  // namespace convolve::crypto
