// AES-128/AES-256 block cipher (FIPS 197) plus a CTR-mode stream helper.
//
// CONVOLVE uses AES-256 for payload encryption (the HADES case study in
// Table II of the paper targets exactly this algorithm); the TEE's data
// sealing builds an encrypt-then-MAC AEAD on top of AES-256-CTR. The S-box
// is computed at static-init time from the GF(2^8) inverse so the table is
// derived, not transcribed.
#pragma once

#include <array>
#include <cstdint>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

/// AES with a 128- or 256-bit key. Encrypt and decrypt single 16-byte blocks.
class Aes {
 public:
  enum class KeySize { k128, k256 };

  Aes(KeySize size, ByteView key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  int rounds() const { return rounds_; }

 private:
  int rounds_ = 0;
  // Round keys as bytes: (rounds+1) * 16.
  std::array<std::uint8_t, 15 * 16> round_keys_{};
};

/// AES-256-CTR keystream XOR. `nonce` is 12 bytes; the 4-byte big-endian
/// block counter starts at `initial_counter`. Encryption and decryption are
/// the same operation.
Bytes aes256_ctr(ByteView key, ByteView nonce, std::uint32_t initial_counter,
                 ByteView data);

}  // namespace convolve::crypto
