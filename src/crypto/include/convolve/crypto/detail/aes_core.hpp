// AES-128/256 block cipher core, generic over the byte type.
//
// Every step is branch-free and index-free with respect to the key and
// state: SubBytes is the bitsliced Boyar-Peralta circuit, MixColumns uses a
// branchless xtime, and ShiftRows/AddRoundKey touch bytes only at public
// positions. Production code (aes.cpp) instantiates with std::uint8_t; the
// constant-time lint instantiates with analysis::Tainted<std::uint8_t> and
// asserts that no secret-dependent branch, table index or variable shift
// was recorded -- over exactly this code.
#pragma once

#include <cstddef>
#include <cstdint>

#include "convolve/crypto/detail/aes_sbox_ct.hpp"

namespace convolve::crypto::detail {

inline constexpr std::uint8_t kAesRcon[15] = {0x00, 0x01, 0x02, 0x04, 0x08,
                                              0x10, 0x20, 0x40, 0x80, 0x1b,
                                              0x36, 0x6c, 0xd8, 0xab, 0x4d};

/// Multiply a state byte by a public GF(2^8) constant (AES polynomial),
/// branchlessly: the conditional reduction becomes an arithmetic mask.
template <class B>
B gf_mul_const(B a, int c) {
  B r(0);
  while (c != 0) {
    if (c & 1) r = r ^ a;  // public branch: c is a compile-time constant
    const B hi = (a >> 7) & B(1);
    a = B((a << 1) ^ ((B(0) - hi) & B(0x1b)));
    c >>= 1;
  }
  return r;
}

// State is column-major: s[4*c + r] is row r, column c (FIPS 197).

template <class B>
void aes_shift_rows(B s[16]) {
  B t[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) t[4 * c + r] = s[4 * ((c + r) % 4) + r];
  }
  for (int i = 0; i < 16; ++i) s[i] = t[i];
}

template <class B>
void aes_inv_shift_rows(B s[16]) {
  B t[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) t[4 * ((c + r) % 4) + r] = s[4 * c + r];
  }
  for (int i = 0; i < 16; ++i) s[i] = t[i];
}

template <class B>
void aes_mix_columns(B s[16]) {
  for (int c = 0; c < 4; ++c) {
    B* col = s + 4 * c;
    const B a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gf_mul_const(a0, 2) ^ gf_mul_const(a1, 3) ^ a2 ^ a3;
    col[1] = a0 ^ gf_mul_const(a1, 2) ^ gf_mul_const(a2, 3) ^ a3;
    col[2] = a0 ^ a1 ^ gf_mul_const(a2, 2) ^ gf_mul_const(a3, 3);
    col[3] = gf_mul_const(a0, 3) ^ a1 ^ a2 ^ gf_mul_const(a3, 2);
  }
}

template <class B>
void aes_inv_mix_columns(B s[16]) {
  for (int c = 0; c < 4; ++c) {
    B* col = s + 4 * c;
    const B a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gf_mul_const(a0, 14) ^ gf_mul_const(a1, 11) ^
             gf_mul_const(a2, 13) ^ gf_mul_const(a3, 9);
    col[1] = gf_mul_const(a0, 9) ^ gf_mul_const(a1, 14) ^
             gf_mul_const(a2, 11) ^ gf_mul_const(a3, 13);
    col[2] = gf_mul_const(a0, 13) ^ gf_mul_const(a1, 9) ^
             gf_mul_const(a2, 14) ^ gf_mul_const(a3, 11);
    col[3] = gf_mul_const(a0, 11) ^ gf_mul_const(a1, 13) ^
             gf_mul_const(a2, 9) ^ gf_mul_const(a3, 14);
  }
}

template <class B>
void aes_add_round_key(B s[16], const B* rk) {
  for (int i = 0; i < 16; ++i) s[i] = s[i] ^ rk[i];
}

/// FIPS 197 key expansion. `key` has 4*nk bytes, `w` receives
/// 16*(rounds+1) bytes of round keys.
template <class B>
void aes_key_expand(const B* key, std::size_t nk, int rounds, B* w) {
  const std::size_t total_words = 4u * static_cast<std::size_t>(rounds + 1);
  for (std::size_t i = 0; i < 4 * nk; ++i) w[i] = key[i];
  for (std::size_t i = nk; i < total_words; ++i) {
    B temp[4];
    for (int j = 0; j < 4; ++j) temp[j] = w[4 * (i - 1) + std::size_t(j)];
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      const B t0 = temp[0];
      temp[0] = temp[1];
      temp[1] = temp[2];
      temp[2] = temp[3];
      temp[3] = t0;
      aes_sub_bytes_ct(temp, 4);
      temp[0] = temp[0] ^ B(kAesRcon[i / nk]);
    } else if (nk > 6 && i % nk == 4) {
      aes_sub_bytes_ct(temp, 4);
    }
    for (int j = 0; j < 4; ++j) {
      w[4 * i + std::size_t(j)] = w[4 * (i - nk) + std::size_t(j)] ^ temp[j];
    }
  }
}

template <class B>
void aes_encrypt_block(const B* round_keys, int rounds, const B in[16],
                       B out[16]) {
  B s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i];
  aes_add_round_key(s, round_keys);
  for (int round = 1; round < rounds; ++round) {
    aes_sub_bytes_ct(s, 16);
    aes_shift_rows(s);
    aes_mix_columns(s);
    aes_add_round_key(s, round_keys + 16 * round);
  }
  aes_sub_bytes_ct(s, 16);
  aes_shift_rows(s);
  aes_add_round_key(s, round_keys + 16 * rounds);
  for (int i = 0; i < 16; ++i) out[i] = s[i];
}

template <class B>
void aes_decrypt_block(const B* round_keys, int rounds,
                       const std::uint8_t inv_sbox[256], const B in[16],
                       B out[16]) {
  B s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i];
  aes_add_round_key(s, round_keys + 16 * rounds);
  for (int round = rounds - 1; round >= 1; --round) {
    aes_inv_shift_rows(s);
    for (int i = 0; i < 16; ++i) s[i] = ct_table_lookup256(inv_sbox, s[i]);
    aes_add_round_key(s, round_keys + 16 * round);
    aes_inv_mix_columns(s);
  }
  aes_inv_shift_rows(s);
  for (int i = 0; i < 16; ++i) s[i] = ct_table_lookup256(inv_sbox, s[i]);
  aes_add_round_key(s, round_keys);
  for (int i = 0; i < 16; ++i) out[i] = s[i];
}

}  // namespace convolve::crypto::detail
