// Number-theoretic transform shared by Kyber (q = 3329, int16 coefficients,
// layers down to len = 2) and Dilithium (q = 8380417, int32 coefficients,
// layers down to len = 1), generic over the coefficient type.
//
// NOTE: the modular reduction uses `%` and a sign test, i.e. it is NOT
// constant-time -- division latency and the branch both depend on the
// operand. The taint-tracking instantiation flags exactly these hazards
// when the lint drives a secret polynomial through the transform; the
// verdict documents a real property of this reference implementation.
#pragma once

#include <cstdint>

namespace convolve::crypto::detail {

/// Reduce into [0, q). TC = coefficient type, TW = widened type the
/// arithmetic is done in.
template <class TC, class TW>
TC ntt_mod(TW a, std::int64_t q) {
  TW r = TW(a % TW(q));
  if (r < TW(0)) r = TW(r + TW(q));
  return TC(r);
}

template <class TC, class TW>
TC ntt_mul(TW a, TW b, std::int64_t q) {
  return ntt_mod<TC, TW>(TW(a * b), q);
}

/// Cooley-Tukey forward NTT, consuming bit-reversed twiddles zetas[1..]
/// in order. `min_len` is 2 for Kyber's 128 degree-1 factors, 1 for
/// Dilithium's full splitting.
template <class TC, class TW, class Z>
void ntt_forward(TC* f, int n, int min_len, const Z* zetas, std::int64_t q) {
  int k = 1;
  for (int len = n / 2; len >= min_len; len /= 2) {
    for (int start = 0; start < n; start += 2 * len) {
      const Z zeta = zetas[k++];
      for (int j = start; j < start + len; ++j) {
        const TC t = ntt_mul<TC, TW>(TW(zeta), TW(f[j + len]), q);
        f[j + len] = ntt_mod<TC, TW>(TW(f[j]) - TW(t), q);
        f[j] = ntt_mod<TC, TW>(TW(f[j]) + TW(t), q);
      }
    }
  }
}

/// Gentleman-Sande inverse, undoing ntt_forward layer by layer, then
/// scaling by n_inv = (n / min_len ... ) -- the caller passes the exact
/// inverse scale its parameter set requires.
template <class TC, class TW, class Z>
void ntt_inverse(TC* f, int n, int min_len, const Z* inv_zetas, std::int64_t q,
                 Z n_inv) {
  for (int len = min_len; len <= n / 2; len *= 2) {
    for (int start = 0; start < n; start += 2 * len) {
      const int k = (n / 2) / len + start / (2 * len);
      const Z zeta_inv = inv_zetas[k];
      for (int j = start; j < start + len; ++j) {
        const TC t = f[j];
        f[j] = ntt_mod<TC, TW>(TW(t) + TW(f[j + len]), q);
        f[j + len] = ntt_mul<TC, TW>(TW(zeta_inv), TW(t) - TW(f[j + len]), q);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    f[i] = ntt_mul<TC, TW>(TW(n_inv), TW(f[i]), q);
  }
}

}  // namespace convolve::crypto::detail
