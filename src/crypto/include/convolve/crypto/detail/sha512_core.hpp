// SHA-512 compression and one-shot hashing plus HMAC, generic over the
// word/byte types.
//
// The compression function is pure 64-bit arithmetic with public rotation
// amounts and public round-constant indices; padding depends only on the
// message *length*. Production sha512.cpp/hmac.cpp instantiate with plain
// integers; the constant-time lint instantiates with tainted types and a
// secret key to certify the absence of timing hazards on this exact code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace convolve::crypto::detail {

inline constexpr std::uint64_t kSha512Init[8] = {
    0x6a09e667f3bcc908ull, 0xbb67ae8584caa73bull, 0x3c6ef372fe94f82bull,
    0xa54ff53a5f1d36f1ull, 0x510e527fade682d1ull, 0x9b05688c2b3e6c1full,
    0x1f83d9abfb41bd6bull, 0x5be0cd19137e2179ull,
};

inline constexpr std::uint64_t kSha512K[80] = {
    0x428a2f98d728ae22ull, 0x7137449123ef65cdull, 0xb5c0fbcfec4d3b2full,
    0xe9b5dba58189dbbcull, 0x3956c25bf348b538ull, 0x59f111f1b605d019ull,
    0x923f82a4af194f9bull, 0xab1c5ed5da6d8118ull, 0xd807aa98a3030242ull,
    0x12835b0145706fbeull, 0x243185be4ee4b28cull, 0x550c7dc3d5ffb4e2ull,
    0x72be5d74f27b896full, 0x80deb1fe3b1696b1ull, 0x9bdc06a725c71235ull,
    0xc19bf174cf692694ull, 0xe49b69c19ef14ad2ull, 0xefbe4786384f25e3ull,
    0x0fc19dc68b8cd5b5ull, 0x240ca1cc77ac9c65ull, 0x2de92c6f592b0275ull,
    0x4a7484aa6ea6e483ull, 0x5cb0a9dcbd41fbd4ull, 0x76f988da831153b5ull,
    0x983e5152ee66dfabull, 0xa831c66d2db43210ull, 0xb00327c898fb213full,
    0xbf597fc7beef0ee4ull, 0xc6e00bf33da88fc2ull, 0xd5a79147930aa725ull,
    0x06ca6351e003826full, 0x142929670a0e6e70ull, 0x27b70a8546d22ffcull,
    0x2e1b21385c26c926ull, 0x4d2c6dfc5ac42aedull, 0x53380d139d95b3dfull,
    0x650a73548baf63deull, 0x766a0abb3c77b2a8ull, 0x81c2c92e47edaee6ull,
    0x92722c851482353bull, 0xa2bfe8a14cf10364ull, 0xa81a664bbc423001ull,
    0xc24b8b70d0f89791ull, 0xc76c51a30654be30ull, 0xd192e819d6ef5218ull,
    0xd69906245565a910ull, 0xf40e35855771202aull, 0x106aa07032bbd1b8ull,
    0x19a4c116b8d2d0c8ull, 0x1e376c085141ab53ull, 0x2748774cdf8eeb99ull,
    0x34b0bcb5e19b48a8ull, 0x391c0cb3c5c95a63ull, 0x4ed8aa4ae3418acbull,
    0x5b9cca4f7763e373ull, 0x682e6ff3d6b2b8a3ull, 0x748f82ee5defb2fcull,
    0x78a5636f43172f60ull, 0x84c87814a1f0ab72ull, 0x8cc702081a6439ecull,
    0x90befffa23631e28ull, 0xa4506cebde82bde9ull, 0xbef9a3f7b2c67915ull,
    0xc67178f2e372532bull, 0xca273eceea26619cull, 0xd186b8c721c0c207ull,
    0xeada7dd6cde0eb1eull, 0xf57d4f7fee6ed178ull, 0x06f067aa72176fbaull,
    0x0a637dc5a2c898a6ull, 0x113f9804bef90daeull, 0x1b710b35131c471bull,
    0x28db77f523047d84ull, 0x32caab7b40c72493ull, 0x3c9ebe0a15c9bebcull,
    0x431d67c49c100d4cull, 0x4cc5d4becb3e42b6ull, 0x597f299cfc657e2aull,
    0x5fcb6fab3ad6faecull, 0x6c44198c4a475817ull,
};

template <class W>
constexpr W sha512_rotr(W x, int n) {
  return W((x >> n) | (x << (64 - n)));
}

/// One SHA-512 compression round over a 128-byte block of `B`-typed bytes.
template <class W, class B>
void sha512_compress(W state[8], const B* block) {
  W w[80];
  for (int i = 0; i < 16; ++i) {
    W v(0);
    for (int k = 0; k < 8; ++k) v = W((v << 8) | W(block[8 * i + k]));
    w[i] = v;
  }
  for (int i = 16; i < 80; ++i) {
    const W s0 = sha512_rotr(w[i - 15], 1) ^ sha512_rotr(w[i - 15], 8) ^
                 (w[i - 15] >> 7);
    const W s1 = sha512_rotr(w[i - 2], 19) ^ sha512_rotr(w[i - 2], 61) ^
                 (w[i - 2] >> 6);
    w[i] = W(s1 + w[i - 7] + s0 + w[i - 16]);
  }
  W a = state[0], b = state[1], c = state[2], d = state[3];
  W e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 80; ++i) {
    const W big1 =
        sha512_rotr(e, 14) ^ sha512_rotr(e, 18) ^ sha512_rotr(e, 41);
    const W t1 = W(h + big1 + ((e & f) ^ (~e & g)) + W(kSha512K[i]) + w[i]);
    const W big0 =
        sha512_rotr(a, 28) ^ sha512_rotr(a, 34) ^ sha512_rotr(a, 39);
    const W t2 = W(big0 + ((a & b) ^ (a & c) ^ (b & c)));
    h = g;
    g = f;
    f = e;
    e = W(d + t1);
    d = c;
    c = b;
    b = a;
    a = W(t1 + t2);
  }
  state[0] = W(state[0] + a);
  state[1] = W(state[1] + b);
  state[2] = W(state[2] + c);
  state[3] = W(state[3] + d);
  state[4] = W(state[4] + e);
  state[5] = W(state[5] + f);
  state[6] = W(state[6] + g);
  state[7] = W(state[7] + h);
}

/// One-shot SHA-512 with standard Merkle-Damgard padding (the padding is a
/// function of the public length only). Writes 64 bytes to `out`.
template <class W, class B>
void sha512_hash_ct(const B* data, std::size_t n, B out[64]) {
  W state[8];
  for (int i = 0; i < 8; ++i) state[i] = W(kSha512Init[i]);

  std::size_t off = 0;
  while (n - off >= 128) {
    sha512_compress(state, data + off);
    off += 128;
  }
  const std::size_t rem = n - off;
  std::vector<B> last(rem < 112 ? 128 : 256, B(0));
  for (std::size_t i = 0; i < rem; ++i) last[i] = data[off + i];
  last[rem] = B(0x80);
  const std::uint64_t bit_len = static_cast<std::uint64_t>(n) * 8;
  for (int i = 0; i < 8; ++i) {
    last[last.size() - 8 + std::size_t(i)] =
        B(static_cast<std::uint8_t>(bit_len >> (8 * (7 - i))));
  }
  for (std::size_t b = 0; b < last.size(); b += 128) {
    sha512_compress(state, last.data() + b);
  }
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 8; ++k) {
      out[8 * i + k] = B((state[i] >> (8 * (7 - k))) & W(0xff));
    }
  }
}

/// HMAC-SHA-512 over `B`-typed bytes; the key-length test is public.
template <class W, class B>
void hmac_sha512_ct(const B* key, std::size_t klen, const B* msg,
                    std::size_t mlen, B out[64]) {
  constexpr std::size_t kBlock = 128;
  std::vector<B> k(kBlock, B(0));
  if (klen > kBlock) {
    B kh[64];
    sha512_hash_ct<W>(key, klen, kh);
    for (int i = 0; i < 64; ++i) k[std::size_t(i)] = kh[i];
  } else {
    for (std::size_t i = 0; i < klen; ++i) k[i] = key[i];
  }
  std::vector<B> inner(kBlock + mlen, B(0));
  for (std::size_t i = 0; i < kBlock; ++i) inner[i] = k[i] ^ B(0x36);
  for (std::size_t i = 0; i < mlen; ++i) inner[kBlock + i] = msg[i];
  B inner_digest[64];
  sha512_hash_ct<W>(inner.data(), inner.size(), inner_digest);

  std::vector<B> outer(kBlock + 64, B(0));
  for (std::size_t i = 0; i < kBlock; ++i) outer[i] = k[i] ^ B(0x5c);
  for (int i = 0; i < 64; ++i) outer[kBlock + std::size_t(i)] = inner_digest[i];
  sha512_hash_ct<W>(outer.data(), outer.size(), out);
}

}  // namespace convolve::crypto::detail
