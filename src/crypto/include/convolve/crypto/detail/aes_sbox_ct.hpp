// Constant-time AES S-box as a bitsliced tower-field circuit.
//
// The forward S-box is evaluated as a fixed straight-line program of
// XOR/AND/NOT over eight bit-planes (36 AND, 155 XOR, 4 NOT). The program
// is machine-derived, Boyar-Peralta style, from the tower decomposition
// GF(((2^2)^2)^2) -- GF(4) with z^2 = z + 1, GF(16) = GF(4)[y]/(y^2+y+z),
// GF(256) = GF(16)[w]/(w^2+w+lambda) -- composed with a numerically solved
// basis-change isomorphism from the AES polynomial basis, and verified by
// the generator against the table S-box on all 256 inputs. There is no
// table lookup and no branch, so the evaluation is constant-time for any
// word type W that implements ^, & and ~ -- including the taint-tracking
// types of the static analyzer and the wire-builder type that turns this
// very program into the gate netlist the symbolic probing verifier checks.
// Production AES instantiates it with plain integers; all instantiations
// share one gate list, so verifying the netlist verifies the shipped code
// path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace convolve::crypto::detail {

/// Bit-plane word used when bitslicing `B`-typed bytes (16 lanes needed).
/// Specialize for custom byte types (the taint tracker does).
template <class B>
struct PlaneWordFor;

template <>
struct PlaneWordFor<std::uint8_t> {
  using type = std::uint16_t;
};

/// Forward S-box over bit planes. u[0] is the plane of the most
/// significant input bit, u[7] the least significant; on return u[i]
/// holds output bit 7-i for every lane. The body below is generated (see
/// file header); edit the generator, not the gate list.
template <class W>
void aes_sbox_planes(W u[8]) {
  const W x0 = u[7] ^ u[6];
  const W x1 = u[5] ^ u[3];
  const W x2 = x1 ^ u[2];
  const W x3 = u[5] ^ u[4];
  const W x4 = x3 ^ u[3];
  const W x5 = x4 ^ u[0];
  const W x6 = u[4] ^ u[2];
  const W x7 = x6 ^ u[1];
  const W x8 = u[3] ^ u[2];
  const W x9 = x8 ^ u[1];
  const W x10 = u[5] ^ u[4];
  const W x11 = u[6] ^ u[5];
  const W x12 = x11 ^ u[4];
  const W x13 = x12 ^ u[3];
  const W x14 = x13 ^ u[1];
  const W x15 = x14 ^ u[0];
  const W x16 = u[2] ^ u[0];
  const W x17 = x5 ^ x7;
  const W x18 = x7 ^ x17;
  const W x19 = x0 ^ x2;
  const W x20 = x2 ^ x18;
  const W x21 = x19 ^ x7;
  const W x22 = x7 ^ x5;
  const W x23 = x16 ^ x15;
  const W x24 = x23 & x22;
  const W x25 = x16 & x7;
  const W x26 = x15 & x5;
  const W x27 = x24 ^ x26;
  const W x28 = x26 ^ x25;
  const W x29 = x2 ^ x0;
  const W x30 = x10 ^ x9;
  const W x31 = x30 & x29;
  const W x32 = x10 & x2;
  const W x33 = x9 & x0;
  const W x34 = x31 ^ x33;
  const W x35 = x33 ^ x32;
  const W x36 = x7 ^ x2;
  const W x37 = x5 ^ x0;
  const W x38 = x16 ^ x10;
  const W x39 = x15 ^ x9;
  const W x40 = x36 ^ x37;
  const W x41 = x38 ^ x39;
  const W x42 = x41 & x40;
  const W x43 = x38 & x36;
  const W x44 = x39 & x37;
  const W x45 = x42 ^ x44;
  const W x46 = x44 ^ x43;
  const W x47 = x45 ^ x34;
  const W x48 = x46 ^ x35;
  const W x49 = x27 ^ x28;
  const W x50 = x34 ^ x49;
  const W x51 = x35 ^ x27;
  const W x52 = x15 ^ x16;
  const W x53 = x16 ^ x52;
  const W x54 = x9 ^ x10;
  const W x55 = x10 ^ x53;
  const W x56 = x54 ^ x16;
  const W x57 = x16 ^ x52;
  const W x58 = x57 ^ x55;
  const W x59 = x58 ^ x56;
  const W x60 = x16 ^ x55;
  const W x61 = x16 ^ x52;
  const W x62 = x59 ^ x47;
  const W x63 = x60 ^ x48;
  const W x64 = x52 ^ x50;
  const W x65 = x61 ^ x51;
  const W x66 = x62 ^ x7;
  const W x67 = x63 ^ x17;
  const W x68 = x64 ^ x20;
  const W x69 = x65 ^ x21;
  const W x70 = x69 ^ x68;
  const W x71 = x68 ^ x69;
  const W x72 = x66 ^ x67;
  const W x73 = x72 & x71;
  const W x74 = x66 & x68;
  const W x75 = x67 & x69;
  const W x76 = x73 ^ x75;
  const W x77 = x75 ^ x74;
  const W x78 = x67 ^ x66;
  const W x79 = x66 ^ x78;
  const W x80 = x79 ^ x76;
  const W x81 = x66 ^ x77;
  const W x82 = x80 ^ x68;
  const W x83 = x81 ^ x70;
  const W x84 = x83 ^ x82;
  const W x85 = x82 ^ x84;
  const W x86 = x66 ^ x67;
  const W x87 = x86 & x85;
  const W x88 = x66 & x82;
  const W x89 = x67 & x84;
  const W x90 = x87 ^ x89;
  const W x91 = x89 ^ x88;
  const W x92 = x66 ^ x68;
  const W x93 = x67 ^ x69;
  const W x94 = x82 ^ x84;
  const W x95 = x92 ^ x93;
  const W x96 = x95 & x94;
  const W x97 = x92 & x82;
  const W x98 = x93 & x84;
  const W x99 = x96 ^ x98;
  const W x100 = x98 ^ x97;
  const W x101 = x90 ^ x91;
  const W x102 = x16 ^ x15;
  const W x103 = x102 & x101;
  const W x104 = x16 & x90;
  const W x105 = x15 & x91;
  const W x106 = x103 ^ x105;
  const W x107 = x105 ^ x104;
  const W x108 = x99 ^ x100;
  const W x109 = x10 ^ x9;
  const W x110 = x109 & x108;
  const W x111 = x10 & x99;
  const W x112 = x9 & x100;
  const W x113 = x110 ^ x112;
  const W x114 = x112 ^ x111;
  const W x115 = x90 ^ x99;
  const W x116 = x91 ^ x100;
  const W x117 = x16 ^ x10;
  const W x118 = x15 ^ x9;
  const W x119 = x115 ^ x116;
  const W x120 = x117 ^ x118;
  const W x121 = x120 & x119;
  const W x122 = x117 & x115;
  const W x123 = x118 & x116;
  const W x124 = x121 ^ x123;
  const W x125 = x123 ^ x122;
  const W x126 = x124 ^ x113;
  const W x127 = x125 ^ x114;
  const W x128 = x106 ^ x107;
  const W x129 = x113 ^ x128;
  const W x130 = x114 ^ x106;
  const W x131 = x16 ^ x7;
  const W x132 = x15 ^ x5;
  const W x133 = x10 ^ x2;
  const W x134 = x9 ^ x0;
  const W x135 = x90 ^ x91;
  const W x136 = x131 ^ x132;
  const W x137 = x136 & x135;
  const W x138 = x131 & x90;
  const W x139 = x132 & x91;
  const W x140 = x137 ^ x139;
  const W x141 = x139 ^ x138;
  const W x142 = x99 ^ x100;
  const W x143 = x133 ^ x134;
  const W x144 = x143 & x142;
  const W x145 = x133 & x99;
  const W x146 = x134 & x100;
  const W x147 = x144 ^ x146;
  const W x148 = x146 ^ x145;
  const W x149 = x90 ^ x99;
  const W x150 = x91 ^ x100;
  const W x151 = x131 ^ x133;
  const W x152 = x132 ^ x134;
  const W x153 = x149 ^ x150;
  const W x154 = x151 ^ x152;
  const W x155 = x154 & x153;
  const W x156 = x151 & x149;
  const W x157 = x152 & x150;
  const W x158 = x155 ^ x157;
  const W x159 = x157 ^ x156;
  const W x160 = x158 ^ x147;
  const W x161 = x159 ^ x148;
  const W x162 = x140 ^ x141;
  const W x163 = x147 ^ x162;
  const W x164 = x148 ^ x140;
  const W x165 = x161 ^ x160;
  const W x166 = x165 ^ x129;
  const W x167 = x130 ^ x129;
  const W x168 = x161 ^ x130;
  const W x169 = x168 ^ x129;
  const W x170 = x169 ^ x127;
  const W x171 = x164 ^ x163;
  const W x172 = x171 ^ x161;
  const W x173 = x172 ^ x160;
  const W x174 = x173 ^ x130;
  const W x175 = x174 ^ x129;
  const W x176 = x175 ^ x126;
  const W x177 = x164 ^ x163;
  const W x178 = x177 ^ x160;
  const W x179 = x178 ^ x130;
  const W x180 = x179 ^ x126;
  const W x181 = x164 ^ x160;
  const W x182 = x181 ^ x129;
  const W x183 = x182 ^ x126;
  const W x184 = x164 ^ x161;
  const W x185 = x184 ^ x130;
  const W x186 = x185 ^ x129;
  const W x187 = x164 ^ x163;
  const W x188 = x187 ^ x160;
  const W x189 = x188 ^ x130;
  const W x190 = x189 ^ x127;
  u[0] = x166;
  u[1] = ~x167;
  u[2] = ~x170;
  u[3] = x176;
  u[4] = x180;
  u[5] = x183;
  u[6] = ~x186;
  u[7] = ~x190;
}

/// Constant-time SubBytes over `n` bytes (n <= 16): pack the bytes into
/// bit planes, run the Boyar-Peralta program once, unpack. All indices and
/// shift amounts are public loop counters.
template <class B>
void aes_sub_bytes_ct(B* s, int n) {
  using W = typename PlaneWordFor<B>::type;
  W u[8] = {W(0), W(0), W(0), W(0), W(0), W(0), W(0), W(0)};
  for (int b = 0; b < 8; ++b) {
    W plane(0);
    for (int i = 0; i < n; ++i) {
      plane = plane | (W((s[i] >> (7 - b)) & B(1)) << i);
    }
    u[b] = plane;
  }
  aes_sbox_planes(u);
  for (int i = 0; i < n; ++i) {
    B out(0);
    for (int b = 0; b < 8; ++b) {
      out = out | (B((u[b] >> i) & W(1)) << (7 - b));
    }
    s[i] = out;
  }
}

/// Constant-time lookup in a public 256-entry table with a (possibly
/// secret) byte index: scan every entry and select arithmetically. Used by
/// the inverse S-box, where no published compact circuit is wired up.
template <class B>
B ct_table_lookup256(const std::uint8_t table[256], B x) {
  B r(0);
  for (int i = 0; i < 256; ++i) {
    B t = x ^ B(static_cast<std::uint8_t>(i));
    // Smear any set bit into bit 0, then turn "t == 0" into mask 0xff.
    t = t | (t >> 4);
    t = t | (t >> 2);
    t = t | (t >> 1);
    const B mask = (t & B(1)) - B(1);
    r = r | (B(table[i]) & mask);
  }
  return r;
}

}  // namespace convolve::crypto::detail
