// Keccak-f[1600] permutation, generic over the 64-bit lane type.
//
// Rotation offsets, lane indices and round constants are all public;
// the only data-dependent operations are xor/and/not on whole lanes, so the
// permutation is constant-time by construction. The taint-tracking
// instantiation in the static analyzer certifies exactly that for the code
// production keccak.cpp runs.
#pragma once

#include <cstdint>

namespace convolve::crypto::detail {

inline constexpr int kKeccakRounds = 24;

inline constexpr std::uint64_t kKeccakRoundConstants[kKeccakRounds] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull,
};

inline constexpr unsigned kKeccakRho[25] = {
    0,  1,  62, 28, 27,  // x = 0..4, y = 0
    36, 44, 6,  55, 20,  // y = 1
    3,  10, 43, 25, 39,  // y = 2
    41, 45, 15, 21, 8,   // y = 3
    18, 2,  61, 56, 14,  // y = 4
};

template <class W>
constexpr W keccak_rotl(W x, unsigned n) {
  if (n == 0) return x;
  return W((x << static_cast<int>(n)) | (x >> static_cast<int>(64 - n)));
}

template <class W>
void keccak_permute(W a[25]) {
  for (int round = 0; round < kKeccakRounds; ++round) {
    // Theta
    W c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    W d[5];
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ keccak_rotl(c[(x + 1) % 5], 1);
    }
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) a[x + 5 * y] = a[x + 5 * y] ^ d[x];
    }
    // Rho + Pi
    W b[25];
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] =
            keccak_rotl(a[x + 5 * y], kKeccakRho[x + 5 * y]);
      }
    }
    // Chi
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    a[0] = a[0] ^ W(kKeccakRoundConstants[round]);
  }
}

}  // namespace convolve::crypto::detail
