// ChaCha20 permutation core, generic over the 32-bit word type.
//
// Add/xor/rotate-by-constant only; instantiating with the taint tracker
// proves the absence of secret-dependent branches, indices and shifts on
// the exact code production chacha20.cpp runs.
#pragma once

#include <cstdint>

namespace convolve::crypto::detail {

template <class W>
constexpr W chacha_rotl(W x, int n) {
  return W((x << n) | (x >> (32 - n)));
}

template <class W>
void chacha_quarter_round(W& a, W& b, W& c, W& d) {
  a = W(a + b); d = d ^ a; d = chacha_rotl(d, 16);
  c = W(c + d); b = b ^ c; b = chacha_rotl(b, 12);
  a = W(a + b); d = d ^ a; d = chacha_rotl(d, 8);
  c = W(c + d); b = b ^ c; b = chacha_rotl(b, 7);
}

/// The 20-round double-round schedule plus the feed-forward addition:
/// x = initial state on entry, keystream words on return.
template <class W>
void chacha20_core(W x[16]) {
  W in[16];
  for (int i = 0; i < 16; ++i) in[i] = x[i];
  for (int round = 0; round < 10; ++round) {
    chacha_quarter_round(x[0], x[4], x[8], x[12]);
    chacha_quarter_round(x[1], x[5], x[9], x[13]);
    chacha_quarter_round(x[2], x[6], x[10], x[14]);
    chacha_quarter_round(x[3], x[7], x[11], x[15]);
    chacha_quarter_round(x[0], x[5], x[10], x[15]);
    chacha_quarter_round(x[1], x[6], x[11], x[12]);
    chacha_quarter_round(x[2], x[7], x[8], x[13]);
    chacha_quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) x[i] = W(x[i] + in[i]);
}

}  // namespace convolve::crypto::detail
