// SHA-512 (FIPS 180-4). Required by Ed25519 and by the HMAC/HKDF key
// derivation used in the TEE's sealing-key hierarchy.
#pragma once

#include <array>
#include <cstdint>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  Sha512();

  void update(ByteView data);
  /// Produce the digest; the object must not be used afterwards.
  std::array<std::uint8_t, kDigestSize> digest();

  static std::array<std::uint8_t, kDigestSize> hash(ByteView data) {
    Sha512 h;
    h.update(data);
    return h.digest();
  }

 private:
  std::array<std::uint64_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> block_{};
  std::size_t block_fill_ = 0;
  std::uint64_t total_len_ = 0;  // bytes processed (fits every realistic input)

  void process_block(const std::uint8_t* p);
};

Bytes sha512(ByteView data);

}  // namespace convolve::crypto
