// Kyber / ML-KEM-512-shaped lattice KEM.
//
// CONVOLVE's HADES case study explores Kyber-CPA and Kyber-CCA hardware
// design spaces (Table I of the paper); the TEE uses the KEM to establish
// long-term-secure channels. This is a from-scratch implementation with the
// ML-KEM-512 parameter set (n=256, q=3329, k=2, eta1=3, eta2=2, du=10, dv=4)
// and the standard object sizes (ek 800 B, dk 1632 B, ct 768 B, ss 32 B).
// It follows the FIPS 203 structure (CPA PKE + Fujisaki-Okamoto transform
// with implicit rejection) and is self-consistent; it is NOT guaranteed to
// be bit-interoperable with FIPS 203 known-answer tests (see DESIGN.md
// substitution ledger).
#pragma once

#include <array>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto::kyber {

inline constexpr int kN = 256;
inline constexpr int kQ = 3329;
inline constexpr int kK = 2;        // module rank (ML-KEM-512)
inline constexpr int kEta1 = 3;
inline constexpr int kEta2 = 2;
inline constexpr int kDu = 10;
inline constexpr int kDv = 4;

inline constexpr std::size_t kEkBytes = 384 * kK + 32;        // 800
inline constexpr std::size_t kDkBytes = 768 * kK + 96;        // 1632
inline constexpr std::size_t kCtBytes = 32 * (kDu * kK + kDv);  // 768
inline constexpr std::size_t kSsBytes = 32;

struct KeyPair {
  Bytes ek;  // encapsulation key
  Bytes dk;  // decapsulation key (includes ek, H(ek), implicit-rejection z)
};

struct Encapsulation {
  Bytes ciphertext;
  std::array<std::uint8_t, kSsBytes> shared_secret{};
};

/// Deterministic key generation from 64 bytes of seed material
/// (d || z in FIPS 203 terms).
KeyPair keygen(ByteView seed64);

/// Encapsulate against `ek` using 32 bytes of fresh randomness `m32`.
Encapsulation encaps(ByteView ek, ByteView m32);

/// Decapsulate; never fails — on tampered ciphertext it returns the
/// implicit-rejection secret, which will not match the encapsulator's.
std::array<std::uint8_t, kSsBytes> decaps(ByteView dk, ByteView ciphertext);

// --- CPA-level PKE, exposed for the HADES Kyber-CPA case study and tests ---

struct PkeKeyPair {
  Bytes pk;
  Bytes sk;
};

PkeKeyPair pke_keygen(ByteView d32);
Bytes pke_encrypt(ByteView pk, ByteView msg32, ByteView coins32);
Bytes pke_decrypt(ByteView sk, ByteView ciphertext);

}  // namespace convolve::crypto::kyber
