// Ed25519 signatures (RFC 8032).
//
// Keystone's default attestation chain signs with Ed25519; CONVOLVE keeps it
// in a hybrid construction next to ML-DSA so that security never drops below
// the classical baseline. This implementation is complete and from scratch:
// GF(2^255-19) arithmetic on 5x51-bit limbs, extended twisted-Edwards group
// law, point compression/decompression and scalar arithmetic mod the group
// order L. It favours obviously-correct over fast (generic exponentiation
// ladders, binary reduction mod L); signing a report costs ~1 ms, which is
// irrelevant at attestation frequency. Validated against RFC 8032 vectors.
#pragma once

#include <array>
#include <optional>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

struct Ed25519KeyPair {
  std::array<std::uint8_t, 32> seed{};        // private seed
  std::array<std::uint8_t, 32> public_key{};  // compressed point A
};

/// Derive the key pair from a 32-byte seed (deterministic).
Ed25519KeyPair ed25519_keypair(ByteView seed);

/// Produce a 64-byte signature R || S.
std::array<std::uint8_t, 64> ed25519_sign(const Ed25519KeyPair& kp,
                                          ByteView message);

/// Verify; returns false on any malformed input (bad point encoding,
/// non-canonical S) or signature mismatch.
bool ed25519_verify(ByteView public_key, ByteView message, ByteView signature);

}  // namespace convolve::crypto
