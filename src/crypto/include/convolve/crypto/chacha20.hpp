// ChaCha20 stream cipher (RFC 8439). One of the HADES template library's
// case-study algorithms (Table I) and an alternative payload cipher for
// constrained cores without an AES accelerator.
#pragma once

#include <array>
#include <cstdint>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

/// The ChaCha20 block function: 32-byte key, 12-byte nonce, 32-bit counter
/// -> 64 bytes of keystream.
std::array<std::uint8_t, 64> chacha20_block(ByteView key, ByteView nonce,
                                            std::uint32_t counter);

/// XOR `data` with the ChaCha20 keystream starting at block `initial_counter`.
Bytes chacha20_xor(ByteView key, ByteView nonce, std::uint32_t initial_counter,
                   ByteView data);

}  // namespace convolve::crypto
