// Dilithium / ML-DSA-44-shaped lattice signature scheme.
//
// The paper's PQ-enabled Keystone adds ML-DSA-44 next to Ed25519 in a hybrid
// construction (Table III); the attestation-report and bootrom size deltas
// reported there follow directly from this scheme's object sizes, which this
// implementation reproduces exactly: public key 1312 B, secret key 2560 B,
// signature 2420 B.
//
// This is a complete from-scratch implementation of the FIPS 204 algorithm
// structure for the parameter set (k,l)=(4,4), eta=2, tau=39, gamma1=2^17,
// gamma2=(q-1)/88, omega=80: NTT over Z_8380417, Power2Round, Decompose,
// MakeHint/UseHint, SampleInBall and the deterministic rejection-sampling
// signing loop. It is self-consistent (sign/verify round-trips, forgeries
// rejected) but not guaranteed bit-interoperable with FIPS 204 KATs; see
// the substitution ledger in DESIGN.md.
#pragma once

#include <array>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto::dilithium {

inline constexpr int kN = 256;
inline constexpr std::int32_t kQ = 8380417;
inline constexpr int kK = 4;  // rows
inline constexpr int kL = 4;  // columns
inline constexpr int kEta = 2;
inline constexpr int kTau = 39;
inline constexpr std::int32_t kGamma1 = 1 << 17;
inline constexpr std::int32_t kGamma2 = (kQ - 1) / 88;
inline constexpr int kD = 13;
inline constexpr int kOmega = 80;
inline constexpr std::int32_t kBeta = kTau * kEta;  // 78

inline constexpr std::size_t kPkBytes = 32 + 320 * kK;             // 1312
inline constexpr std::size_t kSkBytes =
    32 + 32 + 64 + 96 * (kK + kL) + 416 * kK;                      // 2560
inline constexpr std::size_t kSigBytes = 32 + 576 * kL + kOmega + kK;  // 2420

struct KeyPair {
  Bytes pk;
  Bytes sk;
};

/// Deterministic key generation from a 32-byte seed.
KeyPair keygen(ByteView seed32);

/// Deterministic signature (FIPS 204 "hedged" variant with rnd = 0).
Bytes sign(ByteView sk, ByteView message);

/// Verify a signature; returns false on any malformed or forged input.
bool verify(ByteView pk, ByteView message, ByteView signature);

}  // namespace convolve::crypto::dilithium
