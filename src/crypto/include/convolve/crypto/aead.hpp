// Authenticated encryption for TEE data sealing.
//
// Encrypt-then-MAC: AES-256-CTR for confidentiality, HMAC-SHA-512/256 for
// integrity, with independent keys derived from the sealing key via HKDF.
// The MAC covers nonce || associated data || ciphertext, so sealed blobs are
// bound to their enclave context (passed as associated data).
#pragma once

#include <optional>

#include "convolve/common/bytes.hpp"

namespace convolve::crypto {

struct SealedBox {
  Bytes nonce;       // 12 bytes
  Bytes ciphertext;  // same length as the plaintext
  Bytes tag;         // 32 bytes (HMAC-SHA-512 truncated)
};

/// Encrypt and authenticate. `key` is 32 bytes of sealing-key material.
SealedBox aead_seal(ByteView key, ByteView nonce12, ByteView plaintext,
                    ByteView associated_data);

/// Verify and decrypt; std::nullopt on any authentication failure.
std::optional<Bytes> aead_open(ByteView key, const SealedBox& box,
                               ByteView associated_data);

/// Flat serialization (nonce || tag || ciphertext) for storage.
Bytes aead_serialize(const SealedBox& box);
std::optional<SealedBox> aead_deserialize(ByteView data);

}  // namespace convolve::crypto
