#include "convolve/crypto/sha512.hpp"

#include "convolve/crypto/detail/sha512_core.hpp"

namespace convolve::crypto {

Sha512::Sha512() {
  for (int i = 0; i < 8; ++i) state_[i] = detail::kSha512Init[i];
}

void Sha512::process_block(const std::uint8_t* p) {
  detail::sha512_compress<std::uint64_t, std::uint8_t>(state_.data(), p);
}

void Sha512::update(ByteView data) {
  total_len_ += data.size();
  for (std::uint8_t byte : data) {
    block_[block_fill_++] = byte;
    if (block_fill_ == kBlockSize) {
      process_block(block_.data());
      block_fill_ = 0;
    }
  }
}

std::array<std::uint8_t, Sha512::kDigestSize> Sha512::digest() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update({&pad_byte, 1});
  const std::uint8_t zero = 0x00;
  while (block_fill_ != kBlockSize - 16) update({&zero, 1});
  std::uint8_t len_be[16] = {};
  store_be64(len_be + 8, bit_len);
  update({len_be, 16});

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) store_be64(out.data() + 8 * i, state_[i]);
  return out;
}

Bytes sha512(ByteView data) {
  const auto d = Sha512::hash(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace convolve::crypto
