#include "convolve/crypto/sha512.hpp"

namespace convolve::crypto {

namespace {

constexpr std::uint64_t kInit[8] = {
    0x6a09e667f3bcc908ull, 0xbb67ae8584caa73bull, 0x3c6ef372fe94f82bull,
    0xa54ff53a5f1d36f1ull, 0x510e527fade682d1ull, 0x9b05688c2b3e6c1full,
    0x1f83d9abfb41bd6bull, 0x5be0cd19137e2179ull,
};

constexpr std::uint64_t kK[80] = {
    0x428a2f98d728ae22ull, 0x7137449123ef65cdull, 0xb5c0fbcfec4d3b2full,
    0xe9b5dba58189dbbcull, 0x3956c25bf348b538ull, 0x59f111f1b605d019ull,
    0x923f82a4af194f9bull, 0xab1c5ed5da6d8118ull, 0xd807aa98a3030242ull,
    0x12835b0145706fbeull, 0x243185be4ee4b28cull, 0x550c7dc3d5ffb4e2ull,
    0x72be5d74f27b896full, 0x80deb1fe3b1696b1ull, 0x9bdc06a725c71235ull,
    0xc19bf174cf692694ull, 0xe49b69c19ef14ad2ull, 0xefbe4786384f25e3ull,
    0x0fc19dc68b8cd5b5ull, 0x240ca1cc77ac9c65ull, 0x2de92c6f592b0275ull,
    0x4a7484aa6ea6e483ull, 0x5cb0a9dcbd41fbd4ull, 0x76f988da831153b5ull,
    0x983e5152ee66dfabull, 0xa831c66d2db43210ull, 0xb00327c898fb213full,
    0xbf597fc7beef0ee4ull, 0xc6e00bf33da88fc2ull, 0xd5a79147930aa725ull,
    0x06ca6351e003826full, 0x142929670a0e6e70ull, 0x27b70a8546d22ffcull,
    0x2e1b21385c26c926ull, 0x4d2c6dfc5ac42aedull, 0x53380d139d95b3dfull,
    0x650a73548baf63deull, 0x766a0abb3c77b2a8ull, 0x81c2c92e47edaee6ull,
    0x92722c851482353bull, 0xa2bfe8a14cf10364ull, 0xa81a664bbc423001ull,
    0xc24b8b70d0f89791ull, 0xc76c51a30654be30ull, 0xd192e819d6ef5218ull,
    0xd69906245565a910ull, 0xf40e35855771202aull, 0x106aa07032bbd1b8ull,
    0x19a4c116b8d2d0c8ull, 0x1e376c085141ab53ull, 0x2748774cdf8eeb99ull,
    0x34b0bcb5e19b48a8ull, 0x391c0cb3c5c95a63ull, 0x4ed8aa4ae3418acbull,
    0x5b9cca4f7763e373ull, 0x682e6ff3d6b2b8a3ull, 0x748f82ee5defb2fcull,
    0x78a5636f43172f60ull, 0x84c87814a1f0ab72ull, 0x8cc702081a6439ecull,
    0x90befffa23631e28ull, 0xa4506cebde82bde9ull, 0xbef9a3f7b2c67915ull,
    0xc67178f2e372532bull, 0xca273eceea26619cull, 0xd186b8c721c0c207ull,
    0xeada7dd6cde0eb1eull, 0xf57d4f7fee6ed178ull, 0x06f067aa72176fbaull,
    0x0a637dc5a2c898a6ull, 0x113f9804bef90daeull, 0x1b710b35131c471bull,
    0x28db77f523047d84ull, 0x32caab7b40c72493ull, 0x3c9ebe0a15c9bebcull,
    0x431d67c49c100d4cull, 0x4cc5d4becb3e42b6ull, 0x597f299cfc657e2aull,
    0x5fcb6fab3ad6faecull, 0x6c44198c4a475817ull,
};

std::uint64_t big_sigma0(std::uint64_t x) {
  return rotr64(x, 28) ^ rotr64(x, 34) ^ rotr64(x, 39);
}
std::uint64_t big_sigma1(std::uint64_t x) {
  return rotr64(x, 14) ^ rotr64(x, 18) ^ rotr64(x, 41);
}
std::uint64_t small_sigma0(std::uint64_t x) {
  return rotr64(x, 1) ^ rotr64(x, 8) ^ (x >> 7);
}
std::uint64_t small_sigma1(std::uint64_t x) {
  return rotr64(x, 19) ^ rotr64(x, 61) ^ (x >> 6);
}

}  // namespace

Sha512::Sha512() {
  for (int i = 0; i < 8; ++i) state_[i] = kInit[i];
}

void Sha512::process_block(const std::uint8_t* p) {
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be64(p + 8 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) +
           w[i - 16];
  }
  std::uint64_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint64_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t t1 =
        h + big_sigma1(e) + ((e & f) ^ (~e & g)) + kK[i] + w[i];
    const std::uint64_t t2 =
        big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha512::update(ByteView data) {
  total_len_ += data.size();
  for (std::uint8_t byte : data) {
    block_[block_fill_++] = byte;
    if (block_fill_ == kBlockSize) {
      process_block(block_.data());
      block_fill_ = 0;
    }
  }
}

std::array<std::uint8_t, Sha512::kDigestSize> Sha512::digest() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update({&pad_byte, 1});
  const std::uint8_t zero = 0x00;
  while (block_fill_ != kBlockSize - 16) update({&zero, 1});
  std::uint8_t len_be[16] = {};
  store_be64(len_be + 8, bit_len);
  update({len_be, 16});

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) store_be64(out.data() + 8 * i, state_[i]);
  return out;
}

Bytes sha512(ByteView data) {
  const auto d = Sha512::hash(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace convolve::crypto
