#include "convolve/crypto/keccak.hpp"

#include <cassert>
#include <stdexcept>

#include "convolve/crypto/detail/keccak_core.hpp"

namespace convolve::crypto {

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  detail::keccak_permute(a.data());
}

KeccakSponge::KeccakSponge(std::size_t rate_bytes, std::uint8_t domain_suffix)
    : rate_(rate_bytes), suffix_(domain_suffix) {
  if (rate_bytes == 0 || rate_bytes >= 200 || rate_bytes % 8 != 0) {
    throw std::invalid_argument("KeccakSponge: invalid rate");
  }
}

void KeccakSponge::xor_byte_into_state(std::size_t pos, std::uint8_t b) {
  state_[pos / 8] ^= static_cast<std::uint64_t>(b) << (8 * (pos % 8));
}

std::uint8_t KeccakSponge::state_byte(std::size_t pos) const {
  return static_cast<std::uint8_t>(state_[pos / 8] >> (8 * (pos % 8)));
}

void KeccakSponge::absorb(ByteView data) {
  if (squeezing_) throw std::logic_error("KeccakSponge: absorb after squeeze");
  for (std::uint8_t byte : data) {
    xor_byte_into_state(offset_++, byte);
    if (offset_ == rate_) {
      keccak_f1600(state_);
      offset_ = 0;
    }
  }
}

void KeccakSponge::finalize() {
  if (squeezing_) return;
  xor_byte_into_state(offset_, suffix_);
  xor_byte_into_state(rate_ - 1, 0x80);
  keccak_f1600(state_);
  offset_ = 0;
  squeezing_ = true;
}

void KeccakSponge::squeeze(std::span<std::uint8_t> out) {
  finalize();
  for (auto& byte : out) {
    if (offset_ == rate_) {
      keccak_f1600(state_);
      offset_ = 0;
    }
    byte = state_byte(offset_++);
  }
}

namespace {
Bytes fixed_hash(ByteView data, std::size_t digest_len) {
  KeccakSponge sponge(200 - 2 * digest_len, 0x06);
  sponge.absorb(data);
  Bytes out(digest_len);
  sponge.squeeze(out);
  return out;
}
}  // namespace

Bytes sha3_256(ByteView data) { return fixed_hash(data, 32); }
Bytes sha3_512(ByteView data) { return fixed_hash(data, 64); }

Bytes shake128(ByteView data, std::size_t out_len) {
  Shake x(Shake::Variant::k128);
  x.absorb(data);
  return x.squeeze(out_len);
}

Bytes shake256(ByteView data, std::size_t out_len) {
  Shake x(Shake::Variant::k256);
  x.absorb(data);
  return x.squeeze(out_len);
}

}  // namespace convolve::crypto
