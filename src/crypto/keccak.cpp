#include "convolve/crypto/keccak.hpp"

#include <cassert>
#include <stdexcept>

namespace convolve::crypto {

namespace {

constexpr int kRounds = 24;

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull,
};

constexpr unsigned kRho[25] = {
    0,  1,  62, 28, 27,  // x = 0..4, y = 0
    36, 44, 6,  55, 20,  // y = 1
    3,  10, 43, 25, 39,  // y = 2
    41, 45, 15, 21, 8,   // y = 3
    18, 2,  61, 56, 14,  // y = 4
};

}  // namespace

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    std::uint64_t d[5];
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
    }
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) a[x + 5 * y] ^= d[x];
    }
    // Rho + Pi
    std::uint64_t b[25];
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl64(a[x + 5 * y], kRho[x + 5 * y]);
      }
    }
    // Chi
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

KeccakSponge::KeccakSponge(std::size_t rate_bytes, std::uint8_t domain_suffix)
    : rate_(rate_bytes), suffix_(domain_suffix) {
  if (rate_bytes == 0 || rate_bytes >= 200 || rate_bytes % 8 != 0) {
    throw std::invalid_argument("KeccakSponge: invalid rate");
  }
}

void KeccakSponge::xor_byte_into_state(std::size_t pos, std::uint8_t b) {
  state_[pos / 8] ^= static_cast<std::uint64_t>(b) << (8 * (pos % 8));
}

std::uint8_t KeccakSponge::state_byte(std::size_t pos) const {
  return static_cast<std::uint8_t>(state_[pos / 8] >> (8 * (pos % 8)));
}

void KeccakSponge::absorb(ByteView data) {
  if (squeezing_) throw std::logic_error("KeccakSponge: absorb after squeeze");
  for (std::uint8_t byte : data) {
    xor_byte_into_state(offset_++, byte);
    if (offset_ == rate_) {
      keccak_f1600(state_);
      offset_ = 0;
    }
  }
}

void KeccakSponge::finalize() {
  if (squeezing_) return;
  xor_byte_into_state(offset_, suffix_);
  xor_byte_into_state(rate_ - 1, 0x80);
  keccak_f1600(state_);
  offset_ = 0;
  squeezing_ = true;
}

void KeccakSponge::squeeze(std::span<std::uint8_t> out) {
  finalize();
  for (auto& byte : out) {
    if (offset_ == rate_) {
      keccak_f1600(state_);
      offset_ = 0;
    }
    byte = state_byte(offset_++);
  }
}

namespace {
Bytes fixed_hash(ByteView data, std::size_t digest_len) {
  KeccakSponge sponge(200 - 2 * digest_len, 0x06);
  sponge.absorb(data);
  Bytes out(digest_len);
  sponge.squeeze(out);
  return out;
}
}  // namespace

Bytes sha3_256(ByteView data) { return fixed_hash(data, 32); }
Bytes sha3_512(ByteView data) { return fixed_hash(data, 64); }

Bytes shake128(ByteView data, std::size_t out_len) {
  Shake x(Shake::Variant::k128);
  x.absorb(data);
  return x.squeeze(out_len);
}

Bytes shake256(ByteView data, std::size_t out_len) {
  Shake x(Shake::Variant::k256);
  x.absorb(data);
  return x.squeeze(out_len);
}

}  // namespace convolve::crypto
