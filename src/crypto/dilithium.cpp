#include "convolve/crypto/dilithium.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "convolve/crypto/detail/pqc_ntt.hpp"
#include "convolve/crypto/keccak.hpp"

namespace convolve::crypto::dilithium {

namespace {

using Poly = std::array<std::int32_t, kN>;

// Coefficients are kept in [0, q).
std::int32_t mod_q(std::int64_t a) {
  return detail::ntt_mod<std::int32_t, std::int64_t>(a, kQ);
}

std::int32_t mul_q(std::int64_t a, std::int64_t b) { return mod_q(a * b); }

// Centered representative in [-(q-1)/2, (q-1)/2].
std::int32_t centered(std::int32_t a) {
  return (a > (kQ - 1) / 2) ? a - kQ : a;
}

// ---------------------------------------------------------------------
// NTT over Z_q[X]/(X^256+1); 1753 is a primitive 512th root of unity.
// Tables are generated at first use from bit-reversed powers.
// ---------------------------------------------------------------------

int bitrev8(int i) {
  int r = 0;
  for (int b = 0; b < 8; ++b) r |= ((i >> b) & 1) << (7 - b);
  return r;
}

std::int32_t mod_pow(std::int64_t base, std::int64_t exp) {
  std::int64_t result = 1;
  base %= kQ;
  while (exp > 0) {
    if (exp & 1) result = result * base % kQ;
    base = base * base % kQ;
    exp >>= 1;
  }
  return static_cast<std::int32_t>(result);
}

struct NttTables {
  std::array<std::int32_t, 256> zetas{};
  std::array<std::int32_t, 256> inv_zetas{};
  std::int32_t n_inv;
  NttTables() : n_inv(mod_pow(kN, kQ - 2)) {
    for (int i = 0; i < 256; ++i) {
      zetas[i] = mod_pow(1753, bitrev8(i));
      inv_zetas[i] = mod_pow(zetas[i], kQ - 2);
    }
  }
};

const NttTables& tables() {
  static const NttTables t;
  return t;
}

// Dilithium splits fully down to degree-0 factors (min_len = 1); the
// shared butterfly template is instantiated with 32-bit coefficients and
// 64-bit intermediates since q is 23 bits.
void ntt(Poly& f) {
  detail::ntt_forward<std::int32_t, std::int64_t>(f.data(), kN, 1,
                                                  tables().zetas.data(), kQ);
}

void intt(Poly& f) {
  detail::ntt_inverse<std::int32_t, std::int64_t>(
      f.data(), kN, 1, tables().inv_zetas.data(), kQ, tables().n_inv);
}

Poly pointwise(const Poly& a, const Poly& b) {
  Poly r;
  for (int i = 0; i < kN; ++i) r[i] = mul_q(a[i], b[i]);
  return r;
}

Poly poly_add(const Poly& a, const Poly& b) {
  Poly r;
  for (int i = 0; i < kN; ++i) {
    r[i] = mod_q(static_cast<std::int64_t>(a[i]) + b[i]);
  }
  return r;
}

Poly poly_sub(const Poly& a, const Poly& b) {
  Poly r;
  for (int i = 0; i < kN; ++i) {
    r[i] = mod_q(static_cast<std::int64_t>(a[i]) - b[i]);
  }
  return r;
}

std::int32_t poly_inf_norm(const Poly& a) {
  std::int32_t m = 0;
  for (auto c : a) m = std::max(m, std::abs(centered(c)));
  return m;
}

template <std::size_t Len>
using Vec = std::array<Poly, Len>;

template <std::size_t Len>
void vec_ntt(Vec<Len>& v) {
  for (auto& p : v) ntt(p);
}

template <std::size_t Len>
void vec_intt(Vec<Len>& v) {
  for (auto& p : v) intt(p);
}

template <std::size_t Len>
std::int32_t vec_inf_norm(const Vec<Len>& v) {
  std::int32_t m = 0;
  for (const auto& p : v) m = std::max(m, poly_inf_norm(p));
  return m;
}

// ---------------------------------------------------------------------
// Rounding (FIPS 204 section 7.4, implemented straight from the spec).
// ---------------------------------------------------------------------

// r = r1 * 2^d + r0 with r0 in (-2^{d-1}, 2^{d-1}].
void power2round(std::int32_t r, std::int32_t& r1, std::int32_t& r0) {
  const std::int32_t half = 1 << (kD - 1);
  r0 = r & ((1 << kD) - 1);
  if (r0 > half) r0 -= (1 << kD);
  r1 = (r - r0) >> kD;
}

// r = r1 * (2*gamma2) + r0, r0 centered; the q-1 wraparound maps to r1 = 0.
void decompose(std::int32_t r, std::int32_t& r1, std::int32_t& r0) {
  const std::int32_t alpha = 2 * kGamma2;
  r0 = r % alpha;
  if (r0 > alpha / 2) r0 -= alpha;
  if (r - r0 == kQ - 1) {
    r1 = 0;
    r0 -= 1;
  } else {
    r1 = (r - r0) / alpha;
  }
}

std::int32_t high_bits(std::int32_t r) {
  std::int32_t r1, r0;
  decompose(r, r1, r0);
  return r1;
}

std::int32_t low_bits(std::int32_t r) {
  std::int32_t r1, r0;
  decompose(r, r1, r0);
  return r0;
}

// Hint: does adding z change the high bits of r?
bool make_hint(std::int32_t z, std::int32_t r) {
  return high_bits(r) != high_bits(mod_q(static_cast<std::int64_t>(r) + z));
}

std::int32_t use_hint(bool hint, std::int32_t r) {
  constexpr std::int32_t m = (kQ - 1) / (2 * kGamma2);  // 44
  std::int32_t r1, r0;
  decompose(r, r1, r0);
  if (!hint) return r1;
  return (r0 > 0) ? (r1 + 1) % m : (r1 - 1 + m) % m;
}

// ---------------------------------------------------------------------
// Samplers.
// ---------------------------------------------------------------------

Poly expand_a_entry(ByteView rho, int row, int col) {
  Shake xof(Shake::Variant::k128);
  const std::uint8_t idx[2] = {static_cast<std::uint8_t>(col),
                               static_cast<std::uint8_t>(row)};
  xof.absorb(rho);
  xof.absorb({idx, 2});
  Poly f{};
  int count = 0;
  std::uint8_t buf[3];
  while (count < kN) {
    xof.squeeze({buf, 3});
    const std::int32_t v =
        (buf[0] | (buf[1] << 8) | (buf[2] << 16)) & 0x7fffff;
    if (v < kQ) f[count++] = v;
  }
  return f;
}

// eta = 2 short secret via nibble rejection.
Poly expand_s_entry(ByteView rho_prime, std::uint16_t nonce) {
  Shake xof(Shake::Variant::k256);
  const std::uint8_t n[2] = {static_cast<std::uint8_t>(nonce),
                             static_cast<std::uint8_t>(nonce >> 8)};
  xof.absorb(rho_prime);
  xof.absorb({n, 2});
  Poly f{};
  int count = 0;
  std::uint8_t byte;
  while (count < kN) {
    xof.squeeze({&byte, 1});
    for (const int nib : {byte & 0x0f, byte >> 4}) {
      if (nib < 15 && count < kN) {
        f[count++] = mod_q(kEta - (nib % (2 * kEta + 1)));
      }
    }
  }
  return f;
}

// y coefficients in [-(gamma1-1), gamma1], 18 bits each.
Poly expand_mask_entry(ByteView rho_pp, std::uint16_t nonce) {
  Shake xof(Shake::Variant::k256);
  std::uint8_t n[2] = {static_cast<std::uint8_t>(nonce),
                       static_cast<std::uint8_t>(nonce >> 8)};
  xof.absorb(rho_pp);
  xof.absorb({n, 2});
  const Bytes buf = xof.squeeze(576);
  Poly f{};
  std::size_t bit = 0;
  for (int i = 0; i < kN; ++i) {
    std::uint32_t raw = 0;
    for (int b = 0; b < 18; ++b) {
      raw |= static_cast<std::uint32_t>((buf[bit / 8] >> (bit % 8)) & 1) << b;
      ++bit;
    }
    f[i] = mod_q(kGamma1 - static_cast<std::int32_t>(raw));
  }
  return f;
}

// Sparse +-1 challenge polynomial with tau nonzero coefficients.
Poly sample_in_ball(ByteView c_tilde) {
  Shake xof(Shake::Variant::k256);
  xof.absorb(c_tilde);
  std::uint8_t signs[8];
  xof.squeeze({signs, 8});
  std::uint64_t sign_bits = load_le64(signs);
  Poly c{};
  for (int i = kN - kTau; i < kN; ++i) {
    std::uint8_t j;
    do {
      xof.squeeze({&j, 1});
    } while (j > i);
    c[i] = c[j];
    c[j] = (sign_bits & 1) ? mod_q(-1) : 1;
    sign_bits >>= 1;
  }
  return c;
}

// ---------------------------------------------------------------------
// Bit packing.
// ---------------------------------------------------------------------

void pack_bits(Bytes& out, const Poly& f, int bits,
               std::int32_t (*transform)(std::int32_t)) {
  std::uint64_t acc = 0;
  int acc_bits = 0;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t raw =
        static_cast<std::uint32_t>(transform(f[i])) &
        ((1u << bits) - 1);
    acc |= raw << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  assert(acc_bits == 0);
}

Poly unpack_bits(const std::uint8_t*& p, int bits,
                 std::int32_t (*transform)(std::int32_t)) {
  Poly f{};
  std::uint64_t acc = 0;
  int acc_bits = 0;
  for (int i = 0; i < kN; ++i) {
    while (acc_bits < bits) {
      acc |= static_cast<std::uint64_t>(*p++) << acc_bits;
      acc_bits += 8;
    }
    f[i] = transform(static_cast<std::int32_t>(acc & ((1u << bits) - 1)));
    acc >>= bits;
    acc_bits -= bits;
  }
  return f;
}

// Per-field transforms (raw <-> coefficient).
std::int32_t id_fwd(std::int32_t x) { return x; }
std::int32_t eta_fwd(std::int32_t c) { return kEta - centered(c); }
std::int32_t eta_bwd(std::int32_t raw) { return mod_q(kEta - raw); }
std::int32_t t0_fwd(std::int32_t c) { return (1 << (kD - 1)) - centered(c); }
std::int32_t t0_bwd(std::int32_t raw) { return mod_q((1 << (kD - 1)) - raw); }
std::int32_t z_fwd(std::int32_t c) { return kGamma1 - centered(c); }
std::int32_t z_bwd(std::int32_t raw) { return mod_q(kGamma1 - raw); }

// Hint vector: omega position bytes plus k cumulative-count bytes.
Bytes pack_hints(const Vec<kK>& h) {
  Bytes out(kOmega + kK, 0);
  std::size_t idx = 0;
  for (int i = 0; i < kK; ++i) {
    for (int j = 0; j < kN; ++j) {
      if (h[static_cast<std::size_t>(i)][j] != 0) {
        out[idx++] = static_cast<std::uint8_t>(j);
      }
    }
    out[kOmega + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(idx);
  }
  return out;
}

bool unpack_hints(ByteView data, Vec<kK>& h) {
  if (data.size() != kOmega + kK) return false;
  for (auto& p : h) p.fill(0);
  std::size_t idx = 0;
  for (int i = 0; i < kK; ++i) {
    const std::size_t end = data[kOmega + static_cast<std::size_t>(i)];
    if (end < idx || end > kOmega) return false;
    std::size_t prev_pos = 0;
    for (std::size_t j = idx; j < end; ++j) {
      const std::size_t pos = data[j];
      if (j > idx && pos <= prev_pos) return false;  // must be ascending
      h[static_cast<std::size_t>(i)][pos] = 1;
      prev_pos = pos;
    }
    idx = end;
  }
  // Remaining position bytes must be zero padding.
  for (std::size_t j = idx; j < kOmega; ++j) {
    if (data[j] != 0) return false;
  }
  return true;
}

int count_hints(const Vec<kK>& h) {
  int n = 0;
  for (const auto& p : h) {
    for (auto c : p) n += (c != 0);
  }
  return n;
}

// w1 has coefficients in [0, 43]: 6 bits each.
Bytes pack_w1(const Vec<kK>& w1) {
  Bytes out;
  for (const auto& p : w1) pack_bits(out, p, 6, id_fwd);
  return out;
}

// ---------------------------------------------------------------------
// Matrix application.
// ---------------------------------------------------------------------

struct Matrix {
  std::array<Vec<kL>, kK> rows;  // NTT domain
};

Matrix expand_a(ByteView rho) {
  Matrix a;
  for (int i = 0; i < kK; ++i) {
    for (int j = 0; j < kL; ++j) {
      a.rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          expand_a_entry(rho, i, j);
    }
  }
  return a;
}

// Computes A * v_hat in the NTT domain (input and output in NTT domain).
Vec<kK> matvec(const Matrix& a, const Vec<kL>& v_hat) {
  Vec<kK> w{};
  for (int i = 0; i < kK; ++i) {
    Poly acc{};
    for (int j = 0; j < kL; ++j) {
      acc = poly_add(
          acc, pointwise(
                   a.rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                   v_hat[static_cast<std::size_t>(j)]));
    }
    w[static_cast<std::size_t>(i)] = acc;
  }
  return w;
}

}  // namespace

KeyPair keygen(ByteView seed32) {
  if (seed32.size() != 32) throw std::invalid_argument("keygen: seed != 32B");
  Shake h(Shake::Variant::k256);
  const std::uint8_t kl[2] = {kK, kL};
  h.absorb(seed32);
  h.absorb({kl, 2});
  const Bytes expanded = h.squeeze(128);
  const ByteView rho{expanded.data(), 32};
  const ByteView rho_prime{expanded.data() + 32, 64};
  const ByteView cap_k{expanded.data() + 96, 32};

  const Matrix a = expand_a(rho);
  Vec<kL> s1{};
  Vec<kK> s2{};
  std::uint16_t nonce = 0;
  for (auto& p : s1) p = expand_s_entry(rho_prime, nonce++);
  for (auto& p : s2) p = expand_s_entry(rho_prime, nonce++);

  Vec<kL> s1_hat = s1;
  vec_ntt(s1_hat);
  Vec<kK> t = matvec(a, s1_hat);
  vec_intt(t);
  for (int i = 0; i < kK; ++i) {
    t[static_cast<std::size_t>(i)] =
        poly_add(t[static_cast<std::size_t>(i)],
                 s2[static_cast<std::size_t>(i)]);
  }

  Vec<kK> t1{}, t0{};
  for (int i = 0; i < kK; ++i) {
    for (int j = 0; j < kN; ++j) {
      std::int32_t hi, lo;
      power2round(t[static_cast<std::size_t>(i)][j], hi, lo);
      t1[static_cast<std::size_t>(i)][j] = hi;
      t0[static_cast<std::size_t>(i)][j] = mod_q(lo);
    }
  }

  KeyPair kp;
  kp.pk.insert(kp.pk.end(), rho.begin(), rho.end());
  for (const auto& p : t1) pack_bits(kp.pk, p, 10, id_fwd);
  assert(kp.pk.size() == kPkBytes);

  const Bytes tr = shake256(kp.pk, 64);
  kp.sk.insert(kp.sk.end(), rho.begin(), rho.end());
  kp.sk.insert(kp.sk.end(), cap_k.begin(), cap_k.end());
  kp.sk.insert(kp.sk.end(), tr.begin(), tr.end());
  for (const auto& p : s1) pack_bits(kp.sk, p, 3, eta_fwd);
  for (const auto& p : s2) pack_bits(kp.sk, p, 3, eta_fwd);
  for (const auto& p : t0) pack_bits(kp.sk, p, 13, t0_fwd);
  assert(kp.sk.size() == kSkBytes);
  return kp;
}

Bytes sign(ByteView sk, ByteView message) {
  if (sk.size() != kSkBytes) throw std::invalid_argument("sign: bad sk");
  const ByteView rho{sk.data(), 32};
  const ByteView cap_k{sk.data() + 32, 32};
  const ByteView tr{sk.data() + 64, 64};
  const std::uint8_t* p = sk.data() + 128;
  Vec<kL> s1{};
  Vec<kK> s2{}, t0{};
  for (auto& poly : s1) poly = unpack_bits(p, 3, eta_bwd);
  for (auto& poly : s2) poly = unpack_bits(p, 3, eta_bwd);
  for (auto& poly : t0) poly = unpack_bits(p, 13, t0_bwd);

  const Matrix a = expand_a(rho);
  Vec<kL> s1_hat = s1;
  vec_ntt(s1_hat);
  Vec<kK> s2_hat = s2;
  vec_ntt(s2_hat);
  Vec<kK> t0_hat = t0;
  vec_ntt(t0_hat);

  Shake hmu(Shake::Variant::k256);
  hmu.absorb(tr);
  hmu.absorb(message);
  const Bytes mu = hmu.squeeze(64);

  // Deterministic variant: rnd is 32 zero bytes.
  Shake hrho(Shake::Variant::k256);
  const Bytes rnd(32, 0);
  hrho.absorb(cap_k);
  hrho.absorb(rnd);
  hrho.absorb(mu);
  const Bytes rho_pp = hrho.squeeze(64);

  for (std::uint16_t kappa = 0;; kappa = static_cast<std::uint16_t>(kappa + kL)) {
    Vec<kL> y{};
    for (int i = 0; i < kL; ++i) {
      y[static_cast<std::size_t>(i)] = expand_mask_entry(
          rho_pp, static_cast<std::uint16_t>(kappa + i));
    }
    Vec<kL> y_hat = y;
    vec_ntt(y_hat);
    Vec<kK> w = matvec(a, y_hat);
    vec_intt(w);

    Vec<kK> w1{};
    for (int i = 0; i < kK; ++i) {
      for (int j = 0; j < kN; ++j) {
        w1[static_cast<std::size_t>(i)][j] =
            high_bits(w[static_cast<std::size_t>(i)][j]);
      }
    }

    Shake hc(Shake::Variant::k256);
    hc.absorb(mu);
    const Bytes w1_packed = pack_w1(w1);
    hc.absorb(w1_packed);
    const Bytes c_tilde = hc.squeeze(32);

    Poly c = sample_in_ball(c_tilde);
    Poly c_hat = c;
    ntt(c_hat);

    // z = y + c*s1
    Vec<kL> z{};
    bool reject = false;
    for (int i = 0; i < kL; ++i) {
      Poly cs1 = pointwise(c_hat, s1_hat[static_cast<std::size_t>(i)]);
      intt(cs1);
      z[static_cast<std::size_t>(i)] =
          poly_add(y[static_cast<std::size_t>(i)], cs1);
    }
    if (vec_inf_norm<kL>(z) >= kGamma1 - kBeta) reject = true;

    Vec<kK> w_minus_cs2{}, ct0{};
    if (!reject) {
      for (int i = 0; i < kK; ++i) {
        Poly cs2 = pointwise(c_hat, s2_hat[static_cast<std::size_t>(i)]);
        intt(cs2);
        w_minus_cs2[static_cast<std::size_t>(i)] =
            poly_sub(w[static_cast<std::size_t>(i)], cs2);
      }
      Vec<kK> r0{};
      for (int i = 0; i < kK; ++i) {
        for (int j = 0; j < kN; ++j) {
          r0[static_cast<std::size_t>(i)][j] =
              mod_q(low_bits(w_minus_cs2[static_cast<std::size_t>(i)][j]));
        }
      }
      if (vec_inf_norm<kK>(r0) >= kGamma2 - kBeta) reject = true;
    }

    if (!reject) {
      for (int i = 0; i < kK; ++i) {
        Poly x = pointwise(c_hat, t0_hat[static_cast<std::size_t>(i)]);
        intt(x);
        ct0[static_cast<std::size_t>(i)] = x;
      }
      if (vec_inf_norm<kK>(ct0) >= kGamma2) reject = true;
    }

    if (!reject) {
      Vec<kK> h{};
      int ones = 0;
      for (int i = 0; i < kK; ++i) {
        for (int j = 0; j < kN; ++j) {
          const std::int32_t neg_ct0 =
              mod_q(-static_cast<std::int64_t>(
                  ct0[static_cast<std::size_t>(i)][j]));
          const std::int32_t r = mod_q(
              static_cast<std::int64_t>(
                  w_minus_cs2[static_cast<std::size_t>(i)][j]) +
              ct0[static_cast<std::size_t>(i)][j]);
          const bool hint = make_hint(centered(neg_ct0), r);
          h[static_cast<std::size_t>(i)][j] = hint ? 1 : 0;
          ones += hint;
        }
      }
      if (ones <= kOmega) {
        Bytes sig;
        sig.insert(sig.end(), c_tilde.begin(), c_tilde.end());
        for (const auto& zp : z) pack_bits(sig, zp, 18, z_fwd);
        const Bytes hp = pack_hints(h);
        sig.insert(sig.end(), hp.begin(), hp.end());
        assert(sig.size() == kSigBytes);
        return sig;
      }
    }
  }
}

bool verify(ByteView pk, ByteView message, ByteView signature) {
  if (pk.size() != kPkBytes || signature.size() != kSigBytes) return false;
  const ByteView rho{pk.data(), 32};
  const std::uint8_t* pt = pk.data() + 32;
  Vec<kK> t1{};
  for (auto& poly : t1) poly = unpack_bits(pt, 10, id_fwd);

  const ByteView c_tilde{signature.data(), 32};
  const std::uint8_t* pz = signature.data() + 32;
  Vec<kL> z{};
  for (auto& poly : z) poly = unpack_bits(pz, 18, z_bwd);
  Vec<kK> h{};
  if (!unpack_hints({signature.data() + 32 + 576 * kL, kOmega + kK}, h)) {
    return false;
  }
  if (count_hints(h) > kOmega) return false;
  if (vec_inf_norm<kL>(z) >= kGamma1 - kBeta) return false;

  const Matrix a = expand_a(rho);
  const Bytes tr = shake256(pk, 64);
  Shake hmu(Shake::Variant::k256);
  hmu.absorb(tr);
  hmu.absorb(message);
  const Bytes mu = hmu.squeeze(64);

  Poly c = sample_in_ball(c_tilde);
  Poly c_hat = c;
  ntt(c_hat);

  Vec<kL> z_hat = z;
  vec_ntt(z_hat);
  Vec<kK> az = matvec(a, z_hat);

  // w' = A z - c * t1 * 2^d  (all in NTT domain, then inverse).
  Vec<kK> w_approx{};
  for (int i = 0; i < kK; ++i) {
    Poly t1_shifted = t1[static_cast<std::size_t>(i)];
    for (auto& coeff : t1_shifted) {
      coeff = mod_q(static_cast<std::int64_t>(coeff) << kD);
    }
    ntt(t1_shifted);
    Poly ct1 = pointwise(c_hat, t1_shifted);
    Poly diff = poly_sub(az[static_cast<std::size_t>(i)], ct1);
    intt(diff);
    w_approx[static_cast<std::size_t>(i)] = diff;
  }

  Vec<kK> w1{};
  for (int i = 0; i < kK; ++i) {
    for (int j = 0; j < kN; ++j) {
      w1[static_cast<std::size_t>(i)][j] = use_hint(
          h[static_cast<std::size_t>(i)][j] != 0,
          w_approx[static_cast<std::size_t>(i)][j]);
    }
  }

  Shake hc(Shake::Variant::k256);
  hc.absorb(mu);
  const Bytes w1_packed = pack_w1(w1);
  hc.absorb(w1_packed);
  const Bytes c_tilde_prime = hc.squeeze(32);
  return ct_equal(c_tilde, c_tilde_prime);
}

}  // namespace convolve::crypto::dilithium
