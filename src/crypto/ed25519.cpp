#include "convolve/crypto/ed25519.hpp"

#include <cstring>
#include <stdexcept>

#include "convolve/crypto/sha512.hpp"

namespace convolve::crypto {

namespace {

// ---------------------------------------------------------------------
// Field arithmetic over GF(p), p = 2^255 - 19, radix-2^51 representation.
// ---------------------------------------------------------------------

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (1ull << 51) - 1;

struct Fe {
  u64 v[5] = {0, 0, 0, 0, 0};
};

Fe fe_from_u64(u64 x) {
  Fe r;
  r.v[0] = x & kMask51;
  r.v[1] = x >> 51;
  return r;
}

void fe_carry(Fe& r) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      r.v[i + 1] += r.v[i] >> 51;
      r.v[i] &= kMask51;
    }
    r.v[0] += 19 * (r.v[4] >> 51);
    r.v[4] &= kMask51;
  }
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  fe_carry(r);
  return r;
}

// a - b with a 2p bias so intermediate limbs never underflow.
Fe fe_sub(const Fe& a, const Fe& b) {
  // 2p = {2^52-38, 2^52-2, 2^52-2, 2^52-2, 2^52-2} in radix 2^51.
  static constexpr u64 kTwoP[5] = {0xfffffffffffdaull, 0xffffffffffffeull,
                                   0xffffffffffffeull, 0xffffffffffffeull,
                                   0xffffffffffffeull};
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + kTwoP[i] - b.v[i];
  fe_carry(r);
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  u128 t[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      const u128 prod = static_cast<u128>(a.v[i]) * b.v[j];
      const int k = i + j;
      if (k < 5) {
        t[k] += prod;
      } else {
        t[k - 5] += prod * 19;
      }
    }
  }
  Fe r;
  u128 carry = 0;
  for (int i = 0; i < 5; ++i) {
    t[i] += carry;
    r.v[i] = static_cast<u64>(t[i]) & kMask51;
    carry = t[i] >> 51;
  }
  r.v[0] += static_cast<u64>(carry) * 19;
  fe_carry(r);
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_neg(const Fe& a) { return fe_sub(Fe{}, a); }

bool fe_is_zero(const Fe& a);

// Canonical little-endian 32-byte encoding (value fully reduced mod p).
std::array<std::uint8_t, 32> fe_tobytes(const Fe& a) {
  Fe t = a;
  fe_carry(t);
  // Pack into 4x64.
  u64 w[4];
  w[0] = t.v[0] | (t.v[1] << 51);
  w[1] = (t.v[1] >> 13) | (t.v[2] << 38);
  w[2] = (t.v[2] >> 26) | (t.v[3] << 25);
  w[3] = (t.v[3] >> 39) | (t.v[4] << 12);
  // Conditionally subtract p = 2^255 - 19 (value < 2^255 < 2p).
  const u64 p[4] = {0xffffffffffffffedull, 0xffffffffffffffffull,
                    0xffffffffffffffffull, 0x7fffffffffffffffull};
  // Compare w >= p.
  bool ge = true;
  for (int i = 3; i >= 0; --i) {
    if (w[i] > p[i]) break;
    if (w[i] < p[i]) {
      ge = false;
      break;
    }
  }
  if (ge) {
    unsigned borrow = 0;
    for (int i = 0; i < 4; ++i) {
      const u64 sub = p[i] + borrow;
      borrow = (w[i] < sub || (borrow && p[i] == ~0ull)) ? 1 : 0;
      w[i] -= sub;
    }
  }
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 4; ++i) store_le64(out.data() + 8 * i, w[i]);
  return out;
}

Fe fe_frombytes(const std::uint8_t* p) {
  u64 w[4];
  for (int i = 0; i < 4; ++i) w[i] = load_le64(p + 8 * i);
  w[3] &= 0x7fffffffffffffffull;  // ignore the sign bit
  Fe r;
  r.v[0] = w[0] & kMask51;
  r.v[1] = ((w[0] >> 51) | (w[1] << 13)) & kMask51;
  r.v[2] = ((w[1] >> 38) | (w[2] << 26)) & kMask51;
  r.v[3] = ((w[2] >> 25) | (w[3] << 39)) & kMask51;
  r.v[4] = (w[3] >> 12) & kMask51;
  fe_carry(r);
  return r;
}

bool fe_is_zero(const Fe& a) {
  const auto b = fe_tobytes(a);
  for (auto x : b)
    if (x != 0) return false;
  return true;
}

bool fe_equal(const Fe& a, const Fe& b) { return fe_is_zero(fe_sub(a, b)); }

bool fe_is_negative(const Fe& a) { return (fe_tobytes(a)[0] & 1) != 0; }

// Generic exponentiation with a little-endian 32-byte exponent.
Fe fe_pow(const Fe& base, const std::uint8_t exponent_le[32]) {
  Fe result = fe_from_u64(1);
  // Left-to-right over bits 254..0 (bit 255 of our exponents is never set).
  for (int bit = 254; bit >= 0; --bit) {
    result = fe_sq(result);
    if ((exponent_le[bit / 8] >> (bit % 8)) & 1) {
      result = fe_mul(result, base);
    }
  }
  return result;
}

// p - 2 (for inversion) and (p - 5) / 8 (for the sqrt candidate), little-
// endian. p = 2^255 - 19 so p-2 = ...ffeb and (p-5)/8 = (2^255-24)/8 =
// 2^252 - 3 = ...fffd with top byte 0x0f.
constexpr std::uint8_t kPMinus2[32] = {
    0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
constexpr std::uint8_t kPMinus5Over8[32] = {
    0xfd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f};

Fe fe_invert(const Fe& a) { return fe_pow(a, kPMinus2); }

// ---------------------------------------------------------------------
// Curve constants, computed once from first principles rather than
// transcribed: d = -121665/121666, sqrt(-1) = 2^((p-1)/4).
// ---------------------------------------------------------------------

struct CurveConstants {
  Fe d;
  Fe d2;        // 2d
  Fe sqrt_m1;   // sqrt(-1)
  CurveConstants() {
    d = fe_mul(fe_neg(fe_from_u64(121665)), fe_invert(fe_from_u64(121666)));
    d2 = fe_add(d, d);
    // (p-1)/4 = 2^253 - 5 -> little-endian bytes: 0xfb, 0xff.., top 0x1f.
    std::uint8_t e[32];
    std::memset(e, 0xff, 32);
    e[0] = 0xfb;
    e[31] = 0x1f;
    sqrt_m1 = fe_pow(fe_from_u64(2), e);
  }
};

const CurveConstants& constants() {
  static const CurveConstants c;
  return c;
}

// ---------------------------------------------------------------------
// Group: extended twisted Edwards coordinates (X : Y : Z : T), XY = ZT.
// ---------------------------------------------------------------------

struct Point {
  Fe x, y, z, t;
};

Point point_identity() {
  Point p;
  p.x = Fe{};
  p.y = fe_from_u64(1);
  p.z = fe_from_u64(1);
  p.t = Fe{};
  return p;
}

// add-2008-hwcd-3 for a = -1 twisted Edwards curves.
Point point_add(const Point& p, const Point& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, constants().d2), q.t);
  const Fe d = fe_mul(fe_add(p.z, p.z), q.z);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  Point r;
  r.x = fe_mul(e, f);
  r.y = fe_mul(g, h);
  r.t = fe_mul(e, h);
  r.z = fe_mul(f, g);
  return r;
}

// dbl-2008-hwcd for a = -1.
Point point_double(const Point& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe c = fe_add(fe_sq(p.z), fe_sq(p.z));
  const Fe d = fe_neg(a);
  const Fe e = fe_sub(fe_sub(fe_sq(fe_add(p.x, p.y)), a), b);
  const Fe g = fe_add(d, b);
  const Fe f = fe_sub(g, c);
  const Fe h = fe_sub(d, b);
  Point r;
  r.x = fe_mul(e, f);
  r.y = fe_mul(g, h);
  r.t = fe_mul(e, h);
  r.z = fe_mul(f, g);
  return r;
}

// Scalar multiplication, scalar as 32 little-endian bytes.
Point point_scalar_mul(const Point& p, const std::uint8_t scalar_le[32]) {
  Point r = point_identity();
  for (int bit = 255; bit >= 0; --bit) {
    r = point_double(r);
    if ((scalar_le[bit / 8] >> (bit % 8)) & 1) {
      r = point_add(r, p);
    }
  }
  return r;
}

std::array<std::uint8_t, 32> point_compress(const Point& p) {
  const Fe zinv = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zinv);
  const Fe y = fe_mul(p.y, zinv);
  auto out = fe_tobytes(y);
  if (fe_is_negative(x)) out[31] |= 0x80;
  return out;
}

std::optional<Point> point_decompress(const std::uint8_t encoded[32]) {
  const Fe y = fe_frombytes(encoded);
  const bool sign = (encoded[31] & 0x80) != 0;
  // x^2 = (y^2 - 1) / (d*y^2 + 1)
  const Fe yy = fe_sq(y);
  const Fe u = fe_sub(yy, fe_from_u64(1));
  const Fe v = fe_add(fe_mul(constants().d, yy), fe_from_u64(1));
  // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8)
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow(fe_mul(u, v7), kPMinus5Over8));
  const Fe vxx = fe_mul(v, fe_sq(x));
  if (!fe_equal(vxx, u)) {
    if (fe_equal(vxx, fe_neg(u))) {
      x = fe_mul(x, constants().sqrt_m1);
    } else {
      return std::nullopt;  // not a curve point
    }
  }
  if (fe_is_zero(x) && sign) return std::nullopt;  // -0 is invalid
  if (fe_is_negative(x) != sign) x = fe_neg(x);
  Point p;
  p.x = x;
  p.y = y;
  p.z = fe_from_u64(1);
  p.t = fe_mul(x, y);
  return p;
}

const Point& base_point() {
  static const Point b = [] {
    // y = 4/5 mod p, sign(x) = 0.
    const Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    auto enc = fe_tobytes(y);
    const auto p = point_decompress(enc.data());
    if (!p) throw std::logic_error("ed25519: base point decompress failed");
    return *p;
  }();
  return b;
}

// ---------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// Values are held in a 9x64 accumulator; reduction is binary long division
// (slow, simple, correct).
// ---------------------------------------------------------------------

struct Wide {
  u64 w[9] = {};  // little-endian limbs
};

int wide_bits(const Wide& a) {
  for (int i = 8; i >= 0; --i) {
    if (a.w[i] != 0) {
      int bit = 63;
      while (((a.w[i] >> bit) & 1) == 0) --bit;
      return 64 * i + bit + 1;
    }
  }
  return 0;
}

// a >= (b << shift)?
bool wide_ge_shifted(const Wide& a, const Wide& b, int shift) {
  // Compute c = b << shift into a temp (shift < 320 in practice).
  Wide c;
  const int word = shift / 64;
  const int bits = shift % 64;
  for (int i = 8; i >= 0; --i) {
    u64 v = 0;
    if (i - word >= 0) v = b.w[i - word] << bits;
    if (bits != 0 && i - word - 1 >= 0) v |= b.w[i - word - 1] >> (64 - bits);
    c.w[i] = v;
  }
  for (int i = 8; i >= 0; --i) {
    if (a.w[i] != c.w[i]) return a.w[i] > c.w[i];
  }
  return true;
}

void wide_sub_shifted(Wide& a, const Wide& b, int shift) {
  Wide c;
  const int word = shift / 64;
  const int bits = shift % 64;
  for (int i = 8; i >= 0; --i) {
    u64 v = 0;
    if (i - word >= 0) v = b.w[i - word] << bits;
    if (bits != 0 && i - word - 1 >= 0) v |= b.w[i - word - 1] >> (64 - bits);
    c.w[i] = v;
  }
  unsigned borrow = 0;
  for (int i = 0; i < 9; ++i) {
    const u64 rhs = c.w[i];
    const u64 old = a.w[i];
    a.w[i] = old - rhs - borrow;
    borrow = (old < rhs + borrow || (borrow && rhs == ~0ull)) ? 1 : 0;
  }
}

const Wide& order_l() {
  static const Wide l = [] {
    Wide x;
    // L little-endian.
    const std::uint8_t bytes[32] = {
        0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
        0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
    for (int i = 0; i < 4; ++i) x.w[i] = load_le64(bytes + 8 * i);
    return x;
  }();
  return l;
}

// Reduce in place mod L via binary long division.
void wide_mod_l(Wide& a) {
  const Wide& l = order_l();
  int abits = wide_bits(a);
  while (abits >= 253) {
    const int shift = abits - 253;
    if (wide_ge_shifted(a, l, shift)) {
      wide_sub_shifted(a, l, shift);
    } else if (shift > 0) {
      wide_sub_shifted(a, l, shift - 1);
    } else {
      break;
    }
    abits = wide_bits(a);
  }
  if (wide_ge_shifted(a, l, 0)) wide_sub_shifted(a, l, 0);
}

Wide wide_from_bytes(ByteView le_bytes) {
  Wide a;
  for (std::size_t i = 0; i < le_bytes.size() && i < 72; ++i) {
    a.w[i / 8] |= static_cast<u64>(le_bytes[i]) << (8 * (i % 8));
  }
  return a;
}

std::array<std::uint8_t, 32> wide_to_scalar_bytes(const Wide& a) {
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 4; ++i) store_le64(out.data() + 8 * i, a.w[i]);
  return out;
}

// r = (a * b + c) mod L, all inputs 32-byte little-endian scalars.
std::array<std::uint8_t, 32> sc_muladd(const std::uint8_t a[32],
                                       const std::uint8_t b[32],
                                       const std::uint8_t c[32]) {
  const Wide wa = wide_from_bytes({a, 32});
  const Wide wb = wide_from_bytes({b, 32});
  Wide prod;
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(wa.w[i]) * wb.w[j] + prod.w[i + j] +
                       carry;
      prod.w[i + j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    prod.w[i + 4] += static_cast<u64>(carry);
  }
  // prod += c
  u128 carry = 0;
  const Wide wc = wide_from_bytes({c, 32});
  for (int i = 0; i < 9; ++i) {
    const u128 cur = static_cast<u128>(prod.w[i]) + wc.w[i] + carry;
    prod.w[i] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
  wide_mod_l(prod);
  return wide_to_scalar_bytes(prod);
}

std::array<std::uint8_t, 32> sc_reduce512(const std::uint8_t h[64]) {
  Wide a = wide_from_bytes({h, 64});
  wide_mod_l(a);
  return wide_to_scalar_bytes(a);
}

bool sc_is_canonical(const std::uint8_t s[32]) {
  const Wide a = wide_from_bytes({s, 32});
  return !wide_ge_shifted(a, order_l(), 0);
}

std::array<std::uint8_t, 32> clamp_seed_hash(
    const std::array<std::uint8_t, 64>& h) {
  std::array<std::uint8_t, 32> s{};
  std::copy(h.begin(), h.begin() + 32, s.begin());
  s[0] &= 0xf8;
  s[31] &= 0x7f;
  s[31] |= 0x40;
  return s;
}

}  // namespace

Ed25519KeyPair ed25519_keypair(ByteView seed) {
  if (seed.size() != 32) {
    throw std::invalid_argument("ed25519_keypair: seed must be 32 bytes");
  }
  Ed25519KeyPair kp;
  std::copy(seed.begin(), seed.end(), kp.seed.begin());
  const auto h = Sha512::hash(seed);
  const auto s = clamp_seed_hash(h);
  kp.public_key = point_compress(point_scalar_mul(base_point(), s.data()));
  return kp;
}

std::array<std::uint8_t, 64> ed25519_sign(const Ed25519KeyPair& kp,
                                          ByteView message) {
  const auto h = Sha512::hash({kp.seed.data(), kp.seed.size()});
  const auto s = clamp_seed_hash(h);

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.update({h.data() + 32, 32});
  hr.update(message);
  const auto r = sc_reduce512(hr.digest().data());

  const auto r_enc = point_compress(point_scalar_mul(base_point(), r.data()));

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update({r_enc.data(), 32});
  hk.update({kp.public_key.data(), 32});
  hk.update(message);
  const auto k = sc_reduce512(hk.digest().data());

  const auto s_out = sc_muladd(k.data(), s.data(), r.data());

  std::array<std::uint8_t, 64> sig{};
  std::copy(r_enc.begin(), r_enc.end(), sig.begin());
  std::copy(s_out.begin(), s_out.end(), sig.begin() + 32);
  return sig;
}

bool ed25519_verify(ByteView public_key, ByteView message,
                    ByteView signature) {
  if (public_key.size() != 32 || signature.size() != 64) return false;
  const auto a = point_decompress(public_key.data());
  if (!a) return false;
  const auto r = point_decompress(signature.data());
  if (!r) return false;
  if (!sc_is_canonical(signature.data() + 32)) return false;

  Sha512 hk;
  hk.update(signature.first(32));
  hk.update(public_key);
  hk.update(message);
  const auto k = sc_reduce512(hk.digest().data());

  // Check S*B == R + k*A.
  const Point lhs = point_scalar_mul(base_point(), signature.data() + 32);
  const Point rhs = point_add(*r, point_scalar_mul(*a, k.data()));
  return point_compress(lhs) == point_compress(rhs);
}

}  // namespace convolve::crypto
