#include "convolve/crypto/kyber.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "convolve/crypto/detail/pqc_ntt.hpp"
#include "convolve/crypto/keccak.hpp"

namespace convolve::crypto::kyber {

namespace {

using Poly = std::array<std::int16_t, kN>;
using PolyVec = std::array<Poly, kK>;

// ---------------------------------------------------------------------
// Modular helpers. q is tiny, so plain 32-bit arithmetic suffices.
// ---------------------------------------------------------------------

std::int16_t mod_q(std::int32_t a) {
  return detail::ntt_mod<std::int16_t, std::int32_t>(a, kQ);
}

std::int16_t mul_q(std::int32_t a, std::int32_t b) { return mod_q(a * b); }

// Centered representative in (-q/2, q/2].
std::int32_t centered(std::int16_t a) {
  std::int32_t r = a;
  if (r > kQ / 2) r -= kQ;
  return r;
}

// ---------------------------------------------------------------------
// NTT. zeta = 17 is a primitive 256th root of unity mod q. The tables are
// generated at first use (bit-reversed powers), not transcribed.
// ---------------------------------------------------------------------

int bitrev7(int i) {
  int r = 0;
  for (int b = 0; b < 7; ++b) {
    r |= ((i >> b) & 1) << (6 - b);
  }
  return r;
}

struct NttTables {
  std::array<std::int16_t, 128> zetas{};      // 17^bitrev7(i)
  std::array<std::int16_t, 128> inv_zetas{};  // 17^(-bitrev7(i))
  std::array<std::int16_t, 128> gammas{};     // 17^(2*bitrev7(i)+1)
  NttTables() {
    std::array<std::int16_t, 256> pow{};
    pow[0] = 1;
    for (int i = 1; i < 256; ++i) pow[i] = mul_q(pow[i - 1], 17);
    for (int i = 0; i < 128; ++i) {
      zetas[i] = pow[bitrev7(i)];
      inv_zetas[i] = pow[(256 - bitrev7(i)) % 256];
      gammas[i] = pow[(2 * bitrev7(i) + 1) % 256];
    }
  }
};

const NttTables& tables() {
  static const NttTables t;
  return t;
}

// Kyber splits down to 128 degree-1 factors (min_len = 2); the shared
// Cooley-Tukey / Gentleman-Sande template in detail/pqc_ntt.hpp does the
// butterflies, parameterized here with 16-bit coefficients and 32-bit
// intermediate arithmetic. 128^{-1} = 3303 mod q.
void ntt(Poly& f) {
  detail::ntt_forward<std::int16_t, std::int32_t>(f.data(), kN, 2,
                                                  tables().zetas.data(), kQ);
}

void intt(Poly& f) {
  detail::ntt_inverse<std::int16_t, std::int32_t>(
      f.data(), kN, 2, tables().inv_zetas.data(), kQ,
      static_cast<std::int16_t>(3303));
}

// Pairwise multiplication in the NTT domain (128 degree-1 factors).
Poly basemul(const Poly& a, const Poly& b) {
  Poly r{};
  for (int i = 0; i < 128; ++i) {
    const std::int16_t g = tables().gammas[i];
    const std::int16_t a0 = a[2 * i], a1 = a[2 * i + 1];
    const std::int16_t b0 = b[2 * i], b1 = b[2 * i + 1];
    r[2 * i] = mod_q(mul_q(a0, b0) + mul_q(mul_q(a1, b1), g));
    r[2 * i + 1] = mod_q(mul_q(a0, b1) + mul_q(a1, b0));
  }
  return r;
}

Poly poly_add(const Poly& a, const Poly& b) {
  Poly r;
  for (int i = 0; i < kN; ++i) r[i] = mod_q(a[i] + b[i]);
  return r;
}

Poly poly_sub(const Poly& a, const Poly& b) {
  Poly r;
  for (int i = 0; i < kN; ++i) r[i] = mod_q(a[i] - b[i]);
  return r;
}

// ---------------------------------------------------------------------
// Samplers.
// ---------------------------------------------------------------------

// Rejection-sample a uniform polynomial from SHAKE128(rho || j || i).
Poly sample_uniform(ByteView rho, std::uint8_t j, std::uint8_t i) {
  Shake xof(Shake::Variant::k128);
  const std::uint8_t idx[2] = {j, i};
  xof.absorb(rho);
  xof.absorb({idx, 2});
  Poly f{};
  int count = 0;
  std::uint8_t buf[3];
  while (count < kN) {
    xof.squeeze({buf, 3});
    const int d1 = buf[0] | ((buf[1] & 0x0f) << 8);
    const int d2 = (buf[1] >> 4) | (buf[2] << 4);
    if (d1 < kQ) f[count++] = static_cast<std::int16_t>(d1);
    if (d2 < kQ && count < kN) f[count++] = static_cast<std::int16_t>(d2);
  }
  return f;
}

// Centered binomial distribution with parameter eta from
// PRF = SHAKE256(seed || nonce).
Poly sample_cbd(ByteView seed, std::uint8_t nonce, int eta) {
  Shake prf(Shake::Variant::k256);
  prf.absorb(seed);
  prf.absorb({&nonce, 1});
  const Bytes buf = prf.squeeze(static_cast<std::size_t>(64 * eta));
  Poly f{};
  // Consume 2*eta bits per coefficient.
  std::size_t bit = 0;
  auto next_bit = [&]() {
    const std::uint8_t byte = buf[bit / 8];
    const int b = (byte >> (bit % 8)) & 1;
    ++bit;
    return b;
  };
  for (int i = 0; i < kN; ++i) {
    int a = 0, b = 0;
    for (int j = 0; j < eta; ++j) a += next_bit();
    for (int j = 0; j < eta; ++j) b += next_bit();
    f[i] = mod_q(a - b);
  }
  return f;
}

// ---------------------------------------------------------------------
// Compression and serialization.
// ---------------------------------------------------------------------

std::int16_t compress(std::int16_t x, int d) {
  // round((2^d / q) * x) mod 2^d
  const std::int64_t num = (static_cast<std::int64_t>(x) << d) + kQ / 2;
  return static_cast<std::int16_t>((num / kQ) & ((1 << d) - 1));
}

std::int16_t decompress(std::int16_t y, int d) {
  const std::int64_t num = static_cast<std::int64_t>(y) * kQ + (1ll << (d - 1));
  return static_cast<std::int16_t>(num >> d);
}

// Pack each coefficient into `bits` bits, little-endian bit order.
void pack_bits(const Poly& f, int bits, Bytes& out) {
  std::uint32_t acc = 0;
  int acc_bits = 0;
  for (int i = 0; i < kN; ++i) {
    acc |= static_cast<std::uint32_t>(f[i] & ((1 << bits) - 1)) << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  assert(acc_bits == 0);
}

Poly unpack_bits(const std::uint8_t*& p, int bits) {
  Poly f{};
  std::uint32_t acc = 0;
  int acc_bits = 0;
  for (int i = 0; i < kN; ++i) {
    while (acc_bits < bits) {
      acc |= static_cast<std::uint32_t>(*p++) << acc_bits;
      acc_bits += 8;
    }
    f[i] = static_cast<std::int16_t>(acc & ((1u << bits) - 1));
    acc >>= bits;
    acc_bits -= bits;
  }
  return f;
}

// ---------------------------------------------------------------------
// The K-PKE scheme.
// ---------------------------------------------------------------------

struct Matrix {
  PolyVec rows[kK];  // A[i][j], already in the NTT domain
};

Matrix expand_a(ByteView rho, bool transposed) {
  Matrix a;
  for (int i = 0; i < kK; ++i) {
    for (int j = 0; j < kK; ++j) {
      a.rows[i][j] = transposed
                         ? sample_uniform(rho, static_cast<std::uint8_t>(i),
                                          static_cast<std::uint8_t>(j))
                         : sample_uniform(rho, static_cast<std::uint8_t>(j),
                                          static_cast<std::uint8_t>(i));
    }
  }
  return a;
}

PolyVec matvec_ntt(const Matrix& a, const PolyVec& s_hat) {
  PolyVec t{};
  for (int i = 0; i < kK; ++i) {
    Poly acc{};
    for (int j = 0; j < kK; ++j) {
      acc = poly_add(acc, basemul(a.rows[i][j], s_hat[j]));
    }
    t[i] = acc;
  }
  return t;
}

Poly dot_ntt(const PolyVec& a, const PolyVec& b) {
  Poly acc{};
  for (int i = 0; i < kK; ++i) acc = poly_add(acc, basemul(a[i], b[i]));
  return acc;
}

}  // namespace

PkeKeyPair pke_keygen(ByteView d32) {
  if (d32.size() != 32) throw std::invalid_argument("pke_keygen: seed != 32B");
  const Bytes g = sha3_512(d32);
  const ByteView rho{g.data(), 32};
  const ByteView sigma{g.data() + 32, 32};

  const Matrix a = expand_a(rho, /*transposed=*/false);
  PolyVec s{}, e{};
  std::uint8_t nonce = 0;
  for (int i = 0; i < kK; ++i) s[i] = sample_cbd(sigma, nonce++, kEta1);
  for (int i = 0; i < kK; ++i) e[i] = sample_cbd(sigma, nonce++, kEta1);
  for (auto& p : s) ntt(p);
  for (auto& p : e) ntt(p);

  PolyVec t = matvec_ntt(a, s);
  for (int i = 0; i < kK; ++i) t[i] = poly_add(t[i], e[i]);

  PkeKeyPair kp;
  for (int i = 0; i < kK; ++i) pack_bits(t[i], 12, kp.pk);
  kp.pk.insert(kp.pk.end(), rho.begin(), rho.end());
  for (int i = 0; i < kK; ++i) pack_bits(s[i], 12, kp.sk);
  return kp;
}

Bytes pke_encrypt(ByteView pk, ByteView msg32, ByteView coins32) {
  if (pk.size() != kEkBytes) throw std::invalid_argument("pke_encrypt: bad pk");
  if (msg32.size() != 32 || coins32.size() != 32) {
    throw std::invalid_argument("pke_encrypt: bad msg/coins");
  }
  const std::uint8_t* p = pk.data();
  PolyVec t{};
  for (int i = 0; i < kK; ++i) t[i] = unpack_bits(p, 12);
  const ByteView rho{pk.data() + 384 * kK, 32};

  const Matrix at = expand_a(rho, /*transposed=*/true);
  PolyVec r{}, e1{};
  std::uint8_t nonce = 0;
  for (int i = 0; i < kK; ++i) r[i] = sample_cbd(coins32, nonce++, kEta1);
  for (int i = 0; i < kK; ++i) e1[i] = sample_cbd(coins32, nonce++, kEta2);
  const Poly e2 = sample_cbd(coins32, nonce++, kEta2);

  for (auto& pr : r) ntt(pr);

  PolyVec u = matvec_ntt(at, r);
  for (auto& pu : u) intt(pu);
  for (int i = 0; i < kK; ++i) u[i] = poly_add(u[i], e1[i]);

  Poly v = dot_ntt(t, r);
  intt(v);
  v = poly_add(v, e2);
  // Add decompress_1(msg): bit -> 0 or ceil(q/2).
  Poly m{};
  for (int i = 0; i < kN; ++i) {
    const int bit = (msg32[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1;
    m[i] = static_cast<std::int16_t>(bit * ((kQ + 1) / 2));
  }
  v = poly_add(v, m);

  Bytes ct;
  for (int i = 0; i < kK; ++i) {
    Poly cu;
    for (int j = 0; j < kN; ++j) cu[j] = compress(u[i][j], kDu);
    pack_bits(cu, kDu, ct);
  }
  Poly cv;
  for (int j = 0; j < kN; ++j) cv[j] = compress(v[j], kDv);
  pack_bits(cv, kDv, ct);
  assert(ct.size() == kCtBytes);
  return ct;
}

Bytes pke_decrypt(ByteView sk, ByteView ciphertext) {
  if (sk.size() < static_cast<std::size_t>(384 * kK)) {
    throw std::invalid_argument("pke_decrypt: bad sk");
  }
  if (ciphertext.size() != kCtBytes) {
    throw std::invalid_argument("pke_decrypt: bad ciphertext");
  }
  const std::uint8_t* p = sk.data();
  PolyVec s{};
  for (int i = 0; i < kK; ++i) s[i] = unpack_bits(p, 12);

  const std::uint8_t* c = ciphertext.data();
  PolyVec u{};
  for (int i = 0; i < kK; ++i) {
    Poly cu = unpack_bits(c, kDu);
    for (int j = 0; j < kN; ++j) u[i][j] = decompress(cu[j], kDu);
  }
  Poly cv = unpack_bits(c, kDv);
  Poly v;
  for (int j = 0; j < kN; ++j) v[j] = decompress(cv[j], kDv);

  for (auto& pu : u) ntt(pu);
  Poly su = dot_ntt(s, u);
  intt(su);
  const Poly w = poly_sub(v, su);

  Bytes msg(32, 0);
  for (int i = 0; i < kN; ++i) {
    // compress_1: closest of {0, q/2}.
    const std::int32_t dist = std::abs(centered(w[i]));
    const int bit = (dist > kQ / 4) ? 1 : 0;
    msg[static_cast<std::size_t>(i / 8)] |=
        static_cast<std::uint8_t>(bit << (i % 8));
  }
  return msg;
}

KeyPair keygen(ByteView seed64) {
  if (seed64.size() != 64) throw std::invalid_argument("keygen: seed != 64B");
  const ByteView d{seed64.data(), 32};
  const ByteView z{seed64.data() + 32, 32};

  PkeKeyPair pke = pke_keygen(d);
  KeyPair kp;
  kp.ek = pke.pk;
  kp.dk = pke.sk;
  kp.dk.insert(kp.dk.end(), kp.ek.begin(), kp.ek.end());
  const Bytes h = sha3_256(kp.ek);
  kp.dk.insert(kp.dk.end(), h.begin(), h.end());
  kp.dk.insert(kp.dk.end(), z.begin(), z.end());
  assert(kp.ek.size() == kEkBytes);
  assert(kp.dk.size() == kDkBytes);
  return kp;
}

Encapsulation encaps(ByteView ek, ByteView m32) {
  if (ek.size() != kEkBytes) throw std::invalid_argument("encaps: bad ek");
  if (m32.size() != 32) throw std::invalid_argument("encaps: bad m");
  const Bytes hek = sha3_256(ek);
  const Bytes g = sha3_512(concat({m32, hek}));
  Encapsulation out;
  std::copy(g.begin(), g.begin() + 32, out.shared_secret.begin());
  const ByteView coins{g.data() + 32, 32};
  out.ciphertext = pke_encrypt(ek, m32, coins);
  return out;
}

std::array<std::uint8_t, kSsBytes> decaps(ByteView dk, ByteView ciphertext) {
  if (dk.size() != kDkBytes) throw std::invalid_argument("decaps: bad dk");
  if (ciphertext.size() != kCtBytes) {
    throw std::invalid_argument("decaps: bad ciphertext");
  }
  const ByteView sk_pke{dk.data(), 384 * kK};
  const ByteView ek{dk.data() + 384 * kK, kEkBytes};
  const ByteView hek{dk.data() + 384 * kK + kEkBytes, 32};
  const ByteView z{dk.data() + 384 * kK + kEkBytes + 32, 32};

  const Bytes m = pke_decrypt(sk_pke, ciphertext);
  const Bytes g = sha3_512(concat({ByteView{m}, hek}));
  const ByteView k_prime{g.data(), 32};
  const ByteView coins{g.data() + 32, 32};

  const Bytes c_prime = pke_encrypt(ek, m, coins);

  std::array<std::uint8_t, kSsBytes> out{};
  if (ct_equal(c_prime, ciphertext)) {
    std::copy(k_prime.begin(), k_prime.end(), out.begin());
  } else {
    // Implicit rejection: K = SHAKE256(z || c).
    const Bytes rej = shake256(concat({z, ciphertext}), 32);
    std::copy(rej.begin(), rej.end(), out.begin());
  }
  return out;
}

}  // namespace convolve::crypto::kyber
