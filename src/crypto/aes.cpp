#include "convolve/crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace convolve::crypto {

namespace {

// GF(2^8) helpers with the AES polynomial x^8 + x^4 + x^3 + x + 1.
constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return r;
}

struct SboxTables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};

  constexpr SboxTables() {
    // Build the multiplicative inverse table by brute force (256^2 checks,
    // done once at static init), then apply the affine transform.
    std::array<std::uint8_t, 256> inv{};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (gf_mul(static_cast<std::uint8_t>(a),
                   static_cast<std::uint8_t>(b)) == 1) {
          inv[static_cast<std::size_t>(a)] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t x = inv[static_cast<std::size_t>(i)];
      std::uint8_t y = x;
      std::uint8_t s = x;
      for (int k = 0; k < 4; ++k) {
        y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
        s ^= y;
      }
      s ^= 0x63;
      sbox[static_cast<std::size_t>(i)] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(i);
    }
  }
};

const SboxTables kTables{};

constexpr std::uint8_t kRcon[15] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c,
                                    0xd8, 0xab, 0x4d};

void sub_bytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = kTables.sbox[s[i]];
}

void inv_sub_bytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = kTables.inv_sbox[s[i]];
}

// State is column-major: s[4*c + r] is row r, column c.
void shift_rows(std::uint8_t s[16]) {
  std::uint8_t t[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) t[4 * c + r] = s[4 * ((c + r) % 4) + r];
  }
  std::memcpy(s, t, 16);
}

void inv_shift_rows(std::uint8_t s[16]) {
  std::uint8_t t[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) t[4 * ((c + r) % 4) + r] = s[4 * c + r];
  }
  std::memcpy(s, t, 16);
}

void mix_columns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
  }
}

void inv_mix_columns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^
                                       gf_mul(a2, 13) ^ gf_mul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^
                                       gf_mul(a2, 11) ^ gf_mul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^
                                       gf_mul(a2, 14) ^ gf_mul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^
                                       gf_mul(a2, 9) ^ gf_mul(a3, 14));
  }
}

void add_round_key(std::uint8_t s[16], const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

}  // namespace

Aes::Aes(KeySize size, ByteView key) {
  const std::size_t nk = (size == KeySize::k128) ? 4 : 8;  // words in key
  rounds_ = (size == KeySize::k128) ? 10 : 14;
  if (key.size() != nk * 4) {
    throw std::invalid_argument("Aes: key length does not match key size");
  }
  const std::size_t total_words = 4u * static_cast<std::size_t>(rounds_ + 1);
  // Word-oriented key expansion (FIPS 197 section 5.2).
  std::array<std::uint8_t, 15 * 16> w{};
  std::memcpy(w.data(), key.data(), key.size());
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, w.data() + 4 * (i - 1), 4);
    if (i % nk == 0) {
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kTables.sbox[temp[1]] ^
                                          kRcon[i / nk]);
      temp[1] = kTables.sbox[temp[2]];
      temp[2] = kTables.sbox[temp[3]];
      temp[3] = kTables.sbox[t0];
    } else if (nk > 6 && i % nk == 4) {
      for (auto& b : temp) b = kTables.sbox[b];
    }
    for (int j = 0; j < 4; ++j) {
      w[4 * i + static_cast<std::size_t>(j)] =
          w[4 * (i - nk) + static_cast<std::size_t>(j)] ^ temp[j];
    }
  }
  round_keys_ = w;
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, round_keys_.data());
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_.data() + 16 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_.data() + 16 * rounds_);
  std::memcpy(out, s, 16);
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, round_keys_.data() + 16 * rounds_);
  for (int round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_.data() + 16 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, round_keys_.data());
  std::memcpy(out, s, 16);
}

Bytes aes256_ctr(ByteView key, ByteView nonce, std::uint32_t initial_counter,
                 ByteView data) {
  if (nonce.size() != 12) {
    throw std::invalid_argument("aes256_ctr: nonce must be 12 bytes");
  }
  const Aes aes(Aes::KeySize::k256, key);
  Bytes out(data.begin(), data.end());
  std::uint8_t counter_block[16];
  std::memcpy(counter_block, nonce.data(), 12);
  std::uint32_t ctr = initial_counter;
  std::size_t off = 0;
  while (off < out.size()) {
    store_be32(counter_block + 12, ctr++);
    std::uint8_t keystream[16];
    aes.encrypt_block(counter_block, keystream);
    const std::size_t n = std::min<std::size_t>(16, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    off += n;
  }
  return out;
}

}  // namespace convolve::crypto
