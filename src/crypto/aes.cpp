#include "convolve/crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

#include "convolve/crypto/detail/aes_core.hpp"

namespace convolve::crypto {

namespace {

// GF(2^8) helpers with the AES polynomial x^8 + x^4 + x^3 + x + 1.
constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return r;
}

// The derived tables are kept for two reasons even though encryption now
// runs the bitsliced Boyar-Peralta circuit: decryption does a
// constant-time scan lookup of the inverse table, and the analysis tests
// cross-check the circuit against this independently-derived table.
struct SboxTables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};

  constexpr SboxTables() {
    // Build the multiplicative inverse table by brute force (256^2 checks,
    // done once at static init), then apply the affine transform.
    std::array<std::uint8_t, 256> inv{};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (gf_mul(static_cast<std::uint8_t>(a),
                   static_cast<std::uint8_t>(b)) == 1) {
          inv[static_cast<std::size_t>(a)] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t x = inv[static_cast<std::size_t>(i)];
      std::uint8_t y = x;
      std::uint8_t s = x;
      for (int k = 0; k < 4; ++k) {
        y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
        s ^= y;
      }
      s ^= 0x63;
      sbox[static_cast<std::size_t>(i)] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(i);
    }
  }
};

const SboxTables kTables{};

}  // namespace

const std::uint8_t* aes_sbox_table() { return kTables.sbox.data(); }
const std::uint8_t* aes_inv_sbox_table() { return kTables.inv_sbox.data(); }

Aes::Aes(KeySize size, ByteView key) {
  const std::size_t nk = (size == KeySize::k128) ? 4 : 8;  // words in key
  rounds_ = (size == KeySize::k128) ? 10 : 14;
  if (key.size() != nk * 4) {
    throw std::invalid_argument("Aes: key length does not match key size");
  }
  detail::aes_key_expand(key.data(), nk, rounds_, round_keys_.data());
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  detail::aes_encrypt_block(round_keys_.data(), rounds_, in, out);
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  detail::aes_decrypt_block(round_keys_.data(), rounds_,
                            kTables.inv_sbox.data(), in, out);
}

Bytes aes256_ctr(ByteView key, ByteView nonce, std::uint32_t initial_counter,
                 ByteView data) {
  if (nonce.size() != 12) {
    throw std::invalid_argument("aes256_ctr: nonce must be 12 bytes");
  }
  const Aes aes(Aes::KeySize::k256, key);
  Bytes out(data.begin(), data.end());
  std::uint8_t counter_block[16];
  std::memcpy(counter_block, nonce.data(), 12);
  std::uint32_t ctr = initial_counter;
  std::size_t off = 0;
  while (off < out.size()) {
    store_be32(counter_block + 12, ctr++);
    std::uint8_t keystream[16];
    aes.encrypt_block(counter_block, keystream);
    const std::size_t n = std::min<std::size_t>(16, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    off += n;
  }
  return out;
}

}  // namespace convolve::crypto
