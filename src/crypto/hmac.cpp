#include "convolve/crypto/hmac.hpp"

#include <stdexcept>

#include "convolve/crypto/detail/sha512_core.hpp"
#include "convolve/crypto/sha512.hpp"

namespace convolve::crypto {

Bytes hmac_sha512(ByteView key, ByteView message) {
  Bytes out(Sha512::kDigestSize);
  detail::hmac_sha512_ct<std::uint64_t, std::uint8_t>(
      key.data(), key.size(), message.data(), message.size(), out.data());
  return out;
}

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  return hmac_sha512(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t out_len) {
  constexpr std::size_t kHash = Sha512::kDigestSize;
  if (out_len > 255 * kHash) {
    throw std::invalid_argument("hkdf_expand: output too long");
  }
  Bytes out;
  out.reserve(out_len);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    t = hmac_sha512(prk, input);
    const std::size_t take = std::min(kHash, out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t out_len) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, out_len);
}

}  // namespace convolve::crypto
