#include "convolve/crypto/hmac.hpp"

#include <stdexcept>

#include "convolve/crypto/sha512.hpp"

namespace convolve::crypto {

Bytes hmac_sha512(ByteView key, ByteView message) {
  constexpr std::size_t kBlock = Sha512::kBlockSize;
  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    const auto kh = Sha512::hash(key);
    std::copy(kh.begin(), kh.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha512 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.digest();
  Sha512 outer;
  outer.update(opad);
  outer.update({inner_digest.data(), inner_digest.size()});
  const auto d = outer.digest();
  return Bytes(d.begin(), d.end());
}

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  return hmac_sha512(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t out_len) {
  constexpr std::size_t kHash = Sha512::kDigestSize;
  if (out_len > 255 * kHash) {
    throw std::invalid_argument("hkdf_expand: output too long");
  }
  Bytes out;
  out.reserve(out_len);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    t = hmac_sha512(prk, input);
    const std::size_t take = std::min(kHash, out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t out_len) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, out_len);
}

}  // namespace convolve::crypto
