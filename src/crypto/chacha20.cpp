#include "convolve/crypto/chacha20.hpp"

#include <stdexcept>

#include "convolve/crypto/detail/chacha_core.hpp"

namespace convolve::crypto {

std::array<std::uint8_t, 64> chacha20_block(ByteView key, ByteView nonce,
                                            std::uint32_t counter) {
  if (key.size() != 32) throw std::invalid_argument("chacha20: key != 32B");
  if (nonce.size() != 12) throw std::invalid_argument("chacha20: nonce != 12B");

  std::uint32_t x[16];
  x[0] = 0x61707865;
  x[1] = 0x3320646e;
  x[2] = 0x79622d32;
  x[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) x[4 + i] = load_le32(key.data() + 4 * i);
  x[12] = counter;
  for (int i = 0; i < 3; ++i) x[13 + i] = load_le32(nonce.data() + 4 * i);

  detail::chacha20_core(x);

  std::array<std::uint8_t, 64> out{};
  for (int i = 0; i < 16; ++i) store_le32(out.data() + 4 * i, x[i]);
  return out;
}

Bytes chacha20_xor(ByteView key, ByteView nonce, std::uint32_t initial_counter,
                   ByteView data) {
  Bytes out(data.begin(), data.end());
  std::uint32_t ctr = initial_counter;
  std::size_t off = 0;
  while (off < out.size()) {
    const auto keystream = chacha20_block(key, nonce, ctr++);
    const std::size_t n = std::min<std::size_t>(64, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    off += n;
  }
  return out;
}

}  // namespace convolve::crypto
