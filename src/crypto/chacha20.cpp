#include "convolve/crypto/chacha20.hpp"

#include <stdexcept>

namespace convolve::crypto {

namespace {

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(ByteView key, ByteView nonce,
                                            std::uint32_t counter) {
  if (key.size() != 32) throw std::invalid_argument("chacha20: key != 32B");
  if (nonce.size() != 12) throw std::invalid_argument("chacha20: nonce != 12B");

  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  std::array<std::uint8_t, 64> out{};
  for (int i = 0; i < 16; ++i) store_le32(out.data() + 4 * i, x[i] + state[i]);
  return out;
}

Bytes chacha20_xor(ByteView key, ByteView nonce, std::uint32_t initial_counter,
                   ByteView data) {
  Bytes out(data.begin(), data.end());
  std::uint32_t ctr = initial_counter;
  std::size_t off = 0;
  while (off < out.size()) {
    const auto keystream = chacha20_block(key, nonce, ctr++);
    const std::size_t n = std::min<std::size_t>(64, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    off += n;
  }
  return out;
}

}  // namespace convolve::crypto
