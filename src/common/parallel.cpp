#include "convolve/common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "convolve/common/telemetry.hpp"

namespace convolve::par {

namespace {

#if CONVOLVE_TELEMETRY_ENABLED
// pool.tasks is deterministic for a given (n, grain, input) workload:
// chunking is schedule-independent, and the serial path counts the same
// chunks the pool would. pool.steals and pool.worker_wait_ns depend on OS
// scheduling and are expected to vary run-over-run.
telemetry::Counter t_tasks{"pool.tasks"};
telemetry::Counter t_steals{"pool.steals"};
telemetry::Counter t_jobs{"pool.jobs"};
telemetry::Counter t_wait_ns{"pool.worker_wait_ns"};
telemetry::Gauge t_threads{"pool.threads"};
telemetry::Histogram t_task_ns{"pool.task_ns"};
#endif

// Set while a thread is executing chunks of a parallel region; nested
// parallel regions then run inline on that thread instead of deadlocking on
// the (single-job) pool.
thread_local bool g_in_parallel_region = false;

// A single parallel region: n_chunks tasks distributed round-robin over the
// participants' deques. Owners pop from the back; thieves steal from the
// front. `remaining` counts unfinished chunks; the caller spins on it via
// the done condition variable.
struct Job {
  explicit Job(std::uint64_t n_chunks, int n_participants,
               const std::function<void(std::uint64_t)>& body)
      : fn(body), queues(static_cast<std::size_t>(n_participants)),
        remaining(n_chunks) {
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
      auto& q = queues[static_cast<std::size_t>(
          c % static_cast<std::uint64_t>(n_participants))];
      q.items.push_back(c);
    }
  }

  struct Queue {
    std::mutex mu;
    std::deque<std::uint64_t> items;
  };

  // Pop from the back of our own deque, else steal from the front of the
  // first non-empty victim (sets `stolen`). Returns false when no work is
  // left anywhere.
  bool take(int self, std::uint64_t& out, bool& stolen) {
    stolen = false;
    auto& own = queues[static_cast<std::size_t>(self)];
    {
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.items.empty()) {
        out = own.items.back();
        own.items.pop_back();
        return true;
      }
    }
    const int n = static_cast<int>(queues.size());
    for (int delta = 1; delta < n; ++delta) {
      auto& victim = queues[static_cast<std::size_t>((self + delta) % n)];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.items.empty()) {
        out = victim.items.front();  // steal the oldest chunk
        victim.items.pop_front();
        stolen = true;
        return true;
      }
    }
    return false;
  }

  void work(int self) {
    g_in_parallel_region = true;
    std::uint64_t chunk = 0;
    bool stolen = false;
    CONVOLVE_TELEMETRY_ONLY(std::uint64_t my_tasks = 0; std::uint64_t my_steals = 0;)
    while (take(self, chunk, stolen)) {
      CONVOLVE_TELEMETRY_ONLY(++my_tasks; my_steals += stolen ? 1 : 0;
                              const std::uint64_t t0 = telemetry::trace_now_ns();)
      if (!failed.load(std::memory_order_acquire)) {
        try {
          fn(chunk);
        } catch (...) {
          bool expected = false;
          if (failed.compare_exchange_strong(expected, true)) {
            std::lock_guard<std::mutex> lock(error_mu);
            error = std::current_exception();
          }
        }
      }
      CONVOLVE_TELEMETRY_ONLY(
          const std::uint64_t dur = telemetry::trace_now_ns() - t0;
          t_task_ns.record(dur);
          telemetry::record_span("pool.task", t0, dur);)
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
    // Flush per-participant tallies once per job, not per chunk.
    CONVOLVE_TELEMETRY_ONLY(t_tasks.add(my_tasks); t_steals.add(my_steals);)
    g_in_parallel_region = false;
  }

  const std::function<void(std::uint64_t)>& fn;
  std::vector<Queue> queues;
  std::atomic<std::uint64_t> remaining;
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  std::mutex done_mu;
  std::condition_variable done_cv;
};

// Persistent worker pool. One job runs at a time (parallel regions are
// serialised by run_mu); workers sleep between jobs.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::uint64_t n_chunks, int total_threads,
           const std::function<void(std::uint64_t)>& fn) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    ensure_workers(total_threads - 1);
    CONVOLVE_TELEMETRY_ONLY(t_jobs.add(1); t_threads.set(total_threads);)
    Job job(n_chunks, total_threads, fn);
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      job_ = &job;
      ++job_epoch_;
    }
    job_cv_.notify_all();
    // The caller is participant index total_threads-1 (workers are 0..n-2);
    // it works the job like any other participant.
    job.work(total_threads - 1);
    {
      std::unique_lock<std::mutex> lock(job.done_mu);
      job.done_cv.wait(lock, [&] {
        return job.remaining.load(std::memory_order_acquire) == 0;
      });
    }
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      job_ = nullptr;
      ++job_epoch_;
    }
    // Wait until every worker has left the job before it goes out of scope.
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      idle_cv_.wait(lock, [&] { return active_workers_ == 0; });
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      shutdown_ = true;
    }
    job_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void ensure_workers(int n_workers) {
    std::lock_guard<std::mutex> lock(job_mu_);
    while (static_cast<int>(workers_.size()) < n_workers) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_loop(index); });
    }
    wanted_workers_ = n_workers;
  }

  void worker_loop(int index) {
#if CONVOLVE_TELEMETRY_ENABLED
    // Deterministic thread identity in exported traces: pool index, not OS
    // thread id, so traces from equal --threads N runs line up.
    {
      char name[32];
      std::snprintf(name, sizeof(name), "worker-%d", index);
      telemetry::set_thread_name(name);
    }
#endif
    std::uint64_t seen_epoch = 0;
    while (true) {
      Job* job = nullptr;
      {
        CONVOLVE_TELEMETRY_ONLY(const std::uint64_t w0 = telemetry::trace_now_ns();)
        std::unique_lock<std::mutex> lock(job_mu_);
        job_cv_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && job_epoch_ != seen_epoch &&
                               index < wanted_workers_);
        });
        // Idle time between jobs (includes the pre-shutdown wait).
        CONVOLVE_TELEMETRY_ONLY(t_wait_ns.add(telemetry::trace_now_ns() - w0);)
        if (shutdown_) return;
        seen_epoch = job_epoch_;
        job = job_;
        ++active_workers_;
      }
      job->work(index);
      {
        std::lock_guard<std::mutex> lock(job_mu_);
        --active_workers_;
      }
      idle_cv_.notify_all();
    }
  }

  std::mutex run_mu_;  // one parallel region at a time

  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::condition_variable idle_cv_;
  Job* job_ = nullptr;
  std::uint64_t job_epoch_ = 0;
  int wanted_workers_ = 0;
  int active_workers_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

std::atomic<int> g_thread_count{0};  // 0 = not yet initialised

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int default_thread_count() {
  if (const char* env = std::getenv("CONVOLVE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<int>(v);
    }
  }
  return hardware_threads();
}

int thread_count() {
  int n = g_thread_count.load(std::memory_order_relaxed);
  if (n == 0) {
    n = default_thread_count();
    g_thread_count.store(n, std::memory_order_relaxed);
  }
  return n;
}

void set_thread_count(int n) {
  g_thread_count.store(n < 1 ? 1 : n, std::memory_order_relaxed);
}

int init_threads_from_cli(int& argc, char** argv) {
  // The CLI entry thread gets a stable name in exported traces.
  CONVOLVE_TELEMETRY_ONLY(telemetry::set_thread_name("main");)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[i + 1]);
      if (n < 1) {
        throw std::invalid_argument("--threads expects a positive integer");
      }
      set_thread_count(n);
      for (int j = i + 2; j < argc; ++j) argv[j - 2] = argv[j];
      argc -= 2;
      return thread_count();
    }
    const char* prefix = "--threads=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      const int n = std::atoi(argv[i] + std::strlen(prefix));
      if (n < 1) {
        throw std::invalid_argument("--threads expects a positive integer");
      }
      set_thread_count(n);
      for (int j = i + 1; j < argc; ++j) argv[j - 1] = argv[j];
      --argc;
      return thread_count();
    }
  }
  set_thread_count(default_thread_count());
  return thread_count();
}

void for_each_chunk(std::uint64_t n_chunks,
                    const std::function<void(std::uint64_t)>& fn) {
  if (n_chunks == 0) return;
  const int threads = thread_count();
  // Serial fallback: one thread, a nested region, or nothing to overlap.
  // Counts the same pool.tasks the pool would (chunking is schedule-
  // independent), which is what makes that counter deterministic across
  // --threads N. Nested regions don't re-count: their chunks execute
  // inside a counted outer task.
  if (threads <= 1 || n_chunks == 1 || g_in_parallel_region) {
    CONVOLVE_TELEMETRY_ONLY(if (!g_in_parallel_region) {
      t_jobs.add(1);
      t_threads.set(1);
      t_tasks.add(n_chunks);
    })
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
      CONVOLVE_TELEMETRY_ONLY(
          const std::uint64_t t0 =
              g_in_parallel_region ? 0 : telemetry::trace_now_ns();)
      fn(c);
      CONVOLVE_TELEMETRY_ONLY(if (!g_in_parallel_region) {
        const std::uint64_t dur = telemetry::trace_now_ns() - t0;
        t_task_ns.record(dur);
        telemetry::record_span("pool.task", t0, dur);
      })
    }
    return;
  }
  const int participants =
      static_cast<int>(std::min<std::uint64_t>(
          static_cast<std::uint64_t>(threads), n_chunks));
  Pool::instance().run(n_chunks, participants, fn);
}

std::uint64_t chunk_count(std::uint64_t n, std::uint64_t grain) {
  if (n == 0) return 0;
  if (grain < 1) grain = 1;
  // Cap the chunk count so tiny grains on huge loops don't flood the pool;
  // 256 chunks keep stealing effective at any plausible thread count while
  // staying schedule-independent.
  const std::uint64_t by_grain = (n + grain - 1) / grain;
  return std::min<std::uint64_t>(by_grain, 256);
}

Range chunk_range(std::uint64_t n, std::uint64_t n_chunks, std::uint64_t c) {
  const std::uint64_t base = n / n_chunks;
  const std::uint64_t extra = n % n_chunks;
  const std::uint64_t begin = c * base + std::min(c, extra);
  const std::uint64_t size = base + (c < extra ? 1 : 0);
  return Range{begin, begin + size};
}

void parallel_for(std::uint64_t n, const std::function<void(std::uint64_t)>& fn,
                  std::uint64_t grain) {
  const std::uint64_t n_chunks = chunk_count(n, grain);
  if (n_chunks == 0) return;
  for_each_chunk(n_chunks, [&](std::uint64_t c) {
    const Range r = chunk_range(n, n_chunks, c);
    for (std::uint64_t i = r.begin; i < r.end; ++i) fn(i);
  });
}

}  // namespace convolve::par
