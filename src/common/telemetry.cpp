#include "convolve/common/telemetry.hpp"

#if CONVOLVE_TELEMETRY_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace convolve::telemetry {

namespace {

// Registry head. A function-local static would be tidier but metrics may be
// constructed during static initialization of other TUs, so the head must be
// constant-initialized (no dynamic-init ordering hazard).
constinit std::atomic<Metric*> g_registry_head{nullptr};

// --- span ring buffers -------------------------------------------------

struct SpanEvent {
  const char* name;        // string literal, stored by pointer
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  const char* arg_key;     // string literal or nullptr (no arg)
  std::uint64_t arg_value;
};

// One per thread that ever records a span, an audit event, or a name.
// Heap-allocated and owned by the global registry below, so a buffer
// outlives its thread and the exporter can read it after the thread exits.
// Appends publish via release on the count; the exporter acquires the
// count and reads only the prefix, which is immutable once published
// (records never wrap in an epoch). The flight-recorder event ring shares
// the struct so one thread_local lookup serves both record paths.
struct ThreadTrace {
  static constexpr std::size_t kCapacity = 16384;

  char name[32] = {0};
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::array<SpanEvent, kCapacity> events;
  std::atomic<std::uint32_t> audit_count{0};
  std::atomic<std::uint64_t> audit_dropped{0};
  std::array<Event, kCapacity> audit;

  void append(const char* span_name, std::uint64_t start_ns,
              std::uint64_t dur_ns, const char* arg_key,
              std::uint64_t arg_value) {
    std::uint32_t n = count.load(std::memory_order_relaxed);
    if (n >= kCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[n] = SpanEvent{span_name, start_ns, dur_ns, arg_key, arg_value};
    count.store(n + 1, std::memory_order_release);
  }

  void append_audit(const Event& e) {
    std::uint32_t n = audit_count.load(std::memory_order_relaxed);
    if (n >= kCapacity) {
      audit_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    audit[n] = e;
    audit_count.store(n + 1, std::memory_order_release);
  }
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadTrace>> threads;
};

TraceRegistry& trace_registry() {
  // Leaked on purpose: pool workers are detached, so a late-spawned
  // worker can still be registering its ring while the main thread runs
  // atexit destructors. The dtor would only free memory the OS reclaims
  // anyway, and skipping it removes that shutdown race (seen by TSan).
  static TraceRegistry* reg = new TraceRegistry;
  return *reg;
}

ThreadTrace& this_thread_trace() {
  thread_local ThreadTrace* t = [] {
    auto owned = std::make_unique<ThreadTrace>();
    ThreadTrace* raw = owned.get();
    TraceRegistry& reg = trace_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::snprintf(raw->name, sizeof(raw->name), "thread-%zu",
                  reg.threads.size());
    reg.threads.push_back(std::move(owned));
    return raw;
  }();
  return *t;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// --- JSON helpers ------------------------------------------------------

void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Sort key for deterministic thread ids in exports: main first, then
// worker-<i> by index, then other names lexicographically.
struct ThreadSortKey {
  int group;   // 0 = main, 1 = worker-N, 2 = other
  long index;  // worker index within group 1
  std::string name;

  static ThreadSortKey of(const char* name) {
    ThreadSortKey k{2, 0, name};
    if (k.name == "main") {
      k.group = 0;
    } else if (k.name.rfind("worker-", 0) == 0) {
      char* end = nullptr;
      long idx = std::strtol(name + 7, &end, 10);
      if (end && *end == '\0') {
        k.group = 1;
        k.index = idx;
      }
    }
    return k;
  }
  bool operator<(const ThreadSortKey& o) const {
    if (group != o.group) return group < o.group;
    if (index != o.index) return index < o.index;
    return name < o.name;
  }
};

}  // namespace

Metric::Metric(const char* name, MetricKind kind) : name_(name), kind_(kind) {
  Metric* head = g_registry_head.load(std::memory_order_relaxed);
  do {
    next_ = head;
  } while (!g_registry_head.compare_exchange_weak(
      head, this, std::memory_order_release, std::memory_order_relaxed));
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

// Registered metrics must have static storage, so family members (and
// their composed names) are allocated once and never freed -- tell
// LeakSanitizer the leak is the design, not a bug.
#if defined(__SANITIZE_ADDRESS__)
#define CONVOLVE_FAMILY_LEAK_OK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CONVOLVE_FAMILY_LEAK_OK 1
#endif
#endif
#if defined(CONVOLVE_FAMILY_LEAK_OK)
#include <sanitizer/lsan_interface.h>
template <typename T>
T* adopt_leak(T* p) {
  __lsan_ignore_object(p);
  return p;
}
#else
template <typename T>
T* adopt_leak(T* p) {
  return p;
}
#endif

const char* leak_member_name(const char* base, int slot) {
  std::string* s = adopt_leak(new std::string(base));
  s->push_back('.');
  if (slot < 0) {
    s->append("overflow");
  } else {
    s->append(std::to_string(slot));
  }
  return s->c_str();
}
}  // namespace

CounterFamily::CounterFamily(const char* base) {
  for (int i = 0; i < kSlots; ++i) {
    members_[static_cast<std::size_t>(i)] =
        adopt_leak(new Counter(leak_member_name(base, i)));
  }
  members_[kSlots] = adopt_leak(new Counter(leak_member_name(base, -1)));
}

HistogramFamily::HistogramFamily(const char* base) {
  for (int i = 0; i < kSlots; ++i) {
    members_[static_cast<std::size_t>(i)] =
        adopt_leak(new Histogram(leak_member_name(base, i)));
  }
  members_[kSlots] = adopt_leak(new Histogram(leak_member_name(base, -1)));
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  const Entry* e = find(name);
  return (e && e->kind == MetricKind::kCounter) ? e->counter : 0;
}

std::uint64_t MetricsSnapshot::histogram_percentile(const std::string& name,
                                                    double pct) const {
  const Entry* e = find(name);
  if (!e || e->kind != MetricKind::kHistogram) return 0;
  // Entries keep only the nonzero buckets; rebuild the dense 65-bucket
  // array so the shared nearest-rank core applies unchanged.
  std::array<std::uint64_t, Histogram::kBuckets> dense{};
  std::uint64_t total = 0;
  for (const HistogramBucket& b : e->buckets) {
    const int idx = Histogram::bucket_index(b.hi);
    dense[static_cast<std::size_t>(idx)] += b.count;
    total += b.count;
  }
  return log2_buckets_percentile({dense.data(), dense.size()}, total, pct);
}

MetricsSnapshot snapshot() {
  MetricsSnapshot snap;
  for (Metric* m = g_registry_head.load(std::memory_order_acquire); m;
       m = m->registry_next()) {
    MetricsSnapshot::Entry e;
    e.name = m->name();
    e.kind = m->kind();
    switch (m->kind()) {
      case MetricKind::kCounter:
        e.counter = static_cast<Counter*>(m)->value();
        break;
      case MetricKind::kGauge:
        e.gauge = static_cast<Gauge*>(m)->value();
        break;
      case MetricKind::kHistogram: {
        auto* h = static_cast<Histogram*>(m);
        e.count = h->count();
        e.sum = h->sum();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          std::uint64_t c = h->bucket(b);
          if (c != 0) {
            e.buckets.push_back({Histogram::bucket_lo(b),
                                 Histogram::bucket_hi(b), c});
          }
        }
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  // Synthesized ring-accounting counters: totals always, plus one entry
  // per thread ring that actually dropped (thread names are deterministic,
  // so overloaded rings are attributable run-over-run).
  {
    auto add_counter = [&snap](std::string name, std::uint64_t v) {
      MetricsSnapshot::Entry e;
      e.name = std::move(name);
      e.kind = MetricKind::kCounter;
      e.counter = v;
      snap.entries.push_back(std::move(e));
    };
    TraceRegistry& reg = trace_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::uint64_t span_drops = 0;
    std::uint64_t event_drops = 0;
    for (const auto& t : reg.threads) {
      const std::uint64_t sd = t->dropped.load(std::memory_order_relaxed);
      const std::uint64_t ed =
          t->audit_dropped.load(std::memory_order_relaxed);
      span_drops += sd;
      event_drops += ed;
      if (sd != 0) {
        add_counter(std::string("telemetry.spans.dropped.") + t->name, sd);
      }
      if (ed != 0) {
        add_counter(std::string("telemetry.events.dropped.") + t->name, ed);
      }
    }
    add_counter("telemetry.spans.dropped", span_drops);
    add_counter("telemetry.events.dropped", event_drops);
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void reset_all_metrics() {
  for (Metric* m = g_registry_head.load(std::memory_order_acquire); m;
       m = m->registry_next()) {
    switch (m->kind()) {
      case MetricKind::kCounter: static_cast<Counter*>(m)->reset(); break;
      case MetricKind::kGauge: static_cast<Gauge*>(m)->reset(); break;
      case MetricKind::kHistogram: static_cast<Histogram*>(m)->reset(); break;
    }
  }
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kCounter) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, e.name.c_str());
    out += "\": " + std::to_string(e.counter);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kGauge) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, e.name.c_str());
    out += "\": " + std::to_string(e.gauge);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kHistogram) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, e.name.c_str());
    out += "\": {\"count\": " + std::to_string(e.count) +
           ", \"sum\": " + std::to_string(e.sum) + ", \"buckets\": [";
    for (std::size_t i = 0; i < e.buckets.size(); ++i) {
      if (i) out += ", ";
      out += "[" + std::to_string(e.buckets[i].lo) + ", " +
             std::to_string(e.buckets[i].hi) + ", " +
             std::to_string(e.buckets[i].count) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void set_thread_name(const char* name) {
  ThreadTrace& t = this_thread_trace();
  TraceRegistry& reg = trace_registry();
  // The exporter reads names under the same lock, so renames can't tear.
  std::lock_guard<std::mutex> lock(reg.mu);
  std::snprintf(t.name, sizeof(t.name), "%s", name);
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  this_thread_trace().append(name, start_ns, dur_ns, nullptr, 0);
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const char* arg_key,
                 std::uint64_t arg_value) {
  this_thread_trace().append(name, start_ns, dur_ns, arg_key, arg_value);
}

std::uint64_t dropped_span_count() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t total = 0;
  for (const auto& t : reg.threads) {
    total += t->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void reset_trace() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& t : reg.threads) {
    t->count.store(0, std::memory_order_release);
    t->dropped.store(0, std::memory_order_relaxed);
  }
}

std::string chrome_trace_json() {
  // Copy out thread names + event prefixes under the lock, then format.
  struct ThreadCopy {
    std::string name;
    std::vector<SpanEvent> events;
  };
  std::vector<ThreadCopy> threads;
  {
    TraceRegistry& reg = trace_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    threads.reserve(reg.threads.size());
    for (const auto& t : reg.threads) {
      ThreadCopy c;
      c.name = t->name;
      std::uint32_t n = t->count.load(std::memory_order_acquire);
      c.events.assign(t->events.begin(), t->events.begin() + n);
      threads.push_back(std::move(c));
    }
  }
  std::sort(threads.begin(), threads.end(),
            [](const ThreadCopy& a, const ThreadCopy& b) {
              return ThreadSortKey::of(a.name.c_str()) <
                     ThreadSortKey::of(b.name.c_str());
            });

  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out += ",\n";
    first = false;
    out += "  " + ev;
  };
  emit("{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, "
       "\"args\": {\"name\": \"convolve\"}}");
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    std::string ev =
        "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": " +
        std::to_string(tid) + ", \"args\": {\"name\": \"";
    append_json_escaped(ev, threads[tid].name.c_str());
    ev += "\"}}";
    emit(ev);
  }
  char buf[64];
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    for (const SpanEvent& s : threads[tid].events) {
      std::string ev = "{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
                       std::to_string(tid) + ", \"name\": \"";
      append_json_escaped(ev, s.name);
      // trace_event ts/dur are microseconds; keep sub-µs precision.
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(s.start_ns) / 1000.0);
      ev += std::string("\", \"ts\": ") + buf;
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(s.dur_ns) / 1000.0);
      ev += std::string(", \"dur\": ") + buf;
      if (s.arg_key) {
        ev += ", \"args\": {\"";
        append_json_escaped(ev, s.arg_key);
        ev += "\": " + std::to_string(s.arg_value) + "}";
      }
      ev += "}";
      emit(ev);
    }
  }
  // One counter sample per counter/gauge at export time, so the trace file
  // is self-contained even without the metrics JSON next to it.
  const std::uint64_t now_us_x1000 = trace_now_ns() / 1000;
  MetricsSnapshot snap = snapshot();
  for (const auto& e : snap.entries) {
    if (e.kind == MetricKind::kHistogram) continue;
    std::string ev = "{\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"name\": \"";
    append_json_escaped(ev, e.name.c_str());
    ev += "\", \"ts\": " + std::to_string(now_us_x1000) +
          ", \"args\": {\"value\": " +
          (e.kind == MetricKind::kCounter ? std::to_string(e.counter)
                                          : std::to_string(e.gauge)) +
          "}}";
    emit(ev);
  }
  out += "\n]}\n";
  return out;
}

namespace {
bool write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << body;
  return f.good();
}
}  // namespace

bool write_chrome_trace(const std::string& path) {
  return write_file(path, chrome_trace_json());
}

bool write_metrics_json(const std::string& path) {
  return write_file(path, snapshot().to_json() + "\n");
}

// --- Security flight recorder ------------------------------------------

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRequestDone: return "request_done";
    case EventKind::kTdmShed: return "tdm_shed";
    case EventKind::kPmpFault: return "pmp_fault";
    case EventKind::kIllegalInsn: return "illegal_instruction";
    case EventKind::kMisalignedFetch: return "misaligned_fetch";
    case EventKind::kStepLimit: return "step_limit";
    case EventKind::kSealReject: return "seal_reject";
    case EventKind::kMeasurementMismatch: return "measurement_mismatch";
    case EventKind::kCowBurst: return "cow_burst";
  }
  return "unknown";
}

void record_event(EventKind kind, const RequestContext& ctx,
                  std::uint8_t code, std::uint64_t value) {
  Event e;
  e.t_ns = trace_now_ns();
  e.seq = ctx.seq;
  e.value = value;
  e.fork_id = ctx.fork_id;
  e.tenant = ctx.tenant;
  e.enclave = ctx.enclave;
  e.kind = static_cast<std::uint8_t>(kind);
  e.code = code;
  this_thread_trace().append_audit(e);
}

std::vector<Event> collect_events() {
  // Copy ring prefixes under the lock, ordered by the deterministic
  // thread sort key so the result is stable across runs.
  struct RingCopy {
    std::string name;
    std::vector<Event> events;
  };
  std::vector<RingCopy> rings;
  {
    TraceRegistry& reg = trace_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    rings.reserve(reg.threads.size());
    for (const auto& t : reg.threads) {
      RingCopy c;
      c.name = t->name;
      std::uint32_t n = t->audit_count.load(std::memory_order_acquire);
      c.events.assign(t->audit.begin(), t->audit.begin() + n);
      rings.push_back(std::move(c));
    }
  }
  std::sort(rings.begin(), rings.end(),
            [](const RingCopy& a, const RingCopy& b) {
              return ThreadSortKey::of(a.name.c_str()) <
                     ThreadSortKey::of(b.name.c_str());
            });
  std::vector<Event> all;
  for (const RingCopy& r : rings) {
    all.insert(all.end(), r.events.begin(), r.events.end());
  }
  return all;
}

std::uint64_t dropped_event_count() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t total = 0;
  for (const auto& t : reg.threads) {
    total += t->audit_dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void reset_events() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& t : reg.threads) {
    t->audit_count.store(0, std::memory_order_release);
    t->audit_dropped.store(0, std::memory_order_relaxed);
  }
}

EventLogStats event_log_stats() {
  EventLogStats stats;
  for (const Event& e : collect_events()) {
    ++stats.recorded;
    if (e.kind < kEventKindCount) {
      ++stats.by_kind[e.kind];
    }
  }
  stats.dropped = dropped_event_count();
  return stats;
}

std::string EventLogStats::to_json() const {
  std::string out = "{\"recorded\": " + std::to_string(recorded) +
                    ", \"dropped\": " + std::to_string(dropped) +
                    ", \"by_kind\": {";
  bool first = true;
  for (int k = 0; k < kEventKindCount; ++k) {
    if (by_kind[static_cast<std::size_t>(k)] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += std::string("\"") +
           event_kind_name(static_cast<EventKind>(k)) + "\": " +
           std::to_string(by_kind[static_cast<std::size_t>(k)]);
  }
  out += "}}";
  return out;
}

std::string events_jsonl() {
  std::string out;
  char line[256];
  for (const Event& e : collect_events()) {
    std::snprintf(line, sizeof(line),
                  "{\"t_ns\": %llu, \"kind\": \"%s\", \"tenant\": %u, "
                  "\"seq\": %llu, \"fork\": %u, \"enclave\": %u, "
                  "\"code\": %u, \"value\": %llu}\n",
                  static_cast<unsigned long long>(e.t_ns),
                  event_kind_name(static_cast<EventKind>(e.kind)),
                  static_cast<unsigned>(e.tenant),
                  static_cast<unsigned long long>(e.seq), e.fork_id,
                  static_cast<unsigned>(e.enclave),
                  static_cast<unsigned>(e.code),
                  static_cast<unsigned long long>(e.value));
    out += line;
  }
  return out;
}

bool write_events_jsonl(const std::string& path) {
  return write_file(path, events_jsonl());
}

}  // namespace convolve::telemetry

#endif  // CONVOLVE_TELEMETRY_ENABLED
