#include "convolve/common/telemetry.hpp"

#if CONVOLVE_TELEMETRY_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace convolve::telemetry {

namespace {

// Registry head. A function-local static would be tidier but metrics may be
// constructed during static initialization of other TUs, so the head must be
// constant-initialized (no dynamic-init ordering hazard).
constinit std::atomic<Metric*> g_registry_head{nullptr};

// --- span ring buffers -------------------------------------------------

struct SpanEvent {
  const char* name;        // string literal, stored by pointer
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

// One per thread that ever records a span (or names itself). Heap-allocated
// and owned by the global registry below, so a buffer outlives its thread
// and the exporter can read it after the thread exits. Appends publish via
// release on `count`; the exporter acquires `count` and reads only the
// prefix, which is immutable once published (events never wrap in an epoch).
struct ThreadTrace {
  static constexpr std::size_t kCapacity = 16384;

  char name[32] = {0};
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::array<SpanEvent, kCapacity> events;

  void append(const char* span_name, std::uint64_t start_ns,
              std::uint64_t dur_ns) {
    std::uint32_t n = count.load(std::memory_order_relaxed);
    if (n >= kCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[n] = SpanEvent{span_name, start_ns, dur_ns};
    count.store(n + 1, std::memory_order_release);
  }
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadTrace>> threads;
};

TraceRegistry& trace_registry() {
  // Leaked on purpose: pool workers are detached, so a late-spawned
  // worker can still be registering its ring while the main thread runs
  // atexit destructors. The dtor would only free memory the OS reclaims
  // anyway, and skipping it removes that shutdown race (seen by TSan).
  static TraceRegistry* reg = new TraceRegistry;
  return *reg;
}

ThreadTrace& this_thread_trace() {
  thread_local ThreadTrace* t = [] {
    auto owned = std::make_unique<ThreadTrace>();
    ThreadTrace* raw = owned.get();
    TraceRegistry& reg = trace_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::snprintf(raw->name, sizeof(raw->name), "thread-%zu",
                  reg.threads.size());
    reg.threads.push_back(std::move(owned));
    return raw;
  }();
  return *t;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// --- JSON helpers ------------------------------------------------------

void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Sort key for deterministic thread ids in exports: main first, then
// worker-<i> by index, then other names lexicographically.
struct ThreadSortKey {
  int group;   // 0 = main, 1 = worker-N, 2 = other
  long index;  // worker index within group 1
  std::string name;

  static ThreadSortKey of(const char* name) {
    ThreadSortKey k{2, 0, name};
    if (k.name == "main") {
      k.group = 0;
    } else if (k.name.rfind("worker-", 0) == 0) {
      char* end = nullptr;
      long idx = std::strtol(name + 7, &end, 10);
      if (end && *end == '\0') {
        k.group = 1;
        k.index = idx;
      }
    }
    return k;
  }
  bool operator<(const ThreadSortKey& o) const {
    if (group != o.group) return group < o.group;
    if (index != o.index) return index < o.index;
    return name < o.name;
  }
};

}  // namespace

Metric::Metric(const char* name, MetricKind kind) : name_(name), kind_(kind) {
  Metric* head = g_registry_head.load(std::memory_order_relaxed);
  do {
    next_ = head;
  } while (!g_registry_head.compare_exchange_weak(
      head, this, std::memory_order_release, std::memory_order_relaxed));
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  const Entry* e = find(name);
  return (e && e->kind == MetricKind::kCounter) ? e->counter : 0;
}

std::uint64_t MetricsSnapshot::histogram_percentile(const std::string& name,
                                                    double pct) const {
  const Entry* e = find(name);
  if (!e || e->kind != MetricKind::kHistogram) return 0;
  // Entries keep only the nonzero buckets; rebuild the dense 65-bucket
  // array so the shared nearest-rank core applies unchanged.
  std::array<std::uint64_t, Histogram::kBuckets> dense{};
  std::uint64_t total = 0;
  for (const HistogramBucket& b : e->buckets) {
    const int idx = Histogram::bucket_index(b.hi);
    dense[static_cast<std::size_t>(idx)] += b.count;
    total += b.count;
  }
  return log2_buckets_percentile({dense.data(), dense.size()}, total, pct);
}

MetricsSnapshot snapshot() {
  MetricsSnapshot snap;
  for (Metric* m = g_registry_head.load(std::memory_order_acquire); m;
       m = m->registry_next()) {
    MetricsSnapshot::Entry e;
    e.name = m->name();
    e.kind = m->kind();
    switch (m->kind()) {
      case MetricKind::kCounter:
        e.counter = static_cast<Counter*>(m)->value();
        break;
      case MetricKind::kGauge:
        e.gauge = static_cast<Gauge*>(m)->value();
        break;
      case MetricKind::kHistogram: {
        auto* h = static_cast<Histogram*>(m);
        e.count = h->count();
        e.sum = h->sum();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          std::uint64_t c = h->bucket(b);
          if (c != 0) {
            e.buckets.push_back({Histogram::bucket_lo(b),
                                 Histogram::bucket_hi(b), c});
          }
        }
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void reset_all_metrics() {
  for (Metric* m = g_registry_head.load(std::memory_order_acquire); m;
       m = m->registry_next()) {
    switch (m->kind()) {
      case MetricKind::kCounter: static_cast<Counter*>(m)->reset(); break;
      case MetricKind::kGauge: static_cast<Gauge*>(m)->reset(); break;
      case MetricKind::kHistogram: static_cast<Histogram*>(m)->reset(); break;
    }
  }
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kCounter) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, e.name.c_str());
    out += "\": " + std::to_string(e.counter);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kGauge) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, e.name.c_str());
    out += "\": " + std::to_string(e.gauge);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kHistogram) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, e.name.c_str());
    out += "\": {\"count\": " + std::to_string(e.count) +
           ", \"sum\": " + std::to_string(e.sum) + ", \"buckets\": [";
    for (std::size_t i = 0; i < e.buckets.size(); ++i) {
      if (i) out += ", ";
      out += "[" + std::to_string(e.buckets[i].lo) + ", " +
             std::to_string(e.buckets[i].hi) + ", " +
             std::to_string(e.buckets[i].count) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void set_thread_name(const char* name) {
  ThreadTrace& t = this_thread_trace();
  TraceRegistry& reg = trace_registry();
  // The exporter reads names under the same lock, so renames can't tear.
  std::lock_guard<std::mutex> lock(reg.mu);
  std::snprintf(t.name, sizeof(t.name), "%s", name);
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  this_thread_trace().append(name, start_ns, dur_ns);
}

std::uint64_t dropped_span_count() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t total = 0;
  for (const auto& t : reg.threads) {
    total += t->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void reset_trace() {
  TraceRegistry& reg = trace_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& t : reg.threads) {
    t->count.store(0, std::memory_order_release);
    t->dropped.store(0, std::memory_order_relaxed);
  }
}

std::string chrome_trace_json() {
  // Copy out thread names + event prefixes under the lock, then format.
  struct ThreadCopy {
    std::string name;
    std::vector<SpanEvent> events;
  };
  std::vector<ThreadCopy> threads;
  {
    TraceRegistry& reg = trace_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    threads.reserve(reg.threads.size());
    for (const auto& t : reg.threads) {
      ThreadCopy c;
      c.name = t->name;
      std::uint32_t n = t->count.load(std::memory_order_acquire);
      c.events.assign(t->events.begin(), t->events.begin() + n);
      threads.push_back(std::move(c));
    }
  }
  std::sort(threads.begin(), threads.end(),
            [](const ThreadCopy& a, const ThreadCopy& b) {
              return ThreadSortKey::of(a.name.c_str()) <
                     ThreadSortKey::of(b.name.c_str());
            });

  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out += ",\n";
    first = false;
    out += "  " + ev;
  };
  emit("{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, "
       "\"args\": {\"name\": \"convolve\"}}");
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    std::string ev =
        "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": " +
        std::to_string(tid) + ", \"args\": {\"name\": \"";
    append_json_escaped(ev, threads[tid].name.c_str());
    ev += "\"}}";
    emit(ev);
  }
  char buf[64];
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    for (const SpanEvent& s : threads[tid].events) {
      std::string ev = "{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
                       std::to_string(tid) + ", \"name\": \"";
      append_json_escaped(ev, s.name);
      // trace_event ts/dur are microseconds; keep sub-µs precision.
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(s.start_ns) / 1000.0);
      ev += std::string("\", \"ts\": ") + buf;
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(s.dur_ns) / 1000.0);
      ev += std::string(", \"dur\": ") + buf + "}";
      emit(ev);
    }
  }
  // One counter sample per counter/gauge at export time, so the trace file
  // is self-contained even without the metrics JSON next to it.
  const std::uint64_t now_us_x1000 = trace_now_ns() / 1000;
  MetricsSnapshot snap = snapshot();
  for (const auto& e : snap.entries) {
    if (e.kind == MetricKind::kHistogram) continue;
    std::string ev = "{\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"name\": \"";
    append_json_escaped(ev, e.name.c_str());
    ev += "\", \"ts\": " + std::to_string(now_us_x1000) +
          ", \"args\": {\"value\": " +
          (e.kind == MetricKind::kCounter ? std::to_string(e.counter)
                                          : std::to_string(e.gauge)) +
          "}}";
    emit(ev);
  }
  out += "\n]}\n";
  return out;
}

namespace {
bool write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << body;
  return f.good();
}
}  // namespace

bool write_chrome_trace(const std::string& path) {
  return write_file(path, chrome_trace_json());
}

bool write_metrics_json(const std::string& path) {
  return write_file(path, snapshot().to_json() + "\n");
}

}  // namespace convolve::telemetry

#endif  // CONVOLVE_TELEMETRY_ENABLED
