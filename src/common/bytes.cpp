#include "convolve/common/bytes.hpp"

#include <stdexcept>

namespace convolve {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex digit");
}
}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) |
                                            hex_nibble(hex[i + 1])));
  }
  return out;
}

ByteView as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void secure_wipe(std::span<std::uint8_t> data) {
  volatile std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = 0;
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_le32(p)) |
         (static_cast<std::uint64_t>(load_le32(p + 4)) << 32);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_le64(std::uint8_t* p, std::uint64_t v) {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t load_be64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) |
         static_cast<std::uint64_t>(load_be32(p + 4));
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

}  // namespace convolve
