// Minimal recursive-descent JSON parser, just enough for the telemetry
// round-trip tests and the bench-report schema checker to validate what the
// tree itself emits. Not a general-purpose library: no \uXXXX decoding
// (escapes are kept verbatim in the string value), numbers parse via
// strtod, objects preserve insertion order.
#pragma once

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace convolve::json {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;   // kArray elements, or kObject values
  std::vector<std::string> keys;  // kObject keys, parallel to arr

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) return &arr[i];
    }
    return nullptr;
  }
};

class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u':
            // Kept verbatim; the telemetry emitters only escape control
            // characters, which never round-trip through comparisons here.
            v.str += "\\u";
            break;
          default: fail("bad escape");
        }
      } else {
        v.str += c;
      }
    }
    return v;
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("bad number");
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.keys.push_back(std::move(key.str));
      v.arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return v;
  }
};

}  // namespace detail

/// Parse a complete JSON document; throws JsonParseError on malformed input.
inline JsonValue parse(std::string_view text) {
  return detail::Parser(text).parse_document();
}

}  // namespace convolve::json
