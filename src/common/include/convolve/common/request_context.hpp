// Request-scoped attribution context for the security flight recorder.
//
// The enclave service stamps one of these per request and threads it
// through admission, fork spawning and the security monitor, so that any
// security-relevant occurrence along the way (a PMP fault, a TDM shed, a
// seal rejection, a CoW materialization burst) can be attributed to the
// {tenant, seq} that caused it. The struct is deliberately independent of
// the telemetry layer: carrying 16 bytes of attribution is not telemetry,
// so CONVOLVE_TELEMETRY=OFF builds keep threading it (and the service API
// stays identical) while every record_event call compiled against it
// vanishes.
#pragma once

#include <cstdint>

namespace convolve {

struct RequestContext {
  std::uint64_t seq = 0;      // submission order within the service batch
  std::uint32_t fork_id = 0;  // CoW fork id (0 = master / not a fork)
  std::uint8_t tenant = 0;    // TDM tenant slot (clamped to 255)
  std::uint8_t enclave = 0;   // enclave table index (clamped to 255)
};

}  // namespace convolve
