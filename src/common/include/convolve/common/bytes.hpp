// Byte-buffer helpers shared by every CONVOLVE subsystem.
//
// All cryptographic and serialization code in this project passes data as
// `Bytes` (a std::vector<std::uint8_t>) or views it through std::span. The
// helpers here cover hex round-trips, little/big-endian integer packing and
// constant-time comparison, which is required whenever a MAC or signature is
// checked against attacker-controlled input.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace convolve {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encode a byte sequence as lowercase hex.
std::string to_hex(ByteView data);

/// Decode a hex string (upper or lower case, even length). Throws
/// std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// View the bytes of a std::string without copying.
ByteView as_bytes(std::string_view s);

/// Concatenate any number of byte sequences.
Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality: runtime depends only on the lengths, never on
/// the contents. Returns false for mismatched lengths.
bool ct_equal(ByteView a, ByteView b);

/// Best-effort secure wipe (volatile writes so the compiler cannot elide).
void secure_wipe(std::span<std::uint8_t> data);

// Little-endian loads/stores --------------------------------------------

std::uint32_t load_le32(const std::uint8_t* p);
std::uint64_t load_le64(const std::uint8_t* p);
void store_le32(std::uint8_t* p, std::uint32_t v);
void store_le64(std::uint8_t* p, std::uint64_t v);

// Big-endian loads/stores -----------------------------------------------

std::uint32_t load_be32(const std::uint8_t* p);
std::uint64_t load_be64(const std::uint8_t* p);
void store_be32(std::uint8_t* p, std::uint32_t v);
void store_be64(std::uint8_t* p, std::uint64_t v);

/// Rotate-left / rotate-right for 32/64-bit words.
constexpr std::uint32_t rotl32(std::uint32_t x, unsigned n) {
  return (x << (n & 31u)) | (x >> ((32u - n) & 31u));
}
constexpr std::uint64_t rotl64(std::uint64_t x, unsigned n) {
  return (x << (n & 63u)) | (x >> ((64u - n) & 63u));
}
constexpr std::uint32_t rotr32(std::uint32_t x, unsigned n) {
  return (x >> (n & 31u)) | (x << ((32u - n) & 31u));
}
constexpr std::uint64_t rotr64(std::uint64_t x, unsigned n) {
  return (x >> (n & 63u)) | (x << ((64u - n) & 63u));
}

/// Population count of a small unsigned value (used pervasively by the CIM
/// side-channel model, where power correlates with Hamming weight).
constexpr int hamming_weight(std::uint64_t x) {
  int n = 0;
  while (x != 0) {
    n += static_cast<int>(x & 1u);
    x >>= 1u;
  }
  return n;
}

/// Hamming distance between two values (bit flips between register states).
constexpr int hamming_distance(std::uint64_t a, std::uint64_t b) {
  return hamming_weight(a ^ b);
}

}  // namespace convolve
