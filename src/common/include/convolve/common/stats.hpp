// Small statistics helpers used by the power side-channel analysis and the
// benchmark harnesses (trace averaging, separability measures, summaries).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace convolve {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: sorts a copy
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Index of the smallest element; 0 for empty input is never returned
/// (empty input is a precondition violation and asserts).
std::size_t argmin(std::span<const double> xs);
std::size_t argmax(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Welch's t-statistic between two samples (used for TVLA-style leakage
/// assessment in the CIM module). Returns 0 if either sample has < 2 points.
double welch_t(std::span<const double> a, std::span<const double> b);

/// Numerically stable one-pass accumulator of the first four central
/// moments (Welford/Pébay updates). Two accumulators over disjoint data
/// can be combined with merge() (Chan's pairwise formulas); merging in a
/// fixed order yields a deterministic result, which is what the sca TVLA
/// engine relies on for bit-identical verdicts at any thread count.
class Welford {
 public:
  void add(double x);
  void merge(const Welford& other);

  /// Fold one contiguous block of values into the accumulator as a single
  /// Chan merge: the block's mean and central moments are computed in two
  /// index-order passes (tight, division-free loops the compiler can
  /// vectorize), then merged. The result depends only on the values and
  /// the block boundaries -- the scalar-oracle and bitsliced sca paths
  /// fold identical 64-trace blocks through this, which is what makes
  /// their TVLA statistics bit-identical rather than merely close.
  void add_block(std::span<const double> xs);

  /// Build an accumulator directly from precomputed moments: n points with
  /// the given mean and central moment *sums* mk = sum (x - mean)^k. This
  /// is the bridge from exact integer power-sum accumulation (see the sca
  /// TVLA exact fold): callers that can compute the moments of a batch
  /// exactly convert once and merge, instead of folding value by value.
  static Welford from_moments(std::uint64_t n, double mean, double m2,
                              double m3, double m4) {
    Welford w;
    w.n_ = n;
    w.mean_ = mean;
    w.m2_ = m2;
    w.m3_ = m3;
    w.m4_ = m4;
    return w;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance M2/n (the TVLA centered-square preprocessing
  /// uses population moments); 0 for n < 1.
  double variance_population() const;
  /// Unbiased sample variance M2/(n-1); 0 for n < 2.
  double variance_sample() const;
  /// k-th central moment sum(x - mean)^k / n, k = 2, 3, 4.
  double central_moment2() const { return variance_population(); }
  double central_moment3() const;
  double central_moment4() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum (x - mean)^2
  double m3_ = 0.0;  // sum (x - mean)^3
  double m4_ = 0.0;  // sum (x - mean)^4
};

/// First-order Welch t from two accumulators (same statistic as the span
/// overload). Returns 0 if either side has < 2 points or both variances
/// vanish.
double welch_t(const Welford& a, const Welford& b);

/// Second-order (TVLA) Welch t: the t-statistic of the centered squares
/// y = (x - mean)^2, computed from central moments -- mean(y) = CM2 and
/// var(y) = CM4 - CM2^2 (Schneider-Moradi leakage assessment methodology).
double welch_t_centered_square(const Welford& a, const Welford& b);

// Log2-histogram percentiles ---------------------------------------------
//
// The telemetry layer and the service latency tracking both bucket
// unsigned values by std::bit_width: bucket 0 is exactly {0}, bucket
// b >= 1 covers [2^(b-1), 2^b). A percentile over such buckets is defined
// by the nearest-rank method with a conservative (upper-bound) answer:
//
//  * count == 0 -> 0 (no data);
//  * rank = clamp(ceil(pct/100 * count), 1, count) -- so p0 is the rank-1
//    sample and p100 the rank-count sample;
//  * the result is the INCLUSIVE UPPER BOUND of the first bucket whose
//    cumulative count reaches rank: 0 for bucket 0, 2^b - 1 for buckets
//    1..63, and UINT64_MAX for bucket 64.
//
// Returning the bucket's upper bound makes the estimate a guaranteed
// over-approximation of the true percentile (never "p99 looks fine" while
// the real p99 is a bucket-width worse), at the cost of up to 2x
// granularity error inherent to log2 bucketing.

/// Inclusive upper bound of log2 bucket b (see above).
constexpr std::uint64_t log2_bucket_upper_bound(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~0ull;
  return (1ull << b) - 1;
}

/// Nearest-rank percentile (upper bucket bound) over 65 log2 buckets.
/// `count` must equal the sum of `buckets` (callers that track the total
/// separately pass it to avoid a re-sum); pct is in [0, 100].
std::uint64_t log2_buckets_percentile(std::span<const std::uint64_t> buckets,
                                      std::uint64_t count, double pct);

/// Plain (non-atomic, non-registered) log2 histogram for code that wants
/// percentile summaries without the telemetry registry -- e.g. per-request
/// service latency folded serially after a parallel batch. Mirrors the
/// telemetry::Histogram bucketing exactly so values can be compared across
/// the two.
struct Log2Histogram {
  static constexpr int kBuckets = 65;  // bit_width of uint64 is 0..64
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void record(std::uint64_t v) {
    ++buckets[static_cast<std::size_t>(std::bit_width(v))];
    ++count;
    sum += v;
  }
  void merge(const Log2Histogram& other) {
    for (int b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
    count += other.count;
    sum += other.sum;
  }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  std::uint64_t percentile(double pct) const {
    return log2_buckets_percentile({buckets.data(), buckets.size()}, count,
                                   pct);
  }
};

}  // namespace convolve
