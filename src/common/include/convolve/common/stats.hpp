// Small statistics helpers used by the power side-channel analysis and the
// benchmark harnesses (trace averaging, separability measures, summaries).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace convolve {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: sorts a copy
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Index of the smallest element; 0 for empty input is never returned
/// (empty input is a precondition violation and asserts).
std::size_t argmin(std::span<const double> xs);
std::size_t argmax(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Welch's t-statistic between two samples (used for TVLA-style leakage
/// assessment in the CIM module). Returns 0 if either sample has < 2 points.
double welch_t(std::span<const double> a, std::span<const double> b);

}  // namespace convolve
