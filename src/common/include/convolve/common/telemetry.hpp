// Process-wide telemetry: a lock-free metric registry (counters, gauges,
// log2 histograms) plus scoped trace spans recorded into per-thread ring
// buffers and exportable as a chrome://tracing (trace_event) JSON file.
//
// Design rules:
//  * Hot-path cost of a counter is ONE relaxed atomic add. Metrics are
//    static handles (namespace-scope or function-local statics) that
//    register themselves into an intrusive lock-free list at construction;
//    snapshot() walks the list without ever blocking a writer.
//  * Spans are chunk/phase granularity, never per-item. A span costs two
//    steady_clock reads and one ring-buffer slot; buffers are append-only
//    per epoch (events drop, not wrap, when full) so an exporter can read a
//    buffer prefix concurrently with the owning thread appending -- the
//    published count is release-stored / acquire-loaded.
//  * Thread identity in exported traces is deterministic: the pool names
//    its workers "worker-<index>" and the CLI entry point names the caller
//    "main", so traces from --threads N runs line up run-over-run
//    regardless of OS thread ids.
//  * Compile-time kill switch: building with CONVOLVE_TELEMETRY_ENABLED=0
//    (cmake -DCONVOLVE_TELEMETRY=OFF) removes the entire namespace; every
//    macro below expands to nothing (or a no-op expression), so the OFF
//    build carries no telemetry code or symbols at all. Instrumentation
//    sites that need more than a macro (handle definitions, local tallies)
//    wrap themselves in CONVOLVE_TELEMETRY_ONLY(...).
#pragma once

#ifndef CONVOLVE_TELEMETRY_ENABLED
#define CONVOLVE_TELEMETRY_ENABLED 1
#endif

// Outside the kill switch: RequestContext is telemetry-independent
// plumbing (the service threads it in both build flavors), and OFF-build
// call sites still name it around CONVOLVE_RECORD_EVENT.
#include "convolve/common/request_context.hpp"

#if CONVOLVE_TELEMETRY_ENABLED

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>
#include "convolve/common/stats.hpp"

namespace convolve::telemetry {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Base of every registered metric. Construction pushes the metric onto a
/// global intrusive list (lock-free CAS); metrics are never unregistered,
/// so handles must have static storage duration.
class Metric {
 public:
  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  const char* name() const { return name_; }
  MetricKind kind() const { return kind_; }
  Metric* registry_next() const { return next_; }

 protected:
  Metric(const char* name, MetricKind kind);
  ~Metric() = default;

 private:
  const char* name_;
  MetricKind kind_;
  Metric* next_ = nullptr;
};

/// Monotonic counter. add() is a single relaxed atomic add.
class Counter : public Metric {
 public:
  explicit Counter(const char* name) : Metric(name, MetricKind::kCounter) {}

  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge (e.g. "threads in the current parallel region").
class Gauge : public Metric {
 public:
  explicit Gauge(const char* name) : Metric(name, MetricKind::kGauge) {}

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket log2 histogram: bucket b holds values v with
/// std::bit_width(v) == b, i.e. bucket 0 is exactly {0} and bucket b >= 1
/// covers [2^(b-1), 2^b). record() is three relaxed atomic adds, so keep it
/// off per-item hot paths (chunk/phase granularity).
class Histogram : public Metric {
 public:
  static constexpr int kBuckets = 65;  // bit_width of uint64 is 0..64

  explicit Histogram(const char* name) : Metric(name, MetricKind::kHistogram) {}

  static int bucket_index(std::uint64_t v) { return std::bit_width(v); }
  /// Inclusive lower bound of bucket b.
  static std::uint64_t bucket_lo(int b) {
    return b == 0 ? 0 : (1ull << (b - 1));
  }
  /// Inclusive upper bound of bucket b.
  static std::uint64_t bucket_hi(int b) {
    if (b == 0) return 0;
    if (b == 64) return ~0ull;
    return (1ull << b) - 1;
  }

  void record(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Nearest-rank percentile (inclusive upper bucket bound) -- the shared
  /// log2_buckets_percentile contract from stats.hpp. Reads the buckets
  /// relaxed, so concurrent record() calls may or may not be included.
  std::uint64_t percentile(double pct) const {
    std::array<std::uint64_t, kBuckets> copy;
    std::uint64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      copy[static_cast<std::size_t>(b)] = bucket(b);
      total += copy[static_cast<std::size_t>(b)];
    }
    return log2_buckets_percentile({copy.data(), copy.size()}, total, pct);
  }

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Fixed-dimension labeled counter family: `base.<slot>` for slots
/// 0..kSlots-1 plus a `base.overflow` member that absorbs out-of-range
/// labels (so a hostile label value can never index out of bounds). The
/// dimension is deliberately tiny and fixed -- tenant slots, not user ids.
/// add() stays ONE relaxed atomic add: slot clamping is a branchless
/// bounds check on the way to a plain Counter. Members are registered
/// metrics and therefore leak (the registry requires static storage).
class CounterFamily {
 public:
  static constexpr int kSlots = 8;

  /// `base` must outlive the family (string literal in practice).
  explicit CounterFamily(const char* base);

  void add(int slot, std::uint64_t n = 1) { member(slot).add(n); }
  Counter& member(int slot) {
    return *members_[static_cast<std::size_t>(index(slot))];
  }
  const Counter& member(int slot) const {
    return *members_[static_cast<std::size_t>(index(slot))];
  }

 private:
  static int index(int slot) {
    return (slot >= 0 && slot < kSlots) ? slot : kSlots;
  }
  std::array<Counter*, kSlots + 1> members_{};
};

/// Histogram analogue of CounterFamily (same slot/overflow scheme). Keep
/// record() off per-item hot paths -- the service records these in its
/// serial stats fold, not inside workers.
class HistogramFamily {
 public:
  static constexpr int kSlots = CounterFamily::kSlots;

  explicit HistogramFamily(const char* base);

  void record(int slot, std::uint64_t v) { member(slot).record(v); }
  Histogram& member(int slot) {
    return *members_[static_cast<std::size_t>(index(slot))];
  }
  const Histogram& member(int slot) const {
    return *members_[static_cast<std::size_t>(index(slot))];
  }

 private:
  static int index(int slot) {
    return (slot >= 0 && slot < kSlots) ? slot : kSlots;
  }
  std::array<Histogram*, kSlots + 1> members_{};
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct HistogramBucket {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint64_t count = 0;
  };
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;                  // kCounter
    std::int64_t gauge = 0;                     // kGauge
    std::uint64_t count = 0;                    // kHistogram
    std::uint64_t sum = 0;                      // kHistogram
    std::vector<HistogramBucket> buckets;       // kHistogram, nonzero only
  };
  std::vector<Entry> entries;

  const Entry* find(const std::string& name) const;
  /// Counter value by name, 0 when absent.
  std::uint64_t counter_value(const std::string& name) const;
  /// Nearest-rank percentile (upper bucket bound, log2_buckets_percentile
  /// contract) of a snapshotted histogram; 0 when the metric is absent,
  /// not a histogram, or empty.
  std::uint64_t histogram_percentile(const std::string& name,
                                     double pct) const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}} -- the object the
  /// benches embed under the top-level "telemetry" key of their
  /// google-benchmark-style report.
  std::string to_json() const;
};

/// Snapshot of the registry plus synthesized ring-accounting counters:
/// `telemetry.spans.dropped` / `telemetry.events.dropped` totals and a
/// `telemetry.spans.dropped.<thread>` / `telemetry.events.dropped.<thread>`
/// counter per thread ring that has dropped at least one record, so silent
/// loss under overload is visible in every metrics export.
MetricsSnapshot snapshot();
/// Zero every registered counter/gauge/histogram (tests and benches only;
/// concurrent adds during a reset may survive it).
void reset_all_metrics();

// --- Trace spans -------------------------------------------------------

/// Nanoseconds since the process trace epoch (first telemetry use).
std::uint64_t trace_now_ns();

/// Deterministic name for the calling thread in exported traces. The pool
/// calls this with "worker-<i>"; init_threads_from_cli names the CLI
/// thread "main". Unnamed threads appear as "thread-<registration order>".
void set_thread_name(const char* name);

/// Record one complete span on the calling thread's ring buffer. `name`
/// must be a string literal (stored by pointer). The second overload
/// attaches one numeric chrome-trace argument (`"args": {"<key>": v}`);
/// `arg_key` must also be a string literal. The service uses this to stamp
/// every request-scoped span with its submission seq.
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns);
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const char* arg_key,
                 std::uint64_t arg_value);

/// RAII span: records [construction, destruction) via record_span.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(name), start_ns_(trace_now_ns()) {}
  ScopedSpan(const char* name, const char* arg_key, std::uint64_t arg_value)
      : name_(name),
        arg_key_(arg_key),
        arg_value_(arg_value),
        start_ns_(trace_now_ns()) {}
  ~ScopedSpan() {
    if (arg_key_) {
      record_span(name_, start_ns_, trace_now_ns() - start_ns_, arg_key_,
                  arg_value_);
    } else {
      record_span(name_, start_ns_, trace_now_ns() - start_ns_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* arg_key_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t start_ns_;
};

/// Spans dropped because a thread's ring buffer was full.
std::uint64_t dropped_span_count();

/// Clear every thread's span buffer (start a fresh trace epoch). Only call
/// while no parallel region is in flight.
void reset_trace();

/// chrome://tracing / Perfetto "trace_event" JSON: thread-name metadata
/// events (sorted deterministically: main, then worker-<i> by index, then
/// everything else by name), one "X" event per recorded span, and one "C"
/// counter-sample event per registered counter/gauge at export time.
std::string chrome_trace_json();

/// Write chrome_trace_json() (or snapshot().to_json()) to `path`.
/// Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);
bool write_metrics_json(const std::string& path);

// --- Security flight recorder (structured audit events) ----------------
//
// Typed, request-attributed audit records for security-relevant
// occurrences in the enclave service path. Events share the span ring
// discipline: per-thread append-only buffers, drop-on-full (never wrap),
// release-published count, and the same compile-time kill switch -- an
// OFF build contains no event code at all.

/// What happened. Kept to one byte; the per-kind meaning of `code` and
/// `value` is documented on each enumerator (and mirrored by obs_report).
enum class EventKind : std::uint8_t {
  /// A request reached a terminal status (emitted exactly once per
  /// request, including rejected ones). code = (op_kind << 4) | status
  /// using the service's RequestKind/Status enum values; value = executed
  /// steps (0 for non-run ops and rejections).
  kRequestDone = 0,
  /// TDM admission shed. code: 0 = no wheel slot in window, 1 = pending
  /// queue cap; value = wheel slots scanned before giving up.
  kTdmShed = 1,
  /// PMP access fault at enclave runtime. code: 0 = load, 1 = store,
  /// 2 = instruction fetch; value = faulting address (mtval).
  kPmpFault = 2,
  /// Illegal instruction trap; value = the raw instruction word.
  kIllegalInsn = 3,
  /// Misaligned fetch trap; value = the misaligned target pc.
  kMisalignedFetch = 4,
  /// Enclave ran to its step budget without exiting; value = steps.
  kStepLimit = 5,
  /// seal()/unseal() rejected a blob. code: 0 = malformed blob,
  /// 1 = authentication failure (wrong key, tampered ciphertext, or
  /// measurement-AAD mismatch); value = blob size in bytes.
  kSealReject = 6,
  /// Local attestation token failed verification. code: 0 = malformed
  /// token, 1 = MAC/measurement mismatch; value = the token's claimed
  /// target enclave id.
  kMeasurementMismatch = 7,
  /// CoW fork materialized private pages while serving a request;
  /// value = pages materialized (page count, not bytes).
  kCowBurst = 8,
};
inline constexpr int kEventKindCount = 9;

/// Stable lower_snake_case name of a kind (JSONL `"kind"` field).
const char* event_kind_name(EventKind kind);

/// One fixed-size flight-recorder record. 32 bytes so a ring slot is two
/// cache-line quarters and a full ring stays cheap to copy out.
struct Event {
  std::uint64_t t_ns = 0;    // trace_now_ns() at record time
  std::uint64_t seq = 0;     // RequestContext::seq
  std::uint64_t value = 0;   // kind-specific payload (see EventKind)
  std::uint32_t fork_id = 0; // RequestContext::fork_id
  std::uint8_t tenant = 0;   // RequestContext::tenant
  std::uint8_t enclave = 0;  // RequestContext::enclave
  std::uint8_t kind = 0;     // EventKind
  std::uint8_t code = 0;     // kind-specific discriminator (see EventKind)
};
static_assert(sizeof(Event) == 32, "flight-recorder records are 32 bytes");

/// Append one event to the calling thread's event ring (drop-on-full).
void record_event(EventKind kind, const RequestContext& ctx,
                  std::uint8_t code, std::uint64_t value);

/// Every published event across all thread rings, in deterministic thread
/// order (main, worker-<i>, others) and ring order within a thread.
/// Cross-thread interleaving is NOT temporal; sort by t_ns if needed.
std::vector<Event> collect_events();

/// Events dropped because a thread's event ring was full.
std::uint64_t dropped_event_count();

/// Clear every thread's event ring (and drop counts). Only call while no
/// parallel region is in flight.
void reset_events();

/// Aggregate recorded/dropped totals and a per-kind breakdown -- the
/// object benches embed under the top-level "events" key of their report.
struct EventLogStats {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::array<std::uint64_t, kEventKindCount> by_kind{};

  std::string to_json() const;
};
EventLogStats event_log_stats();

/// JSONL export: one `{"t_ns":..,"kind":"..","tenant":..,"seq":..,
/// "fork":..,"enclave":..,"code":..,"value":..}` object per line, in
/// collect_events() order. Empty string when no events were recorded.
std::string events_jsonl();
bool write_events_jsonl(const std::string& path);

}  // namespace convolve::telemetry

// Statement/declaration that only exists in telemetry-enabled builds.
#define CONVOLVE_TELEMETRY_ONLY(...) __VA_ARGS__
#define CONVOLVE_COUNTER_ADD(counter, ...) (counter).add(__VA_ARGS__)
#define CONVOLVE_GAUGE_SET(gauge, v) (gauge).set(v)
#define CONVOLVE_HISTOGRAM_RECORD(hist, v) (hist).record(v)

#define CONVOLVE_TELEMETRY_CONCAT_(a, b) a##b
#define CONVOLVE_TELEMETRY_CONCAT(a, b) CONVOLVE_TELEMETRY_CONCAT_(a, b)
/// Scoped trace span covering the rest of the enclosing block.
#define CONVOLVE_TRACE_SPAN(name_literal)                        \
  const ::convolve::telemetry::ScopedSpan CONVOLVE_TELEMETRY_CONCAT( \
      convolve_trace_span_, __LINE__) {                          \
    name_literal                                                 \
  }
/// Scoped span with one numeric chrome-trace arg, e.g.
/// CONVOLVE_TRACE_SPAN_ARG("service.execute", "seq", item.seq).
#define CONVOLVE_TRACE_SPAN_ARG(name_literal, key_literal, value)    \
  const ::convolve::telemetry::ScopedSpan CONVOLVE_TELEMETRY_CONCAT( \
      convolve_trace_span_, __LINE__) {                              \
    name_literal, key_literal,                                       \
        static_cast<std::uint64_t>(value)                            \
  }
/// Flight-recorder event: kind is a bare EventKind enumerator name.
/// Arguments are NOT evaluated in OFF builds.
#define CONVOLVE_RECORD_EVENT(kind, ctx, code, value)             \
  ::convolve::telemetry::record_event(                            \
      ::convolve::telemetry::EventKind::kind, (ctx),              \
      static_cast<std::uint8_t>(code), static_cast<std::uint64_t>(value))

#else  // !CONVOLVE_TELEMETRY_ENABLED

// Kill switch: every macro vanishes. No convolve::telemetry namespace is
// declared at all, so an OFF build cannot even accidentally reference a
// telemetry symbol (pinned by the no-symbol check in telemetry_off_smoke).
#define CONVOLVE_TELEMETRY_ONLY(...)
#define CONVOLVE_COUNTER_ADD(counter, ...) ((void)0)
#define CONVOLVE_GAUGE_SET(gauge, v) ((void)0)
#define CONVOLVE_HISTOGRAM_RECORD(hist, v) ((void)0)
#define CONVOLVE_TRACE_SPAN(name_literal) ((void)0)
#define CONVOLVE_TRACE_SPAN_ARG(name_literal, key_literal, value) ((void)0)
#define CONVOLVE_RECORD_EVENT(kind, ctx, code, value) ((void)0)

#endif  // CONVOLVE_TELEMETRY_ENABLED
