// Deterministic parallel execution engine.
//
// A work-stealing thread pool plus `parallel_for` / `parallel_reduce`
// primitives whose results are *deterministic by construction*: work is cut
// into chunks whose boundaries depend only on the problem size (never on
// the thread count or scheduling), each chunk produces an independent
// partial result, and partial results are combined on the calling thread in
// ascending chunk order. Any associative combine therefore yields the same
// value -- bit-identical, including floating point -- for every thread
// count, and `threads == 1` degenerates to a plain serial loop on the
// calling thread with no pool involvement at all.
//
// Scheduling model: every chunk is pushed to a per-participant deque
// (round-robin); a participant pops from the back of its own deque and,
// when empty, steals from the front of a victim's. The calling thread
// participates, so `--threads N` means N compute threads total. Stealing
// randomizes *completion* order only; determinism comes from the fixed
// chunking and ordered combine, never from the schedule.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <vector>

namespace convolve::par {

/// Threads the hardware offers (>= 1).
int hardware_threads();

/// Resolution order for the default: CONVOLVE_THREADS env var if set and
/// valid, otherwise hardware_threads().
int default_thread_count();

/// Current global thread count (lazily initialised to
/// default_thread_count()).
int thread_count();

/// Set the global thread count (clamped to >= 1). Takes effect on the next
/// parallel region.
void set_thread_count(int n);

/// RAII thread-count override for tests.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int n) : saved_(thread_count()) {
    set_thread_count(n);
  }
  ~ScopedThreadCount() { set_thread_count(saved_); }
  ScopedThreadCount(const ScopedThreadCount&) = delete;
  ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;

 private:
  int saved_;
};

/// Consume a `--threads N` flag (and honour CONVOLVE_THREADS) for bench and
/// tool binaries: scans argv, applies the setting via set_thread_count and
/// returns the resulting count. Unrelated arguments are left untouched;
/// a consumed flag is removed from argv/argc.
int init_threads_from_cli(int& argc, char** argv);

/// Run fn(chunk_index) for every chunk in [0, n_chunks). Chunks may execute
/// concurrently in any order on thread_count() threads (including the
/// caller); with one thread they run in index order on the caller. The
/// first exception thrown by any chunk is rethrown on the caller after all
/// chunks retire; remaining chunks are skipped (not started) once an
/// exception is pending.
void for_each_chunk(std::uint64_t n_chunks,
                    const std::function<void(std::uint64_t)>& fn);

/// Deterministic chunk count for a loop of `n` iterations with at least
/// `grain` iterations per chunk. Depends only on (n, grain) -- never on the
/// thread count -- so chunk boundaries (and thus any ordered reduction
/// structure) are schedule-independent.
std::uint64_t chunk_count(std::uint64_t n, std::uint64_t grain);

/// Half-open iteration range of chunk `c` out of `n_chunks` over `n` items.
/// Chunks are contiguous, ascending and near-equal in size.
struct Range {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};
Range chunk_range(std::uint64_t n, std::uint64_t n_chunks, std::uint64_t c);

/// Parallel loop over [0, n): fn(i) must be safe to run concurrently for
/// distinct i. Iterations are grouped into chunk_count(n, grain) chunks;
/// within a chunk they run in ascending order.
void parallel_for(std::uint64_t n, const std::function<void(std::uint64_t)>& fn,
                  std::uint64_t grain = 1);

/// Deterministic ordered reduction. `map(chunk, range)` produces a partial
/// result per chunk (concurrently); `combine(acc, partial)` folds partials
/// into `init` strictly in ascending chunk order on the calling thread.
/// The fold structure depends only on (n, grain), so the result is
/// identical for every thread count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::uint64_t n, std::uint64_t grain, T init, MapFn&& map,
                  CombineFn&& combine) {
  const std::uint64_t n_chunks = chunk_count(n, grain);
  if (n_chunks == 0) return init;
  std::vector<std::optional<T>> partial(n_chunks);
  for_each_chunk(n_chunks, [&](std::uint64_t c) {
    partial[c].emplace(map(c, chunk_range(n, n_chunks, c)));
  });
  T acc = std::move(init);
  for (std::uint64_t c = 0; c < n_chunks; ++c) {
    acc = combine(std::move(acc), std::move(*partial[c]));
  }
  return acc;
}

}  // namespace convolve::par
