// Deterministic pseudo-random number generation.
//
// Every stochastic component in the project (noise injection, local-search
// restarts, masking randomness in simulations, workload generation) draws
// from Xoshiro256** seeded explicitly, so that every experiment is exactly
// reproducible from its seed. This generator is NOT cryptographically
// secure; cryptographic key material is derived via SHAKE256 in
// convolve::crypto instead.
#pragma once

#include <cstdint>
#include <span>

#include "convolve/common/bytes.hpp"

namespace convolve {

namespace rng_detail {
/// SplitMix64 step: advances `x` and returns the mixed output. Part of the
/// frozen stream-derivation contract (see Xoshiro256::split); the constants
/// are the canonical Steele-Lea-Flood ones and must not change.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace rng_detail

/// xoshiro256** by Blackman & Vigna; state seeded via SplitMix64.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0xC0111001DEu) { reseed(seed); }

  /// Re-key the state from `seed` via SplitMix64 (same as construction).
  void reseed(std::uint64_t seed);

  // next_u64 and split are defined inline: they sit on the per-trace hot
  // path of the sca capture engines (one split + a handful of draws per
  // trace at tens of ns per trace).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl64(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) without modulo bias (rejection sampling).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fill a span with uniform random bytes.
  void fill_bytes(std::span<std::uint8_t> out);

  /// Single random bit.
  bool next_bit() { return (next_u64() & 1u) != 0; }

  /// Advance the state by 2^128 steps (the canonical xoshiro256 jump
  /// polynomial): repeated jumps carve the period into 2^128 pairwise
  /// non-overlapping segments.
  void jump();

  /// Deterministic derived stream for parallel chunk `i`: the state is
  /// re-keyed by hashing (state, i) through SplitMix64, so split(i) is O(1)
  /// in i, does not advance *this, and split(i) == split(i) across runs.
  /// Distinct i give statistically independent, non-overlapping streams
  /// (overlap within any realistic draw count has probability ~2^-192);
  /// use jump() instead when an algebraic disjointness guarantee is needed.
  ///
  /// FROZEN: this derivation (SplitMix64 chained over the four state words
  /// after keying with 0x5EEDC0DE5EEDC0DE ^ i) is a compatibility
  /// contract. Every per-trace stream in the sca lab -- sharing bits,
  /// gadget randomness, noise -- derives from split(i), and golden-vector
  /// regression tests pin its outputs; changing it silently re-randomizes
  /// every recorded TVLA/CPA result.
  Xoshiro256 split(std::uint64_t i) const {
    std::uint64_t x = 0x5EEDC0DE5EEDC0DEull ^ i;
    for (const std::uint64_t word : state_) {
      x ^= word;
      (void)rng_detail::splitmix64(x);
    }
    Xoshiro256 child(kNoSeed{});
    for (auto& word : child.state_) word = rng_detail::splitmix64(x);
    return child;
  }

  // Satisfy std::uniform_random_bit_generator so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  struct kNoSeed {};  // tag: leave the state for the caller to fill
  explicit Xoshiro256(kNoSeed) {}

  std::uint64_t state_[4] = {};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace convolve
