// Deterministic pseudo-random number generation.
//
// Every stochastic component in the project (noise injection, local-search
// restarts, masking randomness in simulations, workload generation) draws
// from Xoshiro256** seeded explicitly, so that every experiment is exactly
// reproducible from its seed. This generator is NOT cryptographically
// secure; cryptographic key material is derived via SHAKE256 in
// convolve::crypto instead.
#pragma once

#include <cstdint>
#include <span>

namespace convolve {

/// xoshiro256** by Blackman & Vigna; state seeded via SplitMix64.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0xC0111001DEu) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform value in [0, bound) without modulo bias (rejection sampling).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fill a span with uniform random bytes.
  void fill_bytes(std::span<std::uint8_t> out);

  /// Single random bit.
  bool next_bit() { return (next_u64() & 1u) != 0; }

  /// Advance the state by 2^128 steps (the canonical xoshiro256 jump
  /// polynomial): repeated jumps carve the period into 2^128 pairwise
  /// non-overlapping segments.
  void jump();

  /// Deterministic derived stream for parallel chunk `i`: the state is
  /// re-keyed by hashing (state, i) through SplitMix64, so split(i) is O(1)
  /// in i, does not advance *this, and split(i) == split(i) across runs.
  /// Distinct i give statistically independent, non-overlapping streams
  /// (overlap within any realistic draw count has probability ~2^-192);
  /// use jump() instead when an algebraic disjointness guarantee is needed.
  Xoshiro256 split(std::uint64_t i) const;

  // Satisfy std::uniform_random_bit_generator so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_[4] = {};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace convolve
