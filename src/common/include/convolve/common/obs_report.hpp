// Offline join of the three observability artifacts the enclave service
// exports -- the flight-recorder event log (JSONL), the metrics snapshot
// (--metrics-out) and the chrome trace (--trace-out) -- into one
// per-tenant report: op mix, per-status counts, p50/p99 latency (via the
// shared log2-percentile core), shed rate and fault taxonomy, plus
// z-score flagging of outlier tenants. This is the runtime-detection
// complement to the static rv32_lint vetting: rv32_lint decides what may
// enter the fleet, obs_report shows what the fleet actually did.
//
// Join semantics (see DESIGN.md §5k):
//  * The event log is the source of truth for attribution: request_done
//    events carry {tenant, seq, op, status}; detail events (pmp_fault,
//    tdm_shed, seal_reject, ...) attach the fault taxonomy.
//  * The metrics snapshot supplies latency distributions: the service
//    records the same latency samples into service.latency_ns and the
//    per-tenant service.tenant.latency_ns.<t> histograms that its own
//    stats fold sees, so percentiles computed here reproduce the
//    service's stats() exactly (same buckets, same nearest-rank core).
//  * The trace is corroboration: service.execute spans carry the seq as
//    a chrome-trace arg, joined back to tenants through the event log.
//
// Header-only-friendly plain structs; parsing lives in obs_report.cpp and
// depends only on common/json. Deliberately NOT gated on the telemetry
// kill switch: an OFF build can still analyze artifacts produced
// elsewhere (it just cannot produce its own).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace convolve::obs {

// Decode tables for the request_done event code byte:
// code = (op_kind << 4) | status, using the service's RequestKind/Status
// enumerator values (pinned by a test in tests/tee/test_obs.cpp).
inline constexpr int kStatusCount = 5;
inline constexpr int kOpCount = 4;
const char* status_name(int status);  // ok/rejected/trap/step_limit/error
const char* op_name(int op);          // run/attest/seal/unseal

/// Fault-taxonomy dimension: every event kind that indicts a request
/// (order is the report's presentation order).
inline constexpr std::array<const char*, 6> kFaultKinds = {
    "pmp_fault",   "illegal_instruction",  "misaligned_fetch",
    "step_limit",  "seal_reject",          "measurement_mismatch",
};

struct TenantReport {
  int tenant = 0;

  // From the event log.
  std::uint64_t requests = 0;  // request_done events
  std::array<std::uint64_t, kStatusCount> by_status{};
  std::array<std::uint64_t, kOpCount> by_op{};
  std::uint64_t sheds = 0;  // tdm_shed events
  std::array<std::uint64_t, kFaultKinds.size()> fault_by_kind{};
  std::uint64_t fault_events = 0;  // sum of fault_by_kind
  std::uint64_t cow_pages = 0;     // sum of cow_burst values

  // From the metrics snapshot (service.tenant.latency_ns.<t>).
  std::uint64_t latency_count = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;

  // From the trace join (service.execute spans whose seq maps here).
  std::uint64_t spans = 0;

  // Outlier analysis across the tenant population.
  double shed_rate = 0.0;   // sheds / requests
  double fault_rate = 0.0;  // fault_events / requests
  double z_shed = 0.0;
  double z_fault = 0.0;
  bool outlier = false;
};

struct Report {
  std::vector<TenantReport> tenants;  // sorted by tenant id

  // Global fold (reproduces the service's own stats fold).
  std::uint64_t events = 0;  // parsed event records
  std::uint64_t requests = 0;
  std::array<std::uint64_t, kStatusCount> by_status{};
  std::uint64_t latency_count = 0;  // service.latency_ns histogram
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;

  // Artifact health.
  std::uint64_t events_dropped = 0;  // telemetry.events.dropped counter
  std::uint64_t spans_dropped = 0;   // telemetry.spans.dropped counter
  std::uint64_t spans_joined = 0;    // service.execute spans matched
  std::uint64_t spans_unmatched = 0;

  double z_threshold = 3.0;
  bool has_outliers = false;
  std::vector<std::string> notes;  // parse anomalies, join mismatches
};

/// Build the joined report from raw artifact contents. Empty inputs are
/// legal (an OFF-build stub export yields an empty report plus a note);
/// malformed lines/documents are skipped and noted, never fatal.
Report build_report(std::string_view events_jsonl,
                    std::string_view metrics_json,
                    std::string_view trace_json, double z_threshold = 3.0);

/// Human-readable per-tenant table + flags.
std::string to_text(const Report& report);
/// Machine-readable rendering of the same report.
std::string to_json(const Report& report);

}  // namespace convolve::obs
