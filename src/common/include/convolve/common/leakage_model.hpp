// Shared Hamming leakage model: the switching-energy accounting used by
// every power side channel in the project.
//
// The CIM macro (adder tree + MAC accumulator), its chosen-input attack
// templates and the gate-level sca power-trace simulator all model dynamic
// power the same way: a register edge costs the Hamming distance between
// its old and new state, and a register settling from the precharged
// all-zero state costs the Hamming weight of the value. This header is the
// single home of that accounting so the device models and the attacker
// templates cannot drift apart.
#pragma once

#include <cstdint>

#include "convolve/common/bytes.hpp"

namespace convolve::leakage {

/// Dynamic energy of a register settling from the precharged all-zero
/// state (the first cycle after reset): HW(value).
constexpr double settle_energy(std::uint64_t value) {
  return hamming_weight(value);
}

/// Dynamic energy of a register edge: HD(prev, next).
constexpr double switch_energy(std::uint64_t prev, std::uint64_t next) {
  return hamming_distance(prev, next);
}

/// Clock a register: store `next` into `reg` and return the switching
/// energy of the edge.
template <typename Int>
double reg_update(Int& reg, Int next) {
  const double energy = switch_energy(static_cast<std::uint64_t>(reg),
                                      static_cast<std::uint64_t>(next));
  reg = next;
  return energy;
}

}  // namespace convolve::leakage
