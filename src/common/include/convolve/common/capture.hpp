// Seeded-fork measurement averaging shared by the CIM attack path and the
// sca lab.
//
// A "measurement" everywhere in this project is the average of N repeated
// samples of a forked, privately-seeded device (CimMacro::fork,
// Xoshiro256::split). These helpers fix the accumulation contract: samples
// are summed in repetition order on the calling thread, so a measurement
// is a pure function of (device state, fork stream, repetition count) --
// never of thread count, call order, or how many other measurements ran.
#pragma once

#include <vector>

namespace convolve::capture {

/// Mean of `repetitions` scalar samples; `sample(t)` is called with
/// t = 0..repetitions-1 in order. Returns 0 for zero repetitions.
template <typename SampleFn>
double mean_of(int repetitions, SampleFn&& sample) {
  double sum = 0.0;
  for (int t = 0; t < repetitions; ++t) sum += sample(t);
  return repetitions > 0 ? sum / repetitions : 0.0;
}

/// Element-wise mean of `repetitions` vector samples of length `samples`;
/// `fill(t, out)` writes repetition t into `out`.
template <typename FillFn>
std::vector<double> mean_trace_of(int repetitions, int samples,
                                  FillFn&& fill) {
  std::vector<double> acc(static_cast<std::size_t>(samples), 0.0);
  std::vector<double> one(static_cast<std::size_t>(samples), 0.0);
  for (int t = 0; t < repetitions; ++t) {
    fill(t, one);
    for (int s = 0; s < samples; ++s) {
      acc[static_cast<std::size_t>(s)] += one[static_cast<std::size_t>(s)];
    }
  }
  if (repetitions > 0) {
    for (double& a : acc) a /= repetitions;
  }
  return acc;
}

}  // namespace convolve::capture
