#include "convolve/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "convolve/common/bytes.hpp"

namespace convolve {

using rng_detail::splitmix64;

void Xoshiro256::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  have_cached_normal_ = false;
}

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Xoshiro256::uniform_real() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Xoshiro256::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform_real();
  while (u1 <= 0.0) u1 = uniform_real();
  const double u2 = uniform_real();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[4] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
      0x39ABDC4529B1661Cull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ull << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next_u64();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
  have_cached_normal_ = false;
}

void Xoshiro256::fill_bytes(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    store_le64(out.data() + i, next_u64());
    i += 8;
  }
  if (i < out.size()) {
    std::uint64_t v = next_u64();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

}  // namespace convolve
