#include "convolve/common/obs_report.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <span>

#include "convolve/common/json.hpp"
#include "convolve/common/stats.hpp"

namespace convolve::obs {

namespace {

std::uint64_t as_u64(const json::JsonValue* v) {
  if (!v || !v->is_number() || v->number < 0) return 0;
  return static_cast<std::uint64_t>(v->number);
}

int fault_kind_index(const std::string& kind) {
  for (std::size_t i = 0; i < kFaultKinds.size(); ++i) {
    if (kind == kFaultKinds[i]) return static_cast<int>(i);
  }
  return -1;
}

// Rebuild the dense 65-bucket log2 array from an exported histogram's
// sparse [lo, hi, count] triples. Indexed by bit_width(lo): lo is 0 or an
// exact power of two, so the double -> uint64 round trip is lossless
// (unlike hi, whose 2^64 - 1 is not representable as a double).
struct DenseHist {
  std::array<std::uint64_t, 65> buckets{};
  std::uint64_t count = 0;

  std::uint64_t percentile(double pct) const {
    return log2_buckets_percentile({buckets.data(), buckets.size()}, count,
                                   pct);
  }
};

bool load_hist(const json::JsonValue& histograms, const std::string& name,
               DenseHist& out) {
  const json::JsonValue* h = histograms.find(name);
  if (!h || !h->is_object()) return false;
  const json::JsonValue* buckets = h->find("buckets");
  if (!buckets || !buckets->is_array()) return false;
  for (const json::JsonValue& triple : buckets->arr) {
    if (!triple.is_array() || triple.arr.size() != 3) continue;
    const auto lo = static_cast<std::uint64_t>(triple.arr[0].number);
    const auto c = static_cast<std::uint64_t>(triple.arr[2].number);
    const int idx = std::bit_width(lo);
    out.buckets[static_cast<std::size_t>(idx)] += c;
    out.count += c;
  }
  return true;
}

}  // namespace

const char* status_name(int status) {
  switch (status) {
    case 0: return "ok";
    case 1: return "rejected";
    case 2: return "trap";
    case 3: return "step_limit";
    case 4: return "error";
  }
  return "unknown";
}

const char* op_name(int op) {
  switch (op) {
    case 0: return "run";
    case 1: return "attest";
    case 2: return "seal";
    case 3: return "unseal";
  }
  return "unknown";
}

Report build_report(std::string_view events_jsonl,
                    std::string_view metrics_json,
                    std::string_view trace_json, double z_threshold) {
  Report report;
  report.z_threshold = z_threshold;
  std::map<int, TenantReport> tenants;
  std::map<std::uint64_t, int> seq_tenant;  // executed request seq -> tenant

  // --- 1. Event log: attribution source of truth --------------------
  std::size_t bad_lines = 0;
  std::size_t start = 0;
  while (start < events_jsonl.size()) {
    std::size_t end = events_jsonl.find('\n', start);
    if (end == std::string_view::npos) end = events_jsonl.size();
    std::string_view line = events_jsonl.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    json::JsonValue ev;
    try {
      ev = json::parse(line);
    } catch (const json::JsonParseError&) {
      ++bad_lines;
      continue;
    }
    const json::JsonValue* kind_v = ev.find("kind");
    if (!kind_v || !kind_v->is_string()) {
      ++bad_lines;
      continue;
    }
    const std::string& kind = kind_v->str;
    const int tenant = static_cast<int>(as_u64(ev.find("tenant")));
    const std::uint64_t seq = as_u64(ev.find("seq"));
    const int code = static_cast<int>(as_u64(ev.find("code")));
    const std::uint64_t value = as_u64(ev.find("value"));

    ++report.events;
    TenantReport& t = tenants[tenant];
    t.tenant = tenant;

    if (kind == "request_done") {
      const int status = code & 0x0f;
      const int op = (code >> 4) & 0x0f;
      ++t.requests;
      ++report.requests;
      if (status < kStatusCount) {
        ++t.by_status[static_cast<std::size_t>(status)];
        ++report.by_status[static_cast<std::size_t>(status)];
      }
      if (op < kOpCount) ++t.by_op[static_cast<std::size_t>(op)];
      // Rejected requests never execute, so they never produce a
      // service.execute span; only map executed seqs for the trace join.
      if (status != 1) seq_tenant[seq] = tenant;
    } else if (kind == "tdm_shed") {
      ++t.sheds;
    } else if (kind == "cow_burst") {
      t.cow_pages += value;
    } else {
      const int f = fault_kind_index(kind);
      if (f >= 0) {
        ++t.fault_by_kind[static_cast<std::size_t>(f)];
        ++t.fault_events;
      }
    }
  }
  if (bad_lines > 0) {
    report.notes.push_back(std::to_string(bad_lines) +
                           " malformed event line(s) skipped");
  }
  if (report.events == 0) {
    report.notes.push_back(
        "no events (empty log, or a telemetry-OFF build's stub export)");
  }

  // --- 2. Metrics snapshot: latency distributions + ring health ------
  if (!metrics_json.empty()) {
    try {
      const json::JsonValue metrics = json::parse(metrics_json);
      if (const json::JsonValue* counters = metrics.find("counters")) {
        report.events_dropped =
            as_u64(counters->find("telemetry.events.dropped"));
        report.spans_dropped =
            as_u64(counters->find("telemetry.spans.dropped"));
      }
      if (const json::JsonValue* hists = metrics.find("histograms")) {
        DenseHist global;
        if (load_hist(*hists, "service.latency_ns", global)) {
          report.latency_count = global.count;
          report.p50_ns = global.percentile(50);
          report.p99_ns = global.percentile(99);
        }
        for (auto& [id, t] : tenants) {
          DenseHist h;
          if (load_hist(*hists,
                        "service.tenant.latency_ns." + std::to_string(id),
                        h) &&
              h.count > 0) {
            t.latency_count = h.count;
            t.p50_ns = h.percentile(50);
            t.p99_ns = h.percentile(99);
          }
        }
      }
    } catch (const json::JsonParseError& e) {
      report.notes.push_back(std::string("metrics snapshot unparseable: ") +
                             e.what());
    }
  }
  if (report.events_dropped > 0) {
    report.notes.push_back("event ring overflowed: " +
                           std::to_string(report.events_dropped) +
                           " event(s) lost (report undercounts)");
  }

  // --- 3. Trace: corroborate attribution via span seq args -----------
  if (!trace_json.empty()) {
    try {
      const json::JsonValue trace = json::parse(trace_json);
      if (const json::JsonValue* evs = trace.find("traceEvents")) {
        for (const json::JsonValue& ev : evs->arr) {
          const json::JsonValue* name = ev.find("name");
          const json::JsonValue* ph = ev.find("ph");
          if (!name || !ph || ph->str != "X" ||
              name->str != "service.execute") {
            continue;
          }
          const json::JsonValue* args = ev.find("args");
          const json::JsonValue* seq_v = args ? args->find("seq") : nullptr;
          if (!seq_v || !seq_v->is_number()) {
            ++report.spans_unmatched;
            continue;
          }
          auto it = seq_tenant.find(static_cast<std::uint64_t>(seq_v->number));
          if (it == seq_tenant.end()) {
            ++report.spans_unmatched;
            continue;
          }
          ++tenants[it->second].spans;
          ++report.spans_joined;
        }
      }
    } catch (const json::JsonParseError& e) {
      report.notes.push_back(std::string("trace unparseable: ") + e.what());
    }
    if (report.spans_unmatched > 0) {
      report.notes.push_back(
          std::to_string(report.spans_unmatched) +
          " service.execute span(s) not attributable to a request");
    }
  }

  // --- 4. Outlier analysis across the tenant population --------------
  report.tenants.reserve(tenants.size());
  for (auto& [id, t] : tenants) {
    if (t.requests > 0) {
      t.shed_rate =
          static_cast<double>(t.sheds) / static_cast<double>(t.requests);
      t.fault_rate = static_cast<double>(t.fault_events) /
                     static_cast<double>(t.requests);
    }
    report.tenants.push_back(std::move(t));
  }
  if (report.tenants.size() >= 2) {
    std::vector<double> sheds, faults;
    sheds.reserve(report.tenants.size());
    faults.reserve(report.tenants.size());
    for (const TenantReport& t : report.tenants) {
      sheds.push_back(t.shed_rate);
      faults.push_back(t.fault_rate);
    }
    const double shed_mu = mean(sheds), shed_sd = stddev(sheds);
    const double fault_mu = mean(faults), fault_sd = stddev(faults);
    for (TenantReport& t : report.tenants) {
      if (shed_sd > 0) t.z_shed = (t.shed_rate - shed_mu) / shed_sd;
      if (fault_sd > 0) t.z_fault = (t.fault_rate - fault_mu) / fault_sd;
      // One-sided: only ABOVE-average rates indict a tenant.
      t.outlier = t.z_shed > z_threshold || t.z_fault > z_threshold;
      report.has_outliers = report.has_outliers || t.outlier;
    }
  }
  return report;
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string to_text(const Report& report) {
  std::string out;
  append_fmt(out, "obs_report: %llu events, %llu requests\n",
             static_cast<unsigned long long>(report.events),
             static_cast<unsigned long long>(report.requests));
  append_fmt(out, "global: ");
  for (int s = 0; s < kStatusCount; ++s) {
    append_fmt(out, "%s=%llu ", status_name(s),
               static_cast<unsigned long long>(
                   report.by_status[static_cast<std::size_t>(s)]));
  }
  append_fmt(out, "| p50=%llu ns p99=%llu ns (n=%llu)\n",
             static_cast<unsigned long long>(report.p50_ns),
             static_cast<unsigned long long>(report.p99_ns),
             static_cast<unsigned long long>(report.latency_count));
  append_fmt(out,
             "rings: events_dropped=%llu spans_dropped=%llu | trace join: "
             "%llu matched, %llu unmatched\n",
             static_cast<unsigned long long>(report.events_dropped),
             static_cast<unsigned long long>(report.spans_dropped),
             static_cast<unsigned long long>(report.spans_joined),
             static_cast<unsigned long long>(report.spans_unmatched));
  for (const TenantReport& t : report.tenants) {
    append_fmt(out,
               "tenant %d: req=%llu ok=%llu rejected=%llu trap=%llu "
               "step_limit=%llu error=%llu",
               t.tenant, static_cast<unsigned long long>(t.requests),
               static_cast<unsigned long long>(t.by_status[0]),
               static_cast<unsigned long long>(t.by_status[1]),
               static_cast<unsigned long long>(t.by_status[2]),
               static_cast<unsigned long long>(t.by_status[3]),
               static_cast<unsigned long long>(t.by_status[4]));
    append_fmt(out, " | ops run/attest/seal/unseal=%llu/%llu/%llu/%llu",
               static_cast<unsigned long long>(t.by_op[0]),
               static_cast<unsigned long long>(t.by_op[1]),
               static_cast<unsigned long long>(t.by_op[2]),
               static_cast<unsigned long long>(t.by_op[3]));
    append_fmt(out, " | p50=%llu p99=%llu ns",
               static_cast<unsigned long long>(t.p50_ns),
               static_cast<unsigned long long>(t.p99_ns));
    append_fmt(out, " | shed_rate=%.3f fault_rate=%.3f", t.shed_rate,
               t.fault_rate);
    if (t.fault_events > 0) {
      out += " | faults:";
      for (std::size_t f = 0; f < kFaultKinds.size(); ++f) {
        if (t.fault_by_kind[f] == 0) continue;
        append_fmt(out, " %s=%llu", kFaultKinds[f],
                   static_cast<unsigned long long>(t.fault_by_kind[f]));
      }
    }
    if (t.cow_pages > 0) {
      append_fmt(out, " | cow_pages=%llu",
                 static_cast<unsigned long long>(t.cow_pages));
    }
    if (t.outlier) {
      append_fmt(out, "  << OUTLIER (z_shed=%.2f z_fault=%.2f > %.2f)",
                 t.z_shed, t.z_fault, report.z_threshold);
    }
    out += '\n';
  }
  for (const std::string& note : report.notes) {
    out += "note: " + note + "\n";
  }
  return out;
}

std::string to_json(const Report& report) {
  std::string out = "{\"events\": " + std::to_string(report.events) +
                    ", \"requests\": " + std::to_string(report.requests) +
                    ", \"by_status\": {";
  for (int s = 0; s < kStatusCount; ++s) {
    if (s) out += ", ";
    out += std::string("\"") + status_name(s) + "\": " +
           std::to_string(report.by_status[static_cast<std::size_t>(s)]);
  }
  out += "}, \"p50_ns\": " + std::to_string(report.p50_ns) +
         ", \"p99_ns\": " + std::to_string(report.p99_ns) +
         ", \"latency_count\": " + std::to_string(report.latency_count) +
         ", \"events_dropped\": " + std::to_string(report.events_dropped) +
         ", \"spans_dropped\": " + std::to_string(report.spans_dropped) +
         ", \"spans_joined\": " + std::to_string(report.spans_joined) +
         ", \"spans_unmatched\": " + std::to_string(report.spans_unmatched) +
         ", \"z_threshold\": " + std::to_string(report.z_threshold) +
         ", \"has_outliers\": " +
         (report.has_outliers ? "true" : "false") + ", \"tenants\": [";
  for (std::size_t i = 0; i < report.tenants.size(); ++i) {
    const TenantReport& t = report.tenants[i];
    if (i) out += ", ";
    out += "{\"tenant\": " + std::to_string(t.tenant) +
           ", \"requests\": " + std::to_string(t.requests) +
           ", \"by_status\": {";
    for (int s = 0; s < kStatusCount; ++s) {
      if (s) out += ", ";
      out += std::string("\"") + status_name(s) + "\": " +
             std::to_string(t.by_status[static_cast<std::size_t>(s)]);
    }
    out += "}, \"by_op\": {";
    for (int o = 0; o < kOpCount; ++o) {
      if (o) out += ", ";
      out += std::string("\"") + op_name(o) + "\": " +
             std::to_string(t.by_op[static_cast<std::size_t>(o)]);
    }
    out += "}, \"faults\": {";
    bool first = true;
    for (std::size_t f = 0; f < kFaultKinds.size(); ++f) {
      if (t.fault_by_kind[f] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += std::string("\"") + kFaultKinds[f] + "\": " +
             std::to_string(t.fault_by_kind[f]);
    }
    out += "}, \"sheds\": " + std::to_string(t.sheds) +
           ", \"cow_pages\": " + std::to_string(t.cow_pages) +
           ", \"p50_ns\": " + std::to_string(t.p50_ns) +
           ", \"p99_ns\": " + std::to_string(t.p99_ns) +
           ", \"latency_count\": " + std::to_string(t.latency_count) +
           ", \"spans\": " + std::to_string(t.spans) +
           ", \"shed_rate\": " + std::to_string(t.shed_rate) +
           ", \"fault_rate\": " + std::to_string(t.fault_rate) +
           ", \"z_shed\": " + std::to_string(t.z_shed) +
           ", \"z_fault\": " + std::to_string(t.z_fault) +
           ", \"outlier\": " + (t.outlier ? "true" : "false") + "}";
  }
  out += "], \"notes\": [";
  for (std::size_t i = 0; i < report.notes.size(); ++i) {
    if (i) out += ", ";
    out += "\"";
    for (char c : report.notes[i]) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
  }
  out += "]}";
  return out;
}

}  // namespace convolve::obs
