#include "convolve/common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace convolve {

std::uint64_t log2_buckets_percentile(std::span<const std::uint64_t> buckets,
                                      std::uint64_t count, double pct) {
  if (count == 0) return 0;
  // Nearest rank: ceil(pct/100 * count), clamped into [1, count] so that
  // pct <= 0 degenerates to the minimum sample and pct >= 100 to the max.
  const double raw = std::ceil(pct / 100.0 * static_cast<double>(count));
  std::uint64_t rank = raw < 1.0 ? 1 : static_cast<std::uint64_t>(raw);
  rank = std::min(rank, count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return log2_bucket_upper_bound(static_cast<int>(b));
  }
  // count overstated the bucket total; answer with the largest populated
  // bucket rather than inventing data.
  for (std::size_t b = buckets.size(); b-- > 0;) {
    if (buckets[b] != 0) return log2_bucket_upper_bound(static_cast<int>(b));
  }
  return 0;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

double min_value(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

std::size_t argmin(std::span<const double> xs) {
  assert(!xs.empty());
  return static_cast<std::size_t>(
      std::min_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t argmax(std::span<const double> xs) {
  assert(!xs.empty());
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double welch_t(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  // Sample (unbiased) variances.
  const double va = variance(a) * na / (na - 1.0);
  const double vb = variance(b) * nb / (nb - 1.0);
  const double denom = std::sqrt(va / na + vb / nb);
  if (denom == 0.0) return 0.0;
  return (mean(a) - mean(b)) / denom;
}

void Welford::add(double x) {
  // Pébay's single-pass update of the first four moment sums.
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void Welford::add_block(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n == 0) return;
  // Both passes accumulate into four interleaved partials (element i goes
  // to partial i&3) combined as (p0+p1)+(p2+p3). The interleave breaks the
  // serial FP dependency chain -- ~4x ILP on the per-block hot path -- and
  // the accumulation order is still a pure function of the block contents,
  // so every caller sees bit-identical moments for identical blocks.
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s[0] += xs[i];
    s[1] += xs[i + 1];
    s[2] += xs[i + 2];
    s[3] += xs[i + 3];
  }
  for (; i < n; ++i) s[i & 3] += xs[i];
  const double block_mean =
      ((s[0] + s[1]) + (s[2] + s[3])) / static_cast<double>(n);
  double p2[4] = {0.0, 0.0, 0.0, 0.0};
  double p3[4] = {0.0, 0.0, 0.0, 0.0};
  double p4[4] = {0.0, 0.0, 0.0, 0.0};
  for (i = 0; i + 4 <= n; i += 4) {
    const double d0 = xs[i] - block_mean;
    const double d1 = xs[i + 1] - block_mean;
    const double d2 = xs[i + 2] - block_mean;
    const double d3 = xs[i + 3] - block_mean;
    const double q0 = d0 * d0;
    const double q1 = d1 * d1;
    const double q2 = d2 * d2;
    const double q3 = d3 * d3;
    p2[0] += q0;
    p2[1] += q1;
    p2[2] += q2;
    p2[3] += q3;
    p3[0] += q0 * d0;
    p3[1] += q1 * d1;
    p3[2] += q2 * d2;
    p3[3] += q3 * d3;
    p4[0] += q0 * q0;
    p4[1] += q1 * q1;
    p4[2] += q2 * q2;
    p4[3] += q3 * q3;
  }
  for (; i < n; ++i) {
    const double d = xs[i] - block_mean;
    const double d2 = d * d;
    p2[i & 3] += d2;
    p3[i & 3] += d2 * d;
    p4[i & 3] += d2 * d2;
  }
  Welford block;
  block.n_ = n;
  block.mean_ = block_mean;
  block.m2_ = (p2[0] + p2[1]) + (p2[2] + p2[3]);
  block.m3_ = (p3[0] + p3[1]) + (p3[2] + p3[3]);
  block.m4_ = (p4[0] + p4[1]) + (p4[2] + p4[3]);
  merge(block);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan / Terriberry pairwise combination.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta * delta2 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) /
          (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ += delta * nb / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
}

double Welford::variance_population() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double Welford::variance_sample() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::central_moment3() const {
  return n_ > 0 ? m3_ / static_cast<double>(n_) : 0.0;
}

double Welford::central_moment4() const {
  return n_ > 0 ? m4_ / static_cast<double>(n_) : 0.0;
}

double welch_t(const Welford& a, const Welford& b) {
  if (a.count() < 2 || b.count() < 2) return 0.0;
  const double denom =
      std::sqrt(a.variance_sample() / static_cast<double>(a.count()) +
                b.variance_sample() / static_cast<double>(b.count()));
  if (denom == 0.0) return 0.0;
  return (a.mean() - b.mean()) / denom;
}

double welch_t_centered_square(const Welford& a, const Welford& b) {
  if (a.count() < 2 || b.count() < 2) return 0.0;
  // For y = (x - mean)^2: mean(y) = CM2 and var(y) = CM4 - CM2^2.
  const double cm2a = a.central_moment2();
  const double cm2b = b.central_moment2();
  const double var_ya = a.central_moment4() - cm2a * cm2a;
  const double var_yb = b.central_moment4() - cm2b * cm2b;
  const double denom = std::sqrt(var_ya / static_cast<double>(a.count()) +
                                 var_yb / static_cast<double>(b.count()));
  if (denom <= 0.0 || !std::isfinite(denom)) return 0.0;
  return (cm2a - cm2b) / denom;
}

}  // namespace convolve
