#include "convolve/common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace convolve {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

double min_value(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

std::size_t argmin(std::span<const double> xs) {
  assert(!xs.empty());
  return static_cast<std::size_t>(
      std::min_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t argmax(std::span<const double> xs) {
  assert(!xs.empty());
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double welch_t(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  // Sample (unbiased) variances.
  const double va = variance(a) * na / (na - 1.0);
  const double vb = variance(b) * nb / (nb - 1.0);
  const double denom = std::sqrt(va / na + vb / nb);
  if (denom == 0.0) return 0.0;
  return (mean(a) - mean(b)) / denom;
}

}  // namespace convolve
